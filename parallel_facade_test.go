package bisectlb_test

import (
	"errors"
	"testing"

	"bisectlb"
)

// TestParallelBalanceIntoMatchesBalanceInto checks the multicore facade
// end to end: for every supported algorithm and a spread of worker
// counts, ParallelBalanceInto must write the identical plan BalanceInto
// writes — same parts, same order, same accounting.
func TestParallelBalanceIntoMatchesBalanceInto(t *testing.T) {
	root, kernel, err := bisectlb.NewSyntheticFlat(1, 0.1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(64)
	var sp, cp bisectlb.Plan
	for _, w := range []int{1, 2, 4, 9} {
		pp := bisectlb.NewParallelPlanner(64, bisectlb.ParallelOptions{Workers: w, SpawnThreshold: 16})
		for _, alg := range []bisectlb.Algorithm{
			bisectlb.HFAlgorithm, bisectlb.BAAlgorithm, bisectlb.BAHFAlgorithm, bisectlb.PHFAlgorithm,
		} {
			cfg := bisectlb.Config{Algorithm: alg, Alpha: 0.1}
			for _, n := range []int{1, 64, 1024} {
				if err := bisectlb.BalanceInto(&sp, pl, kernel, root, n, cfg); err != nil {
					t.Fatalf("%s w=%d n=%d sequential: %v", alg, w, n, err)
				}
				if err := bisectlb.ParallelBalanceInto(&cp, pp, kernel, root, n, cfg); err != nil {
					t.Fatalf("%s w=%d n=%d parallel: %v", alg, w, n, err)
				}
				if sp.Algorithm != cp.Algorithm || sp.Max != cp.Max || sp.Ratio != cp.Ratio ||
					sp.Bisections != cp.Bisections || sp.MaxDepth != cp.MaxDepth {
					t.Fatalf("%s w=%d n=%d: summaries diverged: seq %+v par %+v", alg, w, n, sp, cp)
				}
				if len(sp.Parts) != len(cp.Parts) {
					t.Fatalf("%s w=%d n=%d: %d sequential parts, %d parallel parts",
						alg, w, n, len(sp.Parts), len(cp.Parts))
				}
				for i := range sp.Parts {
					if sp.Parts[i] != cp.Parts[i] {
						t.Fatalf("%s w=%d n=%d part %d diverged: seq %+v par %+v",
							alg, w, n, i, sp.Parts[i], cp.Parts[i])
					}
				}
			}
		}
	}
}

// TestParallelBalanceIntoTypedErrors mirrors BalanceInto's error
// contract on the parallel entry point.
func TestParallelBalanceIntoTypedErrors(t *testing.T) {
	root, kernel, err := bisectlb.NewFixedFlat(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pp := bisectlb.NewParallelPlanner(4, bisectlb.ParallelOptions{Workers: 2})
	var plan bisectlb.Plan
	if err := bisectlb.ParallelBalanceInto(nil, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.HFAlgorithm}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if err := bisectlb.ParallelBalanceInto(&plan, nil, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.HFAlgorithm}); err == nil {
		t.Fatal("nil planner accepted")
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, nil, root, 4,
		bisectlb.Config{Algorithm: bisectlb.HFAlgorithm}); !errors.Is(err, bisectlb.ErrNilProblem) {
		t.Fatalf("nil kernel: got %v, want ErrNilProblem", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 0,
		bisectlb.Config{Algorithm: bisectlb.HFAlgorithm}); !errors.Is(err, bisectlb.ErrBadN) {
		t.Fatalf("n=0: got %v, want ErrBadN", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm}); !errors.Is(err, bisectlb.ErrAlphaRequired) {
		t.Fatalf("missing α: got %v, want ErrAlphaRequired", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.7}); !errors.Is(err, bisectlb.ErrBadAlpha) {
		t.Fatalf("α=0.7: got %v, want ErrBadAlpha", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.1, Kappa: -1}); !errors.Is(err, bisectlb.ErrBadKappa) {
		t.Fatalf("κ=-1: got %v, want ErrBadKappa", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.ParallelBAAlgorithm}); !errors.Is(err, bisectlb.ErrNoFlatPlanner) {
		t.Fatalf("parallel-ba: got %v, want ErrNoFlatPlanner", err)
	}
	if err := bisectlb.ParallelBalanceInto(&plan, pp, kernel, root, 4,
		bisectlb.Config{Algorithm: bisectlb.Algorithm(99)}); !errors.Is(err, bisectlb.ErrUnknownAlgorithm) {
		t.Fatalf("unknown algorithm: got %v, want ErrUnknownAlgorithm", err)
	}
}

// TestBalanceIntoNilArguments pins the sequential facade's guard the
// parallel one mirrors.
func TestBalanceIntoNilArguments(t *testing.T) {
	root, kernel, err := bisectlb.NewFixedFlat(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := bisectlb.BalanceInto(nil, bisectlb.NewPlanner(4), kernel, root, 4, bisectlb.Config{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	var plan bisectlb.Plan
	if err := bisectlb.BalanceInto(&plan, nil, kernel, root, 4, bisectlb.Config{}); err == nil {
		t.Fatal("nil planner accepted")
	}
}
