module bisectlb

go 1.22
