package bisectlb

import (
	"errors"
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// This file is the allocation-free planning facade (DESIGN.md §10).
//
// The Problem interface is convenient but every Bisect() call allocates
// two child nodes, so interface-path planning costs O(parts) allocations
// no matter how carefully the algorithms reuse their own buffers. The
// flat API replaces interface nodes with the value type FlatNode and
// bisection with a Kernel; a Planner carries every scratch buffer the
// algorithms need, and BalanceInto writes the partition into a reusable
// Plan. Once the buffers are warm, planning performs zero heap
// allocations per call while producing partitions identical to Balance's
// (asserted part-by-part in internal/core's parity tests).

// ErrNoFlatPlanner is returned by BalanceInto for algorithms that only
// exist as goroutine-parallel executions (parallel-BA, parallel-PHF):
// spawning goroutines is inherently allocating, so they have no
// allocation-free form. Use Balance for them.
var ErrNoFlatPlanner = errors.New("bisectlb: algorithm has no allocation-free planner")

// FlatNode is a value-type subproblem; Kernel is its bisector. FlatPart
// is one subproblem of a Plan with its processor assignment.
type (
	FlatNode = bisect.FlatNode
	Kernel   = bisect.Kernel
	FlatPart = core.FlatPart
)

// Planner owns the scratch buffers (heap, node arena, recursion stack)
// for flat planning; Plan is the reusable result it writes into. A
// Planner is not safe for concurrent use — keep one per goroutine, or
// pool them as internal/service does.
type (
	Planner = core.Planner
	Plan    = core.Plan
)

// NewPlanner returns a planner with buffers pre-sized for partitions
// into about n parts. The zero value also works; it just grows its
// buffers on first use.
func NewPlanner(n int) *Planner { return core.NewPlanner(n) }

// ParallelPlanner is the multicore flat planner: it fans BA/BA-HF
// subtree planning across worker goroutines with per-worker scratch
// buffers and merges the results deterministically, producing plans
// bit-identical to the sequential Planner's. HF and PHF run through its
// sequential fallback (HF's global queue admits no bit-identical
// subtree decomposition; see core.ParallelPlanner). Like Planner it is
// not safe for concurrent use — pool whole ParallelPlanners.
type ParallelPlanner = core.ParallelPlanner

// NewParallelPlanner returns a multicore planner for partitions into
// about n parts. Zero opt.Workers means GOMAXPROCS.
func NewParallelPlanner(n int, opt ParallelOptions) *ParallelPlanner {
	return core.NewParallelPlanner(n, opt)
}

// NewSyntheticFlat is NewSyntheticProblem for the flat API: it validates
// the same preconditions and returns the root node plus the kernel that
// bisects it. The kernel splits bit-identically to the interface
// substrate, so flat and interface plans for the same parameters match
// exactly.
func NewSyntheticFlat(w, lo, hi float64, seed uint64) (FlatNode, Kernel, error) {
	if _, err := bisect.NewSynthetic(w, lo, hi, seed); err != nil {
		return FlatNode{}, nil, err
	}
	return bisect.SyntheticFlatRoot(w, seed), bisect.SyntheticKernel{Lo: lo, Hi: hi}, nil
}

// NewFixedFlat is NewFixedProblem for the flat API.
func NewFixedFlat(w, alpha float64) (FlatNode, Kernel, error) {
	if _, err := bisect.NewFixed(w, alpha); err != nil {
		return FlatNode{}, nil, err
	}
	return bisect.FixedFlatRoot(w), bisect.FixedKernel{Alpha: alpha}, nil
}

// NewListFlat is NewListProblem for the flat API.
func NewListFlat(n int, alpha float64, seed uint64) (FlatNode, Kernel, error) {
	if _, err := bisect.NewList(n, alpha, seed); err != nil {
		return FlatNode{}, nil, err
	}
	return bisect.ListFlatRoot(n, alpha, seed), bisect.ListKernel{Alpha: alpha}, nil
}

// BalanceInto is Balance for the flat API: it partitions root into at
// most n parts with the configured algorithm, writing the result into
// plan using pl's scratch buffers. Input validation matches Balance —
// the same typed errors for the same violations — plus ErrNoFlatPlanner
// for the goroutine-parallel algorithms. Plan.Algorithm is the bare
// algorithm name ("BA-HF", not "BA-HF(κ=…)"); callers that need the
// interface path's parameterised label format it themselves.
func BalanceInto(plan *Plan, pl *Planner, k Kernel, root FlatNode, n int, cfg Config) error {
	if plan == nil || pl == nil {
		return fmt.Errorf("bisectlb: BalanceInto needs a non-nil plan and planner")
	}
	if k == nil {
		return fmt.Errorf("%w (nil kernel)", ErrNilProblem)
	}
	if n < 1 {
		return fmt.Errorf("%w, got %d", ErrBadN, n)
	}
	switch cfg.Algorithm {
	case HFAlgorithm:
		return pl.HFInto(plan, k, root, n)
	case BAAlgorithm:
		return pl.BAInto(plan, k, root, n)
	case PHFAlgorithm, BAHFAlgorithm:
		if cfg.Alpha == 0 {
			return fmt.Errorf("%w: %s needs it", ErrAlphaRequired, cfg.Algorithm)
		}
		if !(cfg.Alpha > 0 && cfg.Alpha <= 0.5) {
			return fmt.Errorf("%w, got %v", ErrBadAlpha, cfg.Alpha)
		}
		if cfg.Algorithm == PHFAlgorithm {
			return pl.PHFInto(plan, k, root, n, cfg.Alpha)
		}
		if cfg.Kappa < 0 {
			return fmt.Errorf("%w, got %v", ErrBadKappa, cfg.Kappa)
		}
		kappa := cfg.Kappa
		if kappa == 0 {
			kappa = 1.0
		}
		return pl.BAHFInto(plan, k, root, n, cfg.Alpha, kappa)
	case ParallelBAAlgorithm, ParallelPHFAlgorithm:
		return fmt.Errorf("%w: %s", ErrNoFlatPlanner, cfg.Algorithm)
	default:
		return fmt.Errorf("%w %v", ErrUnknownAlgorithm, cfg.Algorithm)
	}
}

// ParallelBalanceInto is BalanceInto over the multicore planner: the
// identical validation, the identical plan (bit for bit), but BA and
// BA-HF planning fans out across pp's workers. HF and PHF run through
// pp's sequential fallback. cfg.Parallel is ignored here — worker count
// and spawn threshold were fixed when pp was constructed, so pooled
// planners behave identically for every caller.
func ParallelBalanceInto(plan *Plan, pp *ParallelPlanner, k Kernel, root FlatNode, n int, cfg Config) error {
	if plan == nil || pp == nil {
		return fmt.Errorf("bisectlb: ParallelBalanceInto needs a non-nil plan and planner")
	}
	if k == nil {
		return fmt.Errorf("%w (nil kernel)", ErrNilProblem)
	}
	if n < 1 {
		return fmt.Errorf("%w, got %d", ErrBadN, n)
	}
	switch cfg.Algorithm {
	case HFAlgorithm:
		return pp.HFInto(plan, k, root, n)
	case BAAlgorithm:
		return pp.BAInto(plan, k, root, n)
	case PHFAlgorithm, BAHFAlgorithm:
		if cfg.Alpha == 0 {
			return fmt.Errorf("%w: %s needs it", ErrAlphaRequired, cfg.Algorithm)
		}
		if !(cfg.Alpha > 0 && cfg.Alpha <= 0.5) {
			return fmt.Errorf("%w, got %v", ErrBadAlpha, cfg.Alpha)
		}
		if cfg.Algorithm == PHFAlgorithm {
			return pp.PHFInto(plan, k, root, n, cfg.Alpha)
		}
		if cfg.Kappa < 0 {
			return fmt.Errorf("%w, got %v", ErrBadKappa, cfg.Kappa)
		}
		kappa := cfg.Kappa
		if kappa == 0 {
			kappa = 1.0
		}
		return pp.BAHFInto(plan, k, root, n, cfg.Alpha, kappa)
	case ParallelBAAlgorithm, ParallelPHFAlgorithm:
		return fmt.Errorf("%w: %s", ErrNoFlatPlanner, cfg.Algorithm)
	default:
		return fmt.Errorf("%w %v", ErrUnknownAlgorithm, cfg.Algorithm)
	}
}
