#!/bin/sh
# cover_floor.sh — run the full suite with coverage and enforce a floor.
#
# The floor is a ratchet against coverage rot, not a quality score: it
# fails CI when the module-wide statement coverage drops below
# COVER_FLOOR (default 80%). The total includes the un-instrumented
# cmd/ and examples/ mains, so the library packages sit well above it —
# see `go tool cover -func=coverage.out` for the per-function view.
#
# Run from the repo root (make cover does).
set -eu

FLOOR="${COVER_FLOOR:-80.0}"

go test -count=1 -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "cover_floor: could not extract total coverage" >&2
    exit 1
fi
awk -v t="$total" -v f="$FLOOR" 'BEGIN {
    if (t + 0 < f + 0) {
        printf "cover_floor: FAIL — total coverage %.1f%% is below the %.1f%% floor\n", t, f
        exit 1
    }
    printf "cover_floor: ok — total coverage %.1f%% (floor %.1f%%)\n", t, f
}'

# Per-package floors for the real-instance bisector backends: these two
# packages are the trust anchors of the measured-α̂ guarantee story
# (DESIGN.md §16), so their coverage is ratcheted individually rather
# than hidden inside the module-wide average.
for pkg in bisectlb/internal/graph bisectlb/internal/spatial; do
    pct=$(go tool cover -func=coverage.out | awk -v p="$pkg/" '
        index($1, p) == 1 && $1 != "total:" { sub(/%/, "", $3); sum += $3; n++ }
        END { if (n) printf "%.1f", sum / n }')
    if [ -z "$pct" ]; then
        echo "cover_floor: FAIL — no coverage data for $pkg" >&2
        exit 1
    fi
    awk -v t="$pct" -v f="$FLOOR" -v p="$pkg" 'BEGIN {
        if (t + 0 < f + 0) {
            printf "cover_floor: FAIL — %s function coverage %.1f%% is below the %.1f%% floor\n", p, t, f
            exit 1
        }
        printf "cover_floor: ok — %s function coverage %.1f%% (floor %.1f%%)\n", p, t, f
    }'
done
