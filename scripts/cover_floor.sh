#!/bin/sh
# cover_floor.sh — run the full suite with coverage and enforce a floor.
#
# The floor is a ratchet against coverage rot, not a quality score: it
# fails CI when the module-wide statement coverage drops below
# COVER_FLOOR (default 80%). The total includes the un-instrumented
# cmd/ and examples/ mains, so the library packages sit well above it —
# see `go tool cover -func=coverage.out` for the per-function view.
#
# Run from the repo root (make cover does).
set -eu

FLOOR="${COVER_FLOOR:-80.0}"

go test -count=1 -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "cover_floor: could not extract total coverage" >&2
    exit 1
fi
awk -v t="$total" -v f="$FLOOR" 'BEGIN {
    if (t + 0 < f + 0) {
        printf "cover_floor: FAIL — total coverage %.1f%% is below the %.1f%% floor\n", t, f
        exit 1
    }
    printf "cover_floor: ok — total coverage %.1f%% (floor %.1f%%)\n", t, f
}'
