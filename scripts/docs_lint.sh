#!/bin/sh
# docs_lint.sh — keep the documentation honest.
#
# Checks, in order:
#   1. gofmt -l is clean (formatting drift fails the build, not review).
#   2. go vet passes.
#   3. Every results/*.txt and BENCH_*.json path mentioned in README.md,
#      DESIGN.md or EXPERIMENTS.md exists in the repo, so the docs never
#      reference an artifact that was renamed or never regenerated.
#   4. Every command under cmd/ is mentioned in README.md, so new
#      binaries cannot ship undocumented.
#   5. Every internal/* package has a "// Package <name>" comment in some
#      non-test .go file, so packages cannot ship without a godoc entry.
#
# Run from the repo root (make docs-lint does).
set -eu

fail=0

echo "docs-lint: gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "docs-lint: gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

echo "docs-lint: go vet"
go vet ./... || fail=1

echo "docs-lint: artifact references"
docs="README.md DESIGN.md EXPERIMENTS.md"
refs=$(grep -hoE '(results/[A-Za-z0-9_.-]+\.txt|BENCH_[A-Za-z0-9_-]+\.json)' $docs | sort -u)
for ref in $refs; do
    if [ ! -f "$ref" ]; then
        echo "docs-lint: $ref is referenced in the docs but does not exist" >&2
        echo "           (regenerate it, or fix the reference)" >&2
        fail=1
    fi
done

echo "docs-lint: command coverage in README.md"
for dir in cmd/*/; do
    name=$(basename "$dir")
    if ! grep -q "$name" README.md; then
        echo "docs-lint: cmd/$name is not mentioned in README.md" >&2
        fail=1
    fi
done

echo "docs-lint: package comments under internal/"
for dir in internal/*/; do
    name=$(basename "$dir")
    found=0
    for f in "$dir"*.go; do
        [ -f "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^// Package $name " "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "docs-lint: internal/$name has no package comment ('// Package $name …')" >&2
        echo "           (add a doc.go; godoc is part of the deliverable)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-lint: FAILED" >&2
    exit 1
fi
echo "docs-lint: OK"
