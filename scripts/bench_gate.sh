#!/usr/bin/env sh
# bench_gate.sh — compare a fresh in-process load run against the
# checked-in serving baseline (BENCH_service.json, section "load").
#
# The gate is noise-aware and warn-only by default: shared CI boxes can
# be several times slower than the machine that recorded the baseline,
# so a violation prints a WARN and exits 0 unless BENCH_GATE_STRICT=1,
# in which case it fails the build. Thresholds live in cmd/lbload/gate.go
# (achieved rps ≥ 50% of baseline, p99 ≤ 3× baseline). The baseline's
# "cluster" section (the X13 study), when present, is checked under the
# same warn-only/BENCH_GATE_STRICT policy: it must record a passing run.
#
# Usage: scripts/bench_gate.sh [baseline.json]
set -eu

cd "$(dirname "$0")/.."
baseline="${1:-BENCH_service.json}"

if [ ! -f "$baseline" ]; then
    echo "bench_gate: baseline $baseline not found; nothing to gate against" >&2
    exit 1
fi

exec go run ./cmd/lbload -gate "$baseline"
