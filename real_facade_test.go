package bisectlb

import (
	"os"
	"strings"
	"testing"
)

// TestRealProblemConstructors exercises the seed-derived real-instance
// substrates end to end: build, balance, and check the partition
// conserves weight.
func TestRealProblemConstructors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(seed uint64) (Problem, error)
	}{
		{"graph", NewGraphProblem},
		{"spatial", NewSpatialProblem},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.build(7)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Balance(p, 4, Config{Algorithm: HFAlgorithm})
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, part := range res.Parts {
				sum += part.Problem.Weight()
			}
			if diff := sum - p.Weight(); diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("partition lost weight: parts sum %v, root %v", sum, p.Weight())
			}
			// Same seed, same tree: the facade promises determinism.
			p2, err := tc.build(7)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := Balance(p2, 4, Config{Algorithm: HFAlgorithm})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ratio != res2.Ratio || len(res.Parts) != len(res2.Parts) {
				t.Fatalf("re-built instance diverged: %v vs %v", res, res2)
			}
		})
	}
}

// TestLoadProblemConstructors round-trips the checked-in instance files
// through the loader facade.
func TestLoadProblemConstructors(t *testing.T) {
	for _, tc := range []struct {
		name string
		path string
		load func(f *os.File) (Problem, error)
	}{
		{"graph", "internal/graph/testdata/grid6x6.graph",
			func(f *os.File) (Problem, error) { return LoadGraphProblem(f, 11) }},
		{"matrix", "internal/spatial/testdata/hotspots.mtx",
			func(f *os.File) (Problem, error) { return LoadMatrixProblem(f, 11) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := os.Open(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			p, err := tc.load(f)
			if err != nil {
				t.Fatal(err)
			}
			if !(p.Weight() > 0) {
				t.Fatalf("loaded root weight %v", p.Weight())
			}
			if !p.CanBisect() {
				t.Fatal("checked-in instance should be bisectable")
			}
		})
	}
}

func TestLoadHypergraphProblem(t *testing.T) {
	f, err := os.Open("internal/graph/testdata/tri.hgr")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := LoadHypergraphProblem(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CanBisect() {
		t.Fatal("tri.hgr should be bisectable")
	}
}

// TestLoadProblemErrors: malformed inputs surface the loader's typed
// errors through the facade instead of partially-built problems.
func TestLoadProblemErrors(t *testing.T) {
	if _, err := LoadGraphProblem(strings.NewReader("not a graph"), 1); err == nil {
		t.Fatal("malformed graph accepted")
	}
	if _, err := LoadHypergraphProblem(strings.NewReader("0 0"), 1); err == nil {
		t.Fatal("empty hypergraph accepted")
	}
	if _, err := LoadMatrixProblem(strings.NewReader("1 1"), 1); err == nil {
		t.Fatal("malformed matrix accepted")
	}
}
