package bisectlb_test

import (
	"errors"
	"testing"

	"bisectlb"
)

// TestBalanceIntoMatchesBalance checks the public flat facade end to
// end: same partition as Balance for every supported algorithm, zero
// steady-state allocations, and the same typed errors for bad input.
func TestBalanceIntoMatchesBalance(t *testing.T) {
	root, kernel, err := bisectlb.NewSyntheticFlat(1, 0.1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(64)
	var plan bisectlb.Plan
	for _, alg := range []bisectlb.Algorithm{
		bisectlb.HFAlgorithm, bisectlb.BAAlgorithm, bisectlb.BAHFAlgorithm, bisectlb.PHFAlgorithm,
	} {
		cfg := bisectlb.Config{Algorithm: alg, Alpha: 0.1}
		if err := bisectlb.BalanceInto(&plan, pl, kernel, root, 64, cfg); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		res, err := bisectlb.Balance(p, 64, cfg)
		if err != nil {
			t.Fatalf("%s interface: %v", alg, err)
		}
		if len(plan.Parts) != len(res.Parts) {
			t.Fatalf("%s: %d flat parts, %d interface parts", alg, len(plan.Parts), len(res.Parts))
		}
		for i := range plan.Parts {
			if plan.Parts[i].Node.ID != res.Parts[i].Problem.ID() ||
				plan.Parts[i].Node.Weight != res.Parts[i].Problem.Weight() ||
				int(plan.Parts[i].Procs) != res.Parts[i].Procs {
				t.Fatalf("%s part %d diverged: flat %+v, interface {id %d w %g procs %d}",
					alg, i, plan.Parts[i], res.Parts[i].Problem.ID(),
					res.Parts[i].Problem.Weight(), res.Parts[i].Procs)
			}
		}
	}
}

func TestBalanceIntoSteadyStateAllocationFree(t *testing.T) {
	root, kernel, err := bisectlb.NewSyntheticFlat(1, 0.1, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(256)
	var plan bisectlb.Plan
	cfg := bisectlb.Config{Algorithm: bisectlb.HFAlgorithm}
	if err := bisectlb.BalanceInto(&plan, pl, kernel, root, 256, cfg); err != nil {
		t.Fatal(err) // warm the buffers
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := bisectlb.BalanceInto(&plan, pl, kernel, root, 256, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state BalanceInto allocates %v/op, want 0", allocs)
	}
}

func TestBalanceIntoTypedErrors(t *testing.T) {
	root, kernel, err := bisectlb.NewFixedFlat(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(4)
	var plan bisectlb.Plan
	cases := []struct {
		name string
		n    int
		cfg  bisectlb.Config
		want error
	}{
		{"bad n", 0, bisectlb.Config{}, bisectlb.ErrBadN},
		{"alpha required", 4, bisectlb.Config{Algorithm: bisectlb.PHFAlgorithm}, bisectlb.ErrAlphaRequired},
		{"bad alpha", 4, bisectlb.Config{Algorithm: bisectlb.PHFAlgorithm, Alpha: 0.9}, bisectlb.ErrBadAlpha},
		{"bad kappa", 4, bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.3, Kappa: -1}, bisectlb.ErrBadKappa},
		{"parallel", 4, bisectlb.Config{Algorithm: bisectlb.ParallelBAAlgorithm}, bisectlb.ErrNoFlatPlanner},
		{"unknown", 4, bisectlb.Config{Algorithm: bisectlb.Algorithm(99)}, bisectlb.ErrUnknownAlgorithm},
	}
	for _, tc := range cases {
		if err := bisectlb.BalanceInto(&plan, pl, kernel, root, tc.n, tc.cfg); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := bisectlb.BalanceInto(&plan, pl, nil, root, 4, bisectlb.Config{}); !errors.Is(err, bisectlb.ErrNilProblem) {
		t.Fatalf("nil kernel: got %v, want ErrNilProblem", err)
	}
	if _, _, err := bisectlb.NewSyntheticFlat(0, 0.1, 0.5, 1); err == nil {
		t.Fatal("NewSyntheticFlat accepted weight 0")
	}
	if _, _, err := bisectlb.NewFixedFlat(1, 0.7); err == nil {
		t.Fatal("NewFixedFlat accepted α > 1/2")
	}
	if _, _, err := bisectlb.NewListFlat(0, 0.2, 1); err == nil {
		t.Fatal("NewListFlat accepted 0 elements")
	}
}
