package bisectlb_test

import (
	"testing"

	"bisectlb"
	"bisectlb/internal/verify"
)

// mustProblem builds the standard synthetic test problem.
func mustProblem(t *testing.T) bisectlb.Problem {
	t.Helper()
	p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDirectAlgorithmWrappers checks that the per-algorithm convenience
// functions produce exactly the partition Balance produces for the
// matching Config — they are documented as equivalent entry points.
func TestDirectAlgorithmWrappers(t *testing.T) {
	p := mustProblem(t)
	const n = 32

	ba, err := bisectlb.BA(p, n)
	if err != nil {
		t.Fatal(err)
	}
	viaBalance, err := bisectlb.Balance(p, n, bisectlb.Config{Algorithm: bisectlb.BAAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(ba, viaBalance) {
		t.Fatal("BA() diverges from Balance(BAAlgorithm)")
	}
	if err := verify.CheckPartition(ba, n, 1e-9); err != nil {
		t.Fatal(err)
	}

	bahf, err := bisectlb.BAHF(p, n, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	viaBalance, err = bisectlb.Balance(p, n, bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.1, Kappa: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(bahf, viaBalance) {
		t.Fatal("BAHF() diverges from Balance(BAHFAlgorithm)")
	}
	if err := verify.CheckGuarantee(bahf, 0.1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestParallelWrappersAndDispatch covers the goroutine-parallel entry
// points, both direct and through Balance: the parallel executions must
// agree with their sequential counterparts on the partition.
func TestParallelWrappersAndDispatch(t *testing.T) {
	p := mustProblem(t)
	const n = 32
	opt := bisectlb.ParallelOptions{Workers: 4}

	pba, err := bisectlb.ParallelBA(p, n, opt)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := bisectlb.BA(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(pba, ba) {
		t.Fatal("ParallelBA diverges from BA")
	}
	viaBalance, err := bisectlb.Balance(p, n, bisectlb.Config{Algorithm: bisectlb.ParallelBAAlgorithm, Parallel: opt})
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(viaBalance, ba) {
		t.Fatal("Balance(ParallelBAAlgorithm) diverges from BA")
	}

	pphf, err := bisectlb.ParallelPHF(p, n, 0.1, opt)
	if err != nil {
		t.Fatal(err)
	}
	phf, err := bisectlb.PHF(p, n, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(&pphf.Result, &phf.Result) {
		t.Fatal("ParallelPHF diverges from PHF")
	}
	viaBalance, err = bisectlb.Balance(p, n, bisectlb.Config{Algorithm: bisectlb.ParallelPHFAlgorithm, Alpha: 0.1, Parallel: opt})
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(viaBalance, &phf.Result) {
		t.Fatal("Balance(ParallelPHFAlgorithm) diverges from PHF")
	}
}

// TestGuaranteeErrorPaths covers the bound accessors' input validation.
func TestGuaranteeErrorPaths(t *testing.T) {
	if _, err := bisectlb.GuaranteeBA(0.3, 0); err == nil {
		t.Error("GuaranteeBA accepted n=0")
	}
	if _, err := bisectlb.GuaranteeBA(0.7, 4); err == nil {
		t.Error("GuaranteeBA accepted α>1/2")
	}
	if _, err := bisectlb.GuaranteeBAHF(0.3, -1); err == nil {
		t.Error("GuaranteeBAHF accepted κ<0")
	}
	if _, err := bisectlb.GuaranteeBAHF(0, 1); err == nil {
		t.Error("GuaranteeBAHF accepted α=0")
	}
}

// TestNewListFlatMatchesInterface checks the list family's flat
// constructor: its plan is bit-identical to the interface path's result,
// and invalid element counts are rejected.
func TestNewListFlatMatchesInterface(t *testing.T) {
	root, k, err := bisectlb.NewListFlat(100, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(8)
	var plan bisectlb.Plan
	if err := bisectlb.BalanceInto(&plan, pl, k, root, 8, bisectlb.Config{}); err != nil {
		t.Fatal(err)
	}
	p, err := bisectlb.NewListProblem(100, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bisectlb.HF(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckPlanParity(&plan, res); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bisectlb.NewListFlat(0, 0.25, 7); err == nil {
		t.Fatal("NewListFlat accepted an empty list")
	}
}

// TestBalanceIntoPlanReuse re-plans into ONE Plan across very different
// processor counts — growing, shrinking, growing again — and checks each
// result is bit-identical to a plan computed into a fresh Plan. This is
// the documented reuse pattern (the lbserve pool does exactly this), so
// stale state from a larger earlier plan leaking into a smaller later
// one would corrupt production responses.
func TestBalanceIntoPlanReuse(t *testing.T) {
	root, k, err := bisectlb.NewSyntheticFlat(1, 0.1, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl := bisectlb.NewPlanner(4)
	var reused bisectlb.Plan
	for _, tc := range []struct {
		n   int
		cfg bisectlb.Config
	}{
		{64, bisectlb.Config{}},
		{4, bisectlb.Config{Algorithm: bisectlb.BAAlgorithm}},
		{17, bisectlb.Config{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.1, Kappa: 2}},
		{256, bisectlb.Config{Algorithm: bisectlb.PHFAlgorithm, Alpha: 0.1}},
		{3, bisectlb.Config{}},
	} {
		if err := bisectlb.BalanceInto(&reused, pl, k, root, tc.n, tc.cfg); err != nil {
			t.Fatalf("n=%d %s: %v", tc.n, tc.cfg.Algorithm, err)
		}
		if err := verify.CheckPlan(&reused, tc.n, 1e-9); err != nil {
			t.Fatalf("n=%d %s: reused plan invalid: %v", tc.n, tc.cfg.Algorithm, err)
		}
		var fresh bisectlb.Plan
		if err := bisectlb.BalanceInto(&fresh, bisectlb.NewPlanner(tc.n), k, root, tc.n, tc.cfg); err != nil {
			t.Fatalf("n=%d %s fresh: %v", tc.n, tc.cfg.Algorithm, err)
		}
		if err := verify.CheckPlansEqual(&reused, &fresh); err != nil {
			t.Fatalf("n=%d %s: reused plan diverges from fresh: %v", tc.n, tc.cfg.Algorithm, err)
		}
	}
}

// TestHeteroHFBadSpeeds covers the machine-validation error path.
func TestHeteroHFBadSpeeds(t *testing.T) {
	p := mustProblem(t)
	if _, err := bisectlb.HeteroHF(p, nil); err == nil {
		t.Error("HeteroHF accepted an empty machine")
	}
	if _, err := bisectlb.HeteroHF(p, []float64{1, -2}); err == nil {
		t.Error("HeteroHF accepted a negative speed")
	}
}

// TestProblemGeneratorValidation covers the FE-tree and search-tree
// constructors: zero configs are rejected, valid configs balance cleanly.
func TestProblemGeneratorValidation(t *testing.T) {
	if _, err := bisectlb.NewFEMTreeProblem(bisectlb.FEMTreeConfig{}); err == nil {
		t.Fatal("zero FEMTreeConfig accepted")
	}
	fem, err := bisectlb.NewFEMTreeProblem(bisectlb.FEMTreeConfig{
		MaxDepth: 5, MinDepth: 2, RefineBias: 0.7, Singularity: 0.3, BaseDofs: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bisectlb.HF(fem, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckPartition(res, 8, 1e-9); err != nil {
		t.Fatal(err)
	}

	if _, err := bisectlb.NewSearchTreeProblem(bisectlb.SearchTreeConfig{}); err == nil {
		t.Fatal("zero SearchTreeConfig accepted")
	}
	st, err := bisectlb.NewSearchTreeProblem(bisectlb.SearchTreeConfig{
		MaxDepth: 6, MaxBranch: 3, ExpandProb: 0.8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = bisectlb.BA(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckPartition(res, 8, 1e-9); err != nil {
		t.Fatal(err)
	}
}
