package bisectlb

import (
	"errors"
	"testing"
)

// TestBalanceTypedErrors is the facade-hardening contract: Balance with a
// nil problem, a bad processor count, or an α-aware algorithm without (or
// with an out-of-range) Alpha returns the matching typed error and never
// panics. The lbserve service hands user input straight to this path.
func TestBalanceTypedErrors(t *testing.T) {
	ok, err := NewSyntheticProblem(1, 0.1, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    Problem
		n    int
		cfg  Config
		want error
	}{
		{"nil problem HF", nil, 4, Config{Algorithm: HFAlgorithm}, ErrNilProblem},
		{"nil problem BA", nil, 4, Config{Algorithm: BAAlgorithm}, ErrNilProblem},
		{"nil problem PHF", nil, 4, Config{Algorithm: PHFAlgorithm, Alpha: 0.1}, ErrNilProblem},
		{"nil problem parallel-BA", nil, 4, Config{Algorithm: ParallelBAAlgorithm}, ErrNilProblem},
		{"zero n", ok, 0, Config{Algorithm: HFAlgorithm}, ErrBadN},
		{"negative n", ok, -3, Config{Algorithm: BAAlgorithm}, ErrBadN},
		{"PHF without alpha", ok, 4, Config{Algorithm: PHFAlgorithm}, ErrAlphaRequired},
		{"BA-HF without alpha", ok, 4, Config{Algorithm: BAHFAlgorithm}, ErrAlphaRequired},
		{"parallel-PHF without alpha", ok, 4, Config{Algorithm: ParallelPHFAlgorithm}, ErrAlphaRequired},
		{"PHF alpha too large", ok, 4, Config{Algorithm: PHFAlgorithm, Alpha: 0.7}, ErrBadAlpha},
		{"BA-HF alpha negative", ok, 4, Config{Algorithm: BAHFAlgorithm, Alpha: -0.1}, ErrBadAlpha},
		{"BA-HF negative kappa", ok, 4, Config{Algorithm: BAHFAlgorithm, Alpha: 0.2, Kappa: -1}, ErrBadKappa},
		{"unknown algorithm", ok, 4, Config{Algorithm: Algorithm(99)}, ErrUnknownAlgorithm},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Balance(tc.p, tc.n, tc.cfg)
			if res != nil {
				t.Fatalf("Balance returned a result alongside expected error %v", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Balance error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// TestBalanceValidInputStillWorks guards against over-eager validation:
// every algorithm still succeeds on a well-formed request.
func TestBalanceValidInputStillWorks(t *testing.T) {
	p, err := NewSyntheticProblem(1, 0.1, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Algorithm: HFAlgorithm},
		{Algorithm: BAAlgorithm},
		{Algorithm: BAHFAlgorithm, Alpha: 0.1, Kappa: 2},
		{Algorithm: PHFAlgorithm, Alpha: 0.1},
		{Algorithm: ParallelBAAlgorithm},
		{Algorithm: ParallelPHFAlgorithm, Alpha: 0.1},
	} {
		// Problems are stateless roots: rebuilding per run keeps IDs
		// deterministic without cross-algorithm interference.
		q, _ := NewSyntheticProblem(1, 0.1, 0.5, 7)
		res, err := Balance(q, 16, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
	}
	_ = p
}

func TestParseAlgorithm(t *testing.T) {
	for in, want := range map[string]Algorithm{
		"HF": HFAlgorithm, "hf": HFAlgorithm,
		"BA": BAAlgorithm, "ba-hf": BAHFAlgorithm, "BAHF": BAHFAlgorithm,
		"PHF": PHFAlgorithm, "parallel-BA": ParallelBAAlgorithm,
		"Parallel-PHF": ParallelPHFAlgorithm, " phf ": PHFAlgorithm,
	} {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("quantum"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("ParseAlgorithm(quantum) error = %v, want ErrUnknownAlgorithm", err)
	}
}
