package bisectlb

import (
	"bisectlb/internal/bisect"
	"bisectlb/internal/femtree"
	"bisectlb/internal/quadrature"
	"bisectlb/internal/searchtree"
)

// NewSyntheticProblem returns a root problem of weight w following the
// paper's stochastic model: every bisection draws α̂ ~ U[lo, hi]
// independently (0 < lo ≤ hi ≤ 1/2). The class has lo-bisectors.
func NewSyntheticProblem(w, lo, hi float64, seed uint64) (Problem, error) {
	return bisect.NewSynthetic(w, lo, hi, seed)
}

// NewFixedProblem returns a root problem whose every bisection splits
// exactly (1−alpha, alpha) — the adversarial extreme of an alpha-bisector
// class.
func NewFixedProblem(w, alpha float64) (Problem, error) {
	return bisect.NewFixed(w, alpha)
}

// NewListProblem returns an n-element list problem bisected by random
// pivots guarded to rank window [⌈alpha·n⌉, ⌊(1−alpha)·n⌋], the concrete
// model the paper cites to justify its uniform-α̂ assumption.
func NewListProblem(n int, alpha float64, seed uint64) (Problem, error) {
	return bisect.NewList(n, alpha, seed)
}

// FEMTreeConfig mirrors femtree.GenConfig for public use.
type FEMTreeConfig struct {
	MaxDepth    int
	MinDepth    int
	RefineBias  float64
	Singularity float64
	BaseDofs    float64
	Seed        uint64
}

// NewFEMTreeProblem generates a synthetic adaptive-substructuring FE-tree
// and returns the whole tree as a region problem. FE-trees carry no
// a-priori α guarantee; probe with ProbeAlpha before declaring one.
func NewFEMTreeProblem(cfg FEMTreeConfig) (Problem, error) {
	t, err := femtree.Generate(femtree.GenConfig(cfg))
	if err != nil {
		return nil, err
	}
	return femtree.NewRegion(t), nil
}

// DefaultFEMTreeProblem generates an FE-tree problem with the default
// configuration for the given seed.
func DefaultFEMTreeProblem(seed uint64) Problem {
	return femtree.NewRegion(femtree.MustGenerate(femtree.DefaultGenConfig(seed)))
}

// QuadratureSplit selects the box-bisection strategy.
type QuadratureSplit int

const (
	// QuadratureMedianSplit cuts at the weighted median of the difficulty
	// density — the good bisector.
	QuadratureMedianSplit QuadratureSplit = iota
	// QuadratureMidpointSplit cuts at the geometric midpoint — the weaker
	// comparison bisector.
	QuadratureMidpointSplit
)

// NewQuadratureProblem returns the unit square (with the default two-peak
// integrand) as an adaptive-quadrature work problem.
func NewQuadratureProblem(split QuadratureSplit, seed uint64) (Problem, error) {
	mode := quadrature.SplitMedian
	if split == QuadratureMidpointSplit {
		mode = quadrature.SplitMidpoint
	}
	return quadrature.NewRootBox(quadrature.DefaultIntegrand(seed), mode, 1e-4)
}

// SearchTreeConfig mirrors searchtree.GenConfig for public use.
type SearchTreeConfig struct {
	MaxDepth   int
	MaxBranch  int
	ExpandProb float64
	Seed       uint64
}

// NewSearchTreeProblem generates a synthetic backtrack-search tree and
// returns its root frontier as a load-balancing problem.
func NewSearchTreeProblem(cfg SearchTreeConfig) (Problem, error) {
	t, err := searchtree.Generate(searchtree.GenConfig(cfg))
	if err != nil {
		return nil, err
	}
	return searchtree.NewFrontier(t), nil
}

// DefaultSearchTreeProblem generates a search-frontier problem with the
// default configuration for the given seed.
func DefaultSearchTreeProblem(seed uint64) Problem {
	return searchtree.NewFrontier(searchtree.MustGenerate(searchtree.DefaultGenConfig(seed)))
}

// ProbeAlpha expands p heaviest-first into up to maxParts pieces and
// returns the smallest split fraction min(w1, w2)/w observed — a
// conservative empirical α estimate for substrates without an a-priori
// guarantee. Declare something strictly below the returned value.
func ProbeAlpha(p Problem, maxParts int) float64 {
	if maxParts < 2 || p == nil || !p.CanBisect() {
		return 0.5
	}
	worst := 0.5
	pool := []Problem{p}
	for len(pool) < maxParts {
		best := -1
		for i, q := range pool {
			if q.CanBisect() && (best == -1 || q.Weight() > pool[best].Weight()) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		q := pool[best]
		a, b := q.Bisect()
		if frac := b.Weight() / q.Weight(); frac < worst {
			worst = frac
		}
		pool[best] = a
		pool = append(pool, b)
	}
	return worst
}
