// Package bisectlb is a Go implementation of the load-balancing framework
// of Bischof, Ebner and Erlebach, "Parallel Load Balancing for Problems
// with Good Bisectors" (IPPS/SPDP 1999).
//
// A class of problems has α-bisectors if every problem of weight w can be
// split into two subproblems whose weights sum to w and each lie within
// [α·w, (1−α)·w]. Given such a problem and N processors, the package
// partitions the problem into at most N subproblems by repeated bisection
// while provably bounding the maximum subproblem weight relative to the
// ideal share w/N:
//
//	HF     — sequential Heaviest Problem First; guarantee r_α.
//	PHF    — parallel HF producing the identical partition in O(log N)
//	         model time (for fixed α).
//	BA     — Best Approximation: inherently parallel recursive splitting,
//	         no knowledge of α, no global communication.
//	BA-HF  — hybrid with threshold parameter κ; its guarantee approaches
//	         HF's as κ grows.
//
// Problems enter through the Problem interface; packages under internal/
// provide ready-made substrates (the paper's synthetic stochastic model,
// FE-trees from adaptive substructuring, adaptive-quadrature regions and
// branch-and-bound search frontiers), all re-exported via constructors
// here. See README.md for a walk-through and DESIGN.md for the
// paper-to-code map.
package bisectlb

import (
	"errors"
	"fmt"
	"strings"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// Typed errors returned by Balance for invalid input. Callers that hand
// user-supplied requests to Balance (the lbserve service does exactly
// this) can map them to client-error responses with errors.Is.
var (
	// ErrNilProblem is returned when the root problem is nil.
	ErrNilProblem = bisect.ErrNilProblem
	// ErrBadN is returned when the processor count is < 1.
	ErrBadN = errors.New("bisectlb: processor count must be ≥ 1")
	// ErrAlphaRequired is returned when an α-aware algorithm (PHF, BA-HF,
	// parallel PHF) is selected without declaring Alpha.
	ErrAlphaRequired = errors.New("bisectlb: algorithm requires Alpha (0 < α ≤ 1/2)")
	// ErrBadAlpha is returned when a declared Alpha lies outside (0, 1/2].
	ErrBadAlpha = errors.New("bisectlb: Alpha must satisfy 0 < α ≤ 1/2")
	// ErrBadKappa is returned when BA-HF's Kappa is negative.
	ErrBadKappa = errors.New("bisectlb: Kappa must be positive")
	// ErrUnknownAlgorithm is returned for an Algorithm value outside the
	// declared constants.
	ErrUnknownAlgorithm = errors.New("bisectlb: unknown algorithm")
)

// Problem is the unit of divisible load. See the documentation of
// internal/bisect.Problem for the determinism contract implementations
// must honour.
type Problem = bisect.Problem

// Result describes a computed partition; Part one of its subproblems.
type (
	Result    = core.Result
	Part      = core.Part
	PHFResult = core.PHFResult
)

// Options configure tree recording; ParallelOptions configure the
// goroutine-parallel executions.
type (
	Options         = core.Options
	ParallelOptions = core.ParallelOptions
)

// Violation reports a breach of the α-bisector contract found by CheckAlpha.
type Violation = bisect.Violation

// Algorithm selects a load-balancing strategy for Balance.
type Algorithm int

const (
	// HFAlgorithm is the sequential heaviest-first baseline.
	HFAlgorithm Algorithm = iota
	// BAAlgorithm is the recursive best-approximation algorithm.
	BAAlgorithm
	// BAHFAlgorithm is the BA/HF hybrid (requires Alpha; Kappa > 0).
	BAHFAlgorithm
	// PHFAlgorithm is the parallelised HF (requires Alpha).
	PHFAlgorithm
	// ParallelBAAlgorithm executes BA with goroutine parallelism.
	ParallelBAAlgorithm
	// ParallelPHFAlgorithm executes PHF with goroutine workers and
	// collective operations (requires Alpha).
	ParallelPHFAlgorithm
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case HFAlgorithm:
		return "HF"
	case BAAlgorithm:
		return "BA"
	case BAHFAlgorithm:
		return "BA-HF"
	case PHFAlgorithm:
		return "PHF"
	case ParallelBAAlgorithm:
		return "parallel-BA"
	case ParallelPHFAlgorithm:
		return "parallel-PHF"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps an algorithm name (as produced by Algorithm.String,
// case-insensitively and accepting "BAHF"/"PBA"/"PPHF" shorthands) back to
// its constant. Unknown names return ErrUnknownAlgorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "HF":
		return HFAlgorithm, nil
	case "BA":
		return BAAlgorithm, nil
	case "BA-HF", "BAHF":
		return BAHFAlgorithm, nil
	case "PHF":
		return PHFAlgorithm, nil
	case "PARALLEL-BA", "PBA":
		return ParallelBAAlgorithm, nil
	case "PARALLEL-PHF", "PPHF":
		return ParallelPHFAlgorithm, nil
	default:
		return 0, fmt.Errorf("%w %q", ErrUnknownAlgorithm, s)
	}
}

// Config selects and parameterises an algorithm for Balance.
type Config struct {
	// Algorithm picks the strategy; the zero value is HF.
	Algorithm Algorithm
	// Alpha is the class's bisector guarantee, required by PHF, BA-HF and
	// parallel PHF. Must satisfy 0 < Alpha ≤ 1/2 where required.
	Alpha float64
	// Kappa is BA-HF's threshold parameter; zero means 1.0.
	Kappa float64
	// Options configure bisection-tree recording (sequential algorithms).
	Options Options
	// Parallel configures worker counts for the parallel executions.
	Parallel ParallelOptions
}

// validateConfig checks Balance's inputs up front so every rejection is a
// typed error regardless of which algorithm would have received it.
func validateConfig(p Problem, n int, cfg Config) error {
	if p == nil {
		return ErrNilProblem
	}
	if n < 1 {
		return fmt.Errorf("%w, got %d", ErrBadN, n)
	}
	switch cfg.Algorithm {
	case HFAlgorithm, BAAlgorithm, ParallelBAAlgorithm:
		// α-oblivious algorithms.
	case PHFAlgorithm, ParallelPHFAlgorithm, BAHFAlgorithm:
		if cfg.Alpha == 0 {
			return fmt.Errorf("%w: %s needs it", ErrAlphaRequired, cfg.Algorithm)
		}
		if !(cfg.Alpha > 0 && cfg.Alpha <= 0.5) {
			return fmt.Errorf("%w, got %v", ErrBadAlpha, cfg.Alpha)
		}
		if cfg.Algorithm == BAHFAlgorithm && cfg.Kappa < 0 {
			return fmt.Errorf("%w, got %v", ErrBadKappa, cfg.Kappa)
		}
	default:
		return fmt.Errorf("%w %v", ErrUnknownAlgorithm, cfg.Algorithm)
	}
	return nil
}

// Balance partitions p into at most n subproblems with the configured
// algorithm. Invalid input — a nil problem, n < 1, a missing or
// out-of-range Alpha for an α-aware algorithm, a negative Kappa, or an
// unknown Algorithm — is rejected with one of the typed errors above.
func Balance(p Problem, n int, cfg Config) (*Result, error) {
	if err := validateConfig(p, n, cfg); err != nil {
		return nil, err
	}
	switch cfg.Algorithm {
	case HFAlgorithm:
		return core.HF(p, n, cfg.Options)
	case BAAlgorithm:
		return core.BA(p, n, cfg.Options)
	case BAHFAlgorithm:
		kappa := cfg.Kappa
		if kappa == 0 {
			kappa = 1.0
		}
		return core.BAHF(p, n, cfg.Alpha, kappa, cfg.Options)
	case PHFAlgorithm:
		r, err := core.PHF(p, n, cfg.Alpha, cfg.Options)
		if err != nil {
			return nil, err
		}
		return &r.Result, nil
	case ParallelBAAlgorithm:
		return core.ParallelBA(p, n, cfg.Parallel)
	case ParallelPHFAlgorithm:
		r, err := core.ParallelPHF(p, n, cfg.Alpha, cfg.Parallel)
		if err != nil {
			return nil, err
		}
		return &r.Result, nil
	default:
		return nil, fmt.Errorf("%w %v", ErrUnknownAlgorithm, cfg.Algorithm)
	}
}

// HF runs the sequential Heaviest Problem First algorithm.
func HF(p Problem, n int) (*Result, error) { return core.HF(p, n, Options{}) }

// BA runs the Best Approximation algorithm.
func BA(p Problem, n int) (*Result, error) { return core.BA(p, n, Options{}) }

// BAHF runs the BA/HF hybrid with bisector parameter alpha and threshold
// parameter kappa.
func BAHF(p Problem, n int, alpha, kappa float64) (*Result, error) {
	return core.BAHF(p, n, alpha, kappa, Options{})
}

// PHF runs the parallelised HF, returning phase accounting alongside the
// partition. The partition equals HF's whenever subproblem weights are
// tie-free (see core.PHF for the tie caveat).
func PHF(p Problem, n int, alpha float64) (*PHFResult, error) {
	return core.PHF(p, n, alpha, Options{})
}

// ParallelBA runs BA with goroutine-parallel recursion.
func ParallelBA(p Problem, n int, opt ParallelOptions) (*Result, error) {
	return core.ParallelBA(p, n, opt)
}

// ParallelPHF runs PHF over goroutine workers with collective operations.
func ParallelPHF(p Problem, n int, alpha float64, opt ParallelOptions) (*PHFResult, error) {
	return core.ParallelPHF(p, n, alpha, opt)
}

// SamePartition reports whether two results consist of the same
// subproblems (compared by problem ID).
func SamePartition(a, b *Result) bool { return core.SamePartition(a, b) }

// GuaranteeHF returns r_α, the worst-case ratio bound of HF and PHF
// (Theorem 2 of the paper).
func GuaranteeHF(alpha float64) (float64, error) {
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return 0, err
	}
	return bounds.RHF(alpha), nil
}

// GuaranteeBA returns BA's worst-case ratio bound for n processors
// (Theorem 7 / Lemma 5).
func GuaranteeBA(alpha float64, n int) (float64, error) {
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("bisectlb: processor count must be ≥ 1, got %d", n)
	}
	return bounds.BA(alpha, n), nil
}

// GuaranteeBAHF returns BA-HF's worst-case ratio bound (Theorem 8).
func GuaranteeBAHF(alpha, kappa float64) (float64, error) {
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return 0, err
	}
	if err := bounds.ValidateKappa(kappa); err != nil {
		return 0, err
	}
	return bounds.BAHF(alpha, kappa), nil
}

// KappaFor returns the κ that brings BA-HF's guarantee within a (1+eps)
// factor of HF's (the paper's closing tuning rule).
func KappaFor(eps float64) (float64, error) {
	if !(eps > 0) {
		return 0, fmt.Errorf("bisectlb: eps must be positive, got %v", eps)
	}
	return bounds.KappaFor(eps), nil
}

// CheckAlpha explores p's bisection tree to maxDepth levels and reports
// violations of the α-bisector contract (children summing to the parent and
// staying within [α·w, (1−α)·w], with relative tolerance tol). Use it to
// validate a custom Problem implementation before declaring α to PHF or
// BA-HF.
func CheckAlpha(p Problem, alpha float64, maxDepth int, tol float64) []Violation {
	return bisect.Check(p, alpha, maxDepth, tol)
}
