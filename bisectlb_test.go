package bisectlb_test

import (
	"fmt"
	"log"
	"testing"

	"bisectlb"
)

func TestBalanceDispatch(t *testing.T) {
	mk := func() bisectlb.Problem {
		p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	algs := []bisectlb.Config{
		{Algorithm: bisectlb.HFAlgorithm},
		{Algorithm: bisectlb.BAAlgorithm},
		{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.1},
		{Algorithm: bisectlb.BAHFAlgorithm, Alpha: 0.1, Kappa: 2},
		{Algorithm: bisectlb.PHFAlgorithm, Alpha: 0.1},
		{Algorithm: bisectlb.ParallelBAAlgorithm},
		{Algorithm: bisectlb.ParallelPHFAlgorithm, Alpha: 0.1},
	}
	for _, cfg := range algs {
		res, err := bisectlb.Balance(mk(), 32, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		if len(res.Parts) != 32 {
			t.Fatalf("%v: %d parts", cfg.Algorithm, len(res.Parts))
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
	}
	if _, err := bisectlb.Balance(mk(), 32, bisectlb.Config{Algorithm: bisectlb.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[bisectlb.Algorithm]string{
		bisectlb.HFAlgorithm:          "HF",
		bisectlb.BAAlgorithm:          "BA",
		bisectlb.BAHFAlgorithm:        "BA-HF",
		bisectlb.PHFAlgorithm:         "PHF",
		bisectlb.ParallelBAAlgorithm:  "parallel-BA",
		bisectlb.ParallelPHFAlgorithm: "parallel-PHF",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d: name %q, want %q", int(a), a.String(), want)
		}
	}
	if bisectlb.Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}

func TestGuaranteesExposed(t *testing.T) {
	g, err := bisectlb.GuaranteeHF(1.0 / 3.0)
	if err != nil || g < 1.99 || g > 2.01 {
		t.Fatalf("GuaranteeHF(1/3) = %v, %v", g, err)
	}
	if _, err := bisectlb.GuaranteeHF(0); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := bisectlb.GuaranteeBA(0.2, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	gba, err := bisectlb.GuaranteeBA(0.2, 1024)
	if err != nil || gba <= g {
		t.Fatalf("GuaranteeBA = %v, %v", gba, err)
	}
	if _, err := bisectlb.GuaranteeBAHF(0.2, 0); err == nil {
		t.Fatal("κ=0 accepted")
	}
	k, err := bisectlb.KappaFor(0.1)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := bisectlb.GuaranteeBAHF(0.2, k)
	if err != nil {
		t.Fatal(err)
	}
	hf, _ := bisectlb.GuaranteeHF(0.2)
	if hyb > 1.1*hf+1e-9 {
		t.Fatalf("KappaFor(0.1) κ=%v leaves BA-HF bound %v above 1.1×%v", k, hyb, hf)
	}
	if _, err := bisectlb.KappaFor(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestPublicConstructorsAndProbe(t *testing.T) {
	if _, err := bisectlb.NewSyntheticProblem(0, 0.1, 0.5, 1); err == nil {
		t.Fatal("invalid synthetic accepted")
	}
	if _, err := bisectlb.NewFixedProblem(1, 0.7); err == nil {
		t.Fatal("invalid fixed accepted")
	}
	if _, err := bisectlb.NewListProblem(0, 0.2, 1); err == nil {
		t.Fatal("invalid list accepted")
	}
	if _, err := bisectlb.NewFEMTreeProblem(bisectlb.FEMTreeConfig{}); err == nil {
		t.Fatal("invalid FE-tree config accepted")
	}
	if _, err := bisectlb.NewSearchTreeProblem(bisectlb.SearchTreeConfig{}); err == nil {
		t.Fatal("invalid search-tree config accepted")
	}
	for _, p := range []bisectlb.Problem{
		bisectlb.DefaultFEMTreeProblem(1),
		bisectlb.DefaultSearchTreeProblem(1),
	} {
		a := bisectlb.ProbeAlpha(p, 64)
		if a <= 0 || a > 0.5 {
			t.Fatalf("ProbeAlpha = %v", a)
		}
	}
	if bisectlb.ProbeAlpha(nil, 64) != 0.5 {
		t.Fatal("nil probe should return 0.5")
	}
	q, err := bisectlb.NewQuadratureProblem(bisectlb.QuadratureMidpointSplit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.CanBisect() {
		t.Fatal("root quadrature box indivisible")
	}
}

func TestCheckAlphaExposed(t *testing.T) {
	p, err := bisectlb.NewSyntheticProblem(1, 0.3, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := bisectlb.CheckAlpha(p, 0.3, 6, 1e-9); len(v) != 0 {
		t.Fatalf("valid class flagged: %v", v)
	}
	if v := bisectlb.CheckAlpha(p, 0.49, 8, 1e-9); len(v) == 0 {
		t.Fatal("contract violation not flagged")
	}
}

func TestTheoremThreeThroughPublicAPI(t *testing.T) {
	p1, _ := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 77)
	p2, _ := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 77)
	hf, err := bisectlb.HF(p1, 500)
	if err != nil {
		t.Fatal(err)
	}
	phf, err := bisectlb.PHF(p2, 500, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !bisectlb.SamePartition(hf, &phf.Result) {
		t.Fatal("Theorem 3 violated through public API")
	}
}

// Example demonstrates the minimal workflow: construct a problem, balance
// it, inspect the ratio against the worst-case guarantee.
func Example() {
	problem, err := bisectlb.NewFixedProblem(1.0, 1.0/3.0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bisectlb.HF(problem, 3)
	if err != nil {
		log.Fatal(err)
	}
	guarantee, err := bisectlb.GuaranteeHF(1.0 / 3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parts=%d ratio=%.3f guarantee=%.0f\n", len(res.Parts), res.Ratio, guarantee)
	// Output: parts=3 ratio=1.333 guarantee=2
}
