package bisectlb_test

import (
	"math"
	"testing"

	"bisectlb"
)

func TestHeteroBAPublic(t *testing.T) {
	p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	speeds := bisectlb.SortedSpeeds([]float64{1, 4, 2, 8})
	if speeds[0] != 8 || speeds[3] != 1 {
		t.Fatalf("SortedSpeeds wrong: %v", speeds)
	}
	res, err := bisectlb.HeteroBA(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1-1e-9 {
		t.Fatalf("ratio %v below 1", res.Ratio)
	}
	sum := 0.0
	for _, a := range res.Assignments {
		sum += a.Problem.Weight()
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("assignment weights sum to %v", sum)
	}
	if _, err := bisectlb.HeteroBA(p, []float64{1, 0}); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestHeteroHFPublic(t *testing.T) {
	p, err := bisectlb.NewSyntheticProblem(1, 0.1, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bisectlb.HeteroHF(p, []float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	// Heaviest part must be served by the fastest processor (index 3).
	best := res.Assignments[0]
	for _, a := range res.Assignments[1:] {
		if a.Problem.Weight() > best.Problem.Weight() {
			best = a
		}
	}
	if best.Lo != 3 {
		t.Fatalf("heaviest on processor %d, want 3", best.Lo)
	}
}

func TestRecommendBranches(t *testing.T) {
	cases := []struct {
		profile bisectlb.MachineProfile
		n       int
		want    bisectlb.Algorithm
	}{
		{bisectlb.MachineProfile{Sequential: true}, 64, bisectlb.HFAlgorithm},
		{bisectlb.MachineProfile{}, 1, bisectlb.HFAlgorithm},
		{bisectlb.MachineProfile{GlobalOpsCheap: true}, 64, bisectlb.PHFAlgorithm},
		{bisectlb.MachineProfile{BalanceCritical: true}, 64, bisectlb.BAHFAlgorithm},
		{bisectlb.MachineProfile{}, 64, bisectlb.BAAlgorithm},
	}
	for i, c := range cases {
		rec, err := bisectlb.Recommend(0.2, c.n, 0.1, c.profile)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rec.Algorithm != c.want {
			t.Fatalf("case %d: recommended %v, want %v", i, rec.Algorithm, c.want)
		}
		if rec.Guarantee <= 0 || rec.Rationale == "" {
			t.Fatalf("case %d: incomplete recommendation %+v", i, rec)
		}
	}
}

func TestRecommendBAHFKappaHonoursEps(t *testing.T) {
	rec, err := bisectlb.Recommend(0.2, 128, 0.05, bisectlb.MachineProfile{BalanceCritical: true})
	if err != nil {
		t.Fatal(err)
	}
	hf, _ := bisectlb.GuaranteeHF(0.2)
	if rec.Guarantee > 1.05*hf+1e-9 {
		t.Fatalf("BA-HF recommendation %v outside 1.05×HF bound %v", rec.Guarantee, hf)
	}
	if rec.Kappa <= 0 {
		t.Fatal("κ missing")
	}
}

func TestRecommendErrors(t *testing.T) {
	if _, err := bisectlb.Recommend(0, 8, 0.1, bisectlb.MachineProfile{}); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := bisectlb.Recommend(0.2, 0, 0.1, bisectlb.MachineProfile{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := bisectlb.Recommend(0.2, 8, 0, bisectlb.MachineProfile{}); err == nil {
		t.Fatal("eps=0 accepted")
	}
}
