package pheap

import (
	"sort"
	"testing"
	"testing/quick"

	"bisectlb/internal/xrand"
)

func TestEmptyHeap(t *testing.T) {
	h := New(0)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	if !panics(func() { h.Pop() }) {
		t.Fatal("Pop on empty should panic")
	}
	if !panics(func() { h.Peek() }) {
		t.Fatal("Peek on empty should panic")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return
}

func TestPushPopOrder(t *testing.T) {
	h := New(4)
	h.Push(Item{Weight: 1, ID: 1})
	h.Push(Item{Weight: 5, ID: 2})
	h.Push(Item{Weight: 3, ID: 3})
	h.Push(Item{Weight: 4, ID: 4})
	want := []float64{5, 4, 3, 1}
	for i, w := range want {
		if got := h.Pop().Weight; got != w {
			t.Fatalf("pop %d: got %v want %v", i, got, w)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	h := New(3)
	h.Push(Item{Weight: 2, ID: 30})
	h.Push(Item{Weight: 2, ID: 10})
	h.Push(Item{Weight: 2, ID: 20})
	ids := []uint64{h.Pop().ID, h.Pop().ID, h.Pop().ID}
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Fatalf("tie-break order wrong: %v", ids)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := New(2)
	h.Push(Item{Weight: 7, ID: 1})
	if h.Peek().Weight != 7 || h.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

func TestItemsAndReset(t *testing.T) {
	h := New(3)
	for i := 0; i < 3; i++ {
		h.Push(Item{Weight: float64(i), ID: uint64(i), Ref: int32(i)})
	}
	if got := len(h.Items()); got != 3 {
		t.Fatalf("Items returned %d entries, want 3", got)
	}
	seen := map[int32]bool{}
	for _, it := range h.Items() {
		seen[it.Ref] = true
	}
	for i := int32(0); i < 3; i++ {
		if !seen[i] {
			t.Fatalf("Items lost ref %d", i)
		}
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("heap has %d items after Reset", h.Len())
	}
	h.Push(Item{Weight: 1, ID: 9})
	if h.Len() != 1 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestPushPopAllocationFree(t *testing.T) {
	h := New(64)
	for i := 0; i < 64; i++ {
		h.Push(Item{Weight: float64(i), ID: uint64(i), Ref: int32(i)})
	}
	allocs := testing.AllocsPerRun(100, func() {
		it := h.Pop()
		it.Weight *= 0.5
		h.Push(it)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocates %v allocs/op, want 0", allocs)
	}
}

func TestHeapSortsRandomInput(t *testing.T) {
	rng := xrand.New(42)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		n := 1 + rng.Intn(300)
		h := New(n)
		var ws []float64
		for i := 0; i < n; i++ {
			w := rng.InRange(0, 100)
			ws = append(ws, w)
			h.Push(Item{Weight: w, ID: uint64(i)})
		}
		if !h.Verify() {
			return false
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		for _, w := range ws {
			if h.Pop().Weight != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	rng := xrand.New(7)
	h := New(0)
	live := 0
	for step := 0; step < 10000; step++ {
		if live == 0 || rng.Float64() < 0.6 {
			h.Push(Item{Weight: rng.Float64(), ID: uint64(step)})
			live++
		} else {
			prev := h.Pop().Weight
			live--
			if live > 0 && h.Peek().Weight > prev {
				t.Fatalf("heap order violated at step %d", step)
			}
		}
	}
	if !h.Verify() {
		t.Fatal("invariant broken after interleaving")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	h := New(3)
	h.Push(Item{Weight: 1, ID: 1})
	h.Push(Item{Weight: 2, ID: 2})
	h.Push(Item{Weight: 3, ID: 3})
	h.items[0].Weight = 0 // corrupt the root
	if h.Verify() {
		t.Fatal("Verify missed corruption")
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := xrand.New(1)
	h := New(1024)
	for i := 0; i < 1024; i++ {
		h.Push(Item{Weight: rng.Float64(), ID: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := h.Pop()
		it.Weight *= 0.99
		h.Push(it)
	}
}
