package pheap

import "unsafe"

// Item is an entry in the heap. ID must be unique within one heap; it is the
// deterministic tie-breaker (smaller ID wins among equal weights) and the
// handle used by the experiments to identify subproblems. Ref is an opaque
// caller-owned index, typically into a node arena; the heap never interprets
// it.
type Item struct {
	Weight float64
	ID     uint64
	Ref    int32
}

// Heap is a max-heap of Items ordered by Weight, ties broken by smaller ID.
// The zero value is an empty heap ready for use.
type Heap struct {
	items    []Item
	draining bool
}

// New returns a heap pre-sized for capacity items.
func New(capacity int) *Heap {
	if capacity < 0 {
		capacity = 0
	}
	return &Heap{items: make([]Item, 0, capacity)}
}

// Len returns the number of items in the heap.
func (h *Heap) Len() int { return len(h.items) }

// less reports whether the item at index i has priority over the item at j.
func (h *Heap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return a.ID < b.ID
}

// Push inserts an item. It panics if called from inside a Drain callback:
// mutating the heap mid-drain would invalidate the iteration.
func (h *Heap) Push(it Item) {
	if h.draining {
		panic("pheap: Push during Drain")
	}
	h.items = append(h.items, it)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the heaviest item. It panics on an empty heap;
// callers (Algorithm HF) always know the heap size. Like Push it panics
// when called from inside a Drain callback.
func (h *Heap) Pop() Item {
	if h.draining {
		panic("pheap: Pop during Drain")
	}
	if len(h.items) == 0 {
		panic("pheap: Pop from empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the heaviest item without removing it.
func (h *Heap) Peek() Item {
	if len(h.items) == 0 {
		panic("pheap: Peek at empty heap")
	}
	return h.items[0]
}

// Items returns a view of the heap's contents in heap order (not sorted
// order). The view aliases the heap's backing storage and is valid only
// until the next Push, Pop or Reset. Callers that need to empty the heap
// without allocating should prefer Drain, which cannot outlive its
// validity window.
func (h *Heap) Items() []Item { return h.items }

// Drain calls fn for every remaining item — in heap order, not sorted
// order — and then empties the heap, retaining the backing storage. It is
// the safe, allocation-free replacement for the Items-then-Reset idiom:
// the callback runs while the heap is locked against mutation, so a
// misuse that pushes (or pops) mid-drain panics instead of silently
// iterating a stale view. fn must not retain the heap's storage.
func (h *Heap) Drain(fn func(Item)) {
	if h.draining {
		panic("pheap: Drain during Drain")
	}
	h.draining = true
	// The deferred unlock keeps the guard an invariant check rather than
	// a latch: a recovered mid-drain panic leaves the heap resettable.
	defer func() { h.draining = false }()
	for i := range h.items {
		fn(h.items[i])
	}
	h.items = h.items[:0]
}

// Reset empties the heap, retaining the backing storage for reuse. It
// panics inside a Drain callback.
func (h *Heap) Reset() {
	if h.draining {
		panic("pheap: Reset during Drain")
	}
	h.items = h.items[:0]
}

// Footprint reports the bytes retained by the heap's backing storage,
// the quantity pool stewards cap (internal/service drops oversized
// pooled planners instead of retaining them forever).
func (h *Heap) Footprint() int { return cap(h.items) * int(unsafe.Sizeof(Item{})) }

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.less(right, left) {
			best = right
		}
		if !h.less(best, i) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// Verify checks the heap invariant and returns false at the first violation.
// It exists for tests and costs O(n).
func (h *Heap) Verify() bool {
	for i := 1; i < len(h.items); i++ {
		parent := (i - 1) / 2
		if h.less(i, parent) {
			return false
		}
	}
	return true
}
