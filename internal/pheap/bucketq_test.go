package pheap

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/xrand"
)

func TestBucketQueueEmpty(t *testing.T) {
	var q BucketQueue
	if q.Len() != 0 {
		t.Fatal("zero-value queue not empty")
	}
	if !panics(func() { q.Pop() }) {
		t.Fatal("Pop on empty should panic")
	}
	q.Push(Item{Weight: 1, ID: 1})
	if q.Len() != 1 || q.Peek().ID != 1 {
		t.Fatal("zero value unusable after first Push")
	}
}

// TestBucketQueueMatchesHeap is the order-parity pin: on arbitrary
// interleavings of pushes and pops — including the HF monotone pattern
// and adversarial non-monotone ones — the bucket queue pops the exact
// item sequence the binary heap does. This is the property that lets
// the flat planner switch queues while staying bit-identical.
func TestBucketQueueMatchesHeap(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		var h Heap
		var q BucketQueue
		live := 0
		for step := 0; step < 2000; step++ {
			if live == 0 || rng.Float64() < 0.55 {
				// Mix magnitudes across many binades, with deliberate
				// exact ties to exercise the ID tie-break.
				w := rng.InRange(0, 100)
				switch rng.Intn(5) {
				case 0:
					w *= 1e-12
				case 1:
					w *= 1e12
				case 2:
					w = 2.5 // exact tie
				}
				it := Item{Weight: w, ID: uint64(step), Ref: int32(step)}
				h.Push(it)
				q.Push(it)
				live++
			} else {
				a, b := h.Pop(), q.Pop()
				if a != b {
					t.Logf("step %d: heap popped %+v, bucket queue %+v", step, a, b)
					return false
				}
				live--
			}
		}
		if h.Len() != q.Len() {
			return false
		}
		if !q.Verify() {
			return false
		}
		for h.Len() > 0 {
			if h.Pop() != q.Pop() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketQueueTieBreakByID(t *testing.T) {
	var q BucketQueue
	q.Push(Item{Weight: 2, ID: 30})
	q.Push(Item{Weight: 2, ID: 10})
	q.Push(Item{Weight: 2, ID: 20})
	ids := []uint64{q.Pop().ID, q.Pop().ID, q.Pop().ID}
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Fatalf("tie-break order wrong: %v", ids)
	}
}

func TestBucketQueueNonPositiveWeights(t *testing.T) {
	var q BucketQueue
	q.Push(Item{Weight: 0, ID: 2})
	q.Push(Item{Weight: -1, ID: 3})
	q.Push(Item{Weight: 1, ID: 1})
	if got := []uint64{q.Pop().ID, q.Pop().ID, q.Pop().ID}; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("non-positive weights ordered wrong: %v", got)
	}
}

func TestBucketQueueResetRetainsStorage(t *testing.T) {
	q := NewBucketQueue()
	for i := 0; i < 100; i++ {
		q.Push(Item{Weight: float64(i + 1), ID: uint64(i)})
	}
	before := q.Footprint()
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("queue has %d items after Reset", q.Len())
	}
	if q.Footprint() != before {
		t.Fatalf("Reset changed footprint: %d -> %d", before, q.Footprint())
	}
	q.Push(Item{Weight: 5, ID: 9})
	if q.Pop().ID != 9 {
		t.Fatal("queue unusable after Reset")
	}
}

// TestBucketQueueAllocationFree is the amortized-O(1) half of the
// acceptance: once the directory and touched buckets are warm, the
// monotone push/pop pattern allocates nothing.
func TestBucketQueueAllocationFree(t *testing.T) {
	q := NewBucketQueue()
	for i := 0; i < 64; i++ {
		q.Push(Item{Weight: 100 - float64(i), ID: uint64(i)})
	}
	allocs := testing.AllocsPerRun(200, func() {
		it := q.Pop()
		it.Weight *= 0.5 // monotone: children lighter than the pop
		q.Push(it)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocates %v allocs/op, want 0", allocs)
	}
	q.Reset()
	allocs = testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(Item{Weight: 50 - float64(i), ID: uint64(i)})
		}
		q.Drain(func(Item) {})
	})
	if allocs != 0 {
		t.Fatalf("warm fill/drain cycle allocates %v allocs/op, want 0", allocs)
	}
}

// drainCollects checks Drain visits every item exactly once and leaves
// the queue empty and reusable.
func drainCollects(t *testing.T, push func(Item), drain func(func(Item)), length func() int) {
	t.Helper()
	want := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		push(Item{Weight: float64(50 - i), ID: uint64(i)})
		want[uint64(i)] = true
	}
	got := map[uint64]bool{}
	drain(func(it Item) {
		if got[it.ID] {
			t.Fatalf("Drain visited item %d twice", it.ID)
		}
		got[it.ID] = true
	})
	if len(got) != len(want) {
		t.Fatalf("Drain visited %d items, want %d", len(got), len(want))
	}
	if length() != 0 {
		t.Fatalf("queue holds %d items after Drain", length())
	}
	push(Item{Weight: 1, ID: 99})
	if length() != 1 {
		t.Fatal("queue unusable after Drain")
	}
}

func TestHeapDrain(t *testing.T) {
	var h Heap
	drainCollects(t, h.Push, h.Drain, h.Len)
}

func TestBucketQueueDrain(t *testing.T) {
	var q BucketQueue
	drainCollects(t, q.Push, q.Drain, q.Len)
}

// TestDrainForbidsMutation is the regression test for the fragile
// Items-then-Reset contract this API replaced: a caller that pushes (or
// pops, or resets) from inside the drain callback used to silently
// iterate a stale view; now it panics at the misuse site.
func TestDrainForbidsMutation(t *testing.T) {
	t.Run("heap", func(t *testing.T) {
		var h Heap
		h.Push(Item{Weight: 1, ID: 1})
		if !panics(func() { h.Drain(func(Item) { h.Push(Item{Weight: 2, ID: 2}) }) }) {
			t.Fatal("Push during Heap.Drain did not panic")
		}
		h.Reset()
		h.Push(Item{Weight: 1, ID: 1})
		if !panics(func() { h.Drain(func(Item) { h.Pop() }) }) {
			t.Fatal("Pop during Heap.Drain did not panic")
		}
		h.Reset()
		h.Push(Item{Weight: 1, ID: 1})
		if !panics(func() { h.Drain(func(Item) { h.Reset() }) }) {
			t.Fatal("Reset during Heap.Drain did not panic")
		}
	})
	t.Run("bucket", func(t *testing.T) {
		var q BucketQueue
		q.Push(Item{Weight: 1, ID: 1})
		if !panics(func() { q.Drain(func(Item) { q.Push(Item{Weight: 2, ID: 2}) }) }) {
			t.Fatal("Push during BucketQueue.Drain did not panic")
		}
		q.Reset()
		q.Push(Item{Weight: 1, ID: 1})
		if !panics(func() { q.Drain(func(Item) { q.Pop() }) }) {
			t.Fatal("Pop during BucketQueue.Drain did not panic")
		}
	})
}

// TestDrainRecoversAfterPanic pins that a recovered mid-drain panic does
// not wedge the structure: the draining flag is an invariant guard, not
// a latch. (The planner never recovers these panics — they are bugs —
// but tests that assert on them must not poison later subtests.)
func TestDrainRecoversAfterPanic(t *testing.T) {
	var h Heap
	h.Push(Item{Weight: 1, ID: 1})
	panics(func() { h.Drain(func(Item) { h.Push(Item{}) }) })
	// The heap is in an unspecified state after the panic; Reset must
	// still work so pooled planners can be recycled.
	if panics(h.Reset) {
		t.Fatal("Reset after a recovered Drain panic should succeed")
	}
}

func BenchmarkBucketQueuePushPop(b *testing.B) {
	rng := xrand.New(1)
	q := NewBucketQueue()
	for i := 0; i < 1024; i++ {
		q.Push(Item{Weight: rng.Float64(), ID: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := q.Pop()
		it.Weight *= 0.99
		q.Push(it)
	}
}

// TestBucketQueuePeekLazyScan pins Peek's lazy high-water walk: popping
// the sole item of the top binade leaves hi stale, and the next Peek
// must descend to the occupied bucket (and panic on an empty queue).
func TestBucketQueuePeekLazyScan(t *testing.T) {
	var q BucketQueue
	q.Push(Item{Weight: 8, ID: 1})
	q.Push(Item{Weight: 0.5, ID: 2})
	if got := q.Pop(); got.ID != 1 {
		t.Fatalf("popped %+v, want ID 1", got)
	}
	if got := q.Peek(); got.ID != 2 {
		t.Fatalf("peeked %+v, want ID 2", got)
	}
	var empty BucketQueue
	if !panics(func() { empty.Peek() }) {
		t.Fatal("Peek at empty queue did not panic")
	}
}

// TestBucketQueueExtremeWeights drives the exponent clamp: +Inf lands
// in the top bucket and still pops before every finite weight.
func TestBucketQueueExtremeWeights(t *testing.T) {
	var q BucketQueue
	q.Push(Item{Weight: math.Inf(1), ID: 1})
	q.Push(Item{Weight: math.MaxFloat64, ID: 2})
	q.Push(Item{Weight: 1, ID: 3})
	if !q.Verify() {
		t.Fatal("invariants violated with extreme weights")
	}
	for want := uint64(1); want <= 3; want++ {
		if got := q.Pop(); got.ID != want {
			t.Fatalf("pop order: got ID %d, want %d", got.ID, want)
		}
	}
}

// TestBucketQueueResetDuringDrainPanics mirrors the heap guard.
func TestBucketQueueResetDuringDrainPanics(t *testing.T) {
	var q BucketQueue
	q.Push(Item{Weight: 1, ID: 1})
	if !panics(func() { q.Drain(func(Item) { q.Reset() }) }) {
		t.Fatal("Reset during BucketQueue.Drain did not panic")
	}
}

// TestBucketQueueVerifyDetectsCorruption checks Verify actually
// discriminates: each invariant it guards, violated directly, trips it.
func TestBucketQueueVerifyDetectsCorruption(t *testing.T) {
	mk := func() *BucketQueue {
		var q BucketQueue
		q.Push(Item{Weight: 4, ID: 1})
		q.Push(Item{Weight: 5, ID: 2})
		return &q
	}
	q := mk()
	b := bucketOf(4)
	q.buckets[b+1], q.buckets[b] = q.buckets[b], nil // items in the wrong binade
	if q.Verify() {
		t.Fatal("Verify missed items sitting in the wrong bucket")
	}
	q = mk()
	bk := q.buckets[bucketOf(4)]
	bk[0], bk[1] = bk[1], bk[0] // break the in-bucket heap order
	if q.Verify() {
		t.Fatal("Verify missed a heap-order violation")
	}
	q = mk()
	q.hi = bucketOf(4) - 1 // occupied bucket above the high watermark
	if q.Verify() {
		t.Fatal("Verify missed items above the high watermark")
	}
	q = mk()
	q.n++ // break the count
	if q.Verify() {
		t.Fatal("Verify missed an item-count mismatch")
	}
}

// TestDrainDuringDrainPanics pins the re-entrancy guard on both queues.
func TestDrainDuringDrainPanics(t *testing.T) {
	h := New(-1) // negative capacity clamps to an empty heap
	h.Push(Item{Weight: 1, ID: 1})
	if h.Footprint() <= 0 {
		t.Fatal("heap footprint must count its backing array")
	}
	if !panics(func() { h.Drain(func(Item) { h.Drain(func(Item) {}) }) }) {
		t.Fatal("nested Heap.Drain did not panic")
	}
	var q BucketQueue
	q.Push(Item{Weight: 1, ID: 1})
	if !panics(func() { q.Drain(func(Item) { q.Drain(func(Item) {}) }) }) {
		t.Fatal("nested BucketQueue.Drain did not panic")
	}
}
