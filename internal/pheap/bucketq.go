package pheap

import (
	"math"
	"unsafe"
)

// numBuckets covers every float64 weight: bucket 0 collects zero and
// negative weights, buckets 1..2047 are the positive biased exponents
// (subnormals land in 1, +Inf is clamped into 2047 with the top binade).
const numBuckets = 2048

// BucketQueue is a monotone heaviest-first priority queue: the drop-in
// replacement for Heap on the HF hot path (DESIGN.md §13). HF only ever
// pushes children lighter than the parent it just popped — the pop
// sequence is non-increasing — so a bucket structure keyed by the
// weight's binary exponent finds the next maximum by scanning downward
// from a high-water bucket instead of reheapifying: amortized O(1) per
// operation against the binary heap's O(log n).
//
// Within one bucket (one binade, weights within a factor of two — the
// resolution at which α-band weight classes cluster) items are kept in a
// small binary max-heap using the exact (weight desc, ID asc) order of
// Heap, so the global pop sequence is identical to Heap's item for item.
// That exactness is what lets the flat planner switch queues while
// staying bit-identical to the heap path (pinned by the parity tests in
// internal/core). Buckets stay tiny in the α-band regime — a class with
// bisector quality α spreads the live weights of one HF frontier over
// ~log₂(1/α) binades — so the per-bucket heap work is O(1) in practice;
// in the degenerate all-equal-weights case (α = 1/2 exactly) the queue
// gracefully degrades to a single binary heap, no worse than Heap.
//
// The zero value is ready for use; the first Push allocates the bucket
// directory (numBuckets slice headers, ~48 KiB) once, after which all
// operations are allocation-free at steady state. A BucketQueue is not
// safe for concurrent use.
type BucketQueue struct {
	buckets [][]Item
	// hi is the highest bucket index that may be nonempty; lo the lowest
	// index touched since the last Reset. Pop scans downward from hi;
	// Reset clears only [lo, hi], so short runs (BA-HF's per-subtree HF
	// finish) don't pay for the whole directory.
	hi, lo   int
	n        int
	draining bool
}

// NewBucketQueue returns an empty queue with its bucket directory
// pre-allocated.
func NewBucketQueue() *BucketQueue {
	q := &BucketQueue{}
	q.init()
	return q
}

func (q *BucketQueue) init() {
	q.buckets = make([][]Item, numBuckets)
	q.hi = -1
	q.lo = numBuckets
}

// bucketOf maps a weight to its bucket index. For positive weights the
// IEEE-754 bit pattern is order-preserving, so the biased exponent
// (bits 52..62) is monotone in the weight — exactly the property the
// cross-bucket ordering needs. Non-positive weights (never produced by a
// valid bisection, but the queue stays correct anyway) share bucket 0,
// where the in-bucket heap still orders them exactly.
func bucketOf(w float64) int {
	if !(w > 0) {
		return 0
	}
	b := 1 + int(math.Float64bits(w)>>52)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Len returns the number of items in the queue.
func (q *BucketQueue) Len() int { return q.n }

// Push inserts an item. Pushing a weight above every weight popped so
// far is legal (it simply raises the high-water bucket); the amortized
// O(1) bound only needs the HF pattern of non-increasing pushes. Push
// panics inside a Drain callback.
func (q *BucketQueue) Push(it Item) {
	if q.draining {
		panic("pheap: Push during Drain")
	}
	if q.buckets == nil {
		q.init()
	}
	b := bucketOf(it.Weight)
	if b > q.hi {
		q.hi = b
	}
	if b < q.lo {
		q.lo = b
	}
	bk := append(q.buckets[b], it)
	// Sift up in the per-bucket mini-heap, same order as Heap.less.
	i := len(bk) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(bk[i], bk[parent]) {
			break
		}
		bk[i], bk[parent] = bk[parent], bk[i]
		i = parent
	}
	q.buckets[b] = bk
	q.n++
}

// Pop removes and returns the heaviest item (ties broken by smaller ID —
// the identical total order as Heap.Pop). It panics on an empty queue
// and inside a Drain callback.
func (q *BucketQueue) Pop() Item {
	if q.draining {
		panic("pheap: Pop during Drain")
	}
	if q.n == 0 {
		panic("pheap: Pop from empty queue")
	}
	for len(q.buckets[q.hi]) == 0 {
		q.hi--
	}
	bk := q.buckets[q.hi]
	top := bk[0]
	last := len(bk) - 1
	bk[0] = bk[last]
	bk = bk[:last]
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		best := left
		if right := left + 1; right < last && itemLess(bk[right], bk[left]) {
			best = right
		}
		if !itemLess(bk[best], bk[i]) {
			break
		}
		bk[i], bk[best] = bk[best], bk[i]
		i = best
	}
	q.buckets[q.hi] = bk
	q.n--
	return top
}

// Peek returns the heaviest item without removing it.
func (q *BucketQueue) Peek() Item {
	if q.n == 0 {
		panic("pheap: Peek at empty queue")
	}
	hi := q.hi
	for len(q.buckets[hi]) == 0 {
		hi--
	}
	q.hi = hi
	return q.buckets[hi][0]
}

// Drain calls fn for every remaining item — bucket by bucket from the
// heaviest binade down, heap order within a bucket — and then empties
// the queue, retaining all storage. Mutation during the drain panics,
// mirroring Heap.Drain.
func (q *BucketQueue) Drain(fn func(Item)) {
	if q.draining {
		panic("pheap: Drain during Drain")
	}
	q.draining = true
	defer func() { q.draining = false }()
	if q.buckets != nil {
		for b := q.hi; b >= q.lo && b >= 0; b-- {
			for i := range q.buckets[b] {
				fn(q.buckets[b][i])
			}
		}
	}
	q.clear()
}

// Reset empties the queue, retaining the storage of every touched
// bucket. It panics inside a Drain callback.
func (q *BucketQueue) Reset() {
	if q.draining {
		panic("pheap: Reset during Drain")
	}
	q.clear()
}

func (q *BucketQueue) clear() {
	if q.buckets != nil {
		for b := q.lo; b <= q.hi && b < numBuckets; b++ {
			if b >= 0 {
				q.buckets[b] = q.buckets[b][:0]
			}
		}
	}
	q.hi = -1
	q.lo = numBuckets
	q.n = 0
}

// Footprint reports the bytes retained by the queue: the bucket
// directory plus every bucket's backing array.
func (q *BucketQueue) Footprint() int {
	f := cap(q.buckets) * int(unsafe.Sizeof([]Item{}))
	for i := range q.buckets {
		f += cap(q.buckets[i]) * int(unsafe.Sizeof(Item{}))
	}
	return f
}

// Verify checks every per-bucket heap invariant and that every item sits
// in the bucket its weight maps to. It exists for tests and costs O(n).
func (q *BucketQueue) Verify() bool {
	count := 0
	for b := range q.buckets {
		bk := q.buckets[b]
		count += len(bk)
		for i := range bk {
			if bucketOf(bk[i].Weight) != b {
				return false
			}
			if i > 0 && itemLess(bk[i], bk[(i-1)/2]) {
				return false
			}
		}
		if len(bk) > 0 && b > q.hi {
			return false
		}
	}
	return count == q.n
}

// itemLess is Heap.less as a free function: a has priority over b.
func itemLess(a, b Item) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return a.ID < b.ID
}
