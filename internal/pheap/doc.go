// Package pheap implements the heaviest-first priority queue that drives
// Algorithm HF (paper Figure 1) and the HF inner phase of Algorithm BA-HF
// (Figure 4). It is a hand-rolled binary max-heap keyed by (weight, id):
// weights decide the order and node ids break ties deterministically so that
// runs are reproducible and the PHF ≡ HF comparison (Theorem 3) is
// meaningful even in the presence of equal weights.
//
// Items carry an int32 Ref instead of an interface{} payload: callers keep
// their subproblems in a slice arena and store the index here. That keeps
// every heap operation allocation-free — pushing an interface payload would
// box it on every Push, which dominated the allocation profile of the HF
// hot path (DESIGN.md §10).
package pheap
