// Package dist runs Algorithm BA across real operating-system processes
// (or goroutines) communicating over TCP — a faithful message-passing
// deployment of the paper's most distribution-friendly algorithm. BA is
// the natural choice for this role by the paper's own argument (Section
// 3.3): it needs no global communication whatsoever, and its range-based
// free-processor management means every node can decide locally where a
// subproblem must travel. The distributed PHF (phf.go) is the contrast
// experiment: its phases need the barrier/reduce/prefix collectives of
// internal/netcoll, paying per round exactly the logarithmic
// global-communication cost of the paper's PHF analysis that BA avoids.
//
// The cluster maps the N virtual processors of the model onto K nodes,
// node k owning the contiguous range [k·N/K, (k+1)·N/K). A node receiving
// a subproblem with a processor range runs the BA recursion locally for as
// long as the range stays inside its segment and ships the remainder to
// the owning peer. Completed parts stream to a coordinator that verifies
// weight conservation to detect termination.
//
// The runtime is fault-tolerant: hand-offs are acknowledged and retried
// with backoff, node deaths are injected via FaultPlan and survived by
// re-issuing leases over the surviving nodes, and every recovery action
// increments an obs metric so tests assert on protocol behaviour, not
// just outcomes.
package dist
