package dist

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bisectlb/internal/xrand"
)

// Schedule exploration: a property-based harness over the runtime's
// fault space. A schedule is one (FaultPlan, instance seed) combination;
// the explorer enumerates many of them, runs a real loopback cluster for
// each, and checks the invariants the recovery protocol promises no
// matter what the network does:
//
//   - the returned parts partition the processor range [0, n) exactly —
//     every virtual processor's weight is debited exactly once, however
//     many times messages were dropped, duplicated or re-executed;
//   - part weights sum to the root weight (the debit ledger closes);
//   - the partition quality fields are mutually consistent;
//   - lease generations account exactly for the re-issues performed
//     (LeaseReissues == Σ_g ReissuesByGen[g], generations start at 1);
//   - a fault-free schedule completes un-degraded with zero recovery
//     counters.
//
// Plans are pure functions of the schedule seed, so any failure is
// replayable from the seed the report prints.

// ExploreConfig parameterises one exploration run. The zero value of a
// field falls back to the default noted on it.
type ExploreConfig struct {
	// Schedules is the number of (FaultPlan, seed) combos (default 256).
	Schedules int
	// Seed is the schedule-stream seed; schedule i uses Mix(Seed, i).
	Seed uint64
	// N is the virtual processor count of each run (default 48).
	N int
	// K is the node count of each cluster (default 3).
	K int
	// Workers bounds concurrently running clusters (default 4).
	Workers int
	// Timeout caps one cluster run (default 15s).
	Timeout time.Duration
	// Timing overrides the protocol clocks (default ExploreTiming()).
	Timing *Timing
}

func (c ExploreConfig) withDefaults() ExploreConfig {
	if c.Schedules < 1 {
		c.Schedules = 256
	}
	if c.N < 1 {
		c.N = 48
	}
	if c.K < 1 {
		c.K = 3
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 15 * time.Second
	}
	if c.Timing == nil {
		tm := ExploreTiming()
		c.Timing = &tm
	}
	return c
}

// ExploreTiming returns protocol clocks tightened for schedule
// exploration, matching the chaos-study convention: crash recovery
// resolves in hundreds of milliseconds instead of seconds, so one test
// run affords hundreds of schedules.
func ExploreTiming() Timing {
	return Timing{
		Heartbeat:   15 * time.Millisecond,
		DeadAfter:   300 * time.Millisecond,
		LeaseExpiry: 700 * time.Millisecond,
		RetryBase:   40 * time.Millisecond,
		RetryMax:    250 * time.Millisecond,
	}
}

// SchedulePlan derives schedule i's fault plan from its seed,
// deterministically. Roughly one schedule in eight is a fault-free
// control; the rest draw drop/dup/delay rates independently, and one in
// four additionally crashes up to k−1 nodes (at least one node always
// survives, so completion stays reachable).
func SchedulePlan(seed uint64, k int) *FaultPlan {
	rng := xrand.New(xrand.Mix(seed, 0xD157))
	if rng.Intn(8) == 0 {
		return nil // fault-free control schedule
	}
	p := &FaultPlan{Seed: seed}
	if rng.Intn(2) == 0 {
		p.DropRate = rng.InRange(0.02, 0.25)
	}
	if rng.Intn(3) == 0 {
		p.DupRate = rng.InRange(0.02, 0.20)
	}
	if rng.Intn(3) == 0 {
		p.DelayRate = rng.InRange(0.05, 0.30)
		p.MaxDelay = time.Duration(1+rng.Intn(20)) * time.Millisecond
	}
	if k > 1 && rng.Intn(4) == 0 {
		crashes := 1 + rng.Intn(k-1)
		p.Crash = make(map[int]int, crashes)
		for c := 0; c < crashes; c++ {
			p.Crash[k-1-c] = 2 + rng.Intn(6)
		}
	}
	if !p.active() {
		// Every non-control schedule injects something: a drop rate on
		// its own keeps the retry path honest.
		p.DropRate = rng.InRange(0.02, 0.25)
	}
	return p
}

// ScheduleFailure is one schedule whose run violated an invariant.
type ScheduleFailure struct {
	Index int
	Seed  uint64
	Plan  *FaultPlan
	Err   error
}

func (f ScheduleFailure) String() string {
	return fmt.Sprintf("schedule %d (seed %#x, plan %s): %v", f.Index, f.Seed, describePlan(f.Plan), f.Err)
}

func describePlan(p *FaultPlan) string {
	if p == nil {
		return "fault-free"
	}
	return fmt.Sprintf("{drop %.2f dup %.2f delay %.2f/%v crash %v}",
		p.DropRate, p.DupRate, p.DelayRate, p.MaxDelay, p.Crash)
}

// ExploreReport aggregates one exploration run.
type ExploreReport struct {
	Schedules  int
	Completed  int // runs that returned a result (possibly degraded)
	Degraded   int
	Incomplete int // runs that timed out or lost every node
	// Failures holds invariant violations, ascending by schedule index;
	// incomplete runs are not failures (an aggressive enough plan may
	// legitimately prevent completion) but are counted above.
	Failures []ScheduleFailure
}

// OK reports whether every completed schedule satisfied the invariants.
func (r ExploreReport) OK() bool { return len(r.Failures) == 0 }

// Minimal returns the failure with the smallest schedule index, the
// first seed a human should replay, or nil.
func (r *ExploreReport) Minimal() *ScheduleFailure {
	if len(r.Failures) == 0 {
		return nil
	}
	return &r.Failures[0]
}

// Explore runs cfg.Schedules seeded schedules and checks every completed
// run's invariants. Schedules run concurrently on cfg.Workers clusters;
// the report is deterministic in content (each schedule is a pure
// function of its seed) though not in wall time.
func Explore(cfg ExploreConfig) ExploreReport {
	cfg = cfg.withDefaults()
	rep := ExploreReport{Schedules: cfg.Schedules}

	type outcome struct {
		fail       *ScheduleFailure
		completed  bool
		degraded   bool
		incomplete bool
	}
	outcomes := make([]outcome, cfg.Schedules)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Schedules; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := xrand.Mix(cfg.Seed, uint64(i))
			plan := SchedulePlan(seed, cfg.K)
			err, completed, degraded := runSchedule(cfg, seed, plan)
			o := &outcomes[i]
			o.completed, o.degraded, o.incomplete = completed, degraded, !completed
			if err != nil {
				o.fail = &ScheduleFailure{Index: i, Seed: seed, Plan: plan, Err: err}
			}
		}(i)
	}
	wg.Wait()

	for i := range outcomes {
		o := &outcomes[i]
		if o.completed {
			rep.Completed++
		}
		if o.degraded {
			rep.Degraded++
		}
		if o.incomplete {
			rep.Incomplete++
		}
		if o.fail != nil {
			rep.Failures = append(rep.Failures, *o.fail)
		}
	}
	sort.Slice(rep.Failures, func(a, b int) bool { return rep.Failures[a].Index < rep.Failures[b].Index })
	return rep
}

// runSchedule executes one schedule and checks its invariants. The
// returned error is an invariant violation; completed distinguishes a
// finished run (possibly degraded) from a timeout.
func runSchedule(cfg ExploreConfig, seed uint64, plan *FaultPlan) (err error, completed, degraded bool) {
	cl, cerr := StartClusterWith(cfg.N, cfg.K, plan, *cfg.Timing)
	if cerr != nil {
		return fmt.Errorf("cluster start: %w", cerr), false, false
	}
	defer cl.Close()
	root := Spec{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.5, Seed: xrand.Mix(seed, 0x1257)}
	res, rerr := cl.Coord.Run(root, cfg.N, cl.Addrs(), cfg.Timeout)
	if rerr != nil && !errors.Is(rerr, ErrDegraded) {
		if plan == nil {
			// A fault-free schedule has no excuse not to complete.
			return fmt.Errorf("fault-free run failed: %w", rerr), false, false
		}
		return nil, false, false
	}
	if err := CheckRunInvariants(res, cfg.N, root.Weight, plan); err != nil {
		return err, true, res.Degraded
	}
	return nil, true, res.Degraded
}

// CheckRunInvariants verifies the recovery protocol's observable
// contract on one finished run (degraded or not) under the given plan.
func CheckRunInvariants(res *Result, n int, rootWeight float64, plan *FaultPlan) error {
	if res == nil {
		return errors.New("nil result")
	}
	// Exactly-once debit ledger, externally observed: the parts cover
	// [0, n) with no gap and no overlap. Sorting by Lo and walking the
	// intervals catches both, plus duplicate deliveries that escaped
	// dedup.
	parts := append([]PartReport(nil), res.Parts...)
	sort.Slice(parts, func(a, b int) bool { return parts[a].Lo < parts[b].Lo })
	next := 0
	var sum, maxW float64
	for i, p := range parts {
		if p.Lo != next {
			if p.Lo < next {
				return fmt.Errorf("parts %d overlap at processor %d: interval [%d,%d) delivered more than once", i, p.Lo, p.Lo, p.Hi)
			}
			return fmt.Errorf("processors [%d,%d) received no part", next, p.Lo)
		}
		if p.Hi <= p.Lo || p.Hi > n {
			return fmt.Errorf("part %d has invalid interval [%d,%d) for n=%d", i, p.Lo, p.Hi, n)
		}
		if !(p.Spec.Weight > 0) {
			return fmt.Errorf("part %d has non-positive weight %v", i, p.Spec.Weight)
		}
		sum += p.Spec.Weight
		if p.Spec.Weight > maxW {
			maxW = p.Spec.Weight
		}
		next = p.Hi
	}
	if next != n {
		return fmt.Errorf("processors [%d,%d) received no part", next, n)
	}
	if !weightsConserved(sum, rootWeight, len(parts)) {
		return fmt.Errorf("debit ledger does not close: parts sum to %v, root weight %v", sum, rootWeight)
	}
	if maxW != res.MaxWeight {
		return fmt.Errorf("MaxWeight %v but heaviest part weighs %v", res.MaxWeight, maxW)
	}
	wantRatio := res.MaxWeight / (rootWeight / float64(n))
	if diff := wantRatio - res.Ratio; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("Ratio %v inconsistent with MaxWeight (want %v)", res.Ratio, wantRatio)
	}

	// Lease-generation ledger: every re-issue advanced some lease to a
	// generation ≥ 1, and the per-generation histogram accounts for all
	// of them exactly.
	st := &res.Stats
	genSum := 0
	for g, c := range st.ReissuesByGen {
		if g < 1 {
			return fmt.Errorf("re-issue recorded at generation %d; generations start at 1", g)
		}
		if c < 1 {
			return fmt.Errorf("generation %d has non-positive re-issue count %d", g, c)
		}
		genSum += c
	}
	if genSum != st.LeaseReissues {
		return fmt.Errorf("LeaseReissues %d but generations sum to %d", st.LeaseReissues, genSum)
	}
	if res.Reassigned != st.LeaseReissues {
		return fmt.Errorf("Result.Reassigned %d disagrees with Stats.LeaseReissues %d", res.Reassigned, st.LeaseReissues)
	}
	if st.Deaths != len(res.DeadNodes) {
		return fmt.Errorf("Stats.Deaths %d but %d dead nodes reported", st.Deaths, len(res.DeadNodes))
	}
	if res.Degraded != (len(res.DeadNodes) > 0) {
		return fmt.Errorf("Degraded %v inconsistent with dead nodes %v", res.Degraded, res.DeadNodes)
	}
	if st.DedupParts < 0 || st.DedupClaims < 0 {
		return fmt.Errorf("negative dedup counters: parts %d, claims %d", st.DedupParts, st.DedupClaims)
	}

	// A fault-free run must not have needed the recovery machinery.
	if !plan.active() {
		if res.Degraded || st.Deaths != 0 {
			return fmt.Errorf("fault-free run degraded (deaths %d)", st.Deaths)
		}
		if f := st.Faults; f.Drops != 0 || f.Dups != 0 || f.Delays != 0 {
			return fmt.Errorf("fault-free run injected faults: %+v", f)
		}
	}
	// Dead nodes must at least be real cluster members. Deaths without a
	// scheduled crash are deliberately NOT a violation: the failure
	// detector may false-positive a stalled-but-alive node (e.g. under a
	// loaded race-detector run), and the protocol's answer — re-issue and
	// dedup — is exactly what the checks above verify.
	for _, id := range res.DeadNodes {
		if id < 0 {
			return fmt.Errorf("invalid dead node id %d", id)
		}
	}
	return nil
}
