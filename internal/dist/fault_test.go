package dist

import (
	"errors"
	"testing"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// chaosTiming keeps fault tests fast while staying quiet under -race.
func chaosTiming() Timing {
	return Timing{
		Heartbeat:   15 * time.Millisecond,
		DeadAfter:   400 * time.Millisecond,
		LeaseExpiry: 900 * time.Millisecond,
		RetryBase:   40 * time.Millisecond,
		RetryMax:    250 * time.Millisecond,
	}
}

// runFaulty executes one distributed run under a fault plan.
func runFaulty(t *testing.T, n, k int, seed uint64, plan *FaultPlan) (*Result, error, *Cluster) {
	t.Helper()
	cl, err := StartClusterWith(n, k, plan, chaosTiming())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.5, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Coord.Run(root, n, cl.Addrs(), 25*time.Second)
	return res, err, cl
}

// partIDs returns the set of part identities of a result.
func partIDs(t *testing.T, res *Result) map[uint64]bool {
	t.Helper()
	ids := make(map[uint64]bool, len(res.Parts))
	for _, pt := range res.Parts {
		if ids[pt.Spec.Seed] {
			t.Fatalf("duplicate part %d in result", pt.Spec.Seed)
		}
		ids[pt.Spec.Seed] = true
	}
	return ids
}

// requireLocalBAMatch checks the distributed partition against the
// in-process algorithm: same part set, same ratio — full weight
// conservation and byte-identical quality.
func requireLocalBAMatch(t *testing.T, res *Result, n int, seed uint64) {
	t.Helper()
	local, err := core.BA(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != len(local.Parts) {
		t.Fatalf("distributed produced %d parts, local %d", len(res.Parts), len(local.Parts))
	}
	ids := partIDs(t, res)
	for _, pt := range local.Parts {
		if !ids[pt.Problem.ID()] {
			t.Fatalf("local part %d missing from distributed result", pt.Problem.ID())
		}
	}
	if res.Ratio != local.Ratio {
		t.Fatalf("ratio %v != local %v", res.Ratio, local.Ratio)
	}
}

func TestMessageDropRecovered(t *testing.T) {
	const n, k, seed = 64, 4, 42
	plan := &FaultPlan{Seed: 7, DropRate: 0.10}
	res, err, cl := runFaulty(t, n, k, seed, plan)
	if err != nil {
		t.Fatalf("10%% drop did not complete: %v", err)
	}
	requireLocalBAMatch(t, res, n, seed)
	if st := cl.TotalStats(); st.Retries == 0 {
		t.Fatalf("no retries observed under 10%% drop: %+v", st)
	}
}

func TestDuplicateDeliveryIdempotent(t *testing.T) {
	const n, k, seed = 64, 4, 42
	plan := &FaultPlan{Seed: 11, DupRate: 0.5}
	res, err, cl := runFaulty(t, n, k, seed, plan)
	if err != nil {
		t.Fatalf("duplicate-heavy run failed: %v", err)
	}
	requireLocalBAMatch(t, res, n, seed)
	if st := cl.TotalStats(); st.Dups == 0 {
		t.Fatalf("plan injected no duplicates: %+v", st)
	}
}

func TestNodeCrashReassignedToSurvivor(t *testing.T) {
	const n, k, seed = 64, 4, 42
	// Node 3 dies after its 4th outbound data message — mid-run, after
	// receiving work but before finishing its 16 parts.
	plan := &FaultPlan{Seed: 3, Crash: map[int]int{3: 4}}
	res, err, _ := runFaulty(t, n, k, seed, plan)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if !res.Degraded || len(res.DeadNodes) != 1 || res.DeadNodes[0] != 3 {
		t.Fatalf("degradation not reported: %+v", res)
	}
	if res.Reassigned == 0 {
		t.Fatal("no lease was reassigned")
	}
	if res.RecoveryLatency <= 0 {
		t.Fatal("recovery latency not measured")
	}
	// Graceful degradation: the partition is still the exact BA
	// partition — full weight conservation, identical ratio.
	requireLocalBAMatch(t, res, n, seed)
	// The dead node's parts must have been recomputed by survivors. Parts
	// reported before the crash may legitimately carry FromNode 3, but at
	// least some of the tail range has to come from a survivor.
	survivorTail := 0
	for _, pt := range res.Parts {
		if pt.Lo >= 3*n/4 && pt.FromNode != 3 {
			survivorTail++
		}
	}
	if survivorTail == 0 {
		t.Fatal("no part of the dead node's interval was finished by a survivor")
	}
}

func TestChaosOutcomeDeterministic(t *testing.T) {
	const n, k, seed = 48, 3, 9
	plan := &FaultPlan{Seed: 21, DropRate: 0.08, DupRate: 0.05, DelayRate: 0.1, MaxDelay: 2 * time.Millisecond}
	resA, errA, _ := runFaulty(t, n, k, seed, plan)
	resB, errB, _ := runFaulty(t, n, k, seed, plan)
	if errA != nil || errB != nil {
		t.Fatalf("chaos runs failed: %v / %v", errA, errB)
	}
	if resA.Ratio != resB.Ratio || len(resA.Parts) != len(resB.Parts) {
		t.Fatalf("same plan, different outcome: %v/%d vs %v/%d",
			resA.Ratio, len(resA.Parts), resB.Ratio, len(resB.Parts))
	}
	idsB := partIDs(t, resB)
	for _, pt := range resA.Parts {
		if !idsB[pt.Spec.Seed] {
			t.Fatalf("part %d only in first run", pt.Spec.Seed)
		}
	}
}

func TestFaultPlanDecideDeterministic(t *testing.T) {
	plan := &FaultPlan{Seed: 5, DropRate: 0.3, DupRate: 0.2, DelayRate: 0.5, MaxDelay: time.Millisecond}
	sawDrop, sawDup := false, false
	for id := uint64(0); id < 500; id++ {
		d1, u1, l1 := plan.Decide(id, 0)
		d2, u2, l2 := plan.Decide(id, 0)
		if d1 != d2 || u1 != u2 || l1 != l2 {
			t.Fatalf("Decide(%d, 0) not deterministic", id)
		}
		sawDrop = sawDrop || d1
		sawDup = sawDup || u1
	}
	if !sawDrop || !sawDup {
		t.Fatal("plan with positive rates never dropped or duplicated")
	}
	// Attempts re-roll: a dropped first attempt must not doom retries.
	stuck := 0
	for id := uint64(0); id < 500; id++ {
		if d, _, _ := plan.Decide(id, 0); d {
			if d1, _, _ := plan.Decide(id, 1); d1 {
				if d2, _, _ := plan.Decide(id, 2); d2 {
					stuck++
				}
			}
		}
	}
	if stuck > 60 { // ≈ 500·0.3³ ≈ 13 expected; 60 means attempts don't re-roll
		t.Fatalf("%d messages dropped on three consecutive attempts", stuck)
	}
	// A nil plan injects nothing.
	var nilPlan *FaultPlan
	if d, u, l := nilPlan.Decide(1, 0); d || u || l != 0 {
		t.Fatal("nil plan injected a fault")
	}
}

func TestWeightsConserved(t *testing.T) {
	if !weightsConserved(1.0, 1.0, 1) {
		t.Fatal("exact sum rejected")
	}
	if weightsConserved(0.5, 1.0, 1) {
		t.Fatal("half weight accepted")
	}
	// Deep recursion: sum the leaf weights of a large BA partition in
	// arrival (non-tree) order; the accumulated float error must stay
	// inside the tolerance.
	const n = 4096
	res, err := core.BA(bisect.MustSynthetic(1, 0.01, 0.5, 77), n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, pt := range res.Parts {
		sum += pt.Problem.Weight()
	}
	if !weightsConserved(sum, 1.0, len(res.Parts)) {
		t.Fatalf("deep-recursion sum %v rejected (%d parts)", sum, len(res.Parts))
	}
	// A missing leaf must still be detected: drop the lightest part.
	light := res.Parts[0].Problem.Weight()
	for _, pt := range res.Parts {
		if w := pt.Problem.Weight(); w < light {
			light = w
		}
	}
	if weightsConserved(sum-light, 1.0, len(res.Parts)-1) {
		t.Fatalf("missing part of weight %v not detected", light)
	}
	// Millions of tiny summands: tolerance scales with the term count.
	const m = 1 << 20
	sum = 0.0
	for i := 0; i < m; i++ {
		sum += 1.0 / m
	}
	if !weightsConserved(sum, 1.0, m) {
		t.Fatalf("2^20-term accumulation %v rejected", sum)
	}
}

func TestRunTimeoutReturnsErrIncomplete(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	root := Spec{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.5, Seed: 1}
	res, err := coord.Run(root, 8, []string{"127.0.0.1:1"}, 250*time.Millisecond)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result not returned alongside ErrIncomplete")
	}
	if errors.Is(err, ErrDegraded) {
		t.Fatal("timeout must not read as degraded completion")
	}
}

func TestPHFCollectivesSurviveDrops(t *testing.T) {
	const n, k, alpha, seed = 32, 4, 0.3, 5
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.45, seed))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunPHFCluster(root, n, k, alpha)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RunPHFClusterWith(root, n, k, alpha, &FaultPlan{Seed: 17, DropRate: 0.08, DupRate: 0.05})
	if err != nil {
		t.Fatalf("PHF under collective drops failed: %v", err)
	}
	if len(faulty) != len(clean) {
		t.Fatalf("faulty run has %d parts, clean %d", len(faulty), len(clean))
	}
	for i := range clean {
		if clean[i].Spec.Seed != faulty[i].Spec.Seed || clean[i].Lo != faulty[i].Lo {
			t.Fatalf("part %d differs: clean %+v faulty %+v", i, clean[i], faulty[i])
		}
	}
}

func TestSpecErrorPaths(t *testing.T) {
	// Encode on a non-synthetic problem.
	if _, err := Encode(bisect.MustFixed(1, 0.25)); err == nil {
		t.Fatal("Encode accepted a Fixed problem")
	}
	// Decode on an unknown kind.
	if _, err := Decode(Spec{Kind: "martian", Weight: 1, ALo: 0.1, AHi: 0.5}); err == nil {
		t.Fatal("Decode accepted unknown kind")
	}
	// Malformed specs of the right kind.
	bad := []Spec{
		{Kind: specKindSynthetic, Weight: 0, ALo: 0.1, AHi: 0.5},            // zero weight
		{Kind: specKindSynthetic, Weight: -1, ALo: 0.1, AHi: 0.5},           // negative weight
		{Kind: specKindSynthetic, Weight: 1, ALo: 0, AHi: 0.5},              // lo = 0
		{Kind: specKindSynthetic, Weight: 1, ALo: 0.4, AHi: 0.2},            // inverted interval
		{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.9},            // hi > 1/2
		{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.5, Depth: -3}, // negative depth
	}
	for i, s := range bad {
		if _, err := Decode(s); err == nil {
			t.Fatalf("malformed spec %d accepted: %+v", i, s)
		}
	}
}
