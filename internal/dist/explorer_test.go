package dist

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bisectlb/internal/xrand"
)

// TestExploreSchedules is the schedule-exploration property test: it
// enumerates seeded FaultPlan × instance combinations against real
// loopback clusters and requires every completed run — degraded or not —
// to satisfy the exactly-once debit-ledger and lease-generation
// invariants. On failure it prints the minimal failing seed so the
// schedule replays in isolation.
func TestExploreSchedules(t *testing.T) {
	cfg := ExploreConfig{Schedules: 200, Seed: 20260805}
	if testing.Short() {
		cfg.Schedules = 48
	}
	rep := Explore(cfg)
	t.Logf("explored %d schedules: %d completed (%d degraded), %d incomplete",
		rep.Schedules, rep.Completed, rep.Degraded, rep.Incomplete)
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("%s", f.String())
		}
		t.Fatalf("minimal failing seed: %#x (schedule %d) — replay with SchedulePlan(%#x, %d)",
			rep.Minimal().Seed, rep.Minimal().Index, rep.Minimal().Seed, cfg.K)
	}
	if rep.Completed == 0 {
		t.Fatal("no schedule completed; the explorer verified nothing")
	}
	// The schedule mix must actually exercise the recovery machinery:
	// with crashes in roughly a quarter of the plans, a clean sweep of
	// completions with zero degradations would mean the fault layer is
	// not wired in.
	if rep.Degraded == 0 && rep.Schedules >= 100 {
		t.Error("no schedule degraded: crash plans are not reaching the cluster")
	}
}

// TestSchedulePlanDeterministic pins that a schedule is a pure function
// of its seed: the same seed yields the same plan, and the stream mixes
// fault-free controls with crash plans.
func TestSchedulePlanDeterministic(t *testing.T) {
	var faultFree, crashing int
	for i := 0; i < 400; i++ {
		seed := xrand.Mix(99, uint64(i))
		a, b := SchedulePlan(seed, 3), SchedulePlan(seed, 3)
		switch {
		case a == nil && b == nil:
			faultFree++
			continue
		case a == nil || b == nil:
			t.Fatalf("seed %#x: plan nil-ness not deterministic", seed)
		}
		if a.DropRate != b.DropRate || a.DupRate != b.DupRate ||
			a.DelayRate != b.DelayRate || a.MaxDelay != b.MaxDelay || len(a.Crash) != len(b.Crash) {
			t.Fatalf("seed %#x: plans differ: %+v vs %+v", seed, a, b)
		}
		if !a.active() {
			t.Fatalf("seed %#x: non-control plan injects nothing: %+v", seed, a)
		}
		if len(a.Crash) > 0 {
			crashing++
			if len(a.Crash) > 2 {
				t.Fatalf("seed %#x: plan crashes %d of 3 nodes; one must survive", seed, len(a.Crash))
			}
		}
	}
	if faultFree == 0 || crashing == 0 {
		t.Fatalf("schedule mix degenerate: %d fault-free, %d crashing of 400", faultFree, crashing)
	}
}

// TestCheckRunInvariantsRejectsCorruption corrupts a real run's result
// one field at a time and requires the checker to notice each.
func TestCheckRunInvariantsRejectsCorruption(t *testing.T) {
	cl, err := StartCluster(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root := Spec{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.5, Seed: 7}
	res, err := cl.Coord.Run(root, 8, cl.Addrs(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRunInvariants(res, 8, 1, nil); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func(r *Result)
		want    string
	}{
		{"drop a part", func(r *Result) { r.Parts = r.Parts[1:] }, "no part"},
		{"duplicate a part", func(r *Result) { r.Parts = append(r.Parts, r.Parts[0]) }, "more than once"},
		{"inflate a weight", func(r *Result) { r.Parts[0].Spec.Weight *= 2 }, "ledger"},
		{"shift max weight", func(r *Result) { r.MaxWeight *= 2 }, "MaxWeight"},
		{"shift ratio", func(r *Result) { r.Ratio += 0.5 }, "Ratio"},
		{"orphan reissue count", func(r *Result) { r.Stats.LeaseReissues++ }, "generations sum"},
		{"generation zero", func(r *Result) {
			r.Stats.ReissuesByGen = map[uint64]int{0: 1}
			r.Stats.LeaseReissues = 1
			r.Reassigned = 1
		}, "start at 1"},
		{"phantom death", func(r *Result) { r.Stats.Deaths++ }, "dead nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := *res
			cp.Parts = append([]PartReport(nil), res.Parts...)
			cp.Stats.ReissuesByGen = map[uint64]int{}
			for g, c := range res.Stats.ReissuesByGen {
				cp.Stats.ReissuesByGen[g] = c
			}
			tc.corrupt(&cp)
			err := CheckRunInvariants(&cp, 8, 1, nil)
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q detected with wrong message: %v", tc.name, err)
			}
		})
	}

	if err := CheckRunInvariants(nil, 8, 1, nil); !errors.Is(err, err) || err == nil {
		t.Fatal("nil result not rejected")
	}
}
