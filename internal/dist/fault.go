package dist

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"bisectlb/internal/obs"
	"bisectlb/internal/xrand"
)

// Metric names recorded in the coordinator's and each node's
// obs.Registry (see Coordinator.Metrics / Node.Metrics).
const (
	mSends             = "dist.sends"
	mDrops             = "dist.drops"
	mDups              = "dist.dups"
	mDelays            = "dist.delays"
	mRetries           = "dist.retries"
	mAckRTT            = "dist.ack_rtt_ns" // reliable-send round-trip latency
	mBackoff           = "dist.backoff_ns" // backoff waits that expired into a retry
	mDedupAssigns      = "dist.dedup_assigns"
	mDedupParts        = "dist.dedup_parts"
	mDedupClaims       = "dist.dedup_claims"
	mHeartbeatMisses   = "dist.heartbeat_misses"
	mDeaths            = "dist.deaths"
	mLeaseReissues     = "dist.lease_reissues"
	mReissueGen        = "dist.lease_reissue_gen" // histogram over re-issue generations
	mReissueExecs      = "dist.reissue_execs"     // node re-executions forced by a generation advance
	mCrashes           = "dist.crash_triggered"
	mOutcomeOK         = "dist.outcome_ok"
	mOutcomeDegraded   = "dist.outcome_degraded"
	mOutcomeIncomplete = "dist.outcome_incomplete"
)

// FaultPlan describes deterministic fault injection for a cluster run.
// Every per-message decision is a pure function of (Seed, message ID,
// attempt number), so a chaos run is reproducible: the same plan against
// the same root problem drops, duplicates and delays the same logical
// messages regardless of goroutine scheduling. The zero value (or a nil
// plan) injects nothing.
//
// Knobs:
//
//   - DropRate: probability an individual send attempt is silently lost.
//     Retransmissions are fresh attempts and re-roll the dice, so a
//     dropped message is recovered by the ack/retry protocol.
//   - DupRate: probability a send is delivered twice. Receivers dedup on
//     message ID, so duplicates must be (and are) harmless.
//   - DelayRate/MaxDelay: probability a send is held back, and the upper
//     bound for the uniformly drawn latency spike.
//   - Crash: node ID → number of outbound data messages after which the
//     node abruptly dies (listener and connections torn down, in-flight
//     work abandoned), exercising lease reassignment and degradation.
type FaultPlan struct {
	Seed      uint64
	DropRate  float64
	DupRate   float64
	DelayRate float64
	MaxDelay  time.Duration
	Crash     map[int]int
}

// Decide returns the fate of one send attempt. It implements the
// netcoll.FaultInjector interface so the same plan drives both the BA
// hand-off fabric and the PHF collective tree.
func (p *FaultPlan) Decide(msgID, attempt uint64) (drop, dup bool, delay time.Duration) {
	if p == nil {
		return false, false, 0
	}
	src := xrand.New(xrand.Mix(p.Seed, xrand.Mix(msgID, attempt)))
	drop = src.Float64() < p.DropRate
	dup = src.Float64() < p.DupRate
	if p.DelayRate > 0 && p.MaxDelay > 0 && src.Float64() < p.DelayRate {
		delay = time.Duration(src.Float64() * float64(p.MaxDelay))
	}
	return drop, dup, delay
}

// active reports whether the plan can inject anything at all.
func (p *FaultPlan) active() bool {
	return p != nil && (p.DropRate > 0 || p.DupRate > 0 || p.DelayRate > 0 || len(p.Crash) > 0)
}

// FaultStats counts what the fault layer and the recovery protocol
// actually did at one endpoint.
type FaultStats struct {
	Sends   int // send attempts that reached the wire (incl. retries)
	Drops   int // attempts swallowed by the plan
	Dups    int // attempts delivered twice
	Delays  int // attempts held back by a latency spike
	Retries int // reliable-send retransmissions after a missed ack
}

// faultState is the per-endpoint injection state: the shared plan plus
// this endpoint's counters and crash trigger. The legacy FaultStats
// counters are mirrored into the endpoint's obs registry so they show
// up in metric snapshots alongside the protocol counters.
type faultState struct {
	plan *FaultPlan
	reg  *obs.Registry

	mu         sync.Mutex
	stats      FaultStats
	dataSends  int // assign/part/claim/owner messages, for the crash trigger
	crashAfter int // <= 0 means never
	crashed    bool
	onCrash    func()
}

func newFaultState(plan *FaultPlan, nodeID int, onCrash func(), reg *obs.Registry) *faultState {
	fs := &faultState{plan: plan, onCrash: onCrash, reg: reg}
	if plan != nil {
		if after, ok := plan.Crash[nodeID]; ok && after > 0 {
			fs.crashAfter = after
		}
	}
	return fs
}

func (fs *faultState) addRetry() {
	if fs == nil {
		return
	}
	fs.mu.Lock()
	fs.stats.Retries++
	fs.mu.Unlock()
	fs.reg.Counter(mRetries).Inc()
}

// Stats returns a snapshot of the endpoint's counters.
func (fs *faultState) Stats() FaultStats {
	if fs == nil {
		return FaultStats{}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// countData advances the crash trigger for one outbound data message and
// reports whether the endpoint just died.
func (fs *faultState) countData() bool {
	if fs.crashAfter <= 0 {
		return false
	}
	fs.mu.Lock()
	fs.dataSends++
	trigger := !fs.crashed && fs.dataSends >= fs.crashAfter
	if trigger {
		fs.crashed = true
	}
	cb := fs.onCrash
	fs.mu.Unlock()
	if trigger {
		fs.reg.Counter(mCrashes).Inc()
		fs.reg.Emit("dist.crash", "crash trigger fired")
		if cb != nil {
			go cb()
		}
	}
	return trigger
}

// link is one bidirectional JSON message stream with fault injection on
// the send side. Both sides of every connection (dialer and acceptor)
// wrap it in a link so acks can travel the reverse path of the messages
// they acknowledge.
type link struct {
	conn net.Conn
	mu   sync.Mutex
	enc  *json.Encoder
	fs   *faultState
}

func newLink(conn net.Conn, fs *faultState) *link {
	return &link{conn: conn, enc: json.NewEncoder(conn), fs: fs}
}

// send transmits one message through the fault layer. A dropped message
// returns nil: the loss is indistinguishable from the network eating it,
// which is the point.
func (l *link) send(m message, attempt uint64) error {
	var drop, dup bool
	var delay time.Duration
	if l.fs != nil && l.fs.plan.active() {
		drop, dup, delay = l.fs.plan.Decide(m.ID, attempt)
		l.fs.mu.Lock()
		if drop {
			l.fs.stats.Drops++
		} else {
			l.fs.stats.Sends++
			if dup {
				l.fs.stats.Dups++
			}
			if delay > 0 {
				l.fs.stats.Delays++
			}
		}
		l.fs.mu.Unlock()
		if drop {
			l.fs.reg.Counter(mDrops).Inc()
		} else {
			l.fs.reg.Counter(mSends).Inc()
			if dup {
				l.fs.reg.Counter(mDups).Inc()
			}
			if delay > 0 {
				l.fs.reg.Counter(mDelays).Inc()
			}
		}
		if isDataMessage(m.Type) {
			if l.fs.countData() {
				return net.ErrClosed // the crash beat the send
			}
		}
	} else if l.fs != nil {
		l.fs.mu.Lock()
		l.fs.stats.Sends++
		l.fs.mu.Unlock()
		l.fs.reg.Counter(mSends).Inc()
	}
	if drop {
		return nil
	}
	if delay > 0 {
		// A latency spike must not block the caller's retry clock.
		go func() {
			time.Sleep(delay)
			l.mu.Lock()
			defer l.mu.Unlock()
			_ = l.enc.Encode(m)
		}()
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(m); err != nil {
		return err
	}
	if dup {
		return l.enc.Encode(m)
	}
	return nil
}

func isDataMessage(t string) bool {
	switch t {
	case msgAssign, msgPart, msgClaim, msgOwner:
		return true
	}
	return false
}

// ackWaiters tracks pending acknowledgements by message ID. Multiple
// senders of the same logical message share one completion channel.
type ackWaiters struct {
	mu      sync.Mutex
	pending map[uint64]chan struct{}
}

func newAckWaiters() *ackWaiters {
	return &ackWaiters{pending: make(map[uint64]chan struct{})}
}

// waiter returns the completion channel for id, creating it if needed.
func (a *ackWaiters) waiter(id uint64) chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	ch, ok := a.pending[id]
	if !ok {
		ch = make(chan struct{})
		a.pending[id] = ch
	}
	return ch
}

// resolve completes the waiters for id, if any.
func (a *ackWaiters) resolve(id uint64) {
	a.mu.Lock()
	ch, ok := a.pending[id]
	if ok {
		delete(a.pending, id)
	}
	a.mu.Unlock()
	if ok {
		close(ch)
	}
}

// Timing bundles the protocol clocks. Zero fields fall back to the
// defaults, so Timing{} behaves like DefaultTiming().
type Timing struct {
	// Heartbeat is the node → coordinator beat interval.
	Heartbeat time.Duration
	// DeadAfter is how long a node may stay silent before the
	// coordinator's failure detector declares it dead.
	DeadAfter time.Duration
	// LeaseExpiry re-issues a lease that has not been discharged within
	// this window (safety net for messages lost together with a node).
	LeaseExpiry time.Duration
	// RetryBase is the first ack deadline of a reliable send; subsequent
	// attempts back off exponentially with seeded jitter up to RetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// DefaultTiming returns clocks suitable for loopback clusters, generous
// enough to stay quiet under the race detector.
func DefaultTiming() Timing {
	return Timing{
		Heartbeat:   25 * time.Millisecond,
		DeadAfter:   600 * time.Millisecond,
		LeaseExpiry: 2 * time.Second,
		RetryBase:   60 * time.Millisecond,
		RetryMax:    500 * time.Millisecond,
	}
}

func (t Timing) withDefaults() Timing {
	d := DefaultTiming()
	if t.Heartbeat <= 0 {
		t.Heartbeat = d.Heartbeat
	}
	if t.DeadAfter <= 0 {
		t.DeadAfter = d.DeadAfter
	}
	if t.LeaseExpiry <= 0 {
		t.LeaseExpiry = d.LeaseExpiry
	}
	if t.RetryBase <= 0 {
		t.RetryBase = d.RetryBase
	}
	if t.RetryMax <= 0 {
		t.RetryMax = d.RetryMax
	}
	return t
}

// backoff returns the ack deadline for the given attempt with
// deterministic jitter derived from the message ID.
func (t Timing) backoff(msgID, attempt uint64) time.Duration {
	d := t.RetryBase
	for i := uint64(0); i < attempt && d < t.RetryMax; i++ {
		d *= 2
	}
	if d > t.RetryMax {
		d = t.RetryMax
	}
	// ±25% jitter keeps retry storms of many messages from synchronising.
	j := xrand.Mix(msgID, 0xBACC0FF+attempt)%512 | 1
	return d + d*time.Duration(j)/1024 - d/4
}

// Message-ID derivation. IDs are stable across re-execution: a subproblem
// is identified by its bisection-tree seed, so a survivor recomputing a
// dead node's work emits byte-identical IDs and every receiver dedups the
// second copy. The role constants keep assign/part/claim/ack IDs for the
// same subproblem distinct.
const (
	roleAssign uint64 = 0xA551
	rolePart   uint64 = 0x9A47
	roleClaim  uint64 = 0xC1A1
	roleOwner  uint64 = 0x0DED
	roleAck    uint64 = 0xACC
	roleBeat   uint64 = 0xBEA7
)

func idFor(role, seed uint64) uint64 { return xrand.Mix(seed, role) }

func ackID(of uint64) uint64 { return xrand.Mix(of, roleAck) }
