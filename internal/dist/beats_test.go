package dist

import (
	"reflect"
	"testing"
	"time"
)

func TestBeatRuleThresholds(t *testing.T) {
	r := BeatRule{Heartbeat: 10 * time.Millisecond, DeadAfter: 100 * time.Millisecond}
	if r.Overdue(20 * time.Millisecond) {
		t.Fatal("exactly 2×heartbeat is not overdue")
	}
	if !r.Overdue(21 * time.Millisecond) {
		t.Fatal("past 2×heartbeat must be overdue")
	}
	if r.Dead(100 * time.Millisecond) {
		t.Fatal("exactly DeadAfter is not dead")
	}
	if !r.Dead(101 * time.Millisecond) {
		t.Fatal("past DeadAfter must be dead")
	}
}

func TestTimingRuleMatchesCoordinatorPolicy(t *testing.T) {
	tm := Timing{Heartbeat: 25 * time.Millisecond, DeadAfter: 90 * time.Millisecond}
	r := tm.Rule()
	if r.Heartbeat != tm.Heartbeat || r.DeadAfter != tm.DeadAfter {
		t.Fatalf("Rule() = %+v, want timing fields %v/%v", r, tm.Heartbeat, tm.DeadAfter)
	}
}

func TestBeatTableDeadAndRevival(t *testing.T) {
	rule := BeatRule{Heartbeat: 10 * time.Millisecond, DeadAfter: 50 * time.Millisecond}
	tb := NewBeatTable(rule)
	t0 := time.Unix(1000, 0)
	tb.BeatAt("a", t0)
	tb.BeatAt("b", t0)
	tb.BeatAt("c", t0.Add(40*time.Millisecond))

	if dead := tb.DeadAt(t0.Add(45 * time.Millisecond)); dead != nil {
		t.Fatalf("nothing dead at +45ms, got %v", dead)
	}
	if dead := tb.DeadAt(t0.Add(60 * time.Millisecond)); !reflect.DeepEqual(dead, []string{"a", "b"}) {
		t.Fatalf("dead at +60ms = %v, want [a b]", dead)
	}
	// A fresh beat revives a member.
	tb.BeatAt("a", t0.Add(60*time.Millisecond))
	if dead := tb.DeadAt(t0.Add(65 * time.Millisecond)); !reflect.DeepEqual(dead, []string{"b"}) {
		t.Fatalf("dead after a's revival = %v, want [b]", dead)
	}
	// Forget removes without declaring dead.
	tb.Forget("b")
	if dead := tb.DeadAt(t0.Add(10 * time.Second)); !reflect.DeepEqual(dead, []string{"a", "c"}) {
		t.Fatalf("dead after forgetting b = %v, want [a c]", dead)
	}
	if _, ok := tb.Silence("b", t0); ok {
		t.Fatal("forgotten member still tracked")
	}
	if s, ok := tb.Silence("c", t0.Add(50*time.Millisecond)); !ok || s != 10*time.Millisecond {
		t.Fatalf("Silence(c) = %v, %v", s, ok)
	}
}
