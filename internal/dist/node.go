package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// Node is one cluster member. It owns the virtual-processor segment
// [id·N/K, (id+1)·N/K), executes the BA recursion for subproblems whose
// range starts inside its segment, forwards escaping subranges to peers
// and streams finished parts to the coordinator.
type Node struct {
	ID int
	N  int // virtual processors in the whole cluster
	K  int // number of nodes

	ln        net.Listener
	peerAddrs []string // index = node id
	coordAddr string

	mu    sync.Mutex
	peers map[int]*json.Encoder
	conns []net.Conn
	coord *json.Encoder

	wg     sync.WaitGroup
	closed bool
}

// NewNode creates a node listening on addr (use "127.0.0.1:0" to pick a
// free port). Peer and coordinator addresses are supplied via Start once
// the whole cluster is known.
func NewNode(id, n, k int, addr string) (*Node, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("dist: node id %d outside [0, %d)", id, k)
	}
	if n < k {
		return nil, fmt.Errorf("dist: %d virtual processors cannot cover %d nodes", n, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: node %d listen: %w", id, err)
	}
	return &Node{
		ID: id, N: n, K: k,
		ln:    ln,
		peers: make(map[int]*json.Encoder),
	}, nil
}

// Addr returns the node's listen address.
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// segmentOwner returns the node owning virtual processor p. Segments
// follow the same arithmetic everywhere — node k owns [k·N/K, (k+1)·N/K) —
// and the owner is found by scanning the boundaries, which is exact even
// for ragged divisions and cheap for realistic node counts.
func segmentOwner(p, n, k int) int {
	for node := 0; node < k; node++ {
		if p < (node+1)*n/k {
			return node
		}
	}
	return k - 1
}

// Start begins serving. peerAddrs[i] must be node i's address; coordAddr
// the coordinator's.
func (nd *Node) Start(peerAddrs []string, coordAddr string) error {
	if len(peerAddrs) != nd.K {
		return fmt.Errorf("dist: %d peer addresses for %d nodes", len(peerAddrs), nd.K)
	}
	nd.peerAddrs = append([]string(nil), peerAddrs...)
	nd.coordAddr = coordAddr
	nd.wg.Add(1)
	go nd.acceptLoop()
	return nil
}

func (nd *Node) acceptLoop() {
	defer nd.wg.Done()
	for {
		conn, err := nd.ln.Accept()
		if err != nil {
			return // listener closed
		}
		nd.mu.Lock()
		nd.conns = append(nd.conns, conn)
		nd.mu.Unlock()
		nd.wg.Add(1)
		go nd.handleConn(conn)
	}
}

func (nd *Node) handleConn(conn net.Conn) {
	defer nd.wg.Done()
	dec := json.NewDecoder(conn)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// A malformed message poisons only this connection.
				_ = conn.Close()
			}
			return
		}
		if m.Type != msgAssign {
			continue // nodes only consume assignments
		}
		p, err := Decode(m.Problem)
		if err != nil {
			continue // undecodable problems are dropped; coordinator times out
		}
		lo, hi := m.Lo, m.Hi
		nd.wg.Add(1)
		go func() {
			defer nd.wg.Done()
			nd.work(p, lo, hi)
		}()
	}
}

// work runs the BA recursion for [lo, hi), handling ownership hand-offs.
func (nd *Node) work(p bisect.Problem, lo, hi int) {
	for {
		if hi-lo == 1 || !p.CanBisect() {
			nd.reportPart(p, lo, hi)
			return
		}
		c1, c2 := p.Bisect()
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), hi-lo)
		mid := lo + n1
		// Light child: local recursion if we own its range start,
		// otherwise ship it to the owner.
		if owner := segmentOwner(mid, nd.N, nd.K); owner == nd.ID {
			nd.wg.Add(1)
			go func(q bisect.Problem, l, h int) {
				defer nd.wg.Done()
				nd.work(q, l, h)
			}(c2, mid, hi)
		} else {
			nd.sendAssign(owner, c2, mid, hi)
		}
		p, hi = c1, mid
		_ = n2
	}
}

func (nd *Node) sendAssign(peer int, p bisect.Problem, lo, hi int) {
	spec, err := Encode(p)
	if err != nil {
		return
	}
	enc, err := nd.peerEncoder(peer)
	if err != nil {
		return
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	_ = enc.Encode(message{Type: msgAssign, Problem: spec, Lo: lo, Hi: hi})
}

func (nd *Node) reportPart(p bisect.Problem, lo, hi int) {
	spec, err := Encode(p)
	if err != nil {
		return
	}
	enc, err := nd.coordEncoder()
	if err != nil {
		return
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	_ = enc.Encode(message{Type: msgPart, Part: spec, PartLo: lo, PartHi: hi, FromNode: nd.ID})
}

func (nd *Node) peerEncoder(peer int) (*json.Encoder, error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if enc, ok := nd.peers[peer]; ok {
		return enc, nil
	}
	conn, err := net.Dial("tcp", nd.peerAddrs[peer])
	if err != nil {
		return nil, err
	}
	nd.conns = append(nd.conns, conn)
	enc := json.NewEncoder(conn)
	nd.peers[peer] = enc
	return enc, nil
}

func (nd *Node) coordEncoder() (*json.Encoder, error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.coord != nil {
		return nd.coord, nil
	}
	conn, err := net.Dial("tcp", nd.coordAddr)
	if err != nil {
		return nil, err
	}
	nd.conns = append(nd.conns, conn)
	nd.coord = json.NewEncoder(conn)
	return nd.coord, nil
}

// Close shuts the node down and waits for in-flight work.
func (nd *Node) Close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	_ = nd.ln.Close()
	for _, c := range nd.conns {
		_ = c.Close()
	}
	nd.mu.Unlock()
	nd.wg.Wait()
}
