package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/obs"
)

// Node is one cluster member. It owns the virtual-processor segment
// [id·N/K, (id+1)·N/K), executes the BA recursion for subproblems whose
// range starts inside its segment, forwards escaping subranges to peers
// and streams finished parts to the coordinator.
//
// All hand-offs are acknowledged transfers: every data message carries an
// ID derived from the subproblem's bisection seed, the receiver dedups
// and acks, and the sender retries with exponential backoff and seeded
// jitter until the ack arrives. Because the synthetic bisection stream is
// deterministic, re-executing a subproblem (after a crash or a lease
// re-issue) reproduces the exact same message IDs, so duplicated work
// collapses at every receiver instead of corrupting the partition.
type Node struct {
	ID int
	N  int // virtual processors in the whole cluster
	K  int // number of nodes

	ln        net.Listener
	peerAddrs []string // index = node id
	coordAddr string

	plan *FaultPlan
	tm   Timing
	fs   *faultState
	acks *ackWaiters
	reg  *obs.Registry

	mu    sync.Mutex
	links map[int]*link // dialled links; coordinator is linkCoord
	conns []net.Conn    // every conn we own (accepted + dialled)
	// seen maps an assign ID to 1 + the highest re-issue generation this
	// node has executed (1 after a first delivery, which has Gen 0).
	seen     map[uint64]uint64
	receipts map[uint64]uint64
	adopt    map[int]int // dead node → adopter, per coordinator updates
	beatSeq  uint64
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// linkCoord is the links-map key for the coordinator.
const linkCoord = -1

// NewNode creates a node listening on addr (use "127.0.0.1:0" to pick a
// free port). Peer and coordinator addresses are supplied via Start once
// the whole cluster is known.
func NewNode(id, n, k int, addr string) (*Node, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("dist: node id %d outside [0, %d)", id, k)
	}
	if n < k {
		return nil, fmt.Errorf("dist: %d virtual processors cannot cover %d nodes", n, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: node %d listen: %w", id, err)
	}
	return &Node{
		ID: id, N: n, K: k,
		ln:       ln,
		tm:       DefaultTiming(),
		acks:     newAckWaiters(),
		reg:      obs.NewRegistry(),
		links:    make(map[int]*link),
		seen:     make(map[uint64]uint64),
		receipts: make(map[uint64]uint64),
		adopt:    make(map[int]int),
		done:     make(chan struct{}),
	}, nil
}

// SetFault installs a fault plan. Must be called before Start.
func (nd *Node) SetFault(plan *FaultPlan) { nd.plan = plan }

// SetTiming overrides the protocol clocks. Must be called before Start.
func (nd *Node) SetTiming(tm Timing) { nd.tm = tm.withDefaults() }

// Stats returns the node's fault-layer counters.
func (nd *Node) Stats() FaultStats { return nd.fs.Stats() }

// Metrics returns the node's metric registry: send/retry/dedup counters
// and the ack round-trip and backoff latency histograms.
func (nd *Node) Metrics() *obs.Registry { return nd.reg }

// Addr returns the node's listen address.
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// segmentOwner returns the node owning virtual processor p. Segments
// follow the same arithmetic everywhere — node k owns [k·N/K, (k+1)·N/K) —
// and the owner is found by scanning the boundaries, which is exact even
// for ragged divisions and cheap for realistic node counts.
func segmentOwner(p, n, k int) int {
	for node := 0; node < k; node++ {
		if p < (node+1)*n/k {
			return node
		}
	}
	return k - 1
}

// resolveOwner maps a virtual processor to the node currently responsible
// for it: the segment owner, rerouted through the adoption chain for
// nodes the coordinator has declared dead.
func (nd *Node) resolveOwner(proc int) int {
	o := segmentOwner(proc, nd.N, nd.K)
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for i := 0; i < nd.K; i++ {
		a, ok := nd.adopt[o]
		if !ok {
			break
		}
		o = a
	}
	return o
}

// Start begins serving. peerAddrs[i] must be node i's address; coordAddr
// the coordinator's.
func (nd *Node) Start(peerAddrs []string, coordAddr string) error {
	if len(peerAddrs) != nd.K {
		return fmt.Errorf("dist: %d peer addresses for %d nodes", len(peerAddrs), nd.K)
	}
	nd.peerAddrs = append([]string(nil), peerAddrs...)
	nd.coordAddr = coordAddr
	nd.fs = newFaultState(nd.plan, nd.ID, func() { nd.Kill() }, nd.reg)
	nd.wg.Add(2)
	go nd.acceptLoop()
	go nd.heartbeatLoop()
	return nil
}

func (nd *Node) acceptLoop() {
	defer nd.wg.Done()
	for {
		conn, err := nd.ln.Accept()
		if err != nil {
			return // listener closed
		}
		lk := newLink(conn, nd.fs)
		nd.mu.Lock()
		if nd.closed {
			nd.mu.Unlock()
			_ = conn.Close()
			return
		}
		nd.conns = append(nd.conns, conn)
		nd.mu.Unlock()
		nd.wg.Add(1)
		go nd.readLoop(conn, lk)
	}
}

// heartbeatLoop streams liveness beats to the coordinator. Beats are
// fire-and-forget — the failure detector tolerates individual losses.
func (nd *Node) heartbeatLoop() {
	defer nd.wg.Done()
	tick := time.NewTicker(nd.tm.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-nd.done:
			return
		case <-tick.C:
			nd.mu.Lock()
			nd.beatSeq++
			seq := nd.beatSeq
			nd.mu.Unlock()
			if lk, err := nd.linkTo(linkCoord); err == nil {
				_ = lk.send(message{
					Type:     msgBeat,
					ID:       idFor(roleBeat, uint64(nd.ID)<<40|seq),
					FromNode: nd.ID,
				}, 0)
			}
		}
	}
}

// readLoop consumes one connection. Incoming assigns and owner updates
// are acknowledged on the same connection; acks resolve pending sends.
func (nd *Node) readLoop(conn net.Conn, lk *link) {
	defer nd.wg.Done()
	dec := json.NewDecoder(conn)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			_ = conn.Close()
			return
		}
		switch m.Type {
		case msgAck:
			nd.acks.resolve(m.ID)
		case msgAssign:
			nd.handleAssign(m, lk)
		case msgOwner:
			nd.mu.Lock()
			nd.adopt[m.Dead] = m.Adopter
			att := nd.receipts[m.ID]
			nd.receipts[m.ID]++
			nd.mu.Unlock()
			_ = lk.send(message{Type: msgAck, ID: ackID(m.ID), FromNode: nd.ID}, att)
		}
	}
}

// handleAssign acks and dedups one assignment. A first delivery starts
// the BA recursion; retransmissions only re-ack. A coordinator re-issue
// whose generation advances past the last executed one re-runs the lease
// even on a node that saw it before — an acked hand-off proves delivery,
// not that the receiver's parts survived, so the coordinator must be
// able to force re-execution until the lease's weight is accounted for.
// Re-execution is deterministic, so repeats collapse at every receiver.
func (nd *Node) handleAssign(m message, lk *link) {
	nd.mu.Lock()
	att := nd.receipts[m.ID]
	nd.receipts[m.ID]++
	seenBefore := nd.seen[m.ID] > 0
	execute := !seenBefore || (m.Reissue && nd.seen[m.ID] < m.Gen+1)
	if execute {
		nd.seen[m.ID] = m.Gen + 1
	}
	closed := nd.closed
	nd.mu.Unlock()
	_ = lk.send(message{Type: msgAck, ID: ackID(m.ID), FromNode: nd.ID}, att)
	if !execute {
		nd.reg.Counter(mDedupAssigns).Inc()
	} else if seenBefore {
		nd.reg.Counter(mReissueExecs).Inc()
		nd.reg.Emit("dist.reissue_exec", fmt.Sprintf("node %d re-executes lease %d at gen %d", nd.ID, m.Lease, m.Gen))
	}
	if closed || !execute {
		return
	}
	p, err := Decode(m.Problem)
	if err != nil {
		return // undecodable problems are dropped; the lease expires and is reissued
	}
	leaseID := m.ID
	// Tell the coordinator this lease is now owned here. The claim also
	// discharges the parent lease's weight share.
	claim := message{
		Type: msgClaim, ID: idFor(roleClaim, m.Problem.Seed),
		Lease: leaseID, Parent: m.Parent,
		Problem: m.Problem, Lo: m.Lo, Hi: m.Hi, FromNode: nd.ID,
	}
	nd.wg.Add(2)
	go func() {
		defer nd.wg.Done()
		_ = nd.reliableSend(nil, claim)
	}()
	lo, hi := m.Lo, m.Hi
	go func() {
		defer nd.wg.Done()
		nd.work(p, lo, hi, leaseID)
	}()
}

// work runs the BA recursion for [lo, hi), handling ownership hand-offs.
// Every part and hand-off stays accounted under leaseID.
func (nd *Node) work(p bisect.Problem, lo, hi int, leaseID uint64) {
	for {
		select {
		case <-nd.done:
			return
		default:
		}
		if hi-lo == 1 || !p.CanBisect() {
			nd.reportPart(p, lo, hi, leaseID)
			return
		}
		c1, c2 := p.Bisect()
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		n1, n2 := core.SplitProcs(c1.Weight(), c2.Weight(), hi-lo)
		mid := lo + n1
		// Light child: local recursion if we currently own its range
		// start, otherwise an acknowledged hand-off to the owner.
		if owner := nd.resolveOwner(mid); owner == nd.ID {
			nd.wg.Add(1)
			go func(q bisect.Problem, l, h int) {
				defer nd.wg.Done()
				nd.work(q, l, h, leaseID)
			}(c2, mid, hi)
		} else {
			nd.wg.Add(1)
			go func(q bisect.Problem, l, h int) {
				defer nd.wg.Done()
				nd.sendAssign(q, l, h, leaseID)
			}(c2, mid, hi)
		}
		p, hi = c1, mid
		_ = n2
	}
}

// sendAssign ships a subproblem to the owner of its range start with
// retry and owner re-resolution per attempt: if the owner dies mid-run,
// the coordinator's adoption broadcast reroutes the next attempt.
func (nd *Node) sendAssign(p bisect.Problem, lo, hi int, parentLease uint64) {
	spec, err := Encode(p)
	if err != nil {
		return
	}
	m := message{
		Type: msgAssign, ID: idFor(roleAssign, spec.Seed),
		Lease: idFor(roleAssign, spec.Seed), Parent: parentLease,
		Problem: spec, Lo: lo, Hi: hi, FromNode: nd.ID,
	}
	_ = nd.reliableSend(func() int { return nd.resolveOwner(lo) }, m)
}

// reportPart streams a finished part to the coordinator, retrying until
// acknowledged.
func (nd *Node) reportPart(p bisect.Problem, lo, hi int, leaseID uint64) {
	spec, err := Encode(p)
	if err != nil {
		return
	}
	m := message{
		Type: msgPart, ID: idFor(rolePart, spec.Seed), Lease: leaseID,
		Part: spec, PartLo: lo, PartHi: hi, FromNode: nd.ID,
	}
	_ = nd.reliableSend(nil, m)
}

// reliableSend delivers m at-least-once: send, await ack with a
// per-attempt deadline, back off exponentially with seeded jitter and
// retransmit until acknowledged or the node shuts down. dest re-resolves
// the target node per attempt; nil means the coordinator. The backoff
// timer is allocated once and Reset per attempt.
func (nd *Node) reliableSend(dest func() int, m message) error {
	ch := nd.acks.waiter(ackID(m.ID))
	start := time.Now()
	var attempt uint64
	t := time.NewTimer(nd.tm.backoff(m.ID, 0))
	defer t.Stop()
	for {
		target := linkCoord
		if dest != nil {
			target = dest()
		}
		if lk, err := nd.linkTo(target); err == nil {
			if attempt > 0 {
				nd.fs.addRetry()
			}
			if err := lk.send(m, attempt); err != nil {
				nd.dropLink(target)
			}
		}
		select {
		case <-ch:
			nd.reg.Histogram(mAckRTT).ObserveSince(start)
			return nil
		case <-nd.done:
			return net.ErrClosed
		case <-t.C:
			nd.reg.Histogram(mBackoff).Observe(int64(nd.tm.backoff(m.ID, attempt)))
			attempt++
			t.Reset(nd.tm.backoff(m.ID, attempt))
		}
	}
}

// linkTo returns (dialling if necessary) the link to a peer or the
// coordinator. The reverse direction of the same connection carries acks,
// so every dialled conn gets its own read loop.
func (nd *Node) linkTo(target int) (*link, error) {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, net.ErrClosed
	}
	if lk, ok := nd.links[target]; ok {
		nd.mu.Unlock()
		return lk, nil
	}
	addr := nd.coordAddr
	if target != linkCoord {
		addr = nd.peerAddrs[target]
	}
	nd.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	lk := newLink(conn, nd.fs)
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		_ = conn.Close()
		return nil, net.ErrClosed
	}
	if prev, ok := nd.links[target]; ok {
		nd.mu.Unlock()
		_ = conn.Close()
		return prev, nil
	}
	nd.links[target] = lk
	nd.conns = append(nd.conns, conn)
	nd.wg.Add(1)
	nd.mu.Unlock()
	go nd.readLoop(conn, lk)
	return lk, nil
}

// dropLink discards a cached link after a send error so the next attempt
// redials.
func (nd *Node) dropLink(target int) {
	nd.mu.Lock()
	if lk, ok := nd.links[target]; ok {
		delete(nd.links, target)
		_ = lk.conn.Close()
	}
	nd.mu.Unlock()
}

// terminate closes the listener and every connection. Kill (abrupt) does
// not wait for in-flight goroutines; Close (graceful) does.
func (nd *Node) terminate() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	close(nd.done)
	_ = nd.ln.Close()
	for _, c := range nd.conns {
		_ = c.Close()
	}
	nd.links = make(map[int]*link)
	nd.mu.Unlock()
}

// Kill simulates a crash: everything stops immediately, in-flight work is
// abandoned, peers and coordinator see broken connections and silence.
func (nd *Node) Kill() { nd.terminate() }

// Close shuts the node down and waits for in-flight work.
func (nd *Node) Close() {
	nd.terminate()
	nd.wg.Wait()
}
