package dist

import (
	"sort"
	"sync"
	"time"
)

// BeatRule is the failure-detector timing rule used by the coordinator's
// heartbeat loop, exported so other membership layers (internal/cluster's
// peer ring) apply the identical policy instead of inventing a subtly
// different one: a member is overdue once it has been silent for more
// than twice its heartbeat interval, and dead once the silence exceeds
// DeadAfter.
type BeatRule struct {
	// Heartbeat is the expected beat interval.
	Heartbeat time.Duration
	// DeadAfter is the silence after which a member is declared dead.
	DeadAfter time.Duration
}

// Overdue reports whether a member silent for the given duration has
// missed enough beats to be suspect (silent > 2×Heartbeat).
func (r BeatRule) Overdue(silent time.Duration) bool { return silent > 2*r.Heartbeat }

// Dead reports whether a member silent for the given duration should be
// declared dead (silent > DeadAfter).
func (r BeatRule) Dead(silent time.Duration) bool { return silent > r.DeadAfter }

// Rule extracts the failure-detector rule from a Timing.
func (t Timing) Rule() BeatRule {
	return BeatRule{Heartbeat: t.Heartbeat, DeadAfter: t.DeadAfter}
}

// BeatTable tracks the last beat heard from each of a set of string-keyed
// members and classifies them with a BeatRule. It is the concurrent,
// id-keyed counterpart of the coordinator's per-node lastBeat array: the
// coordinator owns its array from a single goroutine, while cluster peers
// record beats from connection readers and classify from a reaper tick,
// so the table carries its own lock.
type BeatTable struct {
	rule BeatRule

	mu   sync.Mutex
	last map[string]time.Time
}

// NewBeatTable builds an empty table with the given rule.
func NewBeatTable(rule BeatRule) *BeatTable {
	return &BeatTable{rule: rule, last: make(map[string]time.Time)}
}

// Rule returns the table's timing rule.
func (t *BeatTable) Rule() BeatRule { return t.rule }

// BeatAt records a beat from id at the given instant. The first beat for
// an id registers it; registration counts as liveness, so a member that
// never beats is declared dead DeadAfter after it was first tracked
// rather than lingering unknown forever.
func (t *BeatTable) BeatAt(id string, now time.Time) {
	t.mu.Lock()
	t.last[id] = now
	t.mu.Unlock()
}

// Beat records a beat from id now.
func (t *BeatTable) Beat(id string) { t.BeatAt(id, time.Now()) }

// Forget drops id from the table (a member administratively removed, as
// opposed to one that died).
func (t *BeatTable) Forget(id string) {
	t.mu.Lock()
	delete(t.last, id)
	t.mu.Unlock()
}

// Silence returns how long id has been silent at now, and whether it is
// tracked at all.
func (t *BeatTable) Silence(id string, now time.Time) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	last, ok := t.last[id]
	if !ok {
		return 0, false
	}
	return now.Sub(last), true
}

// DeadAt returns the sorted ids whose silence at now exceeds the rule's
// death threshold.
func (t *BeatTable) DeadAt(now time.Time) []string {
	t.mu.Lock()
	var dead []string
	for id, last := range t.last {
		if t.rule.Dead(now.Sub(last)) {
			dead = append(dead, id)
		}
	}
	t.mu.Unlock()
	sort.Strings(dead)
	return dead
}
