package dist

import (
	"testing"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := bisect.MustSynthetic(3.5, 0.1, 0.5, 77)
	spec, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Weight() != p.Weight() || back.ID() != p.ID() {
		t.Fatal("round trip lost identity")
	}
	// Bisections after rehydration match the original's.
	a1, a2 := p.Bisect()
	b1, b2 := back.Bisect()
	if a1.Weight() != b1.Weight() || a2.ID() != b2.ID() {
		t.Fatal("rehydrated problem bisects differently")
	}
}

func TestEncodeRejectsForeignTypes(t *testing.T) {
	if _, err := Encode(bisect.MustFixed(1, 0.3)); err == nil {
		t.Fatal("foreign type accepted")
	}
	if _, err := Decode(Spec{Kind: "martian"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSegmentOwner(t *testing.T) {
	// 10 processors over 3 nodes: segments [0,3), [3,6), [6,10).
	wants := map[int]int{0: 0, 2: 0, 3: 1, 5: 1, 6: 2, 9: 2}
	for p, want := range wants {
		if got := segmentOwner(p, 10, 3); got != want {
			t.Fatalf("owner(%d) = %d, want %d", p, got, want)
		}
	}
	// Exhaustive consistency: every processor owned by exactly the node
	// whose segment contains it.
	for n := 1; n <= 40; n++ {
		for k := 1; k <= n && k <= 8; k++ {
			for p := 0; p < n; p++ {
				o := segmentOwner(p, n, k)
				lo, hi := o*n/k, (o+1)*n/k
				if p < lo || p >= hi {
					t.Fatalf("n=%d k=%d: proc %d assigned to node %d with segment [%d,%d)", n, k, p, o, lo, hi)
				}
			}
		}
	}
}

// runCluster executes one distributed run and returns the result.
func runCluster(t *testing.T, n, k int, seed uint64) *Result {
	t.Helper()
	cl, err := StartCluster(n, k)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.5, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Coord.Run(root, n, nodeAddrs(cl), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func nodeAddrs(cl *Cluster) []string {
	addrs := make([]string, len(cl.Nodes))
	for i, nd := range cl.Nodes {
		addrs[i] = nd.Addr()
	}
	return addrs
}

func TestDistributedBAMatchesLocalBA(t *testing.T) {
	const n, seed = 64, 42
	res := runCluster(t, n, 4, seed)
	local, err := core.BA(bisect.MustSynthetic(1, 0.1, 0.5, seed), n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != len(local.Parts) {
		t.Fatalf("distributed produced %d parts, local %d", len(res.Parts), len(local.Parts))
	}
	// Compare the part ID sets — the distributed run must compute exactly
	// the same partition as the in-process algorithm.
	localIDs := map[uint64]bool{}
	for _, pt := range local.Parts {
		localIDs[pt.Problem.ID()] = true
	}
	for _, pt := range res.Parts {
		if !localIDs[pt.Spec.Seed] {
			t.Fatalf("distributed part %d not produced by local BA", pt.Spec.Seed)
		}
	}
	if res.Ratio != local.Ratio {
		t.Fatalf("distributed ratio %v != local %v", res.Ratio, local.Ratio)
	}
}

func TestDistributedRangesPartitionProcessors(t *testing.T) {
	const n = 48
	res := runCluster(t, n, 3, 7)
	covered := make([]bool, n)
	for _, pt := range res.Parts {
		for i := pt.Lo; i < pt.Hi; i++ {
			if i < 0 || i >= n || covered[i] {
				t.Fatalf("range [%d,%d) overlaps or escapes", pt.Lo, pt.Hi)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("processor %d uncovered", i)
		}
	}
}

func TestDistributedWorkActuallyTravels(t *testing.T) {
	res := runCluster(t, 64, 4, 11)
	if res.CrossNodeParts == 0 {
		t.Fatal("all parts finished on node 0 — nothing was distributed")
	}
}

func TestSingleNodeCluster(t *testing.T) {
	res := runCluster(t, 32, 1, 3)
	if len(res.Parts) != 32 {
		t.Fatalf("parts = %d", len(res.Parts))
	}
	if res.CrossNodeParts != 0 {
		t.Fatal("cross-node parts on a single-node cluster")
	}
}

func TestManyNodes(t *testing.T) {
	res := runCluster(t, 128, 8, 13)
	if len(res.Parts) != 128 {
		t.Fatalf("parts = %d", len(res.Parts))
	}
	// With 8 nodes the majority of parts should come from nodes ≠ 0.
	if res.CrossNodeParts < 64 {
		t.Fatalf("only %d of 128 parts travelled", res.CrossNodeParts)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Run(Spec{Kind: specKindSynthetic, Weight: 1}, 0, []string{"x"}, time.Second); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := coord.Run(Spec{Kind: specKindSynthetic, Weight: 1}, 4, nil, time.Second); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := coord.Run(Spec{Kind: specKindSynthetic}, 4, []string{"127.0.0.1:1"}, time.Second); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	// A cluster that never receives the root (node list pointing at a dead
	// port) must time out, not hang.
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	root := Spec{Kind: specKindSynthetic, Weight: 1, ALo: 0.1, AHi: 0.5, Seed: 1}
	if _, err := coord.Run(root, 8, []string{"127.0.0.1:1"}, 300*time.Millisecond); err == nil {
		t.Fatal("dead cluster did not error")
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(-1, 8, 4, "127.0.0.1:0"); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := NewNode(4, 8, 4, "127.0.0.1:0"); err == nil {
		t.Fatal("id ≥ k accepted")
	}
	if _, err := NewNode(0, 2, 4, "127.0.0.1:0"); err == nil {
		t.Fatal("n < k accepted")
	}
	nd, err := NewNode(0, 8, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.Start([]string{"a"}, "b"); err == nil {
		t.Fatal("wrong peer count accepted")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cl, err := StartCluster(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // must not panic or hang
}

func TestDistributedPHFMatchesLocalHF(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		seed uint64
	}{
		{32, 1, 1}, {32, 2, 2}, {64, 4, 3}, {100, 7, 4}, {200, 4, 5},
	} {
		alpha := 0.1
		root, err := Encode(bisect.MustSynthetic(1, alpha, 0.5, tc.seed))
		if err != nil {
			t.Fatal(err)
		}
		parts, err := RunPHFCluster(root, tc.n, tc.k, alpha)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		local, err := core.HF(bisect.MustSynthetic(1, alpha, 0.5, tc.seed), tc.n, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != len(local.Parts) {
			t.Fatalf("n=%d k=%d: distributed %d parts, local %d", tc.n, tc.k, len(parts), len(local.Parts))
		}
		localIDs := map[uint64]bool{}
		for _, pt := range local.Parts {
			localIDs[pt.Problem.ID()] = true
		}
		for _, pt := range parts {
			if !localIDs[pt.Spec.Seed] {
				t.Fatalf("n=%d k=%d: distributed part %d not in HF partition (Theorem 3 over TCP violated)",
					tc.n, tc.k, pt.Spec.Seed)
			}
		}
	}
}

func TestDistributedPHFProcessorsUnique(t *testing.T) {
	root, err := Encode(bisect.MustSynthetic(1, 0.15, 0.5, 9))
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	parts, err := RunPHFCluster(root, n, 4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, n)
	for _, pt := range parts {
		if pt.Hi != pt.Lo+1 || pt.Lo < 0 || pt.Lo >= n || used[pt.Lo] {
			t.Fatalf("bad processor assignment [%d, %d)", pt.Lo, pt.Hi)
		}
		used[pt.Lo] = true
	}
}

func TestDistributedPHFSpreadsWork(t *testing.T) {
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.5, 13))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := RunPHFCluster(root, 64, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, pt := range parts {
		perNode[pt.FromNode]++
	}
	for node := 0; node < 4; node++ {
		if perNode[node] != 16 {
			t.Fatalf("node %d holds %d parts, want 16: %v", node, perNode[node], perNode)
		}
	}
}

func TestPHFNodeValidation(t *testing.T) {
	if _, err := NewPHFNode(-1, 8, 2, 0.1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := NewPHFNode(0, 1, 2, 0.1); err == nil {
		t.Fatal("n < k accepted")
	}
	if _, err := NewPHFNode(0, 8, 2, 0.9); err == nil {
		t.Fatal("bad α accepted")
	}
}
