package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"bisectlb/internal/obs"
)

// Typed outcomes of a distributed run, for callers that must distinguish
// "completed on survivors" from "failed".
var (
	// ErrIncomplete wraps a timeout: the returned Result carries the
	// parts recovered so far, but weight conservation never closed.
	ErrIncomplete = errors.New("dist: incomplete run")
	// ErrDegraded wraps a *successful* run that lost at least one node:
	// the partition is complete and valid (weight conserves exactly),
	// but survivor nodes adopted the dead nodes' processor intervals.
	ErrDegraded = errors.New("dist: completed degraded on survivors")
)

// PartReport is one finished subproblem as received by the coordinator.
type PartReport struct {
	Spec     Spec
	Lo, Hi   int
	FromNode int
}

// RunStats is the coordinator's protocol-level account of one Run: how
// much recovery work the fault-tolerance machinery actually performed.
// It is returned inside Result so callers and tests can assert on retry
// and re-issue counts instead of only on the final partition.
type RunStats struct {
	// Elapsed is the wall time of the Run call.
	Elapsed time.Duration
	// Faults snapshots the coordinator endpoint's fault-layer counters
	// (sends, drops, dups, delays, retries).
	Faults FaultStats
	// DedupParts and DedupClaims count duplicate part/claim deliveries
	// that were discarded by message-ID dedup.
	DedupParts  int
	DedupClaims int
	// HeartbeatMisses counts failure-detector checks that found a live
	// node overdue (beat older than twice the heartbeat interval).
	HeartbeatMisses int
	// Deaths is the number of nodes the detector declared dead.
	Deaths int
	// LeaseReissues counts lease re-issues (orphan adoption + expiry);
	// ReissuesByGen[g] is how many re-issues advanced a lease to
	// generation g.
	LeaseReissues int
	ReissuesByGen map[uint64]int
	// AckRTTp50/p99/max summarise the coordinator's reliable-send round
	// trips (log-bucketed; p-values are bucket upper bounds).
	AckRTTp50, AckRTTp99, AckRTTMax time.Duration
	// Degraded and Incomplete mirror the run outcome.
	Degraded   bool
	Incomplete bool
}

// Result is the outcome of a distributed run.
type Result struct {
	Parts []PartReport
	// MaxWeight and Ratio mirror the core result quality measure.
	MaxWeight float64
	Ratio     float64
	// CrossNodeParts counts parts that were finished by a node other than
	// the owner of virtual processor 0 — a proxy for how much work
	// actually travelled.
	CrossNodeParts int
	// Degraded reports that at least one node died and its leases were
	// reassigned to survivors; the partition itself is unaffected.
	Degraded  bool
	DeadNodes []int
	// Reassigned counts lease re-issues (orphan adoption + expiry).
	Reassigned int
	// RecoveryLatency is the time from the first death declaration to
	// run completion (zero when nothing died).
	RecoveryLatency time.Duration
	// Stats is the protocol-level account of the run (retries,
	// re-issues, dedup hits, ack round-trips), snapshotted at return.
	Stats RunStats
}

// lease is one outstanding subproblem obligation. Its remaining weight is
// discharged by parts completed under it and by claims of hand-off
// children split from it; a lease that stays undischarged past expiry —
// or whose owner dies — is re-issued, which is safe because re-execution
// is deterministic and every receiver dedups on message ID.
type lease struct {
	spec   Spec
	lo, hi int
	owner  int
	rem    float64
	debits int
	issued time.Time
	// gen counts re-issues. Each re-issue carries the new generation, and
	// nodes re-execute when it advances past the last generation they ran,
	// so a lease whose effects were lost (receiver acked, then died before
	// its parts got through) is re-executed until its weight is accounted.
	gen uint64
}

// weightsConserved reports whether sum matches total within the float
// accumulation tolerance for the given number of summands. The tolerance
// is relative and scales with the summand count, so deep recursions
// (hundreds of thousands of parts) don't trip an exact-compare check.
func weightsConserved(sum, total float64, terms int) bool {
	tol := total * 1e-12 * float64(terms+2)
	if minTol := total * 1e-9; tol < minTol {
		tol = minTol
	}
	return math.Abs(sum-total) <= tol
}

// Coordinator collects finished parts and detects termination by weight
// conservation. It additionally runs the cluster's failure detector
// (missed-heartbeat threshold) and the lease table that makes the run
// survive node deaths: orphaned leases are re-issued to the survivor
// adopting the dead node's processor interval.
type Coordinator struct {
	ln   net.Listener
	tm   Timing
	plan *FaultPlan
	fs   *faultState
	acks *ackWaiters
	reg  *obs.Registry
	evCh chan message
	done chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	links    map[int]*link
	conns    []net.Conn
	receipts map[uint64]uint64
	closed   bool
}

// NewCoordinator listens on addr ("127.0.0.1:0" for a free port).
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	reg := obs.NewRegistry()
	c := &Coordinator{
		ln:       ln,
		tm:       DefaultTiming(),
		fs:       newFaultState(nil, linkCoord, nil, reg),
		acks:     newAckWaiters(),
		reg:      reg,
		evCh:     make(chan message, 8192),
		done:     make(chan struct{}),
		links:    make(map[int]*link),
		receipts: make(map[uint64]uint64),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// SetFault installs a fault plan. Must be called before nodes connect.
func (c *Coordinator) SetFault(plan *FaultPlan) {
	c.mu.Lock()
	c.plan = plan
	c.fs = newFaultState(plan, linkCoord, nil, c.reg)
	c.mu.Unlock()
}

// Metrics returns the coordinator's metric registry: protocol counters
// (retries, re-issues, dedup hits, heartbeat misses) and the ack
// round-trip latency histogram.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// SetTiming overrides the protocol clocks. Must be called before Run.
func (c *Coordinator) SetTiming(tm Timing) { c.tm = tm.withDefaults() }

// Stats returns the coordinator's fault-layer counters.
func (c *Coordinator) Stats() FaultStats {
	c.mu.Lock()
	fs := c.fs
	c.mu.Unlock()
	return fs.Stats()
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		lk := newLink(conn, c.fs)
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.conns = append(c.conns, conn)
		c.wg.Add(1)
		c.mu.Unlock()
		go c.readLoop(conn, lk)
	}
}

// readLoop consumes one connection: parts and claims are acked on the
// same connection and forwarded to the Run loop, beats are forwarded
// unacked, acks resolve pending coordinator sends.
func (c *Coordinator) readLoop(conn net.Conn, lk *link) {
	defer c.wg.Done()
	dec := json.NewDecoder(conn)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			_ = conn.Close()
			return
		}
		switch m.Type {
		case msgAck:
			c.acks.resolve(m.ID)
			continue
		case msgPart, msgClaim:
			c.mu.Lock()
			att := c.receipts[m.ID]
			c.receipts[m.ID]++
			c.mu.Unlock()
			_ = lk.send(message{Type: msgAck, ID: ackID(m.ID)}, att)
		case msgBeat:
			// fall through to forward
		default:
			continue
		}
		select {
		case c.evCh <- m:
		case <-c.done:
			return
		}
	}
}

// linkToNode returns (dialling if necessary) the coordinator's link to a
// node; the reverse direction carries the node's acks.
func (c *Coordinator) linkToNode(target int, addr string) (*link, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, net.ErrClosed
	}
	if lk, ok := c.links[target]; ok {
		c.mu.Unlock()
		return lk, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	lk := newLink(conn, c.fs)
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, net.ErrClosed
	}
	if prev, ok := c.links[target]; ok {
		c.mu.Unlock()
		_ = conn.Close()
		return prev, nil
	}
	c.links[target] = lk
	c.conns = append(c.conns, conn)
	c.wg.Add(1)
	c.mu.Unlock()
	go c.readLoop(conn, lk)
	return lk, nil
}

func (c *Coordinator) dropLink(target int) {
	c.mu.Lock()
	if lk, ok := c.links[target]; ok {
		delete(c.links, target)
		_ = lk.conn.Close()
	}
	c.mu.Unlock()
}

// reliableToNode delivers m to a node with retry and backoff until
// acknowledged, the run ends, or the coordinator closes. The backoff
// timer is allocated once and Reset per attempt.
func (c *Coordinator) reliableToNode(target int, addr string, m message, runDone chan struct{}) {
	ch := c.acks.waiter(ackID(m.ID))
	start := time.Now()
	var attempt uint64
	t := time.NewTimer(c.tm.backoff(m.ID, 0))
	defer t.Stop()
	for {
		if lk, err := c.linkToNode(target, addr); err == nil {
			if attempt > 0 {
				c.fs.addRetry()
			}
			if err := lk.send(m, attempt); err != nil {
				c.dropLink(target)
			}
		}
		select {
		case <-ch:
			c.reg.Histogram(mAckRTT).ObserveSince(start)
			return
		case <-runDone:
			return
		case <-c.done:
			return
		case <-t.C:
			c.reg.Histogram(mBackoff).Observe(int64(c.tm.backoff(m.ID, attempt)))
			attempt++
			t.Reset(c.tm.backoff(m.ID, attempt))
		}
	}
}

// Run injects the root problem into the cluster and blocks until the
// parts account for the full weight or the timeout expires. On success
// with no faults the error is nil; if nodes died but the run completed on
// the survivors, the full Result is returned together with ErrDegraded;
// on timeout the partial Result is returned with ErrIncomplete.
func (c *Coordinator) Run(root Spec, n int, nodeAddrs []string, timeout time.Duration) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: n must be ≥ 1, got %d", n)
	}
	if len(nodeAddrs) == 0 {
		return nil, fmt.Errorf("dist: no nodes")
	}
	if !(root.Weight > 0) {
		return nil, fmt.Errorf("dist: root weight %v must be positive", root.Weight)
	}
	k := len(nodeAddrs)
	runDone := make(chan struct{})
	defer close(runDone)

	runStart := time.Now()
	stats := RunStats{ReissuesByGen: make(map[uint64]int)}
	// snapStats finalises the protocol account into the result just
	// before Run returns, on every exit path that has a result.
	snapStats := func(res *Result) {
		stats.Elapsed = time.Since(runStart)
		stats.Faults = c.fs.Stats()
		h := c.reg.Histogram(mAckRTT)
		stats.AckRTTp50 = time.Duration(h.Quantile(0.50))
		stats.AckRTTp99 = time.Duration(h.Quantile(0.99))
		stats.AckRTTMax = time.Duration(h.Max())
		res.Stats = stats
	}

	now := time.Now()
	lastBeat := make([]time.Time, k)
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
		lastBeat[i] = now
	}
	adopt := make(map[int]int)
	resolveOwner := func(o int) int {
		for i := 0; i < k; i++ {
			a, ok := adopt[o]
			if !ok {
				break
			}
			o = a
		}
		return o
	}
	// chooseAdopter picks the survivor owning the adjacent processor
	// range: the nearest live lower-id node, else the nearest live
	// higher-id node.
	chooseAdopter := func(dead int) (int, bool) {
		for i := dead - 1; i >= 0; i-- {
			if alive[i] {
				return i, true
			}
		}
		for i := dead + 1; i < k; i++ {
			if alive[i] {
				return i, true
			}
		}
		return 0, false
	}

	leases := make(map[uint64]*lease)
	claimSeen := make(map[uint64]bool)
	partSeen := make(map[uint64]bool)
	pendingDebit := make(map[uint64]float64)
	pendingCount := make(map[uint64]int)
	debit := func(leaseID uint64, w float64) {
		if leaseID == 0 {
			return
		}
		if l, ok := leases[leaseID]; ok {
			l.rem -= w
			l.debits++
			if weightsConserved(l.spec.Weight-l.rem, l.spec.Weight, l.debits) {
				delete(leases, leaseID)
			}
			return
		}
		pendingDebit[leaseID] += w
		pendingCount[leaseID]++
	}
	// Re-executions can report a part or claim a child under a different
	// covering lease than the original execution did (the hand-off
	// topology depends on which nodes were alive at the time). A globally
	// duplicate message must therefore still discharge the lease it
	// names — once per (lease, message) pair — or that lease would starve
	// and be re-issued forever.
	debited := make(map[[2]uint64]bool)
	debitOnce := func(leaseID, msgID uint64, w float64) {
		if leaseID == 0 {
			return
		}
		pair := [2]uint64{leaseID, msgID}
		if debited[pair] {
			return
		}
		debited[pair] = true
		debit(leaseID, w)
	}

	res := &Result{}
	var firstDeath time.Time
	var sum float64

	issue := func(l *lease, leaseID uint64, parent uint64, reissue bool) {
		target := l.owner
		addr := nodeAddrs[target]
		m := message{
			Type: msgAssign, ID: leaseID, Lease: leaseID, Parent: parent,
			Problem: l.spec, Lo: l.lo, Hi: l.hi, Reissue: reissue, Gen: l.gen,
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.reliableToNode(target, addr, m, runDone)
		}()
	}

	// The root goes to the owner of virtual processor 0 — always node 0.
	rootID := idFor(roleAssign, root.Seed)
	rootLease := &lease{spec: root, lo: 0, hi: n, owner: 0, rem: root.Weight, issued: now}
	leases[rootID] = rootLease
	issue(rootLease, rootID, 0, false)

	declareDead := func(d int, when time.Time) {
		alive[d] = false
		res.DeadNodes = append(res.DeadNodes, d)
		stats.Deaths++
		c.reg.Counter(mDeaths).Inc()
		c.reg.Emit("dist.death", fmt.Sprintf("node %d declared dead", d))
		if firstDeath.IsZero() {
			firstDeath = when
		}
		adopter, ok := chooseAdopter(d)
		if !ok {
			return // no survivors; the run will time out
		}
		adopt[d] = adopter
		// Broadcast the adoption so in-flight hand-offs reroute. One
		// message per live destination, each with its own ID so acks
		// don't cross-resolve.
		for j := 0; j < k; j++ {
			if !alive[j] {
				continue
			}
			m := message{
				Type: msgOwner,
				ID:   idFor(roleOwner, uint64(d)<<32|uint64(adopter)<<16|uint64(j)),
				Dead: d, Adopter: adopter,
			}
			target, addr := j, nodeAddrs[j]
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.reliableToNode(target, addr, m, runDone)
			}()
		}
	}

	tickEvery := c.tm.Heartbeat * 2
	if tickEvery > c.tm.DeadAfter/3 {
		tickEvery = c.tm.DeadAfter / 3
	}
	if tickEvery <= 0 {
		tickEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()

	finishTimeout := func() (*Result, error) {
		stats.Incomplete = true
		c.reg.Counter(mOutcomeIncomplete).Inc()
		snapStats(res)
		return res, fmt.Errorf("dist: timeout after %v with %d parts (weight %v of %v): %w",
			timeout, len(res.Parts), sum, root.Weight, ErrIncomplete)
	}

	for {
		select {
		case m := <-c.evCh:
			switch m.Type {
			case msgBeat:
				if m.FromNode >= 0 && m.FromNode < k && alive[m.FromNode] {
					lastBeat[m.FromNode] = time.Now()
				}
			case msgClaim:
				if claimSeen[m.ID] {
					stats.DedupClaims++
					c.reg.Counter(mDedupClaims).Inc()
				}
				debitOnce(m.Parent, m.ID, m.Problem.Weight)
				l, ok := leases[m.Lease]
				if !claimSeen[m.ID] && !ok {
					l = &lease{spec: m.Problem, lo: m.Lo, hi: m.Hi, rem: m.Problem.Weight}
					if pd, has := pendingDebit[m.Lease]; has {
						l.rem -= pd
						l.debits += pendingCount[m.Lease]
						delete(pendingDebit, m.Lease)
						delete(pendingCount, m.Lease)
					}
					if !weightsConserved(l.spec.Weight-l.rem, l.spec.Weight, l.debits) {
						leases[m.Lease] = l
						ok = true
					}
				}
				claimSeen[m.ID] = true
				if ok && l != nil {
					l.owner = m.FromNode
					l.issued = time.Now()
				}
			case msgPart:
				debitOnce(m.Lease, m.ID, m.Part.Weight)
				if partSeen[m.ID] {
					stats.DedupParts++
					c.reg.Counter(mDedupParts).Inc()
					continue
				}
				partSeen[m.ID] = true
				part := PartReport{Spec: m.Part, Lo: m.PartLo, Hi: m.PartHi, FromNode: m.FromNode}
				res.Parts = append(res.Parts, part)
				sum += part.Spec.Weight
				if part.Spec.Weight > res.MaxWeight {
					res.MaxWeight = part.Spec.Weight
				}
				if part.FromNode != 0 {
					res.CrossNodeParts++
				}
				if len(res.Parts) > n {
					return nil, fmt.Errorf("dist: received %d parts for %d processors", len(res.Parts), n)
				}
				if weightsConserved(sum, root.Weight, len(res.Parts)) {
					sort.Slice(res.Parts, func(a, b int) bool { return res.Parts[a].Lo < res.Parts[b].Lo })
					res.Ratio = res.MaxWeight / (root.Weight / float64(n))
					if len(res.DeadNodes) > 0 {
						res.Degraded = true
						res.RecoveryLatency = time.Since(firstDeath)
						stats.Degraded = true
						c.reg.Counter(mOutcomeDegraded).Inc()
						snapStats(res)
						return res, fmt.Errorf("dist: %d of %d nodes died, completed on survivors: %w",
							len(res.DeadNodes), k, ErrDegraded)
					}
					c.reg.Counter(mOutcomeOK).Inc()
					snapStats(res)
					return res, nil
				}
			}
		case <-ticker.C:
			tnow := time.Now()
			rule := c.tm.Rule()
			for i := 0; i < k; i++ {
				if !alive[i] {
					continue
				}
				if silent := tnow.Sub(lastBeat[i]); rule.Overdue(silent) {
					stats.HeartbeatMisses++
					c.reg.Counter(mHeartbeatMisses).Inc()
					if rule.Dead(silent) {
						declareDead(i, tnow)
					}
				}
			}
			for id, l := range leases {
				eff := resolveOwner(l.owner)
				if eff == l.owner && tnow.Sub(l.issued) <= c.tm.LeaseExpiry {
					continue
				}
				if !alive[eff] {
					continue // no live owner reachable; wait for detector/timeout
				}
				l.owner = eff
				l.issued = tnow
				l.gen++
				res.Reassigned++
				stats.LeaseReissues++
				stats.ReissuesByGen[l.gen]++
				c.reg.Counter(mLeaseReissues).Inc()
				c.reg.Histogram(mReissueGen).Observe(int64(l.gen))
				c.reg.Emit("dist.lease_reissue", fmt.Sprintf("lease %d gen %d -> node %d", id, l.gen, eff))
				issue(l, id, 0, true)
			}
		case <-deadline.C:
			return finishTimeout()
		case <-c.done:
			return finishTimeout()
		}
	}
}

// Close shuts the coordinator down.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	_ = c.ln.Close()
	for _, conn := range c.conns {
		_ = conn.Close()
	}
	c.links = make(map[int]*link)
	c.mu.Unlock()
	c.wg.Wait()
}

// Cluster is a convenience bundle of K in-process nodes plus a
// coordinator, for tests, the demo command and benchmarks. A production
// deployment would run each node as its own OS process with the same
// wiring.
type Cluster struct {
	Coord *Coordinator
	Nodes []*Node
}

// StartCluster brings up a fully wired local cluster on loopback TCP with
// no fault injection and default timing.
func StartCluster(n, k int) (*Cluster, error) {
	return StartClusterWith(n, k, nil, Timing{})
}

// StartClusterWith brings up a cluster with a fault plan and protocol
// clocks. Error paths stop every already-started node and close the
// coordinator listener, so partial startups leak no goroutines or
// sockets.
func StartClusterWith(n, k int, plan *FaultPlan, tm Timing) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("dist: need at least one node")
	}
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	coord.SetTiming(tm)
	if plan != nil {
		coord.SetFault(plan)
	}
	cl := &Cluster{Coord: coord}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		node, err := NewNode(i, n, k, "127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		node.SetTiming(tm)
		if plan != nil {
			node.SetFault(plan)
		}
		cl.Nodes = append(cl.Nodes, node)
		addrs[i] = node.Addr()
	}
	for _, node := range cl.Nodes {
		if err := node.Start(addrs, coord.Addr()); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Addrs returns the node addresses in id order.
func (cl *Cluster) Addrs() []string {
	addrs := make([]string, len(cl.Nodes))
	for i, nd := range cl.Nodes {
		addrs[i] = nd.Addr()
	}
	return addrs
}

// TotalStats sums the fault-layer counters over the coordinator and all
// nodes.
func (cl *Cluster) TotalStats() FaultStats {
	t := cl.Coord.Stats()
	for _, nd := range cl.Nodes {
		s := nd.Stats()
		t.Sends += s.Sends
		t.Drops += s.Drops
		t.Dups += s.Dups
		t.Delays += s.Delays
		t.Retries += s.Retries
	}
	return t
}

// Close tears the whole cluster down.
func (cl *Cluster) Close() {
	for _, node := range cl.Nodes {
		node.Close()
	}
	if cl.Coord != nil {
		cl.Coord.Close()
	}
}
