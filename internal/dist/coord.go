package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"
)

// PartReport is one finished subproblem as received by the coordinator.
type PartReport struct {
	Spec     Spec
	Lo, Hi   int
	FromNode int
}

// Result is the outcome of a distributed run.
type Result struct {
	Parts []PartReport
	// MaxWeight and Ratio mirror the core result quality measure.
	MaxWeight float64
	Ratio     float64
	// CrossNodeParts counts parts that were finished by a node other than
	// the owner of virtual processor 0 — a proxy for how much work
	// actually travelled.
	CrossNodeParts int
}

// Coordinator collects finished parts and detects termination by weight
// conservation: the run is complete when the received part weights sum to
// the root weight (within relative tolerance).
type Coordinator struct {
	ln     net.Listener
	partCh chan PartReport
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// NewCoordinator listens on addr ("127.0.0.1:0" for a free port).
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	c := &Coordinator{ln: ln, partCh: make(chan PartReport, 1024)}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns = append(c.conns, conn)
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			dec := json.NewDecoder(conn)
			for {
				var m message
				if err := dec.Decode(&m); err != nil {
					return
				}
				if m.Type != msgPart {
					continue
				}
				c.partCh <- PartReport{Spec: m.Part, Lo: m.PartLo, Hi: m.PartHi, FromNode: m.FromNode}
			}
		}()
	}
}

// Run injects the root problem into the cluster and blocks until the parts
// account for the full weight or the timeout expires.
func (c *Coordinator) Run(root Spec, n int, nodeAddrs []string, timeout time.Duration) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: n must be ≥ 1, got %d", n)
	}
	if len(nodeAddrs) == 0 {
		return nil, fmt.Errorf("dist: no nodes")
	}
	if !(root.Weight > 0) {
		return nil, fmt.Errorf("dist: root weight %v must be positive", root.Weight)
	}
	// The root goes to the owner of virtual processor 0 — always node 0.
	conn, err := net.Dial("tcp", nodeAddrs[0])
	if err != nil {
		return nil, fmt.Errorf("dist: contacting node 0: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(message{Type: msgAssign, Problem: root, Lo: 0, Hi: n}); err != nil {
		return nil, fmt.Errorf("dist: assigning root: %w", err)
	}

	res := &Result{}
	var sum float64
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case part := <-c.partCh:
			res.Parts = append(res.Parts, part)
			sum += part.Spec.Weight
			if part.Spec.Weight > res.MaxWeight {
				res.MaxWeight = part.Spec.Weight
			}
			if part.FromNode != 0 {
				res.CrossNodeParts++
			}
			if math.Abs(sum-root.Weight) <= 1e-9*root.Weight && len(res.Parts) <= n {
				sort.Slice(res.Parts, func(a, b int) bool { return res.Parts[a].Lo < res.Parts[b].Lo })
				res.Ratio = res.MaxWeight / (root.Weight / float64(n))
				return res, nil
			}
			if len(res.Parts) > n {
				return nil, fmt.Errorf("dist: received %d parts for %d processors", len(res.Parts), n)
			}
		case <-deadline.C:
			return nil, fmt.Errorf("dist: timeout after %v with %d parts (weight %v of %v)",
				timeout, len(res.Parts), sum, root.Weight)
		}
	}
}

// Close shuts the coordinator down.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	_ = c.ln.Close()
	for _, conn := range c.conns {
		_ = conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Cluster is a convenience bundle of K in-process nodes plus a
// coordinator, for tests, the demo command and benchmarks. A production
// deployment would run each node as its own OS process with the same
// wiring.
type Cluster struct {
	Coord *Coordinator
	Nodes []*Node
}

// StartCluster brings up a fully wired local cluster on loopback TCP.
func StartCluster(n, k int) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("dist: need at least one node")
	}
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Coord: coord}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		node, err := NewNode(i, n, k, "127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Nodes = append(cl.Nodes, node)
		addrs[i] = node.Addr()
	}
	for _, node := range cl.Nodes {
		if err := node.Start(addrs, coord.Addr()); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close tears the whole cluster down.
func (cl *Cluster) Close() {
	for _, node := range cl.Nodes {
		node.Close()
	}
	if cl.Coord != nil {
		cl.Coord.Close()
	}
}
