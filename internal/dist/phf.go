package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/netcoll"
	"bisectlb/internal/obs"
)

// Distributed PHF: the full Algorithm PHF executed by K nodes over TCP.
// Where distributed BA (node.go) needs only point-to-point hand-offs, PHF
// additionally needs the global operations of the model — max-reductions,
// counts and synchronised rounds — supplied here by internal/netcoll's
// tree collectives. The result is the network-level demonstration of the
// paper's communication asymmetry: the same partition as HF, at the price
// of one collective episode bundle per round.
//
// Round structure (identical on every node, collectives as barriers):
//
//  1. Every node snapshots its heavy parts and free virtual processors.
//  2. Vector all-reduces publish per-node heavy and free counts; each node
//     derives, in id order, the global rank intervals for both.
//  3. Heavy part with global rank r is bisected; its light child travels
//     to the free processor with global rank r (local placement when the
//     owner coincides).
//  4. Nodes wait for exactly their expected number of incoming transfers,
//     then re-enter the next collective.
//
// The final phase-2 iteration needs the f heaviest subproblems; these are
// located with a distributed binary search on the weight threshold (~64
// halvings, each one count-reduce), which resolves exactly for the
// pairwise-distinct weights of the continuous model.
type phfTransfer struct {
	Round   int  `json:"round"`
	Slot    int  `json:"slot"` // receiver-local free-list index
	Problem Spec `json:"problem"`
	Proc    int  `json:"proc"` // the virtual processor the part lands on
}

// PHFNode is one participant of the distributed PHF.
type PHFNode struct {
	id, n, k int
	alpha    float64

	coll *netcoll.Member
	ln   net.Listener

	mu       sync.Mutex
	conns    []net.Conn
	encoders map[int]*json.Encoder
	xferAddr []string

	incoming    chan phfTransfer
	xferTimeout time.Duration
	wg          sync.WaitGroup
	closed      bool

	// parts maps virtual processor → problem, for processors this node owns.
	parts map[int]bisect.Problem
}

// NewPHFNode creates a node with its collective member and transfer
// listener on loopback.
func NewPHFNode(id, n, k int, alpha float64) (*PHFNode, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("dist: node id %d outside [0, %d)", id, k)
	}
	if n < k {
		return nil, fmt.Errorf("dist: %d virtual processors cannot cover %d nodes", n, k)
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	coll, err := netcoll.NewMember(id, k, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coll.Close()
		return nil, fmt.Errorf("dist: phf node %d listen: %w", id, err)
	}
	// A dead peer should surface as a typed error within seconds, not
	// stall the whole cluster for half a minute.
	coll.SetTimeout(8 * time.Second)
	return &PHFNode{
		id: id, n: n, k: k, alpha: alpha,
		coll:        coll,
		ln:          ln,
		encoders:    make(map[int]*json.Encoder),
		incoming:    make(chan phfTransfer, 256),
		xferTimeout: 10 * time.Second,
		parts:       make(map[int]bisect.Problem),
	}, nil
}

// SetFault installs a fault plan on the node's collective tree. Call
// before Start. Part transfers themselves stay clean: the collective
// fabric is where PHF's global communication — and thus its exposure to
// faults — lives.
func (nd *PHFNode) SetFault(plan *FaultPlan) {
	if plan != nil {
		nd.coll.SetFault(plan)
		// Lossy loopback links recover fastest with an aggressive
		// retransmit clock; the default 250ms is tuned for real networks.
		nd.coll.SetRetry(40 * time.Millisecond)
	}
}

// SetTransferTimeout adjusts how long a round waits for its expected
// incoming part transfers (default 10s).
func (nd *PHFNode) SetTransferTimeout(d time.Duration) { nd.xferTimeout = d }

// Metrics returns the metric registry of the node's collective member:
// frame, retransmit and replay counters plus the per-collective latency
// histogram — PHF's entire fault exposure lives in the collective
// fabric, so that is where its metrics live too.
func (nd *PHFNode) Metrics() *obs.Registry { return nd.coll.Metrics() }

// CollAddr and XferAddr expose the two listen addresses for cluster wiring.
func (nd *PHFNode) CollAddr() string { return nd.coll.Addr() }

// XferAddr returns the part-transfer address.
func (nd *PHFNode) XferAddr() string { return nd.ln.Addr().String() }

// Start wires the node into the cluster.
func (nd *PHFNode) Start(collAddrs, xferAddrs []string) error {
	if len(xferAddrs) != nd.k {
		return fmt.Errorf("dist: %d transfer addresses for %d nodes", len(xferAddrs), nd.k)
	}
	if err := nd.coll.Start(collAddrs); err != nil {
		return err
	}
	nd.xferAddr = append([]string(nil), xferAddrs...)
	nd.wg.Add(1)
	go nd.acceptLoop()
	return nil
}

func (nd *PHFNode) acceptLoop() {
	defer nd.wg.Done()
	for {
		conn, err := nd.ln.Accept()
		if err != nil {
			return
		}
		nd.mu.Lock()
		nd.conns = append(nd.conns, conn)
		nd.mu.Unlock()
		nd.wg.Add(1)
		go func() {
			defer nd.wg.Done()
			dec := json.NewDecoder(conn)
			for {
				var t phfTransfer
				if err := dec.Decode(&t); err != nil {
					if !errors.Is(err, io.EOF) {
						_ = conn.Close()
					}
					return
				}
				nd.incoming <- t
			}
		}()
	}
}

func (nd *PHFNode) sendTransfer(to int, t phfTransfer) error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	enc, ok := nd.encoders[to]
	if !ok {
		conn, err := net.Dial("tcp", nd.xferAddr[to])
		if err != nil {
			return err
		}
		nd.conns = append(nd.conns, conn)
		enc = json.NewEncoder(conn)
		nd.encoders[to] = enc
	}
	return enc.Encode(t)
}

// segment returns the node's owned virtual-processor range.
func (nd *PHFNode) segment() (lo, hi int) {
	return nd.id * nd.n / nd.k, (nd.id + 1) * nd.n / nd.k
}

// freeProcs returns the owned processors without parts, ascending.
func (nd *PHFNode) freeProcs() []int {
	lo, hi := nd.segment()
	var out []int
	for p := lo; p < hi; p++ {
		if _, busy := nd.parts[p]; !busy {
			out = append(out, p)
		}
	}
	return out
}

// heavyProcs returns owned processors whose part satisfies pred, ascending.
func (nd *PHFNode) heavyProcs(pred func(bisect.Problem) bool) []int {
	var out []int
	for p, q := range nd.parts {
		if pred(q) && q.CanBisect() {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// round executes one synchronous bisection round over the parts selected
// by pred, bounded by budget (< 0 means unbounded). It returns the number
// of bisections performed cluster-wide.
func (nd *PHFNode) round(roundNo int, pred func(bisect.Problem) bool, budget int64) (int64, error) {
	heavy := nd.heavyProcs(pred)
	free := nd.freeProcs()

	vec := make([]int64, 2*nd.k)
	vec[nd.id] = int64(len(heavy))
	vec[nd.k+nd.id] = int64(len(free))
	sums, err := nd.coll.AllReduceSumVecInt64(vec)
	if err != nil {
		return 0, err
	}
	hVec, fVec := sums[:nd.k], sums[nd.k:]
	var hTotal, fTotal int64
	for i := 0; i < nd.k; i++ {
		hTotal += hVec[i]
		fTotal += fVec[i]
	}
	cap64 := hTotal
	if fTotal < cap64 {
		cap64 = fTotal
	}
	if budget >= 0 && budget < cap64 {
		cap64 = budget
	}
	if cap64 == 0 {
		return 0, nil
	}
	var hBase, fBase int64
	for i := 0; i < nd.id; i++ {
		hBase += hVec[i]
		fBase += fVec[i]
	}

	// locate maps a global free rank to (node, local slot).
	locate := func(r int64) (node int, slot int) {
		var run int64
		for i := 0; i < nd.k; i++ {
			if r < run+fVec[i] {
				return i, int(r - run)
			}
			run += fVec[i]
		}
		return -1, -1
	}

	selfPlaced := 0
	for idx, proc := range heavy {
		r := hBase + int64(idx)
		if r >= cap64 {
			break
		}
		q := nd.parts[proc]
		c1, c2 := q.Bisect()
		nd.parts[proc] = c1
		destNode, slot := locate(r)
		if destNode == nd.id {
			nd.parts[free[slot]] = c2
			selfPlaced++
			continue
		}
		spec, err := Encode(c2)
		if err != nil {
			return 0, err
		}
		if err := nd.sendTransfer(destNode, phfTransfer{Round: roundNo, Slot: slot, Problem: spec}); err != nil {
			return 0, err
		}
	}

	// Expected incoming: ranks in [0, cap) that map into this node's free
	// interval, minus the ones placed locally above.
	overlapLo, overlapHi := fBase, fBase+fVec[nd.id]
	if cap64 < overlapHi {
		overlapHi = cap64
	}
	expected := 0
	if overlapHi > overlapLo {
		expected = int(overlapHi - overlapLo)
	}
	expected -= selfPlaced
	deadline := time.NewTimer(nd.xferTimeout)
	defer deadline.Stop()
	for got := 0; got < expected; {
		select {
		case t := <-nd.incoming:
			if t.Round != roundNo {
				return 0, fmt.Errorf("dist: node %d got transfer for round %d during round %d",
					nd.id, t.Round, roundNo)
			}
			p, err := Decode(t.Problem)
			if err != nil {
				return 0, err
			}
			nd.parts[free[t.Slot]] = p
			got++
		case <-deadline.C:
			return 0, fmt.Errorf("dist: node %d round %d stalled at %d of %d transfers: %w",
				nd.id, roundNo, got, expected, ErrIncomplete)
		}
	}
	return cap64, nil
}

// Run executes the distributed PHF. Node 0 must pass the root problem;
// other nodes pass the zero Spec. It returns the node's local parts.
func (nd *PHFNode) Run(root Spec) ([]PartReport, error) {
	// Seed and broadcast the total weight.
	var rootW float64
	if nd.id == 0 {
		p, err := Decode(root)
		if err != nil {
			return nil, err
		}
		nd.parts[0] = p
		rootW = p.Weight()
	}
	total, err := nd.coll.BroadcastFloat64(rootW)
	if err != nil {
		return nil, err
	}
	threshold := bounds.HFThreshold(total, nd.alpha, nd.n)

	roundNo := 0
	// Phase 1: bisect everything above the HF threshold.
	for {
		roundNo++
		did, err := nd.round(roundNo, func(q bisect.Problem) bool {
			return q.Weight() > threshold
		}, -1)
		if err != nil {
			return nil, err
		}
		if did == 0 {
			break
		}
	}

	// Phase 2: synchronised heaviest-band iterations.
	for {
		localParts := int64(len(nd.parts))
		totalParts, err := nd.coll.AllReduceSumInt64(localParts)
		if err != nil {
			return nil, err
		}
		f := int64(nd.n) - totalParts
		if f <= 0 {
			break
		}
		localMax := 0.0
		for _, q := range nd.parts {
			if w := q.Weight(); w > localMax {
				localMax = w
			}
		}
		m, err := nd.coll.AllReduceMaxFloat64(localMax)
		if err != nil {
			return nil, err
		}
		cut := m * (1 - nd.alpha)
		count := func(t float64) (int64, error) {
			var c int64
			for _, q := range nd.parts {
				if q.Weight() >= t && q.CanBisect() {
					c++
				}
			}
			return nd.coll.AllReduceSumInt64(c)
		}
		h, err := count(cut)
		if err != nil {
			return nil, err
		}
		if h == 0 {
			break // nothing divisible at the top band
		}
		sel := cut
		if h > f {
			// Distributed selection of the f heaviest: binary search the
			// weight threshold until the count above it fits the budget.
			// 64 halvings of [cut, m] separate any two distinct float64
			// weights of the continuous model.
			lo, hi := cut, m
			for i := 0; i < 64; i++ {
				mid := (lo + hi) / 2
				c, err := count(mid)
				if err != nil {
					return nil, err
				}
				if c > f {
					lo = mid
				} else {
					hi = mid
				}
			}
			sel = hi
		}
		roundNo++
		did, err := nd.round(roundNo, func(q bisect.Problem) bool {
			return q.Weight() >= sel
		}, f)
		if err != nil {
			return nil, err
		}
		if did == 0 {
			break
		}
	}

	var out []PartReport
	procs := make([]int, 0, len(nd.parts))
	for p := range nd.parts {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		spec, err := Encode(nd.parts[p])
		if err != nil {
			return nil, err
		}
		out = append(out, PartReport{Spec: spec, Lo: p, Hi: p + 1, FromNode: nd.id})
	}
	return out, nil
}

// Close shuts the node down.
func (nd *PHFNode) Close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	_ = nd.ln.Close()
	for _, c := range nd.conns {
		_ = c.Close()
	}
	nd.mu.Unlock()
	nd.coll.Close()
	nd.wg.Wait()
}

// RunPHFCluster is the one-call harness: it brings up k nodes on loopback,
// runs the distributed PHF on the given root and returns the merged parts
// sorted by virtual processor.
func RunPHFCluster(root Spec, n, k int, alpha float64) ([]PartReport, error) {
	return RunPHFClusterWith(root, n, k, alpha, nil)
}

// RunPHFClusterWith is RunPHFCluster with deterministic fault injection
// on the collective fabric.
func RunPHFClusterWith(root Spec, n, k int, alpha float64, plan *FaultPlan) ([]PartReport, error) {
	nodes := make([]*PHFNode, k)
	collAddrs := make([]string, k)
	xferAddrs := make([]string, k)
	for i := 0; i < k; i++ {
		nd, err := NewPHFNode(i, n, k, alpha)
		if err != nil {
			for _, prev := range nodes[:i] {
				prev.Close()
			}
			return nil, err
		}
		nd.SetFault(plan)
		nodes[i] = nd
		collAddrs[i] = nd.CollAddr()
		xferAddrs[i] = nd.XferAddr()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for _, nd := range nodes {
		if err := nd.Start(collAddrs, xferAddrs); err != nil {
			return nil, err
		}
	}
	results := make([][]PartReport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *PHFNode) {
			defer wg.Done()
			seed := Spec{}
			if i == 0 {
				seed = root
			}
			results[i], errs[i] = nd.Run(seed)
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: phf node %d: %w", i, err)
		}
	}
	var merged []PartReport
	for _, r := range results {
		merged = append(merged, r...)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].Lo < merged[b].Lo })
	return merged, nil
}
