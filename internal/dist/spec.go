package dist

import (
	"fmt"

	"bisectlb/internal/bisect"
)

// Spec is the wire representation of a problem. Only the synthetic class
// is transportable: real substrates (FE-trees, quadrature domains) would
// ship their own domain data in a production system; the synthetic class
// exercises the identical control and communication paths.
type Spec struct {
	Kind   string  `json:"kind"`
	Weight float64 `json:"weight"`
	Seed   uint64  `json:"seed"`
	ALo    float64 `json:"alo"`
	AHi    float64 `json:"ahi"`
	Depth  int     `json:"depth"`
}

// specKindSynthetic is the only kind currently registered.
const specKindSynthetic = "synthetic"

// Encode converts a problem into its wire form. Only *bisect.Synthetic is
// supported; other types return an error.
func Encode(p bisect.Problem) (Spec, error) {
	s, ok := p.(*bisect.Synthetic)
	if !ok {
		return Spec{}, fmt.Errorf("dist: cannot encode problem of type %T", p)
	}
	lo, hi := s.Interval()
	return Spec{
		Kind:   specKindSynthetic,
		Weight: s.Weight(),
		Seed:   s.ID(),
		ALo:    lo,
		AHi:    hi,
		Depth:  s.Depth(),
	}, nil
}

// Decode reconstructs the problem from its wire form.
func Decode(s Spec) (bisect.Problem, error) {
	if s.Kind != specKindSynthetic {
		return nil, fmt.Errorf("dist: unknown problem kind %q", s.Kind)
	}
	return bisect.RehydrateSynthetic(s.Weight, s.ALo, s.AHi, s.Seed, s.Depth)
}

// message is the single wire envelope; Type discriminates. Every data
// message carries an ID derived from the subproblem's bisection seed
// (fault.go); receivers acknowledge and dedup on it, which makes delivery
// at-least-once on the wire but exactly-once in effect.
type message struct {
	Type string `json:"type"`
	// ID identifies the message for acks, dedup and fault decisions.
	ID uint64 `json:"id,omitempty"`
	// assign
	Problem Spec `json:"problem,omitempty"`
	Lo      int  `json:"lo,omitempty"`
	Hi      int  `json:"hi,omitempty"`
	// Lease is the lease the assignment (re-)creates — equal to ID for
	// assigns; for parts and claims it is the covering lease being
	// discharged or split.
	Lease uint64 `json:"lease,omitempty"`
	// Parent is the lease the new lease was split from (claims/assigns).
	Parent uint64 `json:"parent,omitempty"`
	// Reissue marks a coordinator re-issue of an expired or orphaned
	// lease; Gen is its re-issue generation. A node re-executes a lease
	// it has seen before whenever the generation advances past the last
	// one it executed, so the coordinator can always force another
	// (deterministic, hence safe) re-execution of an undischarged lease.
	Reissue bool   `json:"reissue,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	// part (node → coordinator)
	Part     Spec `json:"part,omitempty"`
	PartLo   int  `json:"part_lo,omitempty"`
	PartHi   int  `json:"part_hi,omitempty"`
	FromNode int  `json:"from_node,omitempty"`
	// owner updates (coordinator → nodes): Dead's interval is adopted by
	// Adopter, so hand-offs for Dead's processors reroute.
	Dead    int `json:"dead,omitempty"`
	Adopter int `json:"adopter,omitempty"`
}

const (
	msgAssign = "assign"
	msgPart   = "part"
	msgAck    = "ack"
	msgClaim  = "claim"
	msgBeat   = "beat"
	msgOwner  = "owner"
)
