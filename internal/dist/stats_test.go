package dist

import (
	"errors"
	"testing"
	"time"

	"bisectlb/internal/bisect"
)

// TestRunStatsLeaseReissueMatchesCrashes pins the protocol account to the
// injected fault plan: with n = k = 2 the hand-off topology is a single
// edge, so node 1 holds exactly one lease (the claimed child) when its
// crash trigger fires, and the death must produce exactly one
// generation-1 re-issue — one per injected crash, deterministically.
func TestRunStatsLeaseReissueMatchesCrashes(t *testing.T) {
	const n, k, seed = 2, 2, 42
	// Node 1's outbound data messages are its claim and its part; crashing
	// on the 2nd loses the part, so its lease stays undischarged.
	plan := &FaultPlan{Seed: 5, Crash: map[int]int{1: 2}}
	// LeaseExpiry far beyond the run length: the only re-issue path left
	// is death-triggered adoption, making the count exact.
	tm := Timing{
		Heartbeat:   15 * time.Millisecond,
		DeadAfter:   300 * time.Millisecond,
		LeaseExpiry: 30 * time.Second,
		RetryBase:   40 * time.Millisecond,
		RetryMax:    250 * time.Millisecond,
	}
	cl, err := StartClusterWith(n, k, plan, tm)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.5, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Coord.Run(root, n, cl.Addrs(), 25*time.Second)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	st := res.Stats
	if st.LeaseReissues != len(plan.Crash) {
		t.Fatalf("LeaseReissues = %d, want %d (one per injected crash)", st.LeaseReissues, len(plan.Crash))
	}
	if st.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", st.Deaths)
	}
	if st.ReissuesByGen[1] != 1 {
		t.Fatalf("ReissuesByGen = %v, want {1:1}", st.ReissuesByGen)
	}
	if !st.Degraded || st.Incomplete {
		t.Fatalf("outcome flags wrong: %+v", st)
	}
	if st.HeartbeatMisses == 0 {
		t.Fatal("a detected death implies missed heartbeats")
	}
	if st.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	// The re-issued lease was re-executed by the survivor: the partition
	// still matches the in-process run exactly.
	requireLocalBAMatch(t, res, n, seed)
	// The counters mirror into the coordinator's registry.
	if v := cl.Coord.Metrics().Counter(mLeaseReissues).Value(); v != int64(st.LeaseReissues) {
		t.Fatalf("registry lease_reissues = %d, stats say %d", v, st.LeaseReissues)
	}
	if v := cl.Coord.Metrics().Counter(mDeaths).Value(); v != 1 {
		t.Fatalf("registry deaths = %d, want 1", v)
	}
}

// TestRunStatsCleanRunHasZeroFaultCounters checks the other direction:
// with no fault plan, the injected-fault columns of RunStats must all be
// zero — the observability layer never invents protocol activity.
func TestRunStatsCleanRunHasZeroFaultCounters(t *testing.T) {
	const n, k, seed = 32, 2, 7
	cl, err := StartCluster(n, k)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	root, err := Encode(bisect.MustSynthetic(1, 0.1, 0.5, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Coord.Run(root, n, cl.Addrs(), 25*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Faults.Drops != 0 || st.Faults.Dups != 0 || st.Faults.Delays != 0 {
		t.Fatalf("fault-free run reports injected faults: %+v", st.Faults)
	}
	if st.Deaths != 0 || st.LeaseReissues != 0 || len(st.ReissuesByGen) != 0 {
		t.Fatalf("fault-free run reports recovery work: %+v", st)
	}
	if st.Degraded || st.Incomplete {
		t.Fatalf("fault-free run reports bad outcome: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
}
