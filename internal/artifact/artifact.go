// Package artifact serialises run results, bisection trees and experiment
// tables to JSON so they can be archived next to EXPERIMENTS.md and
// consumed by external analysis tooling. Encoding is lossy in one
// deliberate way: problems are reduced to (id, weight) pairs — the
// substrate objects themselves are not round-tripped.
package artifact

import (
	"encoding/json"
	"fmt"
	"io"

	"bisectlb/internal/bistree"
	"bisectlb/internal/core"
	"bisectlb/internal/experiments"
)

// PartJSON is the serialised form of one partition element.
type PartJSON struct {
	ID     uint64  `json:"id"`
	Weight float64 `json:"weight"`
	Procs  int     `json:"procs"`
	Depth  int     `json:"depth"`
}

// ResultJSON is the serialised form of a core.Result.
type ResultJSON struct {
	Algorithm  string     `json:"algorithm"`
	N          int        `json:"n"`
	Total      float64    `json:"total"`
	Max        float64    `json:"max"`
	Ratio      float64    `json:"ratio"`
	Bisections int        `json:"bisections"`
	MaxDepth   int        `json:"max_depth"`
	Parts      []PartJSON `json:"parts"`
	Tree       *NodeJSON  `json:"tree,omitempty"`
}

// NodeJSON is the serialised form of a bisection-tree node.
type NodeJSON struct {
	ID       uint64      `json:"id"`
	Weight   float64     `json:"weight"`
	Procs    int         `json:"procs,omitempty"`
	Children []*NodeJSON `json:"children,omitempty"`
}

// FromResult converts a result (and its recorded tree, if any).
func FromResult(r *core.Result) (*ResultJSON, error) {
	if r == nil {
		return nil, fmt.Errorf("artifact: nil result")
	}
	out := &ResultJSON{
		Algorithm:  r.Algorithm,
		N:          r.N,
		Total:      r.Total,
		Max:        r.Max,
		Ratio:      r.Ratio,
		Bisections: r.Bisections,
		MaxDepth:   r.MaxDepth,
	}
	for _, pt := range r.Parts {
		out.Parts = append(out.Parts, PartJSON{
			ID:     pt.Problem.ID(),
			Weight: pt.Problem.Weight(),
			Procs:  pt.Procs,
			Depth:  pt.Depth,
		})
	}
	if r.Tree != nil {
		out.Tree = fromNode(r.Tree.Root)
	}
	return out, nil
}

func fromNode(n *bistree.Node) *NodeJSON {
	if n == nil {
		return nil
	}
	out := &NodeJSON{ID: n.ID, Weight: n.Weight, Procs: n.Procs}
	if !n.IsLeaf() {
		out.Children = []*NodeJSON{fromNode(n.Children[0]), fromNode(n.Children[1])}
	}
	return out
}

// WriteResult encodes the result as indented JSON.
func WriteResult(w io.Writer, r *core.Result) error {
	obj, err := FromResult(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// Leaves returns the leaf entries of a serialised tree in preorder.
func (n *NodeJSON) Leaves() []*NodeJSON {
	if n == nil {
		return nil
	}
	if len(n.Children) == 0 {
		return []*NodeJSON{n}
	}
	var out []*NodeJSON
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Validate checks structural sanity of a serialised tree: exactly zero or
// two children per node and children weights summing to the parent within
// relative tolerance tol.
func (n *NodeJSON) Validate(tol float64) error {
	if n == nil {
		return nil
	}
	switch len(n.Children) {
	case 0:
		return nil
	case 2:
		sum := n.Children[0].Weight + n.Children[1].Weight
		if d := sum - n.Weight; d > tol*n.Weight || -d > tol*n.Weight {
			return fmt.Errorf("artifact: node %d weight %g != children sum %g", n.ID, n.Weight, sum)
		}
		if err := n.Children[0].Validate(tol); err != nil {
			return err
		}
		return n.Children[1].Validate(tol)
	default:
		return fmt.Errorf("artifact: node %d has %d children", n.ID, len(n.Children))
	}
}

// TableJSON wraps the Table 1 / Figure 5 rows with their configuration for
// archival.
type TableJSON struct {
	Lo          float64                 `json:"lo"`
	Hi          float64                 `json:"hi"`
	Kappa       float64                 `json:"kappa"`
	Trials      int                     `json:"trials"`
	Seed        uint64                  `json:"seed"`
	ScaleTrials bool                    `json:"scale_trials"`
	Rows        []experiments.TripleRow `json:"rows"`
}

// WriteTable encodes an experiment table with its configuration.
func WriteTable(w io.Writer, cfg experiments.TripleConfig, rows []experiments.TripleRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TableJSON{
		Lo: cfg.Lo, Hi: cfg.Hi, Kappa: cfg.Kappa,
		Trials: cfg.Trials, Seed: cfg.Seed, ScaleTrials: cfg.ScaleTrials,
		Rows: rows,
	})
}

// ReadTable decodes a table previously written with WriteTable.
func ReadTable(r io.Reader) (*TableJSON, error) {
	var out TableJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("artifact: decoding table: %w", err)
	}
	return &out, nil
}
