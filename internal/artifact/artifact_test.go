package artifact

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/experiments"
)

func TestFromResultWithTree(t *testing.T) {
	res, err := core.HF(bisect.MustSynthetic(1, 0.1, 0.5, 3), 16, core.Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Algorithm != "HF" || obj.N != 16 || len(obj.Parts) != 16 {
		t.Fatalf("header wrong: %+v", obj)
	}
	if obj.Tree == nil {
		t.Fatal("tree missing")
	}
	if err := obj.Tree.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	if got := len(obj.Tree.Leaves()); got != 16 {
		t.Fatalf("tree has %d leaves", got)
	}
	var sum float64
	for _, p := range obj.Parts {
		sum += p.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("parts sum %v", sum)
	}
}

func TestFromResultNil(t *testing.T) {
	if _, err := FromResult(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestWriteResultRoundTrip(t *testing.T) {
	res, err := core.BA(bisect.MustSynthetic(1, 0.1, 0.5, 5), 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Ratio != res.Ratio || len(back.Parts) != len(res.Parts) {
		t.Fatal("round trip lost data")
	}
	if !strings.Contains(buf.String(), "\"algorithm\": \"BA\"") {
		t.Fatalf("unexpected encoding:\n%s", buf.String())
	}
}

func TestNodeValidateCatchesCorruption(t *testing.T) {
	n := &NodeJSON{
		ID: 1, Weight: 10,
		Children: []*NodeJSON{{ID: 2, Weight: 4}, {ID: 3, Weight: 4}}, // sums to 8
	}
	if err := n.Validate(1e-9); err == nil {
		t.Fatal("weight mismatch not detected")
	}
	bad := &NodeJSON{ID: 1, Weight: 1, Children: []*NodeJSON{{ID: 2, Weight: 1}}}
	if err := bad.Validate(1e-9); err == nil {
		t.Fatal("single child not detected")
	}
	if (&NodeJSON{ID: 1, Weight: 1}).Validate(0) != nil {
		t.Fatal("leaf rejected")
	}
}

func TestTableRoundTrip(t *testing.T) {
	cfg := experiments.TripleConfig{
		Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 10, Seed: 2, Ns: []int{32, 64},
	}
	rows, err := experiments.RunTriple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, cfg, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Lo != 0.1 || back.Trials != 10 || len(back.Rows) != 2 {
		t.Fatalf("round trip lost config: %+v", back)
	}
	if back.Rows[0].HF.Stats.Mean != rows[0].HF.Stats.Mean {
		t.Fatal("round trip lost row data")
	}
}

func TestReadTableErrors(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("{nonsense")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
