package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if got, want := SplitMix64(&a), SplitMix64(&b); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical splitmix64
	// implementation (Vigna).
	s := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Fatalf("output %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMixDistinguishesBranches(t *testing.T) {
	seen := map[uint64]bool{}
	for b := uint64(0); b < 1000; b++ {
		v := Mix(12345, b)
		if seen[v] {
			t.Fatalf("collision at branch %d", b)
		}
		seen[v] = true
	}
}

func TestSourceDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSourceReseed(t *testing.T) {
	s := New(99)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(99)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("reseed mismatch at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestInRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.InRange(0.1, 0.5)
		if v < 0.1 || v >= 0.5 {
			t.Fatalf("InRange out of bounds: %v", v)
		}
	}
	if got := s.InRange(2, 2); got != 2 {
		t.Fatalf("degenerate range: got %v", got)
	}
}

func TestInRangePanics(t *testing.T) {
	s := New(4)
	for _, c := range [][2]float64{{1, 0}, {math.NaN(), 1}, {0, math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("InRange(%v, %v) did not panic", c[0], c[1])
				}
			}()
			s.InRange(c[0], c[1])
		}()
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d count %d implausibly non-uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(6).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	c1 := New(parent.Split())
	c2 := New(parent.Split())
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical outputs between split streams", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(12)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit decomposition done independently.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		lo2 := a * b
		carry := ((a0*b0)>>32 + (a1*b0)&0xffffffff + (a0*b1)&0xffffffff) >> 32
		hi2 := a1*b1 + (a1*b0)>>32 + (a0*b1)>>32 + carry
		return lo == lo2 && hi == hi2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
