// Package xrand provides small, allocation-free, deterministic random number
// generators with cheap stream splitting.
//
// The load-balancing algorithms in this repository must be able to bisect the
// *same* logical problem node in different algorithms (HF, PHF, BA, BA-HF)
// and obtain the *same* two children; otherwise the PHF ≡ HF partition
// identity (paper, Theorem 3) could not be checked experimentally. To make
// that possible every problem node carries its own RNG seed, and bisecting a
// node derives the child seeds from the node seed alone. Package xrand
// supplies the splitmix64 mixing function used for that derivation and a
// xoshiro256**-based Source for bulk random draws.
package xrand

import "math"

// SplitMix64 advances the splitmix64 state and returns the next output.
// It is the canonical generator from Steele, Lea & Flood (2014), used here
// both as a standalone generator and as the seeding function for Source.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a well-scrambled function of the two inputs. It is used to
// derive child stream seeds from a parent seed and a branch index so that
// sibling streams are statistically independent.
func Mix(a, b uint64) uint64 {
	s := a ^ (b * 0x9e3779b97f4a7c15)
	return SplitMix64(&s)
}

// Source is a xoshiro256** pseudo random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream identified by seed.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with an all-zero state; splitmix64 cannot
	// produce four consecutive zeros, so no further check is necessary.
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split returns a seed for an independent child stream. Successive calls
// return distinct seeds. The parent stream advances by one draw.
func (s *Source) Split() uint64 {
	return Mix(s.Uint64(), 0xd1b54a32d192ed03)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// InRange returns a uniform float64 in [lo, hi). It panics if hi < lo or if
// either bound is not finite, because a silent fallback would corrupt the
// stochastic model underlying every experiment.
func (s *Source) InRange(lo, hi float64) float64 {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic("xrand: InRange bounds must be finite")
	}
	if hi < lo {
		panic("xrand: InRange bounds inverted")
	}
	if hi == lo {
		return lo
	}
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. It is used by workload generators that need mild
// weight noise; the load-balancing algorithms themselves never draw normals.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
