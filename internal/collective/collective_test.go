package collective

import (
	"sync"
	"testing"

	"bisectlb/internal/bounds"
)

// spawn runs body on every participant and waits for completion.
func spawn(g *Group, body func(id int)) {
	var wg sync.WaitGroup
	for id := 0; id < g.Size(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(id)
	}
	wg.Wait()
}

func TestBarrierRounds(t *testing.T) {
	g := NewGroup(8)
	const rounds = 50
	counter := make([]int, rounds)
	spawn(g, func(id int) {
		for r := 0; r < rounds; r++ {
			g.Barrier()
			if id == 0 {
				counter[r]++
			}
			g.Barrier()
			if counter[r] != 1 {
				t.Errorf("round %d: worker %d saw counter=%d", r, id, counter[r])
			}
		}
	})
}

func TestBarrierSingleParticipant(t *testing.T) {
	g := NewGroup(1)
	g.Barrier() // must not block
	if g.MaxFloat64(0, 42) != 42 {
		t.Fatal("single-participant reduce broken")
	}
}

func TestMaxFloat64(t *testing.T) {
	g := NewGroup(6)
	out := make([]float64, 6)
	spawn(g, func(id int) {
		out[id] = g.MaxFloat64(id, float64(id*id))
	})
	for id, v := range out {
		if v != 25 {
			t.Fatalf("participant %d got max %v", id, v)
		}
	}
}

func TestSumInt64(t *testing.T) {
	g := NewGroup(5)
	out := make([]int64, 5)
	spawn(g, func(id int) {
		out[id] = g.SumInt64(id, int64(id+1))
	})
	for id, v := range out {
		if v != 15 {
			t.Fatalf("participant %d got sum %v", id, v)
		}
	}
}

func TestPrefixSumInt64(t *testing.T) {
	g := NewGroup(4)
	before := make([]int64, 4)
	totals := make([]int64, 4)
	spawn(g, func(id int) {
		b, tot := g.PrefixSumInt64(id, int64(10*(id+1)))
		before[id] = b
		totals[id] = tot
	})
	wantBefore := []int64{0, 10, 30, 60}
	for id := range before {
		if before[id] != wantBefore[id] {
			t.Fatalf("participant %d: before=%d want %d", id, before[id], wantBefore[id])
		}
		if totals[id] != 100 {
			t.Fatalf("participant %d: total=%d", id, totals[id])
		}
	}
}

func TestBroadcast(t *testing.T) {
	g := NewGroup(7)
	outF := make([]float64, 7)
	outI := make([]int64, 7)
	spawn(g, func(id int) {
		v := 0.0
		if id == 3 {
			v = 2.718
		}
		outF[id] = g.BroadcastFloat64(id, 3, v)
		iv := int64(0)
		if id == 3 {
			iv = 99
		}
		outI[id] = g.BroadcastInt64(id, 3, iv)
	})
	for id := range outF {
		if outF[id] != 2.718 || outI[id] != 99 {
			t.Fatalf("participant %d got %v/%v", id, outF[id], outI[id])
		}
	}
}

func TestRepeatedCollectivesInterleave(t *testing.T) {
	g := NewGroup(4)
	spawn(g, func(id int) {
		for r := 0; r < 100; r++ {
			m := g.MaxFloat64(id, float64(id+r))
			if m != float64(3+r) {
				t.Errorf("round %d: max=%v", r, m)
				return
			}
			b, tot := g.PrefixSumInt64(id, 1)
			if b != int64(id) || tot != 4 {
				t.Errorf("round %d: prefix %d/%d", r, b, tot)
				return
			}
		}
	})
}

func TestModelRoundAccounting(t *testing.T) {
	g := NewGroup(8)
	spawn(g, func(id int) {
		g.Barrier()
		g.MaxFloat64(id, 1)
	})
	// Barrier = 1 phase, MaxFloat64 = 2 phases (up- and down-sweep), each
	// phase costing ⌈log2 8⌉ = 3 model rounds.
	want := int64(3) * bounds.CollectiveCost(8)
	if got := g.ModelRounds(); got != want {
		t.Fatalf("model rounds = %d, want %d", got, want)
	}
	if got := g.Barriers(); got != 3 {
		t.Fatalf("barrier phases = %d, want 3", got)
	}
}

func TestNewGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGroup(0) did not panic")
		}
	}()
	NewGroup(0)
}
