// Package collective provides the global communication primitives the
// paper's parallel machine model assumes — barrier, broadcast, max-reduce
// and prefix sums — implemented over a fixed group of worker goroutines.
//
// Every barrier phase charges ⌈log2 n⌉ "model rounds" to the group's round
// counter (reductions and broadcasts consist of two phases), so parallel
// executions built on the package can report running time in the same units
// as the paper's analysis (which assumes such operations cost O(log N) on
// realistic machines).
package collective

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bisectlb/internal/bounds"
)

// Group coordinates n participants identified by ids 0 … n−1. All methods
// must be called by every participant with its own id for the operation to
// complete (they are collective calls, like MPI's).
type Group struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond
	// Sense-reversing barrier state.
	arrived int
	sense   bool

	// Scratch areas for reductions; slot i belongs to participant i.
	f64  []float64
	i64  []int64
	resF float64
	resI int64
	pre  []int64

	modelRounds atomic.Int64
	barriers    atomic.Int64
}

// NewGroup creates a group of n participants. It panics for n < 1.
func NewGroup(n int) *Group {
	if n < 1 {
		panic(fmt.Sprintf("collective: group size %d must be ≥ 1", n))
	}
	g := &Group{
		n:   n,
		f64: make([]float64, n),
		i64: make([]int64, n),
		pre: make([]int64, n),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Size returns the number of participants.
func (g *Group) Size() int { return g.n }

// ModelRounds returns the accumulated model cost: ⌈log2 n⌉ per barrier
// phase. A plain Barrier is one phase; reductions, broadcasts and prefix
// sums are two phases (an up-sweep collecting contributions and a
// down-sweep distributing the result), matching how tree-structured
// collectives behave on real machines.
func (g *Group) ModelRounds() int64 { return g.modelRounds.Load() }

// Barriers returns the number of barrier phases completed.
func (g *Group) Barriers() int64 { return g.barriers.Load() }

// Barrier blocks until all participants have called it.
func (g *Group) Barrier() { g.barrier() }

// barrier is a sense-reversing barrier; the releasing participant charges
// one phase of model cost.
func (g *Group) barrier() {
	if g.n == 1 {
		g.barriers.Add(1)
		return
	}
	g.mu.Lock()
	mySense := !g.sense
	g.arrived++
	if g.arrived == g.n {
		g.arrived = 0
		g.sense = mySense
		g.barriers.Add(1)
		g.modelRounds.Add(bounds.CollectiveCost(g.n))
		g.cond.Broadcast()
	} else {
		for g.sense != mySense {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// MaxFloat64 performs an all-reduce maximum: every participant contributes
// v and receives the global maximum.
func (g *Group) MaxFloat64(id int, v float64) float64 {
	g.f64[id] = v
	g.barrier()
	if id == 0 {
		m := g.f64[0]
		for _, x := range g.f64[1:] {
			if x > m {
				m = x
			}
		}
		g.resF = m
	}
	g.barrier()
	return g.resF
}

// SumInt64 performs an all-reduce sum of int64 contributions.
func (g *Group) SumInt64(id int, v int64) int64 {
	g.i64[id] = v
	g.barrier()
	if id == 0 {
		var s int64
		for _, x := range g.i64 {
			s += x
		}
		g.resI = s
	}
	g.barrier()
	return g.resI
}

// PrefixSumInt64 performs an exclusive prefix sum: the return values are the
// sum of the contributions of participants with smaller ids, and the total.
// The paper uses prefix computations to number free processors and heavy
// subproblems in PHF's second phase.
func (g *Group) PrefixSumInt64(id int, v int64) (before, total int64) {
	g.i64[id] = v
	g.barrier()
	if id == 0 {
		var run int64
		for i, x := range g.i64 {
			g.pre[i] = run
			run += x
		}
		g.resI = run
	}
	g.barrier()
	return g.pre[id], g.resI
}

// BroadcastFloat64 distributes root's value to all participants.
func (g *Group) BroadcastFloat64(id, root int, v float64) float64 {
	if id == root {
		g.resF = v
	}
	g.barrier()
	out := g.resF
	g.barrier()
	return out
}

// BroadcastInt64 distributes root's value to all participants.
func (g *Group) BroadcastInt64(id, root int, v int64) int64 {
	if id == root {
		g.resI = v
	}
	g.barrier()
	out := g.resI
	g.barrier()
	return out
}
