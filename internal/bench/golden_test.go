package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// TestGoldenJSONSchema strict-decodes the tracked BENCH_core.json and
// checks it is structurally what the current code would emit: the right
// schema id, the full grid exactly once, and sane per-cell values. It
// deliberately never compares timings — those drift with hardware; the
// test fails only when the schema or grid drifts without the tracked
// file being regenerated (`make bench-core`).
func TestGoldenJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_core.json")
	if err != nil {
		t.Fatalf("tracked benchmark file missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("BENCH_core.json no longer matches the Suite schema: %v", err)
	}
	if s.Schema != SchemaID {
		t.Fatalf("tracked schema %q, code expects %q — regenerate with `make bench-core`", s.Schema, SchemaID)
	}
	want := len(Algorithms)*len(Alphas)*len(Ns) + len(ScaleCells())
	if len(s.Cells) != want {
		t.Fatalf("tracked file has %d cells, grid defines %d", len(s.Cells), want)
	}
	if s.MaxProcs < 1 {
		t.Fatalf("tracked maxprocs %d — regenerate with `make bench-core`", s.MaxProcs)
	}
	seen := map[string]bool{}
	for _, m := range s.Cells {
		key := fmt.Sprintf("%s|%s|a%g|n%d", m.Algorithm, m.Mode, m.Alpha, m.N)
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if m.Iterations < 1 || m.NsPerOp <= 0 {
			t.Fatalf("%s: degenerate measurement %+v", key, m)
		}
		if m.Parts < 1 || m.Parts > m.N {
			t.Fatalf("%s: %d parts for N=%d", key, m.Parts, m.N)
		}
		if m.Ratio < 1 {
			t.Fatalf("%s: ratio %v < 1", key, m.Ratio)
		}
	}
	for _, alg := range Algorithms {
		for _, alpha := range Alphas {
			for _, n := range Ns {
				key := fmt.Sprintf("%s|%s|a%g|n%d", alg, ModeSeq, alpha, n)
				if !seen[key] {
					t.Fatalf("grid cell %s missing from tracked file", key)
				}
			}
		}
	}
	for _, sc := range ScaleCells() {
		key := fmt.Sprintf("%s|%s|a%g|n%d", sc.Algorithm, sc.Mode, ScaleAlpha, sc.N)
		if !seen[key] {
			t.Fatalf("scale cell %s missing from tracked file", key)
		}
	}

	// The {real} section (X15, `make sweep-real`) must be present and
	// internally consistent: every row a valid measurement, every bound
	// actually honored, and at least three instances per real family.
	if len(s.Real) == 0 {
		t.Fatalf("tracked file has no {real} section — regenerate with `make sweep-real`")
	}
	instances := map[string]map[string]bool{}
	seenReal := map[string]bool{}
	for _, r := range s.Real {
		key := fmt.Sprintf("%s|%s|%s|n%d", r.Family, r.Instance, r.Algorithm, r.N)
		if seenReal[key] {
			t.Fatalf("duplicate real row %s", key)
		}
		seenReal[key] = true
		if r.Family != "graph" && r.Family != "spatial" {
			t.Fatalf("%s: unknown real family %q", key, r.Family)
		}
		if r.Algorithm != "HF" && r.Algorithm != "BA" {
			t.Fatalf("%s: unexpected algorithm %q", key, r.Algorithm)
		}
		if r.Parts < 1 || r.Parts > r.N {
			t.Fatalf("%s: %d parts for N=%d", key, r.Parts, r.N)
		}
		if r.Ratio < 1 {
			t.Fatalf("%s: ratio %v < 1", key, r.Ratio)
		}
		if r.Parts > 1 && !(r.AlphaMin > 0 && r.AlphaMin <= 0.5 && r.AlphaMean >= r.AlphaMin) {
			t.Fatalf("%s: implausible realized α̂ %v/%v", key, r.AlphaMin, r.AlphaMean)
		}
		if r.Bound > 0 && r.Ratio > r.Bound*(1+1e-9) {
			t.Fatalf("%s: ratio %v exceeds recorded measured bound %v", key, r.Ratio, r.Bound)
		}
		if instances[r.Family] == nil {
			instances[r.Family] = map[string]bool{}
		}
		instances[r.Family][r.Instance] = true
	}
	for _, fam := range []string{"graph", "spatial"} {
		if len(instances[fam]) < 3 {
			t.Fatalf("{real} section covers %d %s instances, want ≥3", len(instances[fam]), fam)
		}
	}
}

// TestGoldenTextHeader checks the tracked results/bench_core.txt against
// the CURRENT renderer's header and shape. A renderer change that is not
// accompanied by a regenerated results file fails here; timing rows are
// only counted, never value-compared.
func TestGoldenTextHeader(t *testing.T) {
	raw, err := os.ReadFile("../../results/bench_core.txt")
	if err != nil {
		t.Fatalf("tracked results file missing: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("tracked file implausibly short: %d lines", len(lines))
	}

	// Render an empty suite to learn the header the current code emits.
	var buf bytes.Buffer
	ref := Suite{Schema: SchemaID, GoVersion: "goX", GOOS: "os", GOARCH: "arch",
		BenchtimeNs: time.Millisecond.Nanoseconds()}
	if err := ref.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	refLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantColumns := refLines[len(refLines)-1] // column header is the last line of an empty render

	if !strings.HasPrefix(lines[0], "core planner benchmarks (") {
		t.Fatalf("title line drifted: %q", lines[0])
	}
	if lines[2] != wantColumns {
		t.Fatalf("column header drifted from the renderer:\ntracked:  %q\nrenderer: %q\nregenerate with `make bench-core`", lines[2], wantColumns)
	}

	rows := 0
	for _, ln := range lines[3:] {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) != 9 {
			t.Fatalf("data row has %d columns, want 9: %q", len(fields), ln)
		}
		rows++
	}
	if want := len(Algorithms)*len(Alphas)*len(Ns) + len(ScaleCells()); rows != want {
		t.Fatalf("tracked table has %d data rows, grid defines %d", rows, want)
	}
}

// TestGoldenParallelSweepHeader checks the tracked results/parallel.txt
// against the current sweep renderer's shape; timings are never
// value-compared.
func TestGoldenParallelSweepHeader(t *testing.T) {
	raw, err := os.ReadFile("../../results/parallel.txt")
	if err != nil {
		t.Fatalf("tracked sweep file missing: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("tracked sweep file implausibly short: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "parallel planner speedup sweep (") {
		t.Fatalf("title line drifted: %q", lines[0])
	}
	var buf bytes.Buffer
	ref := Sweep{GoVersion: "goX", GOOS: "os", GOARCH: "arch", Algorithm: "BA-HF",
		Alpha: SweepAlpha, Kappa: 1, N: SweepN, BenchtimeNs: time.Millisecond.Nanoseconds()}
	if err := ref.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	refLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantColumns := refLines[len(refLines)-1]
	if lines[4] != wantColumns {
		t.Fatalf("column header drifted from the renderer:\ntracked:  %q\nrenderer: %q\nregenerate with `make sweep-parallel`", lines[4], wantColumns)
	}
	rows := 0
	for _, ln := range lines[5:] {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		if fields := strings.Fields(ln); len(fields) != 4 {
			t.Fatalf("data row has %d columns, want 4: %q", len(fields), ln)
		}
		rows++
	}
	if rows != len(SweepWorkers) {
		t.Fatalf("tracked sweep has %d data rows, SweepWorkers defines %d", rows, len(SweepWorkers))
	}
}
