package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// smokeSuite runs the harness once with a minimal time budget (one
// iteration per cell) and shares the result: the N=2^20 scale cells
// make even a single-iteration grid pass cost seconds, so the tests
// that only inspect the suite's shape reuse one run.
var smokeSuite = struct {
	once sync.Once
	s    *Suite
	err  error
}{}

func runSmokeSuite(t *testing.T) *Suite {
	t.Helper()
	smokeSuite.once.Do(func() {
		smokeSuite.s, smokeSuite.err = RunCore(time.Nanosecond)
	})
	if smokeSuite.err != nil {
		t.Fatal(smokeSuite.err)
	}
	return smokeSuite.s
}

// TestRunCoreCoversGrid runs the harness with a minimal time budget (one
// iteration per cell) and checks every grid cell is present exactly once
// with sane values — this is what makes the benchmark suite double as a
// test in CI.
func TestRunCoreCoversGrid(t *testing.T) {
	s := runSmokeSuite(t)
	want := len(Algorithms)*len(Alphas)*len(Ns) + len(ScaleCells())
	if len(s.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(s.Cells), want)
	}
	seen := map[string]bool{}
	for _, m := range s.Cells {
		idKey := fmt.Sprintf("%s|%s|a%g|n%d", m.Algorithm, m.Mode, m.Alpha, m.N)
		if seen[idKey] {
			t.Fatalf("duplicate cell %s", idKey)
		}
		seen[idKey] = true
		if m.Iterations < 1 {
			t.Fatalf("%s: zero iterations", idKey)
		}
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", idKey, m.NsPerOp)
		}
		if m.Parts < 1 || m.Parts > m.N {
			t.Fatalf("%s: %d parts for N=%d", idKey, m.Parts, m.N)
		}
		if m.Ratio < 1 {
			t.Fatalf("%s: ratio %v < 1", idKey, m.Ratio)
		}
		if (m.Mode == ModePar) != (m.Workers > 0) {
			t.Fatalf("%s: workers %d inconsistent with mode %q", idKey, m.Workers, m.Mode)
		}
	}
	// Every seq/par and heap/bucket pair must describe the identical
	// plan: same parts count, same ratio — the modes trade constants,
	// never output.
	for _, sc := range ScaleCells() {
		if sc.Mode == ModeSeq {
			continue
		}
		var seq, alt *Measurement
		for i := range s.Cells {
			m := &s.Cells[i]
			if m.Algorithm != sc.Algorithm || m.N != sc.N || m.Alpha != ScaleAlpha {
				continue
			}
			switch m.Mode {
			case ModeSeq:
				seq = m
			case sc.Mode:
				alt = m
			}
		}
		if seq == nil || alt == nil {
			t.Fatalf("scale pair %s/%s N=%d incomplete", sc.Algorithm, sc.Mode, sc.N)
		}
		if seq.Parts != alt.Parts || seq.Ratio != alt.Ratio {
			t.Fatalf("%s N=%d: %s plan (%d parts, ratio %v) diverged from seq (%d parts, ratio %v)",
				sc.Algorithm, sc.N, sc.Mode, alt.Parts, alt.Ratio, seq.Parts, seq.Ratio)
		}
	}
	if s.Schema != SchemaID {
		t.Fatalf("schema %q", s.Schema)
	}
	if s.MaxProcs < 1 {
		t.Fatalf("maxprocs %d", s.MaxProcs)
	}
}

// TestRunParallelSweep smoke-runs the X12 speedup study at a tiny
// budget and small worker set, checking shape and baseline wiring.
func TestRunParallelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep plans N=2^20 instances")
	}
	s, err := RunParallelSweep(time.Nanosecond, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(s.Cells))
	}
	if s.SeqNsPerOp <= 0 {
		t.Fatalf("sequential baseline %v", s.SeqNsPerOp)
	}
	if s.Cells[0].Workers != 1 || s.Cells[0].Speedup != 1 {
		t.Fatalf("workers=1 cell %+v must be the speedup base", s.Cells[0])
	}
	if s.Cells[1].Speedup <= 0 {
		t.Fatalf("speedup %v", s.Cells[1].Speedup)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers") {
		t.Fatalf("sweep table missing header:\n%s", buf.String())
	}
	if _, err := RunParallelSweep(time.Nanosecond, []int{0}); err == nil {
		t.Fatal("worker count 0 accepted")
	}
}

// TestSuiteRoundTrips pins the JSON schema: encode → decode preserves
// every cell, and the text table mentions every algorithm.
func TestSuiteRoundTrips(t *testing.T) {
	s := runSmokeSuite(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Suite
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(s.Cells) || back.Schema != s.Schema {
		t.Fatalf("round trip lost data: %d cells, schema %q", len(back.Cells), back.Schema)
	}
	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if !strings.Contains(buf.String(), alg) {
			t.Fatalf("text table missing %s:\n%s", alg, buf.String())
		}
	}
}

func TestRunCellRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := runCell("nope", ModeSeq, 0.1, 8, time.Nanosecond); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := runCell("HF", "warp", 0.1, 8, time.Nanosecond); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := runCell("HF", ModePar, 0.1, 8, time.Nanosecond); err == nil {
		t.Fatal("HF accepted in par mode (no bit-identical parallel HF exists)")
	}
}

// failAfter is an io.Writer that succeeds for a fixed number of writes
// and then errors, letting the tests walk a failure across every write
// boundary of the renderers.
type failAfter struct{ writes int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.writes <= 0 {
		return 0, errors.New("sink full")
	}
	w.writes--
	return len(p), nil
}

// TestRenderersPropagateWriterErrors moves the failure point through
// every write the text/JSON renderers perform: each position must
// surface the error, and once past the last write they must succeed.
func TestRenderersPropagateWriterErrors(t *testing.T) {
	sw := &Sweep{GoVersion: "g", GOOS: "l", GOARCH: "a", MaxProcs: 1, Algorithm: "BA-HF",
		Alpha: 0.3, Kappa: 1, N: 8, BenchtimeNs: 1, SeqNsPerOp: 100,
		Cells: []SweepCell{{Workers: 1, Iterations: 1, NsPerOp: 100, Speedup: 1}}}
	su := &Suite{Schema: SchemaID, GoVersion: "g", GOOS: "l", GOARCH: "a", MaxProcs: 1,
		BenchtimeNs: 1, Cells: []Measurement{{Algorithm: "HF", Mode: ModeSeq, Alpha: 0.1,
			N: 8, Iterations: 1, NsPerOp: 1, Parts: 8, Ratio: 1}}}
	renderers := map[string]func(w *failAfter) error{
		"sweep-text": func(w *failAfter) error { return sw.WriteText(w) },
		"suite-text": func(w *failAfter) error { return su.WriteText(w) },
		"suite-json": func(w *failAfter) error { return su.WriteJSON(w) },
	}
	for name, render := range renderers {
		ok := false
		for i := 0; i < 100; i++ {
			if err := render(&failAfter{writes: i}); err == nil {
				if i == 0 {
					t.Fatalf("%s: writer that always fails was not reported", name)
				}
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s: renderer never completed within 100 writes", name)
		}
	}
}

func TestModeOrderUnknownSortsLast(t *testing.T) {
	if got := modeOrder("???"); got <= modeOrder(ModePar) {
		t.Fatalf("unknown mode sorts at %d, before par at %d", got, modeOrder(ModePar))
	}
}
