package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestRunCoreCoversGrid runs the harness with a minimal time budget (one
// iteration per cell) and checks every grid cell is present exactly once
// with sane values — this is what makes the benchmark suite double as a
// test in CI.
func TestRunCoreCoversGrid(t *testing.T) {
	s, err := RunCore(time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Algorithms) * len(Alphas) * len(Ns)
	if len(s.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(s.Cells), want)
	}
	seen := map[string]bool{}
	for _, m := range s.Cells {
		idKey := fmt.Sprintf("%s|a%g|n%d", m.Algorithm, m.Alpha, m.N)
		if seen[idKey] {
			t.Fatalf("duplicate cell %s", idKey)
		}
		seen[idKey] = true
		if m.Iterations < 1 {
			t.Fatalf("%s: zero iterations", idKey)
		}
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", idKey, m.NsPerOp)
		}
		if m.Parts < 1 || m.Parts > m.N {
			t.Fatalf("%s: %d parts for N=%d", idKey, m.Parts, m.N)
		}
		if m.Ratio < 1 {
			t.Fatalf("%s: ratio %v < 1", idKey, m.Ratio)
		}
	}
	if s.Schema != SchemaID {
		t.Fatalf("schema %q", s.Schema)
	}
}

// TestSuiteRoundTrips pins the JSON schema: encode → decode preserves
// every cell, and the text table mentions every algorithm.
func TestSuiteRoundTrips(t *testing.T) {
	s, err := RunCore(time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Suite
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(s.Cells) || back.Schema != s.Schema {
		t.Fatalf("round trip lost data: %d cells, schema %q", len(back.Cells), back.Schema)
	}
	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if !strings.Contains(buf.String(), alg) {
			t.Fatalf("text table missing %s:\n%s", alg, buf.String())
		}
	}
}

func TestRunCellRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := runCell("nope", 0.1, 8, time.Nanosecond); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
