// Package bench is the tracked planner-benchmark harness behind
// cmd/lbbench and `make bench-core`. It times the allocation-free
// planner (internal/core.Planner) over the fixed grid
//
//	{HF, PHF, BA, BA-HF} × α ∈ {0.1, 0.3, 0.5} × N ∈ {64, 1024, 16384}
//
// plus the scale cells at α=0.3, N ∈ {2^16, 2^20} that compare the
// execution modes introduced in DESIGN.md §13 — sequential vs multicore
// planning for BA/BA-HF, binary heap vs monotone bucket queue for HF —
// on the paper's synthetic substrate, and emits the results as both an
// aligned text table and the machine-readable BENCH_core.json checked in
// at the repo root — the core-performance trajectory file, the planning
// counterpart to lbload's BENCH_service.json (EXPERIMENTS.md X9 and X12
// explain how to read and regenerate it).
//
// The harness measures with its own calibrated loop instead of
// testing.Benchmark so callers control the per-cell time budget
// (testing.Benchmark hard-codes the 1s default outside `go test`), and
// reads allocation counts from runtime.MemStats deltas, which is how it
// can report allocs/op without the testing package.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// Grid dimensions. Exported so tests and docs can't drift from what the
// harness actually runs.
var (
	Algorithms = []string{"HF", "PHF", "BA", "BA-HF"}
	Alphas     = []float64{0.1, 0.3, 0.5}
	Ns         = []int{64, 1024, 16384}
)

// Execution modes. ModeSeq is the sequential planner with the binary
// heap (the default everywhere); ModeBucket swaps the HF-phase queue for
// the monotone bucket queue; ModePar plans through the multicore
// ParallelPlanner at GOMAXPROCS workers. Every mode produces the
// bit-identical plan — the cells measure constants, never output.
const (
	ModeSeq    = "seq"
	ModeBucket = "bucket"
	ModePar    = "par"
)

// Scale-cell dimensions: the saturate-the-machine axis of the suite.
var (
	ScaleAlpha = 0.3
	ScaleNs    = []int{1 << 16, 1 << 20}
)

// ScaleCell names one scale measurement: an algorithm at ScaleAlpha and
// a large N, run in a specific execution mode.
type ScaleCell struct {
	Algorithm string
	Mode      string
	N         int
}

// ScaleCells enumerates the scale grid: for each large N, BA and BA-HF
// sequential vs parallel (the multicore speedup pairs) and HF heap vs
// bucket queue (the monotone-queue constant pairs).
func ScaleCells() []ScaleCell {
	var cells []ScaleCell
	for _, n := range ScaleNs {
		for _, alg := range []string{"BA", "BA-HF"} {
			cells = append(cells,
				ScaleCell{alg, ModeSeq, n},
				ScaleCell{alg, ModePar, n})
		}
		cells = append(cells,
			ScaleCell{"HF", ModeSeq, n},
			ScaleCell{"HF", ModeBucket, n})
	}
	return cells
}

// rootSeed pins the synthetic instance so runs are comparable across
// machines and time; κ is BA-HF's default threshold.
const (
	rootSeed = 42
	kappa    = 1.0
)

// Measurement is one grid cell's outcome.
type Measurement struct {
	Algorithm string  `json:"algorithm"`
	Alpha     float64 `json:"alpha"`
	N         int     `json:"n"`
	// Mode is the execution mode (seq, bucket, par); the base grid runs
	// everything in seq.
	Mode string `json:"mode"`
	// Workers is the goroutine count for par cells, 0 otherwise.
	Workers     int     `json:"workers,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Parts and Ratio describe the plan itself (identical every
	// iteration — planning is deterministic), tying the timing back to
	// the partition it buys.
	Parts int     `json:"parts"`
	Ratio float64 `json:"ratio"`
}

// RealMeasurement is one row of the X15 real-instance study
// (cmd/lbsim -exp real): a planner run over an actual graph or spatial
// instance, with the realized bisection quality α̂ and the measured
// worst-case bound r_α̂ it was checked against (DESIGN.md §16). Bound is
// 0 when the measured bound does not apply (the instance bottomed out
// on indivisible parts before reaching N parts).
type RealMeasurement struct {
	Family    string  `json:"family"`
	Instance  string  `json:"instance"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Parts     int     `json:"parts"`
	AlphaMin  float64 `json:"alpha_min"`
	AlphaMean float64 `json:"alpha_mean"`
	Ratio     float64 `json:"ratio"`
	Bound     float64 `json:"bound,omitempty"`
}

// Suite is the full harness outcome, the schema of BENCH_core.json.
type Suite struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// MaxProcs records GOMAXPROCS at measurement time — the context the
	// par cells must be read in (a 1-CPU machine cannot show speedup).
	MaxProcs    int           `json:"maxprocs"`
	BenchtimeNs int64         `json:"benchtime_ns"`
	Cells       []Measurement `json:"cells"`
	// Real is the X15 real-instance section, written by
	// `cmd/lbsim -exp real` (`make sweep-real`) and preserved verbatim
	// by lbbench when it rewrites the timing cells.
	Real []RealMeasurement `json:"real,omitempty"`
}

// SchemaID versions BENCH_core.json; bump on incompatible change.
// v2: cells carry mode/workers, the suite records maxprocs, and the
// scale cells (α=0.3, N ∈ {2^16, 2^20}, seq/par and heap/bucket) join
// the grid.
// v3: the optional {real} section carries the X15 real-instance
// measurements (measured ratio vs the r_α̂ bound).
const SchemaID = "bisectlb-bench-core/v3"

// RunCore runs the whole grid — base cells then scale cells — spending
// about benchtime per cell (minimum one iteration, so a tiny benchtime
// still measures every cell — CI uses that as a smoke run).
func RunCore(benchtime time.Duration) (*Suite, error) {
	s := &Suite{
		Schema:      SchemaID,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		MaxProcs:    runtime.GOMAXPROCS(0),
		BenchtimeNs: benchtime.Nanoseconds(),
	}
	for _, alg := range Algorithms {
		for _, alpha := range Alphas {
			for _, n := range Ns {
				m, err := runCell(alg, ModeSeq, alpha, n, benchtime)
				if err != nil {
					return nil, fmt.Errorf("bench %s α=%g N=%d: %w", alg, alpha, n, err)
				}
				s.Cells = append(s.Cells, m)
			}
		}
	}
	for _, sc := range ScaleCells() {
		m, err := runCell(sc.Algorithm, sc.Mode, ScaleAlpha, sc.N, benchtime)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s N=%d: %w", sc.Algorithm, sc.Mode, sc.N, err)
		}
		s.Cells = append(s.Cells, m)
	}
	return s, nil
}

// runCell times one (algorithm, mode, α, N) cell. The α under test is
// both the declared class α (for PHF/BA-HF) and the lower bound of the
// synthetic α̂ interval, so declared and actual bisection quality agree.
func runCell(alg, mode string, alpha float64, n int, benchtime time.Duration) (Measurement, error) {
	var k bisect.Kernel = bisect.SyntheticKernel{Lo: alpha, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, rootSeed)
	var plan core.Plan
	m := Measurement{Algorithm: alg, Alpha: alpha, N: n, Mode: mode}

	var run func() error
	var err error
	switch mode {
	case ModeSeq, ModeBucket:
		pl := core.NewPlanner(n)
		pl.SetBucketQueue(mode == ModeBucket)
		run, err = planFunc(alg, pl, &plan, k, root, n, alpha)
	case ModePar:
		pp := core.NewParallelPlanner(n, core.ParallelOptions{})
		m.Workers = runtime.GOMAXPROCS(0)
		run, err = pplanFunc(alg, pp, &plan, k, root, n, alpha)
	default:
		err = fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return Measurement{}, err
	}
	if err := run(); err != nil { // warm buffers; also validates the cell
		return Measurement{}, err
	}
	m.Parts = len(plan.Parts)
	m.Ratio = plan.Ratio

	var ms0, ms1 runtime.MemStats
	iters := 0
	var elapsed time.Duration
	batch := 1
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for elapsed < benchtime {
		start := time.Now()
		for i := 0; i < batch; i++ {
			if err := run(); err != nil {
				return Measurement{}, err
			}
		}
		elapsed += time.Since(start)
		iters += batch
		if batch < 1<<16 {
			batch *= 2
		}
	}
	runtime.ReadMemStats(&ms1)
	m.Iterations = iters
	m.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	m.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	m.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
	return m, nil
}

// planFunc maps an algorithm name to its planner call over shared
// buffers. The kernel is converted to its interface form once by the
// caller: converting per call would allocate and pollute allocs/op.
func planFunc(alg string, pl *core.Planner, plan *core.Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) (func() error, error) {
	switch alg {
	case "HF":
		return func() error { return pl.HFInto(plan, k, root, n) }, nil
	case "PHF":
		return func() error { return pl.PHFInto(plan, k, root, n, alpha) }, nil
	case "BA":
		return func() error { return pl.BAInto(plan, k, root, n) }, nil
	case "BA-HF":
		return func() error { return pl.BAHFInto(plan, k, root, n, alpha, kappa) }, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

// pplanFunc is planFunc over the multicore planner. Only BA and BA-HF
// have true parallel plans; requesting anything else in par mode is a
// grid-authoring error, not a silent fallback.
func pplanFunc(alg string, pp *core.ParallelPlanner, plan *core.Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) (func() error, error) {
	switch alg {
	case "BA":
		return func() error { return pp.BAInto(plan, k, root, n) }, nil
	case "BA-HF":
		return func() error { return pp.BAHFInto(plan, k, root, n, alpha, kappa) }, nil
	default:
		return nil, fmt.Errorf("algorithm %q has no parallel plan mode", alg)
	}
}

// LoadSuite strict-decodes a tracked BENCH_core.json. The writers use
// it to carry sections across partial rewrites: lbbench preserves the
// {real} section when it re-times the grid, and `lbsim -exp real`
// preserves the timing cells when it rewrites {real}.
func LoadSuite(path string) (*Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: %s does not match the Suite schema: %w", path, err)
	}
	return &s, nil
}

// WriteJSON renders the suite as indented JSON (the BENCH_core.json
// format).
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// modeOrder sorts seq before bucket before par within one (alg, α, N).
func modeOrder(mode string) int {
	switch mode {
	case ModeSeq:
		return 0
	case ModeBucket:
		return 1
	case ModePar:
		return 2
	}
	return 3
}

// WriteText renders the suite as an aligned table grouped by algorithm,
// cells sorted by (algorithm grid order, α, N, mode).
func (s *Suite) WriteText(w io.Writer) error {
	order := make(map[string]int, len(Algorithms))
	for i, a := range Algorithms {
		order[a] = i
	}
	cells := append([]Measurement(nil), s.Cells...)
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if order[a.Algorithm] != order[b.Algorithm] {
			return order[a.Algorithm] < order[b.Algorithm]
		}
		if a.Alpha != b.Alpha {
			return a.Alpha < b.Alpha
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return modeOrder(a.Mode) < modeOrder(b.Mode)
	})
	if _, err := fmt.Fprintf(w, "core planner benchmarks (%s, %s/%s, maxprocs %d, %v/cell)\n\n",
		s.GoVersion, s.GOOS, s.GOARCH, s.MaxProcs, time.Duration(s.BenchtimeNs)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-6s %5s %8s %14s %12s %12s %8s %8s\n",
		"alg", "mode", "alpha", "N", "ns/op", "allocs/op", "B/op", "parts", "ratio")
	prev := ""
	for _, m := range cells {
		if prev != "" && m.Algorithm != prev {
			fmt.Fprintln(w)
		}
		prev = m.Algorithm
		if _, err := fmt.Fprintf(w, "%-6s %-6s %5g %8d %14.0f %12.2f %12.1f %8d %8.4f\n",
			m.Algorithm, m.Mode, m.Alpha, m.N, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Parts, m.Ratio); err != nil {
			return err
		}
	}
	return nil
}
