// Package bench is the tracked planner-benchmark harness behind
// cmd/lbbench and `make bench-core`. It times the allocation-free
// planner (internal/core.Planner) over the fixed grid
//
//	{HF, PHF, BA, BA-HF} × α ∈ {0.1, 0.3, 0.5} × N ∈ {64, 1024, 16384}
//
// on the paper's synthetic substrate and emits the results as both an
// aligned text table and the machine-readable BENCH_core.json checked in
// at the repo root — the core-performance trajectory file, the planning
// counterpart to lbload's BENCH_service.json (EXPERIMENTS.md X9 explains
// how to read and regenerate it).
//
// The harness measures with its own calibrated loop instead of
// testing.Benchmark so callers control the per-cell time budget
// (testing.Benchmark hard-codes the 1s default outside `go test`), and
// reads allocation counts from runtime.MemStats deltas, which is how it
// can report allocs/op without the testing package.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// Grid dimensions. Exported so tests and docs can't drift from what the
// harness actually runs.
var (
	Algorithms = []string{"HF", "PHF", "BA", "BA-HF"}
	Alphas     = []float64{0.1, 0.3, 0.5}
	Ns         = []int{64, 1024, 16384}
)

// rootSeed pins the synthetic instance so runs are comparable across
// machines and time; κ is BA-HF's default threshold.
const (
	rootSeed = 42
	kappa    = 1.0
)

// Measurement is one grid cell's outcome.
type Measurement struct {
	Algorithm   string  `json:"algorithm"`
	Alpha       float64 `json:"alpha"`
	N           int     `json:"n"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Parts and Ratio describe the plan itself (identical every
	// iteration — planning is deterministic), tying the timing back to
	// the partition it buys.
	Parts int     `json:"parts"`
	Ratio float64 `json:"ratio"`
}

// Suite is the full harness outcome, the schema of BENCH_core.json.
type Suite struct {
	Schema      string        `json:"schema"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	BenchtimeNs int64         `json:"benchtime_ns"`
	Cells       []Measurement `json:"cells"`
}

// SchemaID versions BENCH_core.json; bump on incompatible change.
const SchemaID = "bisectlb-bench-core/v1"

// RunCore runs the whole grid, spending about benchtime per cell
// (minimum one iteration, so a tiny benchtime still measures every
// cell — CI uses that as a smoke run).
func RunCore(benchtime time.Duration) (*Suite, error) {
	s := &Suite{
		Schema:      SchemaID,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchtimeNs: benchtime.Nanoseconds(),
	}
	for _, alg := range Algorithms {
		for _, alpha := range Alphas {
			for _, n := range Ns {
				m, err := runCell(alg, alpha, n, benchtime)
				if err != nil {
					return nil, fmt.Errorf("bench %s α=%g N=%d: %w", alg, alpha, n, err)
				}
				s.Cells = append(s.Cells, m)
			}
		}
	}
	return s, nil
}

// runCell times one (algorithm, α, N) cell. The α under test is both the
// declared class α (for PHF/BA-HF) and the lower bound of the synthetic
// α̂ interval, so declared and actual bisection quality agree.
func runCell(alg string, alpha float64, n int, benchtime time.Duration) (Measurement, error) {
	var k bisect.Kernel = bisect.SyntheticKernel{Lo: alpha, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, rootSeed)
	pl := core.NewPlanner(n)
	var plan core.Plan
	run, err := planFunc(alg, pl, &plan, k, root, n, alpha)
	if err != nil {
		return Measurement{}, err
	}
	if err := run(); err != nil { // warm buffers; also validates the cell
		return Measurement{}, err
	}
	m := Measurement{Algorithm: alg, Alpha: alpha, N: n, Parts: len(plan.Parts), Ratio: plan.Ratio}

	var ms0, ms1 runtime.MemStats
	iters := 0
	var elapsed time.Duration
	batch := 1
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for elapsed < benchtime {
		start := time.Now()
		for i := 0; i < batch; i++ {
			if err := run(); err != nil {
				return Measurement{}, err
			}
		}
		elapsed += time.Since(start)
		iters += batch
		if batch < 1<<16 {
			batch *= 2
		}
	}
	runtime.ReadMemStats(&ms1)
	m.Iterations = iters
	m.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	m.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	m.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
	return m, nil
}

// planFunc maps an algorithm name to its planner call over shared
// buffers. The kernel is converted to its interface form once by the
// caller: converting per call would allocate and pollute allocs/op.
func planFunc(alg string, pl *core.Planner, plan *core.Plan, k bisect.Kernel, root bisect.FlatNode, n int, alpha float64) (func() error, error) {
	switch alg {
	case "HF":
		return func() error { return pl.HFInto(plan, k, root, n) }, nil
	case "PHF":
		return func() error { return pl.PHFInto(plan, k, root, n, alpha) }, nil
	case "BA":
		return func() error { return pl.BAInto(plan, k, root, n) }, nil
	case "BA-HF":
		return func() error { return pl.BAHFInto(plan, k, root, n, alpha, kappa) }, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

// WriteJSON renders the suite as indented JSON (the BENCH_core.json
// format).
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the suite as an aligned table grouped by algorithm,
// cells sorted by (algorithm grid order, α, N).
func (s *Suite) WriteText(w io.Writer) error {
	order := make(map[string]int, len(Algorithms))
	for i, a := range Algorithms {
		order[a] = i
	}
	cells := append([]Measurement(nil), s.Cells...)
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if order[a.Algorithm] != order[b.Algorithm] {
			return order[a.Algorithm] < order[b.Algorithm]
		}
		if a.Alpha != b.Alpha {
			return a.Alpha < b.Alpha
		}
		return a.N < b.N
	})
	if _, err := fmt.Fprintf(w, "core planner benchmarks (%s, %s/%s, %v/cell)\n\n",
		s.GoVersion, s.GOOS, s.GOARCH, time.Duration(s.BenchtimeNs)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %5s %7s %14s %12s %12s %7s %8s\n",
		"alg", "alpha", "N", "ns/op", "allocs/op", "B/op", "parts", "ratio")
	prev := ""
	for _, m := range cells {
		if prev != "" && m.Algorithm != prev {
			fmt.Fprintln(w)
		}
		prev = m.Algorithm
		if _, err := fmt.Fprintf(w, "%-6s %5g %7d %14.0f %12.2f %12.1f %7d %8.4f\n",
			m.Algorithm, m.Alpha, m.N, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Parts, m.Ratio); err != nil {
			return err
		}
	}
	return nil
}
