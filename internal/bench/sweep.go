package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// SweepWorkers is the worker axis of the parallel speedup study
// (EXPERIMENTS.md X12), behind `make sweep-parallel`.
var SweepWorkers = []int{1, 2, 4, 8}

// SweepN and SweepAlpha pin the sweep's instance: the headline
// N=2^20 BA-HF plan from the scale grid.
const (
	SweepN     = 1 << 20
	SweepAlpha = 0.3
)

// SweepCell is one worker count's outcome.
type SweepCell struct {
	Workers    int     `json:"workers"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Speedup is the workers=1 cell's ns/op divided by this cell's —
	// above 1 means the fan-out paid for itself.
	Speedup float64 `json:"speedup"`
}

// Sweep is the parallel speedup study: one algorithm and instance, one
// cell per worker count, plus the sequential planner as the baseline
// row workers=0 (the parallel planner at workers=1 additionally pays
// the task-queue overhead, so both references matter).
type Sweep struct {
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	MaxProcs    int         `json:"maxprocs"`
	Algorithm   string      `json:"algorithm"`
	Alpha       float64     `json:"alpha"`
	Kappa       float64     `json:"kappa"`
	N           int         `json:"n"`
	BenchtimeNs int64       `json:"benchtime_ns"`
	SeqNsPerOp  float64     `json:"seq_ns_per_op"`
	Cells       []SweepCell `json:"cells"`
}

// RunParallelSweep times BA-HF planning of the N=2^20 synthetic
// instance through the multicore planner at every worker count in
// workers (nil means SweepWorkers), spending about benchtime per cell.
// The bucket queue is enabled throughout — the sweep isolates the
// fan-out axis, not the queue axis.
func RunParallelSweep(benchtime time.Duration, workers []int) (*Sweep, error) {
	if workers == nil {
		workers = SweepWorkers
	}
	s := &Sweep{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		MaxProcs:    runtime.GOMAXPROCS(0),
		Algorithm:   "BA-HF",
		Alpha:       SweepAlpha,
		Kappa:       kappa,
		N:           SweepN,
		BenchtimeNs: benchtime.Nanoseconds(),
	}
	seq, err := runCell("BA-HF", ModeBucket, SweepAlpha, SweepN, benchtime)
	if err != nil {
		return nil, fmt.Errorf("sweep sequential baseline: %w", err)
	}
	s.SeqNsPerOp = seq.NsPerOp

	var k bisect.Kernel = bisect.SyntheticKernel{Lo: SweepAlpha, Hi: 0.5}
	root := bisect.SyntheticFlatRoot(1, rootSeed)
	var base float64
	for _, w := range workers {
		if w < 1 {
			return nil, fmt.Errorf("sweep worker count must be ≥ 1, got %d", w)
		}
		pp := core.NewParallelPlanner(SweepN, core.ParallelOptions{Workers: w})
		pp.SetBucketQueue(true)
		var plan core.Plan
		run := func() error { return pp.BAHFInto(&plan, k, root, SweepN, SweepAlpha, kappa) }
		if err := run(); err != nil {
			return nil, fmt.Errorf("sweep w=%d: %w", w, err)
		}
		iters := 0
		var elapsed time.Duration
		for elapsed < benchtime || iters == 0 {
			start := time.Now()
			if err := run(); err != nil {
				return nil, fmt.Errorf("sweep w=%d: %w", w, err)
			}
			elapsed += time.Since(start)
			iters++
		}
		c := SweepCell{Workers: w, Iterations: iters,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters)}
		if base == 0 {
			base = c.NsPerOp
		}
		c.Speedup = base / c.NsPerOp
		s.Cells = append(s.Cells, c)
	}
	return s, nil
}

// WriteText renders the sweep as an aligned table (results/parallel.txt).
func (s *Sweep) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "parallel planner speedup sweep (%s, %s/%s, maxprocs %d, %v/cell)\n",
		s.GoVersion, s.GOOS, s.GOARCH, s.MaxProcs, time.Duration(s.BenchtimeNs)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s α=%g κ=%g N=%d; speedup is vs the workers=1 row\n", s.Algorithm, s.Alpha, s.Kappa, s.N); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "sequential planner baseline (bucket queue): %14.0f ns/op\n\n", s.SeqNsPerOp); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %14s %10s %6s\n", "workers", "ns/op", "speedup", "iters")
	for _, c := range s.Cells {
		if _, err := fmt.Fprintf(w, "%8d %14.0f %10.2f %6d\n", c.Workers, c.NsPerOp, c.Speedup, c.Iterations); err != nil {
			return err
		}
	}
	return nil
}
