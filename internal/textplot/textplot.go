// Package textplot renders simple ASCII line charts so the experiment
// harness can reproduce the paper's figures directly in a terminal (or a
// log file) without any graphics dependency.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	// Name appears in the legend.
	Name string
	// Ys are the series values; len(Ys) must equal len(xs) passed to Plot.
	Ys []float64
	// Marker is the character drawn for the series' points.
	Marker byte
}

// Plot renders the series over the common x values into w. Width and height
// describe the plotting area in characters (sensible minimums are
// enforced). X values are treated as ordinal positions with their labels
// printed beneath the axis, which matches the paper's log2 N axes.
func Plot(w io.Writer, title string, xLabels []string, series []Series, width, height int) error {
	if len(xLabels) == 0 {
		return fmt.Errorf("textplot: no x values")
	}
	for _, s := range series {
		if len(s.Ys) != len(xLabels) {
			return fmt.Errorf("textplot: series %q has %d values for %d x positions",
				s.Name, len(s.Ys), len(xLabels))
		}
	}
	if width < 2*len(xLabels) {
		width = 2 * len(xLabels)
	}
	if width < 40 {
		width = 40
	}
	if height < 8 {
		height = 8
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("textplot: no finite values")
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom keeps extreme points off the frame.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int {
		if len(xLabels) == 1 {
			return width / 2
		}
		return i * (width - 1) / (len(xLabels) - 1)
	}
	row := func(y float64) int {
		frac := (y - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range series {
		for i, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			grid[row(y)][col(i)] = s.Marker
		}
		// Connect consecutive points with light interpolation dots.
		for i := 1; i < len(s.Ys); i++ {
			y0, y1 := s.Ys[i-1], s.Ys[i]
			if math.IsNaN(y0) || math.IsNaN(y1) {
				continue
			}
			c0, c1 := col(i-1), col(i)
			for c := c0 + 1; c < c1; c++ {
				frac := float64(c-c0) / float64(c1-c0)
				r := row(y0 + frac*(y1-y0))
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}

	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for r := 0; r < height; r++ {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.3f |%s\n", yVal, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	// X labels: print each under its column where space allows.
	lab := []byte(strings.Repeat(" ", width))
	for i, l := range xLabels {
		c := col(i)
		for j := 0; j < len(l) && c+j < width; j++ {
			lab[c+j] = l[j]
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %s\n", "", string(lab)); err != nil {
		return err
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	_, err := fmt.Fprintf(w, "%8s  [%s]\n", "", strings.Join(legend, "  "))
	return err
}
