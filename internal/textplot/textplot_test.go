package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "demo", []string{"1", "2", "3"}, []Series{
		{Name: "up", Ys: []float64{1, 2, 3}, Marker: 'u'},
		{Name: "down", Ys: []float64{3, 2, 1}, Marker: 'd'},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"demo", "u", "d", "u=up", "d=down", "---"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPlotErrors(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "", nil, nil, 40, 10); err == nil {
		t.Fatal("empty x accepted")
	}
	if err := Plot(&b, "", []string{"1", "2"}, []Series{{Name: "x", Ys: []float64{1}, Marker: 'x'}}, 40, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Plot(&b, "", []string{"1"}, []Series{{Name: "x", Ys: []float64{math.NaN()}, Marker: 'x'}}, 40, 10); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "flat", []string{"a", "b"}, []Series{
		{Name: "c", Ys: []float64{5, 5}, Marker: 'c'},
	}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c") {
		t.Fatal("flat series not drawn")
	}
}

func TestPlotSinglePoint(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "one", []string{"x"}, []Series{
		{Name: "p", Ys: []float64{1}, Marker: 'p'},
	}, 40, 8); err != nil {
		t.Fatal(err)
	}
}

func TestPlotNaNGapsSkipped(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "gap", []string{"1", "2", "3"}, []Series{
		{Name: "g", Ys: []float64{1, math.NaN(), 3}, Marker: 'g'},
	}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "g") < 2 { // two points plus legend
		t.Fatal("NaN gap dropped real points")
	}
}

func TestMinimumDimensionsEnforced(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "", []string{"1", "2"}, []Series{
		{Name: "s", Ys: []float64{1, 2}, Marker: 's'},
	}, 1, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) < 8 {
		t.Fatalf("height floor not enforced: %d lines", len(lines))
	}
}
