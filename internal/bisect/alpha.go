package bisect

import (
	"math"
	"sync"
)

// AlphaRecorder accumulates the empirical bisection parameter α̂ of every
// bisection a problem substrate performs: for a parent of weight w split
// into w1 + w2, the recorded value is min(w1, w2)/w. Backends whose α is
// emergent rather than declared (the graph and spatial families) carry a
// recorder so the verifier can evaluate the paper's guarantees against
// the bisector quality a run actually achieved (r_α̂, DESIGN.md §16)
// instead of an assumed class parameter.
//
// A nil *AlphaRecorder is valid and records nothing, so substrates can
// thread one recorder pointer unconditionally. All methods are safe for
// concurrent use: the parallel executors bisect problems from multiple
// goroutines.
type AlphaRecorder struct {
	mu     sync.Mutex
	count  int
	min    float64
	sum    float64
	levels []levelAgg
}

type levelAgg struct {
	count int
	min   float64
	sum   float64
}

// LevelAlpha summarises the bisections recorded at one tree depth.
type LevelAlpha struct {
	// Level is the depth of the bisected parent (root = 0).
	Level int
	// Count is the number of bisections recorded at this level.
	Count int
	// Min and Mean aggregate α̂ = min(w1, w2)/w over those bisections.
	Min  float64
	Mean float64
}

// Record logs one bisection of a parent at the given tree level with
// weight w into children w1 and w2. Non-positive or non-finite inputs
// are ignored (the structural checkers reject them separately; the
// recorder's job is only statistics). Negative levels clamp to 0.
func (r *AlphaRecorder) Record(level int, w, w1, w2 float64) {
	if r == nil {
		return
	}
	if !(w > 0) || !(w1 > 0) || !(w2 > 0) || math.IsInf(w, 0) {
		return
	}
	ahat := math.Min(w1, w2) / w
	if level < 0 {
		level = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 || ahat < r.min {
		r.min = ahat
	}
	r.count++
	r.sum += ahat
	for len(r.levels) <= level {
		r.levels = append(r.levels, levelAgg{})
	}
	l := &r.levels[level]
	if l.count == 0 || ahat < l.min {
		l.min = ahat
	}
	l.count++
	l.sum += ahat
}

// Count returns the number of bisections recorded.
func (r *AlphaRecorder) Count() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Min returns the smallest recorded α̂ — the realized bisector quality of
// the run, the α̂ in the measured bound r_α̂. It returns 0 when nothing
// was recorded.
func (r *AlphaRecorder) Min() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.min
}

// Mean returns the mean recorded α̂, or 0 when nothing was recorded.
func (r *AlphaRecorder) Mean() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Levels returns the per-level breakdown in depth order, skipping levels
// that recorded nothing.
func (r *AlphaRecorder) Levels() []LevelAlpha {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LevelAlpha, 0, len(r.levels))
	for d, l := range r.levels {
		if l.count == 0 {
			continue
		}
		out = append(out, LevelAlpha{Level: d, Count: l.count, Min: l.min, Mean: l.sum / float64(l.count)})
	}
	return out
}

// Reset clears the recorder for reuse across runs.
func (r *AlphaRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count, r.min, r.sum = 0, 0, 0
	r.levels = r.levels[:0]
}
