package bisect

import (
	"math"
	"testing"
)

// sanitizeKernelInputs folds raw fuzz floats into the valid parameter
// space, mirroring the convention of internal/core's sanitizeInterval:
// rather than rejecting wild inputs we map them into range, so the
// fuzzer's entire input space exercises real bisections.
func sanitizeKernelInputs(w, a, b float64) (weight, lo, hi float64) {
	fold := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0.25
		}
		x = math.Abs(x)
		x = x - math.Floor(x/0.5)*0.5 // fold into [0, 0.5)
		if x < 1e-3 {
			x = 1e-3
		}
		return x
	}
	lo, hi = fold(a), fold(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		w = 1
	}
	w = math.Abs(w)
	if !(w > 1e-6) {
		w = 1e-6
	}
	if w > 1e12 {
		w = 1e12
	}
	return w, lo, hi
}

// FuzzKernels throws arbitrary parameters at all three flat kernels and
// checks the contract every Kernel implementation promises: exact parity
// with the corresponding Problem implementation (bit-identical weights
// and IDs), heavy child first, weight conservation, depth bookkeeping,
// the per-split α-band, and determinism.
func FuzzKernels(f *testing.F) {
	f.Add(uint64(1), 100.0, 0.1, 0.5, uint32(64))
	f.Add(uint64(42), 1.0, 0.01, 0.01, uint32(2))
	f.Add(uint64(7), 1e9, 0.3, 0.49, uint32(100000))
	f.Add(uint64(0), 1e-6, 0.001, 0.25, uint32(3))
	f.Fuzz(func(t *testing.T, seed uint64, wRaw, aRaw, bRaw float64, elemsRaw uint32) {
		w, lo, hi := sanitizeKernelInputs(wRaw, aRaw, bRaw)

		// Synthetic: kernel vs interface, band [lo·w, hi·w] on the light child.
		sp := MustSynthetic(w, lo, hi, seed)
		sh, sl := sp.Bisect()
		kh, kl := SyntheticKernel{Lo: lo, Hi: hi}.Split(SyntheticFlatRoot(w, seed))
		checkSplitParity(t, "synthetic", sh, sl, kh, kl)
		checkSplit(t, "synthetic", w, kh, kl)
		slack := 1e-9 * w
		if kl.Weight < lo*w-slack || kl.Weight > hi*w+slack {
			t.Fatalf("synthetic light child %v outside [%v, %v]", kl.Weight, lo*w, hi*w)
		}

		// Fixed: exact (1−α)/α split.
		fp := MustFixed(w, hi)
		fh, fl := fp.Bisect()
		gh, gl := FixedKernel{Alpha: hi}.Split(FixedFlatRoot(w))
		checkSplitParity(t, "fixed", fh, fl, gh, gl)
		checkSplit(t, "fixed", w, gh, gl)
		if math.Abs(gl.Weight-hi*w) > slack {
			t.Fatalf("fixed light child %v, want %v", gl.Weight, hi*w)
		}

		// List: integer pivot inside the guard window. The list guard must
		// stay ≤ 1/3 for the window to be non-empty on every length ≥ 2.
		elems := int(elemsRaw%100000) + 2
		la := lo
		if la > 1.0/3 {
			la = 1.0 / 3
		}
		lp := MustList(elems, la, seed)
		root := ListFlatRoot(elems, la, seed)
		if root.Leaf != !lp.CanBisect() {
			t.Fatalf("list leaf mismatch: flat %v, interface CanBisect %v", root.Leaf, lp.CanBisect())
		}
		if !root.Leaf {
			lh, ll := lp.Bisect()
			mh, ml := ListKernel{Alpha: la}.Split(root)
			checkSplitParity(t, "list", lh, ll, mh, ml)
			checkSplit(t, "list", float64(elems), mh, ml)
			if mh.Weight != math.Trunc(mh.Weight) || ml.Weight != math.Trunc(ml.Weight) {
				t.Fatalf("list split produced non-integer lengths %v/%v", mh.Weight, ml.Weight)
			}
			if ml.Weight < 1 {
				t.Fatalf("list light child empty: %v", ml.Weight)
			}
		}

		// Determinism: the same node splits the same way every time.
		kh2, kl2 := SyntheticKernel{Lo: lo, Hi: hi}.Split(SyntheticFlatRoot(w, seed))
		if kh2 != kh || kl2 != kl {
			t.Fatalf("synthetic split not deterministic: %+v/%+v vs %+v/%+v", kh, kl, kh2, kl2)
		}
	})
}

// checkSplitParity asserts bit-identical weights and equal IDs between a
// Problem bisection and the corresponding Kernel split.
func checkSplitParity(t *testing.T, kind string, ph, pl Problem, kh, kl FlatNode) {
	t.Helper()
	if ph.Weight() != kh.Weight || pl.Weight() != kl.Weight {
		t.Fatalf("%s weight parity broken: interface %v/%v, kernel %v/%v",
			kind, ph.Weight(), pl.Weight(), kh.Weight, kl.Weight)
	}
	if ph.ID() != kh.ID || pl.ID() != kl.ID {
		t.Fatalf("%s ID parity broken: interface %d/%d, kernel %d/%d",
			kind, ph.ID(), pl.ID(), kh.ID, kl.ID)
	}
}

// checkSplit asserts the structural Kernel contract on one split:
// conservation, heavy-first ordering, distinct IDs, depth bookkeeping.
func checkSplit(t *testing.T, kind string, w float64, h, l FlatNode) {
	t.Helper()
	if math.Abs((h.Weight+l.Weight)-w) > 1e-9*w {
		t.Fatalf("%s split does not conserve weight: %v + %v != %v", kind, h.Weight, l.Weight, w)
	}
	if h.Weight < l.Weight {
		t.Fatalf("%s heavy child lighter than light child: %v < %v", kind, h.Weight, l.Weight)
	}
	if !(h.Weight > 0) || !(l.Weight > 0) {
		t.Fatalf("%s split produced non-positive child: %v/%v", kind, h.Weight, l.Weight)
	}
	if h.ID == l.ID {
		t.Fatalf("%s children share ID %d", kind, h.ID)
	}
	if h.Depth != 1 || l.Depth != 1 {
		t.Fatalf("%s children depth %d/%d, want 1", kind, h.Depth, l.Depth)
	}
}
