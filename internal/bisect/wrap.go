package bisect

import (
	"fmt"
	"math"
	"sync/atomic"

	"bisectlb/internal/xrand"
)

// Counter tallies the bisections performed through wrapped problems. One
// Counter is shared by a whole tree of Counting problems, so after a run it
// reports the total bisection count — useful to verify the N−1 bisection
// theorems from outside an algorithm.
type Counter struct {
	bisections atomic.Int64
	maxDepth   atomic.Int64
}

// Bisections returns the number of Bisect calls observed.
func (c *Counter) Bisections() int64 { return c.bisections.Load() }

// MaxDepth returns the deepest wrapped node that was created.
func (c *Counter) MaxDepth() int64 { return c.maxDepth.Load() }

// Counting wraps a problem so every Bisect in its subtree increments the
// shared Counter. Weight, ID and divisibility pass through unchanged.
type Counting struct {
	inner   Problem
	counter *Counter
	depth   int64
}

var _ Problem = (*Counting)(nil)

// WithCounter wraps p; all descendants share the returned Counter.
func WithCounter(p Problem) (*Counting, *Counter) {
	c := &Counter{}
	return &Counting{inner: p, counter: c}, c
}

// Weight returns the wrapped problem's weight.
func (c *Counting) Weight() float64 { return c.inner.Weight() }

// CanBisect returns the wrapped problem's divisibility.
func (c *Counting) CanBisect() bool { return c.inner.CanBisect() }

// ID returns the wrapped problem's identity.
func (c *Counting) ID() uint64 { return c.inner.ID() }

// Bisect counts the call and wraps both children.
func (c *Counting) Bisect() (Problem, Problem) {
	a, b := c.inner.Bisect()
	c.counter.bisections.Add(1)
	d := c.depth + 1
	for {
		cur := c.counter.maxDepth.Load()
		if d <= cur || c.counter.maxDepth.CompareAndSwap(cur, d) {
			break
		}
	}
	return &Counting{inner: a, counter: c.counter, depth: d},
		&Counting{inner: b, counter: c.counter, depth: d}
}

// Validating wraps a problem and panics the moment any bisection in its
// subtree violates the α-bisector contract (children summing to the parent
// within tol, both inside [α·w, (1−α)·w]). Use it in tests and during
// development of new substrates; production code should run CheckAlpha
// up front instead.
type Validating struct {
	inner Problem
	alpha float64
	tol   float64
}

var _ Problem = (*Validating)(nil)

// WithValidation wraps p with contract enforcement.
func WithValidation(p Problem, alpha, tol float64) *Validating {
	if !(alpha > 0) || alpha > 0.5 {
		panic(fmt.Sprintf("bisect: WithValidation α=%v outside (0, 1/2]", alpha))
	}
	if tol < 0 {
		tol = 0
	}
	return &Validating{inner: p, alpha: alpha, tol: tol}
}

// Weight returns the wrapped problem's weight.
func (v *Validating) Weight() float64 { return v.inner.Weight() }

// CanBisect returns the wrapped problem's divisibility.
func (v *Validating) CanBisect() bool { return v.inner.CanBisect() }

// ID returns the wrapped problem's identity.
func (v *Validating) ID() uint64 { return v.inner.ID() }

// Bisect validates the split before passing the children on.
func (v *Validating) Bisect() (Problem, Problem) {
	w := v.inner.Weight()
	a, b := v.inner.Bisect()
	wa, wb := a.Weight(), b.Weight()
	slack := v.tol * w
	if math.Abs(wa+wb-w) > slack {
		panic(fmt.Sprintf("bisect: node %d children %g + %g do not sum to %g", v.inner.ID(), wa, wb, w))
	}
	lo, hi := v.alpha*w-slack, (1-v.alpha)*w+slack
	if wa < lo || wa > hi || wb < lo || wb > hi {
		panic(fmt.Sprintf("bisect: node %d split (%g, %g) outside [%g, %g]", v.inner.ID(), wa, wb, v.alpha*w, (1-v.alpha)*w))
	}
	return &Validating{inner: a, alpha: v.alpha, tol: v.tol},
		&Validating{inner: b, alpha: v.alpha, tol: v.tol}
}

// Noisy wraps a problem so the weight *reported* to the load balancer
// carries multiplicative estimation error, while the true weight remains
// available for evaluating the resulting partition. This models the
// practical situation the paper notes in Section 2 — "it is assumed that
// the weight of a problem can be calculated (or approximated) easily" —
// and the harder setting of its reference [10] where weights are unknown:
// algorithms make decisions on estimates, but the quality that matters is
// measured on real loads.
//
// The noise factor for each node is a deterministic function of the node's
// ID, so different algorithms see identical (mis-)estimates and stay
// comparable.
type Noisy struct {
	inner Problem
	// rel is the maximum relative error: reported = true · (1 + e),
	// e ~ U[−rel, +rel] derived from the node ID.
	rel      float64
	salt     uint64
	reported float64
}

var _ Problem = (*Noisy)(nil)

// WithNoise wraps p with relative weight-estimation error rel ∈ [0, 1).
func WithNoise(p Problem, rel float64, salt uint64) (*Noisy, error) {
	if rel < 0 || rel >= 1 {
		return nil, fmt.Errorf("bisect: noise level %v outside [0, 1)", rel)
	}
	n := &Noisy{inner: p, rel: rel, salt: salt}
	n.reported = n.estimate()
	return n, nil
}

func (n *Noisy) estimate() float64 {
	if n.rel == 0 {
		return n.inner.Weight()
	}
	rng := xrand.New(xrand.Mix(n.salt, n.inner.ID()))
	e := rng.InRange(-n.rel, n.rel)
	return n.inner.Weight() * (1 + e)
}

// Weight returns the *estimated* weight the balancer sees.
func (n *Noisy) Weight() float64 { return n.reported }

// TrueWeight returns the exact underlying load.
func (n *Noisy) TrueWeight() float64 { return n.inner.Weight() }

// CanBisect returns the wrapped problem's divisibility.
func (n *Noisy) CanBisect() bool { return n.inner.CanBisect() }

// ID returns the wrapped problem's identity.
func (n *Noisy) ID() uint64 { return n.inner.ID() }

// Bisect splits the underlying problem and re-estimates both children.
// Note that estimated child weights do not sum exactly to the estimated
// parent — exactly the inconsistency real work estimators exhibit.
func (n *Noisy) Bisect() (Problem, Problem) {
	a, b := n.inner.Bisect()
	ca := &Noisy{inner: a, rel: n.rel, salt: n.salt}
	ca.reported = ca.estimate()
	cb := &Noisy{inner: b, rel: n.rel, salt: n.salt}
	cb.reported = cb.estimate()
	if ca.reported >= cb.reported {
		return ca, cb
	}
	return cb, ca
}

// TrueMax returns the maximum true weight among parts that may be Noisy
// (plain problems contribute their Weight).
func TrueMax(ps []Problem) float64 {
	m := 0.0
	for _, p := range ps {
		w := p.Weight()
		if n, ok := p.(*Noisy); ok {
			w = n.TrueWeight()
		}
		if w > m {
			m = w
		}
	}
	return m
}
