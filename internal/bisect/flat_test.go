package bisect

import (
	"testing"
)

// walkParity bisects the interface problem and the flat node side by side
// down to depth levels and fails on the first divergence in weight, ID,
// divisibility or depth.
func walkParity(t *testing.T, p Problem, n FlatNode, k Kernel, depth int) {
	t.Helper()
	if p.Weight() != n.Weight {
		t.Fatalf("weight diverged at id %d: interface %v, flat %v", p.ID(), p.Weight(), n.Weight)
	}
	if p.ID() != n.ID {
		t.Fatalf("ID diverged: interface %d, flat %d", p.ID(), n.ID)
	}
	if p.CanBisect() == n.Leaf {
		t.Fatalf("divisibility diverged at id %d: CanBisect=%v, Leaf=%v", p.ID(), p.CanBisect(), n.Leaf)
	}
	if depth == 0 || !p.CanBisect() {
		return
	}
	c1, c2 := p.Bisect()
	f1, f2 := k.Split(n)
	walkParity(t, c1, f1, k, depth-1)
	walkParity(t, c2, f2, k, depth-1)
}

func TestSyntheticKernelParity(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1999} {
		p := MustSynthetic(3.5, 0.1, 0.5, seed)
		walkParity(t, p, SyntheticFlatRoot(3.5, seed), SyntheticKernel{Lo: 0.1, Hi: 0.5}, 8)
	}
}

func TestFixedKernelParity(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.3, 0.5} {
		p := MustFixed(2, alpha)
		walkParity(t, p, FixedFlatRoot(2), FixedKernel{Alpha: alpha}, 8)
	}
}

func TestListKernelParity(t *testing.T) {
	for _, elems := range []int{1, 2, 3, 17, 1000} {
		p := MustList(elems, 0.2, 99)
		walkParity(t, p, ListFlatRoot(elems, 0.2, 99), ListKernel{Alpha: 0.2}, 12)
	}
}

func TestKernelSplitsAllocationFree(t *testing.T) {
	sk := SyntheticKernel{Lo: 0.1, Hi: 0.5}
	fk := FixedKernel{Alpha: 0.3}
	lk := ListKernel{Alpha: 0.2}
	sn := SyntheticFlatRoot(1, 7)
	fn := FixedFlatRoot(1)
	ln := ListFlatRoot(4096, 0.2, 7)
	var sink FlatNode
	if a := testing.AllocsPerRun(100, func() { sink, _ = sk.Split(sn) }); a != 0 {
		t.Errorf("SyntheticKernel.Split allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink, _ = fk.Split(fn) }); a != 0 {
		t.Errorf("FixedKernel.Split allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink, _ = lk.Split(ln) }); a != 0 {
		t.Errorf("ListKernel.Split allocates %v/op, want 0", a)
	}
	_ = sink
}

func TestValidateFlatRoot(t *testing.T) {
	if err := ValidateFlatRoot(FlatNode{Weight: 1}); err != nil {
		t.Fatalf("valid root rejected: %v", err)
	}
	for _, w := range []float64{0, -1, nan(), inf()} {
		if err := ValidateFlatRoot(FlatNode{Weight: w}); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
