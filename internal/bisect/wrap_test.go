package bisect

import (
	"math"
	"testing"
)

func TestCountingCountsBisections(t *testing.T) {
	p, counter := WithCounter(MustSynthetic(1, 0.1, 0.5, 1))
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		if depth == 0 {
			return
		}
		a, b := q.Bisect()
		walk(a, depth-1)
		walk(b, depth-1)
	}
	walk(p, 4) // full binary expansion: 2^4−1 = 15 bisections
	if counter.Bisections() != 15 {
		t.Fatalf("counted %d bisections, want 15", counter.Bisections())
	}
	if counter.MaxDepth() != 4 {
		t.Fatalf("max depth %d, want 4", counter.MaxDepth())
	}
}

func TestCountingPassesThrough(t *testing.T) {
	inner := MustSynthetic(2, 0.1, 0.5, 3)
	p, _ := WithCounter(inner)
	if p.Weight() != inner.Weight() || p.ID() != inner.ID() || p.CanBisect() != inner.CanBisect() {
		t.Fatal("Counting altered the problem's observable behaviour")
	}
	a, b := p.Bisect()
	ia, ib := inner.Bisect()
	if a.Weight() != ia.Weight() || b.Weight() != ib.Weight() {
		t.Fatal("Counting altered the split")
	}
}

func TestValidatingAcceptsConformingClass(t *testing.T) {
	p := WithValidation(MustSynthetic(1, 0.2, 0.5, 5), 0.2, 1e-9)
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		if depth == 0 {
			return
		}
		a, b := q.Bisect()
		walk(a, depth-1)
		walk(b, depth-1)
	}
	walk(p, 6) // must not panic
}

func TestValidatingPanicsOnViolation(t *testing.T) {
	// A class that only guarantees α=0.05 validated against α=0.45 must
	// blow up somewhere in a modest expansion.
	p := WithValidation(MustSynthetic(1, 0.05, 0.5, 7), 0.45, 1e-9)
	defer func() {
		if recover() == nil {
			t.Fatal("violation not detected")
		}
	}()
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		if depth == 0 {
			return
		}
		a, b := q.Bisect()
		walk(a, depth-1)
		walk(b, depth-1)
	}
	walk(p, 10)
}

func TestValidatingConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad α accepted")
		}
	}()
	WithValidation(MustSynthetic(1, 0.1, 0.5, 1), 0.9, 0)
}

func TestNoisyZeroNoiseIsTransparent(t *testing.T) {
	inner := MustSynthetic(1, 0.1, 0.5, 9)
	p, err := WithNoise(inner, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight() != inner.Weight() || p.TrueWeight() != inner.Weight() {
		t.Fatal("zero noise altered weights")
	}
}

func TestNoisyBounds(t *testing.T) {
	if _, err := WithNoise(MustSynthetic(1, 0.1, 0.5, 1), -0.1, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := WithNoise(MustSynthetic(1, 0.1, 0.5, 1), 1, 1); err == nil {
		t.Fatal("noise=1 accepted")
	}
}

func TestNoisyEstimateWithinBand(t *testing.T) {
	const rel = 0.25
	p, err := WithNoise(MustSynthetic(1, 0.1, 0.5, 11), rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		n := q.(*Noisy)
		ratio := n.Weight() / n.TrueWeight()
		if ratio < 1-rel-1e-12 || ratio > 1+rel+1e-12 {
			t.Fatalf("estimate ratio %v outside ±%v", ratio, rel)
		}
		if depth == 0 || !q.CanBisect() {
			return
		}
		a, b := q.Bisect()
		walk(a, depth-1)
		walk(b, depth-1)
	}
	walk(p, 6)
}

func TestNoisyDeterministicAcrossRuns(t *testing.T) {
	mk := func() Problem {
		p, err := WithNoise(MustSynthetic(1, 0.1, 0.5, 13), 0.3, 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	a1, a2 := a.Bisect()
	b1, b2 := b.Bisect()
	if a1.Weight() != b1.Weight() || a2.Weight() != b2.Weight() {
		t.Fatal("noise not deterministic in node identity")
	}
}

func TestNoisyChildrenNeedNotSum(t *testing.T) {
	// The whole point: estimated child weights are inconsistent with the
	// estimated parent, like real estimators.
	p, err := WithNoise(MustSynthetic(1, 0.1, 0.5, 17), 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.Bisect()
	if math.Abs(a.Weight()+b.Weight()-p.Weight()) < 1e-12 {
		t.Skip("estimates happened to sum exactly; extremely unlikely")
	}
}

func TestTrueMax(t *testing.T) {
	plain := MustSynthetic(3, 0.1, 0.5, 1)
	noisy, err := WithNoise(MustSynthetic(5, 0.1, 0.5, 2), 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := TrueMax([]Problem{plain, noisy})
	if got != 5 {
		t.Fatalf("TrueMax = %v, want 5 (the true weight, not the estimate %v)", got, noisy.Weight())
	}
}
