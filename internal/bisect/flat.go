package bisect

import (
	"fmt"
	"math"

	"bisectlb/internal/xrand"
)

// FlatNode is the value-type representation of a subproblem used by the
// allocation-free planner core (internal/core.Planner). Where the Problem
// interface carries subproblems as heap-allocated objects behind interface
// values — one or two allocations per bisection — a FlatNode is a plain
// struct that lives in caller-owned slices: weight, identity, up to two
// words of substrate state, and the bisection-tree depth.
//
// A Kernel interprets the state words. For the synthetic stochastic model
// S0 is the node's RNG seed; for the fixed adversarial class the ID doubles
// as the implicit-tree position and no extra state is needed; for the list
// substrate S0 is the seed and S1 the element count. Kernels must derive
// children exactly as the corresponding Problem implementation does —
// same arithmetic, same seed derivation — so that the flat planner and the
// interface algorithms produce bit-identical partitions (verified by the
// parity tests in flat_test.go and planner_test.go).
type FlatNode struct {
	// Weight is the node's load, w(p).
	Weight float64
	// ID identifies the node uniquely within a run, exactly as Problem.ID.
	ID uint64
	// S0, S1 are substrate state words interpreted by the Kernel.
	S0, S1 uint64
	// Depth is the node's distance from the root of the bisection tree.
	Depth int32
	// Leaf marks an indivisible node (CanBisect() == false).
	Leaf bool
}

// Kernel computes bisections for a class of flat problems. Implementations
// must be deterministic, must set the children's Depth to parent.Depth+1,
// must return the heavy child first, and must not allocate — the planner's
// zero-allocation guarantee depends on it. Split must not be called on a
// node with Leaf == true.
type Kernel interface {
	Split(n FlatNode) (heavy, light FlatNode)
}

// SyntheticKernel is the flat form of the Synthetic substrate (the paper's
// Section 4 stochastic model): every bisection draws α̂ ~ U[Lo, Hi] from the
// node's seed stream and splits the weight into (1−α̂)·w and α̂·w. State:
// S0 is the node seed, which is also its ID.
type SyntheticKernel struct {
	Lo, Hi float64
}

// SyntheticFlatRoot returns the flat root node matching
// NewSynthetic(w, lo, hi, seed).
func SyntheticFlatRoot(w float64, seed uint64) FlatNode {
	return FlatNode{Weight: w, ID: seed, S0: seed}
}

// Split mirrors Synthetic.Bisect exactly: same RNG stream, same child-seed
// derivation, same floating-point operations.
func (k SyntheticKernel) Split(n FlatNode) (heavy, light FlatNode) {
	var rng xrand.Source
	rng.Reseed(n.S0)
	ahat := rng.InRange(k.Lo, k.Hi)
	heavyW := (1 - ahat) * n.Weight
	lightW := n.Weight - heavyW
	hs, ls := xrand.Mix(n.S0, 1), xrand.Mix(n.S0, 2)
	heavy = FlatNode{Weight: heavyW, ID: hs, S0: hs, Depth: n.Depth + 1}
	light = FlatNode{Weight: lightW, ID: ls, S0: ls, Depth: n.Depth + 1}
	return heavy, light
}

// FixedKernel is the flat form of the Fixed adversarial substrate: every
// bisection splits exactly into (1−α)·w and α·w. State: the ID is the
// root of a mixed derivation chain (root 1, children Mix(id, 1) and
// Mix(id, 2), matching Fixed.Bisect); no extra words are needed. The
// mixed scheme replaced implicit-binary-tree numbering, which overflowed
// uint64 below depth 63 and produced duplicate IDs.
type FixedKernel struct {
	Alpha float64
}

// FixedFlatRoot returns the flat root node matching NewFixed(w, alpha).
func FixedFlatRoot(w float64) FlatNode {
	return FlatNode{Weight: w, ID: 1}
}

// Split mirrors Fixed.Bisect exactly.
func (k FixedKernel) Split(n FlatNode) (heavy, light FlatNode) {
	heavyW := (1 - k.Alpha) * n.Weight
	heavy = FlatNode{Weight: heavyW, ID: xrand.Mix(n.ID, 1), Depth: n.Depth + 1}
	light = FlatNode{Weight: n.Weight - heavyW, ID: xrand.Mix(n.ID, 2), Depth: n.Depth + 1}
	return heavy, light
}

// ListKernel is the flat form of the List substrate: a list of S1 elements
// is bisected around a pivot rank drawn uniformly from the guard window
// [⌈α·n⌉, ⌊(1−α)·n⌋]. State: S0 is the node seed (also its ID), S1 the
// element count.
type ListKernel struct {
	Alpha float64
}

// ListFlatRoot returns the flat root node matching NewList(elems, alpha, seed).
func ListFlatRoot(elems int, alpha float64, seed uint64) FlatNode {
	n := FlatNode{Weight: float64(elems), ID: seed, S0: seed, S1: uint64(elems)}
	n.Leaf = listLeaf(elems, alpha)
	return n
}

// listLeaf reports whether a list of length elems is indivisible under
// guard α, mirroring List.CanBisect.
func listLeaf(elems int, alpha float64) bool {
	lo, hi := listPivotWindow(elems, alpha)
	return !(elems >= 2 && lo <= hi)
}

// listPivotWindow mirrors List.pivotWindow.
func listPivotWindow(length int, alpha float64) (lo, hi int) {
	n := float64(length)
	lo = int(ceilPos(alpha * n))
	hi = int((1 - alpha) * n)
	if lo < 1 {
		lo = 1
	}
	if hi > length-1 {
		hi = length - 1
	}
	return lo, hi
}

// Split mirrors List.Bisect exactly: same pivot window, same RNG stream,
// same child-seed derivation, heavy half first.
func (k ListKernel) Split(n FlatNode) (heavy, light FlatNode) {
	length := int(n.S1)
	lo, hi := listPivotWindow(length, k.Alpha)
	if length < 2 || lo > hi {
		panic("bisect: Split on indivisible list node")
	}
	var rng xrand.Source
	rng.Reseed(n.S0)
	left := lo + rng.Intn(hi-lo+1)
	right := length - left
	as, bs := xrand.Mix(n.S0, 1), xrand.Mix(n.S0, 2)
	a := FlatNode{Weight: float64(left), ID: as, S0: as, S1: uint64(left), Depth: n.Depth + 1, Leaf: listLeaf(left, k.Alpha)}
	b := FlatNode{Weight: float64(right), ID: bs, S0: bs, S1: uint64(right), Depth: n.Depth + 1, Leaf: listLeaf(right, k.Alpha)}
	if left >= right {
		return a, b
	}
	return b, a
}

// ValidateFlatRoot checks the preconditions the planner shares with
// ValidateRoot: a positive, finite root weight.
func ValidateFlatRoot(n FlatNode) error {
	if !(n.Weight > 0) || math.IsInf(n.Weight, 0) {
		return fmt.Errorf("%w (got %v)", ErrBadWeight, n.Weight)
	}
	return nil
}
