// Package bisect defines the abstract problem model of the paper: classes of
// problems with α-bisectors.
//
// A class P of problems with weight function w : P → R+ has α-bisectors
// (0 < α ≤ 1/2) if every problem p ∈ P can be divided efficiently into two
// problems p1, p2 ∈ P with
//
//	w(p1) + w(p2) = w(p)   and   w(p1), w(p2) ∈ [α·w(p), (1−α)·w(p)].
//
// The load-balancing algorithms in internal/core operate exclusively through
// the Problem interface declared here, so any substrate (synthetic weights,
// FE-trees, quadrature regions, search frontiers) plugs in unchanged.
package bisect

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a unit of load that can be bisected. Implementations must be
// deterministic: bisecting the same problem value twice must yield the same
// two children (weights and IDs). That property is what lets the test suite
// verify the paper's Theorem 3 (PHF produces exactly HF's partition).
type Problem interface {
	// Weight returns the load of the problem. It must be positive and
	// finite for any problem reachable by bisection from a valid root.
	Weight() float64

	// CanBisect reports whether Bisect may be called. The paper's abstract
	// model assumes infinite divisibility; concrete substrates (a one-node
	// tree, a one-element list) bottom out, and the algorithms then leave
	// the indivisible subproblem on a single processor.
	CanBisect() bool

	// Bisect splits the problem into two children whose weights sum to the
	// parent weight. Calling Bisect when CanBisect is false panics.
	Bisect() (Problem, Problem)

	// ID returns an identifier unique among all problems reachable in one
	// run. IDs make heap tie-breaking and partition comparison exact.
	ID() uint64
}

// Sentinel errors shared by the algorithm layer.
var (
	// ErrNilProblem is returned when a nil root problem is supplied.
	ErrNilProblem = errors.New("bisect: nil problem")
	// ErrBadWeight is returned when a root problem has a non-positive or
	// non-finite weight.
	ErrBadWeight = errors.New("bisect: problem weight must be positive and finite")
)

// ValidateRoot checks the preconditions every balancing algorithm shares.
func ValidateRoot(p Problem) error {
	if p == nil {
		return ErrNilProblem
	}
	w := p.Weight()
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("%w (got %v)", ErrBadWeight, w)
	}
	return nil
}

// Violation describes one breach of the α-bisector contract found by Check.
type Violation struct {
	ParentID uint64
	Parent   float64
	Child1   float64
	Child2   float64
	Reason   string
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d (w=%g → %g + %g): %s", v.ParentID, v.Parent, v.Child1, v.Child2, v.Reason)
}

// Check explores the bisection tree of p down to maxDepth levels and reports
// every violation of the α-bisector contract: children must sum to the
// parent (within relative tolerance tol) and each child must lie inside
// [α·w, (1−α)·w] (with the same tolerance on the boundaries). A nil result
// means the explored region satisfies the contract.
func Check(p Problem, alpha float64, maxDepth int, tol float64) []Violation {
	if p == nil {
		return []Violation{{Reason: "nil problem"}}
	}
	if tol < 0 {
		tol = 0
	}
	var out []Violation
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		if depth >= maxDepth || !q.CanBisect() {
			return
		}
		w := q.Weight()
		c1, c2 := q.Bisect()
		w1, w2 := c1.Weight(), c2.Weight()
		slack := tol * w
		if math.Abs(w1+w2-w) > slack {
			out = append(out, Violation{q.ID(), w, w1, w2, "children do not sum to parent"})
		}
		lo, hi := alpha*w-slack, (1-alpha)*w+slack
		for _, cw := range []float64{w1, w2} {
			if cw < lo || cw > hi {
				out = append(out, Violation{q.ID(), w, w1, w2,
					fmt.Sprintf("child weight %g outside [%g, %g]", cw, alpha*w, (1-alpha)*w)})
				break
			}
		}
		walk(c1, depth+1)
		walk(c2, depth+1)
	}
	walk(p, 0)
	return out
}

// MaxWeight returns the largest weight among the given subproblems, or 0 for
// an empty slice.
func MaxWeight(ps []Problem) float64 {
	m := 0.0
	for _, p := range ps {
		if w := p.Weight(); w > m {
			m = w
		}
	}
	return m
}

// TotalWeight returns the weight sum of the given subproblems.
func TotalWeight(ps []Problem) float64 {
	t := 0.0
	for _, p := range ps {
		t += p.Weight()
	}
	return t
}

// Ratio returns the paper's quality measure: the maximum subproblem weight
// relative to the ideal per-processor share total/n. It returns NaN when the
// inputs make the measure meaningless.
func Ratio(maxWeight, total float64, n int) float64 {
	if n <= 0 || !(total > 0) {
		return math.NaN()
	}
	return maxWeight / (total / float64(n))
}
