package bisect

import (
	"fmt"

	"bisectlb/internal/xrand"
)

// Synthetic is the paper's stochastic model (Section 4): every bisection
// draws an actual bisection parameter α̂ uniformly at random from [Lo, Hi]
// with 0 < Lo ≤ Hi ≤ 1/2, independently and identically distributed across
// bisections. The light child receives α̂·w, the heavy child (1−α̂)·w.
//
// Determinism: the draw for a node depends only on the node's seed, and the
// children's seeds are derived from the parent seed. Two algorithms that
// bisect the same node therefore observe the same split, which is exactly
// the property the paper's "PHF computes the same partitioning as HF"
// theorem needs in an executable setting.
type Synthetic struct {
	weight float64
	seed   uint64
	depth  int
	lo, hi float64
}

var _ Problem = (*Synthetic)(nil)

// NewSynthetic creates the root of a synthetic problem with total weight w
// and per-bisection parameter α̂ ~ U[lo, hi]. It returns an error for an
// invalid weight or an interval outside 0 < lo ≤ hi ≤ 1/2.
func NewSynthetic(w float64, lo, hi float64, seed uint64) (*Synthetic, error) {
	if !(w > 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadWeight, w)
	}
	if !(lo > 0) || hi < lo || hi > 0.5 {
		return nil, fmt.Errorf("bisect: invalid α̂ interval [%v, %v]; need 0 < lo ≤ hi ≤ 1/2", lo, hi)
	}
	return &Synthetic{weight: w, seed: seed, lo: lo, hi: hi}, nil
}

// MustSynthetic is NewSynthetic that panics on error, for tests and examples.
func MustSynthetic(w float64, lo, hi float64, seed uint64) *Synthetic {
	p, err := NewSynthetic(w, lo, hi, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// RehydrateSynthetic reconstructs an interior node of a synthetic
// bisection tree from its serialised fields (weight, interval, seed,
// depth). It exists for transports that ship subproblems between
// processes (internal/dist): a rehydrated node bisects exactly like the
// original, because splits depend only on the seed.
func RehydrateSynthetic(w, lo, hi float64, seed uint64, depth int) (*Synthetic, error) {
	p, err := NewSynthetic(w, lo, hi, seed)
	if err != nil {
		return nil, err
	}
	if depth < 0 {
		return nil, fmt.Errorf("bisect: negative depth %d", depth)
	}
	p.depth = depth
	return p, nil
}

// Weight returns the problem's load.
func (s *Synthetic) Weight() float64 { return s.weight }

// CanBisect always reports true: the synthetic model is infinitely divisible.
func (s *Synthetic) CanBisect() bool { return true }

// ID returns the node's seed, which uniquely identifies it within a run.
func (s *Synthetic) ID() uint64 { return s.seed }

// Depth returns the node's distance from the root of its bisection history.
func (s *Synthetic) Depth() int { return s.depth }

// Interval returns the α̂ interval the node draws from.
func (s *Synthetic) Interval() (lo, hi float64) { return s.lo, s.hi }

// Bisect splits the problem with a fresh α̂ ~ U[lo, hi]. The first return is
// the heavy child, matching the "assume w.l.o.g. w(p1) ≥ w(p2)" convention
// in the paper's Figures 3 and 4.
func (s *Synthetic) Bisect() (Problem, Problem) {
	rng := xrand.New(s.seed)
	ahat := rng.InRange(s.lo, s.hi)
	heavyW := (1 - ahat) * s.weight
	lightW := s.weight - heavyW
	heavy := &Synthetic{weight: heavyW, seed: xrand.Mix(s.seed, 1), depth: s.depth + 1, lo: s.lo, hi: s.hi}
	light := &Synthetic{weight: lightW, seed: xrand.Mix(s.seed, 2), depth: s.depth + 1, lo: s.lo, hi: s.hi}
	return heavy, light
}

// Fixed is a problem whose every bisection splits exactly (1−α)·w and α·w.
// It realises the adversarial structure behind the worst-case analyses: all
// the imbalance the class permits, at every level.
type Fixed struct {
	weight float64
	alpha  float64
	id     uint64
}

var _ Problem = (*Fixed)(nil)

// NewFixed creates a root problem of weight w that always splits with the
// exact parameter alpha ∈ (0, 1/2].
func NewFixed(w, alpha float64) (*Fixed, error) {
	if !(w > 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadWeight, w)
	}
	if !(alpha > 0) || alpha > 0.5 {
		return nil, fmt.Errorf("bisect: invalid fixed α %v; need 0 < α ≤ 1/2", alpha)
	}
	return &Fixed{weight: w, alpha: alpha, id: 1}, nil
}

// MustFixed is NewFixed that panics on error.
func MustFixed(w, alpha float64) *Fixed {
	p, err := NewFixed(w, alpha)
	if err != nil {
		panic(err)
	}
	return p
}

// Weight returns the problem's load.
func (f *Fixed) Weight() float64 { return f.weight }

// CanBisect always reports true.
func (f *Fixed) CanBisect() bool { return true }

// ID identifies the node uniquely per run: 1 for the root, and mixed
// child derivations Mix(id, 1)/Mix(id, 2) below it, the same scheme the
// synthetic class uses. An earlier implicit-binary-tree numbering (root
// 1, children 2i and 2i+1) overflowed uint64 at bisection depth 63 and
// produced duplicate IDs — reachable with small α and large N, where
// HF's heavy chain exceeds 63 bisections (found by the verify sweep;
// regression-pinned in bisect_test.go).
func (f *Fixed) ID() uint64 { return f.id }

// Alpha returns the fixed split parameter.
func (f *Fixed) Alpha() float64 { return f.alpha }

// Bisect splits deterministically into (1−α)·w and α·w.
func (f *Fixed) Bisect() (Problem, Problem) {
	heavy := &Fixed{weight: (1 - f.alpha) * f.weight, alpha: f.alpha, id: xrand.Mix(f.id, 1)}
	light := &Fixed{weight: f.weight - heavy.weight, alpha: f.alpha, id: xrand.Mix(f.id, 2)}
	return heavy, light
}
