package bisect

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/xrand"
)

func TestValidateRoot(t *testing.T) {
	if err := ValidateRoot(nil); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := MustSynthetic(1, 0.1, 0.5, 1)
	if err := ValidateRoot(p); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestSyntheticConstruction(t *testing.T) {
	cases := []struct {
		w, lo, hi float64
		ok        bool
	}{
		{1, 0.1, 0.5, true},
		{1, 0.5, 0.5, true},
		{1, 0.01, 0.01, true},
		{0, 0.1, 0.5, false},
		{-2, 0.1, 0.5, false},
		{1, 0, 0.5, false},
		{1, 0.3, 0.2, false},
		{1, 0.1, 0.6, false},
	}
	for _, c := range cases {
		_, err := NewSynthetic(c.w, c.lo, c.hi, 1)
		if (err == nil) != c.ok {
			t.Errorf("NewSynthetic(%v, %v, %v): err=%v, want ok=%v", c.w, c.lo, c.hi, err, c.ok)
		}
	}
}

func TestSyntheticBisectConserves(t *testing.T) {
	p := MustSynthetic(100, 0.1, 0.5, 7)
	c1, c2 := p.Bisect()
	if math.Abs(c1.Weight()+c2.Weight()-100) > 1e-9 {
		t.Fatalf("weights %v + %v != 100", c1.Weight(), c2.Weight())
	}
	if c1.Weight() < c2.Weight() {
		t.Fatal("heavy child must come first")
	}
}

func TestSyntheticBisectDeterministic(t *testing.T) {
	p := MustSynthetic(100, 0.1, 0.5, 7)
	a1, a2 := p.Bisect()
	b1, b2 := p.Bisect()
	if a1.Weight() != b1.Weight() || a2.Weight() != b2.Weight() {
		t.Fatal("repeated bisection of the same node differs")
	}
	if a1.ID() != b1.ID() || a2.ID() != b2.ID() {
		t.Fatal("repeated bisection produced different IDs")
	}
}

func TestSyntheticDistinctIDs(t *testing.T) {
	p := MustSynthetic(1, 0.1, 0.5, 7)
	seen := map[uint64]bool{p.ID(): true}
	var walk func(q Problem, depth int)
	walk = func(q Problem, depth int) {
		if depth == 0 {
			return
		}
		c1, c2 := q.Bisect()
		for _, c := range []Problem{c1, c2} {
			if seen[c.ID()] {
				t.Fatalf("duplicate ID %d", c.ID())
			}
			seen[c.ID()] = true
			walk(c, depth-1)
		}
	}
	walk(p, 10)
}

func TestSyntheticSatisfiesAlphaBisectorContract(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		lo := rng.InRange(0.01, 0.49)
		hi := rng.InRange(lo, 0.5)
		p := MustSynthetic(1+rng.Float64()*1000, lo, hi, seed)
		return len(Check(p, lo, 8, 1e-9)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	// A synthetic with α̂ up to 0.5, checked against a stricter α=0.4,
	// must eventually violate the child-range condition.
	p := MustSynthetic(1, 0.05, 0.5, 3)
	if v := Check(p, 0.45, 12, 1e-9); len(v) == 0 {
		t.Fatal("Check failed to flag out-of-range children")
	}
	if v := Check(nil, 0.3, 3, 0); len(v) == 0 {
		t.Fatal("Check accepted nil problem")
	}
}

func TestFixedBisect(t *testing.T) {
	p := MustFixed(1, 0.3)
	c1, c2 := p.Bisect()
	if math.Abs(c1.Weight()-0.7) > 1e-12 || math.Abs(c2.Weight()-0.3) > 1e-12 {
		t.Fatalf("fixed split got %v/%v", c1.Weight(), c2.Weight())
	}
	if len(Check(p, 0.3, 10, 1e-9)) != 0 {
		t.Fatal("fixed problem violates its own α")
	}
}

func TestFixedConstruction(t *testing.T) {
	if _, err := NewFixed(1, 0); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := NewFixed(1, 0.6); err == nil {
		t.Fatal("α=0.6 accepted")
	}
	if _, err := NewFixed(0, 0.3); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestFixedIDsUnique(t *testing.T) {
	p := MustFixed(1, 0.25)
	seen := map[uint64]bool{}
	var walk func(q Problem, d int)
	walk = func(q Problem, d int) {
		if seen[q.ID()] {
			t.Fatalf("duplicate fixed ID %d", q.ID())
		}
		seen[q.ID()] = true
		if d == 0 {
			return
		}
		c1, c2 := q.Bisect()
		walk(c1, d-1)
		walk(c2, d-1)
	}
	walk(p, 8)
}

func TestListBisectConservesLength(t *testing.T) {
	p := MustList(1000, 0.2, 5)
	c1, c2 := p.Bisect()
	l1, l2 := c1.(*List), c2.(*List)
	if l1.Len()+l2.Len() != 1000 {
		t.Fatalf("lengths %d + %d != 1000", l1.Len(), l2.Len())
	}
	if l1.Len() < l2.Len() {
		t.Fatal("heavy half must come first")
	}
}

func TestListGuardRespectsAlpha(t *testing.T) {
	p := MustList(400, 0.25, 9)
	if v := Check(p, 0.25, 6, 1e-9); len(v) != 0 {
		// Integer rounding can place one element across the exact boundary;
		// allow a one-element tolerance before failing.
		for _, viol := range v {
			t.Logf("violation: %v", viol)
		}
		t.Fatal("guarded list violates α-bisector contract")
	}
}

func TestListIndivisible(t *testing.T) {
	p := MustList(1, 0.3, 1)
	if p.CanBisect() {
		t.Fatal("single-element list claims divisibility")
	}
	if !panics(func() { p.Bisect() }) {
		t.Fatal("Bisect on indivisible list should panic")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return
}

func TestListConstruction(t *testing.T) {
	if _, err := NewList(0, 0.3, 1); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := NewList(10, 0, 1); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := NewList(10, 0.7, 1); err == nil {
		t.Fatal("α=0.7 accepted")
	}
}

func TestHelpers(t *testing.T) {
	a := MustSynthetic(3, 0.1, 0.5, 1)
	b := MustSynthetic(5, 0.1, 0.5, 2)
	ps := []Problem{a, b}
	if MaxWeight(ps) != 5 {
		t.Fatalf("MaxWeight = %v", MaxWeight(ps))
	}
	if TotalWeight(ps) != 8 {
		t.Fatalf("TotalWeight = %v", TotalWeight(ps))
	}
	if MaxWeight(nil) != 0 || TotalWeight(nil) != 0 {
		t.Fatal("empty helpers wrong")
	}
	if got := Ratio(2, 8, 4); got != 1 {
		t.Fatalf("Ratio = %v, want 1", got)
	}
	if !math.IsNaN(Ratio(1, 0, 4)) || !math.IsNaN(Ratio(1, 1, 0)) {
		t.Fatal("degenerate Ratio should be NaN")
	}
}

func TestSyntheticAlphaHatDistribution(t *testing.T) {
	// Empirically verify α̂ ~ U[0.1, 0.5] across many root bisections.
	s := NewSampleish()
	for seed := uint64(0); seed < 2000; seed++ {
		p := MustSynthetic(1, 0.1, 0.5, seed)
		_, c2 := p.Bisect()
		s.add(c2.Weight()) // light fraction = α̂
	}
	mean := s.sum / float64(s.n)
	if math.Abs(mean-0.3) > 0.01 {
		t.Fatalf("α̂ mean %v, want ≈0.3", mean)
	}
	if s.min < 0.1 || s.max > 0.5 {
		t.Fatalf("α̂ outside [0.1, 0.5]: min=%v max=%v", s.min, s.max)
	}
}

// NewSampleish is a minimal accumulator local to this test file, avoiding an
// import cycle with internal/stats (which imports nothing from here, but
// keeping leaf packages dependency-free keeps the build graph clean).
type sampleish struct {
	n        int
	sum      float64
	min, max float64
}

func NewSampleish() *sampleish { return &sampleish{min: math.Inf(1), max: math.Inf(-1)} }

func (s *sampleish) add(v float64) {
	s.n++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// TestFixedDeepChainIDsUnique pins the fix for a real bug found by the
// verify sweep: the original implicit-binary-tree IDs (root 1, children
// 2i and 2i+1) overflow uint64 at bisection depth 63, so a heavy chain
// longer than 63 bisections — which HF produces on the fixed class for
// small α and large N — yielded duplicate part IDs. IDs are now derived
// by mixing, which is depth-unbounded.
func TestFixedDeepChainIDsUnique(t *testing.T) {
	p := Problem(MustFixed(1, 0.05))
	seen := map[uint64]bool{1: false}
	for d := 0; d < 200; d++ {
		heavy, light := p.Bisect()
		for _, c := range []Problem{heavy, light} {
			if _, dup := seen[c.ID()]; dup {
				t.Fatalf("duplicate fixed ID %d at depth %d", c.ID(), d+1)
			}
			seen[c.ID()] = true
		}
		p = heavy
	}
}
