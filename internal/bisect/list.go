package bisect

import (
	"fmt"

	"bisectlb/internal/xrand"
)

// List models the paper's concrete justification for the stochastic model:
// "problems are represented by lists of elements taken from an ordered set,
// and a list is bisected by choosing a random pivot element and partitioning
// the list into those elements that are smaller than the pivot and those
// that are larger". The weight of a list problem is its element count.
//
// An unrestricted random pivot gives no α-bisector guarantee, so List
// supports a guard rank window: the pivot rank is drawn uniformly from
// [⌈α·n⌉, ⌊(1−α)·n⌋], which makes the class an α-bisector class while
// keeping the split fraction (conditionally) uniform — the distribution the
// paper assumes.
type List struct {
	length int
	alpha  float64
	seed   uint64
}

var _ Problem = (*List)(nil)

// NewList creates a list problem with n elements and pivot guard α.
// α = 0 is rejected because a zero-width guard can produce empty halves,
// which would violate the positive-weight contract.
func NewList(n int, alpha float64, seed uint64) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("bisect: list length %d must be ≥ 1", n)
	}
	if !(alpha > 0) || alpha > 0.5 {
		return nil, fmt.Errorf("bisect: invalid list guard α %v; need 0 < α ≤ 1/2", alpha)
	}
	return &List{length: n, alpha: alpha, seed: seed}, nil
}

// MustList is NewList that panics on error.
func MustList(n int, alpha float64, seed uint64) *List {
	p, err := NewList(n, alpha, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Weight returns the element count as the problem's load.
func (l *List) Weight() float64 { return float64(l.length) }

// Len returns the element count.
func (l *List) Len() int { return l.length }

// CanBisect reports whether the list still has at least two elements and the
// guard window admits a split with both halves non-empty.
func (l *List) CanBisect() bool {
	lo, hi := l.pivotWindow()
	return l.length >= 2 && lo <= hi
}

// ID returns the node's seed, unique within a run.
func (l *List) ID() uint64 { return l.seed }

// pivotWindow returns the inclusive range of admissible left-half sizes.
func (l *List) pivotWindow() (lo, hi int) {
	n := float64(l.length)
	lo = int(ceilPos(l.alpha * n))
	hi = int((1 - l.alpha) * n)
	if lo < 1 {
		lo = 1
	}
	if hi > l.length-1 {
		hi = l.length - 1
	}
	return lo, hi
}

func ceilPos(x float64) float64 {
	i := float64(int(x))
	if i < x {
		return i + 1
	}
	return i
}

// Bisect partitions the list around a pivot rank drawn uniformly from the
// guard window. The heavier half is returned first.
func (l *List) Bisect() (Problem, Problem) {
	lo, hi := l.pivotWindow()
	if l.length < 2 || lo > hi {
		panic("bisect: Bisect on indivisible list")
	}
	rng := xrand.New(l.seed)
	left := lo + rng.Intn(hi-lo+1)
	right := l.length - left
	a := &List{length: left, alpha: l.alpha, seed: xrand.Mix(l.seed, 1)}
	b := &List{length: right, alpha: l.alpha, seed: xrand.Mix(l.seed, 2)}
	if a.length >= b.length {
		return a, b
	}
	return b, a
}
