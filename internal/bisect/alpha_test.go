package bisect

import (
	"math"
	"sync"
	"testing"
)

func TestAlphaRecorderNilSafe(t *testing.T) {
	var r *AlphaRecorder
	r.Record(0, 1, 0.5, 0.5) // must not panic
	r.Reset()
	if r.Count() != 0 || r.Min() != 0 || r.Mean() != 0 || r.Levels() != nil {
		t.Fatal("nil recorder must report zero stats")
	}
}

func TestAlphaRecorderStats(t *testing.T) {
	var r AlphaRecorder
	if r.Min() != 0 || r.Mean() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	r.Record(0, 10, 4, 6)    // α̂ = 0.4
	r.Record(1, 6, 1.2, 4.8) // α̂ = 0.2
	r.Record(1, 4, 2, 2)     // α̂ = 0.5
	if r.Count() != 3 {
		t.Fatalf("count = %d, want 3", r.Count())
	}
	if got := r.Min(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("min = %v, want 0.2", got)
	}
	if got := r.Mean(); math.Abs(got-(0.4+0.2+0.5)/3) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	lv := r.Levels()
	if len(lv) != 2 {
		t.Fatalf("levels = %+v, want 2 entries", lv)
	}
	if lv[0].Level != 0 || lv[0].Count != 1 || math.Abs(lv[0].Min-0.4) > 1e-12 {
		t.Fatalf("level 0 = %+v", lv[0])
	}
	if lv[1].Level != 1 || lv[1].Count != 2 || math.Abs(lv[1].Min-0.2) > 1e-12 ||
		math.Abs(lv[1].Mean-0.35) > 1e-12 {
		t.Fatalf("level 1 = %+v", lv[1])
	}
	r.Reset()
	if r.Count() != 0 || len(r.Levels()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestAlphaRecorderIgnoresInvalid(t *testing.T) {
	var r AlphaRecorder
	r.Record(0, 0, 1, 1)
	r.Record(0, -1, 0.5, 0.5)
	r.Record(0, math.Inf(1), 1, 1)
	r.Record(0, 1, 0, 1)
	r.Record(0, 1, 1, math.NaN()) // NaN child: !(w2 > 0)
	if r.Count() != 0 {
		t.Fatalf("invalid inputs were recorded: count = %d", r.Count())
	}
	r.Record(-5, 2, 1, 1) // negative level clamps to 0
	if lv := r.Levels(); len(lv) != 1 || lv[0].Level != 0 {
		t.Fatalf("negative level not clamped: %+v", lv)
	}
}

func TestAlphaRecorderConcurrent(t *testing.T) {
	var r AlphaRecorder
	var wg sync.WaitGroup
	const g, per = 8, 200
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(lvl int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Record(lvl, 10, 3, 7)
			}
		}(i % 4)
	}
	wg.Wait()
	if r.Count() != g*per {
		t.Fatalf("count = %d, want %d", r.Count(), g*per)
	}
	if math.Abs(r.Min()-0.3) > 1e-12 || math.Abs(r.Mean()-0.3) > 1e-12 {
		t.Fatalf("min/mean drifted: %v %v", r.Min(), r.Mean())
	}
}
