package quadrature

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
)

func TestNewIntegrandValidation(t *testing.T) {
	if _, err := NewIntegrand(0, nil, 1, 0.1, 1, 0); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := NewIntegrand(2, [][]float64{{0.5}}, 1, 0.1, 1, 0); err == nil {
		t.Fatal("wrong peak dimension accepted")
	}
	if _, err := NewIntegrand(2, nil, 1, 0, 1, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewIntegrand(2, nil, 1, 0.1, 0, 0); err == nil {
		t.Fatal("background=0 accepted")
	}
}

func TestDensityPositiveAndPeaked(t *testing.T) {
	ig := DefaultIntegrand(0)
	atPeak := ig.Density([]float64{0.2, 0.8})
	away := ig.Density([]float64{0.99, 0.01})
	if atPeak <= away {
		t.Fatalf("density not peaked: %v at peak vs %v away", atPeak, away)
	}
	if away <= 0 {
		t.Fatal("density must be positive everywhere")
	}
}

func TestRootBoxValidation(t *testing.T) {
	ig := DefaultIntegrand(0)
	if _, err := NewRootBox(nil, SplitMedian, 0.01); err == nil {
		t.Fatal("nil integrand accepted")
	}
	if _, err := NewRootBox(ig, SplitMedian, 0); err == nil {
		t.Fatal("minWidth=0 accepted")
	}
	if _, err := NewRootBox(ig, SplitMedian, 1); err == nil {
		t.Fatal("minWidth=1 accepted")
	}
}

func TestBoxWeightConservation(t *testing.T) {
	for _, mode := range []SplitMode{SplitMedian, SplitMidpoint} {
		b := MustRootBox(DefaultIntegrand(1), mode, 1e-4)
		var walk func(q bisect.Problem, depth int)
		walk = func(q bisect.Problem, depth int) {
			if depth == 0 || !q.CanBisect() {
				return
			}
			c1, c2 := q.Bisect()
			if math.Abs(c1.Weight()+c2.Weight()-q.Weight()) > 1e-9*q.Weight() {
				t.Fatalf("mode %v: %v + %v != %v", mode, c1.Weight(), c2.Weight(), q.Weight())
			}
			if c1.Weight() < c2.Weight() {
				t.Fatalf("mode %v: heavy child must come first", mode)
			}
			walk(c1, depth-1)
			walk(c2, depth-1)
		}
		walk(b, 7)
	}
}

func TestMedianSplitBetterBalancedThanMidpoint(t *testing.T) {
	// Near a density peak the weighted-median cut must produce a split
	// fraction much closer to 1/2 than the geometric midpoint cut. Compare
	// the worst fraction over a few levels.
	worst := func(mode SplitMode) float64 {
		b := MustRootBox(DefaultIntegrand(2), mode, 1e-4)
		w := 0.5
		var walk func(q bisect.Problem, depth int)
		walk = func(q bisect.Problem, depth int) {
			if depth == 0 || !q.CanBisect() {
				return
			}
			c1, c2 := q.Bisect()
			if f := c2.Weight() / q.Weight(); f < w {
				w = f
			}
			walk(c1, depth-1)
			walk(c2, depth-1)
		}
		walk(b, 6)
		return w
	}
	median, midpoint := worst(SplitMedian), worst(SplitMidpoint)
	if median <= midpoint {
		t.Fatalf("median worst fraction %v not better than midpoint %v", median, midpoint)
	}
	if median < 0.3 {
		t.Fatalf("median split worst fraction %v below declared α=0.3", median)
	}
}

func TestBoxIDsContentDerived(t *testing.T) {
	b := MustRootBox(DefaultIntegrand(3), SplitMedian, 1e-4)
	a1, a2 := b.Bisect()
	b1, b2 := b.Bisect()
	if a1.ID() != b1.ID() || a2.ID() != b2.ID() {
		t.Fatal("repeated bisection changed IDs")
	}
	if a1.ID() == a2.ID() || a1.ID() == b.ID() {
		t.Fatal("IDs collide")
	}
}

func TestBoxIndivisibleAtMinWidth(t *testing.T) {
	b := MustRootBox(DefaultIntegrand(4), SplitMidpoint, 0.2)
	// Repeatedly bisect the first child until indivisible.
	var q bisect.Problem = b
	for i := 0; i < 20 && q.CanBisect(); i++ {
		q, _ = q.Bisect()
	}
	if q.CanBisect() {
		t.Fatal("box never became indivisible")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bisect on indivisible box did not panic")
			}
		}()
		q.Bisect()
	}()
}

func TestBoxBoundsAccessors(t *testing.T) {
	b := MustRootBox(DefaultIntegrand(5), SplitMedian, 1e-3)
	lo, hi := b.Bounds()
	if len(lo) != 2 || len(hi) != 2 || lo[0] != 0 || hi[1] != 1 {
		t.Fatalf("bounds wrong: %v %v", lo, hi)
	}
	// Mutating copies must not affect the box.
	lo[0] = 0.5
	lo2, _ := b.Bounds()
	if lo2[0] != 0 {
		t.Fatal("Bounds returned aliasing slices")
	}
}

func TestHighDimensionalBox(t *testing.T) {
	ig, err := NewIntegrand(5, [][]float64{{0.1, 0.2, 0.3, 0.4, 0.5}}, 10, 0.05, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b := MustRootBox(ig, SplitMedian, 1e-3)
	c1, c2 := b.Bisect()
	if math.Abs(c1.Weight()+c2.Weight()-b.Weight()) > 1e-9*b.Weight() {
		t.Fatal("5-D weights not conserved")
	}
}

func TestAlphaContractWithGuard(t *testing.T) {
	// The median splitter should satisfy a 0.3-bisector contract over the
	// explored prefix of the tree.
	b := MustRootBox(DefaultIntegrand(6), SplitMedian, 1e-4)
	if v := bisect.Check(b, 0.3, 6, 1e-9); len(v) != 0 {
		t.Fatalf("median splitter violates α=0.3: %v", v[0])
	}
}

func TestOscillatoryIntegrand(t *testing.T) {
	ig, err := OscillatoryIntegrand(2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Difficulty along the diagonal must exceed off-diagonal corners.
	onDiag := ig.Density([]float64{0.4, 0.4})
	offDiag := ig.Density([]float64{0.95, 0.05})
	if onDiag <= offDiag {
		t.Fatalf("diagonal ridge missing: %v vs %v", onDiag, offDiag)
	}
	if _, err := OscillatoryIntegrand(2, 0, 1); err == nil {
		t.Fatal("zero frequency accepted")
	}
	b := MustRootBox(ig, SplitMedian, 1e-4)
	c1, c2 := b.Bisect()
	if math.Abs(c1.Weight()+c2.Weight()-b.Weight()) > 1e-9*b.Weight() {
		t.Fatal("oscillatory weights not conserved")
	}
}

func TestEdgeSingularIntegrand(t *testing.T) {
	ig, err := EdgeSingularIntegrand(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	nearEdge := ig.Density([]float64{0.01, 0.5})
	farEdge := ig.Density([]float64{0.99, 0.5})
	if nearEdge <= farEdge {
		t.Fatalf("edge layer missing: %v vs %v", nearEdge, farEdge)
	}
	// Median splitting should carve thinner slabs toward the hard face:
	// after two levels the box containing the edge must be smaller in x0.
	b := MustRootBox(ig, SplitMedian, 1e-4)
	heavy, _ := b.Bisect()
	lo, hi := heavy.(*Box).Bounds()
	if !(lo[0] == 0 && hi[0] < 0.51) {
		t.Fatalf("heavy half does not hug the singular face: [%v, %v]", lo[0], hi[0])
	}
}
