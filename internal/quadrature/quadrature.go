// Package quadrature provides the multi-dimensional adaptive numerical
// quadrature substrate the paper lists among the applications of
// bisection-based load balancing (ref [4], Bonk's adaptive quadrature).
//
// A problem is an axis-aligned box together with an integrand difficulty
// model; its weight is the estimated adaptive-quadrature work for the box
// (the integral of a local difficulty density). Bisecting a box cuts it
// with an axis-aligned plane placed at the weighted median of the density
// along the box's longest axis, so both halves carry close to half the
// work — a naturally good bisector. A midpoint-splitting mode is provided
// as the deliberately worse bisector for comparison experiments.
//
// Substitution note (DESIGN.md §4): child weights are estimated by
// deterministic midpoint sampling and then normalised to sum exactly to the
// parent weight, preserving the additive-weight contract of Definition 1
// while keeping the difficulty estimate realistic.
package quadrature

import (
	"fmt"
	"math"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// Integrand describes the difficulty density g(x) ≥ 0 over [0,1]^d. The
// estimated work for a box is ∫_box g.
type Integrand struct {
	// Dim is the dimensionality d ≥ 1.
	Dim int
	// Peaks are points of concentrated difficulty (e.g. integrable
	// singularities); each contributes amplitude/(eps + |x−p|²).
	Peaks [][]float64
	// Amplitude and Eps control peak strength and sharpness.
	Amplitude float64
	Eps       float64
	// Background is the smooth base density.
	Background float64
	// salt folds the integrand identity into problem IDs.
	salt uint64
}

// NewIntegrand validates and returns an integrand model.
func NewIntegrand(dim int, peaks [][]float64, amplitude, eps, background float64, seed uint64) (*Integrand, error) {
	if dim < 1 {
		return nil, fmt.Errorf("quadrature: dimension %d must be ≥ 1", dim)
	}
	for _, p := range peaks {
		if len(p) != dim {
			return nil, fmt.Errorf("quadrature: peak %v has wrong dimension", p)
		}
	}
	if !(eps > 0) || amplitude < 0 || !(background > 0) {
		return nil, fmt.Errorf("quadrature: need eps > 0, amplitude ≥ 0, background > 0")
	}
	return &Integrand{
		Dim: dim, Peaks: peaks, Amplitude: amplitude, Eps: eps,
		Background: background, salt: xrand.Mix(seed, 0x9ad),
	}, nil
}

// DefaultIntegrand is a 2-D model with two off-centre peaks, resembling the
// corner singularities of the FEM examples.
func DefaultIntegrand(seed uint64) *Integrand {
	ig, err := NewIntegrand(2,
		[][]float64{{0.2, 0.8}, {0.7, 0.3}},
		50, 0.01, 1, seed)
	if err != nil {
		panic(err)
	}
	return ig
}

// OscillatoryIntegrand models a high-frequency oscillatory integrand whose
// quadrature difficulty is uniform plus a ridge along the diagonal — a
// second canonical shape from adaptive-quadrature practice. Frequency
// controls how sharply the ridge concentrates.
func OscillatoryIntegrand(dim int, frequency float64, seed uint64) (*Integrand, error) {
	if frequency <= 0 {
		return nil, fmt.Errorf("quadrature: frequency %v must be positive", frequency)
	}
	// Realised as a chain of peaks along the main diagonal, spaced by
	// 1/frequency; the generic peak machinery then applies unchanged.
	var peaks [][]float64
	count := int(frequency)
	if count < 1 {
		count = 1
	}
	if count > 16 {
		count = 16
	}
	for k := 1; k <= count; k++ {
		p := make([]float64, dim)
		for i := range p {
			p[i] = float64(k) / float64(count+1)
		}
		peaks = append(peaks, p)
	}
	return NewIntegrand(dim, peaks, 10, 0.02, 1, seed)
}

// EdgeSingularIntegrand concentrates difficulty along the x₀ = 0 face,
// modelling boundary-layer integrands. It is built from peaks spread along
// that face.
func EdgeSingularIntegrand(dim int, seed uint64) (*Integrand, error) {
	var peaks [][]float64
	for k := 1; k <= 5; k++ {
		p := make([]float64, dim)
		for i := 1; i < dim; i++ {
			p[i] = float64(k) / 6
		}
		peaks = append(peaks, p)
	}
	return NewIntegrand(dim, peaks, 30, 0.02, 1, seed)
}

// Density evaluates g at x.
func (ig *Integrand) Density(x []float64) float64 {
	g := ig.Background
	for _, p := range ig.Peaks {
		d2 := 0.0
		for i := range p {
			d := x[i] - p[i]
			d2 += d * d
		}
		g += ig.Amplitude / (ig.Eps + d2)
	}
	return g
}

// SplitMode selects the bisection strategy for boxes.
type SplitMode int

const (
	// SplitMedian cuts at the weighted median of the density along the
	// longest axis — the "good bisector".
	SplitMedian SplitMode = iota
	// SplitMidpoint cuts at the geometric midpoint — a weaker bisector
	// whose α̂ degrades near peaks; used in comparison experiments.
	SplitMidpoint
)

// samplesPerAxis is the deterministic midpoint-rule resolution used for
// weight estimation. 8^2 = 64 evaluations per 2-D box keeps estimates
// stable without dominating run time.
const samplesPerAxis = 8

// Box is an axis-aligned sub-box of the unit cube with its estimated work.
// Box implements bisect.Problem; its identity derives from its bounds, so
// every algorithm bisecting the same box sees identical children.
type Box struct {
	ig       *Integrand
	lo, hi   []float64
	weight   float64
	mode     SplitMode
	minWidth float64
	id       uint64
}

var _ bisect.Problem = (*Box)(nil)

// NewRootBox returns the unit cube with its estimated total work.
// minWidth > 0 bounds how thin a box may become before it is indivisible.
func NewRootBox(ig *Integrand, mode SplitMode, minWidth float64) (*Box, error) {
	if ig == nil {
		return nil, fmt.Errorf("quadrature: nil integrand")
	}
	if !(minWidth > 0) || minWidth >= 1 {
		return nil, fmt.Errorf("quadrature: minWidth %v outside (0, 1)", minWidth)
	}
	lo := make([]float64, ig.Dim)
	hi := make([]float64, ig.Dim)
	for i := range hi {
		hi[i] = 1
	}
	b := &Box{ig: ig, lo: lo, hi: hi, mode: mode, minWidth: minWidth}
	b.weight = b.estimate()
	b.id = b.computeID()
	return b, nil
}

// MustRootBox is NewRootBox that panics on error.
func MustRootBox(ig *Integrand, mode SplitMode, minWidth float64) *Box {
	b, err := NewRootBox(ig, mode, minWidth)
	if err != nil {
		panic(err)
	}
	return b
}

// estimate integrates the density over the box with a midpoint rule on a
// fixed samplesPerAxis^d grid (capped grid for high dimensions).
func (b *Box) estimate() float64 {
	d := b.ig.Dim
	per := samplesPerAxis
	if d > 3 {
		per = 3 // keep sample counts bounded in high dimensions
	}
	x := make([]float64, d)
	vol := 1.0
	for i := range b.lo {
		vol *= b.hi[i] - b.lo[i]
	}
	total := 0.0
	n := 1
	for i := 0; i < d; i++ {
		n *= per
	}
	for k := 0; k < n; k++ {
		rem := k
		for i := 0; i < d; i++ {
			cell := rem % per
			rem /= per
			frac := (float64(cell) + 0.5) / float64(per)
			x[i] = b.lo[i] + frac*(b.hi[i]-b.lo[i])
		}
		total += b.ig.Density(x)
	}
	return vol * total / float64(n)
}

func (b *Box) computeID() uint64 {
	h := b.ig.salt
	for i := range b.lo {
		h = xrand.Mix(h, math.Float64bits(b.lo[i]))
		h = xrand.Mix(h, math.Float64bits(b.hi[i]))
	}
	return h
}

// Weight returns the box's estimated quadrature work.
func (b *Box) Weight() float64 { return b.weight }

// ID returns the bounds-derived identifier.
func (b *Box) ID() uint64 { return b.id }

// Bounds returns copies of the box bounds.
func (b *Box) Bounds() (lo, hi []float64) {
	return append([]float64(nil), b.lo...), append([]float64(nil), b.hi...)
}

// longestAxis returns the axis of maximal extent (smallest index on ties).
func (b *Box) longestAxis() int {
	best, bestExt := 0, b.hi[0]-b.lo[0]
	for i := 1; i < len(b.lo); i++ {
		if ext := b.hi[i] - b.lo[i]; ext > bestExt {
			best, bestExt = i, ext
		}
	}
	return best
}

// CanBisect reports whether the longest axis still exceeds the width floor.
func (b *Box) CanBisect() bool {
	ax := b.longestAxis()
	return b.hi[ax]-b.lo[ax] > 2*b.minWidth
}

// Bisect cuts the box along its longest axis. In SplitMedian mode the cut
// sits at the weighted median of the 1-D marginal density (clamped so both
// halves keep at least minWidth); in SplitMidpoint mode at the centre.
// Child work estimates are normalised to sum exactly to the parent weight.
func (b *Box) Bisect() (bisect.Problem, bisect.Problem) {
	if !b.CanBisect() {
		panic("quadrature: Bisect on indivisible box")
	}
	ax := b.longestAxis()
	var cut float64
	if b.mode == SplitMidpoint {
		cut = (b.lo[ax] + b.hi[ax]) / 2
	} else {
		cut = b.medianAlong(ax)
	}
	// Clamp so no degenerate slivers appear.
	min := b.lo[ax] + b.minWidth
	max := b.hi[ax] - b.minWidth
	if cut < min {
		cut = min
	}
	if cut > max {
		cut = max
	}
	left := b.child(ax, b.lo[ax], cut)
	right := b.child(ax, cut, b.hi[ax])
	// Normalise: the midpoint-rule estimates of the halves do not add up
	// exactly to the parent's estimate; scale them so Definition 1's
	// additivity holds exactly.
	sum := left.weight + right.weight
	left.weight = b.weight * (left.weight / sum)
	right.weight = b.weight - left.weight
	if left.weight >= right.weight {
		return left, right
	}
	return right, left
}

func (b *Box) child(ax int, lo, hi float64) *Box {
	c := &Box{
		ig:       b.ig,
		lo:       append([]float64(nil), b.lo...),
		hi:       append([]float64(nil), b.hi...),
		mode:     b.mode,
		minWidth: b.minWidth,
	}
	c.lo[ax], c.hi[ax] = lo, hi
	c.weight = c.estimate()
	c.id = c.computeID()
	return c
}

// medianAlong locates the coordinate where the cumulative marginal density
// along axis ax reaches half the box's mass, via sampling and linear
// interpolation.
func (b *Box) medianAlong(ax int) float64 {
	const slices = 32
	masses := make([]float64, slices)
	total := 0.0
	for s := 0; s < slices; s++ {
		lo := b.lo[ax] + float64(s)/slices*(b.hi[ax]-b.lo[ax])
		hi := b.lo[ax] + float64(s+1)/slices*(b.hi[ax]-b.lo[ax])
		m := b.sliceMass(ax, lo, hi)
		masses[s] = m
		total += m
	}
	half := total / 2
	run := 0.0
	for s := 0; s < slices; s++ {
		if run+masses[s] >= half {
			frac := 0.5
			if masses[s] > 0 {
				frac = (half - run) / masses[s]
			}
			return b.lo[ax] + (float64(s)+frac)/slices*(b.hi[ax]-b.lo[ax])
		}
		run += masses[s]
	}
	return (b.lo[ax] + b.hi[ax]) / 2
}

// sliceMass estimates the density mass of the sub-box with axis ax
// restricted to [lo, hi], using a coarse midpoint rule.
func (b *Box) sliceMass(ax int, lo, hi float64) float64 {
	d := b.ig.Dim
	per := 4
	x := make([]float64, d)
	n := 1
	for i := 0; i < d; i++ {
		n *= per
	}
	total := 0.0
	for k := 0; k < n; k++ {
		rem := k
		for i := 0; i < d; i++ {
			cell := rem % per
			rem /= per
			frac := (float64(cell) + 0.5) / float64(per)
			if i == ax {
				x[i] = lo + frac*(hi-lo)
			} else {
				x[i] = b.lo[i] + frac*(b.hi[i]-b.lo[i])
			}
		}
		total += b.ig.Density(x)
	}
	vol := hi - lo
	for i := 0; i < d; i++ {
		if i != ax {
			vol *= b.hi[i] - b.lo[i]
		}
	}
	return vol * total / float64(n)
}
