package netcoll

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// cluster starts k wired members and returns them with a cleanup.
func cluster(t *testing.T, k int) []*Member {
	t.Helper()
	members := make([]*Member, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		m, err := NewMember(i, k, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		m.SetTimeout(10 * time.Second)
		members[i] = m
		addrs[i] = m.Addr()
	}
	for _, m := range members {
		if err := m.Start(addrs); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.Close()
		}
	})
	return members
}

// spawn runs body on every member concurrently and collects errors.
func spawn(t *testing.T, members []*Member, body func(m *Member) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			errs[i] = body(m)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
}

func TestNewMemberValidation(t *testing.T) {
	if _, err := NewMember(-1, 4, "127.0.0.1:0"); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := NewMember(4, 4, "127.0.0.1:0"); err == nil {
		t.Fatal("id ≥ k accepted")
	}
	m, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Start([]string{"only-one"}); err == nil {
		t.Fatal("wrong address count accepted")
	}
}

func TestBarrier(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 8} {
		members := cluster(t, k)
		for round := 0; round < 5; round++ {
			spawn(t, members, func(m *Member) error { return m.Barrier() })
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	members := cluster(t, 6)
	results := make([]float64, 6)
	spawn(t, members, func(m *Member) error {
		v, err := m.AllReduceMaxFloat64(float64(m.id * m.id))
		results[m.id] = v
		return err
	})
	for id, v := range results {
		if v != 25 {
			t.Fatalf("member %d got max %v", id, v)
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	members := cluster(t, 5)
	results := make([]int64, 5)
	spawn(t, members, func(m *Member) error {
		v, err := m.AllReduceSumInt64(int64(m.id + 1))
		results[m.id] = v
		return err
	})
	for id, v := range results {
		if v != 15 {
			t.Fatalf("member %d got sum %v", id, v)
		}
	}
}

func TestBroadcast(t *testing.T) {
	members := cluster(t, 7)
	results := make([]float64, 7)
	spawn(t, members, func(m *Member) error {
		v := 0.0
		if m.id == 0 {
			v = 3.14
		}
		out, err := m.BroadcastFloat64(v)
		results[m.id] = out
		return err
	})
	for id, v := range results {
		if v != 3.14 {
			t.Fatalf("member %d got %v", id, v)
		}
	}
}

func TestPrefixSumPartitionsRange(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 9} {
		members := cluster(t, k)
		befores := make([]int64, k)
		totals := make([]int64, k)
		contribs := make([]int64, k)
		spawn(t, members, func(m *Member) error {
			contribs[m.id] = int64(2*m.id + 1)
			b, tot, err := m.PrefixSumInt64(contribs[m.id])
			befores[m.id] = b
			totals[m.id] = tot
			return err
		})
		var want int64
		for _, c := range contribs {
			want += c
		}
		// Every member must see the same total, and the intervals
		// [before, before+contrib) must exactly tile [0, total).
		seen := make([]bool, want)
		for id := 0; id < k; id++ {
			if totals[id] != want {
				t.Fatalf("k=%d: member %d total %d, want %d", k, id, totals[id], want)
			}
			for x := befores[id]; x < befores[id]+contribs[id]; x++ {
				if x < 0 || x >= want || seen[x] {
					t.Fatalf("k=%d: slot %d double-assigned or out of range", k, x)
				}
				seen[x] = true
			}
		}
	}
}

func TestRepeatedMixedCollectives(t *testing.T) {
	members := cluster(t, 4)
	spawn(t, members, func(m *Member) error {
		for round := 0; round < 30; round++ {
			mx, err := m.AllReduceMaxFloat64(float64(m.id + round))
			if err != nil {
				return err
			}
			if mx != float64(3+round) {
				return fmt.Errorf("round %d: max %v", round, mx)
			}
			if _, _, err := m.PrefixSumInt64(1); err != nil {
				return err
			}
			if err := m.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestTimeoutSurfacesAsError(t *testing.T) {
	// A lone member of a 2-cluster entering a barrier must time out.
	m0, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	m1, err := NewMember(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	if err := m0.Start([]string{m0.Addr(), m1.Addr()}); err != nil {
		t.Fatal(err)
	}
	m0.SetTimeout(200 * time.Millisecond)
	if err := m0.Barrier(); err == nil {
		t.Fatal("barrier with absent peer did not time out")
	}
}

func TestSingleMemberDegenerate(t *testing.T) {
	members := cluster(t, 1)
	spawn(t, members, func(m *Member) error {
		if v, err := m.AllReduceMaxFloat64(7); err != nil || v != 7 {
			return fmt.Errorf("lone max: %v, %v", v, err)
		}
		b, tot, err := m.PrefixSumInt64(5)
		if err != nil || b != 0 || tot != 5 {
			return fmt.Errorf("lone prefix: %d/%d, %v", b, tot, err)
		}
		return m.Barrier()
	})
}
