package netcoll

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzPeerFrameDecode hammers the peer-protocol frame decoder with
// arbitrary bytes. Invariants: the decoder never panics, never returns a
// frame that violates its own caps, errors either with io.EOF (clean
// stream end before any byte) or ErrPeerFrame, and any successfully
// decoded frame re-encodes to bytes that decode back to an identical
// frame (round-trip stability — the property the cluster peers rely on).
func FuzzPeerFrameDecode(f *testing.F) {
	f.Add(AppendPeerFrame(nil, &PeerFrame{Type: PeerFetch, Seq: 7, Key: "f=uniform,s=1|n=64|alg=HF|a=0.1|k=1", Body: []byte(`{"n":64}`)}))
	f.Add(AppendPeerFrame(nil, &PeerFrame{Type: PeerPlan, Flags: PeerFlagCached, Seq: 7, Body: []byte(`{"parts":[{"id":1}]}`)}))
	f.Add(AppendPeerFrame(nil, &PeerFrame{Type: PeerBeat, Seq: 1, Key: "127.0.0.1:9001"}))
	f.Add([]byte{peerMagic, peerVersion, byte(PeerAck)})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadPeerFrame(r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrPeerFrame) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if fr.Type < PeerFetch || fr.Type > PeerAck {
			t.Fatalf("decoded out-of-range type %d", fr.Type)
		}
		if len(fr.Key) > MaxPeerKeyLen || len(fr.Body) > MaxPeerBodyLen {
			t.Fatalf("decoded frame exceeds caps: key=%d body=%d", len(fr.Key), len(fr.Body))
		}
		again, err := ReadPeerFrame(bytes.NewReader(AppendPeerFrame(nil, fr)))
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame: %v", err)
		}
		if again.Type != fr.Type || again.Flags != fr.Flags || again.Seq != fr.Seq ||
			again.Key != fr.Key || !bytes.Equal(again.Body, fr.Body) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", again, fr)
		}
	})
}
