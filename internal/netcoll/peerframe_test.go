package netcoll

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestPeerFrameRoundTrip(t *testing.T) {
	frames := []*PeerFrame{
		{Type: PeerFetch, Seq: 1, Key: "f=uniform,s=7|n=64|alg=HF|a=0.1|k=1", Body: []byte(`{"n":64}`)},
		{Type: PeerPlan, Flags: PeerFlagCached, Seq: 1, Body: []byte(`{"parts":[]}`)},
		{Type: PeerErr, Seq: 9, Body: []byte("queue full")},
		{Type: PeerBeat, Seq: 1 << 40, Key: "127.0.0.1:9001"},
		{Type: PeerJoin, Key: "127.0.0.1:9002"},
		{Type: PeerMembers, Body: []byte("127.0.0.1:9001\n127.0.0.1:9002")},
		{Type: PeerRepl, Key: "k", Body: bytes.Repeat([]byte{0xFF}, 70<<10)}, // crosses the chunked-read boundary
		{Type: PeerAck},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WritePeerFrame(&buf, f); err != nil {
			t.Fatalf("write %v: %v", f.Type, err)
		}
	}
	for i, want := range frames {
		got, err := ReadPeerFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got.Body) == 0 {
			got.Body = nil
		}
		w := *want
		if len(w.Body) == 0 {
			w.Body = nil
		}
		if !reflect.DeepEqual(got, &w) {
			t.Fatalf("frame %d round-trip mismatch:\n got %+v\nwant %+v", i, got, &w)
		}
	}
	if _, err := ReadPeerFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: %v, want io.EOF", err)
	}
}

func TestPeerFrameRejectsMalformed(t *testing.T) {
	valid := AppendPeerFrame(nil, &PeerFrame{Type: PeerFetch, Seq: 3, Key: "k", Body: []byte("b")})

	cases := map[string][]byte{
		"bad magic":      append([]byte{0x00}, valid[1:]...),
		"bad version":    append([]byte{peerMagic, 99}, valid[2:]...),
		"unknown type 0": {peerMagic, peerVersion, 0, 0, 0, 0, 0},
		"unknown type 9": {peerMagic, peerVersion, 9, 0, 0, 0, 0},
		"truncated":      valid[:len(valid)-1],
		"short header":   {peerMagic, peerVersion},
		"huge key": append([]byte{peerMagic, peerVersion, byte(PeerFetch), 0, 0},
			binary.AppendUvarint(nil, MaxPeerKeyLen+1)...),
		"huge body": append(AppendPeerFrame(nil, &PeerFrame{Type: PeerAck})[:6],
			binary.AppendUvarint(nil, MaxPeerBodyLen+1)...),
	}
	for name, data := range cases {
		_, err := ReadPeerFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrPeerFrame) {
			t.Errorf("%s: err = %v, want ErrPeerFrame", name, err)
		}
	}
}

// TestPeerFrameBodyLieBounded: a frame header declaring a huge body over
// a connection that then stalls must not allocate the declared size up
// front. We can't measure the allocation directly without fragility, but
// we can prove the decode fails cleanly when the promised bytes never
// arrive.
func TestPeerFrameBodyLie(t *testing.T) {
	hdr := []byte{peerMagic, peerVersion, byte(PeerPlan), 0, 0, 0}
	hdr = append(hdr, binary.AppendUvarint(nil, 8<<20)...) // declares 8 MiB, delivers 3 bytes
	hdr = append(hdr, 'a', 'b', 'c')
	_, err := ReadPeerFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrPeerFrame) || !strings.Contains(err.Error(), "short body") {
		t.Fatalf("err = %v, want short-body ErrPeerFrame", err)
	}
}
