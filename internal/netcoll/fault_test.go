package netcoll

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bisectlb/internal/xrand"
)

// testInjector is a deterministic FaultInjector mirroring dist.FaultPlan
// (not imported to keep the package dependency one-way).
type testInjector struct {
	seed     uint64
	dropRate float64
	dupRate  float64
}

func (p *testInjector) Decide(msgID, attempt uint64) (drop, dup bool, delay time.Duration) {
	src := xrand.New(xrand.Mix(p.seed, xrand.Mix(msgID, attempt)))
	drop = src.Float64() < p.dropRate
	dup = src.Float64() < p.dupRate
	return drop, dup, 0
}

// faultyCluster wires k members with the same injector and tight retry.
func faultyCluster(t *testing.T, k int, fi FaultInjector) []*Member {
	t.Helper()
	members := cluster(t, k)
	for _, m := range members {
		m.SetFault(fi)
		m.SetRetry(60 * time.Millisecond)
	}
	return members
}

func TestCollectivesSurviveFrameDrops(t *testing.T) {
	members := faultyCluster(t, 7, &testInjector{seed: 13, dropRate: 0.15})
	// Several rounds of mixed collectives: retransmission and down-frame
	// replay must mask every loss.
	spawn(t, members, func(m *Member) error {
		for round := 0; round < 5; round++ {
			mx, err := m.AllReduceMaxFloat64(float64(m.id + round))
			if err != nil {
				return err
			}
			if want := float64(6 + round); mx != want {
				return fmt.Errorf("round %d max %v, want %v", round, mx, want)
			}
			before, total, err := m.PrefixSumInt64(int64(m.id))
			if err != nil {
				return err
			}
			if total != 21 {
				return fmt.Errorf("round %d total %d, want 21", round, total)
			}
			if before < 0 || before > 21 {
				return fmt.Errorf("round %d base %d out of range", round, before)
			}
			if err := m.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestCollectivesSurviveDuplicates(t *testing.T) {
	members := faultyCluster(t, 5, &testInjector{seed: 4, dupRate: 0.6})
	spawn(t, members, func(m *Member) error {
		for round := 0; round < 4; round++ {
			s, err := m.AllReduceSumInt64(int64(m.id + 1))
			if err != nil {
				return err
			}
			// Duplicated frames must not be double-counted: 1+2+3+4+5.
			if s != 15 {
				return fmt.Errorf("round %d sum %d, want 15", round, s)
			}
		}
		return m.Barrier()
	})
}

func TestTimeoutIsTyped(t *testing.T) {
	m0, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	m1, err := NewMember(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	if err := m0.Start([]string{m0.Addr(), m1.Addr()}); err != nil {
		t.Fatal(err)
	}
	m0.SetTimeout(150 * time.Millisecond)
	start := time.Now()
	if err := m0.Barrier(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

func TestRebuildOnSurvivors(t *testing.T) {
	members := cluster(t, 5)
	// Member 3 dies; survivors agree on the set and keep computing.
	members[3].Close()
	survivors := []int{0, 1, 2, 4}
	alive := []*Member{members[0], members[1], members[2], members[4]}
	for _, m := range alive {
		if err := m.Rebuild(survivors); err != nil {
			t.Fatal(err)
		}
	}
	spawn(t, alive, func(m *Member) error {
		s, err := m.AllReduceSumInt64(int64(m.id))
		if err != nil {
			return err
		}
		if s != 7 { // 0+1+2+4
			return fmt.Errorf("survivor sum %d, want 7", s)
		}
		before, total, err := m.PrefixSumInt64(1)
		if err != nil {
			return err
		}
		if total != 4 {
			return fmt.Errorf("survivor prefix total %d, want 4", total)
		}
		if before < 0 || before >= 4 {
			return fmt.Errorf("survivor base %d out of range", before)
		}
		return m.Barrier()
	})

	// Rebuild input validation.
	if err := members[0].Rebuild([]int{1, 2}); err == nil {
		t.Fatal("rebuild without own id accepted")
	}
	if err := members[0].Rebuild([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate survivor accepted")
	}
	if err := members[0].Rebuild([]int{0, 99}); err == nil {
		t.Fatal("out-of-range survivor accepted")
	}
}

func TestRebuildSeqEpochJump(t *testing.T) {
	members := cluster(t, 3)
	spawn(t, members, func(m *Member) error { return m.Barrier() })
	before := members[0].seq
	for _, m := range members {
		if err := m.Rebuild([]int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if after := members[0].seq; after <= before || after%(1<<20) != 0 {
		t.Fatalf("seq %d -> %d: not a fresh epoch", before, after)
	}
	// Collectives still work after an identity rebuild.
	spawn(t, members, func(m *Member) error {
		s, err := m.AllReduceSumInt64(1)
		if err != nil {
			return err
		}
		if s != 3 {
			return fmt.Errorf("post-rebuild sum %d", s)
		}
		return nil
	})
}
