package netcoll

import (
	"net"
	"testing"
	"time"
)

// TestStashedFramesSurviveFullInbox regresses the lossy re-queue bug:
// recv used to divert unwanted frames back into the bounded inbox with a
// non-blocking send, so a diverted frame racing a full inbox was silently
// dropped and the collective that needed it timed out. The stash must
// keep diverted frames through arbitrary inbox pressure.
func TestStashedFramesSurviveFullInbox(t *testing.T) {
	m, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTimeout(500 * time.Millisecond)

	// A frame of the NEXT collective arrives early, ahead of the frame
	// this collective wants — recv must divert it, not drop it.
	early := frame{Seq: 2, Dir: dirUp, From: 1, I: 42}
	m.inbox <- early
	m.inbox <- frame{Seq: 1, Dir: dirDown, From: 1, I: 7}
	got, err := m.recv(1, dirDown, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 7 {
		t.Fatalf("recv returned wrong frame: %+v", got)
	}

	// Now saturate the inbox completely. Under the old re-queue the early
	// frame would have been pushed back into this full channel and lost.
	for i := 0; i < cap(m.inbox); i++ {
		m.inbox <- frame{Seq: 3, Dir: dirUp, From: 1}
	}
	got, err = m.recv(2, dirUp, 1, nil)
	if err != nil {
		t.Fatalf("stashed frame lost: %v", err)
	}
	if got.I != 42 {
		t.Fatalf("recv returned wrong stashed frame: %+v", got)
	}
}

// TestStaleStashedFramesPruned checks that frames of finished collectives
// do not accumulate in the stash forever: a recv for a later sequence
// prunes them (and counts the drops) instead of keeping them alive.
func TestStaleStashedFramesPruned(t *testing.T) {
	m, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTimeout(200 * time.Millisecond)

	m.pending = append(m.pending, frame{Seq: 1, Dir: dirUp, From: 1}) // stale
	m.pending = append(m.pending, frame{Seq: 5, Dir: dirUp, From: 1}) // wanted
	got, err := m.recv(5, dirUp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 5 {
		t.Fatalf("recv returned %+v", got)
	}
	if len(m.pending) != 0 {
		t.Fatalf("stale frame kept in stash: %+v", m.pending)
	}
	if n := m.Metrics().Counter("netcoll.stale_drops").Value(); n != 1 {
		t.Fatalf("stale_drops = %d, want 1", n)
	}
}

// TestDialDoesNotBlockOtherSends regresses the head-of-line-blocking bug:
// sendFrame used to hold the member lock across net.Dial, so one slow or
// unreachable peer stalled every other outbound frame. With the dial
// outside the lock, a send to a healthy peer completes while another
// goroutine is stuck dialling.
func TestDialDoesNotBlockOtherSends(t *testing.T) {
	members := cluster(t, 3)
	m0 := members[0]
	slowAddr := members[2].Addr()
	base := m0.dial
	m0.dial = func(addr string) (net.Conn, error) {
		if addr == slowAddr {
			time.Sleep(1500 * time.Millisecond)
		}
		return base(addr)
	}

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		_ = m0.sendFrame(2, frame{Seq: 1, Dir: dirUp, From: 0}, 0)
	}()
	time.Sleep(50 * time.Millisecond) // let the slow dial get underway

	start := time.Now()
	if err := m0.sendFrame(1, frame{Seq: 1, Dir: dirUp, From: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 700*time.Millisecond {
		t.Fatalf("send to healthy peer took %v behind a slow dial", el)
	}
	<-slowDone
}

// TestDialRaceAdoptsWinner checks the post-dial re-check: when two
// goroutines race to dial the same peer, both must end up on the same
// encoder (the loser closes its own connection), so frames to one peer
// never interleave across two sockets.
func TestDialRaceAdoptsWinner(t *testing.T) {
	members := cluster(t, 2)
	m0 := members[0]

	const racers = 8
	encs := make([]chan interface{}, racers)
	for i := range encs {
		encs[i] = make(chan interface{}, 1)
		go func(ch chan interface{}) {
			enc, err := m0.encoderFor(1)
			if err != nil {
				ch <- err
				return
			}
			ch <- enc
		}(encs[i])
	}
	var first interface{}
	for i, ch := range encs {
		got := <-ch
		if err, ok := got.(error); ok {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatal("racing dials produced different encoders for the same peer")
		}
	}
}

// TestInvalidFramesDropped checks the frame-validation hardening that
// rode in with the frame-decode fuzz target: frames with an unknown
// direction, an out-of-range sender, or an oversized vector must be
// dropped (and counted) in readConn, while a valid frame on the same
// connection still reaches the inbox.
func TestInvalidFramesDropped(t *testing.T) {
	m, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Start([]string{m.Addr(), "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := []string{
		`{"seq":1,"dir":"sideways","from":1}`,
		`{"seq":1,"dir":"up","from":7}`,
		`{"seq":1,"dir":"up","from":-1}`,
	}
	for _, b := range bad {
		if _, err := conn.Write([]byte(b + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write([]byte(`{"seq":1,"dir":"up","from":1,"i":99}` + "\n")); err != nil {
		t.Fatal(err)
	}

	select {
	case f := <-m.inbox:
		if f.I != 99 || f.From != 1 || f.Dir != dirUp {
			t.Fatalf("inbox received unexpected frame %+v", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid frame never reached the inbox")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := m.Metrics().Counter("netcoll.invalid_drops").Value(); n == int64(len(bad)) {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("invalid_drops = %d, want %d", n, len(bad))
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case f := <-m.inbox:
		t.Fatalf("invalid frame leaked into inbox: %+v", f)
	default:
	}
}

// TestPendingStashCapped checks that recv's diversion stash cannot grow
// past maxPending: once full, further future-sequence frames are dropped
// and counted rather than accumulated.
func TestPendingStashCapped(t *testing.T) {
	m, err := NewMember(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTimeout(200 * time.Millisecond)

	for i := 0; i < maxPending; i++ {
		m.pending = append(m.pending, frame{Seq: 10, Dir: dirUp, From: 1, I: int64(i)})
	}
	// Two more future frames arrive while recv waits for seq 5; the stash
	// is full, so both must be dropped and counted.
	m.inbox <- frame{Seq: 11, Dir: dirUp, From: 1}
	m.inbox <- frame{Seq: 12, Dir: dirUp, From: 1}
	m.inbox <- frame{Seq: 5, Dir: dirDown, From: 1, I: 7}
	got, err := m.recv(5, dirDown, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 7 {
		t.Fatalf("recv returned wrong frame: %+v", got)
	}
	if len(m.pending) > maxPending {
		t.Fatalf("stash grew past cap: %d > %d", len(m.pending), maxPending)
	}
	if n := m.Metrics().Counter("netcoll.pending_drops").Value(); n != 2 {
		t.Fatalf("pending_drops = %d, want 2", n)
	}
}
