package netcoll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Peer framing: the wire layer of internal/cluster's peer protocol
// (plan fetch, heartbeats, membership, hot-key replication). It lives
// here because it is netcoll's discipline applied to a request/response
// stream: a compact self-delimiting frame, validated at decode time with
// hard caps on every attacker-controlled length — the same checkFrame
// posture that hardened the collective framing (DESIGN.md §11), applied
// before a single byte of payload is trusted.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   1 byte  0xB5
//	version 1 byte  1
//	type    1 byte  PeerFrameType
//	flags   1 byte  bit 0: PeerFlagCached
//	seq     uvarint request/response correlation id
//	keyLen  uvarint ≤ MaxPeerKeyLen, then key bytes
//	bodyLen uvarint ≤ MaxPeerBodyLen, then body bytes
//
// Every request frame receives exactly one response frame on the same
// connection, so a reader never needs lookahead beyond one frame.

// PeerFrameType discriminates peer-protocol frames.
type PeerFrameType byte

// Peer frame types. Requests are odd-ball free: every type is valid in
// exactly one direction except PeerAck, which answers any request that
// carries no payload back.
const (
	// PeerFetch asks the receiver to produce the plan for Key; Body
	// carries the canonical JSON balance request.
	PeerFetch PeerFrameType = 1
	// PeerPlan answers a fetch: Body is the JSON-encoded plan. The
	// PeerFlagCached flag records whether the owner served it from its
	// cache (a cluster-wide hit) or computed it on demand.
	PeerPlan PeerFrameType = 2
	// PeerErr answers a fetch that failed; Body is the error text.
	PeerErr PeerFrameType = 3
	// PeerBeat is a liveness heartbeat; Key is the sender's peer address.
	PeerBeat PeerFrameType = 4
	// PeerJoin asks to join the cluster; Key is the joiner's address.
	PeerJoin PeerFrameType = 5
	// PeerMembers answers a join (and gossips membership changes): Body
	// is the newline-joined member address list.
	PeerMembers PeerFrameType = 6
	// PeerRepl pushes a hot cache entry to a ring successor: Key is the
	// canonical plan key, Body the JSON-encoded plan.
	PeerRepl PeerFrameType = 7
	// PeerAck acknowledges a beat, membership gossip or replication push.
	PeerAck PeerFrameType = 8
)

// PeerFlagCached marks a PeerPlan served from the owner's cache.
const PeerFlagCached = 1

// Wire-safety caps, enforced at decode time before any allocation of
// the declared size.
const (
	// MaxPeerKeyLen bounds the canonical-key field. Canonical plan keys
	// are tens of bytes; peer addresses under a hundred.
	MaxPeerKeyLen = 4096
	// MaxPeerBodyLen bounds the payload (a JSON plan; large-N plans run
	// to megabytes).
	MaxPeerBodyLen = 16 << 20
)

const (
	peerMagic   = 0xB5
	peerVersion = 1
)

// ErrPeerFrame marks any malformed peer frame; test with errors.Is.
var ErrPeerFrame = errors.New("netcoll: malformed peer frame")

// PeerFrame is one decoded peer-protocol frame.
type PeerFrame struct {
	Type  PeerFrameType
	Flags byte
	Seq   uint64
	Key   string
	Body  []byte
}

// Cached reports the PeerFlagCached flag.
func (f *PeerFrame) Cached() bool { return f.Flags&PeerFlagCached != 0 }

// AppendPeerFrame appends f's encoding to b and returns the extended
// slice.
func AppendPeerFrame(b []byte, f *PeerFrame) []byte {
	b = append(b, peerMagic, peerVersion, byte(f.Type), f.Flags)
	b = binary.AppendUvarint(b, f.Seq)
	b = binary.AppendUvarint(b, uint64(len(f.Key)))
	b = append(b, f.Key...)
	b = binary.AppendUvarint(b, uint64(len(f.Body)))
	b = append(b, f.Body...)
	return b
}

// WritePeerFrame encodes f to w in one Write call (one frame, one
// syscall — interleaving-safe for callers that serialise per connection).
func WritePeerFrame(w io.Writer, f *PeerFrame) error {
	buf := AppendPeerFrame(make([]byte, 0, 64+len(f.Key)+len(f.Body)), f)
	_, err := w.Write(buf)
	return err
}

// byteReader adapts an io.Reader for binary.ReadUvarint while counting
// consumed bytes, so varint reads pull exactly what they need.
type byteReader struct {
	r io.Reader
	b [1]byte
}

func (br *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(br.r, br.b[:]); err != nil {
		return 0, err
	}
	return br.b[0], nil
}

// ReadPeerFrame decodes one frame from r, validating every field before
// trusting it: magic and version, a known type, and length caps on key
// and body. Malformed input fails with an error wrapping ErrPeerFrame;
// a clean EOF before the first byte returns io.EOF so connection readers
// can distinguish shutdown from corruption.
func ReadPeerFrame(r io.Reader) (*PeerFrame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", ErrPeerFrame, err)
	}
	if hdr[0] != peerMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrPeerFrame, hdr[0])
	}
	if hdr[1] != peerVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrPeerFrame, hdr[1])
	}
	typ := PeerFrameType(hdr[2])
	if typ < PeerFetch || typ > PeerAck {
		return nil, fmt.Errorf("%w: unknown type %d", ErrPeerFrame, hdr[2])
	}
	br := &byteReader{r: r}
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading seq: %v", ErrPeerFrame, err)
	}
	keyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading key length: %v", ErrPeerFrame, err)
	}
	if keyLen > MaxPeerKeyLen {
		return nil, fmt.Errorf("%w: key of %d bytes exceeds limit %d", ErrPeerFrame, keyLen, MaxPeerKeyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("%w: short key: %v", ErrPeerFrame, err)
	}
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading body length: %v", ErrPeerFrame, err)
	}
	if bodyLen > MaxPeerBodyLen {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds limit %d", ErrPeerFrame, bodyLen, MaxPeerBodyLen)
	}
	var body []byte
	if bodyLen > 0 {
		// Size-capped but still attacker-declared: grow in bounded steps
		// so a lying length prefix on a slow connection cannot pin the
		// full cap up front.
		body = make([]byte, 0, min64(bodyLen, 64<<10))
		remaining := bodyLen
		chunk := make([]byte, min64(remaining, 64<<10))
		for remaining > 0 {
			n := min64(remaining, uint64(len(chunk)))
			if _, err := io.ReadFull(r, chunk[:n]); err != nil {
				return nil, fmt.Errorf("%w: short body: %v", ErrPeerFrame, err)
			}
			body = append(body, chunk[:n]...)
			remaining -= n
		}
	}
	return &PeerFrame{Type: typ, Flags: hdr[3], Seq: seq, Key: string(key), Body: body}, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
