package netcoll

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzFrameDecode drives arbitrary bytes through the same decode +
// validate pipeline readConn runs on every peer connection: a JSON
// stream decoder followed by checkFrame. The target asserts the
// pipeline never panics, accepts only frames that satisfy the protocol
// schema, and that frameID stays well-defined on every accepted frame.
//
// Under plain `go test` the seed corpus (testdata/fuzz) replays as a
// regression suite; `go test -fuzz FuzzFrameDecode ./internal/netcoll`
// explores further.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte(`{"seq":1,"dir":"up","from":0,"f":1.5,"i":3}`), 4)
	f.Add([]byte(`{"seq":2,"dir":"down","from":3,"pre":7,"vec":[1,2,3]}`), 4)
	f.Add([]byte(`{"seq":1,"dir":"sideways","from":0}`), 4)
	f.Add([]byte(`{"seq":1,"dir":"up","from":-1}`), 4)
	f.Add([]byte(`{"seq":1,"dir":"up","from":99}`), 4)
	f.Add([]byte(`{"dir":"up","from":0}{"dir":"down","from":1}`), 2)
	f.Add([]byte(`not json at all`), 3)
	f.Add([]byte(`{"seq":18446744073709551615,"dir":"up","from":1}`), 8)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 1 || k > 1024 {
			k = 1 + (k%1024+1024)%1024
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		for {
			var fr frame
			if err := dec.Decode(&fr); err != nil {
				if !errors.Is(err, io.EOF) {
					// Malformed stream: readConn tears the connection down.
					return
				}
				return
			}
			if err := checkFrame(fr, k); err != nil {
				continue // readConn drops it and keeps reading
			}
			// Accepted frames must satisfy the schema the collectives
			// assume.
			if fr.Dir != dirUp && fr.Dir != dirDown {
				t.Fatalf("checkFrame accepted direction %q", fr.Dir)
			}
			if fr.From < 0 || fr.From >= k {
				t.Fatalf("checkFrame accepted from=%d for k=%d", fr.From, k)
			}
			if len(fr.Vec) > maxVecLen {
				t.Fatalf("checkFrame accepted %d-element vector", len(fr.Vec))
			}
			// frameID must be total and deterministic on accepted frames.
			if frameID(fr, 0) != frameID(fr, 0) {
				t.Fatal("frameID not deterministic")
			}
		}
	})
}
