// Package netcoll implements the global communication operations of the
// paper's machine model — barrier, all-reduce, exclusive prefix sum,
// broadcast — over real TCP connections between cluster members arranged
// in a binary reduction tree. It is the network counterpart of
// internal/collective (which coordinates goroutines in one process) and
// the substrate for the distributed PHF in internal/dist: PHF's phases
// need exactly these primitives, which is why the paper charges it
// Θ(log N) global-communication time that Algorithm BA avoids entirely.
//
// All collectives are synchronous and must be invoked by every member in
// the same order; each carries a sequence number so late or duplicated
// frames are detected rather than silently misapplied.
//
// The tree tolerates lossy links: a member waiting for its parent's
// down-frame retransmits its up-contribution on a sub-timeout, parents
// cache the down-frames of completed collectives and replay them when a
// duplicate up-frame reveals the child never got the result, and
// receivers dedup on (seq, dir, from). Faults are injected through the
// pluggable FaultInjector hook (dist.FaultPlan implements it), and a
// collective that cannot complete fails with an error wrapping
// ErrTimeout. After a member death the survivors call Rebuild with the
// common survivor set; ranks are remapped over the live members and the
// sequence space jumps to a fresh epoch so frames from the old topology
// can never alias the new one.
package netcoll

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"bisectlb/internal/obs"
	"bisectlb/internal/xrand"
)

// Metric names recorded in a member's obs.Registry (see Metrics).
const (
	mFramesSent   = "netcoll.frames_sent"
	mFramesDrop   = "netcoll.frames_dropped" // swallowed by the fault plan
	mFramesDup    = "netcoll.frames_duped"
	mFramesDelay  = "netcoll.frames_delayed"
	mRetransmits  = "netcoll.retransmits"   // up-contribution re-sends on sub-timeout
	mReplays      = "netcoll.replays"       // down-frame replays to children
	mStaleDrops   = "netcoll.stale_drops"   // frames of finished collectives discarded
	mInboxDrops   = "netcoll.inbox_drops"   // protocol-violation drops on a full inbox
	mInvalidDrops = "netcoll.invalid_drops" // malformed frames rejected by checkFrame
	mPendingDrops = "netcoll.pending_drops" // stash-overflow drops (protocol violation)
	mTimeouts     = "netcoll.timeouts"      // collectives that hit ErrTimeout
	mRebuilds     = "netcoll.rebuilds"      // tree rebuilds after member deaths
	mDials        = "netcoll.dials"
	mCollectives  = "netcoll.collectives"
	mCollectiveNs = "netcoll.collective_ns" // per-collective latency histogram
)

// ErrTimeout marks a collective that did not complete within the
// member's deadline — typically because a peer died and Rebuild has not
// been called yet. Test with errors.Is.
var ErrTimeout = errors.New("netcoll: collective timed out")

// FaultInjector decides the fate of individual frame transmissions.
// Implementations must be pure functions of (msgID, attempt) so a chaos
// run is reproducible; *dist.FaultPlan satisfies the interface.
type FaultInjector interface {
	Decide(msgID, attempt uint64) (drop, dup bool, delay time.Duration)
}

// frame is the wire message. Dir is "up" (child → parent contribution) or
// "down" (parent → child result).
type frame struct {
	Seq  uint64  `json:"seq"`
	Dir  string  `json:"dir"`
	From int     `json:"from"`
	F    float64 `json:"f"`
	I    int64   `json:"i"`
	// Pre carries per-subtree prefix bases during the down-sweep of
	// prefix sums.
	Pre int64 `json:"pre"`
	// Vec carries element-wise-summed vectors (AllReduceSumVecInt64).
	Vec []int64 `json:"vec,omitempty"`
}

const (
	dirUp   = "up"
	dirDown = "down"
)

// downCacheSeqs bounds how many completed collectives keep their
// down-frames around for replay.
const downCacheSeqs = 8

// maxPending bounds the recv stash of current-or-future frames. The
// protocol allows one outstanding collective, so legitimate diversions
// are a handful per peer; an unbounded stash would let a misbehaving or
// desynchronised peer grow memory without limit (found while preparing
// the frame-decode fuzz target). Overflow drops the newest frame — the
// sender's retransmission path recovers it if it was real.
const maxPending = 256

// maxVecLen bounds the vector payload a member accepts in one frame.
// Legitimate vectors carry one slot per cluster member; anything larger
// is a protocol violation and, unchecked, a memory-amplification vector.
const maxVecLen = 1 << 16

// checkFrame validates a decoded wire frame against the cluster size k:
// a known direction, a sender id inside the cluster, and a sanely sized
// vector payload. readConn drops frames that fail it — a malformed frame
// previously flowed unchecked into the inbox and pending stash, where an
// out-of-range From could sit forever matching no recv and an oversized
// Vec pinned arbitrary memory.
func checkFrame(f frame, k int) error {
	if f.Dir != dirUp && f.Dir != dirDown {
		return fmt.Errorf("netcoll: frame with unknown direction %q", f.Dir)
	}
	if f.From < 0 || f.From >= k {
		return fmt.Errorf("netcoll: frame from %d outside [0, %d)", f.From, k)
	}
	if len(f.Vec) > maxVecLen {
		return fmt.Errorf("netcoll: frame vector of %d elements exceeds limit %d", len(f.Vec), maxVecLen)
	}
	return nil
}

// frameID derives the fault-decision identity of a frame transmission.
// The destination is mixed in because prefix-sum down-frames differ per
// child; the direction keeps an up/down pair from sharing a fate.
func frameID(f frame, to int) uint64 {
	d := uint64(1)
	if f.Dir == dirUp {
		d = 2
	}
	return xrand.Mix(f.Seq, uint64(f.From)<<20|uint64(to)<<4|d)
}

// Member is one participant, id 0 … K−1. Initially the reduction tree is
// a binary tree over ids rooted at 0 (children of rank i are 2i+1 and
// 2i+2); after Rebuild the same shape is laid over the sorted survivor
// ranks. Collectives and Rebuild must be called from a single goroutine.
type Member struct {
	id, k int
	ln    net.Listener
	addrs []string

	mu       sync.Mutex
	conns    []net.Conn
	encoders map[int]*json.Encoder
	// downCache holds the down-frames of recently completed collectives,
	// seq → destination id → frame, for replay to children that lost the
	// result. cacheSeqs is its FIFO eviction order.
	downCache map[uint64]map[int]frame
	cacheSeqs []uint64
	replayN   uint64

	inbox   chan frame
	seq     uint64
	timeout time.Duration
	retry   time.Duration
	fault   FaultInjector
	reg     *obs.Registry

	// dial opens the transport connection to a peer; a test hook so the
	// no-head-of-line-blocking property of sendFrame is verifiable with
	// a deterministically slow peer.
	dial func(addr string) (net.Conn, error)

	// pending holds frames of the current or a future collective that a
	// recv call pulled from the inbox but did not want. It is scanned
	// before the inbox, so a diverted frame of a well-behaved peer is
	// never lost — unlike the bounded-channel re-queue it replaces,
	// which silently dropped frames when the inbox was full. The stash
	// is capped at maxPending so a desynchronised peer cannot grow it
	// without limit. Guarded by the same single-goroutine collective
	// contract as seq.
	pending []frame

	// live maps rank → member id; rank is this member's own position.
	live []int
	rank int

	wg     sync.WaitGroup
	closed bool
}

// NewMember creates a member listening on addr. Call Start with the full
// address list once the cluster is assembled.
func NewMember(id, k int, addr string) (*Member, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("netcoll: member id %d outside [0, %d)", id, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcoll: member %d listen: %w", id, err)
	}
	live := make([]int, k)
	for i := range live {
		live[i] = i
	}
	return &Member{
		id: id, k: k, ln: ln,
		encoders:  make(map[int]*json.Encoder),
		downCache: make(map[uint64]map[int]frame),
		inbox:     make(chan frame, 64),
		timeout:   30 * time.Second,
		retry:     250 * time.Millisecond,
		reg:       obs.NewRegistry(),
		dial:      func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
		live:      live,
		rank:      id,
	}, nil
}

// Addr returns the member's listen address.
func (m *Member) Addr() string { return m.ln.Addr().String() }

// Metrics returns the member's metric registry: frame/retransmit/replay
// counters and the per-collective latency histogram.
func (m *Member) Metrics() *obs.Registry { return m.reg }

// SetTimeout adjusts the per-collective deadline (default 30s).
func (m *Member) SetTimeout(d time.Duration) { m.timeout = d }

// SetRetry adjusts the retransmission sub-timeout (default 250ms): how
// long a member waits for its parent's down-frame before re-sending its
// up-contribution.
func (m *Member) SetRetry(d time.Duration) { m.retry = d }

// SetFault installs a fault injector on the member's outbound frames.
// Call before the first collective.
func (m *Member) SetFault(fi FaultInjector) { m.fault = fi }

// Start begins serving; addrs[i] must be member i's address.
func (m *Member) Start(addrs []string) error {
	if len(addrs) != m.k {
		return fmt.Errorf("netcoll: %d addresses for %d members", len(addrs), m.k)
	}
	m.addrs = append([]string(nil), addrs...)
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

func (m *Member) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		m.conns = append(m.conns, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readConn(conn)
	}
}

func (m *Member) readConn(conn net.Conn) {
	defer m.wg.Done()
	dec := json.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = conn.Close()
			}
			return
		}
		if err := checkFrame(f, m.k); err != nil {
			m.reg.Counter(mInvalidDrops).Inc()
			continue
		}
		// An up-frame for a collective this member already finished means
		// the child lost our down-frame; replay it from the cache instead
		// of enqueueing a stale contribution. Replays happen here, in the
		// reader, so they work even while the member sits idle between
		// collectives.
		if f.Dir == dirUp {
			m.mu.Lock()
			cached, ok := m.downCache[f.Seq][f.From]
			var attempt uint64
			if ok {
				m.replayN++
				attempt = m.replayN
			}
			m.mu.Unlock()
			if ok {
				m.reg.Counter(mReplays).Inc()
				_ = m.sendFrame(f.From, cached, attempt)
				continue
			}
		}
		select {
		case m.inbox <- f:
		default:
			// A full inbox means the protocol is violated (more than one
			// outstanding collective); drop the frame and let the peer
			// time out loudly.
			m.reg.Counter(mInboxDrops).Inc()
		}
	}
}

// parentID and childIDs express the binary tree in rank space and map the
// ranks back to member ids.
func (m *Member) parentID() int { return m.live[(m.rank-1)/2] }

func (m *Member) childIDs() []int {
	var out []int
	for _, c := range []int{2*m.rank + 1, 2*m.rank + 2} {
		if c < len(m.live) {
			out = append(out, m.live[c])
		}
	}
	return out
}

// Rebuild shrinks the reduction tree to the given survivor set. Every
// survivor must call it with the same set before the next collective;
// the member's own id must be included. The sequence counter jumps to a
// fresh epoch so frames of the old topology can never match a collective
// of the new one.
func (m *Member) Rebuild(survivors []int) error {
	live := append([]int(nil), survivors...)
	sort.Ints(live)
	rank := -1
	for i, id := range live {
		if id == m.id {
			rank = i
		}
		if id < 0 || id >= m.k {
			return fmt.Errorf("netcoll: survivor %d outside [0, %d)", id, m.k)
		}
		if i > 0 && live[i-1] == id {
			return fmt.Errorf("netcoll: duplicate survivor %d", id)
		}
	}
	if rank < 0 {
		return fmt.Errorf("netcoll: member %d not in survivor set %v", m.id, live)
	}
	m.live = live
	m.rank = rank
	m.seq = ((m.seq >> 20) + 1) << 20
	m.reg.Counter(mRebuilds).Inc()
	m.reg.Emit("netcoll.rebuild", fmt.Sprintf("member %d: %d survivors, rank %d", m.id, len(live), rank))
	return nil
}

// sendFrame transmits one frame through the fault layer. A dropped frame
// returns nil — the loss is indistinguishable from the network eating it.
func (m *Member) sendFrame(to int, f frame, attempt uint64) error {
	var dup bool
	var delay time.Duration
	if m.fault != nil {
		var drop bool
		drop, dup, delay = m.fault.Decide(frameID(f, to), attempt)
		if drop {
			m.reg.Counter(mFramesDrop).Inc()
			return nil
		}
	}
	if delay > 0 {
		m.reg.Counter(mFramesDelay).Inc()
		time.Sleep(delay)
	}
	enc, err := m.encoderFor(to)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return net.ErrClosed
	}
	m.reg.Counter(mFramesSent).Inc()
	if err := enc.Encode(f); err != nil {
		return err
	}
	if dup {
		m.reg.Counter(mFramesDup).Inc()
		return enc.Encode(f)
	}
	return nil
}

// encoderFor returns the cached encoder for a peer, dialling it first
// if necessary. The dial happens OUTSIDE the member lock so one slow or
// unreachable peer cannot head-of-line-block every other send from this
// member; when two goroutines race to dial the same peer, the loser
// closes its connection and adopts the winner's encoder.
func (m *Member) encoderFor(to int) (*json.Encoder, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, net.ErrClosed
	}
	if enc, ok := m.encoders[to]; ok {
		m.mu.Unlock()
		return enc, nil
	}
	addr := m.addrs[to]
	m.mu.Unlock()

	m.reg.Counter(mDials).Inc()
	conn, err := m.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("netcoll: member %d dialing %d: %w", m.id, to, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		_ = conn.Close()
		return nil, net.ErrClosed
	}
	if enc, ok := m.encoders[to]; ok {
		_ = conn.Close()
		return enc, nil
	}
	m.conns = append(m.conns, conn)
	enc := json.NewEncoder(conn)
	m.encoders[to] = enc
	return enc, nil
}

// sendDown caches a down-frame for replay, then transmits it.
func (m *Member) sendDown(to int, f frame) error {
	m.mu.Lock()
	cache, ok := m.downCache[f.Seq]
	if !ok {
		cache = make(map[int]frame)
		m.downCache[f.Seq] = cache
		m.cacheSeqs = append(m.cacheSeqs, f.Seq)
		for len(m.cacheSeqs) > downCacheSeqs {
			delete(m.downCache, m.cacheSeqs[0])
			m.cacheSeqs = m.cacheSeqs[1:]
		}
	}
	cache[to] = f
	m.mu.Unlock()
	return m.sendFrame(to, f, 0)
}

// recv waits for a frame matching seq, direction and sender. Frames from
// earlier collectives are discarded; frames of the current (or a future)
// collective that this call did not want are stashed in m.pending, which
// is scanned before the inbox on every call — unlike the old bounded
// channel re-queue, a diverted frame within the protocol's frame budget
// is never lost (the stash caps at maxPending against desynchronised
// peers). If resend is non-nil it is invoked on every retransmission
// sub-timeout with an increasing attempt number — the caller's way of
// nudging a parent whose frame (or whose view of ours) was lost.
func (m *Member) recv(seq uint64, dir string, from int, resend func(attempt uint64) error) (frame, error) {
	// A previous recv may already have pulled the wanted frame out of
	// the inbox; stale entries are pruned on the way through.
	kept := m.pending[:0]
	var match frame
	found := false
	for i := range m.pending {
		f := m.pending[i]
		switch {
		case !found && f.Seq == seq && f.Dir == dir && f.From == from:
			match, found = f, true
		case f.Seq >= seq:
			kept = append(kept, f)
		default:
			m.reg.Counter(mStaleDrops).Inc()
		}
	}
	m.pending = kept
	if found {
		return match, nil
	}

	// One timer per role, reused across iterations: the per-iteration
	// time.After this replaces leaked a timer per loop turn, which
	// accumulates under chaos-level retransmit counts.
	overall := time.NewTimer(m.timeout)
	defer overall.Stop()
	var sub *time.Timer
	var subC <-chan time.Time
	if resend != nil {
		sub = time.NewTimer(m.retry)
		defer sub.Stop()
		subC = sub.C
	}
	resetSub := func(drain bool) {
		if sub == nil {
			return
		}
		if drain && !sub.Stop() {
			select {
			case <-sub.C:
			default:
			}
		}
		sub.Reset(m.retry)
	}
	attempt := uint64(0)
	for {
		select {
		case f := <-m.inbox:
			if f.Seq == seq && f.Dir == dir && f.From == from {
				return f, nil
			}
			if f.Seq >= seq {
				if len(m.pending) < maxPending {
					m.pending = append(m.pending, f)
				} else {
					// A stash this deep means a desynchronised or hostile
					// peer; drop the frame and let retransmission recover
					// it if it was real.
					m.reg.Counter(mPendingDrops).Inc()
				}
			} else {
				// Frames with older sequence numbers are stale retransmits
				// or duplicates of finished collectives: drop them.
				m.reg.Counter(mStaleDrops).Inc()
			}
			// Any received frame is progress; restart the retransmission
			// clock as the per-iteration timer construction used to.
			resetSub(true)
		case <-subC:
			attempt++
			m.reg.Counter(mRetransmits).Inc()
			if err := resend(attempt); err != nil {
				return frame{}, err
			}
			resetSub(false)
		case <-overall.C:
			m.reg.Counter(mTimeouts).Inc()
			return frame{}, fmt.Errorf("netcoll: member %d waiting for %s/%d seq %d: %w",
				m.id, dir, from, seq, ErrTimeout)
		}
	}
}

// reduce runs one up-sweep/down-sweep episode. combine folds child
// contributions into the local value; the root's final value is broadcast
// back down and returned by every member.
func (m *Member) reduce(local frame, combine func(acc, child frame) frame) (frame, error) {
	m.reg.Counter(mCollectives).Inc()
	start := time.Now()
	defer func() { m.reg.Histogram(mCollectiveNs).ObserveSince(start) }()
	m.seq++
	seq := m.seq
	local.Seq = seq
	acc := local
	for _, c := range m.childIDs() {
		f, err := m.recv(seq, dirUp, c, nil)
		if err != nil {
			return frame{}, err
		}
		acc = combine(acc, f)
	}
	if m.rank != 0 {
		acc.Dir = dirUp
		acc.From = m.id
		parent := m.parentID()
		if err := m.sendFrame(parent, acc, 0); err != nil {
			return frame{}, err
		}
		res, err := m.recv(seq, dirDown, parent, func(attempt uint64) error {
			return m.sendFrame(parent, acc, attempt)
		})
		if err != nil {
			return frame{}, err
		}
		acc = res
	}
	acc.Dir = dirDown
	for _, c := range m.childIDs() {
		out := acc
		out.From = m.id
		if err := m.sendDown(c, out); err != nil {
			return frame{}, err
		}
	}
	return acc, nil
}

// Barrier blocks until every member has entered it.
func (m *Member) Barrier() error {
	_, err := m.reduce(frame{}, func(acc, _ frame) frame { return acc })
	return err
}

// AllReduceMaxFloat64 returns the maximum of all contributions.
func (m *Member) AllReduceMaxFloat64(v float64) (float64, error) {
	res, err := m.reduce(frame{F: v}, func(acc, child frame) frame {
		if child.F > acc.F {
			acc.F = child.F
		}
		return acc
	})
	return res.F, err
}

// AllReduceSumInt64 returns the sum of all contributions.
func (m *Member) AllReduceSumInt64(v int64) (int64, error) {
	res, err := m.reduce(frame{I: v}, func(acc, child frame) frame {
		acc.I += child.I
		return acc
	})
	return res.I, err
}

// AllReduceSumVecInt64 sums equal-length vectors element-wise across all
// members. With each member contributing its value at its own index, the
// call doubles as an all-gather — the pattern the distributed PHF uses to
// learn every node's free-processor count.
func (m *Member) AllReduceSumVecInt64(v []int64) ([]int64, error) {
	res, err := m.reduce(frame{Vec: append([]int64(nil), v...)}, func(acc, child frame) frame {
		if len(child.Vec) != len(acc.Vec) {
			// Length mismatch indicates a protocol violation; poison the
			// result visibly rather than panicking inside the reduction.
			acc.Vec = nil
			return acc
		}
		for i := range acc.Vec {
			acc.Vec[i] += child.Vec[i]
		}
		return acc
	})
	if err != nil {
		return nil, err
	}
	if res.Vec == nil {
		return nil, fmt.Errorf("netcoll: member %d vector length mismatch in all-reduce", m.id)
	}
	return res.Vec, nil
}

// BroadcastFloat64 distributes the root member's value.
func (m *Member) BroadcastFloat64(v float64) (float64, error) {
	res, err := m.reduce(frame{F: v}, func(acc, _ frame) frame { return acc })
	if err != nil {
		return 0, err
	}
	return res.F, nil
}

// PrefixSumInt64 returns an exclusive prefix sum and the total. The prefix
// order is the reduction tree's preorder (rank 0 first, then the left
// subtree, then the right), which is fixed and identical for every member
// and every call — exactly what unique-slot assignment (PHF's
// free-processor numbering) needs; callers must not assume ascending
// member-id order. The up-sweep accumulates subtree sums; the down-sweep
// hands each subtree its base offset.
func (m *Member) PrefixSumInt64(v int64) (before, total int64, err error) {
	m.reg.Counter(mCollectives).Inc()
	start := time.Now()
	defer func() { m.reg.Histogram(mCollectiveNs).ObserveSince(start) }()
	m.seq++
	seq := m.seq

	// Up-sweep: collect child subtree sums (order matters: left, right).
	children := m.childIDs()
	childSums := make([]int64, len(children))
	sub := v
	for i, c := range children {
		f, e := m.recv(seq, dirUp, c, nil)
		if e != nil {
			return 0, 0, e
		}
		childSums[i] = f.I
		sub += f.I
	}
	var base int64
	if m.rank != 0 {
		up := frame{Seq: seq, Dir: dirUp, From: m.id, I: sub}
		parent := m.parentID()
		if e := m.sendFrame(parent, up, 0); e != nil {
			return 0, 0, e
		}
		f, e := m.recv(seq, dirDown, parent, func(attempt uint64) error {
			return m.sendFrame(parent, up, attempt)
		})
		if e != nil {
			return 0, 0, e
		}
		base = f.Pre
		total = f.I
	} else {
		total = sub
	}
	// In-order convention: the member's own value precedes its subtrees'.
	// Left child's base is base+v; right child's is base+v+leftSum.
	run := base + v
	for i, c := range children {
		if e := m.sendDown(c, frame{Seq: seq, Dir: dirDown, From: m.id, Pre: run, I: total}); e != nil {
			return 0, 0, e
		}
		run += childSums[i]
	}
	return base, total, nil
}

// Close shuts the member down.
func (m *Member) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	_ = m.ln.Close()
	for _, c := range m.conns {
		_ = c.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
}
