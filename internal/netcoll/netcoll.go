// Package netcoll implements the global communication operations of the
// paper's machine model — barrier, all-reduce, exclusive prefix sum,
// broadcast — over real TCP connections between cluster members arranged
// in a binary reduction tree. It is the network counterpart of
// internal/collective (which coordinates goroutines in one process) and
// the substrate for the distributed PHF in internal/dist: PHF's phases
// need exactly these primitives, which is why the paper charges it
// Θ(log N) global-communication time that Algorithm BA avoids entirely.
//
// All collectives are synchronous and must be invoked by every member in
// the same order; each carries a sequence number so late or duplicated
// frames are detected rather than silently misapplied.
package netcoll

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// frame is the wire message. Dir is "up" (child → parent contribution) or
// "down" (parent → child result).
type frame struct {
	Seq  uint64  `json:"seq"`
	Dir  string  `json:"dir"`
	From int     `json:"from"`
	F    float64 `json:"f"`
	I    int64   `json:"i"`
	// Pre carries per-subtree prefix bases during the down-sweep of
	// prefix sums.
	Pre int64 `json:"pre"`
	// Vec carries element-wise-summed vectors (AllReduceSumVecInt64).
	Vec []int64 `json:"vec,omitempty"`
}

// Member is one participant, id 0 … K−1, in a binary tree rooted at 0
// (children of i are 2i+1 and 2i+2).
type Member struct {
	id, k int
	ln    net.Listener
	addrs []string

	mu       sync.Mutex
	conns    []net.Conn
	encoders map[int]*json.Encoder

	inbox   chan frame
	seq     uint64
	timeout time.Duration

	wg     sync.WaitGroup
	closed bool
}

// NewMember creates a member listening on addr. Call Start with the full
// address list once the cluster is assembled.
func NewMember(id, k int, addr string) (*Member, error) {
	if k < 1 || id < 0 || id >= k {
		return nil, fmt.Errorf("netcoll: member id %d outside [0, %d)", id, k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcoll: member %d listen: %w", id, err)
	}
	return &Member{
		id: id, k: k, ln: ln,
		encoders: make(map[int]*json.Encoder),
		inbox:    make(chan frame, 64),
		timeout:  30 * time.Second,
	}, nil
}

// Addr returns the member's listen address.
func (m *Member) Addr() string { return m.ln.Addr().String() }

// SetTimeout adjusts the per-collective deadline (default 30s).
func (m *Member) SetTimeout(d time.Duration) { m.timeout = d }

// Start begins serving; addrs[i] must be member i's address.
func (m *Member) Start(addrs []string) error {
	if len(addrs) != m.k {
		return fmt.Errorf("netcoll: %d addresses for %d members", len(addrs), m.k)
	}
	m.addrs = append([]string(nil), addrs...)
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

func (m *Member) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		m.conns = append(m.conns, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			dec := json.NewDecoder(conn)
			for {
				var f frame
				if err := dec.Decode(&f); err != nil {
					if !errors.Is(err, io.EOF) {
						_ = conn.Close()
					}
					return
				}
				select {
				case m.inbox <- f:
				default:
					// A full inbox means the protocol is violated (more
					// than one outstanding collective); drop the frame and
					// let the peer time out loudly.
				}
			}
		}()
	}
}

func (m *Member) parent() int { return (m.id - 1) / 2 }

func (m *Member) children() []int {
	var out []int
	for _, c := range []int{2*m.id + 1, 2*m.id + 2} {
		if c < m.k {
			out = append(out, c)
		}
	}
	return out
}

func (m *Member) send(to int, f frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	enc, ok := m.encoders[to]
	if !ok {
		conn, err := net.Dial("tcp", m.addrs[to])
		if err != nil {
			return fmt.Errorf("netcoll: member %d dialing %d: %w", m.id, to, err)
		}
		m.conns = append(m.conns, conn)
		enc = json.NewEncoder(conn)
		m.encoders[to] = enc
	}
	return enc.Encode(f)
}

// recv waits for a frame matching seq, direction and sender.
func (m *Member) recv(seq uint64, dir string, from int) (frame, error) {
	deadline := time.After(m.timeout)
	var stash []frame
	defer func() {
		// Re-queue frames that belong to the same collective but were
		// received out of the order this call wanted.
		for _, f := range stash {
			select {
			case m.inbox <- f:
			default:
			}
		}
	}()
	for {
		select {
		case f := <-m.inbox:
			if f.Seq == seq && f.Dir == dir && f.From == from {
				return f, nil
			}
			stash = append(stash, f)
		case <-deadline:
			return frame{}, fmt.Errorf("netcoll: member %d timed out waiting for %s/%d seq %d",
				m.id, dir, from, seq)
		}
	}
}

// reduce runs one up-sweep/down-sweep episode. combine folds child
// contributions into the local value; the root's final value is broadcast
// back down and returned by every member.
func (m *Member) reduce(local frame, combine func(acc, child frame) frame) (frame, error) {
	m.seq++
	seq := m.seq
	local.Seq = seq
	acc := local
	for _, c := range m.children() {
		f, err := m.recv(seq, "up", c)
		if err != nil {
			return frame{}, err
		}
		acc = combine(acc, f)
	}
	if m.id != 0 {
		acc.Dir = "up"
		acc.From = m.id
		if err := m.send(m.parent(), acc); err != nil {
			return frame{}, err
		}
		res, err := m.recv(seq, "down", m.parent())
		if err != nil {
			return frame{}, err
		}
		acc = res
	}
	acc.Dir = "down"
	for _, c := range m.children() {
		out := acc
		out.From = m.id
		if err := m.send(c, out); err != nil {
			return frame{}, err
		}
	}
	return acc, nil
}

// Barrier blocks until every member has entered it.
func (m *Member) Barrier() error {
	_, err := m.reduce(frame{}, func(acc, _ frame) frame { return acc })
	return err
}

// AllReduceMaxFloat64 returns the maximum of all contributions.
func (m *Member) AllReduceMaxFloat64(v float64) (float64, error) {
	res, err := m.reduce(frame{F: v}, func(acc, child frame) frame {
		if child.F > acc.F {
			acc.F = child.F
		}
		return acc
	})
	return res.F, err
}

// AllReduceSumInt64 returns the sum of all contributions.
func (m *Member) AllReduceSumInt64(v int64) (int64, error) {
	res, err := m.reduce(frame{I: v}, func(acc, child frame) frame {
		acc.I += child.I
		return acc
	})
	return res.I, err
}

// AllReduceSumVecInt64 sums equal-length vectors element-wise across all
// members. With each member contributing its value at its own index, the
// call doubles as an all-gather — the pattern the distributed PHF uses to
// learn every node's free-processor count.
func (m *Member) AllReduceSumVecInt64(v []int64) ([]int64, error) {
	res, err := m.reduce(frame{Vec: append([]int64(nil), v...)}, func(acc, child frame) frame {
		if len(child.Vec) != len(acc.Vec) {
			// Length mismatch indicates a protocol violation; poison the
			// result visibly rather than panicking inside the reduction.
			acc.Vec = nil
			return acc
		}
		for i := range acc.Vec {
			acc.Vec[i] += child.Vec[i]
		}
		return acc
	})
	if err != nil {
		return nil, err
	}
	if res.Vec == nil {
		return nil, fmt.Errorf("netcoll: member %d vector length mismatch in all-reduce", m.id)
	}
	return res.Vec, nil
}

// BroadcastFloat64 distributes the root member's value.
func (m *Member) BroadcastFloat64(v float64) (float64, error) {
	res, err := m.reduce(frame{F: v}, func(acc, _ frame) frame { return acc })
	if err != nil {
		return 0, err
	}
	return res.F, nil
}

// PrefixSumInt64 returns an exclusive prefix sum and the total. The prefix
// order is the reduction tree's preorder (member 0 first, then the left
// subtree, then the right), which is fixed and identical for every member
// and every call — exactly what unique-slot assignment (PHF's
// free-processor numbering) needs; callers must not assume ascending
// member-id order. The up-sweep accumulates subtree sums; the down-sweep
// hands each subtree its base offset.
func (m *Member) PrefixSumInt64(v int64) (before, total int64, err error) {
	m.seq++
	seq := m.seq

	// Up-sweep: collect child subtree sums (order matters: left, right).
	children := m.children()
	childSums := make([]int64, len(children))
	sub := v
	for i, c := range children {
		f, e := m.recv(seq, "up", c)
		if e != nil {
			return 0, 0, e
		}
		childSums[i] = f.I
		sub += f.I
	}
	var base int64
	if m.id != 0 {
		if e := m.send(m.parent(), frame{Seq: seq, Dir: "up", From: m.id, I: sub}); e != nil {
			return 0, 0, e
		}
		f, e := m.recv(seq, "down", m.parent())
		if e != nil {
			return 0, 0, e
		}
		base = f.Pre
		total = f.I
	} else {
		total = sub
	}
	// In-order convention: the member's own value precedes its subtrees'.
	// Left child's base is base+v; right child's is base+v+leftSum.
	run := base + v
	for i, c := range children {
		if e := m.send(c, frame{Seq: seq, Dir: "down", From: m.id, Pre: run, I: total}); e != nil {
			return 0, 0, e
		}
		run += childSums[i]
	}
	return base, total, nil
}

// Close shuts the member down.
func (m *Member) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	_ = m.ln.Close()
	for _, c := range m.conns {
		_ = c.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
}
