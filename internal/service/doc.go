// Package service is the network serving surface over the bisectlb
// facade: a stdlib-only HTTP/JSON daemon that turns problem specs into
// partition plans with their guarantee bounds.
//
// The paper frames its algorithms as the kernel of a load-balancing
// service invoked repeatedly as workloads drift; this package supplies
// the systems half of that framing. Every request canonicalises to a
// deterministic key (problem specs are pure functions of their
// parameters), which feeds a sharded LRU plan cache and singleflight
// coalescing of concurrent identical requests. Admission control is a
// bounded worker pool behind a bounded queue with typed 429/503
// rejections and per-request deadlines, and SIGTERM triggers a graceful
// drain: stop accepting, finish in-flight work, flush metrics.
//
// Endpoints:
//
//	POST /v1/balance        — problem spec + N + algorithm → partition plan
//	POST /v1/balance:batch  — many specs per request; per-item results,
//	                          one admission, in-batch dedup (batch.go)
//	GET  /healthz           — liveness and drain state
//	GET  /metricz           — the obs registry (service.* namespace) as JSON
//
// The serving hot path is engineered around DESIGN.md §10: request keys
// are canonicalised into pooled buffers (spec.go appendKey), signatures
// and cache shards use inline FNV-1a rather than hash/fnv's allocating
// hasher, cache hits are looked up by byte slice without materialising a
// key string, and cache misses for the synthetic families plan through
// the allocation-free flat planner (plan.go, core.Planner) pulled from a
// sync.Pool. A cache hit allocates nothing beyond the response encoding.
package service
