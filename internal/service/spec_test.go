package service

import (
	"strings"
	"testing"
)

// TestAppendKeyCanonicalisation pins the canonical key against the
// properties the cache relies on: algorithm case/space insensitivity,
// κ=0 ≡ κ=1, and deadline exclusion.
func TestAppendKeyCanonicalisation(t *testing.T) {
	base := BalanceRequest{
		Spec:      ProblemSpec{Family: "uniform", Weight: 1, Lo: 0.1, Hi: 0.5, Seed: 9},
		N:         64,
		Algorithm: "ba-hf",
		Alpha:     0.1,
	}
	a := base
	b := base
	b.Algorithm = "  BA-HF "
	b.Kappa = 1
	b.DeadlineMS = 500
	if a.cacheKey() != b.cacheKey() {
		t.Fatalf("equivalent requests canonicalise differently:\n%q\n%q", a.cacheKey(), b.cacheKey())
	}
	c := base
	c.Kappa = 2
	if a.cacheKey() == c.cacheKey() {
		t.Fatal("different κ collapsed to one key")
	}
	if !strings.Contains(a.cacheKey(), "alg=BA-HF") {
		t.Fatalf("algorithm not upper-cased in key: %q", a.cacheKey())
	}
}

// TestAppendKeyAllocationFree is the spec-path regression test promised
// in DESIGN.md §10: canonicalising into a reused buffer is allocation
// free, and the signature costs at most its one output string.
func TestAppendKeyAllocationFree(t *testing.T) {
	reqs := []BalanceRequest{
		{Spec: ProblemSpec{Family: "uniform", Weight: 1, Lo: 0.1, Hi: 0.5, Seed: 9}, N: 64, Algorithm: "HF"},
		{Spec: ProblemSpec{Family: "list", Elems: 1000, SplitAlpha: 0.2, Seed: 1}, N: 128, Algorithm: "ba-hf", Alpha: 0.2, Kappa: 2},
		{Spec: ProblemSpec{Family: "quadrature", Split: "median", Seed: 3}, N: 16, Algorithm: "PHF", Alpha: 0.25},
	}
	buf := make([]byte, 0, 256)
	for i := range reqs {
		req := &reqs[i]
		if a := testing.AllocsPerRun(100, func() { buf = req.appendKey(buf[:0]) }); a != 0 {
			t.Errorf("%s: appendKey allocates %v/op, want 0", req.Spec.Family, a)
		}
	}
	key := reqs[0].appendKey(nil)
	if a := testing.AllocsPerRun(100, func() { _ = signatureBytes(key) }); a > 1 {
		t.Errorf("signatureBytes allocates %v/op, want ≤ 1", a)
	}
}

// TestSignatureFormsAgree pins the string and byte signature forms to
// each other (the handler uses whichever avoids a conversion).
func TestSignatureFormsAgree(t *testing.T) {
	req := BalanceRequest{Spec: ProblemSpec{Family: "fixed", Weight: 1, SplitAlpha: 0.4}, N: 8, Algorithm: "BA"}
	key := req.cacheKey()
	if signature(key) != signatureBytes([]byte(key)) {
		t.Fatal("signature and signatureBytes disagree")
	}
	if signature(key) == "" {
		t.Fatal("empty signature")
	}
}

// TestRealFamilySpecs pins the seed-only real-instance families
// (DESIGN.md §16): they validate, their keys are seed-discriminated,
// and they materialise through the facade.
func TestRealFamilySpecs(t *testing.T) {
	for _, fam := range []string{"graph", "spatial"} {
		a := BalanceRequest{Spec: ProblemSpec{Family: fam, Seed: 1}, N: 4, Algorithm: "HF"}
		a.normalize()
		if err := a.validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		b := a
		b.Spec.Seed = 2
		if a.cacheKey() == b.cacheKey() {
			t.Fatalf("%s: different seeds collapsed to one key: %q", fam, a.cacheKey())
		}
		p, err := a.buildProblem()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !(p.Weight() > 0) {
			t.Fatalf("%s: root weight %v", fam, p.Weight())
		}
	}
}
