package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bisectlb/internal/obs"
)

func postBalance(t *testing.T, url string, body string) (*http.Response, BalanceResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(url+"/v1/balance", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var ok BalanceResponse
	var bad errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode OK body %q: %v", buf.String(), err)
		}
	} else {
		if err := json.Unmarshal(buf.Bytes(), &bad); err != nil {
			t.Fatalf("decode error body %q: %v", buf.String(), err)
		}
	}
	return resp, ok, bad
}

const uniformReq = `{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":%d,"algorithm":%q,"alpha":0.1}`

func TestBalanceEndToEnd(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, alg := range []string{"HF", "BA", "BA-HF", "PHF"} {
		resp, plan, _ := postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 7, 64, alg))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if len(plan.Parts) == 0 || len(plan.Parts) > 64 {
			t.Fatalf("%s: %d parts", alg, len(plan.Parts))
		}
		var sum float64
		for _, pt := range plan.Parts {
			sum += pt.Weight
		}
		if diff := sum - plan.Total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: parts sum %g, total %g", alg, sum, plan.Total)
		}
		if plan.Guarantee <= 0 {
			t.Fatalf("%s: missing guarantee bound with declared alpha", alg)
		}
		if plan.Ratio > plan.Guarantee {
			t.Fatalf("%s: ratio %g exceeds guarantee %g", alg, plan.Ratio, plan.Guarantee)
		}
		if plan.Signature == "" {
			t.Fatalf("%s: missing signature", alg)
		}
	}
}

func TestBalanceCacheHit(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body := fmt.Sprintf(uniformReq, 42, 128, "HF")
	resp1, plan1, _ := postBalance(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK || plan1.Cached {
		t.Fatalf("first request: status %d cached %v", resp1.StatusCode, plan1.Cached)
	}
	if resp1.Header.Get("X-Lbserve-Cache") != "miss" {
		t.Fatalf("first request cache header = %q", resp1.Header.Get("X-Lbserve-Cache"))
	}
	resp2, plan2, _ := postBalance(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK || !plan2.Cached {
		t.Fatalf("second request: status %d cached %v, want cache hit", resp2.StatusCode, plan2.Cached)
	}
	if resp2.Header.Get("X-Lbserve-Cache") != "hit" {
		t.Fatalf("second request cache header = %q", resp2.Header.Get("X-Lbserve-Cache"))
	}
	if plan1.Signature != plan2.Signature || plan1.Ratio != plan2.Ratio {
		t.Fatal("cached plan differs from computed plan")
	}
	sn := srv.Registry().Snapshot()
	if sn.Counters[mCacheHits] < 1 {
		t.Fatalf("cache_hits = %d, want ≥ 1", sn.Counters[mCacheHits])
	}
	// A request that differs only in elided defaults must still hit.
	resp3, plan3, _ := postBalance(t, ts.URL,
		`{"spec":{"family":"uniform","weight":1,"lo":0.1,"hi":0.5,"seed":42},"n":128,"algorithm":"hf","alpha":0.1}`)
	if resp3.StatusCode != http.StatusOK || !plan3.Cached {
		t.Fatal("canonicalisation failed: equivalent request missed the cache")
	}
}

func TestBalanceTypedRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"invalid json", `{"spec":`, 400, "bad_request"},
		{"unknown field", `{"zpec":{}}`, 400, "bad_request"},
		{"missing family", `{"spec":{},"n":4}`, 400, "bad_spec"},
		{"unknown family", `{"spec":{"family":"warp"},"n":4}`, 400, "bad_spec"},
		{"bad uniform bounds", `{"spec":{"family":"uniform","lo":0.6,"hi":0.7},"n":4}`, 400, "bad_spec"},
		{"unknown algorithm", fmt.Sprintf(uniformReq, 1, 4, "quantum"), 400, "unknown_algorithm"},
		{"phf without alpha", `{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":4,"algorithm":"PHF"}`, 400, "alpha_required"},
		{"bad alpha", `{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":4,"algorithm":"PHF","alpha":0.9}`, 400, "bad_alpha"},
		{"bad kappa", `{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":4,"algorithm":"BA-HF","alpha":0.2,"kappa":-1}`, 400, "bad_kappa"},
		{"bad n", `{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":0}`, 400, "bad_n"},
		{"negative deadline", `{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":4,"deadline_ms":-1}`, 400, "bad_spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, bad := postBalance(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status || bad.Error.Code != tc.code {
				t.Fatalf("status/code = %d/%q, want %d/%q (%s)",
					resp.StatusCode, bad.Error.Code, tc.status, tc.code, bad.Error.Message)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/balance"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/balance = %v, %v; want 405", resp.StatusCode, err)
	}
}

// TestAdmissionQueueFull saturates a 1-worker, depth-1 pool through the
// HTTP surface and checks the overflow request is shed with a typed 429.
func TestAdmissionQueueFull(t *testing.T) {
	gate := make(chan struct{})
	var computes atomic.Int64
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Hooks:      Hooks{PreCompute: func() { computes.Add(1); <-gate }},
	})
	ts := httptest.NewServer(srv.Handler())
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer closeGate()

	// First occupy the worker, then fill the queue — posting both
	// concurrently races the filler against the worker's dequeue of the
	// holder, in which case the filler itself is shed and the queue
	// never reaches saturation.
	var wg sync.WaitGroup
	results := make(chan int, 2)
	post := func(seed int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, _ := postBalance(t, ts.URL, fmt.Sprintf(uniformReq, seed, 32, "HF"))
			results <- resp.StatusCode
		}()
	}
	post(0)
	waitFor(t, "worker held", func() bool { return computes.Load() >= 1 })
	post(1)
	waitFor(t, "queue filled", func() bool { return srv.pool.queuedLen() >= 1 })

	resp, _, bad := postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 99, 32, "HF"))
	if resp.StatusCode != http.StatusTooManyRequests || bad.Error.Code != "queue_full" {
		t.Fatalf("overflow = %d/%q, want 429/queue_full", resp.StatusCode, bad.Error.Code)
	}

	closeGate()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted request finished %d, want 200", code)
		}
	}
	if n := srv.Registry().Snapshot().Counters[mRejectedQueueFull]; n != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", n)
	}
}

// TestSingleflightCoalescingHTTP holds one computation in flight and
// fires identical requests at it; every duplicate must coalesce onto the
// single compute.
func TestSingleflightCoalescingHTTP(t *testing.T) {
	gate := make(chan struct{})
	var computes atomic.Int64
	var once sync.Once
	entered := make(chan struct{})
	srv := New(Config{
		Workers:    2,
		QueueDepth: 8,
		Hooks: Hooks{PreCompute: func() {
			computes.Add(1)
			once.Do(func() { close(entered) })
			<-gate
		}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body := fmt.Sprintf(uniformReq, 5, 64, "BA")
	var wg sync.WaitGroup
	statuses := make(chan int, 6)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _, _ := postBalance(t, ts.URL, body)
		statuses <- resp.StatusCode
	}()
	<-entered
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, _ := postBalance(t, ts.URL, body)
			statuses <- resp.StatusCode
		}()
	}
	// Give the followers time to join the flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Registry().Counter(mRequests).Value() < 6 {
		if time.Now().After(deadline) {
			t.Fatal("followers never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("status %d, want 200", code)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight should coalesce)", got)
	}
	if n := srv.Registry().Snapshot().Counters[mCoalesced]; n < 1 {
		t.Fatalf("coalesced = %d, want ≥ 1", n)
	}
}

// TestGracefulDrain is the shutdown contract: a request in flight when
// SIGTERM-equivalent Shutdown arrives completes with 200, while the
// listener refuses new connections and late requests get typed 503s.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv := New(Config{
		Workers: 2,
		Hooks:   Hooks{PreCompute: func() { once.Do(func() { close(entered) }); <-gate }},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// Put one request in flight and hold it there.
	inflight := make(chan int, 1)
	go func() {
		resp, _, _ := postBalance(t, base, fmt.Sprintf(uniformReq, 3, 64, "HF"))
		inflight <- resp.StatusCode
	}()
	<-entered

	// Begin the drain; it must block on the in-flight request.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// The listener must start refusing new connections.
	refused := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		conn, err := net.DialTimeout("tcp", addr.String(), 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("listener still accepting connections during drain")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	default:
	}

	// A request reaching the handler during the drain gets a typed 503.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/balance",
		strings.NewReader(fmt.Sprintf(uniformReq, 4, 16, "HF"))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining balance = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining healthz = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}

	// Release the held computation: the in-flight request must complete
	// with 200 and Shutdown must then return cleanly.
	close(gate)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

func TestHealthzAndMetricz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	resp.Body.Close()

	postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 1, 16, "HF"))
	resp, err = http.Get(ts.URL + "/metricz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz = %v, %v", resp, err)
	}
	var sn obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatalf("metricz decode: %v", err)
	}
	resp.Body.Close()
	if sn.Counters[mRequests] < 1 || sn.Counters[mOK] < 1 {
		t.Fatalf("metricz counters = %v, want requests and ok ≥ 1", sn.Counters)
	}
	if _, ok := sn.Histograms[mLatencyNs]; !ok {
		t.Fatal("metricz missing service.latency_ns histogram")
	}
}

// TestAllFamiliesServe exercises every spec family once through the HTTP
// surface.
func TestAllFamiliesServe(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	bodies := []string{
		`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":32}`,
		`{"spec":{"family":"fixed","split_alpha":0.25},"n":32}`,
		`{"spec":{"family":"list","elems":2000,"split_alpha":0.2,"seed":1},"n":32}`,
		`{"spec":{"family":"fem","seed":1},"n":32}`,
		`{"spec":{"family":"quadrature","seed":1},"n":32}`,
		`{"spec":{"family":"searchtree","seed":1},"n":32}`,
	}
	for _, body := range bodies {
		resp, plan, bad := postBalance(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s → %d (%s)", body, resp.StatusCode, bad.Error.Message)
		}
		if len(plan.Parts) == 0 {
			t.Fatalf("%s → empty plan", body)
		}
	}
}
