package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueFullRetryAfter is the regression test for the Retry-After
// satellite: a queue_full 429 must carry a parseable Retry-After header
// so clients back off instead of hammering a saturated server.
func TestQueueFullRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	var computes atomic.Int64
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Hooks:      Hooks{PreCompute: func() { computes.Add(1); <-gate }},
	})
	ts := httptest.NewServer(srv.Handler())
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	defer closeGate()

	// Sequence the saturation deterministically: first occupy the worker,
	// then fill the queue — posting both concurrently races the filler
	// against the worker's dequeue of the holder.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 1, 32, "HF"))
	}()
	waitFor(t, "worker held", func() bool { return computes.Load() >= 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 2, 32, "HF"))
	}()
	waitFor(t, "queue filled", func() bool { return srv.pool.queuedLen() >= 1 })

	resp, _, bad := postBalance(t, ts.URL, fmt.Sprintf(uniformReq, 99, 32, "HF"))
	if resp.StatusCode != http.StatusTooManyRequests || bad.Error.Code != "queue_full" {
		t.Fatalf("overflow = %d/%q, want 429/queue_full", resp.StatusCode, bad.Error.Code)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 30]", ra)
	}
	closeGate()
	wg.Wait()
}

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: condition never reached", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownTimeoutDistinct is the drained-event satellite: when the
// drain budget expires with work still in flight, Shutdown must NOT
// claim service.drained — it emits service.drain_timeout and /healthz
// reports status drain_timeout.
func TestShutdownTimeoutDistinct(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv := New(Config{
		Workers: 1,
		Hooks:   Hooks{PreCompute: func() { once.Do(func() { close(entered) }); <-gate }},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	done := make(chan struct{})
	go func() {
		postBalance(t, base, fmt.Sprintf(uniformReq, 1, 32, "HF"))
		close(done)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown with held work should report the expired budget")
	}

	var drained, timedOut bool
	for _, e := range srv.Registry().Snapshot().Events {
		switch e.Name {
		case "service.drained":
			drained = true
		case "service.drain_timeout":
			timedOut = true
		}
	}
	if drained {
		t.Fatal("service.drained emitted despite the drain timing out")
	}
	if !timedOut {
		t.Fatal("service.drain_timeout not emitted")
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "drain_timeout") {
		t.Fatalf("healthz after drain timeout = %d %q, want 503 drain_timeout", rec.Code, rec.Body.String())
	}

	close(gate)
	<-done
	srv.pool.Stop()
}

// TestCleanShutdownEmitsDrained is the positive half of the satellite: a
// drain that completes inside its budget still announces service.drained.
func TestCleanShutdownEmitsDrained(t *testing.T) {
	srv := New(Config{Workers: 1})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	for _, e := range srv.Registry().Snapshot().Events {
		if e.Name == "service.drained" {
			return
		}
	}
	t.Fatal("clean drain did not emit service.drained")
}

// TestSLOShedEndToEnd drives sustained traffic through a server whose
// target p99 is impossible (1ns), and checks the admission controller
// reacts: requests start shedding with 429 slo_shed + Retry-After, and
// /healthz exposes the controller state.
func TestSLOShedEndToEnd(t *testing.T) {
	srv := New(Config{
		Workers:       2,
		TargetP99:     time.Nanosecond,
		SLOTick:       20 * time.Millisecond,
		SLOEpochs:     8,
		CacheCapacity: -1, // every request computes
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	deadline := time.Now().Add(10 * time.Second)
	var shed *http.Response
	var shedBody errorBody
	for seed := 0; time.Now().Before(deadline); seed++ {
		resp, _, bad := postBalance(t, ts.URL, fmt.Sprintf(uniformReq, seed, 64, "HF"))
		if resp.StatusCode == http.StatusTooManyRequests && bad.Error.Code == "slo_shed" {
			shed, shedBody = resp, bad
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected %d/%q while waiting for shed", resp.StatusCode, bad.Error.Code)
		}
	}
	if shed == nil {
		t.Fatal("controller never shed despite an impossible SLO")
	}
	if _ = shedBody; shed.Header.Get("Retry-After") == "" {
		t.Fatal("slo_shed 429 missing Retry-After")
	}
	if f := srv.adm.admitFrac(); f >= 1 {
		t.Fatalf("admitFrac = %g after shedding, want < 1", f)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rec.Body.String(), "admit_permille") {
		t.Fatalf("healthz missing SLO state: %s", rec.Body.String())
	}
	snap := srv.Registry().Snapshot()
	if snap.Counters[mRejectedShed] < 1 {
		t.Fatalf("rejected_slo_shed = %d, want ≥ 1", snap.Counters[mRejectedShed])
	}
}

// TestTenantRateLimitEndToEnd checks the per-tenant token bucket on the
// compute path: a tenant over its rate gets 429 tenant_rate_limited with
// Retry-After, cache hits are never charged, and other tenants admit.
func TestTenantRateLimitEndToEnd(t *testing.T) {
	srv := New(Config{
		Workers:     2,
		TenantRate:  0.001, // effectively one token, refilled never
		TenantBurst: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	post := func(tenant string, seed int) (*http.Response, errorBody) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/balance",
			strings.NewReader(fmt.Sprintf(uniformReq, seed, 32, "HF")))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Lbserve-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var bad errorBody
		if resp.StatusCode != http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
		}
		return resp, bad
	}

	if resp, bad := post("hog", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("first compute = %d/%q, want 200", resp.StatusCode, bad.Error.Code)
	}
	resp, bad := post("hog", 2)
	if resp.StatusCode != http.StatusTooManyRequests || bad.Error.Code != "tenant_rate_limited" {
		t.Fatalf("second compute = %d/%q, want 429/tenant_rate_limited", resp.StatusCode, bad.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant_rate_limited 429 missing Retry-After")
	}
	// A cache hit doesn't spend a token — the exhausted tenant still
	// reads warm plans.
	if resp, bad := post("hog", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit for exhausted tenant = %d/%q, want 200", resp.StatusCode, bad.Error.Code)
	}
	// Another tenant has its own bucket.
	if resp, bad := post("polite", 3); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant = %d/%q, want 200", resp.StatusCode, bad.Error.Code)
	}
	snap := srv.Registry().Snapshot()
	if snap.Counters["service.tenant.hog.shed"] != 1 {
		t.Fatalf("tenant.hog.shed = %d, want 1", snap.Counters["service.tenant.hog.shed"])
	}
	if snap.Counters["service.tenant.polite.ok"] != 1 {
		t.Fatalf("tenant.polite.ok = %d, want 1", snap.Counters["service.tenant.polite.ok"])
	}
}

// TestBatchDrainingRejections is the batch half of the saturation
// satellite: once the pool is draining, a batch whose items need compute
// is rejected whole with a typed 503, and a handler-level drain refuses
// before decoding.
func TestBatchDrainingRejections(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	item := `{"spec":{"family":"uniform","lo":0.3,"hi":0.5,"seed":7},"n":16}`

	// Pool stopped but the handler flag not yet set (the window between
	// pool.Stop and the listener closing): the compute path surfaces
	// ErrDraining as a batch-level 503.
	srv.pool.Stop()
	resp, _, bad := postBatch(t, ts.URL, `{"items":[`+item+`]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != "draining" {
		t.Fatalf("stopped pool batch = %d/%q, want 503/draining", resp.StatusCode, bad.Error.Code)
	}

	// Handler-level drain flag refuses before any work.
	srv.draining.Store(true)
	resp, _, bad = postBatch(t, ts.URL, `{"items":[`+item+`]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != "draining" {
		t.Fatalf("draining batch = %d/%q, want 503/draining", resp.StatusCode, bad.Error.Code)
	}
	if n := srv.Registry().Snapshot().Counters[mRejectedDraining]; n != 2 {
		t.Fatalf("rejected_draining = %d, want 2", n)
	}
}

// TestBatchTenantShedding checks the batch endpoint honours the same
// tenant bucket as single requests.
func TestBatchTenantShedding(t *testing.T) {
	srv := New(Config{Workers: 2, TenantRate: 0.001, TenantBurst: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	batch := func(seed int) string {
		return fmt.Sprintf(`{"tenant":"hog","items":[{"spec":{"family":"uniform","lo":0.3,"hi":0.5,"seed":%d},"n":16}]}`, seed)
	}
	resp, _, bad := postBatch(t, ts.URL, batch(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch = %d/%q, want 200", resp.StatusCode, bad.Error.Code)
	}
	resp, _, bad = postBatch(t, ts.URL, batch(2))
	if resp.StatusCode != http.StatusTooManyRequests || bad.Error.Code != "tenant_rate_limited" {
		t.Fatalf("second batch = %d/%q, want 429/tenant_rate_limited", resp.StatusCode, bad.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("batch tenant 429 missing Retry-After")
	}
	// An all-hits batch spends no token.
	resp, _, bad = postBatch(t, ts.URL, batch(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached batch = %d/%q, want 200", resp.StatusCode, bad.Error.Code)
	}
}
