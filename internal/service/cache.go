package service

import (
	"container/list"
	"sync"

	"bisectlb/internal/obs"
)

// planCache is a sharded LRU over canonical request keys. Sharding keeps
// lock hold times short under concurrent load: a key hashes to one shard
// and only that shard's mutex is taken. Plans are immutable, so Get hands
// out shared pointers.
type planCache struct {
	shards []cacheShard
	mask   uint64
	reg    *obs.Registry
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// newPlanCache builds a cache of roughly capacity entries spread over
// shards (rounded up to a power of two). capacity < 1 returns nil — the
// handler treats a nil cache as "caching disabled".
func newPlanCache(capacity, shards int, reg *obs.Registry) *planCache {
	if capacity < 1 {
		return nil
	}
	if shards < 1 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > capacity {
		n = 1
	}
	perShard := (capacity + n - 1) / n
	c := &planCache{shards: make([]cacheShard, n), mask: uint64(n - 1), reg: reg}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, ll: list.New(), m: make(map[string]*list.Element)}
	}
	return c
}

// shard selects by inline FNV-1a: the hash/fnv package allocates a hasher
// per call, which a per-request lookup path cannot afford.
func (c *planCache) shard(key string) *cacheShard {
	return &c.shards[fnv64aString(key)&c.mask]
}

// Get returns the cached plan for key, promoting it to most recently
// used. Nil-safe: a nil cache always misses.
func (c *planCache) Get(key string) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		c.reg.Counter(mCacheMisses).Inc()
		return nil, false
	}
	s.ll.MoveToFront(el)
	c.reg.Counter(mCacheHits).Inc()
	return el.Value.(*cacheEntry).plan, true
}

// GetBytes is Get for a byte-slice key, avoiding the string conversion on
// the handler hot path: the map index m[string(key)] compiles to a
// zero-copy lookup, so a cache hit allocates nothing.
func (c *planCache) GetBytes(key []byte) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[fnv64a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[string(key)]
	if !ok {
		c.reg.Counter(mCacheMisses).Inc()
		return nil, false
	}
	s.ll.MoveToFront(el)
	c.reg.Counter(mCacheHits).Inc()
	return el.Value.(*cacheEntry).plan, true
}

// Put inserts or refreshes a plan, evicting the shard's least recently
// used entry when full. Nil-safe no-op.
func (c *planCache) Put(key string, plan *Plan) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, plan: plan})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		c.reg.Counter(mCacheEvictions).Inc()
	}
}

// Peek returns the cached plan for key without promoting it or counting
// a hit/miss — for observers (replication, snapshots) whose reads are
// not client traffic. Nil-safe.
func (c *planCache) Peek(key string) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).plan, true
}

// Len returns the total number of cached plans. Nil-safe.
func (c *planCache) Len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}
