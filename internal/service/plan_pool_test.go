package service

import (
	"encoding/json"
	"testing"

	"bisectlb"
	"bisectlb/internal/obs"
)

// TestPlannerPoolRetentionCaps pins the pool-stewardship bugfix: a
// scratch ballooned by one oversized request must be dropped on Put
// (counted by service.planner_pool.drops) instead of pinning its
// buffers in the pool for the process lifetime, while normally sized
// scratches keep being returned.
func TestPlannerPoolRetentionCaps(t *testing.T) {
	reg := obs.NewRegistry()

	small := &plannerScratch{pl: bisectlb.NewPlanner(64)}
	putPlannerScratch(reg, small)
	if got := reg.Counter(mPlannerPoolPuts).Value(); got != 1 {
		t.Fatalf("puts = %d after small Put, want 1", got)
	}
	if got := reg.Counter(mPlannerPoolDrops).Value(); got != 0 {
		t.Fatalf("drops = %d after small Put, want 0", got)
	}

	big := &plannerScratch{pl: bisectlb.NewPlanner(64)}
	big.plan.Parts = make([]bisectlb.FlatPart, maxPooledPartsCap+1)
	putPlannerScratch(reg, big)
	if got := reg.Counter(mPlannerPoolDrops).Value(); got != 1 {
		t.Fatalf("drops = %d after oversized parts Put, want 1", got)
	}

	// A planner whose internal buffers (not the parts slice) ballooned
	// must also be dropped — Footprint sees the arena, stack and queues.
	fat := &plannerScratch{pl: bisectlb.NewPlanner(maxPooledFootprint)}
	if fat.pl.Footprint() <= maxPooledFootprint {
		t.Fatalf("test setup: footprint %d not above cap %d", fat.pl.Footprint(), maxPooledFootprint)
	}
	putPlannerScratch(reg, fat)
	if got := reg.Counter(mPlannerPoolDrops).Value(); got != 2 {
		t.Fatalf("drops = %d after oversized planner Put, want 2", got)
	}

	// Parallel pool: same contract.
	pbig := &parallelScratch{pp: bisectlb.NewParallelPlanner(0, bisectlb.ParallelOptions{Workers: 2})}
	pbig.plan.Parts = make([]bisectlb.FlatPart, maxPooledPartsCap+1)
	putParallelScratch(reg, pbig)
	if got := reg.Counter(mPlannerPoolDrops).Value(); got != 3 {
		t.Fatalf("drops = %d after oversized parallel Put, want 3", got)
	}
}

// TestComputePlanFlatParallelRouting checks the N cutoff: a large BA
// request plans through the multicore planner (counted by
// service.planner_pool.parallel_plans) and serves the identical plan the
// sequential path serves; a small request stays sequential.
func TestComputePlanFlatParallelRouting(t *testing.T) {
	spec := ProblemSpec{Family: "uniform", Weight: 1, Lo: 0.15, Hi: 0.5, Seed: 21}
	run := func(t *testing.T, n int) (*Plan, *obs.Registry) {
		t.Helper()
		reg := obs.NewRegistry()
		req := &BalanceRequest{Spec: spec, N: n, Algorithm: "BA"}
		req.normalize()
		alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
		if err != nil {
			t.Fatal(err)
		}
		root, k, ok := flatInputs(req, alg)
		if !ok {
			t.Fatal("flatInputs rejected a flat family")
		}
		plan, err := computePlanFlat(req, alg, "sig", reg, root, k)
		if err != nil {
			t.Fatal(err)
		}
		return plan, reg
	}

	smallPlan, smallReg := run(t, parallelNCutoff/2)
	if got := smallReg.Counter(mPlannerPoolParallel).Value(); got != 0 {
		t.Fatalf("small request took the parallel path (%d plans)", got)
	}
	if len(smallPlan.Parts) == 0 {
		t.Fatal("small request produced no parts")
	}

	bigPlan, bigReg := run(t, parallelNCutoff)
	if got := bigReg.Counter(mPlannerPoolParallel).Value(); got != 1 {
		t.Fatalf("parallel_plans = %d for N=%d, want 1", got, parallelNCutoff)
	}

	// The parallel path must serve the byte-identical plan the sequential
	// planner produces for the same request.
	req := &BalanceRequest{Spec: spec, N: parallelNCutoff, Algorithm: "BA"}
	req.normalize()
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	root, k, _ := flatInputs(req, alg)
	pl := bisectlb.NewPlanner(req.N)
	var fp bisectlb.Plan
	if err := bisectlb.BalanceInto(&fp, pl, k, root, req.N, bisectlb.Config{Algorithm: alg}); err != nil {
		t.Fatal(err)
	}
	seqPlan := servePlan(&fp, req, alg, "sig")
	a, err := json.Marshal(bigPlan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(seqPlan)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("parallel-path plan diverged from sequential plan for the same request")
	}
}
