package service

import (
	"fmt"
	"strconv"

	"bisectlb"
)

// ProblemSpec describes a problem substrate by family name and the
// parameters that pin one deterministic instance of it. Because every
// substrate in this repository is a pure function of its parameters and
// seed, a spec is a complete, canonicalisable identity for the root
// problem — which is what makes partition plans cacheable.
type ProblemSpec struct {
	// Family selects the substrate: "uniform", "fixed", "list", "fem",
	// "quadrature", "searchtree", "graph" or "spatial". The last two are
	// the seed-derived real-instance generators of DESIGN.md §16 —
	// file-loaded instances stay out of specs so a spec remains a pure,
	// canonicalisable parameter set.
	Family string `json:"family"`
	// Weight is the root weight for the synthetic families (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Lo, Hi bound the per-bisection α̂ draw of the "uniform" family.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// SplitAlpha is the split parameter of the "fixed" family and the
	// pivot guard of the "list" family.
	SplitAlpha float64 `json:"split_alpha,omitempty"`
	// Elems is the element count of the "list" family.
	Elems int `json:"elems,omitempty"`
	// Split selects the quadrature bisector: "median" (default) or
	// "midpoint".
	Split string `json:"split,omitempty"`
	// Seed pins the instance for the seeded families.
	Seed uint64 `json:"seed"`
}

// BalanceRequest is the body of POST /v1/balance.
type BalanceRequest struct {
	Spec ProblemSpec `json:"spec"`
	// N is the processor count to partition for.
	N int `json:"n"`
	// Algorithm names the strategy ("HF", "BA", "BA-HF", "PHF",
	// "parallel-BA", "parallel-PHF"); default "HF".
	Algorithm string `json:"algorithm,omitempty"`
	// Alpha is the declared class α, required by PHF and BA-HF.
	Alpha float64 `json:"alpha,omitempty"`
	// Kappa is BA-HF's threshold parameter (0 means 1.0).
	Kappa float64 `json:"kappa,omitempty"`
	// DeadlineMS caps the request's time in queue + compute; 0 uses the
	// server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Tenant identifies the caller for fairness and rate limiting when
	// the tenant header is absent. Like DeadlineMS it shapes admission,
	// not the plan, so it is excluded from the cache key.
	Tenant string `json:"tenant,omitempty"`
}

// normalize fills defaulted fields so that requests differing only in
// elided defaults canonicalise to the same cache key.
func (r *BalanceRequest) normalize() {
	if r.Algorithm == "" {
		r.Algorithm = "HF"
	}
	switch r.Spec.Family {
	case "uniform", "fixed":
		if r.Spec.Weight == 0 {
			r.Spec.Weight = 1
		}
	}
	if r.Spec.Family == "quadrature" && r.Spec.Split == "" {
		r.Spec.Split = "median"
	}
}

// validate rejects malformed specs before any work is admitted. The
// algorithm-level parameters (n, alpha, kappa) are deliberately NOT fully
// validated here: they go straight to bisectlb.Balance, whose typed
// errors the handler maps to client responses — the facade is the single
// source of truth for its own preconditions.
func (r *BalanceRequest) validate() error {
	switch r.Spec.Family {
	case "uniform":
		if !(r.Spec.Lo > 0 && r.Spec.Lo <= r.Spec.Hi && r.Spec.Hi <= 0.5) {
			return fmt.Errorf("uniform family needs 0 < lo ≤ hi ≤ 1/2, got [%g, %g]", r.Spec.Lo, r.Spec.Hi)
		}
		if !(r.Spec.Weight > 0) {
			return fmt.Errorf("uniform family needs weight > 0, got %g", r.Spec.Weight)
		}
	case "fixed":
		if !(r.Spec.SplitAlpha > 0 && r.Spec.SplitAlpha <= 0.5) {
			return fmt.Errorf("fixed family needs 0 < split_alpha ≤ 1/2, got %g", r.Spec.SplitAlpha)
		}
		if !(r.Spec.Weight > 0) {
			return fmt.Errorf("fixed family needs weight > 0, got %g", r.Spec.Weight)
		}
	case "list":
		if r.Spec.Elems < 1 {
			return fmt.Errorf("list family needs elems ≥ 1, got %d", r.Spec.Elems)
		}
		if !(r.Spec.SplitAlpha > 0 && r.Spec.SplitAlpha <= 0.5) {
			return fmt.Errorf("list family needs 0 < split_alpha ≤ 1/2, got %g", r.Spec.SplitAlpha)
		}
	case "fem", "searchtree", "graph", "spatial":
		// Seed-only families.
	case "quadrature":
		if r.Spec.Split != "median" && r.Spec.Split != "midpoint" {
			return fmt.Errorf("quadrature split must be median or midpoint, got %q", r.Spec.Split)
		}
	case "":
		return fmt.Errorf("spec.family is required")
	default:
		return fmt.Errorf("unknown problem family %q", r.Spec.Family)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be ≥ 0, got %d", r.DeadlineMS)
	}
	return nil
}

// buildProblem materialises the spec through the public facade. Specs are
// deterministic, so rebuilding yields an identical root every time.
func (r *BalanceRequest) buildProblem() (bisectlb.Problem, error) {
	switch r.Spec.Family {
	case "uniform":
		return bisectlb.NewSyntheticProblem(r.Spec.Weight, r.Spec.Lo, r.Spec.Hi, r.Spec.Seed)
	case "fixed":
		return bisectlb.NewFixedProblem(r.Spec.Weight, r.Spec.SplitAlpha)
	case "list":
		return bisectlb.NewListProblem(r.Spec.Elems, r.Spec.SplitAlpha, r.Spec.Seed)
	case "fem":
		return bisectlb.DefaultFEMTreeProblem(r.Spec.Seed), nil
	case "quadrature":
		split := bisectlb.QuadratureMedianSplit
		if r.Spec.Split == "midpoint" {
			split = bisectlb.QuadratureMidpointSplit
		}
		return bisectlb.NewQuadratureProblem(split, r.Spec.Seed)
	case "searchtree":
		return bisectlb.DefaultSearchTreeProblem(r.Spec.Seed), nil
	case "graph":
		return bisectlb.NewGraphProblem(r.Spec.Seed)
	case "spatial":
		return bisectlb.NewSpatialProblem(r.Spec.Seed)
	default:
		return nil, fmt.Errorf("unknown problem family %q", r.Spec.Family)
	}
}

// appendKey appends the canonical identity of the partition plan this
// request asks for to b and returns the extended slice. Two requests with
// the same key receive byte-identical plans, so the key is safe to cache
// and to coalesce on. Deadline is excluded: it shapes admission, not the
// plan.
//
// The append-into-caller-buffer form exists for the serving hot path: the
// handler keeps key buffers in a pool, so canonicalising a request does
// not allocate (the fmt/Builder-based predecessor cost ~10 allocations
// per request; DESIGN.md §10). Callers that don't care use cacheKey.
func (r *BalanceRequest) appendKey(b []byte) []byte {
	b = append(b, "f="...)
	b = append(b, r.Spec.Family...)
	switch r.Spec.Family {
	case "uniform":
		b = appendFloatField(b, ",w=", r.Spec.Weight)
		b = appendFloatField(b, ",lo=", r.Spec.Lo)
		b = appendFloatField(b, ",hi=", r.Spec.Hi)
		b = appendSeedField(b, r.Spec.Seed)
	case "fixed":
		b = appendFloatField(b, ",w=", r.Spec.Weight)
		b = appendFloatField(b, ",sa=", r.Spec.SplitAlpha)
	case "list":
		b = append(b, ",e="...)
		b = strconv.AppendInt(b, int64(r.Spec.Elems), 10)
		b = appendFloatField(b, ",sa=", r.Spec.SplitAlpha)
		b = appendSeedField(b, r.Spec.Seed)
	case "fem", "searchtree", "graph", "spatial":
		b = appendSeedField(b, r.Spec.Seed)
	case "quadrature":
		b = append(b, ",sp="...)
		b = append(b, r.Spec.Split...)
		b = appendSeedField(b, r.Spec.Seed)
	}
	kappa := r.Kappa
	if kappa == 0 {
		kappa = 1 // Balance's BA-HF default; canonicalise so 0 and 1 coincide
	}
	b = append(b, "|n="...)
	b = strconv.AppendInt(b, int64(r.N), 10)
	b = append(b, "|alg="...)
	b = appendUpper(b, r.Algorithm)
	b = appendFloatField(b, "|a=", r.Alpha)
	b = appendFloatField(b, "|k=", kappa)
	return b
}

// cacheKey is appendKey as a string, for tests and one-off callers.
func (r *BalanceRequest) cacheKey() string { return string(r.appendKey(nil)) }

func appendFloatField(b []byte, label string, v float64) []byte {
	b = append(b, label...)
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendSeedField(b []byte, seed uint64) []byte {
	b = append(b, ",s="...)
	return strconv.AppendUint(b, seed, 10)
}

// appendUpper appends s upper-cased with surrounding spaces trimmed,
// byte-wise (algorithm names are ASCII), matching
// strings.ToUpper(strings.TrimSpace(s)) without allocating.
func appendUpper(b []byte, s string) []byte {
	start, end := 0, len(s)
	for start < end && isSpace(s[start]) {
		start++
	}
	for end > start && isSpace(s[end-1]) {
		end--
	}
	for i := start; i < end; i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// FNV-1a, inlined: hash/fnv allocates a hasher object per call, which the
// per-request signature and shard-selection paths cannot afford.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func fnv64aString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// signature condenses a cache key into the short hex form reported in
// plans and logs. It equals FNV-1a of the key, matching signatureBytes.
func signature(key string) string {
	return strconv.FormatUint(fnv64aString(key), 16)
}

// signatureBytes is signature for a byte-slice key.
func signatureBytes(key []byte) string {
	return strconv.FormatUint(fnv64a(key), 16)
}
