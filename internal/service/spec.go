package service

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"bisectlb"
)

// ProblemSpec describes a problem substrate by family name and the
// parameters that pin one deterministic instance of it. Because every
// substrate in this repository is a pure function of its parameters and
// seed, a spec is a complete, canonicalisable identity for the root
// problem — which is what makes partition plans cacheable.
type ProblemSpec struct {
	// Family selects the substrate: "uniform", "fixed", "list", "fem",
	// "quadrature" or "searchtree".
	Family string `json:"family"`
	// Weight is the root weight for the synthetic families (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Lo, Hi bound the per-bisection α̂ draw of the "uniform" family.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// SplitAlpha is the split parameter of the "fixed" family and the
	// pivot guard of the "list" family.
	SplitAlpha float64 `json:"split_alpha,omitempty"`
	// Elems is the element count of the "list" family.
	Elems int `json:"elems,omitempty"`
	// Split selects the quadrature bisector: "median" (default) or
	// "midpoint".
	Split string `json:"split,omitempty"`
	// Seed pins the instance for the seeded families.
	Seed uint64 `json:"seed"`
}

// BalanceRequest is the body of POST /v1/balance.
type BalanceRequest struct {
	Spec ProblemSpec `json:"spec"`
	// N is the processor count to partition for.
	N int `json:"n"`
	// Algorithm names the strategy ("HF", "BA", "BA-HF", "PHF",
	// "parallel-BA", "parallel-PHF"); default "HF".
	Algorithm string `json:"algorithm,omitempty"`
	// Alpha is the declared class α, required by PHF and BA-HF.
	Alpha float64 `json:"alpha,omitempty"`
	// Kappa is BA-HF's threshold parameter (0 means 1.0).
	Kappa float64 `json:"kappa,omitempty"`
	// DeadlineMS caps the request's time in queue + compute; 0 uses the
	// server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// normalize fills defaulted fields so that requests differing only in
// elided defaults canonicalise to the same cache key.
func (r *BalanceRequest) normalize() {
	if r.Algorithm == "" {
		r.Algorithm = "HF"
	}
	switch r.Spec.Family {
	case "uniform", "fixed":
		if r.Spec.Weight == 0 {
			r.Spec.Weight = 1
		}
	}
	if r.Spec.Family == "quadrature" && r.Spec.Split == "" {
		r.Spec.Split = "median"
	}
}

// validate rejects malformed specs before any work is admitted. The
// algorithm-level parameters (n, alpha, kappa) are deliberately NOT fully
// validated here: they go straight to bisectlb.Balance, whose typed
// errors the handler maps to client responses — the facade is the single
// source of truth for its own preconditions.
func (r *BalanceRequest) validate() error {
	switch r.Spec.Family {
	case "uniform":
		if !(r.Spec.Lo > 0 && r.Spec.Lo <= r.Spec.Hi && r.Spec.Hi <= 0.5) {
			return fmt.Errorf("uniform family needs 0 < lo ≤ hi ≤ 1/2, got [%g, %g]", r.Spec.Lo, r.Spec.Hi)
		}
		if !(r.Spec.Weight > 0) {
			return fmt.Errorf("uniform family needs weight > 0, got %g", r.Spec.Weight)
		}
	case "fixed":
		if !(r.Spec.SplitAlpha > 0 && r.Spec.SplitAlpha <= 0.5) {
			return fmt.Errorf("fixed family needs 0 < split_alpha ≤ 1/2, got %g", r.Spec.SplitAlpha)
		}
		if !(r.Spec.Weight > 0) {
			return fmt.Errorf("fixed family needs weight > 0, got %g", r.Spec.Weight)
		}
	case "list":
		if r.Spec.Elems < 1 {
			return fmt.Errorf("list family needs elems ≥ 1, got %d", r.Spec.Elems)
		}
		if !(r.Spec.SplitAlpha > 0 && r.Spec.SplitAlpha <= 0.5) {
			return fmt.Errorf("list family needs 0 < split_alpha ≤ 1/2, got %g", r.Spec.SplitAlpha)
		}
	case "fem", "searchtree":
		// Seed-only families.
	case "quadrature":
		if r.Spec.Split != "median" && r.Spec.Split != "midpoint" {
			return fmt.Errorf("quadrature split must be median or midpoint, got %q", r.Spec.Split)
		}
	case "":
		return fmt.Errorf("spec.family is required")
	default:
		return fmt.Errorf("unknown problem family %q", r.Spec.Family)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be ≥ 0, got %d", r.DeadlineMS)
	}
	return nil
}

// buildProblem materialises the spec through the public facade. Specs are
// deterministic, so rebuilding yields an identical root every time.
func (r *BalanceRequest) buildProblem() (bisectlb.Problem, error) {
	switch r.Spec.Family {
	case "uniform":
		return bisectlb.NewSyntheticProblem(r.Spec.Weight, r.Spec.Lo, r.Spec.Hi, r.Spec.Seed)
	case "fixed":
		return bisectlb.NewFixedProblem(r.Spec.Weight, r.Spec.SplitAlpha)
	case "list":
		return bisectlb.NewListProblem(r.Spec.Elems, r.Spec.SplitAlpha, r.Spec.Seed)
	case "fem":
		return bisectlb.DefaultFEMTreeProblem(r.Spec.Seed), nil
	case "quadrature":
		split := bisectlb.QuadratureMedianSplit
		if r.Spec.Split == "midpoint" {
			split = bisectlb.QuadratureMidpointSplit
		}
		return bisectlb.NewQuadratureProblem(split, r.Spec.Seed)
	case "searchtree":
		return bisectlb.DefaultSearchTreeProblem(r.Spec.Seed), nil
	default:
		return nil, fmt.Errorf("unknown problem family %q", r.Spec.Family)
	}
}

// cacheKey returns the canonical identity of the partition plan this
// request asks for. Two requests with the same key receive byte-identical
// plans, so the key is safe to cache and to coalesce on. Deadline is
// excluded: it shapes admission, not the plan.
func (r *BalanceRequest) cacheKey() string {
	var b strings.Builder
	b.WriteString("f=")
	b.WriteString(r.Spec.Family)
	switch r.Spec.Family {
	case "uniform":
		b.WriteString(",w=" + g(r.Spec.Weight) + ",lo=" + g(r.Spec.Lo) + ",hi=" + g(r.Spec.Hi) + ",s=" + strconv.FormatUint(r.Spec.Seed, 10))
	case "fixed":
		b.WriteString(",w=" + g(r.Spec.Weight) + ",sa=" + g(r.Spec.SplitAlpha))
	case "list":
		b.WriteString(",e=" + strconv.Itoa(r.Spec.Elems) + ",sa=" + g(r.Spec.SplitAlpha) + ",s=" + strconv.FormatUint(r.Spec.Seed, 10))
	case "fem", "searchtree":
		b.WriteString(",s=" + strconv.FormatUint(r.Spec.Seed, 10))
	case "quadrature":
		b.WriteString(",sp=" + r.Spec.Split + ",s=" + strconv.FormatUint(r.Spec.Seed, 10))
	}
	kappa := r.Kappa
	if kappa == 0 {
		kappa = 1 // Balance's BA-HF default; canonicalise so 0 and 1 coincide
	}
	b.WriteString("|n=" + strconv.Itoa(r.N))
	b.WriteString("|alg=" + strings.ToUpper(strings.TrimSpace(r.Algorithm)))
	b.WriteString("|a=" + g(r.Alpha))
	b.WriteString("|k=" + g(kappa))
	return b.String()
}

// g formats a float canonically (shortest round-trip representation).
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// signature condenses a cache key into the short hex form reported in
// plans and logs.
func signature(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return strconv.FormatUint(h.Sum64(), 16)
}
