package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// warmServer computes nSeeds distinct plans so the cache has content.
func warmServer(t *testing.T, srv *Server, nSeeds int) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for seed := 0; seed < nSeeds; seed++ {
		resp, _, bad := postBalance(t, ts.URL, balanceBody(seed, 16, "HF"))
		if resp.StatusCode != 200 {
			t.Fatalf("warmup seed %d: %d %s", seed, resp.StatusCode, bad.Error.Message)
		}
	}
}

func balanceBody(seed, n int, alg string) string {
	return `{"spec":{"family":"uniform","lo":0.3,"hi":0.5,"seed":` +
		itoa(seed) + `},"n":` + itoa(n) + `,"algorithm":"` + alg + `"}`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSnapshotRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	warmServer(t, srv, 8)
	if srv.cache.Len() != 8 {
		t.Fatalf("warm cache has %d entries, want 8", srv.cache.Len())
	}

	var buf bytes.Buffer
	if err := srv.WriteCacheSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh server restores every plan; the first request for a
	// restored key is a cache hit, not a recomputation.
	srv2 := New(Config{Workers: 2})
	defer srv2.Shutdown(context.Background())
	n, err := srv2.RestoreCacheSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 8 {
		t.Fatalf("restore = %d, %v; want 8, nil", n, err)
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	resp, ok, _ := postBalance(t, ts.URL, balanceBody(3, 16, "HF"))
	if resp.StatusCode != 200 {
		t.Fatalf("restored request: %d", resp.StatusCode)
	}
	if !ok.Cached {
		t.Fatal("restored key should hit the cache")
	}
	snap := srv2.Registry().Snapshot()
	if snap.Counters[mCacheRestored] != 8 {
		t.Fatalf("cache_restored = %d, want 8", snap.Counters[mCacheRestored])
	}
}

func TestSnapshotSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.snapshot")
	srv := New(Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	warmServer(t, srv, 5)
	if n, err := srv.SaveCacheSnapshot(path); err != nil || n != 5 {
		t.Fatalf("save = %d, %v; want 5, nil", n, err)
	}

	srv2 := New(Config{Workers: 2})
	defer srv2.Shutdown(context.Background())
	if n, err := srv2.LoadCacheSnapshot(path); err != nil || n != 5 {
		t.Fatalf("load = %d, %v; want 5, nil", n, err)
	}
	if srv2.cache.Len() != 5 {
		t.Fatalf("restored cache has %d entries, want 5", srv2.cache.Len())
	}
}

func TestSnapshotMissingFileIsEmpty(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Shutdown(context.Background())
	if n, err := srv.LoadCacheSnapshot(filepath.Join(t.TempDir(), "absent")); n != 0 || err != nil {
		t.Fatalf("missing snapshot = %d, %v; want 0, nil", n, err)
	}
}

func TestSnapshotRejectsBadInput(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Shutdown(context.Background())
	if _, err := srv.RestoreCacheSnapshot(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
	if _, err := srv.RestoreCacheSnapshot(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
	// Corrupt entries (empty key, null plan) are skipped, not restored.
	n, err := srv.RestoreCacheSnapshot(strings.NewReader(
		`{"version":1,"entries":[{"key":"","plan":{}},{"key":"k","plan":null}]}`))
	if err != nil || n != 0 {
		t.Fatalf("corrupt entries restore = %d, %v; want 0, nil", n, err)
	}
}

func TestSnapshotPreservesRecencyOrder(t *testing.T) {
	// A one-shard cache with capacity 4 warmed with 4 plans: snapshotting
	// and restoring into another capacity-4 cache, then adding one more
	// plan, must evict the least recently used original — proving the
	// restore replayed LRU order rather than scrambling it.
	srv := New(Config{Workers: 1, CacheCapacity: 4, CacheShards: 1})
	defer srv.Shutdown(context.Background())
	warmServer(t, srv, 4)

	var buf bytes.Buffer
	if err := srv.WriteCacheSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Config{Workers: 1, CacheCapacity: 4, CacheShards: 1})
	defer srv2.Shutdown(context.Background())
	if n, err := srv2.RestoreCacheSnapshot(&buf); err != nil || n != 4 {
		t.Fatalf("restore = %d, %v; want 4, nil", n, err)
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	// Insert a fifth plan, evicting exactly the oldest (seed 0).
	if resp, _, _ := postBalance(t, ts.URL, balanceBody(99, 16, "HF")); resp.StatusCode != 200 {
		t.Fatal("fifth insert failed")
	}
	for seed := 1; seed < 4; seed++ {
		_, ok, _ := postBalance(t, ts.URL, balanceBody(seed, 16, "HF"))
		if !ok.Cached {
			t.Fatalf("seed %d should have survived the eviction", seed)
		}
	}
	req := BalanceRequest{Spec: ProblemSpec{Family: "uniform", Lo: 0.3, Hi: 0.5, Seed: 0}, N: 16, Algorithm: "HF"}
	req.normalize()
	if _, ok := srv2.cache.Get(req.cacheKey()); ok {
		t.Fatal("seed 0 (least recently used) should have been evicted")
	}
}
