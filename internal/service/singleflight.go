package service

import (
	"context"
	"sync"
)

// sfGroup coalesces concurrent computations of the same canonical key:
// the first caller (the leader) runs fn; callers that arrive while it is
// in flight wait for the leader's result instead of occupying queue
// slots and workers. A follower whose context expires stops waiting, but
// the leader's computation continues and still populates the cache.
type sfGroup struct {
	mu sync.Mutex
	m  map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	val  *Plan
	err  error
}

// Do executes fn for key, coalescing concurrent duplicates. The boolean
// reports whether this caller shared a leader's flight (true for
// followers, false for the leader).
func (g *sfGroup) Do(ctx context.Context, key string, fn func() (*Plan, error)) (*Plan, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*sfCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &sfCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
