package service

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Warm restarts: a restarted lbserve process with a cold plan cache
// turns every request into a miss at once and stampedes the planner —
// exactly the overload the admission controller then has to shed. The
// snapshot avoids the stampede instead of surviving it: SIGHUP (or any
// graceful shutdown with -snapshot configured) serialises the cache to
// disk, and the next process restores it before taking traffic.
//
// Plans are deterministic facts about their canonical keys, so a
// snapshot cannot go stale — a restored entry is byte-identical to
// what recomputation would produce. The only freshness concern is LRU
// recency, which the snapshot preserves by writing entries oldest
// first so restoring replays them into the same recency order.

// cacheSnapshotVersion guards the on-disk format; a reader rejects
// other versions rather than guessing.
const cacheSnapshotVersion = 1

// CacheSnapshot is the on-disk envelope of a plan-cache snapshot.
type CacheSnapshot struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"saved_at"`
	// Entries are ordered least recently used first, so restoring in
	// order reproduces the recency order.
	Entries []CacheSnapshotEntry `json:"entries"`
}

// CacheSnapshotEntry is one cached plan keyed by its canonical request
// key.
type CacheSnapshotEntry struct {
	Key  string `json:"key"`
	Plan *Plan  `json:"plan"`
}

// entries collects the cache's contents, least recently used first
// within each shard. Nil-safe (a disabled cache snapshots empty).
func (c *planCache) entries() []CacheSnapshotEntry {
	if c == nil {
		return nil
	}
	var out []CacheSnapshotEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			out = append(out, CacheSnapshotEntry{Key: e.key, Plan: e.plan})
		}
		s.mu.Unlock()
	}
	return out
}

// WriteCacheSnapshot serialises the plan cache to w.
func (s *Server) WriteCacheSnapshot(w io.Writer) error {
	sn := CacheSnapshot{
		Version: cacheSnapshotVersion,
		SavedAt: time.Now(),
		Entries: s.cache.entries(),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(sn); err != nil {
		return fmt.Errorf("service: encoding cache snapshot: %w", err)
	}
	s.reg.Counter(mCacheSnapshotted).Add(int64(len(sn.Entries)))
	return nil
}

// SaveCacheSnapshot writes the snapshot to path atomically (temp file
// + rename), so a crash mid-write never leaves a truncated snapshot
// for the next process to choke on.
func (s *Server) SaveCacheSnapshot(path string) (int, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	f, err := os.CreateTemp(dir, ".cache-snapshot-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if err := s.WriteCacheSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	n := s.cache.Len()
	s.reg.Emit("service.cache_snapshot", fmt.Sprintf("%d plans → %s", n, path))
	return n, nil
}

// RestoreCacheSnapshot loads a snapshot from r into the plan cache,
// returning how many plans were restored. Entries with an empty key or
// nil plan are skipped rather than trusted; a version mismatch rejects
// the whole snapshot.
func (s *Server) RestoreCacheSnapshot(r io.Reader) (int, error) {
	var sn CacheSnapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		return 0, fmt.Errorf("service: decoding cache snapshot: %w", err)
	}
	if sn.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("service: cache snapshot version %d, want %d", sn.Version, cacheSnapshotVersion)
	}
	restored := 0
	for _, e := range sn.Entries {
		if e.Key == "" || e.Plan == nil {
			continue
		}
		s.cache.Put(e.Key, e.Plan)
		restored++
	}
	s.reg.Counter(mCacheRestored).Add(int64(restored))
	s.restoredVersion.Store(int64(sn.Version))
	s.restoredEntries.Store(int64(restored))
	s.reg.Emit("service.cache_restore", fmt.Sprintf("%d plans restored", restored))
	return restored, nil
}

// LoadCacheSnapshot restores the cache from the snapshot file at path.
// A missing file is not an error (0, nil): the first boot of a fresh
// deployment has nothing to restore.
func (s *Server) LoadCacheSnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return s.RestoreCacheSnapshot(f)
}
