package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb"
	"bisectlb/internal/obs"
)

// Config parameterises a Server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the compute pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers).
	QueueDepth int
	// CacheCapacity is the plan cache size in entries; negative disables
	// caching, 0 means the default (1024).
	CacheCapacity int
	// CacheShards is the shard count (default 16, rounded to a power of
	// two).
	CacheShards int
	// DefaultDeadline caps queue+compute time for requests that do not
	// set deadline_ms (default 2s).
	DefaultDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds the item count of one POST /v1/balance:batch
	// request (default 64); larger batches are rejected whole.
	MaxBatchItems int
	// MaxN caps the processor count a single request may plan for
	// (default 1<<20). Plan size and compute time grow with n, so
	// without a cap one request body with a huge n ties up a worker for
	// unbounded time and memory (found while preparing the handler fuzz
	// target). Larger n is rejected with code "n_too_large" before any
	// work is admitted.
	MaxN int
	// Registry receives the service.* metrics (default: a fresh one).
	Registry *obs.Registry
	// Hooks are test seams; zero in production.
	Hooks Hooks
}

// Hooks expose deterministic test seams into the serving path.
type Hooks struct {
	// PreCompute, when set, runs at the start of every pool-executed
	// computation. Tests use it to hold a request in flight across a
	// Shutdown or to fill the pool deterministically.
	PreCompute func()
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 1024
	}
	if c.CacheShards < 1 {
		c.CacheShards = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchItems < 1 {
		c.MaxBatchItems = 64
	}
	if c.MaxN < 1 {
		c.MaxN = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the balancing service. Create with New, expose via Handler
// (for tests and in-process use) or Start/Serve (real listener), and
// stop with Shutdown.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	cache    *planCache
	sf       sfGroup
	pool     *workerPool
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool
	started  time.Time
	// keyBufs pools request-key buffers so canonicalising a request on
	// the hot path does not allocate (spec.go appendKey).
	keyBufs sync.Pool
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		cache:   newPlanCache(cfg.CacheCapacity, cfg.CacheShards, cfg.Registry),
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth, cfg.Registry),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.keyBufs.New = func() any { b := make([]byte, 0, 128); return &b }
	s.mux.HandleFunc("/v1/balance", s.handleBalance)
	s.mux.HandleFunc("/v1/balance:batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	return s
}

// Registry returns the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the server's HTTP handler (for httptest and
// in-process serving).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Serve runs the server on ln, blocking until Shutdown. It returns
// http.ErrServerClosed after a clean drain, matching net/http.
func (s *Server) Serve(ln net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.mux}
	return s.httpSrv.Serve(ln)
}

// Shutdown drains the server gracefully: new requests are refused (the
// listener closes; requests racing in get 503), in-flight requests run
// to completion, then the worker pool stops. The context bounds how long
// to wait for stragglers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.reg.Gauge(mDraining).Set(1)
	s.reg.Emit("service.drain", "refusing new work")
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Stop()
	s.reg.Emit("service.drained", "in-flight work complete")
	return err
}

// errorBody is the typed rejection envelope of every non-200 response.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) reject(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"inflight":  s.reg.Gauge(mInflight).Value(),
		"cached":    s.cache.Len(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

func (s *Server) handleBalance(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(mRequests).Inc()
	s.reg.Gauge(mInflight).Add(1)
	defer s.reg.Gauge(mInflight).Add(-1)
	start := time.Now()
	defer s.reg.Histogram(mLatencyNs).ObserveSince(start)

	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter(mRejectedDraining).Inc()
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	var req BalanceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	req.normalize()
	if err := req.validate(); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if req.N > s.cfg.MaxN {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "n_too_large",
			fmt.Sprintf("n=%d exceeds the server's max_n limit %d", req.N, s.cfg.MaxN))
		return
	}
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "unknown_algorithm", err.Error())
		return
	}

	// Canonicalise into a pooled buffer and look up by bytes: the common
	// cache-hit path allocates neither the key string nor the signature
	// (the cached plan already carries its signature).
	kb := s.keyBufs.Get().(*[]byte)
	keyBytes := req.appendKey((*kb)[:0])
	plan, hit := s.cache.GetBytes(keyBytes)
	key := ""
	if !hit {
		key = string(keyBytes)
	}
	*kb = keyBytes
	s.keyBufs.Put(kb)
	if hit {
		s.respondPlan(w, BalanceResponse{Plan: *plan, Cached: true}, "hit")
		return
	}
	sig := signature(key)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	plan, shared, err := s.sf.Do(ctx, key, func() (*Plan, error) {
		var (
			p    *Plan
			cerr error
		)
		rerr := s.pool.Run(ctx, func() {
			if s.cfg.Hooks.PreCompute != nil {
				s.cfg.Hooks.PreCompute()
			}
			p, cerr = computePlan(&req, alg, sig, s.reg)
			if cerr == nil {
				s.cache.Put(key, p)
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		return p, cerr
	})
	if shared {
		s.reg.Counter(mCoalesced).Inc()
	}
	if err != nil {
		s.rejectComputeError(w, err)
		return
	}
	s.respondPlan(w, BalanceResponse{Plan: *plan, Coalesced: shared}, "miss")
}

// classifyComputeError maps an admission, deadline or facade error to the
// HTTP status, error code, rejection counter and client message used for
// it everywhere — single requests reject with it, batch items embed it.
func classifyComputeError(err error) (status int, code, metric, msg string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full", mRejectedQueueFull, err.Error()
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining", mRejectedDraining, err.Error()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "deadline_exceeded", mDeadlineExceeded,
			"request deadline expired before the plan was computed"
	case errors.Is(err, bisectlb.ErrAlphaRequired):
		return http.StatusBadRequest, "alpha_required", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadAlpha):
		return http.StatusBadRequest, "bad_alpha", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadKappa):
		return http.StatusBadRequest, "bad_kappa", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadN):
		return http.StatusBadRequest, "bad_n", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrNilProblem), errors.Is(err, bisectlb.ErrUnknownAlgorithm):
		return http.StatusBadRequest, "bad_request", mBadRequest, err.Error()
	default:
		return http.StatusInternalServerError, "internal", mInternalErrors,
			fmt.Sprintf("balance failed: %v", err)
	}
}

// rejectComputeError maps admission, deadline and facade errors to typed
// HTTP rejections.
func (s *Server) rejectComputeError(w http.ResponseWriter, err error) {
	status, code, metric, msg := classifyComputeError(err)
	s.reg.Counter(metric).Inc()
	s.reject(w, status, code, msg)
}

func (s *Server) respondPlan(w http.ResponseWriter, resp BalanceResponse, cacheState string) {
	s.reg.Counter(mOK).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Lbserve-Cache", cacheState)
	json.NewEncoder(w).Encode(resp)
}
