package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb"
	"bisectlb/internal/obs"
)

// Config parameterises a Server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the compute pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers).
	QueueDepth int
	// CacheCapacity is the plan cache size in entries; negative disables
	// caching, 0 means the default (1024).
	CacheCapacity int
	// CacheShards is the shard count (default 16, rounded to a power of
	// two).
	CacheShards int
	// DefaultDeadline caps queue+compute time for requests that do not
	// set deadline_ms (default 2s).
	DefaultDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds the item count of one POST /v1/balance:batch
	// request (default 64); larger batches are rejected whole.
	MaxBatchItems int
	// MaxN caps the processor count a single request may plan for
	// (default 1<<20). Plan size and compute time grow with n, so
	// without a cap one request body with a huge n ties up a worker for
	// unbounded time and memory (found while preparing the handler fuzz
	// target). Larger n is rejected with code "n_too_large" before any
	// work is admitted.
	MaxN int

	// TargetP99 enables SLO-driven admission: when the p99 of
	// admitted-request latency over the sliding window exceeds
	// TargetP99 × SLOTolerance, the compute path is shed
	// probabilistically (429 slo_shed + Retry-After) and recovers
	// AIMD-style once the window clears. Zero disables the controller
	// (every request is admitted, subject to the queue bounds).
	TargetP99 time.Duration
	// SLOTolerance scales the breach threshold (default 1.0): breach
	// when windowed p99 > TargetP99 × SLOTolerance.
	SLOTolerance float64
	// SLOTick is the control-loop cadence (default 250ms); the sliding
	// window spans SLOEpochs ticks (default 8, so 2s by default).
	SLOTick   time.Duration
	SLOEpochs int

	// TenantHeader names the HTTP header carrying the tenant id
	// (default "X-Lbserve-Tenant"); the request body's tenant field is
	// the fallback, then "default".
	TenantHeader string
	// TenantRate enables per-tenant token buckets on the compute path:
	// each tenant computes at most TenantRate plans/sec sustained with
	// TenantBurst of burst (429 tenant_rate_limited beyond). Zero
	// disables the buckets. Cache hits are never charged — they consume
	// no worker.
	TenantRate  float64
	TenantBurst float64
	// TenantQueueShare caps one tenant's slice of QueueDepth, as a
	// fraction in (0, 1] (default 1.0 = no per-tenant bound). With a
	// share below 1 a hot tenant exhausts its slice (429
	// tenant_queue_full) while other tenants still admit.
	TenantQueueShare float64
	// TenantWeights sets weighted-fair dequeue weights per tenant id
	// (default 1 each): a tenant with weight w is served up to w tasks
	// per round-robin visit of the worker pool.
	TenantWeights map[string]int
	// MaxTenants bounds per-tenant state cardinality (default 64);
	// further ids share one "other" bucket.
	MaxTenants int

	// Registry receives the service.* metrics (default: a fresh one).
	Registry *obs.Registry
	// Hooks are test seams; zero in production.
	Hooks Hooks
}

// Hooks expose deterministic test seams into the serving path.
type Hooks struct {
	// PreCompute, when set, runs at the start of every pool-executed
	// computation. Tests use it to hold a request in flight across a
	// Shutdown or to fill the pool deterministically.
	PreCompute func()
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 1024
	}
	if c.CacheShards < 1 {
		c.CacheShards = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchItems < 1 {
		c.MaxBatchItems = 64
	}
	if c.MaxN < 1 {
		c.MaxN = 1 << 20
	}
	if c.SLOTolerance <= 0 {
		c.SLOTolerance = 1
	}
	if c.SLOTick <= 0 {
		c.SLOTick = 250 * time.Millisecond
	}
	if c.SLOEpochs < 1 {
		c.SLOEpochs = 8
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Lbserve-Tenant"
	}
	if c.TenantRate > 0 && c.TenantBurst < 1 {
		c.TenantBurst = 2 * c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.TenantQueueShare <= 0 || c.TenantQueueShare > 1 {
		c.TenantQueueShare = 1
	}
	if c.MaxTenants < 1 {
		c.MaxTenants = 64
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// tenantQueueCap converts the queue-share fraction into a slot count.
func (c Config) tenantQueueCap() int {
	cap := int(float64(c.QueueDepth) * c.TenantQueueShare)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Server is the balancing service. Create with New, expose via Handler
// (for tests and in-process use) or Start/Serve (real listener), and
// stop with Shutdown.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	cache    *planCache
	sf       sfGroup
	pool     *workerPool
	adm      *admission
	tenants  *tenantSet
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool
	// drainTimeout records that Shutdown's context expired before the
	// drain finished cleanly; /healthz reports it distinctly.
	drainTimeout atomic.Bool
	started      time.Time
	// cluster, when non-nil, routes cache misses for remotely-owned keys
	// to their owner peer (SetCluster; read lock-free on the request
	// path, so it must be set before serving starts).
	cluster PeerCluster
	// restoredVersion/restoredEntries record the last snapshot restore
	// for /healthz (0 = no restore has happened).
	restoredVersion atomic.Int64
	restoredEntries atomic.Int64
	// keyBufs pools request-key buffers so canonicalising a request on
	// the hot path does not allocate (spec.go appendKey).
	keyBufs sync.Pool
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		cache:   newPlanCache(cfg.CacheCapacity, cfg.CacheShards, cfg.Registry),
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth, cfg.tenantQueueCap(), cfg.Registry),
		tenants: newTenantSet(cfg),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.adm = newAdmission(cfg.TargetP99, cfg.SLOTolerance, cfg.SLOTick, cfg.SLOEpochs,
		cfg.Registry.Histogram(mAdmittedLatencyNs), cfg.Registry)
	s.keyBufs.New = func() any { b := make([]byte, 0, 128); return &b }
	s.mux.HandleFunc("/v1/balance", s.handleBalance)
	s.mux.HandleFunc("/v1/balance:batch", s.handleBatch)
	s.mux.HandleFunc("/v1/rebalance", s.handleRebalance)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	return s
}

// Registry returns the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the server's HTTP handler (for httptest and
// in-process serving).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Serve runs the server on ln, blocking until Shutdown. It returns
// http.ErrServerClosed after a clean drain, matching net/http.
func (s *Server) Serve(ln net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.mux}
	return s.httpSrv.Serve(ln)
}

// Shutdown drains the server gracefully: new requests are refused (the
// listener closes; requests racing in get 503), in-flight requests run
// to completion, then the worker pool stops. The context bounds how long
// to wait for stragglers; when it expires first, Shutdown reports the
// timeout (the drain still completes, just late), emits
// service.drain_timeout instead of service.drained, and /healthz shows
// status drain_timeout — so a supervisor can tell a clean drain from
// one that blew its budget.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.reg.Gauge(mDraining).Set(1)
	s.reg.Emit("service.drain", "refusing new work")
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// Stop the pool, but don't let a held worker pin Shutdown past its
	// budget: when the context expires first, the stop keeps running in
	// the background (the drain completes late) and Shutdown reports the
	// timeout now.
	stopped := make(chan struct{})
	go func() { s.pool.Stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if err != nil {
		s.drainTimeout.Store(true)
		s.reg.Emit("service.drain_timeout", "drain budget expired with work in flight: "+err.Error())
	} else {
		s.reg.Emit("service.drained", "in-flight work complete")
	}
	return err
}

// errorBody is the typed rejection envelope of every non-200 response.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) reject(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		// Every 429 tells the client when to come back, derived from the
		// shed state and queue backlog (admission.go retryAfterSecs).
		secs := retryAfterSecs(s.adm.admitFrac(), s.pool.queuedLen(), s.cfg.Workers)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	if s.drainTimeout.Load() {
		status = "drain_timeout"
	}
	body := map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"inflight":  s.reg.Gauge(mInflight).Value(),
		"cached":    s.cache.Len(),
	}
	snapshot := map[string]any{"restored": s.restoredVersion.Load() != 0}
	if v := s.restoredVersion.Load(); v != 0 {
		snapshot["restored_version"] = v
		snapshot["restored_entries"] = s.restoredEntries.Load()
	}
	body["snapshot"] = snapshot
	if s.cluster != nil {
		body["cluster"] = s.cluster.Healthz()
	}
	if s.adm != nil {
		body["slo"] = map[string]any{
			"target_p99_ms":  s.cfg.TargetP99.Milliseconds(),
			"admit_permille": s.reg.Gauge(mSLOAdmitPermille).Value(),
			"window_p99_ms":  time.Duration(s.reg.Gauge(mSLOWindowP99).Value()).Milliseconds(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

func (s *Server) handleBalance(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(mRequests).Inc()
	s.reg.Gauge(mInflight).Add(1)
	defer s.reg.Gauge(mInflight).Add(-1)
	start := time.Now()
	defer s.reg.Histogram(mLatencyNs).ObserveSince(start)

	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter(mRejectedDraining).Inc()
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	var req BalanceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	req.normalize()
	if err := req.validate(); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if req.N > s.cfg.MaxN {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "n_too_large",
			fmt.Sprintf("n=%d exceeds the server's max_n limit %d", req.N, s.cfg.MaxN))
		return
	}
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "unknown_algorithm", err.Error())
		return
	}
	tn := s.tenants.state(tenantID(r, s.cfg.TenantHeader, req.Tenant))
	tn.requests.Inc()

	// Canonicalise into a pooled buffer and look up by bytes: the common
	// cache-hit path allocates neither the key string nor the signature
	// (the cached plan already carries its signature). The tenant id is
	// deliberately not part of the key — plans are tenant-independent
	// facts, so tenants share each other's warm cache.
	kb := s.keyBufs.Get().(*[]byte)
	keyBytes := req.appendKey((*kb)[:0])
	plan, hit := s.cache.GetBytes(keyBytes)
	key := ""
	if !hit {
		key = string(keyBytes)
	}
	*kb = keyBytes
	s.keyBufs.Put(kb)
	if hit {
		s.respondPlan(w, BalanceResponse{Plan: *plan, Cached: true}, "hit")
		s.observeAdmitted(tn, start)
		return
	}

	// Only the compute path is subject to overload protection: a cache
	// hit costs no worker, so shedding it would only burn goodput.
	if !s.tenants.allowToken(tn, start) {
		tn.shed.Inc()
		s.reg.Counter(mRejectedTenant).Inc()
		s.reject(w, http.StatusTooManyRequests, "tenant_rate_limited",
			fmt.Sprintf("tenant %q exceeded its compute rate", tn.id))
		return
	}
	if !s.adm.allow(start) {
		tn.shed.Inc()
		s.reg.Counter(mRejectedShed).Inc()
		s.reject(w, http.StatusTooManyRequests, "slo_shed",
			"service is over its latency SLO; load is being shed")
		return
	}
	hash := fnv64aString(key)
	sig := strconv.FormatUint(hash, 16)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	computeLocal := func() (*Plan, error) {
		var (
			p    *Plan
			cerr error
		)
		rerr := s.pool.RunTenant(ctx, tn.id, tn.weight, func() {
			if s.cfg.Hooks.PreCompute != nil {
				s.cfg.Hooks.PreCompute()
			}
			p, cerr = computePlan(&req, alg, sig, s.reg)
			if cerr == nil {
				s.cache.Put(key, p)
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		return p, cerr
	}

	// In cluster mode a miss on a remotely-owned key is proxied to its
	// owner instead of computed here, so the per-node singleflight
	// composes into one planner execution per key cluster-wide. The
	// owner being unreachable is the failover path: compute locally and
	// keep serving. cacheState is written only by the singleflight
	// leader (followers report a plain coalesced miss), and sf.Do's
	// internal synchronisation orders that write before any return.
	fill := computeLocal
	cacheState := "miss"
	if pc := s.cluster; pc != nil {
		if _, self := pc.Owner(hash); !self {
			fill = func() (*Plan, error) {
				p, peerCached, ferr := s.clusterFetch(ctx, pc, key, hash, &req)
				if ferr != nil {
					s.reg.Counter(mClusterFailover).Inc()
					return computeLocal()
				}
				if peerCached {
					cacheState = "peer-hit"
				} else {
					cacheState = "peer-miss"
				}
				return p, nil
			}
		} else {
			pc.Touch(key, hash)
		}
	}

	plan, shared, err := s.sf.Do(ctx, key, fill)
	if shared {
		s.reg.Counter(mCoalesced).Inc()
	}
	if err != nil {
		s.rejectComputeError(w, err)
		return
	}
	s.respondPlan(w, BalanceResponse{Plan: *plan, Cached: cacheState == "peer-hit", Coalesced: shared}, cacheState)
	s.observeAdmitted(tn, start)
}

// observeAdmitted records a successful (200) request's latency into the
// controller's steering histogram and the tenant's.
func (s *Server) observeAdmitted(tn *tenantState, start time.Time) {
	lat := int64(time.Since(start))
	s.reg.Histogram(mAdmittedLatencyNs).Observe(lat)
	tn.ok.Inc()
	tn.latency.Observe(lat)
}

// classifyComputeError maps an admission, deadline or facade error to the
// HTTP status, error code, rejection counter and client message used for
// it everywhere — single requests reject with it, batch items embed it.
func classifyComputeError(err error) (status int, code, metric, msg string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full", mRejectedQueueFull, err.Error()
	case errors.Is(err, ErrTenantQueueFull):
		return http.StatusTooManyRequests, "tenant_queue_full", mRejectedTenantQ, err.Error()
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining", mRejectedDraining, err.Error()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "deadline_exceeded", mDeadlineExceeded,
			"request deadline expired before the plan was computed"
	case errors.Is(err, bisectlb.ErrAlphaRequired):
		return http.StatusBadRequest, "alpha_required", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadAlpha):
		return http.StatusBadRequest, "bad_alpha", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadKappa):
		return http.StatusBadRequest, "bad_kappa", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrBadN):
		return http.StatusBadRequest, "bad_n", mBadRequest, err.Error()
	case errors.Is(err, bisectlb.ErrNilProblem), errors.Is(err, bisectlb.ErrUnknownAlgorithm):
		return http.StatusBadRequest, "bad_request", mBadRequest, err.Error()
	default:
		return http.StatusInternalServerError, "internal", mInternalErrors,
			fmt.Sprintf("balance failed: %v", err)
	}
}

// rejectComputeError maps admission, deadline and facade errors to typed
// HTTP rejections.
func (s *Server) rejectComputeError(w http.ResponseWriter, err error) {
	status, code, metric, msg := classifyComputeError(err)
	s.reg.Counter(metric).Inc()
	s.reject(w, status, code, msg)
}

func (s *Server) respondPlan(w http.ResponseWriter, resp BalanceResponse, cacheState string) {
	s.reg.Counter(mOK).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Lbserve-Cache", cacheState)
	json.NewEncoder(w).Encode(resp)
}
