package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postBatch(t *testing.T, url, body string) (*http.Response, BatchResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(url+"/v1/balance:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var ok BatchResponse
	var bad errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode OK body %q: %v", buf.String(), err)
		}
	} else {
		if err := json.Unmarshal(buf.Bytes(), &bad); err != nil {
			t.Fatalf("decode error body %q: %v", buf.String(), err)
		}
	}
	return resp, ok, bad
}

// TestBatchPartialFailure is the contract test for per-item failure
// semantics: bad specs, unknown algorithms and facade rejections mark
// only their own item; the valid items still get plans and the response
// is a 200.
func TestBatchPartialFailure(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body := `{"items":[
		{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},"n":64,"algorithm":"HF"},
		{"spec":{"family":"nosuch","seed":1},"n":8},
		{"spec":{"family":"fixed","split_alpha":0.3,"seed":0},"n":16,"algorithm":"wat"},
		{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},"n":0,"algorithm":"HF"},
		{"spec":{"family":"list","elems":500,"split_alpha":0.2,"seed":9},"n":32,"algorithm":"BA"}
	]}`
	resp, batch, _ := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure must not fail the batch: status %d", resp.StatusCode)
	}
	if len(batch.Items) != 5 {
		t.Fatalf("got %d items, want 5", len(batch.Items))
	}
	wantErrCodes := map[int]string{1: "bad_spec", 2: "unknown_algorithm", 3: "bad_n"}
	for i, item := range batch.Items {
		if code, bad := wantErrCodes[i]; bad {
			if item.Plan != nil || item.Error == nil {
				t.Fatalf("item %d: want error, got %+v", i, item)
			}
			if item.Error.Code != code {
				t.Fatalf("item %d: error code %q, want %q", i, item.Error.Code, code)
			}
			continue
		}
		if item.Error != nil || item.Plan == nil {
			t.Fatalf("item %d: want plan, got error %+v", i, item.Error)
		}
		if len(item.Plan.Parts) == 0 {
			t.Fatalf("item %d: empty plan", i)
		}
	}
	if batch.Computed != 2 {
		t.Fatalf("computed %d plans, want 2", batch.Computed)
	}
}

// TestBatchDedupAndCache checks in-batch dedup (identical items compute
// once) and cross-request caching (a second batch hits the cache).
func TestBatchDedupAndCache(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	item := `{"spec":{"family":"uniform","lo":0.2,"hi":0.5,"seed":11},"n":32,"algorithm":"BA"}`
	body := fmt.Sprintf(`{"items":[%s,%s,%s]}`, item, item, item)
	resp, batch, _ := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if batch.Computed != 1 || batch.Deduped != 2 || batch.CacheHits != 0 {
		t.Fatalf("first batch: computed=%d deduped=%d hits=%d, want 1/2/0",
			batch.Computed, batch.Deduped, batch.CacheHits)
	}
	if batch.Items[0].Deduped || !batch.Items[1].Deduped || !batch.Items[2].Deduped {
		t.Fatalf("dedup flags wrong: %+v", batch.Items)
	}
	for i := 1; i < 3; i++ {
		if batch.Items[i].Plan.Signature != batch.Items[0].Plan.Signature {
			t.Fatalf("deduped item %d has different signature", i)
		}
	}

	resp, batch, _ = postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second batch: status %d", resp.StatusCode)
	}
	if batch.CacheHits != 3 || batch.Computed != 0 {
		t.Fatalf("second batch: hits=%d computed=%d, want 3/0", batch.CacheHits, batch.Computed)
	}
	if v := srv.Registry().Counter(mBatchDeduped).Value(); v != 2 {
		t.Fatalf("batch_deduped metric = %d, want 2", v)
	}
}

// TestBatchMatchesSingleRequests asserts a batch plan is byte-identical
// (modulo the envelope) to the plan the single endpoint serves for the
// same spec.
func TestBatchMatchesSingleRequests(t *testing.T) {
	srv := New(Config{CacheCapacity: -1}) // no cache: both paths compute
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := `{"spec":{"family":"list","elems":777,"split_alpha":0.25,"seed":3},"n":16,"algorithm":"BA-HF","alpha":0.25,"kappa":2}`
	_, single, _ := postBalance(t, ts.URL, spec)
	resp, batch, _ := postBatch(t, ts.URL, `{"items":[`+spec+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, want := batch.Items[0].Plan, single.Plan
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(&want)
	if string(gb) != string(wb) {
		t.Fatalf("batch plan diverged from single plan:\nbatch:  %s\nsingle: %s", gb, wb)
	}
}

func TestBatchRejections(t *testing.T) {
	srv := New(Config{MaxBatchItems: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, _, bad := postBatch(t, ts.URL, `{"items":[]}`)
	if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != "empty_batch" {
		t.Fatalf("empty batch: status %d code %q", resp.StatusCode, bad.Error.Code)
	}

	item := `{"spec":{"family":"fixed","split_alpha":0.3},"n":4}`
	resp, _, bad = postBatch(t, ts.URL, fmt.Sprintf(`{"items":[%s,%s,%s]}`, item, item, item))
	if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != "batch_too_large" {
		t.Fatalf("oversized batch: status %d code %q", resp.StatusCode, bad.Error.Code)
	}

	resp, _, bad = postBatch(t, ts.URL, `{"items":[`+item+`],"deadline_ms":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d", resp.StatusCode)
	}

	getResp, err := http.Get(ts.URL + "/v1/balance:batch")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", getResp.StatusCode)
	}
}
