package service

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"bisectlb/internal/obs"
)

func TestSanitizeTenant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", tenantDefault},
		{"acme", "acme"},
		{"Team-7_x", "Team-7_x"},
		{"a b\nc", "a_b_c"},
		{"ü\x00!", "____"}, // "ü" is two UTF-8 bytes; sanitising is byte-wise
		{string(make([]byte, 100)), string(bytesOf('_', tenantMaxLen))},
	}
	for _, c := range cases {
		if got := sanitizeTenant(c.in); got != c.want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func bytesOf(c byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}

func TestTenantIDPrecedence(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/balance", nil)
	if got := tenantID(r, "X-Lbserve-Tenant", ""); got != tenantDefault {
		t.Fatalf("no header, no body: %q, want %q", got, tenantDefault)
	}
	if got := tenantID(r, "X-Lbserve-Tenant", "bodyid"); got != "bodyid" {
		t.Fatalf("body only: %q, want bodyid", got)
	}
	r.Header.Set("X-Lbserve-Tenant", "headerid")
	if got := tenantID(r, "X-Lbserve-Tenant", "bodyid"); got != "headerid" {
		t.Fatalf("header wins: %q, want headerid", got)
	}
}

func TestTenantSetCardinalityBound(t *testing.T) {
	cfg := Config{MaxTenants: 3, Registry: obs.NewRegistry()}.withDefaults()
	cfg.MaxTenants = 3
	ts := newTenantSet(cfg)
	a := ts.state("a")
	b := ts.state("b")
	c := ts.state("c")
	if a.id != "a" || b.id != "b" || c.id != "c" {
		t.Fatalf("first three ids got %q/%q/%q", a.id, b.id, c.id)
	}
	d := ts.state("d")
	e := ts.state("e")
	if d.id != tenantOverflow || e.id != tenantOverflow || d != e {
		t.Fatalf("overflow ids must share the %q state, got %q and %q", tenantOverflow, d.id, e.id)
	}
	// Known ids keep resolving to their own state.
	if ts.state("b") != b {
		t.Fatal("existing tenant lost its state after overflow")
	}
}

func TestTenantWeights(t *testing.T) {
	cfg := Config{TenantWeights: map[string]int{"big": 4}, Registry: obs.NewRegistry()}.withDefaults()
	ts := newTenantSet(cfg)
	if w := ts.state("big").weight; w != 4 {
		t.Fatalf("weight(big) = %d, want 4", w)
	}
	if w := ts.state("small").weight; w != 1 {
		t.Fatalf("weight(small) = %d, want default 1", w)
	}
}

func TestTenantTokenBucket(t *testing.T) {
	cfg := Config{TenantRate: 10, TenantBurst: 2, Registry: obs.NewRegistry()}.withDefaults()
	ts := newTenantSet(cfg)
	tn := ts.state("acme")
	now := time.Now()
	// Burst of 2 admits twice, then refuses.
	if !ts.allowToken(tn, now) || !ts.allowToken(tn, now) {
		t.Fatal("burst tokens refused")
	}
	if ts.allowToken(tn, now) {
		t.Fatal("third immediate admission should exhaust the burst")
	}
	// 100ms at 10/s refills one token.
	if !ts.allowToken(tn, now.Add(150*time.Millisecond)) {
		t.Fatal("refill after 150ms at rate 10 should admit")
	}
	// Refill caps at burst: a long idle gap yields burst tokens, no more.
	later := now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ts.allowToken(tn, later) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after idle, admitted %d, want burst=2", admitted)
	}
}

func TestTenantRateZeroDisables(t *testing.T) {
	cfg := Config{Registry: obs.NewRegistry()}.withDefaults()
	ts := newTenantSet(cfg)
	tn := ts.state("acme")
	now := time.Now()
	for i := 0; i < 100; i++ {
		if !ts.allowToken(tn, now) {
			t.Fatalf("admission %d refused with rate disabled", i)
		}
	}
}

func TestTenantInstrumentNames(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Registry: reg}.withDefaults()
	ts := newTenantSet(cfg)
	ts.state("acme").requests.Inc()
	snap := reg.Snapshot()
	if _, ok := snap.Counters["service.tenant.acme.requests"]; !ok {
		keys := make([]string, 0, len(snap.Counters))
		for k := range snap.Counters {
			keys = append(keys, k)
		}
		t.Fatalf("missing tenant counter; have %v", keys)
	}
}

func TestTenantBurstDefault(t *testing.T) {
	cfg := Config{TenantRate: 0.2}.withDefaults()
	if cfg.TenantBurst != 1 {
		t.Fatalf("TenantBurst default for low rate = %g, want 1", cfg.TenantBurst)
	}
	cfg = Config{TenantRate: 50}.withDefaults()
	if cfg.TenantBurst != 100 {
		t.Fatalf("TenantBurst default = %g, want 2×rate", cfg.TenantBurst)
	}
}

func TestTenantQueueCap(t *testing.T) {
	cfg := Config{Workers: 4, QueueDepth: 16, TenantQueueShare: 0.25}.withDefaults()
	if got := cfg.tenantQueueCap(); got != 4 {
		t.Fatalf("tenantQueueCap = %d, want 4", got)
	}
	cfg = Config{Workers: 4, QueueDepth: 16}.withDefaults()
	if got := cfg.tenantQueueCap(); got != 16 {
		t.Fatalf("default share cap = %d, want full depth", got)
	}
	cfg = Config{Workers: 1, QueueDepth: 2, TenantQueueShare: 0.1}.withDefaults()
	if got := cfg.tenantQueueCap(); got != 1 {
		t.Fatalf("tiny share cap = %d, want floor 1", got)
	}
}

func TestTenantStatesAreConcurrencySafe(t *testing.T) {
	cfg := Config{TenantRate: 1e6, Registry: obs.NewRegistry()}.withDefaults()
	ts := newTenantSet(cfg)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			now := time.Now()
			for i := 0; i < 200; i++ {
				tn := ts.state(fmt.Sprintf("t%d", i%100))
				ts.allowToken(tn, now)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
