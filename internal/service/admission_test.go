package service

import (
	"testing"
	"time"

	"bisectlb/internal/obs"
)

func newTestAdmission(target time.Duration) (*admission, *obs.Histogram) {
	reg := obs.NewRegistry()
	h := reg.Histogram(mAdmittedLatencyNs)
	a := newAdmission(target, 1, 250*time.Millisecond, 4, h, reg)
	return a, h
}

func TestAdmissionNilController(t *testing.T) {
	var a *admission
	if !a.allow(time.Now()) {
		t.Fatal("nil admission must admit everything")
	}
	if f := a.admitFrac(); f != 1 {
		t.Fatalf("nil admitFrac = %g, want 1", f)
	}
	if a := newAdmission(0, 1, time.Second, 4, nil, obs.NewRegistry()); a != nil {
		t.Fatal("target 0 must disable the controller")
	}
}

func TestAdmissionBackoffOnBreach(t *testing.T) {
	a, h := newTestAdmission(time.Millisecond)
	// Fill the window with latencies far above the 1ms target.
	for i := 0; i < 100; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	a.tick()
	f := a.admitFrac()
	if f >= 1 {
		t.Fatalf("admitFrac = %g after breach, want < 1", f)
	}
	// Repeated breaches drive the fraction down to the floor, never
	// below. Backoff is rate-limited to one per window span, so each
	// round rewinds lastMD to simulate the window turning over.
	for i := 0; i < 50; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(int64(50 * time.Millisecond))
		}
		a.lastMD = 0
		a.tick()
	}
	if f := a.admitFrac(); f != admitFloor {
		t.Fatalf("admitFrac = %g after sustained breach, want floor %g", f, admitFloor)
	}
}

// TestAdmissionBackoffRateLimited pins the once-per-window rule: breach
// samples linger in the window after a decrease, and re-multiplying on
// that stale evidence every tick would floor the fraction while the
// queue is already drained. Consecutive breaching ticks inside one
// window span hold the fraction instead.
func TestAdmissionBackoffRateLimited(t *testing.T) {
	a, h := newTestAdmission(time.Millisecond)
	for i := 0; i < 100; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	a.tick()
	first := a.admitFrac()
	if first >= 1 {
		t.Fatalf("admitFrac = %g after breach, want < 1", first)
	}
	// Same window span, still breaching (fresh slow samples each tick):
	// no further decrease, and no recovery either.
	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(int64(50 * time.Millisecond))
		}
		a.tick()
	}
	if f := a.admitFrac(); f != first {
		t.Fatalf("admitFrac = %g inside the window span, want held at %g", f, first)
	}
	// Window span elapsed, breach persists in fresh evidence: one more
	// decrease applies.
	a.lastMD = 0
	for i := 0; i < 100; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	a.tick()
	if f, want := a.admitFrac(), first*admitBackoff; f > want+1e-9 || f < admitFloor-1e-9 {
		t.Fatalf("admitFrac = %g after window turnover, want %g", f, want)
	}
}

func TestAdmissionRecoversAdditively(t *testing.T) {
	a, h := newTestAdmission(time.Millisecond)
	for i := 0; i < 100; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	a.tick()
	if f := a.admitFrac(); f >= 1 {
		t.Fatalf("admitFrac = %g after breach, want < 1", f)
	}
	// The slow samples stay in the sliding window for epochs more ticks
	// (still breaching); flush them out before measuring recovery.
	for i := 0; i < 4; i++ {
		a.tick()
	}
	low := a.admitFrac()
	// Clear windows (no new slow observations) recover step by step.
	prev := low
	for i := 0; i < 4; i++ {
		a.tick()
		f := a.admitFrac()
		if f < prev {
			t.Fatalf("recovery tick %d decreased admitFrac %g -> %g", i, prev, f)
		}
		prev = f
	}
	want := low + 4*admitRecover
	if want > 1 {
		want = 1
	}
	if diff := prev - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("admitFrac after 4 clear ticks = %g, want %g", prev, want)
	}
}

func TestAdmissionIgnoresThinWindows(t *testing.T) {
	a, h := newTestAdmission(time.Millisecond)
	// Fewer than admitMinWindow slow samples must not trigger backoff.
	for i := 0; i < admitMinWindow-1; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	a.tick()
	if f := a.admitFrac(); f != 1 {
		t.Fatalf("admitFrac = %g on a thin window, want 1", f)
	}
}

func TestAdmissionShedsProbabilistically(t *testing.T) {
	a, h := newTestAdmission(time.Millisecond)
	for i := 0; i < 50; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(int64(50 * time.Millisecond))
		}
		a.lastMD = 0
		a.tick()
	}
	// At the floor, roughly admitFloor of draws pass. Use a fixed draw
	// count and a generous band: 5% ± 4 points over 10k draws.
	now := time.Now()
	admitted := 0
	for i := 0; i < 10000; i++ {
		if a.allow(now) {
			admitted++
		}
	}
	if admitted < 100 || admitted > 900 {
		t.Fatalf("admitted %d/10000 at floor %g, want ~%d", admitted, admitFloor, int(admitFloor*10000))
	}
}

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		frac    float64
		queued  int
		workers int
		want    int
	}{
		{1, 0, 4, 1},         // healthy: minimal hint
		{0.05, 0, 4, 3},      // deep shed: 1 + int(3*0.95) = 3
		{1, 64, 4, 5},        // backlog: 1 + 64/16
		{0.05, 10000, 4, 30}, // clamp high
		{1, 0, 0, 1},         // workers guard
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.frac, c.queued, c.workers); got != c.want {
			t.Errorf("retryAfterSecs(%g, %d, %d) = %d, want %d", c.frac, c.queued, c.workers, got, c.want)
		}
	}
}
