package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"bisectlb"
)

// POST /v1/balance:batch plans many specs in one request. The point is
// amortisation, not intra-batch parallelism: the batch pays admission
// control (one queue slot), body decoding and response encoding once,
// performs one cache lookup per item, dedups identical specs within the
// batch, and then computes all remaining misses back to back on a single
// worker with one pooled planner whose buffers stay warm. Callers that
// want plans computed in parallel should issue separate requests.
//
// Failure semantics are per item: a malformed spec or a facade rejection
// marks only that item with the same error code a single request would
// have received, while the rest of the batch proceeds. Only batch-level
// problems — bad JSON, an empty or oversized batch, admission rejection,
// the batch deadline expiring — fail the whole request.

// BatchRequest is the body of POST /v1/balance:batch.
type BatchRequest struct {
	// Items are planned independently; order is preserved in the response.
	Items []BalanceRequest `json:"items"`
	// DeadlineMS caps the whole batch's time in queue + compute; 0 uses
	// the server default. Per-item deadline_ms fields are ignored —
	// admission is batch-level.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Tenant identifies the caller when the tenant header is absent.
	// Admission is batch-level, so per-item tenant fields are ignored.
	Tenant string `json:"tenant,omitempty"`
}

// BatchItemError mirrors the single-request error envelope for one item.
type BatchItemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchItem is the outcome for one request of a batch: exactly one of
// Plan or Error is set.
type BatchItem struct {
	Plan *Plan `json:"plan,omitempty"`
	// Cached is true when the plan came from the plan cache.
	Cached bool `json:"cached,omitempty"`
	// Deduped is true when the plan was computed once for an identical
	// earlier item of this batch.
	Deduped bool            `json:"deduped,omitempty"`
	Error   *BatchItemError `json:"error,omitempty"`
}

// BatchResponse is the body of a 200 batch response.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// Computed counts distinct plans computed for this batch; CacheHits
	// and Deduped count items served without computing.
	Computed  int `json:"computed"`
	CacheHits int `json:"cache_hits"`
	Deduped   int `json:"deduped"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(mRequests).Inc()
	s.reg.Gauge(mInflight).Add(1)
	defer s.reg.Gauge(mInflight).Add(-1)
	start := time.Now()
	defer s.reg.Histogram(mLatencyNs).ObserveSince(start)

	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter(mRejectedDraining).Inc()
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "empty_batch", "batch has no items")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "batch_too_large",
			"batch exceeds the server's max_batch_items limit")
		return
	}
	if req.DeadlineMS < 0 {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_request", "deadline_ms must be ≥ 0")
		return
	}
	s.reg.Counter(mBatchRequests).Inc()
	s.reg.Counter(mBatchItems).Add(int64(len(req.Items)))
	tn := s.tenants.state(tenantID(r, s.cfg.TenantHeader, req.Tenant))
	tn.requests.Inc()

	resp := BatchResponse{Items: make([]BatchItem, len(req.Items))}
	// miss holds one entry per distinct uncached key, in first-seen order;
	// missIdx maps a key to its position in miss so later identical items
	// attach to the earlier computation.
	type missEntry struct {
		req   *BalanceRequest
		alg   bisectlb.Algorithm
		key   string
		items []int
		plan  *Plan
		err   error
	}
	var miss []*missEntry
	missIdx := make(map[string]int)

	kb := s.keyBufs.Get().(*[]byte)
	keyBytes := (*kb)[:0]
	for i := range req.Items {
		item := &req.Items[i]
		item.normalize()
		if err := item.validate(); err != nil {
			s.reg.Counter(mBadRequest).Inc()
			resp.Items[i].Error = &BatchItemError{Code: "bad_spec", Message: err.Error()}
			continue
		}
		if item.N > s.cfg.MaxN {
			s.reg.Counter(mBadRequest).Inc()
			resp.Items[i].Error = &BatchItemError{Code: "n_too_large",
				Message: fmt.Sprintf("n=%d exceeds the server's max_n limit %d", item.N, s.cfg.MaxN)}
			continue
		}
		alg, err := bisectlb.ParseAlgorithm(item.Algorithm)
		if err != nil {
			s.reg.Counter(mBadRequest).Inc()
			resp.Items[i].Error = &BatchItemError{Code: "unknown_algorithm", Message: err.Error()}
			continue
		}
		keyBytes = item.appendKey(keyBytes[:0])
		if plan, ok := s.cache.GetBytes(keyBytes); ok {
			resp.Items[i] = BatchItem{Plan: plan, Cached: true}
			resp.CacheHits++
			continue
		}
		key := string(keyBytes)
		if j, ok := missIdx[key]; ok {
			miss[j].items = append(miss[j].items, i)
			continue
		}
		missIdx[key] = len(miss)
		miss = append(miss, &missEntry{req: item, alg: alg, key: key, items: []int{i}})
	}
	*kb = keyBytes
	s.keyBufs.Put(kb)

	if len(miss) > 0 {
		// The compute path is guarded like a single request's: one token
		// and one admission draw per batch — the batch occupies one
		// worker turn regardless of item count.
		if !s.tenants.allowToken(tn, start) {
			tn.shed.Inc()
			s.reg.Counter(mRejectedTenant).Inc()
			s.reject(w, http.StatusTooManyRequests, "tenant_rate_limited",
				fmt.Sprintf("tenant %q exceeded its compute rate", tn.id))
			return
		}
		if !s.adm.allow(start) {
			tn.shed.Inc()
			s.reg.Counter(mRejectedShed).Inc()
			s.reject(w, http.StatusTooManyRequests, "slo_shed",
				"service is over its latency SLO; load is being shed")
			return
		}
		deadline := s.cfg.DefaultDeadline
		if req.DeadlineMS > 0 {
			deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()

		rerr := s.pool.RunTenant(ctx, tn.id, tn.weight, func() {
			if s.cfg.Hooks.PreCompute != nil {
				s.cfg.Hooks.PreCompute()
			}
			for _, m := range miss {
				m.plan, m.err = computePlan(m.req, m.alg, signature(m.key), s.reg)
				if m.err == nil {
					s.cache.Put(m.key, m.plan)
				}
			}
		})
		if rerr != nil {
			// Admission or deadline failure is batch-level: no partial
			// results exist worth returning.
			s.rejectComputeError(w, rerr)
			return
		}
		for _, m := range miss {
			if m.err != nil {
				_, code, metric, msg := classifyComputeError(m.err)
				s.reg.Counter(metric).Inc()
				for _, i := range m.items {
					resp.Items[i].Error = &BatchItemError{Code: code, Message: msg}
				}
				continue
			}
			resp.Computed++
			for j, i := range m.items {
				resp.Items[i].Plan = m.plan
				if j > 0 {
					resp.Items[i].Deduped = true
					resp.Deduped++
				}
			}
		}
		if resp.Deduped > 0 {
			s.reg.Counter(mBatchDeduped).Add(int64(resp.Deduped))
		}
	}

	s.reg.Counter(mOK).Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
	s.observeAdmitted(tn, start)
}
