package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/balance", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// BenchmarkServiceBalanceCached measures the full HTTP round trip for a
// plan served from the cache — the hot path of a stable workload mix.
func BenchmarkServiceBalanceCached(b *testing.B) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	body := `{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":256,"algorithm":"HF","alpha":0.1}`
	benchPost(b, ts.URL, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, body)
	}
}

// BenchmarkServiceBalanceUncached measures the round trip when every
// request needs a fresh computation (distinct seeds defeat the cache).
func BenchmarkServiceBalanceUncached(b *testing.B) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, fmt.Sprintf(
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":256,"algorithm":"HF","alpha":0.1}`, i))
	}
}

// BenchmarkServiceKey isolates request canonicalisation + signing — the
// per-request fixed cost paid before any cache lookup (DESIGN.md §10
// tracks its allocation count).
func BenchmarkServiceKey(b *testing.B) {
	req := BalanceRequest{
		Spec:      ProblemSpec{Family: "uniform", Weight: 1, Lo: 0.1, Hi: 0.5, Seed: 9},
		N:         256,
		Algorithm: "ba-hf",
		Alpha:     0.1,
		Kappa:     2,
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = req.appendKey(buf[:0])
		_ = signatureBytes(buf)
	}
}

// BenchmarkServiceBatch measures the full HTTP round trip of a warm
// 16-item batch — the amortised per-item cost to compare against
// BenchmarkServiceBalanceCached.
func BenchmarkServiceBatch(b *testing.B) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	items := make([]string, 16)
	for i := range items {
		items[i] = fmt.Sprintf(
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":%d},"n":256,"algorithm":"HF","alpha":0.1}`, i)
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/balance:batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	post() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkServiceCacheGet isolates the sharded LRU under concurrent
// readers.
func BenchmarkServiceCacheGet(b *testing.B) {
	c := newPlanCache(1024, 16, nil)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Plan{})
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(fmt.Sprintf("k%d", i%512))
			i++
		}
	})
}
