package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzSpecKey checks the request-canonicalisation contract under
// arbitrary field values: appendKey is deterministic, append-safe
// (extends the caller's buffer without disturbing its prefix), agrees
// with cacheKey, its byte and string signatures coincide, and normalize
// is idempotent — the properties the plan cache, the coalescing group
// and the batch dedup map all lean on.
func FuzzSpecKey(f *testing.F) {
	f.Add("uniform", 1.0, 0.1, 0.5, 0.0, 0, "", uint64(1), 8, "HF", 0.1, 0.0)
	f.Add("fixed", 2.5, 0.0, 0.0, 0.3, 0, "", uint64(0), 64, "ba-hf", 0.3, 2.0)
	f.Add("list", 0.0, 0.0, 0.0, 0.25, 1000, "", uint64(9), 16, " PHF ", 0.25, 0.0)
	f.Add("quadrature", 0.0, 0.0, 0.0, 0.0, 0, "midpoint", uint64(3), 4, "BA", 0.0, 1.0)
	f.Add("", -1.0, 2.0, -3.0, 9.9, -5, "weird", uint64(1<<63), -2, "\x00\xff", -0.5, -1.0)
	f.Fuzz(func(t *testing.T, family string, weight, lo, hi, sa float64, elems int,
		split string, seed uint64, n int, alg string, alpha, kappa float64) {
		req := BalanceRequest{
			Spec: ProblemSpec{Family: family, Weight: weight, Lo: lo, Hi: hi,
				SplitAlpha: sa, Elems: elems, Split: split, Seed: seed},
			N: n, Algorithm: alg, Alpha: alpha, Kappa: kappa,
		}
		req.normalize()
		again := req
		again.normalize()
		// Compare canonical keys, not structs: NaN-valued fields are
		// never equal to themselves, but canonicalise identically.
		if again.cacheKey() != req.cacheKey() {
			t.Fatalf("normalize not idempotent: %+v vs %+v", req, again)
		}

		key1 := req.appendKey(nil)
		key2 := req.appendKey(nil)
		if !bytes.Equal(key1, key2) {
			t.Fatalf("appendKey not deterministic: %q vs %q", key1, key2)
		}
		if req.cacheKey() != string(key1) {
			t.Fatalf("cacheKey %q != appendKey %q", req.cacheKey(), key1)
		}
		prefix := []byte("prefix|")
		ext := req.appendKey(append([]byte(nil), prefix...))
		if !bytes.HasPrefix(ext, prefix) || !bytes.Equal(ext[len(prefix):], key1) {
			t.Fatalf("appendKey disturbed the caller's buffer: %q", ext)
		}
		if signatureBytes(key1) != signature(string(key1)) {
			t.Fatalf("signature mismatch: bytes %s, string %s",
				signatureBytes(key1), signature(string(key1)))
		}
	})
}

// FuzzHandlers throws arbitrary JSON bodies at the two POST endpoints
// through the real mux and asserts the serving contract: no panic, and
// every response is either a 200 carrying valid JSON or a typed error
// envelope with a non-empty code. The server runs with a small MaxN so a
// fuzzer-crafted n cannot turn one request into unbounded compute — the
// hardening this target motivated.
func FuzzHandlers(f *testing.F) {
	srv := New(Config{Workers: 2, MaxN: 256, DefaultDeadline: time.Second})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	h := srv.Handler()

	f.Add([]byte(`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":8}`), false)
	f.Add([]byte(`{"items":[{"spec":{"family":"fixed","split_alpha":0.3},"n":4,"algorithm":"BA"}]}`), true)
	f.Add([]byte(`{"spec":{"family":"uniform","lo":0.1,"hi":0.5},"n":1000000000}`), false)
	f.Add([]byte(`{"spec":{"family":"list","elems":-1,"split_alpha":0.9},"n":0}`), false)
	f.Add([]byte(`{"items":[]}`), true)
	f.Add([]byte(`{"unknown_field":true}`), false)
	f.Add([]byte(`[1,2,3]`), true)
	f.Add([]byte(`{"spec":{"family":"fem","seed":7},"n":3,"algorithm":"parallel-PHF","alpha":0.2}`), false)
	f.Fuzz(func(t *testing.T, body []byte, batch bool) {
		path := "/v1/balance"
		if batch {
			path = "/v1/balance:batch"
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		raw := rec.Body.Bytes()
		if rec.Code == 200 {
			var any json.RawMessage
			if err := json.Unmarshal(raw, &any); err != nil {
				t.Fatalf("200 response is not valid JSON: %v\n%s", err, raw)
			}
			return
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil {
			t.Fatalf("status %d response is not an error envelope: %v\n%s", rec.Code, err, raw)
		}
		if eb.Error.Code == "" {
			t.Fatalf("status %d error envelope has empty code: %s", rec.Code, raw)
		}
	})
}

// TestMaxNRejected pins the admission bound FuzzHandlers relies on: a
// request whose n exceeds Config.MaxN is rejected with n_too_large
// before any compute, on both the single and the batch endpoint.
func TestMaxNRejected(t *testing.T) {
	srv := New(Config{Workers: 1, MaxN: 100})
	defer srv.Shutdown(context.Background())
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/balance", bytes.NewReader([]byte(
		`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":101}`))))
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != "n_too_large" {
		t.Fatalf("got %s (err %v), want code n_too_large", rec.Body.Bytes(), err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/balance:batch", bytes.NewReader([]byte(
		`{"items":[{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":100},`+
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":1},"n":101}]}`))))
	if rec.Code != 200 {
		t.Fatalf("batch status %d, want 200", rec.Code)
	}
	var br BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Error != nil || br.Items[0].Plan == nil {
		t.Fatalf("in-bound item rejected: %+v", br.Items[0])
	}
	if br.Items[1].Error == nil || br.Items[1].Error.Code != "n_too_large" {
		t.Fatalf("out-of-bound item not rejected: %+v", br.Items[1])
	}
}
