package service

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb/internal/obs"
)

// admission is the SLO-driven overload controller. It watches the p99
// of admitted-request latency over a sliding window (obs.Window over
// the service.admitted_latency_ns histogram) and, when the windowed
// p99 breaches Config.TargetP99 × Config.SLOTolerance, sheds a
// fraction of the compute path probabilistically with 429 + a
// Retry-After hint — the same contract the planners give for balance
// (stay inside a declared tolerance of the target), applied to the
// service's own latency.
//
// The control law is AIMD, the stable direction for admission: a
// breach multiplies the admit fraction down (fast reaction — an
// overloaded queue compounds quadratically under open-loop traffic),
// a clear window adds a fixed step back (slow, probing recovery that
// cannot oscillate straight back into overload). The fraction is
// clamped to a floor so a stuck-slow backend still admits canaries
// whose latency can prove recovery.
//
// Ticks are lazy: the first request to arrive after a tick interval
// elapses runs the control step. An idle server therefore stops
// ticking, which is correct — with no admitted traffic there is no
// evidence to steer on, and the fraction holds until traffic returns.
type admission struct {
	breach   int64 // ns; windowed p99 above this is a breach
	interval int64 // ns between control steps
	minCount int64 // windowed observations required before steering
	win      *obs.Window
	reg      *obs.Registry

	lastTick atomic.Int64  // unix nanos of the last control step
	admitF   atomic.Uint64 // math.Float64bits of the admit fraction
	rngState atomic.Uint64 // splitmix64 state for shed draws
	tickMu   sync.Mutex    // serialises control-step bodies

	winLen int64 // ns the sliding window spans (epochs × tick)
	lastMD int64 // unix nanos of the last multiplicative decrease; tickMu-guarded
}

// Control-law constants. The multiplicative factor and additive step
// give a sawtooth of ~3 ticks down from full admission to half and
// ~10 ticks back — fast enough to catch an overload inside one window,
// slow enough that recovery probes rather than slams.
const (
	admitBackoff   = 0.7  // multiplicative decrease on breach
	admitRecover   = 0.05 // additive increase per clear tick
	admitFloor     = 0.05 // always admit at least this fraction
	admitMinWindow = 16   // windowed samples needed before steering
)

// newAdmission builds the controller, or returns nil (a nil controller
// admits everything) when no target is configured. h must be the
// histogram the server records admitted-request latency into.
func newAdmission(target time.Duration, tolerance float64, tick time.Duration, epochs int, h *obs.Histogram, reg *obs.Registry) *admission {
	if target <= 0 {
		return nil
	}
	if tolerance <= 0 {
		tolerance = 1
	}
	if tick <= 0 {
		tick = 250 * time.Millisecond
	}
	if epochs < 1 {
		epochs = 8
	}
	a := &admission{
		// The windowed p99 is reported as a power-of-two bucket upper
		// bound, so the breach threshold must be quantized onto a bucket
		// bound too: a raw threshold strictly between bounds would be
		// breached by every p99 in its bucket — including ones below the
		// target — and pin the controller at the floor. The effective
		// target is therefore target×tolerance rounded up to the next
		// power of two; a breach then proves the p99 really exceeds it.
		breach:   obs.QuantizeUp(int64(float64(target) * tolerance)),
		interval: int64(tick),
		minCount: admitMinWindow,
		win:      obs.NewWindow(h, epochs),
		winLen:   int64(epochs) * int64(tick),
		reg:      reg,
	}
	a.admitF.Store(math.Float64bits(1))
	a.rngState.Store(uint64(target) | 1)
	reg.Gauge(mSLOAdmitPermille).Set(1000)
	return a
}

// admitFrac returns the current admit fraction in [admitFloor, 1].
func (a *admission) admitFrac() float64 {
	if a == nil {
		return 1
	}
	return math.Float64frombits(a.admitF.Load())
}

// allow reports whether a compute-path request is admitted, advancing
// the control loop first if a tick interval has elapsed. Cache hits
// bypass the controller entirely — they consume no worker and their
// sub-window latency would only dilute the signal.
func (a *admission) allow(now time.Time) bool {
	if a == nil {
		return true
	}
	a.maybeTick(now)
	f := math.Float64frombits(a.admitF.Load())
	if f >= 1 {
		return true
	}
	return a.rand01() < f
}

// maybeTick runs the control step when the interval has elapsed. The
// CAS elects one winner per interval; losers proceed with the current
// fraction.
func (a *admission) maybeTick(now time.Time) {
	nowNs := now.UnixNano()
	last := a.lastTick.Load()
	if nowNs-last < a.interval {
		return
	}
	if !a.lastTick.CompareAndSwap(last, nowNs) {
		return
	}
	a.tick()
}

// tick is one control step: rotate the window, read the windowed p99,
// and steer the admit fraction. Exposed (unexported) for tests to
// drive the loop deterministically.
//
// The multiplicative decrease is rate-limited to once per window span:
// breach samples stay in the sliding window for up to winLen after a
// backoff, so every tick until they age out still reports a breach —
// but that is the same evidence that already triggered the decrease,
// not proof it was insufficient. Stacking a decrease per tick on stale
// samples drives the fraction to the floor and idles the workers while
// the queue is already drained (the same reason TCP halves its window
// once per RTT, not once per duplicate ACK). Between decreases a
// breaching window holds the fraction; only a window that turned over
// clean recovers it.
func (a *admission) tick() {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	a.win.Tick()
	p99 := a.win.Quantile(0.99)
	n := a.win.Count()
	a.reg.Gauge(mSLOWindowP99).Set(p99)
	f := math.Float64frombits(a.admitF.Load())
	switch {
	case n >= a.minCount && p99 > a.breach:
		if now := time.Now().UnixNano(); now-a.lastMD >= a.winLen {
			a.lastMD = now
			f *= admitBackoff
			if f < admitFloor {
				f = admitFloor
			}
		}
	default:
		// Too little evidence, or the window is inside the SLO: probe
		// back toward full admission.
		f += admitRecover
		if f > 1 {
			f = 1
		}
	}
	a.admitF.Store(math.Float64bits(f))
	a.reg.Gauge(mSLOAdmitPermille).Set(int64(f * 1000))
}

// rand01 draws a uniform float64 in [0, 1) from a lock-free splitmix64
// stream — cheap enough for the per-request shed decision and
// dependency-free like the rest of the hot path.
func (a *admission) rand01() float64 {
	for {
		old := a.rngState.Load()
		next := old + 0x9e3779b97f4a7c15
		if a.rngState.CompareAndSwap(old, next) {
			z := next
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			return float64(z>>11) / float64(1<<53)
		}
	}
}

// retryAfterSecs derives the Retry-After hint for a 429: one second
// baseline, plus the shed state (a harder shed means the breach is
// deeper, so back off longer), plus the queue backlog measured in
// worker-turns. Clamped to [1, 30] so a transient spike never tells
// clients to vanish for minutes.
func retryAfterSecs(admitFrac float64, queued, workers int) int {
	if workers < 1 {
		workers = 1
	}
	secs := 1 + int(3*(1-admitFrac)) + queued/(workers*4)
	if secs > 30 {
		secs = 30
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}
