package service

import (
	"context"
	"encoding/json"
	"fmt"

	"bisectlb"
)

// PeerCluster is the slice of a cluster node the serving path needs:
// ownership routing, the remote fetch, hot-key accounting and the
// health view. *cluster.Node implements it; the interface exists so
// service does not import cluster (cluster already calls back into
// service through Config callbacks, and a cycle would force a merge of
// two layers that test independently).
type PeerCluster interface {
	// Owner returns the owning peer address for a key hash and whether
	// it is this node.
	Owner(hash uint64) (addr string, self bool)
	// Fetch asks the owner for the plan, shipping the canonical request
	// body so the owner can compute on a miss. The bool reports a
	// cluster-wide cache hit.
	Fetch(ctx context.Context, key string, hash uint64, body []byte) (plan []byte, cached bool, err error)
	// Touch records a hit on an owned key for hot-key replication.
	Touch(key string, hash uint64)
	// Healthz returns the peer/ring view for /healthz.
	Healthz() map[string]any
}

// SetCluster attaches the server to a cluster node. It must be called
// before the server starts serving (the field is read without locking
// on the request path). A nil cluster (the default) serves standalone.
func (s *Server) SetCluster(pc PeerCluster) { s.cluster = pc }

// clusterFetch proxies a miss to the key's remote owner and installs the
// returned plan in the local cache, so repeat hits on this node stay
// local. Runs under the caller's singleflight slot, so concurrent local
// misses on one key cost one peer round trip.
func (s *Server) clusterFetch(ctx context.Context, pc PeerCluster, key string, hash uint64, req *BalanceRequest) (*Plan, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	raw, cached, err := pc.Fetch(ctx, key, hash, body)
	if err != nil {
		return nil, false, err
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, false, fmt.Errorf("service: owner returned an undecodable plan for %q: %w", key, err)
	}
	s.reg.Counter(mClusterProxied).Inc()
	s.cache.Put(key, &p)
	s.reg.Counter(mClusterPeerPlans).Inc()
	return &p, cached, nil
}

// ClusterFill is the owner-side fill handed to cluster.Config.Fill:
// serve the plan for key from the local cache, or validate the shipped
// request body and compute it through the same singleflight + worker
// pool as a local request — so a storm of proxied misses for one key
// still runs the planner once, and peer traffic respects the pool's
// admission bounds.
func (s *Server) ClusterFill(ctx context.Context, key string, body []byte) ([]byte, bool, error) {
	if p, ok := s.cache.Get(key); ok {
		raw, err := json.Marshal(p)
		return raw, true, err
	}
	// Drift keys carry a rebalance body, not a balance body: route them
	// to the patch path (decoding them as a BalanceRequest would silently
	// drop the deltas and cache a fresh plan under the drift key).
	if isDriftKey(key) {
		return s.clusterFillRebalance(ctx, key, body)
	}
	var req BalanceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false, fmt.Errorf("service: peer fill body: %w", err)
	}
	req.normalize()
	if err := req.validate(); err != nil {
		return nil, false, err
	}
	if req.N > s.cfg.MaxN {
		return nil, false, fmt.Errorf("service: peer fill n=%d exceeds max_n %d", req.N, s.cfg.MaxN)
	}
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, false, err
	}
	sig := signature(key)
	plan, _, err := s.sf.Do(ctx, key, func() (*Plan, error) {
		var (
			p    *Plan
			cerr error
		)
		rerr := s.pool.Run(ctx, func() {
			p, cerr = computePlan(&req, alg, sig, s.reg)
			if cerr == nil {
				s.cache.Put(key, p)
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		return p, cerr
	})
	if err != nil {
		return nil, false, err
	}
	raw, err := json.Marshal(plan)
	return raw, false, err
}

// ClusterStore installs a plan replicated from a peer (cluster hot-key
// replication) into the local cache. Undecodable payloads are rejected.
func (s *Server) ClusterStore(key string, plan []byte) bool {
	if key == "" {
		return false
	}
	var p Plan
	if err := json.Unmarshal(plan, &p); err != nil {
		return false
	}
	s.cache.Put(key, &p)
	return true
}

// ClusterLoad reads a cache entry back for replication, without
// promoting it or touching the hit/miss counters (a replication read is
// not client traffic).
func (s *Server) ClusterLoad(key string) ([]byte, bool) {
	p, ok := s.cache.Peek(key)
	if !ok {
		return nil, false
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, false
	}
	return raw, true
}
