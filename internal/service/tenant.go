package service

import (
	"net/http"
	"sync"
	"time"

	"bisectlb/internal/obs"
)

// Per-tenant isolation: every request carries a tenant id (an HTTP
// header, falling back to the request body's tenant field, falling
// back to "default"), and the server keeps one tenantState per id —
// a token bucket gating the compute path, the tenant's weighted-fair
// queue weight, and per-tenant obs instruments rendered in /metricz.
//
// Tenant ids are client-controlled, so everything keyed on them is
// bounded: ids are sanitised to a short safe alphabet (metric names
// embed them) and at most MaxTenants distinct ids get their own state;
// the rest share one "other" bucket, which keeps both instrument
// cardinality and the worker pool's queue map finite under an
// id-spraying client.

// tenantState is one tenant's serving state. The token bucket is
// mutex-guarded (one short critical section per compute admission);
// the instruments are the usual lock-free obs types, resolved once so
// the per-request path does no name formatting.
type tenantState struct {
	id     string
	weight int

	mu     sync.Mutex
	tokens float64
	last   time.Time

	requests *obs.Counter
	ok       *obs.Counter
	shed     *obs.Counter
	latency  *obs.Histogram
}

// tenantSet hands out tenantState instances, creating them on first
// sight up to the cardinality bound.
type tenantSet struct {
	rate    float64 // tokens/sec for the compute path; ≤ 0 disables
	burst   float64
	maxIDs  int
	weights map[string]int
	reg     *obs.Registry

	mu sync.Mutex
	m  map[string]*tenantState
}

func newTenantSet(cfg Config) *tenantSet {
	return &tenantSet{
		rate:    cfg.TenantRate,
		burst:   cfg.TenantBurst,
		maxIDs:  cfg.MaxTenants,
		weights: cfg.TenantWeights,
		reg:     cfg.Registry,
		m:       make(map[string]*tenantState),
	}
}

// state returns the tenant's state, creating it on first sight. Ids
// beyond the cardinality bound share the "other" state.
func (t *tenantSet) state(id string) *tenantState {
	id = sanitizeTenant(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts, ok := t.m[id]; ok {
		return ts
	}
	if len(t.m) >= t.maxIDs && id != tenantOverflow {
		id = tenantOverflow
		if ts, ok := t.m[id]; ok {
			return ts
		}
	}
	weight := t.weights[id]
	if weight < 1 {
		weight = 1
	}
	prefix := "service.tenant." + id
	ts := &tenantState{
		id:       id,
		weight:   weight,
		tokens:   t.burst,
		last:     time.Now(),
		requests: t.reg.Counter(prefix + ".requests"),
		ok:       t.reg.Counter(prefix + ".ok"),
		shed:     t.reg.Counter(prefix + ".shed"),
		latency:  t.reg.Histogram(prefix + ".latency_ns"),
	}
	t.m[id] = ts
	return ts
}

// allowToken debits one compute admission from the tenant's bucket,
// refilled at rate tokens/sec up to burst. Rate ≤ 0 disables the
// bucket (every tenant admits freely; fairness then rests on the
// weighted-fair queue alone).
func (t *tenantSet) allowToken(ts *tenantState, now time.Time) bool {
	if t.rate <= 0 {
		return true
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	elapsed := now.Sub(ts.last).Seconds()
	if elapsed > 0 {
		ts.tokens += elapsed * t.rate
		if ts.tokens > t.burst {
			ts.tokens = t.burst
		}
		ts.last = now
	}
	if ts.tokens < 1 {
		return false
	}
	ts.tokens--
	return true
}

const (
	tenantDefault  = "default"
	tenantOverflow = "other"
	tenantMaxLen   = 32
)

// tenantID extracts the tenant from the request: header first (the
// operator-controlled channel), then the body field, then the default.
func tenantID(r *http.Request, header, bodyTenant string) string {
	if id := r.Header.Get(header); id != "" {
		return id
	}
	if bodyTenant != "" {
		return bodyTenant
	}
	return tenantDefault
}

// sanitizeTenant maps a client-supplied id onto the safe alphabet
// [a-zA-Z0-9_-], truncated to tenantMaxLen; hostile bytes become '_'
// so an id can never smuggle structure into a metric name.
func sanitizeTenant(id string) string {
	if id == "" {
		return tenantDefault
	}
	if len(id) > tenantMaxLen {
		id = id[:tenantMaxLen]
	}
	clean := true
	for i := 0; i < len(id); i++ {
		if !isTenantByte(id[i]) {
			clean = false
			break
		}
	}
	if clean {
		return id
	}
	b := []byte(id)
	for i, c := range b {
		if !isTenantByte(c) {
			b[i] = '_'
		}
	}
	return string(b)
}

func isTenantByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}
