package service

import (
	"encoding/json"
	"testing"

	"bisectlb"
	"bisectlb/internal/obs"
)

// computePlanInterface is the interface-path half of computePlan, used
// here to pin the flat fast path against it.
func computePlanInterface(t *testing.T, req *BalanceRequest, alg bisectlb.Algorithm, sig string) *Plan {
	t.Helper()
	p, err := req.buildProblem()
	if err != nil {
		t.Fatalf("buildProblem: %v", err)
	}
	res, err := bisectlb.Balance(p, req.N, bisectlb.Config{Algorithm: alg, Alpha: req.Alpha, Kappa: req.Kappa})
	if err != nil {
		t.Fatalf("Balance: %v", err)
	}
	plan := &Plan{
		Algorithm:  res.Algorithm,
		N:          res.N,
		Parts:      make([]PartPlan, len(res.Parts)),
		Total:      res.Total,
		Max:        res.Max,
		Ratio:      res.Ratio,
		Guarantee:  guaranteeFor(alg, req.Alpha, req.Kappa, req.N),
		Bisections: res.Bisections,
		MaxDepth:   res.MaxDepth,
		Signature:  sig,
	}
	for i, pt := range res.Parts {
		plan.Parts[i] = PartPlan{ID: pt.Problem.ID(), Weight: pt.Problem.Weight(), Procs: pt.Procs, Depth: pt.Depth}
	}
	return plan
}

// TestFlatFastPathMatchesInterfacePath serialises the plan from the flat
// fast path and from the Problem-interface path for every flat family ×
// algorithm combination and requires byte equality — including BA-HF's
// parameterised algorithm name, which the fast path must reproduce.
func TestFlatFastPathMatchesInterfacePath(t *testing.T) {
	reg := obs.NewRegistry()
	specs := []ProblemSpec{
		{Family: "uniform", Weight: 1, Lo: 0.15, Hi: 0.5, Seed: 21},
		{Family: "fixed", Weight: 3, SplitAlpha: 0.3},
		{Family: "list", Elems: 4000, SplitAlpha: 0.2, Seed: 5},
	}
	for _, spec := range specs {
		for _, algName := range []string{"HF", "BA", "BA-HF", "PHF"} {
			req := &BalanceRequest{Spec: spec, N: 48, Algorithm: algName, Alpha: 0.15, Kappa: 2}
			req.normalize()
			alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
			if err != nil {
				t.Fatal(err)
			}
			root, k, ok := flatInputs(req, alg)
			if !ok {
				t.Fatalf("%s/%s: expected a flat fast path", spec.Family, algName)
			}
			fast, err := computePlanFlat(req, alg, "sig", reg, root, k)
			if err != nil {
				t.Fatalf("%s/%s flat: %v", spec.Family, algName, err)
			}
			slow := computePlanInterface(t, req, alg, "sig")
			fb, _ := json.Marshal(fast)
			sb, _ := json.Marshal(slow)
			if string(fb) != string(sb) {
				t.Fatalf("%s/%s: fast path diverged\nfast: %s\nslow: %s", spec.Family, algName, fb, sb)
			}
		}
	}
}

// TestFlatInputsFallsBack pins which requests take the interface path:
// non-flat families and the goroutine-parallel algorithms.
func TestFlatInputsFallsBack(t *testing.T) {
	quad := &BalanceRequest{Spec: ProblemSpec{Family: "quadrature", Split: "median", Seed: 1}, N: 8, Algorithm: "HF"}
	if _, _, ok := flatInputs(quad, bisectlb.HFAlgorithm); ok {
		t.Fatal("quadrature family must not take the flat path")
	}
	uni := &BalanceRequest{Spec: ProblemSpec{Family: "uniform", Weight: 1, Lo: 0.1, Hi: 0.5}, N: 8}
	if _, _, ok := flatInputs(uni, bisectlb.ParallelBAAlgorithm); ok {
		t.Fatal("parallel-BA must not take the flat path")
	}
	if _, _, ok := flatInputs(uni, bisectlb.HFAlgorithm); !ok {
		t.Fatal("uniform/HF must take the flat path")
	}
	// An invalid spec falls back so the interface path produces the error.
	badUni := &BalanceRequest{Spec: ProblemSpec{Family: "uniform", Weight: -1, Lo: 0.1, Hi: 0.5}, N: 8}
	if _, _, ok := flatInputs(badUni, bisectlb.HFAlgorithm); ok {
		t.Fatal("invalid uniform spec must fall back to the interface path")
	}
}

// TestComputePlanInterfaceFamilies exercises computePlan's interface
// fallback end to end for the families without a flat substrate.
func TestComputePlanInterfaceFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	for _, spec := range []ProblemSpec{
		{Family: "quadrature", Split: "median", Seed: 2},
		{Family: "fem", Seed: 3},
		{Family: "searchtree", Seed: 4},
		{Family: "graph", Seed: 5},
		{Family: "spatial", Seed: 6},
	} {
		req := &BalanceRequest{Spec: spec, N: 16, Algorithm: "HF"}
		req.normalize()
		plan, err := computePlan(req, bisectlb.HFAlgorithm, "sig", reg)
		if err != nil {
			t.Fatalf("%s: %v", spec.Family, err)
		}
		if len(plan.Parts) == 0 {
			t.Fatalf("%s: empty plan", spec.Family)
		}
	}
}
