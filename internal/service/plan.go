package service

import (
	"fmt"
	"sync"
	"time"

	"bisectlb"
	"bisectlb/internal/obs"
)

// PartPlan is one subproblem of a served partition plan.
type PartPlan struct {
	ID     uint64  `json:"id"`
	Weight float64 `json:"weight"`
	Procs  int     `json:"procs"`
	Depth  int     `json:"depth"`
	// Group, on a patched rebalance plan, indexes the processor group
	// this part shares (RebalanceInfo.GroupProcs); absent (0, the first
	// group) outside rebalance responses.
	Group int `json:"group,omitempty"`
}

// Plan is the cacheable body of a balance response: the partition plus
// its quality certificate. Plans are immutable once computed; cached
// plans are shared by reference across responses.
type Plan struct {
	Algorithm string     `json:"algorithm"`
	N         int        `json:"n"`
	Parts     []PartPlan `json:"parts"`
	Total     float64    `json:"total"`
	Max       float64    `json:"max"`
	// Ratio is the paper's quality measure Max/(Total/N) for this plan.
	Ratio float64 `json:"ratio"`
	// Guarantee is the algorithm's worst-case ratio bound for the
	// declared α (Theorems 2/7/8) — the certificate that makes a cached
	// plan trustworthy without recomputation. Omitted when no α was
	// declared (HF/BA run α-obliviously).
	Guarantee  float64 `json:"guarantee,omitempty"`
	Bisections int     `json:"bisections"`
	MaxDepth   int     `json:"max_depth"`
	// Signature is the short hex digest of the request's canonical key.
	Signature string `json:"signature"`
	// Rebalance carries the patch certificate on plans served by
	// /v1/rebalance (rebalance.go); nil on /v1/balance plans.
	Rebalance *RebalanceInfo `json:"rebalance,omitempty"`

	// flat retains the plan's allocation-free form so /v1/rebalance can
	// patch it without replanning. Set only for plans computed on this
	// node through the flat path — it deliberately does not survive JSON,
	// so peer-fetched and snapshot-restored plans recompute their prior.
	flat *bisectlb.Plan
}

// BalanceResponse wraps a plan with per-request serving metadata.
type BalanceResponse struct {
	Plan
	// Cached is true when the plan was served from the plan cache.
	Cached bool `json:"cached"`
	// Coalesced is true when this request piggybacked on an identical
	// in-flight computation instead of occupying a worker.
	Coalesced bool `json:"coalesced,omitempty"`
}

// plannerScratch pairs a flat planner with its reusable plan buffer;
// pooled so concurrent requests don't contend on one planner and idle
// buffers can be reclaimed.
type plannerScratch struct {
	pl   *bisectlb.Planner
	plan bisectlb.Plan
}

// parallelScratch is plannerScratch for the multicore planner, pooled
// separately: a ParallelPlanner carries per-worker buffers, so mixing
// the pools would let small sequential requests pin multi-worker state.
type parallelScratch struct {
	pp   *bisectlb.ParallelPlanner
	plan bisectlb.Plan
}

var (
	plannerPool  = sync.Pool{New: func() any { return &plannerScratch{pl: bisectlb.NewPlanner(0)} }}
	parallelPool = sync.Pool{New: func() any {
		return &parallelScratch{pp: bisectlb.NewParallelPlanner(0, bisectlb.ParallelOptions{})}
	}}
)

// Planner-routing cutoffs and pool-retention caps.
const (
	// parallelNCutoff routes BA and BA-HF requests at or above this N
	// through the multicore planner; below it the fan-out/merge overhead
	// exceeds the planning work.
	parallelNCutoff = 1 << 15
	// bucketQueueNCutoff switches the HF-phase queue to the monotone
	// bucket queue at or above this N (DESIGN.md §13). Output is
	// bit-identical either way; below the cutoff the binary heap's
	// smaller footprint wins.
	bucketQueueNCutoff = 1 << 12
	// maxPooledPartsCap and maxPooledFootprint bound what a pooled
	// scratch may retain. One N=2^20 request grows a planner's buffers
	// to tens of megabytes; before these caps, Put returned it to the
	// pool anyway and the memory stayed pinned for the process lifetime
	// (sync.Pool only sheds idle entries, and a busy server keeps every
	// scratch hot). Oversized scratches are dropped for the GC instead.
	maxPooledPartsCap  = 1 << 16
	maxPooledFootprint = 8 << 20
	// maxPooledParallelFootprint is the per-scratch cap for the parallel
	// pool; it is larger because a ParallelPlanner legitimately holds
	// one buffer set per worker.
	maxPooledParallelFootprint = 64 << 20
)

// putPlannerScratch returns sc to the pool unless an oversized request
// ballooned its retained buffers, in which case it is dropped (counted
// by service.planner_pool.drops) and the next Get builds a fresh one.
func putPlannerScratch(reg *obs.Registry, sc *plannerScratch) {
	if cap(sc.plan.Parts) > maxPooledPartsCap || sc.pl.Footprint() > maxPooledFootprint {
		reg.Counter(mPlannerPoolDrops).Inc()
		return
	}
	reg.Counter(mPlannerPoolPuts).Inc()
	plannerPool.Put(sc)
}

// putParallelScratch is putPlannerScratch for the parallel pool.
func putParallelScratch(reg *obs.Registry, sc *parallelScratch) {
	if cap(sc.plan.Parts) > maxPooledPartsCap || sc.pp.Footprint() > maxPooledParallelFootprint {
		reg.Counter(mPlannerPoolDrops).Inc()
		return
	}
	reg.Counter(mPlannerPoolPuts).Inc()
	parallelPool.Put(sc)
}

// flatInputs maps a request onto the allocation-free planning facade
// when both the spec family and the algorithm have a flat form. ok=false
// means "use the interface path" — including for constructor errors,
// which the interface path re-derives as proper client errors.
func flatInputs(req *BalanceRequest, alg bisectlb.Algorithm) (bisectlb.FlatNode, bisectlb.Kernel, bool) {
	switch alg {
	case bisectlb.HFAlgorithm, bisectlb.BAAlgorithm, bisectlb.BAHFAlgorithm, bisectlb.PHFAlgorithm:
	default:
		return bisectlb.FlatNode{}, nil, false
	}
	var (
		root bisectlb.FlatNode
		k    bisectlb.Kernel
		err  error
	)
	switch req.Spec.Family {
	case "uniform":
		root, k, err = bisectlb.NewSyntheticFlat(req.Spec.Weight, req.Spec.Lo, req.Spec.Hi, req.Spec.Seed)
	case "fixed":
		root, k, err = bisectlb.NewFixedFlat(req.Spec.Weight, req.Spec.SplitAlpha)
	case "list":
		root, k, err = bisectlb.NewListFlat(req.Spec.Elems, req.Spec.SplitAlpha, req.Spec.Seed)
	default:
		return bisectlb.FlatNode{}, nil, false
	}
	return root, k, err == nil
}

// computePlanFlat runs the request through the allocation-free planner
// (DESIGN.md §10) and maps the flat plan into the served Plan. The output
// is byte-identical to the interface path's: the flat algorithms are
// parity-tested against it, guarantees come from the same bounds, and
// BA-HF's parameterised display name is reproduced here (the flat plan
// carries only the bare name).
func computePlanFlat(req *BalanceRequest, alg bisectlb.Algorithm, sig string, reg *obs.Registry, root bisectlb.FlatNode, k bisectlb.Kernel) (*Plan, error) {
	cfg := bisectlb.Config{Algorithm: alg, Alpha: req.Alpha, Kappa: req.Kappa}
	// Both settings are applied explicitly on every request: a pooled
	// planner keeps whatever the previous request configured.
	useBucket := req.N >= bucketQueueNCutoff
	useParallel := req.N >= parallelNCutoff &&
		(alg == bisectlb.BAAlgorithm || alg == bisectlb.BAHFAlgorithm)
	start := time.Now()
	if useParallel {
		sc := parallelPool.Get().(*parallelScratch)
		defer putParallelScratch(reg, sc)
		sc.pp.SetMetrics(reg)
		sc.pp.SetBucketQueue(useBucket)
		if err := bisectlb.ParallelBalanceInto(&sc.plan, sc.pp, k, root, req.N, cfg); err != nil {
			return nil, err
		}
		reg.Histogram(mComputeNs).ObserveSince(start)
		reg.Counter(mPlannerPoolParallel).Inc()
		plan := servePlan(&sc.plan, req, alg, sig)
		plan.flat = cloneFlat(&sc.plan)
		return plan, nil
	}
	sc := plannerPool.Get().(*plannerScratch)
	defer putPlannerScratch(reg, sc)
	sc.pl.SetBucketQueue(useBucket)
	if err := bisectlb.BalanceInto(&sc.plan, sc.pl, k, root, req.N, cfg); err != nil {
		return nil, err
	}
	reg.Histogram(mComputeNs).ObserveSince(start)
	plan := servePlan(&sc.plan, req, alg, sig)
	plan.flat = cloneFlat(&sc.plan)
	return plan, nil
}

// cloneFlat deep-copies a flat plan out of its pooled scratch buffer, so
// the cached served plan can retain it for /v1/rebalance to patch.
func cloneFlat(fp *bisectlb.Plan) *bisectlb.Plan {
	c := *fp
	c.Parts = append([]bisectlb.FlatPart(nil), fp.Parts...)
	return &c
}

// servePlan maps a flat plan into the served Plan, reconstructing
// BA-HF's parameterised display name (the flat plan carries the bare
// name) and attaching the guarantee certificate.
func servePlan(fp *bisectlb.Plan, req *BalanceRequest, alg bisectlb.Algorithm, sig string) *Plan {
	name := fp.Algorithm
	if alg == bisectlb.BAHFAlgorithm {
		kappa := req.Kappa
		if kappa == 0 {
			kappa = 1.0
		}
		name = fmt.Sprintf("BA-HF(κ=%g)", kappa)
	}
	plan := &Plan{
		Algorithm:  name,
		N:          fp.N,
		Parts:      make([]PartPlan, len(fp.Parts)),
		Total:      fp.Total,
		Max:        fp.Max,
		Ratio:      fp.Ratio,
		Guarantee:  guaranteeFor(alg, req.Alpha, req.Kappa, req.N),
		Bisections: fp.Bisections,
		MaxDepth:   fp.MaxDepth,
		Signature:  sig,
	}
	for i, pt := range fp.Parts {
		plan.Parts[i] = PartPlan{
			ID:     pt.Node.ID,
			Weight: pt.Node.Weight,
			Procs:  int(pt.Procs),
			Depth:  int(pt.Node.Depth),
		}
	}
	return plan
}

// computePlan builds the problem from the spec, runs the facade and maps
// the result into a Plan. alg must already be parsed from req.Algorithm.
// Families and algorithms covered by the flat planning facade take the
// allocation-free fast path; everything else goes through the Problem
// interface.
func computePlan(req *BalanceRequest, alg bisectlb.Algorithm, sig string, reg *obs.Registry) (*Plan, error) {
	reg.Counter(mPlansComputed).Inc()
	if root, k, ok := flatInputs(req, alg); ok {
		return computePlanFlat(req, alg, sig, reg, root, k)
	}
	p, err := req.buildProblem()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := bisectlb.Balance(p, req.N, bisectlb.Config{
		Algorithm: alg,
		Alpha:     req.Alpha,
		Kappa:     req.Kappa,
	})
	if err != nil {
		return nil, err
	}
	reg.Histogram(mComputeNs).ObserveSince(start)
	plan := &Plan{
		Algorithm:  res.Algorithm,
		N:          res.N,
		Parts:      make([]PartPlan, len(res.Parts)),
		Total:      res.Total,
		Max:        res.Max,
		Ratio:      res.Ratio,
		Guarantee:  guaranteeFor(alg, req.Alpha, req.Kappa, req.N),
		Bisections: res.Bisections,
		MaxDepth:   res.MaxDepth,
		Signature:  sig,
	}
	for i, pt := range res.Parts {
		plan.Parts[i] = PartPlan{
			ID:     pt.Problem.ID(),
			Weight: pt.Problem.Weight(),
			Procs:  pt.Procs,
			Depth:  pt.Depth,
		}
	}
	return plan, nil
}

// guaranteeFor returns the worst-case ratio bound for the algorithm at
// the declared α, or 0 when no α was declared (or the bound is
// undefined for the parameters).
func guaranteeFor(alg bisectlb.Algorithm, alpha, kappa float64, n int) float64 {
	if alpha <= 0 {
		return 0
	}
	var (
		bound float64
		err   error
	)
	switch alg {
	case bisectlb.HFAlgorithm, bisectlb.PHFAlgorithm, bisectlb.ParallelPHFAlgorithm:
		bound, err = bisectlb.GuaranteeHF(alpha)
	case bisectlb.BAAlgorithm, bisectlb.ParallelBAAlgorithm:
		bound, err = bisectlb.GuaranteeBA(alpha, n)
	case bisectlb.BAHFAlgorithm:
		if kappa == 0 {
			kappa = 1
		}
		bound, err = bisectlb.GuaranteeBAHF(alpha, kappa)
	}
	if err != nil {
		return 0
	}
	return bound
}
