package service

import (
	"fmt"
	"sync"
	"time"

	"bisectlb"
	"bisectlb/internal/obs"
)

// PartPlan is one subproblem of a served partition plan.
type PartPlan struct {
	ID     uint64  `json:"id"`
	Weight float64 `json:"weight"`
	Procs  int     `json:"procs"`
	Depth  int     `json:"depth"`
}

// Plan is the cacheable body of a balance response: the partition plus
// its quality certificate. Plans are immutable once computed; cached
// plans are shared by reference across responses.
type Plan struct {
	Algorithm string     `json:"algorithm"`
	N         int        `json:"n"`
	Parts     []PartPlan `json:"parts"`
	Total     float64    `json:"total"`
	Max       float64    `json:"max"`
	// Ratio is the paper's quality measure Max/(Total/N) for this plan.
	Ratio float64 `json:"ratio"`
	// Guarantee is the algorithm's worst-case ratio bound for the
	// declared α (Theorems 2/7/8) — the certificate that makes a cached
	// plan trustworthy without recomputation. Omitted when no α was
	// declared (HF/BA run α-obliviously).
	Guarantee  float64 `json:"guarantee,omitempty"`
	Bisections int     `json:"bisections"`
	MaxDepth   int     `json:"max_depth"`
	// Signature is the short hex digest of the request's canonical key.
	Signature string `json:"signature"`
}

// BalanceResponse wraps a plan with per-request serving metadata.
type BalanceResponse struct {
	Plan
	// Cached is true when the plan was served from the plan cache.
	Cached bool `json:"cached"`
	// Coalesced is true when this request piggybacked on an identical
	// in-flight computation instead of occupying a worker.
	Coalesced bool `json:"coalesced,omitempty"`
}

// plannerScratch pairs a flat planner with its reusable plan buffer;
// pooled so concurrent requests don't contend on one planner and idle
// buffers can be reclaimed.
type plannerScratch struct {
	pl   *bisectlb.Planner
	plan bisectlb.Plan
}

var plannerPool = sync.Pool{New: func() any { return &plannerScratch{pl: bisectlb.NewPlanner(0)} }}

// flatInputs maps a request onto the allocation-free planning facade
// when both the spec family and the algorithm have a flat form. ok=false
// means "use the interface path" — including for constructor errors,
// which the interface path re-derives as proper client errors.
func flatInputs(req *BalanceRequest, alg bisectlb.Algorithm) (bisectlb.FlatNode, bisectlb.Kernel, bool) {
	switch alg {
	case bisectlb.HFAlgorithm, bisectlb.BAAlgorithm, bisectlb.BAHFAlgorithm, bisectlb.PHFAlgorithm:
	default:
		return bisectlb.FlatNode{}, nil, false
	}
	var (
		root bisectlb.FlatNode
		k    bisectlb.Kernel
		err  error
	)
	switch req.Spec.Family {
	case "uniform":
		root, k, err = bisectlb.NewSyntheticFlat(req.Spec.Weight, req.Spec.Lo, req.Spec.Hi, req.Spec.Seed)
	case "fixed":
		root, k, err = bisectlb.NewFixedFlat(req.Spec.Weight, req.Spec.SplitAlpha)
	case "list":
		root, k, err = bisectlb.NewListFlat(req.Spec.Elems, req.Spec.SplitAlpha, req.Spec.Seed)
	default:
		return bisectlb.FlatNode{}, nil, false
	}
	return root, k, err == nil
}

// computePlanFlat runs the request through the allocation-free planner
// (DESIGN.md §10) and maps the flat plan into the served Plan. The output
// is byte-identical to the interface path's: the flat algorithms are
// parity-tested against it, guarantees come from the same bounds, and
// BA-HF's parameterised display name is reproduced here (the flat plan
// carries only the bare name).
func computePlanFlat(req *BalanceRequest, alg bisectlb.Algorithm, sig string, reg *obs.Registry, root bisectlb.FlatNode, k bisectlb.Kernel) (*Plan, error) {
	sc := plannerPool.Get().(*plannerScratch)
	defer plannerPool.Put(sc)
	start := time.Now()
	err := bisectlb.BalanceInto(&sc.plan, sc.pl, k, root, req.N, bisectlb.Config{
		Algorithm: alg,
		Alpha:     req.Alpha,
		Kappa:     req.Kappa,
	})
	if err != nil {
		return nil, err
	}
	reg.Histogram(mComputeNs).ObserveSince(start)
	name := sc.plan.Algorithm
	if alg == bisectlb.BAHFAlgorithm {
		kappa := req.Kappa
		if kappa == 0 {
			kappa = 1.0
		}
		name = fmt.Sprintf("BA-HF(κ=%g)", kappa)
	}
	plan := &Plan{
		Algorithm:  name,
		N:          sc.plan.N,
		Parts:      make([]PartPlan, len(sc.plan.Parts)),
		Total:      sc.plan.Total,
		Max:        sc.plan.Max,
		Ratio:      sc.plan.Ratio,
		Guarantee:  guaranteeFor(alg, req.Alpha, req.Kappa, req.N),
		Bisections: sc.plan.Bisections,
		MaxDepth:   sc.plan.MaxDepth,
		Signature:  sig,
	}
	for i, pt := range sc.plan.Parts {
		plan.Parts[i] = PartPlan{
			ID:     pt.Node.ID,
			Weight: pt.Node.Weight,
			Procs:  int(pt.Procs),
			Depth:  int(pt.Node.Depth),
		}
	}
	return plan, nil
}

// computePlan builds the problem from the spec, runs the facade and maps
// the result into a Plan. alg must already be parsed from req.Algorithm.
// Families and algorithms covered by the flat planning facade take the
// allocation-free fast path; everything else goes through the Problem
// interface.
func computePlan(req *BalanceRequest, alg bisectlb.Algorithm, sig string, reg *obs.Registry) (*Plan, error) {
	if root, k, ok := flatInputs(req, alg); ok {
		return computePlanFlat(req, alg, sig, reg, root, k)
	}
	p, err := req.buildProblem()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := bisectlb.Balance(p, req.N, bisectlb.Config{
		Algorithm: alg,
		Alpha:     req.Alpha,
		Kappa:     req.Kappa,
	})
	if err != nil {
		return nil, err
	}
	reg.Histogram(mComputeNs).ObserveSince(start)
	plan := &Plan{
		Algorithm:  res.Algorithm,
		N:          res.N,
		Parts:      make([]PartPlan, len(res.Parts)),
		Total:      res.Total,
		Max:        res.Max,
		Ratio:      res.Ratio,
		Guarantee:  guaranteeFor(alg, req.Alpha, req.Kappa, req.N),
		Bisections: res.Bisections,
		MaxDepth:   res.MaxDepth,
		Signature:  sig,
	}
	for i, pt := range res.Parts {
		plan.Parts[i] = PartPlan{
			ID:     pt.Problem.ID(),
			Weight: pt.Problem.Weight(),
			Procs:  pt.Procs,
			Depth:  pt.Depth,
		}
	}
	return plan, nil
}

// guaranteeFor returns the worst-case ratio bound for the algorithm at
// the declared α, or 0 when no α was declared (or the bound is
// undefined for the parameters).
func guaranteeFor(alg bisectlb.Algorithm, alpha, kappa float64, n int) float64 {
	if alpha <= 0 {
		return 0
	}
	var (
		bound float64
		err   error
	)
	switch alg {
	case bisectlb.HFAlgorithm, bisectlb.PHFAlgorithm, bisectlb.ParallelPHFAlgorithm:
		bound, err = bisectlb.GuaranteeHF(alpha)
	case bisectlb.BAAlgorithm, bisectlb.ParallelBAAlgorithm:
		bound, err = bisectlb.GuaranteeBA(alpha, n)
	case bisectlb.BAHFAlgorithm:
		if kappa == 0 {
			kappa = 1
		}
		bound, err = bisectlb.GuaranteeBAHF(alpha, kappa)
	}
	if err != nil {
		return 0
	}
	return bound
}
