package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPoolAdmissionRejection fills every worker and queue slot, then
// checks the next submission is shed immediately with ErrQueueFull.
func TestPoolAdmissionRejection(t *testing.T) {
	p := newWorkerPool(1, 2, 2, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	// One task occupies the worker; two fill the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), func() { close(running); <-gate })
	}()
	<-running
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(context.Background(), func() {})
		}()
	}
	// Wait until both fillers are actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for p.queuedLen() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	err := p.Run(context.Background(), func() { t.Error("overflow task must not run") })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Run = %v, want ErrQueueFull", err)
	}

	close(gate)
	wg.Wait()
}

// TestPoolSaturationBoundary walks the admission queue across its exact
// boundaries: fill to depth (last slot admits), overflow by one (shed),
// drain exactly one slot (refill admits again), then drain fully and
// check the pool serves normally. The off-by-one cases here are the
// ones a `>=` vs `>` slip in the admission check would break.
func TestPoolSaturationBoundary(t *testing.T) {
	const depth = 3
	p := newWorkerPool(1, depth, depth, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), func() { close(running); <-gate })
	}()
	<-running

	// Fill every queue slot; each submission up to depth must admit.
	done := make(chan error, depth+1)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done <- p.Run(context.Background(), func() {})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for p.queuedLen() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("slot %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Exactly full: one more must shed.
	if err := p.Run(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow at depth = %v, want ErrQueueFull", err)
	}

	// Drain one task by expiring its context; its slot frees when the
	// worker skips it, and the freed slot must admit again. Cancelling
	// releases the caller immediately, but the slot itself only frees
	// once a worker reaches the abandoned entry — so first release the
	// held task and wait for the queue to shrink.
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for p.queuedLen() >= depth {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained below depth")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- p.Run(context.Background(), func() {})
	}()

	wg.Wait()
	close(done)
	for err := range done {
		if err != nil {
			t.Fatalf("admitted task failed: %v", err)
		}
	}
	if got := p.queuedLen(); got != 0 {
		t.Fatalf("queued after full drain = %d, want 0", got)
	}
}

// TestPoolTenantShare checks the per-tenant admission bound: a tenant
// at its share is shed with ErrTenantQueueFull while another tenant
// still admits into the remaining pool-wide slots.
func TestPoolTenantShare(t *testing.T) {
	p := newWorkerPool(1, 4, 2, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.RunTenant(context.Background(), "hog", 1, func() { close(running); <-gate })
	}()
	<-running

	// The hog fills its share of the queue (2 of 4 slots).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunTenant(context.Background(), "hog", 1, func() {})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.queuedLen() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("hog tasks never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The hog's next submission is shed on its share, not the pool bound.
	if err := p.RunTenant(context.Background(), "hog", 1, func() {}); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("hog overflow = %v, want ErrTenantQueueFull", err)
	}
	// A polite tenant still has room.
	wg.Add(1)
	politeRan := make(chan struct{})
	go func() {
		defer wg.Done()
		if err := p.RunTenant(context.Background(), "polite", 1, func() { close(politeRan) }); err != nil {
			t.Errorf("polite tenant shed: %v", err)
		}
	}()

	close(gate)
	wg.Wait()
	<-politeRan
}

// TestPoolWeightedFairDequeue holds the single worker, queues a burst
// for tenant A and a single task for tenant B, and checks B's task is
// not stuck behind A's whole burst — the round-robin guarantee that
// bounds a polite tenant's queueing delay by one quantum, not by the
// hog's backlog.
func TestPoolWeightedFairDequeue(t *testing.T) {
	p := newWorkerPool(1, 16, 16, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.RunTenant(context.Background(), "a", 1, func() { close(running); <-gate })
	}()
	<-running

	var mu sync.Mutex
	var order []string
	queued := 0
	enqueue := func(tenant, label string) {
		queued++
		want := queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunTenant(context.Background(), tenant, 1, func() {
				mu.Lock()
				order = append(order, label)
				mu.Unlock()
			})
		}()
		// Wait for this submission to land before the next, so arrival
		// order (and therefore intra-tenant FIFO order) is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for p.queuedLen() < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s never queued", label)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Deterministic arrival order: A's burst first, then B's single task.
	for i := 0; i < 4; i++ {
		enqueue("a", fmt.Sprintf("a%d", i))
	}
	enqueue("b", "b0")

	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("executed %d tasks, want 5 (%v)", len(order), order)
	}
	pos := map[string]int{}
	for i, l := range order {
		pos[l] = i
	}
	// With weight-1 quanta, B's task must run after at most one more A
	// task, never behind the whole burst.
	if pos["b0"] > 2 {
		t.Fatalf("b0 executed at position %d of %v — starved behind the a-burst", pos["b0"], order)
	}
}

// TestPoolDeadlineWhileQueued checks a task whose context expires in the
// queue returns DeadlineExceeded to its caller and is skipped (never
// executed) by the worker.
func TestPoolDeadlineWhileQueued(t *testing.T) {
	p := newWorkerPool(1, 2, 2, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Run(context.Background(), func() { close(running); <-gate })
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	executed := make(chan struct{}, 1)
	err := p.Run(ctx, func() { executed <- struct{}{} })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want DeadlineExceeded", err)
	}

	close(gate)
	p.Stop() // waits for the worker to drain the abandoned task
	select {
	case <-executed:
		t.Fatal("expired task was executed")
	default:
	}
}

// TestPoolRunsQueuedWork is the happy path: more tasks than workers all
// complete.
func TestPoolRunsQueuedWork(t *testing.T) {
	p := newWorkerPool(2, 8, 8, nil)
	defer p.Stop()
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), func() {
				mu.Lock()
				ran++
				mu.Unlock()
			}); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran != 8 {
		t.Fatalf("ran = %d, want 8", ran)
	}
}

// TestPoolStopRejectsNewWork checks submissions after Stop get the typed
// draining error.
func TestPoolStopRejectsNewWork(t *testing.T) {
	p := newWorkerPool(1, 1, 1, nil)
	p.Stop()
	if err := p.Run(context.Background(), func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Run after Stop = %v, want ErrDraining", err)
	}
}

// TestPoolStopDrainsQueue checks tasks queued before Stop still execute:
// Stop is a drain, not an abort.
func TestPoolStopDrainsQueue(t *testing.T) {
	p := newWorkerPool(1, 8, 8, nil)
	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), func() { close(running); <-gate })
	}()
	<-running
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(context.Background(), func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.queuedLen() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("tasks never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	p.Stop()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if ran != 4 {
		t.Fatalf("ran = %d, want 4 (Stop must drain the queue)", ran)
	}
}
