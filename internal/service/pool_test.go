package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolAdmissionRejection fills every worker and queue slot, then
// checks the next submission is shed immediately with ErrQueueFull.
func TestPoolAdmissionRejection(t *testing.T) {
	p := newWorkerPool(1, 2, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	// One task occupies the worker; two fill the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), func() { close(running); <-gate })
	}()
	<-running
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(context.Background(), func() {})
		}()
	}
	// Wait until both fillers are actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for len(p.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	err := p.Run(context.Background(), func() { t.Error("overflow task must not run") })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Run = %v, want ErrQueueFull", err)
	}

	close(gate)
	wg.Wait()
}

// TestPoolDeadlineWhileQueued checks a task whose context expires in the
// queue returns DeadlineExceeded to its caller and is skipped (never
// executed) by the worker.
func TestPoolDeadlineWhileQueued(t *testing.T) {
	p := newWorkerPool(1, 2, nil)
	defer p.Stop()

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Run(context.Background(), func() { close(running); <-gate })
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	executed := make(chan struct{}, 1)
	err := p.Run(ctx, func() { executed <- struct{}{} })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want DeadlineExceeded", err)
	}

	close(gate)
	p.Stop() // waits for the worker to drain the abandoned task
	select {
	case <-executed:
		t.Fatal("expired task was executed")
	default:
	}
}

// TestPoolRunsQueuedWork is the happy path: more tasks than workers all
// complete.
func TestPoolRunsQueuedWork(t *testing.T) {
	p := newWorkerPool(2, 8, nil)
	defer p.Stop()
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), func() {
				mu.Lock()
				ran++
				mu.Unlock()
			}); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran != 8 {
		t.Fatalf("ran = %d, want 8", ran)
	}
}

// TestPoolStopRejectsNewWork checks submissions after Stop get the typed
// draining error.
func TestPoolStopRejectsNewWork(t *testing.T) {
	p := newWorkerPool(1, 1, nil)
	p.Stop()
	if err := p.Run(context.Background(), func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Run after Stop = %v, want ErrDraining", err)
	}
}
