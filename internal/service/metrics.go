package service

// Metric names recorded into the server's obs.Registry under the
// service.* namespace. /metricz renders the registry as JSON; lbload
// reads the cache counters back from it to report hit rates.
const (
	mRequests          = "service.requests"
	mOK                = "service.ok"
	mBadRequest        = "service.bad_request"
	mRejectedQueueFull = "service.rejected_queue_full"
	mRejectedTenantQ   = "service.rejected_tenant_queue"
	mRejectedTenant    = "service.rejected_tenant_limit"
	mRejectedShed      = "service.rejected_slo_shed"
	mRejectedDraining  = "service.rejected_draining"
	mDeadlineExceeded  = "service.deadline_exceeded"
	mInternalErrors    = "service.internal_errors"

	mCacheHits      = "service.cache_hits"
	mCacheMisses    = "service.cache_misses"
	mCacheEvictions = "service.cache_evictions"
	mCoalesced      = "service.singleflight_coalesced"

	// mPlansComputed counts actual planner executions (flat or
	// interface path). In cluster mode, summing it across nodes proves
	// the cluster-wide singleflight: N concurrent misses for one key on
	// N nodes must raise the cluster total by exactly one.
	mPlansComputed = "service.plans_computed"

	// Cluster-mode serving counters (cluster.go): proxied counts misses
	// routed to a remote owner, peer_plans_cached counts owner plans
	// installed into the local cache, failover_local counts misses
	// computed locally because the owner was unreachable.
	mClusterProxied   = "service.cluster.proxied"
	mClusterPeerPlans = "service.cluster.peer_plans_cached"
	mClusterFailover  = "service.cluster.failover_local"

	mBatchRequests = "service.batch_requests"
	mBatchItems    = "service.batch_items"
	mBatchDeduped  = "service.batch_deduped"

	mLatencyNs = "service.latency_ns"
	// mAdmittedLatencyNs records handler latency for 200 responses only
	// — the signal the SLO admission controller steers on (shed and
	// rejected responses are fast and would drag the p99 down just when
	// the service is at its slowest).
	mAdmittedLatencyNs = "service.admitted_latency_ns"
	mComputeNs         = "service.compute_ns"

	mQueueDepth = "service.queue_depth"
	mInflight   = "service.inflight"
	mWorkers    = "service.workers"
	mDraining   = "service.draining"

	// SLO admission controller state (admission.go): the current admit
	// fraction in permille and the windowed p99 it last steered on.
	mSLOAdmitPermille = "service.slo_admit_permille"
	mSLOWindowP99     = "service.slo_window_p99_ns"

	// Warm-restart snapshot counters (snapshot.go).
	mCacheSnapshotted = "service.cache_snapshotted"
	mCacheRestored    = "service.cache_restored"

	// Incremental replanning (rebalance.go): requests counts
	// POST /v1/rebalance arrivals; noop/patched/full_replans classify the
	// patch outcomes actually computed (cache hits re-serve a prior
	// outcome and count only as requests); prior_computed counts patches
	// whose prior plan was not cached and had to be replanned first;
	// patch_ns times the PatchInto call alone.
	mRebalanceRequests      = "service.rebalance.requests"
	mRebalanceNoop          = "service.rebalance.noop"
	mRebalancePatched       = "service.rebalance.patched"
	mRebalanceFullReplans   = "service.rebalance.full_replans"
	mRebalancePriorComputed = "service.rebalance.prior_computed"
	mRebalancePatchNs       = "service.rebalance.patch_ns"

	// Planner-pool stewardship (plan.go): puts count scratches returned
	// to the pools, drops count scratches discarded instead because one
	// oversized request had ballooned their retained buffers. Parallel
	// counts plans routed through the multicore planner.
	mPlannerPoolPuts     = "service.planner_pool.puts"
	mPlannerPoolDrops    = "service.planner_pool.drops"
	mPlannerPoolParallel = "service.planner_pool.parallel_plans"
)
