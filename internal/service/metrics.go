package service

// Metric names recorded into the server's obs.Registry under the
// service.* namespace. /metricz renders the registry as JSON; lbload
// reads the cache counters back from it to report hit rates.
const (
	mRequests          = "service.requests"
	mOK                = "service.ok"
	mBadRequest        = "service.bad_request"
	mRejectedQueueFull = "service.rejected_queue_full"
	mRejectedDraining  = "service.rejected_draining"
	mDeadlineExceeded  = "service.deadline_exceeded"
	mInternalErrors    = "service.internal_errors"

	mCacheHits      = "service.cache_hits"
	mCacheMisses    = "service.cache_misses"
	mCacheEvictions = "service.cache_evictions"
	mCoalesced      = "service.singleflight_coalesced"

	mBatchRequests = "service.batch_requests"
	mBatchItems    = "service.batch_items"
	mBatchDeduped  = "service.batch_deduped"

	mLatencyNs = "service.latency_ns"
	mComputeNs = "service.compute_ns"

	mQueueDepth = "service.queue_depth"
	mInflight   = "service.inflight"
	mWorkers    = "service.workers"
	mDraining   = "service.draining"
)
