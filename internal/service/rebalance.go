package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"bisectlb"
	"bisectlb/internal/obs"
)

// This file serves POST /v1/rebalance: incremental replanning over a
// previously served plan (DESIGN.md §15). The request names the same
// spec/n/algorithm identity as /v1/balance plus a drift vector of
// per-part weight factors; the server patches the prior plan instead of
// replanning from scratch, falling back to a bit-identical fresh plan
// when the drift is too large for a patch to pay off.

// DriftDelta is one entry of a rebalance drift vector: the part's
// observed load is Factor times its planned weight.
type DriftDelta struct {
	ID     uint64  `json:"id"`
	Factor float64 `json:"factor"`
}

// RebalanceRequest is the body of POST /v1/rebalance. The spec fields
// identify the prior plan exactly as a /v1/balance request would; Deltas
// carries the observed drift. PriorSignature, when set, must match the
// signature /v1/balance reported for the prior plan — a cheap guard
// against patching a different plan than the client measured.
type RebalanceRequest struct {
	Spec       ProblemSpec `json:"spec"`
	N          int         `json:"n"`
	Algorithm  string      `json:"algorithm,omitempty"`
	Alpha      float64     `json:"alpha"`
	Kappa      float64     `json:"kappa,omitempty"`
	DeadlineMS int64       `json:"deadline_ms,omitempty"`
	Tenant     string      `json:"tenant,omitempty"`

	PriorSignature string       `json:"prior_signature,omitempty"`
	Deltas         []DriftDelta `json:"deltas,omitempty"`
}

// base maps the identity fields onto a BalanceRequest, the canonical
// form spec.go knows how to key and plan.go knows how to compute.
func (r *RebalanceRequest) base() BalanceRequest {
	return BalanceRequest{
		Spec:      r.Spec,
		N:         r.N,
		Algorithm: r.Algorithm,
		Alpha:     r.Alpha,
		Kappa:     r.Kappa,
		Tenant:    r.Tenant,
	}
}

// validate rejects requests the patch path cannot serve. Rebalancing
// requires the flat planning substrate (the patch re-bisects subtrees
// through the kernel), so only the flat families qualify, and the
// α-band drift rule needs a declared α even for the α-oblivious
// algorithms.
func (r *RebalanceRequest) validate(base *BalanceRequest) error {
	if err := base.validate(); err != nil {
		return err
	}
	switch r.Spec.Family {
	case "uniform", "fixed", "list":
	default:
		return fmt.Errorf("family %q has no flat kernel; /v1/rebalance supports uniform, fixed and list", r.Spec.Family)
	}
	if !(r.Alpha > 0 && r.Alpha <= 0.5) {
		return fmt.Errorf("rebalance needs a declared α in (0, 1/2] for the drift band, got %g", r.Alpha)
	}
	for i, d := range r.Deltas {
		if !(d.Factor > 0) || d.Factor > 1e12 {
			return fmt.Errorf("deltas[%d]: factor must be in (0, 1e12], got %g", i, d.Factor)
		}
	}
	return nil
}

// driftKeySuffix appends the canonical drift identity to a base cache
// key: "|drift=" plus a short digest of the sorted, last-wins-deduped
// delta vector. Two requests whose drifts differ only in delta order or
// superseded duplicates share one cache entry.
func driftKeySuffix(b []byte, deltas []DriftDelta) []byte {
	dedup := make([]DriftDelta, 0, len(deltas))
	for _, d := range deltas { // last wins, matching PatchInto
		found := false
		for j := range dedup {
			if dedup[j].ID == d.ID {
				dedup[j].Factor = d.Factor
				found = true
				break
			}
		}
		if !found {
			dedup = append(dedup, d)
		}
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].ID < dedup[j].ID })
	var enc []byte
	for _, d := range dedup {
		enc = strconv.AppendUint(enc, d.ID, 16)
		enc = append(enc, ':')
		enc = strconv.AppendFloat(enc, d.Factor, 'g', -1, 64)
		enc = append(enc, ';')
	}
	b = append(b, "|drift="...)
	return strconv.AppendUint(b, fnv64a(enc), 16)
}

// isDriftKey reports whether a cache key names a rebalance result (the
// drift digest is appended after the balance identity, so a plain
// Contains would also work; the marker never occurs in a balance key).
func isDriftKey(key string) bool {
	for i := 0; i+7 <= len(key); i++ {
		if key[i:i+7] == "|drift=" {
			return true
		}
	}
	return false
}

// deltaScratch pools a DeltaPlanner with its PatchedPlan buffer, the
// rebalance analogue of plannerScratch.
type deltaScratch struct {
	dp *bisectlb.DeltaPlanner
	pp bisectlb.PatchedPlan
}

var deltaPool = sync.Pool{New: func() any { return &deltaScratch{dp: bisectlb.NewDeltaPlanner(0)} }}

// maxPooledDeltaFootprint bounds a pooled delta scratch's retained
// buffers, mirroring maxPooledFootprint for the planner pool.
const maxPooledDeltaFootprint = 16 << 20

func putDeltaScratch(reg *obs.Registry, sc *deltaScratch) {
	sc.dp.SetParallel(nil) // never retain a borrowed parallel planner
	if cap(sc.pp.Plan.Parts) > maxPooledPartsCap || sc.dp.Footprint() > maxPooledDeltaFootprint {
		reg.Counter(mPlannerPoolDrops).Inc()
		return
	}
	reg.Counter(mPlannerPoolPuts).Inc()
	deltaPool.Put(sc)
}

// RebalanceInfo is the patch certificate attached to a rebalanced plan:
// what the patch did and the bound its ratio is checked against.
type RebalanceInfo struct {
	// Outcome is "noop", "patched" or "full_replan".
	Outcome string `json:"outcome"`
	// Band is the drift band B = max(guarantee bound, 2): a part is dirty
	// when its drifted per-processor load exceeds B × the drifted mean,
	// and a patched plan's ratio is bounded by B whenever no oversize
	// part survives (DESIGN.md §15).
	Band float64 `json:"band"`
	// Dirty counts parts outside the band; DirtyWeightFrac is their share
	// of the drifted total weight (≥ the full-replan threshold forces a
	// fresh plan).
	Dirty           int     `json:"dirty"`
	DirtyWeightFrac float64 `json:"dirty_weight_frac"`
	// Splits counts the bisections the patch performed — the work a fresh
	// plan would have multiplied.
	Splits int `json:"splits"`
	// Oversize counts repair fragments and indivisible leaves still above
	// the band; when zero, ratio ≤ Band holds.
	Oversize int `json:"oversize"`
	// GroupProcs, for patched outcomes, gives each group's processor
	// count; parts carry their group index. Absent for noop and
	// full_replan outcomes (every part is its own group there).
	GroupProcs []int `json:"group_procs,omitempty"`
	// PriorComputed is true when the prior plan was not in the cache and
	// had to be recomputed before patching.
	PriorComputed bool `json:"prior_computed"`
}

// RebalanceResponse wraps a rebalanced plan with serving metadata,
// mirroring BalanceResponse.
type RebalanceResponse struct {
	Plan
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
}

func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(mRequests).Inc()
	s.reg.Counter(mRebalanceRequests).Inc()
	s.reg.Gauge(mInflight).Add(1)
	defer s.reg.Gauge(mInflight).Add(-1)
	start := time.Now()
	defer s.reg.Histogram(mLatencyNs).ObserveSince(start)

	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter(mRejectedDraining).Inc()
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	var req RebalanceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	base := req.base()
	base.normalize()
	req.Spec = base.Spec
	req.Algorithm = base.Algorithm
	if err := req.validate(&base); err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if req.N > s.cfg.MaxN {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "n_too_large",
			fmt.Sprintf("n=%d exceeds the server's max_n limit %d", req.N, s.cfg.MaxN))
		return
	}
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "unknown_algorithm", err.Error())
		return
	}
	if _, _, ok := flatInputs(&base, alg); !ok {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "rebalance_unsupported",
			fmt.Sprintf("algorithm %q has no flat patch path", req.Algorithm))
		return
	}

	// Canonical identities: the prior plan's key (what /v1/balance would
	// cache) and the drift key extending it with the delta digest.
	kb := s.keyBufs.Get().(*[]byte)
	keyBytes := base.appendKey((*kb)[:0])
	baseKey := string(keyBytes)
	keyBytes = driftKeySuffix(keyBytes, req.Deltas)
	plan, hit := s.cache.GetBytes(keyBytes)
	key := ""
	if !hit {
		key = string(keyBytes)
	}
	*kb = keyBytes
	s.keyBufs.Put(kb)

	if req.PriorSignature != "" && req.PriorSignature != signature(baseKey) {
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "prior_mismatch",
			fmt.Sprintf("prior_signature %q does not match this spec's plan signature %q",
				req.PriorSignature, signature(baseKey)))
		return
	}

	tn := s.tenants.state(tenantID(r, s.cfg.TenantHeader, req.Tenant))
	tn.requests.Inc()
	if hit {
		s.respondRebalance(w, RebalanceResponse{Plan: *plan, Cached: true}, "hit")
		s.observeAdmitted(tn, start)
		return
	}

	// Compute path: same overload protection as /v1/balance.
	if !s.tenants.allowToken(tn, start) {
		tn.shed.Inc()
		s.reg.Counter(mRejectedTenant).Inc()
		s.reject(w, http.StatusTooManyRequests, "tenant_rate_limited",
			fmt.Sprintf("tenant %q exceeded its compute rate", tn.id))
		return
	}
	if !s.adm.allow(start) {
		tn.shed.Inc()
		s.reg.Counter(mRejectedShed).Inc()
		s.reject(w, http.StatusTooManyRequests, "slo_shed",
			"service is over its latency SLO; load is being shed")
		return
	}
	hash := fnv64aString(key)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	computeLocal := func() (*Plan, error) {
		var (
			p    *Plan
			cerr error
		)
		rerr := s.pool.RunTenant(ctx, tn.id, tn.weight, func() {
			if s.cfg.Hooks.PreCompute != nil {
				s.cfg.Hooks.PreCompute()
			}
			p, cerr = s.computeRebalance(&req, &base, alg, baseKey, key)
			if cerr == nil {
				s.cache.Put(key, p)
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		return p, cerr
	}

	// Cluster mode composes exactly as on the balance path: the drift key
	// hashes to an owner, a remotely-owned miss ships the full rebalance
	// request to it (ClusterFill routes drift keys back here), and an
	// unreachable owner fails over to local computation.
	fill := computeLocal
	cacheState := "miss"
	if pc := s.cluster; pc != nil {
		if _, self := pc.Owner(hash); !self {
			fill = func() (*Plan, error) {
				body, merr := json.Marshal(&req)
				if merr != nil {
					return nil, merr
				}
				raw, peerCached, ferr := pc.Fetch(ctx, key, hash, body)
				if ferr != nil {
					s.reg.Counter(mClusterFailover).Inc()
					return computeLocal()
				}
				var p Plan
				if uerr := json.Unmarshal(raw, &p); uerr != nil {
					return nil, fmt.Errorf("service: owner returned an undecodable plan for %q: %w", key, uerr)
				}
				s.reg.Counter(mClusterProxied).Inc()
				s.cache.Put(key, &p)
				s.reg.Counter(mClusterPeerPlans).Inc()
				if peerCached {
					cacheState = "peer-hit"
				} else {
					cacheState = "peer-miss"
				}
				return &p, nil
			}
		} else {
			pc.Touch(key, hash)
		}
	}

	plan, shared, err := s.sf.Do(ctx, key, fill)
	if shared {
		s.reg.Counter(mCoalesced).Inc()
	}
	if err != nil {
		s.rejectRebalanceError(w, err)
		return
	}
	s.respondRebalance(w, RebalanceResponse{Plan: *plan, Cached: cacheState == "peer-hit", Coalesced: shared}, cacheState)
	s.observeAdmitted(tn, start)
}

// computeRebalance fetches or recomputes the flat prior plan and patches
// it against the drift vector. Runs on a worker; callers cache the
// result under the drift key.
func (s *Server) computeRebalance(req *RebalanceRequest, base *BalanceRequest, alg bisectlb.Algorithm, baseKey, driftKey string) (*Plan, error) {
	root, k, ok := flatInputs(base, alg)
	if !ok {
		return nil, fmt.Errorf("service: no flat inputs for family %q", req.Spec.Family)
	}

	// Fetch-or-compute the prior. A cached served plan carries its flat
	// form only if it was computed on this node (the attachment does not
	// survive JSON), so a peer-fetched or evicted prior is recomputed —
	// counted, because it erases the patch's latency advantage.
	priorComputed := false
	var priorServed *Plan
	if p, hit := s.cache.Get(baseKey); hit && p.flat != nil {
		priorServed = p
	} else {
		fresh, err := computePlan(base, alg, signature(baseKey), s.reg)
		if err != nil {
			return nil, err
		}
		if fresh.flat == nil {
			return nil, fmt.Errorf("service: family %q produced no flat plan to patch", req.Spec.Family)
		}
		s.cache.Put(baseKey, fresh)
		s.reg.Counter(mRebalancePriorComputed).Inc()
		priorComputed = true
		priorServed = fresh
	}
	prior := priorServed.flat

	deltas := make([]bisectlb.WeightDelta, len(req.Deltas))
	for i, d := range req.Deltas {
		deltas[i] = bisectlb.WeightDelta{ID: d.ID, Factor: d.Factor}
	}
	kappa := req.Kappa
	if kappa == 0 {
		kappa = 1
	}
	opt := bisectlb.PatchOptions{Alpha: req.Alpha, Kappa: kappa}

	sc := deltaPool.Get().(*deltaScratch)
	defer putDeltaScratch(s.reg, sc)
	sc.dp.SetBucketQueue(req.N >= bucketQueueNCutoff)
	var psc *parallelScratch
	if req.N >= parallelNCutoff {
		psc = parallelPool.Get().(*parallelScratch)
		defer putParallelScratch(s.reg, psc)
		psc.pp.SetMetrics(s.reg)
		psc.pp.SetBucketQueue(req.N >= bucketQueueNCutoff)
		sc.dp.SetParallel(psc.pp)
	} else {
		sc.dp.SetParallel(nil)
	}

	start := time.Now()
	_, stats, err := sc.dp.PatchInto(&sc.pp, k, root, prior, deltas, opt)
	if err != nil {
		return nil, err
	}
	s.reg.Histogram(mRebalancePatchNs).ObserveSince(start)

	info := &RebalanceInfo{
		Outcome:       stats.Outcome.String(),
		Band:          stats.Band,
		Dirty:         stats.Dirty,
		Splits:        stats.Splits,
		Oversize:      stats.Oversize + stats.OversizeLeaves,
		PriorComputed: priorComputed,
	}
	if stats.DriftedTotal > 0 {
		info.DirtyWeightFrac = stats.DirtyWeight / stats.DriftedTotal
	}
	sig := signature(driftKey)

	switch stats.Outcome {
	case bisectlb.PatchNoop:
		s.reg.Counter(mRebalanceNoop).Inc()
		// The prior plan is still within the band: serve it unchanged
		// (parts shared by reference — served plans are immutable) under
		// the drift signature, certificate attached.
		out := *priorServed
		out.flat = nil
		out.Signature = sig
		out.Rebalance = info
		return &out, nil
	case bisectlb.PatchFullReplan:
		s.reg.Counter(mRebalanceFullReplans).Inc()
		out := servePlan(&sc.pp.Plan, base, alg, sig)
		out.Rebalance = info
		return out, nil
	default:
		s.reg.Counter(mRebalancePatched).Inc()
		out := servePlan(&sc.pp.Plan, base, alg, sig)
		out.Algorithm = sc.pp.Plan.Algorithm // keep the "+patch" display name
		info.GroupProcs = make([]int, len(sc.pp.GroupProcs))
		for i, p := range sc.pp.GroupProcs {
			info.GroupProcs[i] = int(p)
		}
		for i := range out.Parts {
			out.Parts[i].Group = int(sc.pp.Group[i])
		}
		out.Rebalance = info
		return out, nil
	}
}

// rejectRebalanceError extends the shared compute-error mapping with the
// patch path's typed errors.
func (s *Server) rejectRebalanceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, bisectlb.ErrUnknownPart):
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "unknown_part", err.Error())
	case errors.Is(err, bisectlb.ErrBadFactor):
		s.reg.Counter(mBadRequest).Inc()
		s.reject(w, http.StatusBadRequest, "bad_delta", err.Error())
	case errors.Is(err, bisectlb.ErrPlanMismatch):
		s.reg.Counter(mInternalErrors).Inc()
		s.reject(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		s.rejectComputeError(w, err)
	}
}

func (s *Server) respondRebalance(w http.ResponseWriter, resp RebalanceResponse, cacheState string) {
	s.reg.Counter(mOK).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Lbserve-Cache", cacheState)
	json.NewEncoder(w).Encode(resp)
}

// clusterFillRebalance is the owner-side fill for a proxied drift key:
// ClusterFill routes keys carrying the "|drift=" marker here, so peer
// traffic patches through the same pool and singleflight as local
// rebalance requests.
func (s *Server) clusterFillRebalance(ctx context.Context, key string, body []byte) ([]byte, bool, error) {
	var req RebalanceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false, fmt.Errorf("service: peer rebalance body: %w", err)
	}
	base := req.base()
	base.normalize()
	req.Spec = base.Spec
	req.Algorithm = base.Algorithm
	if err := req.validate(&base); err != nil {
		return nil, false, err
	}
	if req.N > s.cfg.MaxN {
		return nil, false, fmt.Errorf("service: peer fill n=%d exceeds max_n %d", req.N, s.cfg.MaxN)
	}
	alg, err := bisectlb.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, false, err
	}
	baseKey := base.cacheKey()
	plan, _, err := s.sf.Do(ctx, key, func() (*Plan, error) {
		var (
			p    *Plan
			cerr error
		)
		rerr := s.pool.Run(ctx, func() {
			p, cerr = s.computeRebalance(&req, &base, alg, baseKey, key)
			if cerr == nil {
				s.cache.Put(key, p)
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		return p, cerr
	})
	if err != nil {
		return nil, false, err
	}
	raw, err := json.Marshal(plan)
	return raw, false, err
}
