package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bisectlb/internal/obs"
)

func postRebalance(t *testing.T, url string, body string) (*http.Response, RebalanceResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(url+"/v1/rebalance", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var ok RebalanceResponse
	var bad errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decode OK body %q: %v", buf.String(), err)
		}
	} else {
		if err := json.Unmarshal(buf.Bytes(), &bad); err != nil {
			t.Fatalf("decode error body %q: %v", buf.String(), err)
		}
	}
	return resp, ok, bad
}

// rebalanceFixture warms a prior plan and derives a drift vector that
// pushes its heaviest splittable part to mult× the mean.
func rebalanceFixture(t *testing.T, url string, n int, mult float64) (BalanceResponse, []DriftDelta) {
	t.Helper()
	resp, prior, _ := postBalance(t, url, fmt.Sprintf(uniformReq, 7, n, "HF"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prior: status %d", resp.StatusCode)
	}
	mean := prior.Total / float64(prior.N)
	best := -1
	for i, pt := range prior.Parts {
		if pt.Procs != 1 {
			continue
		}
		if best < 0 || pt.Weight > prior.Parts[best].Weight {
			best = i
		}
	}
	return prior, []DriftDelta{{ID: prior.Parts[best].ID, Factor: mult * mean / prior.Parts[best].Weight}}
}

func rebalanceBody(n int, sig string, deltas []DriftDelta) string {
	raw, _ := json.Marshal(deltas)
	body := fmt.Sprintf(`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},"n":%d,"algorithm":"HF","alpha":0.1,"deltas":%s`, n, raw)
	if sig != "" {
		body += fmt.Sprintf(`,"prior_signature":%q`, sig)
	}
	return body + "}"
}

func TestRebalancePatchesDriftedPlan(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(Config{Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	prior, deltas := rebalanceFixture(t, ts.URL, 64, 12)
	resp, rb, _ := postRebalance(t, ts.URL, rebalanceBody(64, prior.Signature, deltas))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rb.Rebalance == nil || rb.Rebalance.Outcome != "patched" {
		t.Fatalf("rebalance info %+v, want patched", rb.Rebalance)
	}
	if rb.Rebalance.PriorComputed {
		t.Fatal("prior was cached but reported recomputed")
	}
	if !strings.HasSuffix(rb.Algorithm, "+patch") {
		t.Fatalf("algorithm %q, want +patch suffix", rb.Algorithm)
	}
	if rb.Rebalance.Band < 2 {
		t.Fatalf("band %g < 2", rb.Rebalance.Band)
	}
	if rb.Rebalance.Oversize == 0 && rb.Ratio > rb.Rebalance.Band*(1+1e-9) {
		t.Fatalf("patched ratio %g exceeds band %g", rb.Ratio, rb.Rebalance.Band)
	}

	// Group accounting: every part names a valid group, processor totals
	// are conserved, and the drifted weight is conserved.
	gp := rb.Rebalance.GroupProcs
	if len(gp) == 0 {
		t.Fatal("patched plan without group_procs")
	}
	sumProcs, sumPrior := 0, 0
	for _, p := range gp {
		sumProcs += p
	}
	factor := func(id uint64) float64 {
		for _, d := range deltas {
			if d.ID == id {
				return d.Factor
			}
		}
		return 1
	}
	wantTotal := 0.0
	for _, pt := range prior.Parts {
		sumPrior += pt.Procs
		wantTotal += factor(pt.ID) * pt.Weight
	}
	if sumProcs != sumPrior {
		t.Fatalf("group procs sum %d, prior owned %d", sumProcs, sumPrior)
	}
	for _, pt := range rb.Parts {
		if pt.Group < 0 || pt.Group >= len(gp) {
			t.Fatalf("part %d in group %d of %d", pt.ID, pt.Group, len(gp))
		}
	}
	if d := rb.Total - wantTotal; d > 1e-9*wantTotal || d < -1e-9*wantTotal {
		t.Fatalf("patched total %g, drifted prior total %g", rb.Total, wantTotal)
	}

	// The second identical request is a cache hit carrying the same
	// certificate.
	resp2, rb2, _ := postRebalance(t, ts.URL, rebalanceBody(64, prior.Signature, deltas))
	if resp2.StatusCode != http.StatusOK || !rb2.Cached {
		t.Fatalf("repeat: status %d cached %v", resp2.StatusCode, rb2.Cached)
	}
	if rb2.Rebalance == nil || rb2.Rebalance.Outcome != "patched" {
		t.Fatalf("repeat lost the certificate: %+v", rb2.Rebalance)
	}
	if got := reg.Counter(mRebalancePatched).Value(); got != 1 {
		t.Fatalf("patched counter %d, want 1 (cache hit must not recompute)", got)
	}
}

func TestRebalanceZeroDeltaIsNoop(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	prior, _ := rebalanceFixture(t, ts.URL, 64, 12)
	resp, rb, _ := postRebalance(t, ts.URL, rebalanceBody(64, prior.Signature, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rb.Rebalance == nil || rb.Rebalance.Outcome != "noop" {
		t.Fatalf("rebalance info %+v, want noop", rb.Rebalance)
	}
	if len(rb.Parts) != len(prior.Parts) {
		t.Fatalf("noop changed the part count: %d vs %d", len(rb.Parts), len(prior.Parts))
	}
	for i, pt := range rb.Parts {
		if pt.ID != prior.Parts[i].ID || pt.Weight != prior.Parts[i].Weight || pt.Procs != prior.Parts[i].Procs {
			t.Fatalf("noop part %d differs from prior", i)
		}
	}
	if rb.Signature == prior.Signature {
		t.Fatal("noop response reused the prior signature; drift identity lost")
	}
}

func TestRebalanceFullDriftReplans(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Drift one splittable part to 1e6× the mean: it is far outside the
	// band and carries nearly all of the drifted weight, so the dirty
	// weight fraction saturates and the patch degenerates to a fresh plan.
	prior, deltas := rebalanceFixture(t, ts.URL, 64, 1e6)
	resp, rb, _ := postRebalance(t, ts.URL, rebalanceBody(64, prior.Signature, deltas))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rb.Rebalance == nil || rb.Rebalance.Outcome != "full_replan" {
		t.Fatalf("rebalance info %+v, want full_replan", rb.Rebalance)
	}
	if len(rb.Rebalance.GroupProcs) != 0 {
		t.Fatal("full replan reported pooled groups")
	}
}

func TestRebalanceComputesMissingPrior(t *testing.T) {
	regA := obs.NewRegistry()
	srvA := New(Config{Registry: regA})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	defer srvA.Shutdown(context.Background())
	prior, deltas := rebalanceFixture(t, tsA.URL, 64, 12)

	// A second server with a cold cache must replan the prior first.
	regB := obs.NewRegistry()
	srvB := New(Config{Registry: regB})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer srvB.Shutdown(context.Background())

	resp, rb, _ := postRebalance(t, tsB.URL, rebalanceBody(64, prior.Signature, deltas))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rb.Rebalance == nil || !rb.Rebalance.PriorComputed {
		t.Fatalf("cold prior not reported as recomputed: %+v", rb.Rebalance)
	}
	if got := regB.Counter(mRebalancePriorComputed).Value(); got != 1 {
		t.Fatalf("prior_computed counter %d, want 1", got)
	}
	// The recomputed prior is now cached: a /v1/balance for the same spec
	// hits.
	resp2, bal, _ := postBalance(t, tsB.URL, fmt.Sprintf(uniformReq, 7, 64, "HF"))
	if resp2.StatusCode != http.StatusOK || !bal.Cached {
		t.Fatalf("prior not cached after rebalance: status %d cached %v", resp2.StatusCode, bal.Cached)
	}
}

func TestRebalanceRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	prior, deltas := rebalanceFixture(t, ts.URL, 64, 12)

	cases := []struct {
		name, body, code string
	}{
		{"wrong-prior-signature", rebalanceBody(64, "deadbeef", deltas), "prior_mismatch"},
		{"unknown-part",
			rebalanceBody(64, "", []DriftDelta{{ID: 0xfeed, Factor: 2}}), "unknown_part"},
		{"bad-factor",
			rebalanceBody(64, "", []DriftDelta{{ID: prior.Parts[0].ID, Factor: -1}}), "bad_spec"},
		{"missing-alpha",
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},"n":64,"algorithm":"HF","deltas":[]}`,
			"bad_spec"},
		{"unsupported-family",
			`{"spec":{"family":"fem","seed":7},"n":64,"algorithm":"HF","alpha":0.1,"deltas":[]}`,
			"bad_spec"},
		{"unknown-field",
			`{"spec":{"family":"uniform","lo":0.1,"hi":0.5,"seed":7},"n":64,"alpha":0.1,"bogus":1}`,
			"bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, bad := postRebalance(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if bad.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", bad.Error.Code, tc.code)
			}
		})
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/rebalance", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

func TestClusterFillRoutesDriftKeys(t *testing.T) {
	srv := New(Config{})
	defer srv.Shutdown(context.Background())

	req := RebalanceRequest{
		Spec:  ProblemSpec{Family: "uniform", Lo: 0.1, Hi: 0.5, Seed: 7},
		N:     64,
		Alpha: 0.1,
	}
	base := req.base()
	base.normalize()
	key := string(driftKeySuffix([]byte(base.cacheKey()), req.Deltas))
	if !isDriftKey(key) {
		t.Fatalf("drift key %q not recognised", key)
	}
	body, _ := json.Marshal(&req)
	raw, cached, err := srv.ClusterFill(context.Background(), key, body)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold fill reported cached")
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatalf("undecodable fill result: %v", err)
	}
	if p.Rebalance == nil || p.Rebalance.Outcome != "noop" {
		t.Fatalf("peer fill lost the certificate: %+v", p.Rebalance)
	}
	// Second fill hits the drift-key cache entry.
	_, cached, err = srv.ClusterFill(context.Background(), key, body)
	if err != nil || !cached {
		t.Fatalf("warm fill: cached %v err %v", cached, err)
	}
}

func TestDriftKeyCanonicalisesDeltas(t *testing.T) {
	a := []DriftDelta{{ID: 2, Factor: 3}, {ID: 1, Factor: 2}}
	b := []DriftDelta{{ID: 1, Factor: 9}, {ID: 2, Factor: 3}, {ID: 1, Factor: 2}}
	ka := string(driftKeySuffix(nil, a))
	kb := string(driftKeySuffix(nil, b))
	if ka != kb {
		t.Fatalf("order/dup-insensitive keys differ: %q vs %q", ka, kb)
	}
	kc := string(driftKeySuffix(nil, []DriftDelta{{ID: 1, Factor: 2}}))
	if ka == kc {
		t.Fatal("different drifts share a key")
	}
}
