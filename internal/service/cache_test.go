package service

import (
	"fmt"
	"testing"

	"bisectlb/internal/obs"
)

func TestCacheHitAfterPut(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(64, 4, reg)
	plan := &Plan{Algorithm: "HF", N: 4, Signature: "abc"}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k1", plan)
	got, ok := c.Get("k1")
	if !ok || got != plan {
		t.Fatalf("Get = %v, %v; want the stored plan", got, ok)
	}
	sn := reg.Snapshot()
	if sn.Counters[mCacheHits] != 1 || sn.Counters[mCacheMisses] != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", sn.Counters[mCacheHits], sn.Counters[mCacheMisses])
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// One shard of capacity 3 makes the recency order directly observable.
	c := newPlanCache(3, 1, reg)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Plan{Signature: fmt.Sprintf("%d", i)})
	}
	// Touch k0 so k1 becomes the LRU entry, then overflow.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 should be cached")
	}
	c.Put("k3", &Plan{Signature: "3"})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	if n := reg.Snapshot().Counters[mCacheEvictions]; n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestCacheSharding(t *testing.T) {
	c := newPlanCache(1024, 16, nil)
	if len(c.shards) != 16 {
		t.Fatalf("shards = %d, want 16", len(c.shards))
	}
	// Keys must spread: with 200 distinct keys all 16 shards should see
	// at least one (probability of an empty shard is negligible; the
	// test pins the hash actually distributing, not a distribution tail).
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), &Plan{})
	}
	for i := range c.shards {
		if c.shards[i].ll.Len() == 0 {
			t.Fatalf("shard %d received no keys — hash not distributing", i)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newPlanCache(-1, 16, nil)
	if c != nil {
		t.Fatal("negative capacity should disable the cache")
	}
	// All operations must be nil-safe.
	c.Put("k", &Plan{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len must be 0")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newPlanCache(128, 8, nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				c.Put(k, &Plan{})
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
