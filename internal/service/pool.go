package service

import (
	"context"
	"errors"
	"sync"

	"bisectlb/internal/obs"
)

// Typed admission errors. The handler maps them to 429 (queue full) and
// 503 (draining / deadline) responses.
var (
	// ErrQueueFull is returned when the admission queue has no room; the
	// caller should shed the request immediately (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining is returned for work submitted after Stop began.
	ErrDraining = errors.New("service: server is draining")
)

// workerPool executes submitted functions on a fixed number of worker
// goroutines behind a bounded admission queue. Run blocks the caller
// until its task finishes or the caller's context expires; tasks whose
// context is already dead when a worker picks them up are skipped, so an
// abandoned queue entry costs no compute.
type workerPool struct {
	queue chan *poolTask
	quit  chan struct{}
	wg    sync.WaitGroup
	reg   *obs.Registry

	mu      sync.Mutex
	stopped bool
}

type poolTask struct {
	ctx      context.Context
	fn       func()
	executed bool // written by the worker before close(done)
	done     chan struct{}
}

func newWorkerPool(workers, depth int, reg *obs.Registry) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &workerPool{
		queue: make(chan *poolTask, depth),
		quit:  make(chan struct{}),
		reg:   reg,
	}
	reg.Gauge(mWorkers).Set(int64(workers))
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.queue:
			p.exec(t)
		case <-p.quit:
			// Drain whatever is still queued (abandoned tasks whose
			// callers already gave up) so their contexts are observed.
			for {
				select {
				case t := <-p.queue:
					p.exec(t)
				default:
					return
				}
			}
		}
	}
}

func (p *workerPool) exec(t *poolTask) {
	p.reg.Gauge(mQueueDepth).Set(int64(len(p.queue)))
	if t.ctx.Err() == nil {
		t.fn()
		t.executed = true
	}
	close(t.done)
}

// Run admits fn to the queue (rejecting with ErrQueueFull when it is at
// capacity) and waits for it to execute. If ctx expires first, Run
// returns ctx's error; the queued task is skipped when reached.
func (p *workerPool) Run(ctx context.Context, fn func()) error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ErrDraining
	}
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.queue <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
	p.reg.Gauge(mQueueDepth).Set(int64(len(p.queue)))
	select {
	case <-t.done:
		if !t.executed {
			// The worker observed our dead context and skipped the task.
			if err := ctx.Err(); err != nil {
				return err
			}
			return ErrDraining
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop rejects new submissions and waits for the workers to finish the
// queue. Call after the HTTP server has drained so no caller is left
// waiting on an unexecuted task.
func (p *workerPool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
}
