package service

import (
	"context"
	"errors"
	"sync"

	"bisectlb/internal/obs"
)

// Typed admission errors. The handler maps them to 429 (queue full /
// tenant share exhausted) and 503 (draining / deadline) responses.
var (
	// ErrQueueFull is returned when the admission queue has no room; the
	// caller should shed the request immediately (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrTenantQueueFull is returned when one tenant's share of the
	// admission queue is exhausted while the queue as a whole still has
	// room — the isolation bound that stops a hot tenant from occupying
	// every slot (HTTP 429).
	ErrTenantQueueFull = errors.New("service: tenant queue share exhausted")
	// ErrDraining is returned for work submitted after Stop began.
	ErrDraining = errors.New("service: server is draining")
)

// workerPool executes submitted functions on a fixed number of worker
// goroutines behind a bounded admission queue. Run blocks the caller
// until its task finishes or the caller's context expires; tasks whose
// context is already dead when a worker picks them up are skipped, so an
// abandoned queue entry costs no compute.
//
// The queue is not one FIFO: each tenant gets its own FIFO and workers
// dequeue by deficit round robin over the tenants with queued work —
// each visit serves up to the tenant's weight in tasks before moving
// on. A tenant that queues 50 tasks ahead of another tenant's single
// task delays it by at most one weight quantum, not 50 tasks, which is
// what keeps per-tenant latency bounded when one client runs hot. Two
// admission bounds apply: the pool-wide depth, and a per-tenant share
// of it (tenantCap), so a hot tenant also cannot own every slot.
type workerPool struct {
	mu        sync.Mutex
	cond      *sync.Cond
	depth     int
	tenantCap int
	queued    int // total queued tasks across tenants
	stopped   bool
	byID      map[string]*tenantQ
	ring      []*tenantQ // tenants with queued work, round-robin order
	next      int        // ring index the next dequeue inspects
	wg        sync.WaitGroup
	reg       *obs.Registry
}

type tenantQ struct {
	id     string
	weight int // tasks served per round-robin visit (≥ 1)
	credit int // remaining quantum in the current visit
	tasks  []*poolTask
	inRing bool
}

type poolTask struct {
	ctx      context.Context
	fn       func()
	executed bool // written by the worker before close(done)
	done     chan struct{}
}

// newWorkerPool starts workers goroutines over a queue of depth slots,
// of which one tenant may hold at most tenantCap (clamped to
// [1, depth]; pass depth for no per-tenant bound).
func newWorkerPool(workers, depth, tenantCap int, reg *obs.Registry) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if tenantCap < 1 || tenantCap > depth {
		tenantCap = depth
	}
	p := &workerPool{
		depth:     depth,
		tenantCap: tenantCap,
		byID:      make(map[string]*tenantQ),
		reg:       reg,
	}
	p.cond = sync.NewCond(&p.mu)
	reg.Gauge(mWorkers).Set(int64(workers))
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.queued == 0 && !p.stopped {
			p.cond.Wait()
		}
		if p.queued == 0 {
			// Stopped and fully drained (abandoned tasks included, so
			// their contexts are observed).
			p.mu.Unlock()
			return
		}
		t := p.dequeueLocked()
		p.reg.Gauge(mQueueDepth).Set(int64(p.queued))
		p.mu.Unlock()
		p.exec(t)
	}
}

// dequeueLocked pops the next task under deficit round robin. The
// caller holds p.mu and guarantees p.queued > 0, so some ring entry has
// work and the loop terminates.
func (p *workerPool) dequeueLocked() *poolTask {
	for {
		if p.next >= len(p.ring) {
			p.next = 0
		}
		tq := p.ring[p.next]
		if len(tq.tasks) == 0 {
			p.removeFromRingLocked(p.next, tq)
			continue
		}
		if tq.credit <= 0 {
			// Quantum spent: replenish and move to the next tenant.
			tq.credit = tq.weight
			p.next++
			continue
		}
		tq.credit--
		t := tq.tasks[0]
		tq.tasks[0] = nil
		tq.tasks = tq.tasks[1:]
		p.queued--
		if len(tq.tasks) == 0 {
			p.removeFromRingLocked(p.next, tq)
		}
		return t
	}
}

func (p *workerPool) removeFromRingLocked(i int, tq *tenantQ) {
	tq.inRing = false
	tq.tasks = nil // release the drained backing array
	p.ring = append(p.ring[:i], p.ring[i+1:]...)
}

func (p *workerPool) exec(t *poolTask) {
	if t.ctx.Err() == nil {
		t.fn()
		t.executed = true
	}
	close(t.done)
}

// Run admits fn to the anonymous tenant's queue with weight 1 — the
// single-tenant form of RunTenant, kept for callers that don't
// partition their work.
func (p *workerPool) Run(ctx context.Context, fn func()) error {
	return p.RunTenant(ctx, "", 1, fn)
}

// RunTenant admits fn to tenant's queue (rejecting with ErrQueueFull
// when the pool is at capacity and ErrTenantQueueFull when the tenant's
// share is) and waits for it to execute. If ctx expires first,
// RunTenant returns ctx's error; the queued task is skipped when
// reached. weight (≥ 1) sets the tenant's round-robin quantum; the
// value carried by the tenant's first-ever submission wins.
func (p *workerPool) RunTenant(ctx context.Context, tenant string, weight int, fn func()) error {
	if weight < 1 {
		weight = 1
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ErrDraining
	}
	if p.queued >= p.depth {
		p.mu.Unlock()
		return ErrQueueFull
	}
	tq := p.byID[tenant]
	if tq == nil {
		tq = &tenantQ{id: tenant, weight: weight}
		p.byID[tenant] = tq
	}
	if len(tq.tasks) >= p.tenantCap {
		p.mu.Unlock()
		return ErrTenantQueueFull
	}
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	tq.tasks = append(tq.tasks, t)
	p.queued++
	if !tq.inRing {
		tq.inRing = true
		tq.credit = tq.weight
		p.ring = append(p.ring, tq)
	}
	p.reg.Gauge(mQueueDepth).Set(int64(p.queued))
	p.cond.Signal()
	p.mu.Unlock()

	select {
	case <-t.done:
		if !t.executed {
			// The worker observed our dead context and skipped the task.
			if err := ctx.Err(); err != nil {
				return err
			}
			return ErrDraining
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queuedLen reports the number of queued (not yet dequeued) tasks.
func (p *workerPool) queuedLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Stop rejects new submissions and waits for the workers to finish the
// queue. Call after the HTTP server has drained so no caller is left
// waiting on an unexecuted task.
func (p *workerPool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
