package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightCoalesces launches many concurrent callers for one key
// and checks exactly one executes while the rest share its result.
func TestSingleflightCoalesces(t *testing.T) {
	var g sfGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	const callers = 16

	var wg sync.WaitGroup
	leaders, followers := atomic.Int64{}, atomic.Int64{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, shared, err := g.Do(context.Background(), "k", func() (*Plan, error) {
				calls.Add(1)
				<-gate // hold the flight open until everyone has joined
				return &Plan{Signature: "s"}, nil
			})
			if err != nil || plan == nil || plan.Signature != "s" {
				t.Errorf("Do = %v, %v", plan, err)
			}
			if shared {
				followers.Add(1)
			} else {
				leaders.Add(1)
			}
		}()
	}
	// Wait until the leader is in flight and all followers are parked on
	// its call, then release.
	deadline := time.After(5 * time.Second)
	for calls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("leader never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(20 * time.Millisecond) // let followers enqueue
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", calls.Load())
	}
	if leaders.Load() != 1 {
		t.Fatalf("leaders = %d, want 1", leaders.Load())
	}
	if followers.Load() != callers-1 {
		t.Fatalf("followers = %d, want %d", followers.Load(), callers-1)
	}
}

// TestSingleflightSequentialCallsRerun checks the key is released after a
// flight completes: sequential calls each execute.
func TestSingleflightSequentialCallsRerun(t *testing.T) {
	var g sfGroup
	var calls int
	for i := 0; i < 3; i++ {
		_, shared, err := g.Do(context.Background(), "k", func() (*Plan, error) {
			calls++
			return &Plan{}, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestSingleflightFollowerDeadline checks a follower with an expired
// context stops waiting while the leader completes unharmed.
func TestSingleflightFollowerDeadline(t *testing.T) {
	var g sfGroup
	gate := make(chan struct{})
	leaderDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (*Plan, error) {
			close(started)
			<-gate
			return &Plan{}, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", func() (*Plan, error) { return &Plan{}, nil })
	if !shared {
		t.Fatal("second caller should have joined the in-flight call")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}
