package searchtree

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
)

func TestGenerateValidation(t *testing.T) {
	cases := []GenConfig{
		{MaxDepth: 0, MaxBranch: 3, ExpandProb: 0.5},
		{MaxDepth: 5, MaxBranch: 1, ExpandProb: 0.5},
		{MaxDepth: 5, MaxBranch: 3, ExpandProb: 0},
		{MaxDepth: 5, MaxBranch: 3, ExpandProb: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultGenConfig(5))
	b := MustGenerate(DefaultGenConfig(5))
	if a.Size() != b.Size() || a.TotalLeaves() != b.TotalLeaves() {
		t.Fatal("same seed gave different trees")
	}
}

func TestLeafCountsConsistent(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(1))
	for i, n := range tr.Nodes {
		if len(n.Children) == 0 {
			if n.Leaves != 1 {
				t.Fatalf("leaf %d has Leaves=%d", i, n.Leaves)
			}
			continue
		}
		var sum int64
		for _, c := range n.Children {
			sum += tr.Nodes[c].Leaves
			if tr.Nodes[c].Parent != i {
				t.Fatalf("node %d: child parent link broken", i)
			}
		}
		if n.Leaves != sum {
			t.Fatalf("node %d: Leaves=%d, children sum %d", i, n.Leaves, sum)
		}
	}
}

func TestFrontierWeightConservation(t *testing.T) {
	f := NewFrontier(MustGenerate(DefaultGenConfig(2)))
	var walk func(q bisect.Problem, depth int)
	walk = func(q bisect.Problem, depth int) {
		if depth == 0 || !q.CanBisect() {
			return
		}
		c1, c2 := q.Bisect()
		if math.Abs(c1.Weight()+c2.Weight()-q.Weight()) > 1e-12 {
			t.Fatalf("%v + %v != %v", c1.Weight(), c2.Weight(), q.Weight())
		}
		if c1.Weight() < c2.Weight() {
			t.Fatal("heavy frontier must come first")
		}
		walk(c1, depth-1)
		walk(c2, depth-1)
	}
	walk(f, 8)
}

func TestFrontierBisectDeterministic(t *testing.T) {
	f := NewFrontier(MustGenerate(DefaultGenConfig(3)))
	a1, a2 := f.Bisect()
	b1, b2 := f.Bisect()
	if a1.ID() != b1.ID() || a2.ID() != b2.ID() {
		t.Fatal("repeated bisection changed IDs")
	}
	if a1.ID() == a2.ID() {
		t.Fatal("sibling frontiers share an ID")
	}
}

func TestFrontierNodesDisjoint(t *testing.T) {
	f := NewFrontier(MustGenerate(DefaultGenConfig(4)))
	c1, c2 := f.Bisect()
	n1, n2 := c1.(*Frontier).Nodes(), c2.(*Frontier).Nodes()
	seen := map[int]bool{}
	for _, v := range append(n1, n2...) {
		if seen[v] {
			t.Fatalf("node %d in both frontiers", v)
		}
		seen[v] = true
	}
	if len(n1) == 0 || len(n2) == 0 {
		t.Fatal("empty frontier produced")
	}
}

func TestSingleLeafFrontierIndivisible(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(6))
	// Find a leaf and build its singleton frontier via repeated bisection
	// until an indivisible frontier appears.
	var q bisect.Problem = NewFrontier(tr)
	for q.CanBisect() {
		_, q = q.Bisect() // follow the light side down
	}
	if q.Weight() != 1 {
		t.Fatalf("indivisible frontier has weight %v", q.Weight())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bisect on exhausted frontier did not panic")
			}
		}()
		q.Bisect()
	}()
}

func TestLPTBalance(t *testing.T) {
	// For frontiers with many nodes, LPT should produce splits no worse
	// than the largest single subtree allows: the light side carries at
	// least (w − max_subtree)/2.
	f := NewFrontier(MustGenerate(DefaultGenConfig(7)))
	// Expand a few levels first to get a multi-node frontier.
	var q bisect.Problem = f
	for i := 0; i < 3 && q.CanBisect(); i++ {
		q, _ = q.Bisect()
	}
	fr := q.(*Frontier)
	if !fr.CanBisect() {
		t.Skip("frontier exhausted early")
	}
	c1, c2 := fr.Bisect()
	var maxSub int64
	for _, v := range fr.expanded() {
		if l := fr.tree.Nodes[v].Leaves; l > maxSub {
			maxSub = l
		}
	}
	floor := (fr.Weight() - float64(maxSub)) / 2
	if floor > 0 && c2.Weight() < floor-1e-9 {
		t.Fatalf("LPT light side %v below floor %v", c2.Weight(), floor)
	}
	_ = c1
}

func TestProbeAlpha(t *testing.T) {
	f := NewFrontier(MustGenerate(DefaultGenConfig(8)))
	a := ProbeAlpha(f, 128)
	if a <= 0 || a > 0.5 {
		t.Fatalf("probed α = %v", a)
	}
}

func TestTotalLeavesMatchesRootWeight(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(9))
	f := NewFrontier(tr)
	if f.Weight() != float64(tr.TotalLeaves()) {
		t.Fatalf("root frontier weight %v != total leaves %d", f.Weight(), tr.TotalLeaves())
	}
}
