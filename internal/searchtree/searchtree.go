// Package searchtree provides the backtrack-search / branch-and-bound
// substrate the paper cites as an application domain (ref [9], Karp &
// Zhang, "Randomized parallel algorithms for backtrack search and
// branch-and-bound computation").
//
// A synthetic search tree stands in for the implicit tree a solver would
// explore. A load-balancing problem is a *frontier*: a set of open search
// nodes whose subtrees remain to be explored. Its weight is the number of
// descendant leaves (the candidate evaluations left), which is exactly
// additive under any partition of the frontier. Bisecting a frontier
// splits it into two frontiers of near-equal estimated work using a
// longest-processing-time greedy partition; single-node frontiers are first
// expanded into their children, mirroring how work splitting actually
// proceeds in parallel backtrack search.
package searchtree

import (
	"fmt"
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// Node is one node of the synthetic search tree.
type Node struct {
	Parent   int
	Children []int
	Depth    int
	// Leaves is the number of leaves in the node's subtree (≥ 1).
	Leaves int64
}

// Tree is an immutable synthetic search tree.
type Tree struct {
	Nodes  []Node
	Root   int
	idSalt uint64
}

// GenConfig controls search-tree generation: a depth-capped Galton–Watson
// process with depth-decaying branching, which produces the irregular,
// heavy-tailed subtree sizes typical of pruned backtrack search.
type GenConfig struct {
	// MaxDepth caps the tree height. Must be ≥ 1.
	MaxDepth int
	// MaxBranch is the largest number of children a node may have (≥ 2).
	MaxBranch int
	// ExpandProb is the probability that a node has children at all,
	// before depth decay. Must be in (0, 1].
	ExpandProb float64
	// Seed drives generation deterministically.
	Seed uint64
}

// DefaultGenConfig returns a configuration yielding trees of a few
// thousand nodes with strong imbalance.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{MaxDepth: 18, MaxBranch: 4, ExpandProb: 0.9, Seed: seed}
}

// Generate builds a synthetic search tree. The root is always expanded so
// the tree never consists of a single node.
func Generate(cfg GenConfig) (*Tree, error) {
	if cfg.MaxDepth < 1 {
		return nil, fmt.Errorf("searchtree: MaxDepth %d must be ≥ 1", cfg.MaxDepth)
	}
	if cfg.MaxBranch < 2 {
		return nil, fmt.Errorf("searchtree: MaxBranch %d must be ≥ 2", cfg.MaxBranch)
	}
	if !(cfg.ExpandProb > 0) || cfg.ExpandProb > 1 {
		return nil, fmt.Errorf("searchtree: ExpandProb %v outside (0, 1]", cfg.ExpandProb)
	}
	t := &Tree{idSalt: xrand.Mix(cfg.Seed, 0x5ea)}
	rng := xrand.New(cfg.Seed)
	var build func(depth, parent int) int
	build = func(depth, parent int) int {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{Parent: parent, Depth: depth})
		expand := depth == 0 // force a branching root
		if !expand && depth < cfg.MaxDepth {
			p := cfg.ExpandProb * (1 - float64(depth)/float64(cfg.MaxDepth+1))
			expand = rng.Float64() < p
		}
		if expand {
			k := 2 + rng.Intn(cfg.MaxBranch-1)
			for c := 0; c < k; c++ {
				child := build(depth+1, id)
				t.Nodes[id].Children = append(t.Nodes[id].Children, child)
			}
		}
		return id
	}
	t.Root = build(0, -1)
	// Bottom-up leaf counts; preorder construction means children have
	// larger indices.
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		if len(t.Nodes[i].Children) == 0 {
			t.Nodes[i].Leaves = 1
			continue
		}
		var sum int64
		for _, c := range t.Nodes[i].Children {
			sum += t.Nodes[c].Leaves
		}
		t.Nodes[i].Leaves = sum
	}
	return t, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg GenConfig) *Tree {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// TotalLeaves returns the root's leaf count.
func (t *Tree) TotalLeaves() int64 { return t.Nodes[t.Root].Leaves }

// Frontier is a set of open search nodes, the unit of load distribution.
// Frontiers are immutable; identity derives from the (sorted) node set.
type Frontier struct {
	tree   *Tree
	nodes  []int // sorted, disjoint subtrees
	weight float64
	id     uint64
}

var _ bisect.Problem = (*Frontier)(nil)

// NewFrontier returns the root frontier {root}.
func NewFrontier(t *Tree) *Frontier {
	f := &Frontier{tree: t, nodes: []int{t.Root}}
	f.finish()
	return f
}

func (f *Frontier) finish() {
	var w int64
	for _, v := range f.nodes {
		w += f.tree.Nodes[v].Leaves
	}
	f.weight = float64(w)
	h := f.tree.idSalt
	for _, v := range f.nodes {
		h = xrand.Mix(h, uint64(v)+1)
	}
	f.id = h
}

// Weight returns the number of unexplored leaves under the frontier.
func (f *Frontier) Weight() float64 { return f.weight }

// ID returns the content-derived identifier.
func (f *Frontier) ID() uint64 { return f.id }

// Nodes returns a copy of the frontier's node set.
func (f *Frontier) Nodes() []int { return append([]int(nil), f.nodes...) }

// CanBisect reports whether the frontier covers at least two leaves.
func (f *Frontier) CanBisect() bool { return f.weight >= 2 }

// expanded returns the frontier's node set with single-node frontiers
// repeatedly expanded until at least two entries exist (or no expansion is
// possible, which CanBisect excludes).
func (f *Frontier) expanded() []int {
	nodes := f.nodes
	for len(nodes) == 1 {
		children := f.tree.Nodes[nodes[0]].Children
		if len(children) == 0 {
			return nodes
		}
		nodes = append([]int(nil), children...)
		sort.Ints(nodes)
	}
	return nodes
}

// Bisect splits the frontier into two frontiers of near-equal leaf counts
// via a deterministic longest-processing-time greedy assignment. The
// heavier frontier is returned first.
func (f *Frontier) Bisect() (bisect.Problem, bisect.Problem) {
	if !f.CanBisect() {
		panic("searchtree: Bisect on exhausted frontier")
	}
	nodes := f.expanded()
	// Sort by subtree size descending, node id ascending on ties.
	order := append([]int(nil), nodes...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		la, lb := f.tree.Nodes[a].Leaves, f.tree.Nodes[b].Leaves
		if la != lb {
			return la > lb
		}
		return a < b
	})
	var setA, setB []int
	var wA, wB int64
	for _, v := range order {
		l := f.tree.Nodes[v].Leaves
		// Assign to the lighter bin; ties to A. Both bins end non-empty:
		// the first node goes to A and the second necessarily to B.
		if wA <= wB {
			setA = append(setA, v)
			wA += l
		} else {
			setB = append(setB, v)
			wB += l
		}
	}
	sort.Ints(setA)
	sort.Ints(setB)
	a := &Frontier{tree: f.tree, nodes: setA}
	a.finish()
	b := &Frontier{tree: f.tree, nodes: setB}
	b.finish()
	if a.weight >= b.weight {
		return a, b
	}
	return b, a
}

// ProbeAlpha expands the frontier heaviest-first into up to maxParts pieces
// and returns the smallest split fraction observed, an empirical α estimate
// for declaring to PHF or BA-HF.
func ProbeAlpha(f *Frontier, maxParts int) float64 {
	if maxParts < 2 || !f.CanBisect() {
		return 0.5
	}
	worst := 0.5
	pool := []*Frontier{f}
	for len(pool) < maxParts {
		best := -1
		for i, q := range pool {
			if q.CanBisect() && (best == -1 || q.weight > pool[best].weight) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		q := pool[best]
		a, b := q.Bisect()
		if frac := b.Weight() / q.Weight(); frac < worst {
			worst = frac
		}
		pool[best] = a.(*Frontier)
		pool = append(pool, b.(*Frontier))
	}
	return worst
}
