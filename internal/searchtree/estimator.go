package searchtree

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// EstimateLeaves implements Knuth's classic random-probe estimator for the
// size of a backtrack-search tree, restricted to the subtree below node v:
// walk a uniformly random root-to-leaf path, multiplying the branching
// factors encountered; the product is an unbiased estimator of the
// subtree's leaf count. Averaging `probes` independent walks reduces the
// (often enormous) variance.
//
// In a real branch-and-bound system the exact subtree sizes this package
// stores in Node.Leaves are unknown; the estimator is what a production
// weight function would use. The test suite verifies unbiasedness against
// the exact counts, and the Noisy problem wrapper of internal/bisect
// models the downstream effect of such estimates on load balance.
func EstimateLeaves(t *Tree, v int, probes int, seed uint64) (float64, error) {
	if t == nil {
		return 0, fmt.Errorf("searchtree: nil tree")
	}
	if v < 0 || v >= len(t.Nodes) {
		return 0, fmt.Errorf("searchtree: node %d out of range", v)
	}
	if probes < 1 {
		return 0, fmt.Errorf("searchtree: probes %d must be ≥ 1", probes)
	}
	rng := xrand.New(xrand.Mix(seed, uint64(v)+0x517cc1b7))
	total := 0.0
	for p := 0; p < probes; p++ {
		// One random descent: product of branching factors along the path.
		weight := 1.0
		cur := v
		for {
			children := t.Nodes[cur].Children
			if len(children) == 0 {
				break
			}
			weight *= float64(len(children))
			cur = children[rng.Intn(len(children))]
		}
		total += weight
	}
	return total / float64(probes), nil
}

// EstimatedFrontier returns a frontier whose Weight is computed with the
// Knuth estimator instead of the exact leaf counts. It satisfies
// bisect.Problem; the exact weight remains reachable through Exact().
// Estimates are deterministic per (node set, seed), so all algorithms see
// the same estimates.
type EstimatedFrontier struct {
	inner  *Frontier
	probes int
	seed   uint64
	est    float64
}

// NewEstimatedFrontier wraps the tree's root frontier with estimated
// weights.
func NewEstimatedFrontier(t *Tree, probes int, seed uint64) (*EstimatedFrontier, error) {
	if t == nil {
		return nil, fmt.Errorf("searchtree: nil tree")
	}
	if probes < 1 {
		return nil, fmt.Errorf("searchtree: probes %d must be ≥ 1", probes)
	}
	return wrapEstimated(NewFrontier(t), probes, seed)
}

func wrapEstimated(f *Frontier, probes int, seed uint64) (*EstimatedFrontier, error) {
	e := &EstimatedFrontier{inner: f, probes: probes, seed: seed}
	sum := 0.0
	for _, v := range f.nodes {
		x, err := EstimateLeaves(f.tree, v, probes, seed)
		if err != nil {
			return nil, err
		}
		sum += x
	}
	if sum <= 0 {
		sum = 1 // an estimator returning 0 would break the weight contract
	}
	e.est = sum
	return e, nil
}

// Weight returns the estimated leaf count.
func (e *EstimatedFrontier) Weight() float64 { return e.est }

// Exact returns the true leaf count.
func (e *EstimatedFrontier) Exact() float64 { return e.inner.Weight() }

// CanBisect mirrors the underlying frontier.
func (e *EstimatedFrontier) CanBisect() bool { return e.inner.CanBisect() }

// ID mirrors the underlying frontier.
func (e *EstimatedFrontier) ID() uint64 { return e.inner.ID() }

// Bisect splits the underlying frontier (the LPT partition is computed on
// the *estimated* per-node weights the estimator produces deterministically)
// and re-estimates both halves.
func (e *EstimatedFrontier) Bisect() (bisect.Problem, bisect.Problem) {
	c1, c2 := e.inner.Bisect()
	a, err := wrapEstimated(c1.(*Frontier), e.probes, e.seed)
	if err != nil {
		panic(err) // estimation cannot fail once the root validated
	}
	b, err := wrapEstimated(c2.(*Frontier), e.probes, e.seed)
	if err != nil {
		panic(err)
	}
	if a.est >= b.est {
		return a, b
	}
	return b, a
}

var _ bisect.Problem = (*EstimatedFrontier)(nil)
