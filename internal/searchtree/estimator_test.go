package searchtree

import (
	"math"
	"testing"
)

func TestEstimateLeavesValidation(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(1))
	if _, err := EstimateLeaves(nil, 0, 10, 1); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := EstimateLeaves(tr, -1, 10, 1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := EstimateLeaves(tr, tr.Size(), 10, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := EstimateLeaves(tr, 0, 0, 1); err == nil {
		t.Fatal("zero probes accepted")
	}
}

func TestEstimateLeavesExactOnLeaf(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(2))
	leaf := -1
	for i, n := range tr.Nodes {
		if len(n.Children) == 0 {
			leaf = i
			break
		}
	}
	got, err := EstimateLeaves(tr, leaf, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("leaf estimate %v, want exactly 1", got)
	}
}

func TestEstimateLeavesUnbiased(t *testing.T) {
	// Knuth's estimator is exactly unbiased; with many probes the sample
	// mean must land near the true leaf count. Use a modest tree so the
	// estimator variance stays manageable.
	tr := MustGenerate(GenConfig{MaxDepth: 8, MaxBranch: 3, ExpandProb: 0.8, Seed: 3})
	exact := float64(tr.TotalLeaves())
	got, err := EstimateLeaves(tr, tr.Root, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-exact) / exact; rel > 0.1 {
		t.Fatalf("estimate %v vs exact %v (relative error %v)", got, exact, rel)
	}
}

func TestEstimateLeavesDeterministic(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(4))
	a, err := EstimateLeaves(tr, tr.Root, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateLeaves(tr, tr.Root, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("estimator not deterministic for fixed seed")
	}
}

func TestEstimatedFrontierContract(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(5))
	f, err := NewEstimatedFrontier(tr, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if f.Weight() <= 0 {
		t.Fatal("non-positive estimated weight")
	}
	if f.Exact() != float64(tr.TotalLeaves()) {
		t.Fatal("exact weight wrong")
	}
	if !f.CanBisect() {
		t.Fatal("root frontier indivisible")
	}
	a, b := f.Bisect()
	if a.Weight() < b.Weight() {
		t.Fatal("heavy-estimate child must come first")
	}
	// The exact weights of the halves still sum to the exact total (the
	// split is on the real frontier; only the estimates are fuzzy).
	ea, eb := a.(*EstimatedFrontier), b.(*EstimatedFrontier)
	if math.Abs(ea.Exact()+eb.Exact()-f.Exact()) > 1e-9 {
		t.Fatal("exact weights not conserved")
	}
}

func TestEstimatedFrontierValidation(t *testing.T) {
	if _, err := NewEstimatedFrontier(nil, 10, 1); err == nil {
		t.Fatal("nil tree accepted")
	}
	tr := MustGenerate(DefaultGenConfig(6))
	if _, err := NewEstimatedFrontier(tr, 0, 1); err == nil {
		t.Fatal("zero probes accepted")
	}
}

func TestEstimatedFrontierBalancesReasonably(t *testing.T) {
	// Balance with estimated weights, evaluate on exact weights: the
	// resulting true-load split should not be catastrophically worse than
	// balancing with exact weights. (This mirrors the robustness study.)
	tr := MustGenerate(GenConfig{MaxDepth: 12, MaxBranch: 4, ExpandProb: 0.85, Seed: 7})
	exactRoot := NewFrontier(tr)
	estRoot, err := NewEstimatedFrontier(tr, 500, 13)
	if err != nil {
		t.Fatal(err)
	}
	split := func(p interface {
		Weight() float64
		CanBisect() bool
	}) float64 {
		// one heaviest-first level: fraction of the light half in TRUE weight
		switch q := p.(type) {
		case *Frontier:
			_, b := q.Bisect()
			return b.(*Frontier).Weight() / q.Weight()
		case *EstimatedFrontier:
			_, b := q.Bisect()
			eb := b.(*EstimatedFrontier)
			return eb.Exact() / q.Exact()
		}
		return 0
	}
	exactFrac := split(exactRoot)
	estFrac := split(estRoot)
	// The split was balanced on *estimates*, so in true weights the
	// nominally-light half may even exceed one half; fold to the balance
	// measure min(f, 1−f).
	if estFrac > 0.5 {
		estFrac = 1 - estFrac
	}
	if estFrac <= 0 || estFrac > 0.5+1e-9 {
		t.Fatalf("estimated split true fraction %v out of range", estFrac)
	}
	// Not a tight theorem — just require the estimated split to stay in
	// the same ballpark as the exact one.
	if estFrac < exactFrac/4 {
		t.Fatalf("estimated split (%v) far worse than exact (%v)", estFrac, exactFrac)
	}
}
