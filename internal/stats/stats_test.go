package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.N() != 0 {
		t.Fatal("empty sample has observations")
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Variance()) {
		t.Fatal("empty sample mean/variance should be NaN")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty sample min/max sentinels wrong")
	}
}

func TestSampleKnownValues(t *testing.T) {
	s := NewSample(5)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleSingleValueVariance(t *testing.T) {
	s := NewSample(1)
	s.Add(3)
	if !math.IsNaN(s.Variance()) {
		t.Fatal("variance of a single observation should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Median(); !almost(got, 50.5, 1e-12) {
		t.Fatalf("median = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	s := NewSample(0)
	if !panics(func() { s.Quantile(0.5) }) {
		t.Fatal("empty quantile should panic")
	}
	s.Add(1)
	if !panics(func() { s.Quantile(-0.1) }) || !panics(func() { s.Quantile(1.5) }) {
		t.Fatal("out-of-range quantile should panic")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		n := 2 + rng.Intn(500)
		s := NewSample(n)
		var vals []float64
		for i := 0; i < n; i++ {
			v := rng.InRange(-100, 100)
			vals = append(vals, v)
			s.Add(v)
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(n)
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(n-1)
		return almost(s.Mean(), mean, 1e-9*(1+math.Abs(mean))) &&
			almost(s.Variance(), variance, 1e-7*(1+variance))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	s.Add(3)
	out := s.Summarize().String()
	if out == "" {
		t.Fatal("empty summary string")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	h.Add(10) // boundary clamps into last bin
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 11 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[9] != 2 {
		t.Fatalf("last bin = %d, want 2", h.Counts[9])
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	if h.Mode() != 1 {
		t.Fatalf("mode = %d", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	if !panics(func() { NewHistogram(0, 1, 0) }) {
		t.Fatal("zero bins should panic")
	}
	if !panics(func() { NewHistogram(1, 1, 3) }) {
		t.Fatal("empty interval should panic")
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{2, 8}); !almost(got, 4, 1e-12) {
		t.Fatalf("gm = %v", got)
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("gm of empty should be NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Fatal("gm with negative should be NaN")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(2, 1.8); !almost(got, -0.1, 1e-12) {
		t.Fatalf("rel change = %v", got)
	}
	if !math.IsNaN(RelativeChange(0, 1)) {
		t.Fatal("zero base should be NaN")
	}
}
