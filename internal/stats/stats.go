// Package stats implements the summary statistics used by the simulation
// study in Section 4 of the paper: sample mean, sample variance, minimum,
// maximum, quantiles and simple histograms over observed load-balance ratios.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations in a numerically stable way (Welford's
// online algorithm) while also retaining the raw values for quantiles.
type Sample struct {
	values []float64
	mean   float64
	m2     float64
	min    float64
	max    float64
}

// NewSample returns an empty sample. An optional capacity hint avoids
// re-allocation for experiments with a known trial count.
func NewSample(capacity int) *Sample {
	if capacity < 0 {
		capacity = 0
	}
	return &Sample{
		values: make([]float64, 0, capacity),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.values = append(s.values, x)
	delta := x - s.mean
	s.mean += delta / float64(len(s.values))
	s.m2 += delta * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the number of observations recorded so far.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the unbiased sample variance (divisor n−1), or NaN when
// fewer than two observations exist.
func (s *Sample) Variance() float64 {
	if len(s.values) < 2 {
		return math.NaN()
	}
	return s.m2 / float64(len(s.values)-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or +Inf for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or −Inf for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It panics on an empty sample or a q outside [0,1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile argument outside [0,1]")
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Values returns a copy of the raw observations in insertion order.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.values...) }

// Summary is an immutable snapshot of a sample's headline statistics, in the
// shape the paper's Table 1 reports them (min / avg / max plus variance).
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	Min      float64
	Max      float64
}

// Summarize captures the sample's current statistics.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:        s.N(),
		Mean:     s.Mean(),
		Variance: s.Variance(),
		Min:      s.Min(),
		Max:      s.Max(),
	}
}

// String renders the summary compactly for logs and CLI output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4f avg=%.4f max=%.4f var=%.3g",
		s.N, s.Min, s.Mean, s.Max, s.Variance)
}

// Histogram is a fixed-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics for a non-positive bin count or an empty interval.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic("stats: histogram interval must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation, clamping boundary values into the last bin.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i == len(h.Counts) { // x == Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the fullest bin (first one on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// GeometricMean returns the geometric mean of strictly positive values.
// It returns NaN if the slice is empty or contains a non-positive value.
// The experiment harness uses it to aggregate ratios across processor counts.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// RelativeChange returns (b−a)/a, the relative improvement the paper quotes
// for the κ-study ("approximately 10% when κ increased from 1.0 to 2.0").
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / a
}
