package fem1d

import (
	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// Span is a contiguous element range [Lo, Hi) of a mesh, the unit of load
// the solver distributes. Its weight is the exact time-integration work of
// its elements; bisection cuts at the element boundary closest to half the
// span's work (computed on exact prefix sums, so weights are exactly
// additive). Identity derives from (mesh, Lo, Hi), keeping the
// determinism contract of bisect.Problem.
type Span struct {
	mesh   *Mesh
	lo, hi int
	salt   uint64
}

var _ bisect.Problem = (*Span)(nil)

// RootSpan covers the whole mesh.
func RootSpan(m *Mesh, salt uint64) *Span {
	return &Span{mesh: m, lo: 0, hi: m.Elements(), salt: xrand.Mix(salt, 0xfe1d)}
}

// Bounds returns the element range [lo, hi).
func (s *Span) Bounds() (lo, hi int) { return s.lo, s.hi }

// Slice returns the sub-span [lo, hi) of the same mesh. It panics if the
// range escapes the span — slicing is for building reference partitions in
// examples and tests, not part of the bisection protocol.
func (s *Span) Slice(lo, hi int) *Span {
	if lo < s.lo || hi > s.hi || lo >= hi {
		panic("fem1d: Slice range escapes span")
	}
	return &Span{mesh: s.mesh, lo: lo, hi: hi, salt: s.salt}
}

// Mesh returns the underlying mesh.
func (s *Span) Mesh() *Mesh { return s.mesh }

// Weight returns the exact work of the span.
func (s *Span) Weight() float64 { return s.mesh.SpanWork(s.lo, s.hi) }

// CanBisect reports whether the span holds at least two elements.
func (s *Span) CanBisect() bool { return s.hi-s.lo >= 2 }

// ID returns the content-derived identifier.
func (s *Span) ID() uint64 {
	return xrand.Mix(xrand.Mix(s.salt, uint64(s.lo)+1), uint64(s.hi)+2)
}

// Bisect cuts at the element boundary whose work prefix is closest to half
// the span's work (deterministic; heavier side first).
func (s *Span) Bisect() (bisect.Problem, bisect.Problem) {
	if !s.CanBisect() {
		panic("fem1d: Bisect on single-element span")
	}
	target := s.mesh.workPrefix[s.lo] + s.Weight()/2
	// Binary search the boundary nearest the work midpoint.
	lo, hi := s.lo+1, s.hi-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.mesh.workPrefix[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cut := lo
	if prev := lo - 1; prev > s.lo {
		dPrev := target - s.mesh.workPrefix[prev]
		dCur := s.mesh.workPrefix[cut] - target
		if dPrev < 0 {
			dPrev = -dPrev
		}
		if dCur < 0 {
			dCur = -dCur
		}
		if dPrev < dCur {
			cut = prev
		}
	}
	a := &Span{mesh: s.mesh, lo: s.lo, hi: cut, salt: s.salt}
	b := &Span{mesh: s.mesh, lo: cut, hi: s.hi, salt: s.salt}
	if a.Weight() >= b.Weight() {
		return a, b
	}
	return b, a
}

// Integrate performs the actual explicit-integration work of the span: for
// every element, ⌈work⌉ arithmetic sub-steps on a local state. It returns
// the final state so the compiler cannot elide the loop; examples use it
// to demonstrate real wall-clock balance of a partition.
func (s *Span) Integrate() float64 {
	state := 1.0
	for e := s.lo; e < s.hi; e++ {
		steps := int(s.mesh.ElementWork(e)) + 1
		h := s.mesh.H(e)
		for k := 0; k < steps; k++ {
			state += h * (1 - state*0.5)
		}
	}
	return state
}

// WorkUnits returns the exact number of integration sub-steps Integrate
// performs for the span, the deterministic work measure the examples use
// to report balance independent of machine speed.
func (s *Span) WorkUnits() int64 {
	var total int64
	for e := s.lo; e < s.hi; e++ {
		total += int64(s.mesh.ElementWork(e)) + 1
	}
	return total
}
