package fem1d

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

func uniform(n int) *Mesh {
	x := make([]float64, n+1)
	for i := range x {
		x[i] = float64(i) / float64(n)
	}
	m, err := NewMesh(x)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh([]float64{0}); err == nil {
		t.Fatal("single node accepted")
	}
	if _, err := NewMesh([]float64{0, 0.5, 0.5, 1}); err == nil {
		t.Fatal("non-increasing nodes accepted")
	}
	if _, err := NewMesh([]float64{0.1, 0.5, 1}); err == nil {
		t.Fatal("wrong left boundary accepted")
	}
	if _, err := NewMesh([]float64{0, 0.5, 0.9}); err == nil {
		t.Fatal("wrong right boundary accepted")
	}
}

func TestGradedMeshValidation(t *testing.T) {
	if _, err := GradedMesh(0, 0.5, 0.9); err == nil {
		t.Fatal("zero elements accepted")
	}
	if _, err := GradedMesh(10, -1, 0.9); err == nil {
		t.Fatal("singularity outside accepted")
	}
	if _, err := GradedMesh(10, 0.5, 0); err == nil {
		t.Fatal("grading 0 accepted")
	}
	if _, err := GradedMesh(10, 0.5, 1.5); err == nil {
		t.Fatal("grading > 1 accepted")
	}
}

func TestGradedMeshRefinesTowardSingularity(t *testing.T) {
	m, err := GradedMesh(200, 0.25, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// The smallest element must sit near the singularity; elements far
	// away must be much wider.
	smallest, smallestAt := math.Inf(1), -1
	for e := 0; e < m.Elements(); e++ {
		if h := m.H(e); h < smallest {
			smallest, smallestAt = h, e
		}
	}
	centre := (m.X[smallestAt] + m.X[smallestAt+1]) / 2
	if math.Abs(centre-0.25) > 0.1 {
		t.Fatalf("smallest element at %v, singularity at 0.25", centre)
	}
	far := m.H(m.Elements() - 1)
	if far < 5*smallest {
		t.Fatalf("grading too weak: far width %v vs smallest %v", far, smallest)
	}
}

func TestGradedMeshUniformWhenGradingOne(t *testing.T) {
	m, err := GradedMesh(64, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < m.Elements(); e++ {
		if math.Abs(m.H(e)-1.0/64) > 1e-12 {
			t.Fatalf("element %d width %v not uniform", e, m.H(e))
		}
	}
}

func TestSolveThomasAgainstDenseElimination(t *testing.T) {
	// Small SPD tridiagonal system solved both ways.
	diag := []float64{4, 4, 4, 4}
	off := []float64{-1, -1, -1}
	rhs := []float64{1, 2, 3, 4}
	u, err := SolveThomas(diag, off, rhs)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual directly: A·u = rhs.
	for i := range diag {
		r := diag[i] * u[i]
		if i > 0 {
			r += off[i-1] * u[i-1]
		}
		if i < len(off) {
			r += off[i] * u[i+1]
		}
		if math.Abs(r-rhs[i]) > 1e-12 {
			t.Fatalf("residual at %d: %v", i, r-rhs[i])
		}
	}
}

func TestSolveThomasEdgeCases(t *testing.T) {
	if u, err := SolveThomas(nil, nil, nil); err != nil || u != nil {
		t.Fatal("empty system mishandled")
	}
	u, err := SolveThomas([]float64{2}, nil, []float64{4})
	if err != nil || math.Abs(u[0]-2) > 1e-15 {
		t.Fatalf("1x1 system: %v, %v", u, err)
	}
	if _, err := SolveThomas([]float64{0}, nil, []float64{1}); err == nil {
		t.Fatal("zero pivot accepted")
	}
}

func TestPoissonManufacturedSolution(t *testing.T) {
	// −u″ = π² sin(πx) has exact solution u = sin(πx).
	f := func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) }
	exact := func(x float64) float64 { return math.Sin(math.Pi * x) }
	m := uniform(128)
	u, err := Solve(m, f)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxNodalError(m, u, exact); e > 2e-4 {
		t.Fatalf("nodal error %v too large for 128 elements", e)
	}
}

func TestPoissonConvergenceOrder(t *testing.T) {
	// Halving h must reduce the error by ≈ 4 (second-order convergence).
	f := func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) }
	exact := func(x float64) float64 { return math.Sin(math.Pi * x) }
	var errs []float64
	for _, n := range []int{32, 64, 128} {
		m := uniform(n)
		u, err := Solve(m, f)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, MaxNodalError(m, u, exact))
	}
	for i := 1; i < len(errs); i++ {
		rate := errs[i-1] / errs[i]
		if rate < 3.5 || rate > 4.5 {
			t.Fatalf("convergence rate %v at level %d, want ≈ 4", rate, i)
		}
	}
}

func TestPoissonOnGradedMesh(t *testing.T) {
	f := func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) }
	exact := func(x float64) float64 { return math.Sin(math.Pi * x) }
	m, err := GradedMesh(512, 0.25, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Solve(m, f)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxNodalError(m, u, exact); e > 1e-3 {
		t.Fatalf("graded-mesh error %v too large", e)
	}
}

func TestSpanWeightAdditivity(t *testing.T) {
	m, err := GradedMesh(1000, 0.3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	s := RootSpan(m, 1)
	var walk func(q bisect.Problem, depth int)
	walk = func(q bisect.Problem, depth int) {
		if depth == 0 || !q.CanBisect() {
			return
		}
		c1, c2 := q.Bisect()
		if c1.Weight()+c2.Weight() != q.Weight() {
			t.Fatalf("span weights not exactly additive: %v + %v != %v",
				c1.Weight(), c2.Weight(), q.Weight())
		}
		if c1.Weight() < c2.Weight() {
			t.Fatal("heavy span must come first")
		}
		walk(c1, depth-1)
		walk(c2, depth-1)
	}
	walk(s, 8)
}

func TestSpanBisectCutsNearWorkMedian(t *testing.T) {
	m, err := GradedMesh(4000, 0.2, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	s := RootSpan(m, 2)
	_, light := s.Bisect()
	frac := light.Weight() / s.Weight()
	if frac < 0.45 {
		t.Fatalf("work-median cut produced fraction %v; prefix resolution should do better", frac)
	}
}

func TestSpanIndivisible(t *testing.T) {
	m := uniform(4)
	s := &Span{mesh: m, lo: 1, hi: 2}
	if s.CanBisect() {
		t.Fatal("single-element span claims divisibility")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bisect on single element did not panic")
		}
	}()
	s.Bisect()
}

func TestSpanThroughLoadBalancer(t *testing.T) {
	m, err := GradedMesh(5000, 0.3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 16, 64} {
		res, err := core.HF(RootSpan(m, 3), n, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckPartition(1e-9); err != nil {
			t.Fatal(err)
		}
		// The spans must tile the element range exactly.
		covered := make([]bool, m.Elements())
		for _, pt := range res.Parts {
			lo, hi := pt.Problem.(*Span).Bounds()
			for e := lo; e < hi; e++ {
				if covered[e] {
					t.Fatalf("element %d in two spans", e)
				}
				covered[e] = true
			}
		}
		for e, c := range covered {
			if !c {
				t.Fatalf("element %d uncovered", e)
			}
		}
	}
}

func TestSpanPHFIdentity(t *testing.T) {
	m, err := GradedMesh(3000, 0.25, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.2 // the work-median cut keeps splits near 1/2
	hf, err := core.HF(RootSpan(m, 5), 32, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	phf, err := core.PHF(RootSpan(m, 5), 32, alpha, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !core.SamePartition(hf, &phf.Result) {
		t.Fatal("PHF != HF on FEM spans")
	}
}

func TestIntegrateDoesWork(t *testing.T) {
	m, err := GradedMesh(200, 0.3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	s := RootSpan(m, 7)
	if v := s.Integrate(); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("integration diverged: %v", v)
	}
}
