// Package fem1d is a small but real finite-element solver used to ground
// the load-balancing framework in the application the paper's introduction
// motivates: "a parallel solver for systems of linear equations resulting
// from the discretization of partial differential equations".
//
// It solves the 1-D Poisson problem
//
//	−u″(x) = f(x) on (0, 1),   u(0) = u(1) = 0
//
// with piecewise-linear elements on an adaptively graded mesh, assembling
// the standard tridiagonal stiffness system and solving it with the Thomas
// algorithm. The package exposes a Span problem adapter whose weight is the
// mesh-dependent work of explicit time integration over an element range
// (one unit per element per sub-step, sub-steps ∝ 1/h by the CFL
// condition), giving the heavily imbalanced, bisectable workloads adaptive
// meshes produce in practice.
package fem1d

import (
	"fmt"
	"math"
)

// Mesh is a strictly increasing partition 0 = X[0] < … < X[M] = 1 of the
// unit interval into M elements.
type Mesh struct {
	X []float64
	// workPrefix[i] is the exact total work of elements [0, i); see
	// ElementWork. Exact prefix sums make Span weights exactly additive.
	workPrefix []float64
}

// NewMesh validates the node vector and precomputes work prefixes.
func NewMesh(x []float64) (*Mesh, error) {
	if len(x) < 2 {
		return nil, fmt.Errorf("fem1d: mesh needs at least one element")
	}
	if x[0] != 0 || x[len(x)-1] != 1 {
		return nil, fmt.Errorf("fem1d: mesh must span [0, 1], got [%v, %v]", x[0], x[len(x)-1])
	}
	for i := 1; i < len(x); i++ {
		if !(x[i] > x[i-1]) {
			return nil, fmt.Errorf("fem1d: mesh nodes not strictly increasing at %d", i)
		}
	}
	m := &Mesh{X: append([]float64(nil), x...)}
	m.workPrefix = make([]float64, m.Elements()+1)
	for e := 0; e < m.Elements(); e++ {
		m.workPrefix[e+1] = m.workPrefix[e] + m.ElementWork(e)
	}
	return m, nil
}

// Elements returns the element count M.
func (m *Mesh) Elements() int { return len(m.X) - 1 }

// H returns the width of element e.
func (m *Mesh) H(e int) float64 { return m.X[e+1] - m.X[e] }

// ElementWork models the computational load of element e: explicit time
// integration to a fixed horizon needs ⌈T/Δt⌉ sub-steps with Δt ∝ h, so
// the per-element work scales as 1/h. The constant is normalised so a
// uniform mesh of M elements has total work ≈ M².
func (m *Mesh) ElementWork(e int) float64 { return 1 / m.H(e) }

// TotalWork returns the work sum over all elements.
func (m *Mesh) TotalWork() float64 { return m.workPrefix[m.Elements()] }

// SpanWork returns the exact work of elements [lo, hi).
func (m *Mesh) SpanWork(lo, hi int) float64 { return m.workPrefix[hi] - m.workPrefix[lo] }

// GradedMesh builds a mesh of n elements geometrically refined toward the
// point s ∈ [0, 1]: element widths shrink by the factor grading ∈ (0, 1]
// per step toward s. grading = 1 yields the uniform mesh.
func GradedMesh(n int, s, grading float64) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("fem1d: need at least one element")
	}
	if s < 0 || s > 1 || math.IsNaN(s) {
		return nil, fmt.Errorf("fem1d: singularity %v outside [0, 1]", s)
	}
	if !(grading > 0) || grading > 1 {
		return nil, fmt.Errorf("fem1d: grading %v outside (0, 1]", grading)
	}
	// Power-law grading toward s: split the domain at s and, in each half,
	// place nodes by the classic mapping t ↦ t^β measured from the far
	// boundary, which makes element widths shrink geometrically as they
	// approach s. β = 1/grading² gives β = 1 (uniform) at grading = 1 and
	// increasingly aggressive clustering as grading falls.
	beta := 1 / (grading * grading)
	if n == 1 {
		return NewMesh([]float64{0, 1})
	}
	// Element counts per half: proportional to the half lengths, with a
	// degenerate half (s = 0 or s = 1) receiving zero elements.
	nl := int(math.Round(float64(n) * s))
	switch {
	case s <= 0:
		nl = 0
	case s >= 1:
		nl = n
	default:
		if nl == 0 {
			nl = 1
		}
		if nl == n {
			nl = n - 1
		}
	}
	nr := n - nl
	x := make([]float64, 0, n+1)
	x = append(x, 0)
	for i := 1; i <= nl; i++ {
		t := float64(i) / float64(nl)
		x = append(x, s*(1-math.Pow(1-t, beta)))
	}
	for j := 1; j <= nr; j++ {
		t := float64(j) / float64(nr)
		x = append(x, s+(1-s)*math.Pow(t, beta))
	}
	x[n] = 1
	return NewMesh(x)
}

// Assemble builds the linear-element stiffness system for −u″ = f with
// homogeneous Dirichlet conditions: unknowns are the interior nodes
// X[1..M−1]; diag and off are the tridiagonal coefficients (off[i] couples
// unknowns i and i+1); rhs uses the trapezoid-exact load ∫ f·φ_i via the
// midpoint rule on each element.
func Assemble(m *Mesh, f func(float64) float64) (diag, off, rhs []float64) {
	unknowns := m.Elements() - 1
	diag = make([]float64, unknowns)
	off = make([]float64, maxInt(unknowns-1, 0))
	rhs = make([]float64, unknowns)
	for e := 0; e < m.Elements(); e++ {
		h := m.H(e)
		k := 1 / h
		// Element e couples nodes e and e+1 (global), i.e. unknowns e−1, e.
		left, right := e-1, e
		if left >= 0 {
			diag[left] += k
		}
		if right < unknowns {
			diag[right] += k
		}
		if left >= 0 && right < unknowns {
			off[left] -= k
		}
		// Load: midpoint rule, hat functions each take half the element
		// mass.
		fm := f((m.X[e] + m.X[e+1]) / 2)
		if left >= 0 {
			rhs[left] += fm * h / 2
		}
		if right < unknowns {
			rhs[right] += fm * h / 2
		}
	}
	return diag, off, rhs
}

// SolveThomas solves the symmetric tridiagonal system in place-free form
// and returns the solution at the interior nodes. It panics on dimension
// mismatch (programmer error) and returns an error if elimination hits a
// vanishing pivot (impossible for the SPD stiffness matrix unless the
// inputs were corrupted).
func SolveThomas(diag, off, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(rhs) != n || len(off) != maxInt(n-1, 0) {
		panic("fem1d: tridiagonal dimensions inconsistent")
	}
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if diag[0] == 0 {
		return nil, fmt.Errorf("fem1d: zero pivot at 0")
	}
	if n > 1 {
		cp[0] = off[0] / diag[0]
	}
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		denom := diag[i] - off[i-1]*cp[i-1]
		if denom == 0 {
			return nil, fmt.Errorf("fem1d: zero pivot at %d", i)
		}
		if i < n-1 {
			cp[i] = off[i] / denom
		}
		dp[i] = (rhs[i] - off[i-1]*dp[i-1]) / denom
	}
	u := make([]float64, n)
	u[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		u[i] = dp[i] - cp[i]*u[i+1]
	}
	return u, nil
}

// Solve assembles and solves the Poisson problem on the mesh, returning
// the solution values at ALL mesh nodes (boundary zeros included).
func Solve(m *Mesh, f func(float64) float64) ([]float64, error) {
	diag, off, rhs := Assemble(m, f)
	inner, err := SolveThomas(diag, off, rhs)
	if err != nil {
		return nil, err
	}
	u := make([]float64, len(m.X))
	copy(u[1:], inner)
	return u, nil
}

// MaxNodalError returns max_i |u_i − exact(X_i)|.
func MaxNodalError(m *Mesh, u []float64, exact func(float64) float64) float64 {
	worst := 0.0
	for i, x := range m.X {
		if d := math.Abs(u[i] - exact(x)); d > worst {
			worst = d
		}
	}
	return worst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
