package verify

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/femtree"
	"bisectlb/internal/graph"
	"bisectlb/internal/spatial"
	"bisectlb/internal/xrand"
)

// Family selects the problem substrate of a generated instance.
type Family int

const (
	// FamilyUniform is the paper's stochastic model: α̂ ~ U[α, Hi] per
	// bisection, continuous weights (tie-free almost surely).
	FamilyUniform Family = iota
	// FamilyFixed is the adversarial extreme: every bisection splits
	// exactly (1−α, α). Weights collide pervasively, so tie-sensitive
	// identities (PHF ≡ HF) are not checked on it.
	FamilyFixed
	// FamilyList is the concrete list-bisection model with pivot guard α.
	FamilyList
	// FamilyFEM is the adaptive FE-tree substrate; it carries no a-priori
	// α (probe with femtree.ProbeAlpha) and has no flat kernel.
	FamilyFEM
	// FamilyGraph is the real-instance multilevel graph/hypergraph
	// bisector (internal/graph). Its α is emergent: the balance contract
	// guarantees α ≥ (1−ε)/2 per performed bisection, and guarantees are
	// checked against the realized α̂ of the run (r_α̂).
	FamilyGraph
	// FamilySpatial is the real-instance rectangular load-matrix bisector
	// (internal/spatial); cuts meet the declared α, guarantees are
	// checked against the realized α̂ like FamilyGraph.
	FamilySpatial
	numFamilies
)

// AllFamilies lists every generatable family.
var AllFamilies = []Family{FamilyUniform, FamilyFixed, FamilyList, FamilyFEM, FamilyGraph, FamilySpatial}

// Measured reports whether the family's bisector quality is emergent —
// guarantee checks use realized-α̂ bounds instead of the class bound.
func (f Family) Measured() bool {
	return f == FamilyFEM || f == FamilyGraph || f == FamilySpatial
}

func (f Family) String() string {
	switch f {
	case FamilyUniform:
		return "uniform"
	case FamilyFixed:
		return "fixed"
	case FamilyList:
		return "list"
	case FamilyFEM:
		return "fem"
	case FamilyGraph:
		return "graph"
	case FamilySpatial:
		return "spatial"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// Instance is one generated problem instance plus the algorithm
// parameters to run it with. Every field is plain data: an Instance is
// its own reproduction recipe (String prints it), and Problem/Flat
// materialise the substrate deterministically from it.
type Instance struct {
	Family Family
	// Weight is the root weight (uniform/fixed; lists weigh their length).
	Weight float64
	// Alpha is the declared class parameter: the interval's lower bound
	// for uniform, the exact split for fixed, the pivot guard for list,
	// the balance-contract floor (1−ε)/2 for graph, the cut-acceptance
	// threshold for spatial. Zero for FEM (no a-priori guarantee; probe
	// instead).
	Alpha float64
	// Hi is the α̂ interval's upper bound (uniform only).
	Hi float64
	// Elems is the list length (list only).
	Elems int
	// N is the processor count to partition for.
	N int
	// Kappa is BA-HF's threshold parameter.
	Kappa float64
	// Seed pins the instance for the seeded families.
	Seed uint64
}

// String renders the instance as a one-line reproduction recipe.
func (in Instance) String() string {
	switch in.Family {
	case FamilyUniform:
		return fmt.Sprintf("family=uniform w=%g alpha=%g hi=%g n=%d kappa=%g seed=%d",
			in.Weight, in.Alpha, in.Hi, in.N, in.Kappa, in.Seed)
	case FamilyFixed:
		return fmt.Sprintf("family=fixed w=%g alpha=%g n=%d kappa=%g", in.Weight, in.Alpha, in.N, in.Kappa)
	case FamilyList:
		return fmt.Sprintf("family=list elems=%d alpha=%g n=%d kappa=%g seed=%d",
			in.Elems, in.Alpha, in.N, in.Kappa, in.Seed)
	case FamilyFEM:
		return fmt.Sprintf("family=fem n=%d kappa=%g seed=%d", in.N, in.Kappa, in.Seed)
	case FamilyGraph:
		return fmt.Sprintf("family=graph alpha=%g n=%d kappa=%g seed=%d", in.Alpha, in.N, in.Kappa, in.Seed)
	case FamilySpatial:
		return fmt.Sprintf("family=spatial alpha=%g n=%d kappa=%g seed=%d", in.Alpha, in.N, in.Kappa, in.Seed)
	default:
		return fmt.Sprintf("family=%v", in.Family)
	}
}

// Problem materialises the instance's root problem.
func (in Instance) Problem() (bisect.Problem, error) {
	switch in.Family {
	case FamilyUniform:
		return bisect.NewSynthetic(in.Weight, in.Alpha, in.Hi, in.Seed)
	case FamilyFixed:
		return bisect.NewFixed(in.Weight, in.Alpha)
	case FamilyList:
		return bisect.NewList(in.Elems, in.Alpha, in.Seed)
	case FamilyFEM:
		return femtree.NewRegion(femtree.MustGenerate(femtree.DefaultGenConfig(in.Seed))), nil
	case FamilyGraph:
		h, err := GraphInstance(in.Seed)
		if err != nil {
			return nil, err
		}
		return graph.New(h, graph.Config{Seed: in.Seed | 1})
	case FamilySpatial:
		m, err := SpatialInstance(in.Seed)
		if err != nil {
			return nil, err
		}
		return spatial.New(m, spatial.Config{Seed: in.Seed | 1})
	default:
		return nil, fmt.Errorf("verify: unknown family %v", in.Family)
	}
}

// GraphInstance derives a deterministic real graph/hypergraph instance
// from a seed, rotating through the three generator kinds (mesh, chorded
// ring, random hypergraph). Sizes stay small enough for sweep volume but
// large enough that HF at the sweep's processor counts rarely runs out
// of divisible subproblems.
func GraphInstance(seed uint64) (*graph.Hypergraph, error) {
	r := xrand.New(xrand.Mix(seed, 0x6EA9))
	switch r.Intn(3) {
	case 0:
		return graph.GridGraph(8+r.Intn(13), 8+r.Intn(13), 1+int64(r.Intn(4)), seed)
	case 1:
		return graph.RingGraph(64+r.Intn(192), 16+r.Intn(32), 1+int64(r.Intn(4)), seed)
	default:
		return graph.RandomHypergraph(64+r.Intn(128), 48+r.Intn(96), 3+r.Intn(4), 1+int64(r.Intn(4)), seed)
	}
}

// SpatialInstance derives a deterministic load-matrix instance from a
// seed, rotating through the three generator kinds (uniform, blobs,
// ridge).
func SpatialInstance(seed uint64) (*spatial.Matrix, error) {
	r := xrand.New(xrand.Mix(seed, 0x5A71))
	rows, cols := 10+r.Intn(28), 10+r.Intn(28)
	switch r.Intn(3) {
	case 0:
		return spatial.UniformMatrix(rows, cols, 1+int64(r.Intn(16)), seed)
	case 1:
		return spatial.BlobMatrix(rows, cols, 1+r.Intn(4), 100+int64(r.Intn(4000)), seed)
	default:
		return spatial.RidgeMatrix(rows, cols, 50+int64(r.Intn(400)), seed)
	}
}

// Flat materialises the instance's flat root and kernel for the
// allocation-free planner path. ok is false for substrates without a
// kernel (FEM).
func (in Instance) Flat() (root bisect.FlatNode, k bisect.Kernel, ok bool) {
	switch in.Family {
	case FamilyUniform:
		return bisect.SyntheticFlatRoot(in.Weight, in.Seed), bisect.SyntheticKernel{Lo: in.Alpha, Hi: in.Hi}, true
	case FamilyFixed:
		return bisect.FixedFlatRoot(in.Weight), bisect.FixedKernel{Alpha: in.Alpha}, true
	case FamilyList:
		return bisect.ListFlatRoot(in.Elems, in.Alpha, in.Seed), bisect.ListKernel{Alpha: in.Alpha}, true
	default:
		return bisect.FlatNode{}, nil, false
	}
}

// Shrink returns strictly simpler candidate instances, ordered most
// aggressive first. The sweep re-checks each candidate and recurses on
// the first that still fails, converging on a minimal failing instance.
// Simpler means: fewer processors, shorter lists, unit weight, larger α
// (shallower trees), default κ.
func (in Instance) Shrink() []Instance {
	var out []Instance
	add := func(c Instance) {
		if c != in {
			out = append(out, c)
		}
	}
	if in.N > 1 {
		c := in
		c.N = in.N / 2
		add(c)
		c = in
		c.N = in.N - 1
		add(c)
	}
	if in.Family == FamilyList && in.Elems > 8*in.N {
		c := in
		c.Elems = in.Elems / 2
		if c.Elems < 8*c.N {
			c.Elems = 8 * c.N
		}
		add(c)
	}
	if in.Weight != 1 && (in.Family == FamilyUniform || in.Family == FamilyFixed) {
		c := in
		c.Weight = 1
		add(c)
	}
	if in.Kappa != 1 {
		c := in
		c.Kappa = 1
		add(c)
	}
	return out
}

// Gen draws random instances from a seeded stream. Two Gens built from
// the same seed produce the same sequence; every instance is itself
// reproducible from its printed fields alone.
type Gen struct {
	rng *xrand.Source
	// MaxN caps generated processor counts (default 2048).
	MaxN int
	// Families restricts generation (default AllFamilies).
	Families []Family
}

// NewGen returns a generator seeded with seed.
func NewGen(seed uint64) *Gen {
	return &Gen{rng: xrand.New(xrand.Mix(seed, 0x6E59))}
}

func (g *Gen) maxN() int {
	if g.MaxN > 0 {
		return g.MaxN
	}
	return 2048
}

func (g *Gen) families() []Family {
	if len(g.Families) > 0 {
		return g.Families
	}
	return AllFamilies
}

// Instance draws one random instance. Parameter ranges keep every
// generated instance inside the regime where the paper's guarantees
// apply and stay numerically sound:
//
//   - uniform: α ∈ [0.05, 0.45], hi ≥ α + 0.02 (continuous, tie-free),
//     weight ∈ [1, 10⁶);
//   - fixed: α ∈ [0.05, 0.5];
//   - list: α ∈ [0.05, 1/3] and elems ≥ 8·N, so every list of length ≥ 2
//     stays divisible and indivisible unit leaves stay far below the
//     ideal share (the guarantee presumes bisectable subproblems);
//   - fem: default generated FE-trees with N ≤ 32, small enough that
//     partitions do not run out of divisible regions;
//   - graph: real multilevel-bisector instances (GraphInstance) with
//     N ≤ 8 and class α = (1−ε)/2 from the balance contract;
//   - spatial: real load-matrix instances (SpatialInstance) with N ≤ 12
//     and class α = the cut-acceptance threshold.
func (g *Gen) Instance() Instance {
	fams := g.families()
	f := fams[g.rng.Intn(len(fams))]
	in := Instance{
		Family: f,
		Seed:   g.rng.Uint64(),
		Kappa:  0.25 + g.rng.Float64()*3.75,
	}
	switch f {
	case FamilyUniform:
		in.Alpha = g.rng.InRange(0.05, 0.45)
		in.Hi = g.rng.InRange(in.Alpha+0.02, 0.5)
		in.Weight = g.rng.InRange(1, 1e6)
		in.N = 1 + g.rng.Intn(g.maxN())
	case FamilyFixed:
		in.Alpha = g.rng.InRange(0.05, 0.5)
		in.Weight = g.rng.InRange(1, 1e6)
		in.N = 1 + g.rng.Intn(g.maxN())
	case FamilyList:
		in.Alpha = g.rng.InRange(0.05, 1.0/3)
		n := g.maxN()
		if n > 256 {
			n = 256
		}
		in.N = 1 + g.rng.Intn(n)
		in.Elems = 8*in.N + g.rng.Intn(64*in.N)
		in.Weight = float64(in.Elems)
	case FamilyFEM:
		in.N = 1 + g.rng.Intn(32)
	case FamilyGraph:
		// Class α from the balance contract: every performed bisection has
		// α̂ ≥ (1−ε)/2, exactly (integer caps only tighten the band).
		in.Alpha = (1 - graph.DefaultEps) / 2
		in.N = 1 + g.rng.Intn(8)
	case FamilySpatial:
		in.Alpha = spatial.DefaultAlpha
		in.N = 1 + g.rng.Intn(12)
	}
	return in
}

// Speeds draws n positive processor speeds spanning about two orders of
// magnitude, for heterogeneous-machine property tests.
func (g *Gen) Speeds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.rng.InRange(0.1, 10)
	}
	return out
}
