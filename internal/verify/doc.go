// Package verify is the property-based verification subsystem: executable
// forms of the paper's theorems, callable from any test and from the
// lbverify sweep command. It provides three layers:
//
//   - invariant checkers (verify.go, patch.go): structural partition
//     invariants, the per-bisection α-band, the algorithm-specific
//     worst-case ratio guarantees, the parity identities (PHF ≡ HF, flat
//     planner ≡ interface algorithms), and the incremental-patch
//     invariants (splice structure and patched-ratio band, DESIGN.md §15);
//   - a shared randomized instance generator (gen.go), seeded and
//     shrinkable, reused by property tests across packages;
//   - a sweep engine (sweep.go) that grid-searches (α, N, family, seed)
//     far beyond Table 1 and reports the minimal failing instance.
//
// verify deliberately depends only on internal packages (never the root
// facade), so the facade's own tests can use it without an import cycle.
package verify
