package verify

import (
	"fmt"
	"math"
	"strings"

	"bisectlb/internal/bistree"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// Violation is one failed invariant. Check names which invariant
// ("partition", "band", "guarantee", "parity", "plan"); Detail is a
// human-readable account with the numbers that falsify it.
type Violation struct {
	Check  string
	Detail string
}

func (v Violation) Error() string { return "verify: " + v.Check + ": " + v.Detail }

func violationf(check, format string, args ...any) error {
	return Violation{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// CheckPartition verifies the structural contract of an interface-path
// result against the requested processor count n: part count in [1, n],
// strictly ascending (hence unique) part IDs, positive weights summing to
// the total, Max/Ratio consistent, and — when the result carries a
// recorded bisection tree — the tree's own conservation invariants with
// leaves matching the parts.
func CheckPartition(r *core.Result, n int, tol float64) error {
	if r == nil {
		return violationf("partition", "nil result")
	}
	if r.N != n {
		return violationf("partition", "result records N=%d, caller requested %d", r.N, n)
	}
	if err := r.CheckPartition(tol); err != nil {
		return Violation{Check: "partition", Detail: err.Error()}
	}
	for i := 1; i < len(r.Parts); i++ {
		if r.Parts[i-1].Problem.ID() >= r.Parts[i].Problem.ID() {
			return violationf("partition", "part IDs not strictly ascending at index %d (%d ≥ %d)",
				i, r.Parts[i-1].Problem.ID(), r.Parts[i].Problem.ID())
		}
	}
	if want := bisectRatio(r.Max, r.Total, r.N); math.Abs(r.Ratio-want) > tol*math.Max(1, want) {
		return violationf("partition", "ratio %v inconsistent with max/total/N (want %v)", r.Ratio, want)
	}
	if r.Tree != nil {
		if err := r.Tree.CheckInvariants(tol); err != nil {
			return Violation{Check: "partition", Detail: err.Error()}
		}
		if got, want := r.Tree.NumLeaves(), len(r.Parts); got != want {
			return violationf("partition", "tree has %d leaves, result has %d parts", got, want)
		}
	}
	return nil
}

// bisectRatio mirrors bisect.Ratio without importing it (trivial formula;
// keeps the checker's arithmetic independent of the code under test).
func bisectRatio(maxW, total float64, n int) float64 {
	if total <= 0 {
		return math.NaN()
	}
	return maxW / (total / float64(n))
}

// CheckBand verifies that every recorded bisection in t lands inside the
// α-band: each child of a parent of weight w weighs at least α·w and at
// most (1−α)·w, within relative tolerance tol. This is the defining
// property of an α-bisector (paper Definition 1) applied to the
// bisections an algorithm actually performed.
func CheckBand(t *bistree.Tree, alpha, tol float64) error {
	if t == nil {
		return violationf("band", "nil tree")
	}
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return Violation{Check: "band", Detail: err.Error()}
	}
	var bad error
	t.Walk(func(n *bistree.Node) {
		if bad != nil || n.IsLeaf() {
			return
		}
		w := n.Weight
		slack := tol * w
		for _, c := range n.Children {
			if c.Weight < alpha*w-slack || c.Weight > (1-alpha)*w+slack {
				bad = violationf("band",
					"bisection of node %d (w=%g) produced child %d with weight %g outside [α·w, (1−α)·w] = [%g, %g] at α=%g",
					n.ID, w, c.ID, c.Weight, alpha*w, (1-alpha)*w, alpha)
			}
		}
	})
	return bad
}

// GuaranteeBound returns the paper's worst-case ratio bound for one
// algorithm run at class parameter α (and κ for BA-HF) on n processors:
//
//   - HF, HF-scan, PHF, parallel-PHF: r_α = (1/α)(1−α)^{1/α−2} (Thm 2/3);
//   - BA, BA-naive-split, parallel-BA: e·(1/α)(1−α)^{⌈1/(2α)⌉−1} for
//     N > 1/α, Lemma 5's N·(1−α)^{⌊log2 N⌋} otherwise (Thm 7);
//   - BA-HF: max(e^{(1−α)/κ}·r_α, r_α) — Theorem 8's bound, floored at
//     r_α because BA-HF's inner phase is exactly HF (the κ → ∞ limit).
func GuaranteeBound(alg string, alpha, kappa float64, n int) (float64, error) {
	if err := bounds.ValidateAlpha(alpha); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("verify: n must be ≥ 1, got %d", n)
	}
	if strings.HasPrefix(alg, "BA-HF") {
		// The interface algorithm self-describes as "BA-HF(κ=…)".
		alg = "BA-HF"
	}
	switch alg {
	case "HF", "HF-scan", "PHF", "parallel-PHF":
		return bounds.RHF(alpha), nil
	case "BA", "BA-naive-split", "parallel-BA":
		return bounds.BA(alpha, n), nil
	case "BA-HF":
		if err := bounds.ValidateKappa(kappa); err != nil {
			return 0, err
		}
		limit := bounds.BAHF(alpha, kappa)
		if r := bounds.RHF(alpha); r > limit {
			limit = r
		}
		return limit, nil
	default:
		return 0, fmt.Errorf("verify: no guarantee bound known for algorithm %q", alg)
	}
}

// guaranteeSlack is the absolute tolerance granted on top of a guarantee
// bound, absorbing the rounding of the ratio's own floating-point
// computation. The theorems are inequalities over exact reals; 1e-9 is
// ~1e6 ulps at ratio 2 — far above accumulated rounding, far below any
// genuine violation.
const guaranteeSlack = 1e-9

// CheckGuarantee verifies an interface-path result against the paper's
// worst-case ratio guarantee for its algorithm at class parameter α
// (κ only read for BA-HF).
func CheckGuarantee(r *core.Result, alpha, kappa float64) error {
	if r == nil {
		return violationf("guarantee", "nil result")
	}
	limit, err := GuaranteeBound(r.Algorithm, alpha, kappa, r.N)
	if err != nil {
		return Violation{Check: "guarantee", Detail: err.Error()}
	}
	if r.Ratio > limit+guaranteeSlack {
		return violationf("guarantee", "%s ratio %v exceeds bound %v at α=%g κ=%g N=%d",
			r.Algorithm, r.Ratio, limit, alpha, kappa, r.N)
	}
	return nil
}

// MeasuredGuaranteeBound returns the ratio bound r_α̂ provable from the
// realized bisector quality α̂ of a run's performed bisections: every
// bisection actually performed was an α̂-bisection, so the paper's
// arguments apply with α̂ in place of the class α. HF and PHF use the
// n-aware provable bound n/(1+(n−1)·α̂); BA uses the paper's BA bound,
// which is Lemma 5's n·(1−α̂)^⌊log₂n⌋ only for n ≤ 1/α̂ and Theorem 7's
// e·(1/α̂)·(1−α̂)^{⌈1/(2α̂)⌉−1} beyond (real instances realize α̂ near
// 0.5, where n > 1/α̂ is the common case and Lemma 5 alone would be
// unsound). Both require the run to have produced its full n parts —
// the caller must check that — since the depth arguments presume no
// subproblem was parked indivisible early. BA-HF has no measured bound
// here: its κ threshold couples phases in a way the realized-α̂ argument
// does not cover, so only its structural contracts are checked on
// measured families.
func MeasuredGuaranteeBound(alg string, ahat float64, n int) (float64, error) {
	if err := bounds.ValidateAlpha(ahat); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("verify: n must be ≥ 1, got %d", n)
	}
	switch alg {
	case "HF", "HF-scan", "PHF", "parallel-PHF":
		return bounds.RHFProvableN(ahat, n), nil
	case "BA", "parallel-BA":
		return bounds.BA(ahat, n), nil
	default:
		return 0, fmt.Errorf("verify: no measured-α̂ bound known for algorithm %q", alg)
	}
}

// CheckMeasuredGuarantee verifies r.Ratio against the measured-α̂ bound
// r_α̂ = MeasuredGuaranteeBound(r.Algorithm, ahat, r.N). ahat must be
// the realized bisector quality of this run (e.g. realizedAlpha of its
// recorded tree, or an AlphaRecorder minimum), and the run must have
// produced its full N parts for the bound to be sound.
func CheckMeasuredGuarantee(r *core.Result, ahat float64) error {
	if r == nil {
		return violationf("guarantee", "nil result")
	}
	limit, err := MeasuredGuaranteeBound(r.Algorithm, ahat, r.N)
	if err != nil {
		return Violation{Check: "guarantee", Detail: err.Error()}
	}
	if r.Ratio > limit+guaranteeSlack {
		return violationf("guarantee", "%s ratio %v exceeds measured-α̂ bound %v at α̂=%g N=%d",
			r.Algorithm, r.Ratio, limit, ahat, r.N)
	}
	return nil
}

// CheckPlan verifies the structural contract of a flat-path plan against
// the requested processor count n: strictly ascending unique part IDs,
// positive weights summing to the total, Max/Ratio/MaxDepth consistent,
// and the processor accounting of the algorithm family — every HF/PHF
// part owns exactly one processor (count ≤ n), while a BA/BA-HF plan's
// processor counts sum to exactly n.
func CheckPlan(p *core.Plan, n int, tol float64) error {
	if p == nil {
		return violationf("plan", "nil plan")
	}
	if p.N != n {
		return violationf("plan", "plan records N=%d, caller requested %d", p.N, n)
	}
	if len(p.Parts) == 0 {
		return violationf("plan", "plan has no parts")
	}
	if len(p.Parts) > n {
		return violationf("plan", "%d parts exceed %d processors", len(p.Parts), n)
	}
	sum, maxW := 0.0, 0.0
	maxD := int32(0)
	procs := 0
	for i, pt := range p.Parts {
		if i > 0 && p.Parts[i-1].Node.ID >= pt.Node.ID {
			return violationf("plan", "part IDs not strictly ascending at index %d (%d ≥ %d)",
				i, p.Parts[i-1].Node.ID, pt.Node.ID)
		}
		w := pt.Node.Weight
		if !(w > 0) {
			return violationf("plan", "part %d has non-positive weight %g", pt.Node.ID, w)
		}
		if pt.Procs < 1 {
			return violationf("plan", "part %d assigned %d processors", pt.Node.ID, pt.Procs)
		}
		sum += w
		procs += int(pt.Procs)
		if w > maxW {
			maxW = w
		}
		if pt.Node.Depth > maxD {
			maxD = pt.Node.Depth
		}
	}
	if d := math.Abs(sum - p.Total); d > tol*p.Total {
		return violationf("plan", "part weights sum to %g, want %g", sum, p.Total)
	}
	if math.Abs(maxW-p.Max) > tol*p.Total {
		return violationf("plan", "recorded max %g, recomputed %g", p.Max, maxW)
	}
	if int(maxD) != p.MaxDepth {
		return violationf("plan", "recorded max depth %d, recomputed %d", p.MaxDepth, maxD)
	}
	if want := bisectRatio(p.Max, p.Total, p.N); math.Abs(p.Ratio-want) > tol*math.Max(1, want) {
		return violationf("plan", "ratio %v inconsistent with max/total/N (want %v)", p.Ratio, want)
	}
	switch p.Algorithm {
	case "HF", "PHF":
		for _, pt := range p.Parts {
			if pt.Procs != 1 {
				return violationf("plan", "%s part %d assigned %d processors, want 1", p.Algorithm, pt.Node.ID, pt.Procs)
			}
		}
	case "BA", "BA-HF":
		if procs != n {
			return violationf("plan", "%s processor counts sum to %d, want %d", p.Algorithm, procs, n)
		}
	}
	return nil
}

// CheckPlanGuarantee verifies a flat-path plan against the paper's
// worst-case ratio guarantee for its algorithm, exactly as CheckGuarantee
// does for interface-path results.
func CheckPlanGuarantee(p *core.Plan, alpha, kappa float64) error {
	if p == nil {
		return violationf("guarantee", "nil plan")
	}
	limit, err := GuaranteeBound(p.Algorithm, alpha, kappa, p.N)
	if err != nil {
		return Violation{Check: "guarantee", Detail: err.Error()}
	}
	if p.Ratio > limit+guaranteeSlack {
		return violationf("guarantee", "%s ratio %v exceeds bound %v at α=%g κ=%g N=%d",
			p.Algorithm, p.Ratio, limit, alpha, kappa, p.N)
	}
	return nil
}

// CheckResultParity verifies that two interface-path results are the same
// partition part for part: equal length, and per index bit-identical
// weight, equal ID, equal depth. It is the executable form of Theorem 3
// (PHF produces the same partitioning as HF). Both results sort parts in
// ID order, so index-wise comparison is canonical.
//
// The identity is exact only when subproblem weights are pairwise
// distinct (PHF's tie caveat); callers must restrict it to tie-free
// substrates such as the continuous synthetic family.
func CheckResultParity(a, b *core.Result) error {
	if a == nil || b == nil {
		return violationf("parity", "nil result")
	}
	if len(a.Parts) != len(b.Parts) {
		return violationf("parity", "%s has %d parts, %s has %d", a.Algorithm, len(a.Parts), b.Algorithm, len(b.Parts))
	}
	for i := range a.Parts {
		pa, pb := a.Parts[i], b.Parts[i]
		if pa.Problem.ID() != pb.Problem.ID() {
			return violationf("parity", "part %d: %s has ID %d, %s has ID %d",
				i, a.Algorithm, pa.Problem.ID(), b.Algorithm, pb.Problem.ID())
		}
		if pa.Problem.Weight() != pb.Problem.Weight() {
			return violationf("parity", "part %d (ID %d): weights differ bitwise: %v vs %v",
				i, pa.Problem.ID(), pa.Problem.Weight(), pb.Problem.Weight())
		}
		if pa.Depth != pb.Depth {
			return violationf("parity", "part %d (ID %d): depths differ: %d vs %d",
				i, pa.Problem.ID(), pa.Depth, pb.Depth)
		}
	}
	return nil
}

// CheckPlanParity verifies that a flat-path plan is bit-identical to the
// interface-path result of the same algorithm on the same substrate:
// same part IDs, bitwise-equal weights, equal depths and processor
// counts, and matching summary statistics (Total, Max, Ratio bitwise;
// Bisections and MaxDepth exactly). This is the contract that lets the
// allocation-free planner replace the interface algorithms anywhere.
func CheckPlanParity(p *core.Plan, r *core.Result) error {
	if p == nil || r == nil {
		return violationf("parity", "nil plan or result")
	}
	if p.Algorithm != r.Algorithm {
		return violationf("parity", "plan algorithm %q vs result algorithm %q", p.Algorithm, r.Algorithm)
	}
	if p.N != r.N {
		return violationf("parity", "plan N=%d vs result N=%d", p.N, r.N)
	}
	if len(p.Parts) != len(r.Parts) {
		return violationf("parity", "plan has %d parts, result has %d", len(p.Parts), len(r.Parts))
	}
	for i := range p.Parts {
		fp, rp := p.Parts[i], r.Parts[i]
		if fp.Node.ID != rp.Problem.ID() {
			return violationf("parity", "part %d: plan ID %d vs result ID %d", i, fp.Node.ID, rp.Problem.ID())
		}
		if fp.Node.Weight != rp.Problem.Weight() {
			return violationf("parity", "part %d (ID %d): weights differ bitwise: %v vs %v",
				i, fp.Node.ID, fp.Node.Weight, rp.Problem.Weight())
		}
		if int(fp.Node.Depth) != rp.Depth {
			return violationf("parity", "part %d (ID %d): plan depth %d vs result depth %d",
				i, fp.Node.ID, fp.Node.Depth, rp.Depth)
		}
		if int(fp.Procs) != rp.Procs {
			return violationf("parity", "part %d (ID %d): plan procs %d vs result procs %d",
				i, fp.Node.ID, fp.Procs, rp.Procs)
		}
	}
	if p.Total != r.Total || p.Max != r.Max || p.Ratio != r.Ratio {
		return violationf("parity", "summary differs: plan (total=%v max=%v ratio=%v) vs result (total=%v max=%v ratio=%v)",
			p.Total, p.Max, p.Ratio, r.Total, r.Max, r.Ratio)
	}
	if p.Bisections != r.Bisections {
		return violationf("parity", "plan performed %d bisections, result %d", p.Bisections, r.Bisections)
	}
	if p.MaxDepth != r.MaxDepth {
		return violationf("parity", "plan max depth %d, result %d", p.MaxDepth, r.MaxDepth)
	}
	return nil
}

// CheckPlansEqual verifies that two flat-path plans are bit-identical —
// the reuse contract of BalanceInto: refilling a dst Plan of any prior
// size must yield exactly the plan a fresh computation yields.
func CheckPlansEqual(a, b *core.Plan) error {
	if a == nil || b == nil {
		return violationf("parity", "nil plan")
	}
	if a.Algorithm != b.Algorithm || a.N != b.N || a.Total != b.Total ||
		a.Max != b.Max || a.Ratio != b.Ratio || a.Bisections != b.Bisections || a.MaxDepth != b.MaxDepth {
		return violationf("parity", "plan summaries differ: %+v vs %+v",
			[7]any{a.Algorithm, a.N, a.Total, a.Max, a.Ratio, a.Bisections, a.MaxDepth},
			[7]any{b.Algorithm, b.N, b.Total, b.Max, b.Ratio, b.Bisections, b.MaxDepth})
	}
	if len(a.Parts) != len(b.Parts) {
		return violationf("parity", "plans have %d vs %d parts", len(a.Parts), len(b.Parts))
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return violationf("parity", "part %d differs: %+v vs %+v", i, a.Parts[i], b.Parts[i])
		}
	}
	return nil
}
