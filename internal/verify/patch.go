package verify

import (
	"math"

	"bisectlb/internal/core"
	"bisectlb/internal/xrand"
)

// driftFactors folds a delta list into a per-ID factor lookup with the
// same last-wins semantics PatchInto applies.
func driftFactors(deltas []core.WeightDelta) map[uint64]float64 {
	m := make(map[uint64]float64, len(deltas))
	for _, d := range deltas {
		m[d.ID] = d.Factor
	}
	return m
}

func factorOf(m map[uint64]float64, id uint64) float64 {
	if f, ok := m[id]; ok {
		return f
	}
	return 1
}

// CheckPatchEquivalence verifies the structural and splice invariants of
// a patch of prior under deltas (DESIGN.md §15):
//
//   - noop: the prior plan really is still inside the band — no
//     splittable part's drifted per-processor load exceeds Band times
//     the drifted mean;
//   - full replan: the plan satisfies CheckPlan and the Group arrays are
//     singletons mirroring the parts;
//   - patched: parts strictly ascending by ID with positive weights;
//     drifted total conserved (recomputed from prior × factors); group
//     accounting exact (ΣGroupProcs equals the prior's processor sum,
//     untouched groups are singletons keeping their part's processor
//     count, repair groups own one processor each); every part whose ID
//     survives from the prior plan keeps its processor count and carries
//     exactly its drifted prior weight; and Max/Ratio/MaxDepth are
//     consistent with the group loads.
//
// It is the patch-path analogue of CheckPlan: structural validity, not
// quality — CheckPatchRatio bounds the quality.
func CheckPatchEquivalence(pp *core.PatchedPlan, prior *core.Plan, deltas []core.WeightDelta, tol float64) error {
	if pp == nil || prior == nil {
		return violationf("patch", "nil patched or prior plan")
	}
	st := pp.Stats
	factors := driftFactors(deltas)

	// Drifted totals recomputed independently of the code under test.
	totalD := 0.0
	for _, pt := range prior.Parts {
		totalD += factorOf(factors, pt.Node.ID) * pt.Node.Weight
	}
	if d := math.Abs(totalD - st.DriftedTotal); d > tol*totalD {
		return violationf("patch", "stats drifted total %v, recomputed %v", st.DriftedTotal, totalD)
	}

	switch st.Outcome {
	case core.PatchNoop:
		// Validity of the noop claim is a quality statement; see
		// CheckPatchRatio. Structurally there is nothing to check — the
		// prior plan is served unchanged.
		return nil
	case core.PatchFullReplan:
		if err := CheckPlan(&pp.Plan, prior.N, tol); err != nil {
			return err
		}
		if len(pp.Group) != len(pp.Plan.Parts) || len(pp.GroupProcs) != len(pp.Plan.Parts) {
			return violationf("patch", "full replan group arrays sized %d/%d for %d parts",
				len(pp.Group), len(pp.GroupProcs), len(pp.Plan.Parts))
		}
		for i, pt := range pp.Plan.Parts {
			if pp.Group[i] != int32(i) || pp.GroupProcs[i] != pt.Procs {
				return violationf("patch", "full replan group %d not a singleton of part %d", pp.Group[i], i)
			}
		}
		return nil
	case core.PatchPatched:
		// Fall through to the structural checks below.
	default:
		return violationf("patch", "unknown outcome %v", st.Outcome)
	}

	p := &pp.Plan
	if len(pp.Group) != len(p.Parts) {
		return violationf("patch", "Group has %d entries for %d parts", len(pp.Group), len(p.Parts))
	}
	if want := st.Untouched + st.Pool; len(pp.GroupProcs) != want {
		return violationf("patch", "GroupProcs has %d groups, stats say %d untouched + %d pool",
			len(pp.GroupProcs), st.Untouched, st.Pool)
	}
	if math.Abs(p.Total-totalD) > tol*totalD {
		return violationf("patch", "plan total %v, drifted total %v", p.Total, totalD)
	}

	sum := 0.0
	members := make([]int, len(pp.GroupProcs))
	loads := make([]float64, len(pp.GroupProcs))
	maxD := int32(0)
	for i, pt := range p.Parts {
		if i > 0 && p.Parts[i-1].Node.ID >= pt.Node.ID {
			return violationf("patch", "part IDs not strictly ascending at index %d (%d ≥ %d)",
				i, p.Parts[i-1].Node.ID, pt.Node.ID)
		}
		if !(pt.Node.Weight > 0) {
			return violationf("patch", "part %d has non-positive weight %g", pt.Node.ID, pt.Node.Weight)
		}
		g := pp.Group[i]
		if g < 0 || int(g) >= len(pp.GroupProcs) {
			return violationf("patch", "part %d assigned to group %d of %d", pt.Node.ID, g, len(pp.GroupProcs))
		}
		members[g]++
		loads[g] += pt.Node.Weight
		sum += pt.Node.Weight
		if pt.Node.Depth > maxD {
			maxD = pt.Node.Depth
		}
	}
	if d := math.Abs(sum - p.Total); d > tol*p.Total {
		return violationf("patch", "part weights sum to %v, want %v", sum, p.Total)
	}

	// Processor accounting: nothing gained, nothing lost.
	gp, pr := 0, 0
	for g, n := range pp.GroupProcs {
		if n < 1 {
			return violationf("patch", "group %d owns %d processors", g, n)
		}
		if g >= st.Untouched && n != 1 {
			return violationf("patch", "repair group %d owns %d processors, want 1", g, n)
		}
		if g < st.Untouched && members[g] != 1 {
			return violationf("patch", "untouched group %d has %d members, want 1", g, members[g])
		}
		gp += int(n)
	}
	for _, pt := range prior.Parts {
		pr += int(pt.Procs)
	}
	if gp != pr {
		return violationf("patch", "group processors sum to %d, prior plan owned %d", gp, pr)
	}

	// Splice invariant: a surviving ID keeps its processor count and
	// carries exactly its drifted prior weight (untouched parts as
	// singleton groups, donors inside repair bins).
	priorIdx := 0
	for i, pt := range p.Parts {
		for priorIdx < len(prior.Parts) && prior.Parts[priorIdx].Node.ID < pt.Node.ID {
			priorIdx++
		}
		if priorIdx >= len(prior.Parts) || prior.Parts[priorIdx].Node.ID != pt.Node.ID {
			continue // repair fragment with a fresh ID
		}
		pold := prior.Parts[priorIdx]
		want := factorOf(factors, pt.Node.ID) * pold.Node.Weight
		if math.Abs(pt.Node.Weight-want) > tol*math.Max(1, want) {
			return violationf("patch", "surviving part %d weighs %v, want drifted prior weight %v",
				pt.Node.ID, pt.Node.Weight, want)
		}
		g := pp.Group[i]
		if int(g) < st.Untouched {
			if pp.GroupProcs[g] != pold.Procs {
				return violationf("patch", "untouched part %d owns %d processors, prior had %d",
					pt.Node.ID, pp.GroupProcs[g], pold.Procs)
			}
		} else if pold.Procs != 1 {
			return violationf("patch", "multi-processor part %d was pooled (procs %d)", pt.Node.ID, pold.Procs)
		}
	}

	// Summary consistency over group loads.
	maxL := 0.0
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	if math.Abs(maxL-p.Max) > tol*math.Max(1, p.Total) {
		return violationf("patch", "recorded max group load %v, recomputed %v", p.Max, maxL)
	}
	if int(maxD) != p.MaxDepth {
		return violationf("patch", "recorded max depth %d, recomputed %d", p.MaxDepth, maxD)
	}
	if want := bisectRatio(p.Max, p.Total, p.N); math.Abs(p.Ratio-want) > tol*math.Max(1, want) {
		return violationf("patch", "ratio %v inconsistent with max/total/N (want %v)", p.Ratio, want)
	}
	return nil
}

// CheckPatchRatio verifies the quality of a patch of prior under deltas
// against the proven bounds (DESIGN.md §15):
//
//   - noop: no splittable part's drifted per-processor load exceeds
//     Band times the drifted mean — the claim that made it a noop;
//   - full replan: the fresh plan satisfies the paper's guarantee for
//     its algorithm (CheckPlanGuarantee at α, κ);
//   - patched: every untouched group's load is at most Band times its
//     processors' share of the drifted mean (indivisible leaves exempt —
//     a fresh plan contains the identical leaf); every repair bin obeys
//     the greedy packing bound mean-pool-load + heaviest-pool-item; and
//     when no oversize item or leaf survives, the headline bound holds:
//     patched ratio ≤ Band = max(guarantee bound, 2).
func CheckPatchRatio(pp *core.PatchedPlan, prior *core.Plan, deltas []core.WeightDelta, alpha, kappa, tol float64) error {
	if pp == nil || prior == nil {
		return violationf("patch-ratio", "nil patched or prior plan")
	}
	st := pp.Stats
	factors := driftFactors(deltas)
	totalD := 0.0
	for _, pt := range prior.Parts {
		totalD += factorOf(factors, pt.Node.ID) * pt.Node.Weight
	}
	meanD := totalD / float64(prior.N)

	switch st.Outcome {
	case core.PatchNoop:
		for _, pt := range prior.Parts {
			if pt.Node.Leaf {
				continue
			}
			load := factorOf(factors, pt.Node.ID) * pt.Node.Weight / float64(pt.Procs)
			if load > st.Band*meanD*(1+1e-6) {
				return violationf("patch-ratio", "noop left part %d at load %v, band allows %v",
					pt.Node.ID, load, st.Band*meanD)
			}
		}
		return nil
	case core.PatchFullReplan:
		return CheckPlanGuarantee(&pp.Plan, alpha, kappa)
	case core.PatchPatched:
		// Fall through.
	default:
		return violationf("patch-ratio", "unknown outcome %v", st.Outcome)
	}

	p := &pp.Plan
	loads := make([]float64, len(pp.GroupProcs))
	leafSingleton := make([]bool, len(pp.GroupProcs))
	maxItem := 0.0
	for i, pt := range p.Parts {
		g := pp.Group[i]
		loads[g] += pt.Node.Weight
		if int(g) < st.Untouched && pt.Node.Leaf {
			leafSingleton[g] = true
		}
		if int(g) >= st.Untouched && pt.Node.Weight > maxItem {
			maxItem = pt.Node.Weight
		}
	}
	poolW := 0.0
	for g := st.Untouched; g < len(loads); g++ {
		poolW += loads[g]
	}
	poolMean := 0.0
	if st.Pool > 0 {
		poolMean = poolW / float64(st.Pool)
	}

	slack := guaranteeSlack + tol
	for g, l := range loads {
		if g < st.Untouched {
			allow := st.Band * meanD * float64(pp.GroupProcs[g])
			if l > allow*(1+slack) && !leafSingleton[g] {
				return violationf("patch-ratio", "untouched group %d load %v exceeds band allowance %v", g, l, allow)
			}
		} else {
			allow := poolMean + maxItem
			if l > allow*(1+slack) {
				return violationf("patch-ratio",
					"repair bin %d load %v exceeds greedy bound pool-mean+max-item = %v+%v", g, l, poolMean, maxItem)
			}
		}
	}
	if st.Oversize == 0 && st.OversizeLeaves == 0 {
		if p.Ratio > st.Band*(1+slack) {
			return violationf("patch-ratio", "patched ratio %v exceeds headline bound %v (no oversize items)",
				p.Ratio, st.Band)
		}
	}
	return nil
}

// DriftFor derives a deterministic drift vector for an instance's prior
// plan: a seeded handful of parts multiplied by factors spanning shrink
// (×0.2) to blow-up (×20). The spread exercises every patch outcome —
// noop, patched and full replan — across a sweep.
func DriftFor(in Instance, prior *core.Plan) []core.WeightDelta {
	rng := xrand.New(xrand.Mix(in.Seed, 0xD21F7))
	k := 1 + rng.Intn(4)
	if k > len(prior.Parts) {
		k = len(prior.Parts)
	}
	deltas := make([]core.WeightDelta, 0, k)
	for i := 0; i < k; i++ {
		pt := prior.Parts[rng.Intn(len(prior.Parts))]
		deltas = append(deltas, core.WeightDelta{ID: pt.Node.ID, Factor: rng.InRange(0.2, 20)})
	}
	return deltas
}
