package verify

import (
	"testing"
)

func TestGenDeterministic(t *testing.T) {
	a, b := NewGen(99), NewGen(99)
	for i := 0; i < 200; i++ {
		if ia, ib := a.Instance(), b.Instance(); ia != ib {
			t.Fatalf("instance %d diverged: %v vs %v", i, ia, ib)
		}
	}
}

func TestGenInstanceConstraints(t *testing.T) {
	g := NewGen(7)
	seen := map[Family]int{}
	for i := 0; i < 2000; i++ {
		in := g.Instance()
		seen[in.Family]++
		if in.N < 1 || in.N > 2048 {
			t.Fatalf("N out of range: %v", in)
		}
		if !(in.Kappa > 0) {
			t.Fatalf("κ not positive: %v", in)
		}
		switch in.Family {
		case FamilyUniform:
			if !(in.Alpha >= 0.05 && in.Alpha <= 0.45 && in.Hi >= in.Alpha+0.02 && in.Hi <= 0.5) {
				t.Fatalf("uniform interval out of range: %v", in)
			}
			if !(in.Weight >= 1) {
				t.Fatalf("weight out of range: %v", in)
			}
		case FamilyFixed:
			if !(in.Alpha >= 0.05 && in.Alpha <= 0.5) {
				t.Fatalf("fixed α out of range: %v", in)
			}
		case FamilyList:
			if !(in.Alpha >= 0.05 && in.Alpha <= 1.0/3) {
				t.Fatalf("list α out of range: %v", in)
			}
			if in.Elems < 8*in.N {
				t.Fatalf("list too short for its N: %v", in)
			}
		case FamilyFEM:
			if in.N > 32 {
				t.Fatalf("FEM N out of range: %v", in)
			}
		case FamilyGraph:
			if in.N > 8 || in.Alpha <= 0 {
				t.Fatalf("graph instance out of range: %v", in)
			}
		case FamilySpatial:
			if in.N > 12 || in.Alpha <= 0 {
				t.Fatalf("spatial instance out of range: %v", in)
			}
		}
		if _, err := in.Problem(); err != nil {
			t.Fatalf("generated instance does not materialise: %v: %v", in, err)
		}
		flatFamily := in.Family == FamilyUniform || in.Family == FamilyFixed || in.Family == FamilyList
		if _, _, ok := in.Flat(); ok != flatFamily {
			t.Fatalf("flat availability wrong for %v", in)
		}
	}
	for _, f := range AllFamilies {
		if seen[f] == 0 {
			t.Fatalf("family %v never generated", f)
		}
	}
}

func TestGenFamilyRestriction(t *testing.T) {
	g := NewGen(3)
	g.Families = []Family{FamilyFixed}
	for i := 0; i < 50; i++ {
		if in := g.Instance(); in.Family != FamilyFixed {
			t.Fatalf("restricted generator drew %v", in)
		}
	}
}

func TestShrinkProducesSimplerInstances(t *testing.T) {
	g := NewGen(11)
	for i := 0; i < 200; i++ {
		in := g.Instance()
		for _, c := range in.Shrink() {
			if c == in {
				t.Fatalf("shrink returned the instance itself: %v", in)
			}
			if c.N > in.N {
				t.Fatalf("shrink grew N: %v -> %v", in, c)
			}
			if c.Family == FamilyList && c.Elems > in.Elems {
				t.Fatalf("shrink grew elems: %v -> %v", in, c)
			}
			if _, err := c.Problem(); err != nil {
				t.Fatalf("shrunk instance invalid: %v: %v", c, err)
			}
		}
	}
}

func TestGenSpeeds(t *testing.T) {
	g := NewGen(5)
	sp := g.Speeds(17)
	if len(sp) != 17 {
		t.Fatalf("got %d speeds", len(sp))
	}
	for _, s := range sp {
		if !(s > 0) {
			t.Fatalf("non-positive speed %v", s)
		}
	}
}
