package verify

import (
	"strings"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// mustHF runs HF with tree recording on the canonical synthetic instance.
func mustHF(t *testing.T, n int) *core.Result {
	t.Helper()
	r, err := core.HF(bisect.MustSynthetic(1, 0.1, 0.5, 42), n, core.Options{RecordTree: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCheckPartitionAcceptsValidResult(t *testing.T) {
	r := mustHF(t, 64)
	if err := CheckPartition(r, 64, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPartitionRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(r *core.Result) (n int)
		want    string
	}{
		{"wrong n", func(r *core.Result) int { return 63 }, "requested 63"},
		{"unsorted ids", func(r *core.Result) int {
			r.Parts[0], r.Parts[1] = r.Parts[1], r.Parts[0]
			return r.N
		}, "not strictly ascending"},
		{"bad ratio", func(r *core.Result) int { r.Ratio *= 2; return r.N }, "ratio"},
		{"bad total", func(r *core.Result) int { r.Total *= 2; return r.N }, "sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustHF(t, 64)
			n := tc.corrupt(r)
			err := CheckPartition(r, n, 1e-9)
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q: got %v, want substring %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestCheckBand(t *testing.T) {
	r := mustHF(t, 128)
	// The class has 0.1-bisectors, so the band holds at α = 0.1 …
	if err := CheckBand(r.Tree, 0.1, 1e-9); err != nil {
		t.Fatal(err)
	}
	// … and must be falsified well above the realized worst split.
	if err := CheckBand(r.Tree, 0.49, 0); err == nil {
		t.Fatal("band at α=0.49 not falsified on a U[0.1,0.5] tree")
	} else if !strings.Contains(err.Error(), "outside") {
		t.Fatalf("unexpected band violation text: %v", err)
	}
}

func TestGuaranteeBoundErrors(t *testing.T) {
	if _, err := GuaranteeBound("HF", 0, 1, 4); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := GuaranteeBound("HF", 0.2, 1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GuaranteeBound("BA-HF", 0.2, 0, 4); err == nil {
		t.Fatal("κ=0 accepted for BA-HF")
	}
	if _, err := GuaranteeBound("nope", 0.2, 1, 4); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, alg := range []string{"HF", "PHF", "BA", "BA-HF", "parallel-BA", "parallel-PHF"} {
		b, err := GuaranteeBound(alg, 0.25, 1, 16)
		if err != nil || !(b >= 1) {
			t.Fatalf("%s: bound %v err %v", alg, b, err)
		}
	}
}

func TestCheckGuaranteeDetectsViolation(t *testing.T) {
	r := mustHF(t, 64)
	if err := CheckGuarantee(r, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	r.Ratio = 1e9
	if err := CheckGuarantee(r, 0.1, 1); err == nil {
		t.Fatal("inflated ratio not detected")
	}
}

func TestCheckPlanAndParity(t *testing.T) {
	root := bisect.SyntheticFlatRoot(1, 42)
	k := bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}
	pl := core.NewPlanner(64)
	var plan core.Plan
	if err := pl.HFInto(&plan, k, root, 64); err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(&plan, 64, 1e-9); err != nil {
		t.Fatal(err)
	}
	hf := mustHF(t, 64)
	if err := CheckPlanParity(&plan, hf); err != nil {
		t.Fatal(err)
	}

	// Corruptions must be detected.
	plan.Parts[0].Procs = 2
	if err := CheckPlan(&plan, 64, 1e-9); err == nil {
		t.Fatal("HF part with 2 procs not detected")
	}
	plan.Parts[0].Procs = 1
	plan.Parts[3].Node.Weight *= 1.5
	if err := CheckPlanParity(&plan, hf); err == nil {
		t.Fatal("weight divergence not detected")
	}
}

func TestCheckPlanBAProcsSum(t *testing.T) {
	root := bisect.SyntheticFlatRoot(1, 7)
	k := bisect.SyntheticKernel{Lo: 0.2, Hi: 0.4}
	pl := core.NewPlanner(32)
	var plan core.Plan
	if err := pl.BAInto(&plan, k, root, 37); err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(&plan, 37, 1e-9); err != nil {
		t.Fatal(err)
	}
	plan.Parts[0].Procs++
	if err := CheckPlan(&plan, 37, 1e-9); err == nil {
		t.Fatal("BA procs-sum corruption not detected")
	}
}

func TestCheckResultParityDetectsDivergence(t *testing.T) {
	a := mustHF(t, 64)
	b := mustHF(t, 64)
	if err := CheckResultParity(a, b); err != nil {
		t.Fatal(err)
	}
	b.Parts = b.Parts[:len(b.Parts)-1]
	if err := CheckResultParity(a, b); err == nil {
		t.Fatal("length divergence not detected")
	}
}

func TestCheckPlansEqual(t *testing.T) {
	root := bisect.SyntheticFlatRoot(1, 3)
	k := bisect.SyntheticKernel{Lo: 0.15, Hi: 0.45}
	pl := core.NewPlanner(16)
	var a, b core.Plan
	if err := pl.HFInto(&a, k, root, 16); err != nil {
		t.Fatal(err)
	}
	if err := pl.HFInto(&b, k, root, 16); err != nil {
		t.Fatal(err)
	}
	if err := CheckPlansEqual(&a, &b); err != nil {
		t.Fatal(err)
	}
	b.Parts[2].Node.S0++
	if err := CheckPlansEqual(&a, &b); err == nil {
		t.Fatal("state divergence not detected")
	}
}
