package verify

import (
	"strings"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// patchFixture computes a prior HF plan and a real patched plan over the
// uniform substrate, guaranteed to land in the PatchPatched outcome.
func patchFixture(t *testing.T) (prior *core.Plan, pp *core.PatchedPlan, deltas []core.WeightDelta, root bisect.FlatNode, k bisect.Kernel) {
	t.Helper()
	root = bisect.SyntheticFlatRoot(1, 99)
	k = bisect.SyntheticKernel{Lo: 0.2, Hi: 0.5}
	pl := core.NewPlanner(128)
	prior = &core.Plan{}
	if err := pl.HFInto(prior, k, root, 128); err != nil {
		t.Fatal(err)
	}
	// Drift the two heaviest parts to 10× the mean — dirty but far from
	// the full-replan weight fraction.
	mean := prior.Total / float64(prior.N)
	best, second := -1, -1
	for i, pt := range prior.Parts {
		if pt.Node.Leaf {
			continue
		}
		if best < 0 || pt.Node.Weight > prior.Parts[best].Node.Weight {
			best, second = i, best
		} else if second < 0 || pt.Node.Weight > prior.Parts[second].Node.Weight {
			second = i
		}
	}
	for _, i := range []int{best, second} {
		pt := prior.Parts[i]
		deltas = append(deltas, core.WeightDelta{ID: pt.Node.ID, Factor: 10 * mean / pt.Node.Weight})
	}
	dp := core.NewDeltaPlanner(128)
	pp = &core.PatchedPlan{}
	_, stats, err := dp.PatchInto(pp, k, root, prior, deltas, core.PatchOptions{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != core.PatchPatched {
		t.Fatalf("fixture outcome %v, want patched", stats.Outcome)
	}
	return prior, pp, deltas, root, k
}

func TestCheckPatchAcceptsRealPatch(t *testing.T) {
	prior, pp, deltas, _, _ := patchFixture(t)
	if err := CheckPatchEquivalence(pp, prior, deltas, 1e-9); err != nil {
		t.Fatalf("equivalence rejected a real patch: %v", err)
	}
	if err := CheckPatchRatio(pp, prior, deltas, 0.2, 1, 1e-9); err != nil {
		t.Fatalf("ratio rejected a real patch: %v", err)
	}
}

func TestCheckPatchEquivalenceCatchesTampering(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(pp *core.PatchedPlan)
		want   string
	}{
		{"lost-weight", func(pp *core.PatchedPlan) {
			pp.Plan.Parts[0].Node.Weight *= 0.5
		}, "patch"},
		{"stolen-processor", func(pp *core.PatchedPlan) {
			pp.GroupProcs[0]++
		}, "patch"},
		{"group-out-of-range", func(pp *core.PatchedPlan) {
			pp.Group[0] = int32(len(pp.GroupProcs))
		}, "patch"},
		{"forged-max", func(pp *core.PatchedPlan) {
			pp.Plan.Max *= 2
		}, "patch"},
		{"repair-group-procs", func(pp *core.PatchedPlan) {
			pp.GroupProcs[len(pp.GroupProcs)-1] = 3
		}, "patch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prior, pp, deltas, _, _ := patchFixture(t)
			tc.mutate(pp)
			err := CheckPatchEquivalence(pp, prior, deltas, 1e-9)
			if err == nil {
				t.Fatal("tampered patch accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("unexpected violation: %v", err)
			}
		})
	}
}

func TestCheckPatchRatioCatchesOverload(t *testing.T) {
	prior, pp, deltas, _, _ := patchFixture(t)
	// Cram every pool item into one bin: the packing is what the greedy
	// bound falsifies (weight forgery is CheckPatchEquivalence's domain).
	last := int32(len(pp.GroupProcs) - 1)
	moved := 0
	for i := range pp.Plan.Parts {
		if int(pp.Group[i]) >= pp.Stats.Untouched {
			pp.Group[i] = last
			moved++
		}
	}
	if moved < 3 {
		t.Fatalf("fixture pool too small to falsify packing (%d items)", moved)
	}
	if err := CheckPatchRatio(pp, prior, deltas, 0.2, 1, 1e-9); err == nil {
		t.Fatal("one-bin packing accepted")
	}
}

func TestCheckPatchRatioCatchesFalseNoop(t *testing.T) {
	prior, _, _, _, _ := patchFixture(t)
	// Claim a noop while a part sits at 50× the mean.
	mean := prior.Total / float64(prior.N)
	var deltas []core.WeightDelta
	for _, pt := range prior.Parts {
		if !pt.Node.Leaf {
			deltas = append(deltas, core.WeightDelta{ID: pt.Node.ID, Factor: 50 * mean / pt.Node.Weight})
			break
		}
	}
	fake := &core.PatchedPlan{Stats: core.PatchStats{Outcome: core.PatchNoop, Band: 4}}
	fake.Stats.DriftedTotal = 0
	for _, pt := range prior.Parts {
		f := 1.0
		for _, d := range deltas {
			if d.ID == pt.Node.ID {
				f = d.Factor
			}
		}
		fake.Stats.DriftedTotal += f * pt.Node.Weight
	}
	if err := CheckPatchRatio(fake, prior, deltas, 0.2, 1, 1e-9); err == nil {
		t.Fatal("false noop accepted")
	}
}
