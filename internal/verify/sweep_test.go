package verify

import (
	"testing"
)

// TestSweepClean is the in-test form of the lbverify acceptance run: a
// randomized grid over (α, N, family, seed) with every invariant checked.
// The full 10⁴-instance run lives behind `lbverify -sweep`; the test
// keeps CI latency bounded.
func TestSweepClean(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 120
	}
	rep := Sweep(SweepConfig{Instances: n, Seed: 20260805})
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("%s: %s\n  instance: %s\n  minimal:  %s", f.Alg, f.Err, f.Instance, f.Minimal)
		}
	}
	if rep.Checks < 10*n {
		t.Fatalf("suspiciously few checks ran: %d over %d instances", rep.Checks, n)
	}
	for _, fam := range AllFamilies {
		if rep.ByFamily[fam.String()] == 0 {
			t.Fatalf("family %v never swept", fam)
		}
	}
}

// TestSweepDeterministic pins that a sweep is a pure function of its
// config, so a failing seed reported by lbverify reproduces exactly.
func TestSweepDeterministic(t *testing.T) {
	a := Sweep(SweepConfig{Instances: 50, Seed: 77})
	b := Sweep(SweepConfig{Instances: 50, Seed: 77})
	if a.Checks != b.Checks || len(a.Failures) != len(b.Failures) {
		t.Fatalf("sweep not deterministic: %d/%d checks, %d/%d failures",
			a.Checks, b.Checks, len(a.Failures), len(b.Failures))
	}
}

// TestSweepShrinksInjectedFailure feeds the minimiser a deliberately
// broken invariant — a guarantee bound checked at an α above the class's
// true parameter — and asserts it shrinks toward small N.
func TestSweepShrinksInjectedFailure(t *testing.T) {
	in := Instance{Family: FamilyFixed, Weight: 1, Alpha: 0.1, N: 977, Kappa: 2}
	// Sanity: the real instance passes.
	if _, fails := CheckInstance(nil, in, 1e-9); len(fails) != 0 {
		t.Fatalf("baseline instance unexpectedly fails: %v", fails)
	}
	// An always-failing predicate must drive the shrinker to N=1.
	min := minimizeWith(in, 4096, func(c Instance) bool { return true })
	if min.N != 1 {
		t.Fatalf("shrinker stopped at N=%d, want 1 (minimal: %v)", min.N, min)
	}
	if min.Kappa != 1 {
		t.Fatalf("shrinker did not default κ: %v", min)
	}

	// A passing instance must come back unshrunk from the real minimiser
	// (no shrink candidate of a sound instance fails any algorithm).
	if got := minimize(nil, in, "HF", 1e-9, 16); got != in {
		t.Fatalf("minimize shrank a passing instance: %v", got)
	}

	// The budget is a hard stop: zero budget returns the input even
	// against an always-failing predicate.
	if got := minimizeWith(in, 0, func(Instance) bool { return true }); got != in {
		t.Fatalf("zero-budget shrink changed the instance: %v", got)
	}
}
