package verify

import (
	"os"
	"reflect"
	"testing"

	"bisectlb/internal/core"
	"bisectlb/internal/graph"
)

// TestRealFamiliesSweep is the in-test form of `make sweep-real`: the
// full randomized invariant grid restricted to the two real-instance
// families, where every guarantee is evaluated against the realized α̂
// of the run rather than a class parameter.
func TestRealFamiliesSweep(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 80
	}
	rep := Sweep(SweepConfig{Instances: n, Seed: 20260809, Families: []Family{FamilyGraph, FamilySpatial}})
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("%s: %s\n  instance: %s\n  minimal:  %s", f.Alg, f.Err, f.Instance, f.Minimal)
		}
	}
	if rep.ByFamily["graph"] == 0 || rep.ByFamily["spatial"] == 0 {
		t.Fatalf("family coverage hole: %v", rep.ByFamily)
	}
}

// TestGoldenGraphParity pins Theorem 3 on a fixed checked-in graph
// instance: HF and PHF produce the identical partition at every
// processor count, and the partitions themselves are pinned so any
// change to the multilevel bisector's decisions surfaces as a diff, not
// silent drift.
func TestGoldenGraphParity(t *testing.T) {
	f, err := os.Open("../graph/testdata/grid6x6.graph")
	if err != nil {
		t.Fatal(err)
	}
	h, err := graph.LoadGraph(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	classAlpha := (1 - graph.DefaultEps) / 2
	// With ε = 0.1 and unit weights, parts of weight 9 are indivisible
	// (9 → 4|5 misses the ⌊4.95⌋ cap), so the tree bottoms out at four
	// parts of 9: processor counts above 4 park there — exactly the
	// "processors remain idle" behaviour the checkers must tolerate.
	golden := map[int][]float64{
		2: {18, 18},
		3: {9, 9, 18},
		4: {9, 9, 9, 9},
		8: {9, 9, 9, 9},
	}
	for n := 2; n <= 8; n++ {
		p, err := graph.New(h, graph.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		hf, err := core.HF(p, n, core.Options{RecordTree: true})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := graph.New(h, graph.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		phf, err := core.PHF(p2, n, classAlpha, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckResultParity(hf, &phf.Result); err != nil {
			t.Errorf("n=%d: HF ≢ PHF on fixed instance: %v", n, err)
		}
		if want, ok := golden[n]; ok {
			var got []float64
			for _, pt := range hf.Parts {
				got = append(got, pt.Problem.Weight())
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d: partition drifted: got %v, want %v", n, got, want)
			}
		}
		if a := realizedAlpha(hf.Tree); a > 0 && len(hf.Parts) == hf.N {
			if err := CheckMeasuredGuarantee(hf, a); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
		}
	}
}
