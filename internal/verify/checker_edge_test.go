package verify

import (
	"math"
	"strings"
	"testing"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// TestInstanceString pins the reproduction-recipe rendering: every field
// a replay needs appears for each family.
func TestInstanceString(t *testing.T) {
	cases := []struct {
		in   Instance
		want []string
	}{
		{Instance{Family: FamilyUniform, Weight: 2, Alpha: 0.1, Hi: 0.4, N: 8, Kappa: 1, Seed: 5},
			[]string{"family=uniform", "w=2", "alpha=0.1", "hi=0.4", "n=8", "seed=5"}},
		{Instance{Family: FamilyFixed, Weight: 1, Alpha: 0.3, N: 4, Kappa: 2},
			[]string{"family=fixed", "alpha=0.3", "kappa=2"}},
		{Instance{Family: FamilyList, Elems: 100, Alpha: 0.2, N: 4, Seed: 9},
			[]string{"family=list", "elems=100", "seed=9"}},
		{Instance{Family: FamilyFEM, N: 4, Seed: 3},
			[]string{"family=fem", "n=4", "seed=3"}},
		{Instance{Family: Family(99)}, []string{"family(99)"}},
	}
	for _, tc := range cases {
		s := tc.in.String()
		for _, w := range tc.want {
			if !strings.Contains(s, w) {
				t.Errorf("%v rendered as %q, missing %q", tc.in.Family, s, w)
			}
		}
	}
}

// TestGuaranteeBoundAliases checks the algorithm-name normalisation: the
// scan/naive-split variants share their base algorithm's bound, and the
// interface BA-HF's self-description "BA-HF(κ=…)" resolves to BA-HF.
func TestGuaranteeBoundAliases(t *testing.T) {
	hf, err := GuaranteeBound("HF", 0.2, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if scan, _ := GuaranteeBound("HF-scan", 0.2, 1, 16); scan != hf {
		t.Fatalf("HF-scan bound %v != HF bound %v", scan, hf)
	}
	ba, err := GuaranteeBound("BA", 0.2, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if naive, _ := GuaranteeBound("BA-naive-split", 0.2, 1, 16); naive != ba {
		t.Fatalf("BA-naive-split bound %v != BA bound %v", naive, ba)
	}
	named, err := GuaranteeBound("BA-HF(κ=2.5)", 0.2, 2.5, 16)
	bare, err2 := GuaranteeBound("BA-HF", 0.2, 2.5, 16)
	if err != nil || err2 != nil || named != bare {
		t.Fatalf("self-described BA-HF bound %v (err %v) != bare %v (err %v)", named, err, bare, err2)
	}
}

func TestBisectRatioDegenerateTotal(t *testing.T) {
	if !math.IsNaN(bisectRatio(1, 0, 4)) {
		t.Fatal("zero total did not yield NaN ratio")
	}
}

// TestCheckersRejectNil sweeps every checker's nil guard.
func TestCheckersRejectNil(t *testing.T) {
	if CheckPartition(nil, 1, 0) == nil {
		t.Error("CheckPartition accepted nil")
	}
	if CheckBand(nil, 0.1, 0) == nil {
		t.Error("CheckBand accepted nil tree")
	}
	if CheckGuarantee(nil, 0.1, 1) == nil {
		t.Error("CheckGuarantee accepted nil")
	}
	if CheckPlan(nil, 1, 0) == nil {
		t.Error("CheckPlan accepted nil")
	}
	if CheckPlanGuarantee(nil, 0.1, 1) == nil {
		t.Error("CheckPlanGuarantee accepted nil")
	}
	if CheckResultParity(nil, nil) == nil {
		t.Error("CheckResultParity accepted nil")
	}
	if CheckPlanParity(nil, nil) == nil {
		t.Error("CheckPlanParity accepted nil")
	}
	if CheckPlansEqual(nil, nil) == nil {
		t.Error("CheckPlansEqual accepted nil")
	}
}

// mustPlan computes one flat HF plan for the corruption tables below.
func mustPlan(t *testing.T, n int) *core.Plan {
	t.Helper()
	pl := core.NewPlanner(n)
	var plan core.Plan
	if err := pl.HFInto(&plan, bisect.SyntheticKernel{Lo: 0.1, Hi: 0.5}, bisect.SyntheticFlatRoot(1, 42), n); err != nil {
		t.Fatal(err)
	}
	return &plan
}

func TestCheckPlanRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *core.Plan) (n int)
		want    string
	}{
		{"wrong n", func(p *core.Plan) int { return p.N + 1 }, "caller requested"},
		{"no parts", func(p *core.Plan) int { p.Parts = p.Parts[:0]; return p.N }, "no parts"},
		{"too many parts", func(p *core.Plan) int { p.N = len(p.Parts) - 1; return p.N }, "exceed"},
		{"unsorted ids", func(p *core.Plan) int {
			p.Parts[0], p.Parts[1] = p.Parts[1], p.Parts[0]
			return p.N
		}, "ascending"},
		{"negative weight", func(p *core.Plan) int { p.Parts[0].Node.Weight = -1; return p.N }, "non-positive"},
		{"zero procs", func(p *core.Plan) int { p.Parts[0].Procs = 0; return p.N }, "assigned 0 processors"},
		{"bad total", func(p *core.Plan) int { p.Total *= 2; return p.N }, "sum to"},
		{"bad max", func(p *core.Plan) int { p.Max *= 2; return p.N }, "recorded max"},
		{"bad depth", func(p *core.Plan) int { p.MaxDepth += 3; return p.N }, "depth"},
		{"bad ratio", func(p *core.Plan) int { p.Ratio += 1; return p.N }, "ratio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustPlan(t, 16)
			n := tc.corrupt(p)
			err := CheckPlan(p, n, 1e-9)
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q: got %v, want substring %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestCheckPlanGuarantee(t *testing.T) {
	p := mustPlan(t, 16)
	if err := CheckPlanGuarantee(p, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	p.Algorithm = "mystery"
	if err := CheckPlanGuarantee(p, 0.1, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	p.Algorithm = "HF"
	p.Ratio = 1e9
	if err := CheckPlanGuarantee(p, 0.1, 1); err == nil {
		t.Fatal("inflated ratio not detected")
	}
}

func TestCheckResultParityFieldDivergence(t *testing.T) {
	mk := func() *core.Result {
		r, err := core.HF(bisect.MustSynthetic(1, 0.1, 0.5, 42), 16, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk()

	b := mk()
	b.Parts[0].Depth++
	if err := CheckResultParity(a, b); err == nil || !strings.Contains(err.Error(), "depths differ") {
		t.Fatalf("depth divergence: %v", err)
	}
}

func TestCheckPlanParityFieldDivergence(t *testing.T) {
	hf, err := core.HF(bisect.MustSynthetic(1, 0.1, 0.5, 42), 16, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func(p *core.Plan)
		want    string
	}{
		{"algorithm", func(p *core.Plan) { p.Algorithm = "BA" }, "algorithm"},
		{"n", func(p *core.Plan) { p.N++ }, "N="},
		{"length", func(p *core.Plan) { p.Parts = p.Parts[:len(p.Parts)-1] }, "parts"},
		{"id", func(p *core.Plan) { p.Parts[0].Node.ID++ }, "ID"},
		{"depth", func(p *core.Plan) { p.Parts[0].Node.Depth++ }, "depth"},
		{"procs", func(p *core.Plan) { p.Parts[0].Procs++ }, "procs"},
		{"summary", func(p *core.Plan) { p.Max *= 2 }, "summary"},
		{"bisections", func(p *core.Plan) { p.Bisections++ }, "bisections"},
		{"maxdepth", func(p *core.Plan) { p.MaxDepth++ }, "max depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustPlan(t, 16)
			tc.corrupt(p)
			err := CheckPlanParity(p, hf)
			if err == nil {
				t.Fatalf("divergence %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("divergence %q: got %v, want substring %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestCheckPlansEqualSummaryAndLength(t *testing.T) {
	a, b := mustPlan(t, 16), mustPlan(t, 16)
	b.Ratio *= 2
	if err := CheckPlansEqual(a, b); err == nil || !strings.Contains(err.Error(), "summaries") {
		t.Fatalf("summary divergence: %v", err)
	}
	b = mustPlan(t, 16)
	b.Parts = b.Parts[:len(b.Parts)-1]
	if err := CheckPlansEqual(a, b); err == nil {
		t.Fatal("length divergence not detected")
	}
}

// TestSweepProgressAndOverrides covers the sweep's config plumbing: the
// progress callback fires for every instance, and MaxN/Tol/ShrinkBudget
// overrides are honoured.
func TestSweepProgressAndOverrides(t *testing.T) {
	var calls, last int
	rep := Sweep(SweepConfig{
		Instances: 20, Seed: 3, MaxN: 16, Tol: 1e-10, ShrinkBudget: 1,
		Families: []Family{FamilyUniform},
		Progress: func(done, total int) {
			calls++
			last = done
			if total != 20 {
				t.Fatalf("progress total %d, want 20", total)
			}
		},
	})
	if !rep.OK() {
		t.Fatalf("sweep failed: %+v", rep.Failures)
	}
	if calls != 20 || last != 20 {
		t.Fatalf("progress called %d times (last done %d), want 20/20", calls, last)
	}
	if rep.ByFamily["uniform"] != 20 {
		t.Fatalf("family restriction ignored: %+v", rep.ByFamily)
	}
}

func TestInstanceProblemUnknownFamily(t *testing.T) {
	if _, err := (Instance{Family: Family(42)}).Problem(); err == nil {
		t.Fatal("unknown family materialised")
	}
	if _, _, ok := (Instance{Family: Family(42)}).Flat(); ok {
		t.Fatal("unknown family produced a kernel")
	}
}

func TestViolationError(t *testing.T) {
	err := violationf("band", "child %d too light", 7)
	v, ok := err.(Violation)
	if !ok || v.Check != "band" || !strings.Contains(err.Error(), "verify: band:") {
		t.Fatalf("violation shape wrong: %#v / %v", err, err)
	}
}
