package verify

import (
	"math"

	"bisectlb/internal/bistree"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
)

// SweepConfig parameterises a guarantee sweep. The zero value sweeps
// 1000 instances over every family at seed 1.
type SweepConfig struct {
	// Instances is the number of random instances to draw (default 1000).
	Instances int
	// Seed seeds the instance stream; the same seed replays the same sweep.
	Seed uint64
	// MaxN caps generated processor counts (default 2048).
	MaxN int
	// Tol is the relative tolerance for weight-conservation checks
	// (default 1e-9). Guarantee comparisons use their own fixed slack.
	Tol float64
	// Families restricts the sweep (default AllFamilies).
	Families []Family
	// ShrinkBudget caps the re-check runs spent minimising one failure
	// (default 64).
	ShrinkBudget int
	// Progress, when set, is called after every instance.
	Progress func(done, total int)
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Instances <= 0 {
		c.Instances = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 64
	}
	return c
}

// Failure is one instance that falsified an invariant, together with the
// minimal shrunk instance that still falsifies it.
type Failure struct {
	// Instance is the originally drawn failing instance.
	Instance Instance
	// Minimal is the smallest shrunk instance still failing the same
	// algorithm's checks (equal to Instance when no shrink reproduces it).
	Minimal Instance
	// Alg tags the algorithm/path whose invariant failed.
	Alg string
	// Err is the violation.
	Err string
}

// Report summarises a sweep.
type Report struct {
	// Instances is the number of instances drawn.
	Instances int
	// Checks counts individual invariant checks performed.
	Checks int
	// ByFamily counts instances per family name.
	ByFamily map[string]int
	// Failures lists every falsified invariant (empty on a clean sweep).
	Failures []Failure
}

// OK reports whether the sweep found no violations.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Sweep draws cfg.Instances random instances and checks, for each, every
// applicable invariant: structural partition contracts, the α-band of
// every recorded bisection, the worst-case ratio guarantees of
// HF/PHF/BA/BA-HF, flat-planner ≡ interface parity, and PHF ≡ HF parity
// on the tie-free family. Each failure is shrunk to a minimal
// reproduction before being reported.
func Sweep(cfg SweepConfig) *Report {
	cfg = cfg.withDefaults()
	g := NewGen(cfg.Seed)
	g.MaxN = cfg.MaxN
	g.Families = cfg.Families
	rep := &Report{Instances: cfg.Instances, ByFamily: make(map[string]int)}
	var pl core.Planner
	for i := 0; i < cfg.Instances; i++ {
		in := g.Instance()
		rep.ByFamily[in.Family.String()]++
		checks, fails := CheckInstance(&pl, in, cfg.Tol)
		rep.Checks += checks
		for _, f := range fails {
			rep.Failures = append(rep.Failures, Failure{
				Instance: in,
				Minimal:  minimize(&pl, in, f.Alg, cfg.Tol, cfg.ShrinkBudget),
				Alg:      f.Alg,
				Err:      f.Err.Error(),
			})
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Instances)
		}
	}
	return rep
}

// AlgFailure is one falsified invariant of one algorithm run.
type AlgFailure struct {
	Alg string
	Err error
}

// CheckInstance runs every applicable algorithm over one instance and
// checks every applicable invariant, returning the number of checks
// performed and the failures found. pl may be nil (a temporary Planner is
// used); passing one amortises its buffers across instances.
func CheckInstance(pl *core.Planner, in Instance, tol float64) (checks int, fails []AlgFailure) {
	if pl == nil {
		pl = core.NewPlanner(in.N)
	}
	fail := func(alg string, err error) {
		if err != nil {
			fails = append(fails, AlgFailure{Alg: alg, Err: err})
		}
	}
	check := func(alg string, err error) {
		checks++
		fail(alg, err)
	}

	p, err := in.Problem()
	if err != nil {
		fail("gen", err)
		return checks, fails
	}

	// Interface paths. The substrates are pure (Bisect never mutates), so
	// one root serves every algorithm.
	measured := in.Family.Measured()
	hf, err := core.HF(p, in.N, core.Options{RecordTree: true})
	if err != nil {
		fail("HF", err)
		return checks, fails
	}
	check("HF", CheckPartition(hf, in.N, tol))
	if measured {
		// Emergent α: check the guarantee provable from the realized
		// bisector quality of the performed bisections alone (r_α̂).
		if a := realizedAlpha(hf.Tree); a > 0 && len(hf.Parts) == hf.N {
			check("HF/realized", CheckMeasuredGuarantee(hf, a))
		}
		if in.Alpha > 0 {
			// Graph/spatial declare a class floor every performed
			// bisection must meet; FEM declares none.
			check("HF", CheckBand(hf.Tree, in.Alpha, tol))
		}
	} else {
		check("HF", CheckBand(hf.Tree, in.Alpha, tol))
		check("HF", CheckGuarantee(hf, in.Alpha, in.Kappa))
	}

	if in.Alpha > 0 {
		phf, err := core.PHF(p, in.N, in.Alpha, core.Options{RecordTree: measured})
		if err != nil {
			fail("PHF", err)
		} else {
			check("PHF", CheckPartition(&phf.Result, in.N, tol))
			if measured {
				if a := realizedAlpha(phf.Result.Tree); a > 0 && len(phf.Result.Parts) == phf.Result.N {
					check("PHF/realized", CheckMeasuredGuarantee(&phf.Result, a))
				}
			} else {
				check("PHF", CheckGuarantee(&phf.Result, in.Alpha, in.Kappa))
			}
			checks++
			if d := bounds.PHFPhase1Depth(in.Alpha, in.N); phf.Phase1Rounds > d {
				fail("PHF", violationf("guarantee", "phase-1 ran %d rounds, bound is %d at α=%g N=%d",
					phf.Phase1Rounds, d, in.Alpha, in.N))
			}
			checks++
			if b := bounds.PHFPhase2Iterations(in.Alpha); phf.Phase2Iterations > b {
				fail("PHF", violationf("guarantee", "phase-2 ran %d iterations, bound is %d at α=%g",
					phf.Phase2Iterations, b, in.Alpha))
			}
			if in.Family == FamilyUniform {
				// Theorem 3's identity, exact on the tie-free family.
				check("HF≡PHF", CheckResultParity(hf, &phf.Result))
			}
			// Flat PHF mirrors PHF's rounds exactly — ties included.
			if root, k, ok := in.Flat(); ok {
				var plan core.Plan
				if err := pl.PHFInto(&plan, k, root, in.N, in.Alpha); err != nil {
					fail("PHF/flat", err)
				} else {
					check("PHF/flat", CheckPlan(&plan, in.N, tol))
					check("PHF/flat", CheckPlanParity(&plan, &phf.Result))
					check("PHF/flat", CheckPlanGuarantee(&plan, in.Alpha, in.Kappa))
				}
			}
		}

		bahf, err := core.BAHF(p, in.N, in.Alpha, in.Kappa, core.Options{})
		if err != nil {
			fail("BA-HF", err)
		} else {
			check("BA-HF", CheckPartition(bahf, in.N, tol))
			if !measured {
				check("BA-HF", CheckGuarantee(bahf, in.Alpha, in.Kappa))
			}
		}
	}

	ba, err := core.BA(p, in.N, core.Options{RecordTree: measured})
	if err != nil {
		fail("BA", err)
	} else {
		check("BA", CheckPartition(ba, in.N, tol))
		if !measured {
			check("BA", CheckGuarantee(ba, in.Alpha, in.Kappa))
		} else if a := realizedAlpha(ba.Tree); a > 0 && len(ba.Parts) == ba.N {
			check("BA/realized", CheckMeasuredGuarantee(ba, a))
		}
	}

	// Flat paths for HF/BA/BA-HF (PHF handled above, next to its
	// interface run).
	if root, k, ok := in.Flat(); ok {
		var plan core.Plan
		if err := pl.HFInto(&plan, k, root, in.N); err != nil {
			fail("HF/flat", err)
		} else {
			check("HF/flat", CheckPlan(&plan, in.N, tol))
			check("HF/flat", CheckPlanParity(&plan, hf))
			check("HF/flat", CheckPlanGuarantee(&plan, in.Alpha, in.Kappa))
		}
		if ba != nil {
			if err := pl.BAInto(&plan, k, root, in.N); err != nil {
				fail("BA/flat", err)
			} else {
				check("BA/flat", CheckPlan(&plan, in.N, tol))
				check("BA/flat", CheckPlanParity(&plan, ba))
				check("BA/flat", CheckPlanGuarantee(&plan, in.Alpha, in.Kappa))
			}
		}
		if err := pl.BAHFInto(&plan, k, root, in.N, in.Alpha, in.Kappa); err != nil {
			fail("BA-HF/flat", err)
		} else {
			check("BA-HF/flat", CheckPlan(&plan, in.N, tol))
			check("BA-HF/flat", CheckPlanGuarantee(&plan, in.Alpha, in.Kappa))
		}

		// Patch path (DESIGN.md §15): drift a seeded handful of parts and
		// verify the delta planner's splice and ratio bounds, plus the
		// zero-delta noop identity.
		dp := core.NewDeltaPlanner(in.N)
		opt := core.PatchOptions{Alpha: in.Alpha, Kappa: in.Kappa}
		for _, alg := range []string{"HF", "BA-HF"} {
			var prior core.Plan
			var err error
			if alg == "HF" {
				err = pl.HFInto(&prior, k, root, in.N)
			} else {
				err = pl.BAHFInto(&prior, k, root, in.N, in.Alpha, in.Kappa)
			}
			if err != nil {
				fail("patch/"+alg, err)
				continue
			}
			checks++
			if got, stats, err := dp.PatchInto(&core.PatchedPlan{}, k, root, &prior, nil, opt); err != nil {
				fail("patch/"+alg, err)
			} else if stats.Outcome != core.PatchNoop || got != &prior {
				fail("patch/"+alg, violationf("patch", "zero-delta patch was not a noop on the prior object"))
			}
			deltas := DriftFor(in, &prior)
			var pp core.PatchedPlan
			got, stats, err := dp.PatchInto(&pp, k, root, &prior, deltas, opt)
			if err != nil {
				fail("patch/"+alg, err)
				continue
			}
			checks++
			if stats.Outcome == core.PatchNoop && got != &prior {
				fail("patch/"+alg, violationf("patch", "noop outcome returned a new plan object"))
			}
			check("patch/"+alg, CheckPatchEquivalence(&pp, &prior, deltas, tol))
			check("patch/"+alg, CheckPatchRatio(&pp, &prior, deltas, in.Alpha, in.Kappa, tol))
		}
	}
	return checks, fails
}

// realizedAlpha returns the worst (smallest) split fraction
// min(w1, w2)/w over the recorded bisections, or 0 if the tree recorded
// none. By construction every performed bisection is a realizedAlpha-
// bisection, which is what the RHFProvableN argument needs.
func realizedAlpha(t *bistree.Tree) float64 {
	if t == nil {
		return 0
	}
	worst := math.Inf(1)
	t.Walk(func(n *bistree.Node) {
		if n.IsLeaf() || !(n.Weight > 0) {
			return
		}
		f := math.Min(n.Children[0].Weight, n.Children[1].Weight) / n.Weight
		if f < worst {
			worst = f
		}
	})
	if math.IsInf(worst, 1) {
		return 0
	}
	return worst
}

// minimize shrinks in to the smallest instance still failing alg's
// checks, spending at most budget re-check runs.
func minimize(pl *core.Planner, in Instance, alg string, tol float64, budget int) Instance {
	return minimizeWith(in, budget, func(c Instance) bool { return failsAlg(pl, c, alg, tol) })
}

// minimizeWith is the greedy shrink loop over an arbitrary failure
// predicate: it repeatedly replaces the instance with its first
// still-failing shrink candidate until no candidate fails or the budget
// of predicate evaluations runs out.
func minimizeWith(in Instance, budget int, fails func(Instance) bool) Instance {
	cur := in
	for budget > 0 {
		shrunk := false
		for _, c := range cur.Shrink() {
			budget--
			if fails(c) {
				cur = c
				shrunk = true
				break
			}
			if budget <= 0 {
				break
			}
		}
		if !shrunk {
			break
		}
	}
	return cur
}

func failsAlg(pl *core.Planner, in Instance, alg string, tol float64) bool {
	_, fails := CheckInstance(pl, in, tol)
	for _, f := range fails {
		if f.Alg == alg {
			return true
		}
	}
	return false
}
