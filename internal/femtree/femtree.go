// Package femtree provides the finite-element substrate that motivated the
// paper: unbalanced binary trees produced by adaptive recursive
// substructuring ("FE-trees", refs [1, 6, 7] of the paper), plus a
// weight-balancing tree bisector so that FE-tree regions participate in the
// load-balancing framework as bisect.Problem values.
//
// Substitution note (DESIGN.md §4): the original system derived FE-trees
// from a hierarchical FEM solver; this package generates synthetic FE-trees
// whose shape is controlled by an adaptive-refinement model with a movable
// singularity. The load-balancing layer only ever observes weights and
// bisections, so the synthetic trees exercise exactly the same code paths.
package femtree

import (
	"fmt"
	"math"

	"bisectlb/internal/xrand"
)

// TreeNode is one node of an FE-tree. Indices refer into Tree.Nodes; -1
// denotes absence.
type TreeNode struct {
	Parent, Left, Right int
	// Dofs is the computational weight attached to the node (degrees of
	// freedom of the substructure interface).
	Dofs float64
	// Depth is the node's distance from the FE-tree root.
	Depth int
	// Span is the 1-D domain interval the substructure covers, used only
	// by the generator to model refinement near a singularity.
	Span [2]float64
}

// Tree is an immutable FE-tree. Many Region problems share one Tree.
type Tree struct {
	Nodes []TreeNode
	Root  int
	// subtreeDofs[i] caches the total weight of the subtree rooted at i.
	subtreeDofs []float64
	// idSalt distinguishes regions of different trees in problem IDs.
	idSalt uint64
}

// GenConfig controls synthetic FE-tree generation.
type GenConfig struct {
	// MaxDepth caps refinement depth (tree height). Must be ≥ 1.
	MaxDepth int
	// MinDepth forces refinement for the first MinDepth levels so a tree
	// never degenerates to a single node.
	MinDepth int
	// RefineBias ∈ (0, 1] scales the refinement probability.
	RefineBias float64
	// Singularity ∈ [0, 1] is the domain location that attracts
	// refinement, modelling a corner singularity of the PDE solution.
	Singularity float64
	// BaseDofs is the mean per-node weight. Must be positive.
	BaseDofs float64
	// Seed drives the generator deterministically.
	Seed uint64
}

// DefaultGenConfig returns a configuration producing trees of a few
// thousand nodes with pronounced depth imbalance.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		MaxDepth:    16,
		MinDepth:    4,
		RefineBias:  0.92,
		Singularity: 0.23,
		BaseDofs:    10,
		Seed:        seed,
	}
}

// Generate builds a synthetic FE-tree. It returns an error for nonsensical
// configurations.
func Generate(cfg GenConfig) (*Tree, error) {
	if cfg.MaxDepth < 1 {
		return nil, fmt.Errorf("femtree: MaxDepth %d must be ≥ 1", cfg.MaxDepth)
	}
	if cfg.MinDepth < 0 || cfg.MinDepth > cfg.MaxDepth {
		return nil, fmt.Errorf("femtree: MinDepth %d outside [0, %d]", cfg.MinDepth, cfg.MaxDepth)
	}
	if !(cfg.RefineBias > 0) || cfg.RefineBias > 1 {
		return nil, fmt.Errorf("femtree: RefineBias %v outside (0, 1]", cfg.RefineBias)
	}
	if !(cfg.BaseDofs > 0) {
		return nil, fmt.Errorf("femtree: BaseDofs %v must be positive", cfg.BaseDofs)
	}
	t := &Tree{idSalt: xrand.Mix(cfg.Seed, 0xfe3)}
	rng := xrand.New(cfg.Seed)
	var build func(depth int, span [2]float64, parent int) int
	build = func(depth int, span [2]float64, parent int) int {
		id := len(t.Nodes)
		dofs := cfg.BaseDofs * (0.5 + rng.Float64())
		t.Nodes = append(t.Nodes, TreeNode{
			Parent: parent, Left: -1, Right: -1,
			Dofs: dofs, Depth: depth, Span: span,
		})
		if depth < cfg.MaxDepth {
			refine := depth < cfg.MinDepth
			if !refine {
				center := (span[0] + span[1]) / 2
				dist := math.Abs(center - cfg.Singularity)
				// Refinement probability decays with distance from the
				// singularity and with depth, yielding the unbalanced
				// trees typical of adaptive substructuring.
				p := cfg.RefineBias * math.Pow(1-dist, 2) * math.Pow(0.97, float64(depth))
				refine = rng.Float64() < p
			}
			if refine {
				mid := (span[0] + span[1]) / 2
				left := build(depth+1, [2]float64{span[0], mid}, id)
				right := build(depth+1, [2]float64{mid, span[1]}, id)
				t.Nodes[id].Left = left
				t.Nodes[id].Right = right
			}
		}
		return id
	}
	t.Root = build(0, [2]float64{0, 1}, -1)
	t.computeSubtreeDofs()
	return t, nil
}

// MustGenerate is Generate that panics on error, for tests and examples.
func MustGenerate(cfg GenConfig) *Tree {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) computeSubtreeDofs() {
	t.subtreeDofs = make([]float64, len(t.Nodes))
	// Nodes were appended in preorder, so children always have larger
	// indices than their parent; a reverse sweep accumulates bottom-up.
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		sum := t.Nodes[i].Dofs
		if l := t.Nodes[i].Left; l >= 0 {
			sum += t.subtreeDofs[l]
		}
		if r := t.Nodes[i].Right; r >= 0 {
			sum += t.subtreeDofs[r]
		}
		t.subtreeDofs[i] = sum
	}
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// TotalDofs returns the whole tree's weight.
func (t *Tree) TotalDofs() float64 { return t.subtreeDofs[t.Root] }

// MaxDepth returns the height of the tree.
func (t *Tree) MaxDepth() int {
	d := 0
	for _, n := range t.Nodes {
		if n.Depth > d {
			d = n.Depth
		}
	}
	return d
}
