package femtree

import (
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/xrand"
)

// Region is a connected piece of an FE-tree: the subtree rooted at Root
// minus the subtrees rooted at the removed nodes. Regions are the problems
// handed to the load-balancing algorithms; bisecting a region cuts one tree
// edge, exactly the FE-tree bisection of the paper's motivating system.
//
// Region is immutable; Bisect returns two fresh regions. Its identity (ID)
// is derived from the region's content — root and removed set — not from
// creation order, so different algorithms bisecting the same region obtain
// interchangeable problems, which the PHF ≡ HF identity tests require.
type Region struct {
	tree    *Tree
	root    int
	removed []int // sorted node indices whose subtrees are cut away
	weight  float64
	id      uint64
}

var _ bisect.Problem = (*Region)(nil)

// NewRegion returns the region covering the entire tree.
func NewRegion(t *Tree) *Region {
	r := &Region{tree: t, root: t.Root, weight: t.TotalDofs()}
	r.id = r.computeID()
	return r
}

func (r *Region) computeID() uint64 {
	h := xrand.Mix(r.tree.idSalt, uint64(r.root)+1)
	for _, v := range r.removed {
		h = xrand.Mix(h, uint64(v)+2)
	}
	return h
}

// Weight returns the sum of Dofs over the region's nodes.
func (r *Region) Weight() float64 { return r.weight }

// ID returns the content-derived identifier.
func (r *Region) ID() uint64 { return r.id }

// Tree returns the underlying FE-tree.
func (r *Region) Tree() *Tree { return r.tree }

// Root returns the region's root node index.
func (r *Region) Root() int { return r.root }

// isRemoved reports whether node v is the root of a cut-away subtree.
func (r *Region) isRemoved(v int) bool {
	i := sort.SearchInts(r.removed, v)
	return i < len(r.removed) && r.removed[i] == v
}

// Nodes visits every node in the region in preorder.
func (r *Region) Nodes(visit func(v int)) {
	var rec func(v int)
	rec = func(v int) {
		if v < 0 || r.isRemoved(v) {
			return
		}
		visit(v)
		rec(r.tree.Nodes[v].Left)
		rec(r.tree.Nodes[v].Right)
	}
	rec(r.root)
}

// Size returns the number of nodes in the region.
func (r *Region) Size() int {
	n := 0
	r.Nodes(func(int) { n++ })
	return n
}

// CanBisect reports whether the region has an edge to cut.
func (r *Region) CanBisect() bool { return r.Size() >= 2 }

// subWeights computes, for every node v in the region, the weight of the
// region part below and including v. Returned as a map to keep the region
// immutable and reentrant.
func (r *Region) subWeights() map[int]float64 {
	w := make(map[int]float64)
	var rec func(v int) float64
	rec = func(v int) float64 {
		if v < 0 || r.isRemoved(v) {
			return 0
		}
		s := r.tree.Nodes[v].Dofs + rec(r.tree.Nodes[v].Left) + rec(r.tree.Nodes[v].Right)
		w[v] = s
		return s
	}
	rec(r.root)
	return w
}

// BestCut returns the non-root region node whose subtree split is closest
// to half the region weight (deterministic tie-break on the node index),
// along with the weight below it. The boolean is false if the region has no
// cuttable edge.
func (r *Region) BestCut() (node int, below float64, ok bool) {
	ws := r.subWeights()
	total := ws[r.root]
	best := -1
	bestGap := 0.0
	for v, wv := range ws {
		if v == r.root {
			continue
		}
		gap := wv - total/2
		if gap < 0 {
			gap = -gap
		}
		if best == -1 || gap < bestGap || (gap == bestGap && v < best) {
			best, bestGap = v, gap
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, ws[best], true
}

// Bisect cuts the best-balancing edge: the returned problems are the
// subtree below the cut node and the remainder of the region. The heavier
// part comes first. Bisect panics if CanBisect is false.
func (r *Region) Bisect() (bisect.Problem, bisect.Problem) {
	cut, below, ok := r.BestCut()
	if !ok {
		panic("femtree: Bisect on single-node region")
	}
	sub := &Region{tree: r.tree, root: cut, weight: below}
	// Only removed descendants of cut belong to the new subregion; the
	// rest stay with the remainder. A removed node is a descendant of cut
	// iff cut lies on its path to the region root.
	var subRemoved, restRemoved []int
	for _, v := range r.removed {
		if r.hasAncestor(v, cut) {
			subRemoved = append(subRemoved, v)
		} else {
			restRemoved = append(restRemoved, v)
		}
	}
	sub.removed = subRemoved
	sub.id = sub.computeID()

	rest := &Region{tree: r.tree, root: r.root, weight: r.weight - below}
	rest.removed = insertSorted(restRemoved, cut)
	rest.id = rest.computeID()

	if sub.weight >= rest.weight {
		return sub, rest
	}
	return rest, sub
}

// hasAncestor reports whether anc is a proper or improper ancestor of v.
func (r *Region) hasAncestor(v, anc int) bool {
	for v >= 0 {
		if v == anc {
			return true
		}
		v = r.tree.Nodes[v].Parent
	}
	return false
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// ProbeAlpha expands the region heaviest-first into up to maxParts pieces
// and returns the smallest split fraction min(w1, w2)/w observed — an
// empirical lower estimate of the α the tree's bisector achieves. FE-trees
// give no a-priori α guarantee (a star-shaped tree cannot be balanced), so
// applications probe before choosing the α to declare to PHF or BA-HF.
func ProbeAlpha(r *Region, maxParts int) float64 {
	if maxParts < 2 || !r.CanBisect() {
		return 0.5
	}
	worst := 0.5
	pool := []*Region{r}
	for len(pool) < maxParts {
		// Find the heaviest divisible region.
		best := -1
		for i, q := range pool {
			if q.CanBisect() && (best == -1 || q.weight > pool[best].weight) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		q := pool[best]
		a, b := q.Bisect()
		frac := b.Weight() / q.Weight()
		if frac < worst {
			worst = frac
		}
		pool[best] = a.(*Region)
		pool = append(pool, b.(*Region))
	}
	return worst
}
