package femtree

import (
	"math"
	"testing"

	"bisectlb/internal/bisect"
)

func TestGenerateValidation(t *testing.T) {
	cases := []GenConfig{
		{MaxDepth: 0, RefineBias: 0.5, BaseDofs: 1},
		{MaxDepth: 4, MinDepth: 5, RefineBias: 0.5, BaseDofs: 1},
		{MaxDepth: 4, RefineBias: 0, BaseDofs: 1},
		{MaxDepth: 4, RefineBias: 1.5, BaseDofs: 1},
		{MaxDepth: 4, RefineBias: 0.5, BaseDofs: 0},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultGenConfig(5))
	b := MustGenerate(DefaultGenConfig(5))
	if a.Size() != b.Size() || a.TotalDofs() != b.TotalDofs() {
		t.Fatal("same seed gave different trees")
	}
	c := MustGenerate(DefaultGenConfig(6))
	if a.Size() == c.Size() && a.TotalDofs() == c.TotalDofs() {
		t.Fatal("different seeds gave identical trees (suspicious)")
	}
}

func TestGenerateStructure(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(1))
	if tr.Size() < 2 {
		t.Fatal("tree degenerated to a single node")
	}
	for i, n := range tr.Nodes {
		if (n.Left >= 0) != (n.Right >= 0) {
			t.Fatalf("node %d has exactly one child (not binary)", i)
		}
		if n.Left >= 0 {
			if tr.Nodes[n.Left].Parent != i || tr.Nodes[n.Right].Parent != i {
				t.Fatalf("node %d: child parent links broken", i)
			}
			if tr.Nodes[n.Left].Depth != n.Depth+1 {
				t.Fatalf("node %d: child depth wrong", i)
			}
		}
		if !(n.Dofs > 0) {
			t.Fatalf("node %d has non-positive dofs", i)
		}
	}
	if tr.MaxDepth() < DefaultGenConfig(1).MinDepth {
		t.Fatal("MinDepth not honoured")
	}
}

func TestSubtreeDofsConsistent(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(2))
	var sum float64
	for _, n := range tr.Nodes {
		sum += n.Dofs
	}
	if math.Abs(sum-tr.TotalDofs()) > 1e-9*sum {
		t.Fatalf("total dofs %v != node sum %v", tr.TotalDofs(), sum)
	}
}

func TestRegionWeightConservation(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(3))
	r := NewRegion(tr)
	var walk func(q bisect.Problem, depth int)
	walk = func(q bisect.Problem, depth int) {
		if depth == 0 || !q.CanBisect() {
			return
		}
		c1, c2 := q.Bisect()
		if math.Abs(c1.Weight()+c2.Weight()-q.Weight()) > 1e-9*q.Weight() {
			t.Fatalf("weights not conserved: %v + %v != %v", c1.Weight(), c2.Weight(), q.Weight())
		}
		if c1.Weight() < c2.Weight() {
			t.Fatal("heavy child must come first")
		}
		walk(c1, depth-1)
		walk(c2, depth-1)
	}
	walk(r, 6)
}

func TestRegionBisectDeterministicContentID(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(4))
	r := NewRegion(tr)
	a1, a2 := r.Bisect()
	b1, b2 := r.Bisect()
	if a1.ID() != b1.ID() || a2.ID() != b2.ID() {
		t.Fatal("repeated bisection changed IDs")
	}
	if a1.Weight() != b1.Weight() {
		t.Fatal("repeated bisection changed weights")
	}
	if a1.ID() == a2.ID() {
		t.Fatal("sibling regions share an ID")
	}
}

func TestRegionSizesPartition(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(7))
	r := NewRegion(tr)
	c1, c2 := r.Bisect()
	s1 := c1.(*Region).Size()
	s2 := c2.(*Region).Size()
	if s1+s2 != r.Size() {
		t.Fatalf("region sizes %d + %d != %d", s1, s2, r.Size())
	}
}

func TestRegionRepeatedCutsStayConnected(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(8))
	pool := []bisect.Problem{NewRegion(tr)}
	for step := 0; step < 40; step++ {
		// Bisect the heaviest divisible region (HF-style).
		best := -1
		for i, q := range pool {
			if q.CanBisect() && (best == -1 || q.Weight() > pool[best].Weight()) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c1, c2 := pool[best].Bisect()
		pool[best] = c1
		pool = append(pool, c2)
	}
	// All regions disjoint and jointly covering the tree.
	seen := make([]bool, tr.Size())
	count := 0
	for _, q := range pool {
		q.(*Region).Nodes(func(v int) {
			if seen[v] {
				t.Fatalf("node %d in two regions", v)
			}
			seen[v] = true
			count++
		})
	}
	if count != tr.Size() {
		t.Fatalf("regions cover %d of %d nodes", count, tr.Size())
	}
}

func TestSingleNodeRegionIndivisible(t *testing.T) {
	tr := MustGenerate(GenConfig{MaxDepth: 1, MinDepth: 1, RefineBias: 1, BaseDofs: 1, Seed: 1})
	r := NewRegion(tr)
	c1, c2 := r.Bisect()
	// Keep cutting until single nodes appear; they must refuse to bisect.
	for _, q := range []bisect.Problem{c1, c2} {
		reg := q.(*Region)
		if reg.Size() == 1 {
			if reg.CanBisect() {
				t.Fatal("single-node region claims divisibility")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Bisect on single-node region did not panic")
					}
				}()
				reg.Bisect()
			}()
		}
	}
}

func TestProbeAlpha(t *testing.T) {
	tr := MustGenerate(DefaultGenConfig(9))
	r := NewRegion(tr)
	a := ProbeAlpha(r, 128)
	if a <= 0 || a > 0.5 {
		t.Fatalf("probed α = %v outside (0, 0.5]", a)
	}
	if ProbeAlpha(r, 1) != 0.5 {
		t.Fatal("degenerate probe should return 0.5")
	}
}
