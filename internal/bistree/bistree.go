// Package bistree records the bisection tree of a load-balancing run, the
// representation the paper uses throughout its analysis: "The root of the
// bisection tree T_p is the problem p. If the algorithm bisects a problem q
// into q1 and q2, nodes q1 and q2 are added to T_p as children of node q. In
// the end, T_p has N leaves, which correspond to the subproblems computed by
// the algorithm, and all problems that were bisected appear as internal
// nodes with exactly two children."
package bistree

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one problem in a bisection tree.
type Node struct {
	ID       uint64
	Weight   float64
	Depth    int
	Parent   *Node
	Children [2]*Node // both nil (leaf) or both non-nil (internal)
	Procs    int      // processors assigned by the BA family; 0 when unused
}

// IsLeaf reports whether the node was never bisected.
func (n *Node) IsLeaf() bool { return n.Children[0] == nil && n.Children[1] == nil }

// Tree is a bisection tree under construction or analysis.
type Tree struct {
	Root  *Node
	index map[uint64]*Node
}

// New creates a tree with the given root problem.
func New(rootID uint64, rootWeight float64) *Tree {
	root := &Node{ID: rootID, Weight: rootWeight}
	return &Tree{Root: root, index: map[uint64]*Node{rootID: root}}
}

// Lookup returns the node with the given ID, or nil.
func (t *Tree) Lookup(id uint64) *Node {
	return t.index[id]
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return len(t.index) }

// RecordBisection adds the two children of parentID. It returns an error if
// the parent is unknown, already bisected, or a child ID collides.
func (t *Tree) RecordBisection(parentID uint64, id1 uint64, w1 float64, id2 uint64, w2 float64) error {
	parent := t.index[parentID]
	if parent == nil {
		return fmt.Errorf("bistree: unknown parent %d", parentID)
	}
	if !parent.IsLeaf() {
		return fmt.Errorf("bistree: node %d bisected twice", parentID)
	}
	if _, dup := t.index[id1]; dup {
		return fmt.Errorf("bistree: duplicate node id %d", id1)
	}
	if _, dup := t.index[id2]; dup || id1 == id2 {
		return fmt.Errorf("bistree: duplicate node id %d", id2)
	}
	c1 := &Node{ID: id1, Weight: w1, Depth: parent.Depth + 1, Parent: parent}
	c2 := &Node{ID: id2, Weight: w2, Depth: parent.Depth + 1, Parent: parent}
	parent.Children[0], parent.Children[1] = c1, c2
	t.index[id1], t.index[id2] = c1, c2
	return nil
}

// SetProcs annotates a node with its processor allocation (BA family).
func (t *Tree) SetProcs(id uint64, procs int) error {
	n := t.index[id]
	if n == nil {
		return fmt.Errorf("bistree: unknown node %d", id)
	}
	n.Procs = procs
	return nil
}

// Leaves returns the leaves in deterministic (ID-sorted) order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Walk visits every node in preorder.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		visit(n)
		rec(n.Children[0])
		rec(n.Children[1])
	}
	rec(t.Root)
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int {
	c := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			c++
		}
	})
	return c
}

// NumInternal returns the number of bisected nodes.
func (t *Tree) NumInternal() int {
	return t.Size() - t.NumLeaves()
}

// MaxLeafDepth returns the depth of the deepest leaf (root has depth 0).
func (t *Tree) MaxLeafDepth() int {
	d := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() && n.Depth > d {
			d = n.Depth
		}
	})
	return d
}

// MinLeafDepth returns the depth of the shallowest leaf.
func (t *Tree) MinLeafDepth() int {
	d := -1
	t.Walk(func(n *Node) {
		if n.IsLeaf() && (d < 0 || n.Depth < d) {
			d = n.Depth
		}
	})
	if d < 0 {
		d = 0
	}
	return d
}

// MaxLeafWeight returns the heaviest leaf weight.
func (t *Tree) MaxLeafWeight() float64 {
	m := 0.0
	t.Walk(func(n *Node) {
		if n.IsLeaf() && n.Weight > m {
			m = n.Weight
		}
	})
	return m
}

// CheckInvariants verifies the structural properties the paper's definition
// promises: every internal node has exactly two children (guaranteed by
// construction), children weights sum to the parent within tol relative
// error, and depths are consistent. It returns the first problem found.
func (t *Tree) CheckInvariants(tol float64) error {
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		if n.IsLeaf() {
			return
		}
		c1, c2 := n.Children[0], n.Children[1]
		if c1 == nil || c2 == nil {
			err = fmt.Errorf("bistree: node %d has exactly one child", n.ID)
			return
		}
		if c1.Depth != n.Depth+1 || c2.Depth != n.Depth+1 {
			err = fmt.Errorf("bistree: node %d children depth mismatch", n.ID)
			return
		}
		sum := c1.Weight + c2.Weight
		if diff := sum - n.Weight; diff > tol*n.Weight || -diff > tol*n.Weight {
			err = fmt.Errorf("bistree: node %d weight %g != children sum %g", n.ID, n.Weight, sum)
		}
	})
	return err
}

// DOT renders the tree in Graphviz DOT syntax for debugging and docs.
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("digraph bisection {\n  node [shape=box];\n")
	t.Walk(func(n *Node) {
		label := fmt.Sprintf("w=%.4g", n.Weight)
		if n.Procs > 0 {
			label += fmt.Sprintf("\\nprocs=%d", n.Procs)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, label)
		if !n.IsLeaf() {
			fmt.Fprintf(&b, "  n%d -> n%d;\n  n%d -> n%d;\n", n.ID, n.Children[0].ID, n.ID, n.Children[1].ID)
		}
	})
	b.WriteString("}\n")
	return b.String()
}
