package bistree

import (
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Tree {
	t.Helper()
	tr := New(1, 10)
	if err := tr.RecordBisection(1, 2, 6, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.RecordBisection(2, 4, 3.5, 5, 2.5); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordAndLookup(t *testing.T) {
	tr := buildSmall(t)
	if tr.Size() != 5 {
		t.Fatalf("size = %d", tr.Size())
	}
	if tr.Lookup(4) == nil || tr.Lookup(99) != nil {
		t.Fatal("lookup wrong")
	}
	if tr.Lookup(4).Parent.ID != 2 {
		t.Fatal("parent pointer wrong")
	}
}

func TestRecordErrors(t *testing.T) {
	tr := buildSmall(t)
	if err := tr.RecordBisection(99, 100, 1, 101, 1); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := tr.RecordBisection(1, 100, 1, 101, 1); err == nil {
		t.Fatal("double bisection accepted")
	}
	if err := tr.RecordBisection(3, 2, 1, 101, 1); err == nil {
		t.Fatal("duplicate child id accepted")
	}
	if err := tr.RecordBisection(3, 100, 1, 100, 1); err == nil {
		t.Fatal("equal child ids accepted")
	}
}

func TestLeavesAndCounts(t *testing.T) {
	tr := buildSmall(t)
	leaves := tr.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1].ID >= leaves[i].ID {
			t.Fatal("leaves not ID-sorted")
		}
	}
	if tr.NumLeaves() != 3 || tr.NumInternal() != 2 {
		t.Fatalf("leaf/internal = %d/%d", tr.NumLeaves(), tr.NumInternal())
	}
}

func TestDepths(t *testing.T) {
	tr := buildSmall(t)
	if tr.MaxLeafDepth() != 2 {
		t.Fatalf("max depth = %d", tr.MaxLeafDepth())
	}
	if tr.MinLeafDepth() != 1 {
		t.Fatalf("min depth = %d", tr.MinLeafDepth())
	}
	single := New(1, 5)
	if single.MaxLeafDepth() != 0 || single.MinLeafDepth() != 0 {
		t.Fatal("single-node depths wrong")
	}
}

func TestMaxLeafWeight(t *testing.T) {
	tr := buildSmall(t)
	if got := tr.MaxLeafWeight(); got != 4 {
		t.Fatalf("max leaf weight = %v", got)
	}
}

func TestCheckInvariantsOK(t *testing.T) {
	tr := buildSmall(t)
	if err := tr.CheckInvariants(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsWeightMismatch(t *testing.T) {
	tr := New(1, 10)
	if err := tr.RecordBisection(1, 2, 6, 3, 5); err != nil { // 6+5 != 10
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(1e-9); err == nil {
		t.Fatal("weight mismatch not detected")
	}
}

func TestSetProcs(t *testing.T) {
	tr := buildSmall(t)
	if err := tr.SetProcs(2, 3); err != nil {
		t.Fatal(err)
	}
	if tr.Lookup(2).Procs != 3 {
		t.Fatal("procs not recorded")
	}
	if err := tr.SetProcs(999, 1); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDOT(t *testing.T) {
	tr := buildSmall(t)
	dot := tr.DOT()
	for _, frag := range []string{"digraph", "n1 -> n2", "n2 -> n5", "w=2.5"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestWalkPreorder(t *testing.T) {
	tr := buildSmall(t)
	var order []uint64
	tr.Walk(func(n *Node) { order = append(order, n.ID) })
	want := []uint64{1, 2, 4, 5, 3}
	if len(order) != len(want) {
		t.Fatalf("walk visited %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("preorder %v, want %v", order, want)
		}
	}
}
