// Package bounds implements the worst-case performance guarantees proved in
// the paper. All bounds are expressed as ratios against the ideal uniform
// share w(p)/N, matching the "ratio" reported in the simulation study.
//
// The source text available to this reproduction is an OCR rendering that
// lost sub/superscripts; each formula below is pinned by numeric checkpoints
// stated in the paper's prose (see DESIGN.md §5):
//
//   - HF   (Theorem 2):  r_α = (1/α)·(1−α)^{⌈1/α⌉−2}
//     checkpoints: r_{1/3}=2, r_α<3 for α>1−2^{−1/4}≈0.159, r_α<10 for α≥0.04.
//   - BA   (Theorem 7):  e·(1/α)·(1−α)^{⌈1/(2α)⌉−1} for N>1/α;
//     Lemma 5 handles N ≤ 1/α.
//   - BA-HF(Theorem 8):  e^{(1−α)/κ}·r_α;
//     checkpoint: κ ≥ 1/ln(1+ε) ⇒ guarantee ≤ (1+ε)·r_α.
package bounds

import (
	"fmt"
	"math"
)

// ValidateAlpha returns an error unless 0 < α ≤ 1/2.
func ValidateAlpha(alpha float64) error {
	if math.IsNaN(alpha) || !(alpha > 0) || alpha > 0.5 {
		return fmt.Errorf("bounds: α must satisfy 0 < α ≤ 1/2, got %v", alpha)
	}
	return nil
}

// ValidateKappa returns an error unless κ > 0.
func ValidateKappa(kappa float64) error {
	if math.IsNaN(kappa) || !(kappa > 0) {
		return fmt.Errorf("bounds: κ must be positive, got %v", kappa)
	}
	return nil
}

// RHF returns r_α, the performance guarantee of Algorithm HF (Theorem 2):
//
//	max_i w(p_i) ≤ (w(p)/N) · r_α,   r_α = (1/α)·(1−α)^{(1/α)−2}.
//
// The exponent carries no floor/ceiling: the smooth form is the unique
// reading consistent with every numeric checkpoint the paper's prose
// states — r_{1/3} = 2 exactly, r_α < 3 exactly for α > 1 − 2^{−1/4} ≈
// 0.159 (the smooth formula crosses 3 at that very point; either rounding
// misses the boundary), and r_α < 10 for α ≥ 0.04 (r_{0.04} ≈ 9.78).
// Rounded variants were also falsified empirically during reconstruction:
// HF reaches ratio 2.113 at α≈0.1994 where the ⌈·⌉ form claims 2.061, and
// 1.56 at α≈0.324 where it claims 1.41. The bound is independent of N.
// RHF panics on an invalid α because every caller validates user input
// first; an invalid α here is a programmer error.
func RHF(alpha float64) float64 {
	mustAlpha(alpha)
	return (1 / alpha) * math.Pow(1-alpha, 1/alpha-2)
}

// RHFProvableN returns the elementary N-aware bound N/(1+(N−1)α), provable
// from "every part weighs at least α times the final maximum": HF bisects a
// node only while it is the pool maximum, the pool maximum never increases,
// and an α-bisector leaves each child at least an α-fraction of its parent.
// It converges to 1/α as N grows and is used as an independent cross-check
// on RHF in the test suite.
func RHFProvableN(alpha float64, n int) float64 {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: RHFProvableN needs n ≥ 1")
	}
	return float64(n) / (1 + float64(n-1)*alpha)
}

// BA returns the performance guarantee of Algorithm BA for N processors
// (Theorem 7 for N > 1/α, Lemma 5 for N ≤ 1/α).
func BA(alpha float64, n int) float64 {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: BA needs n ≥ 1")
	}
	if float64(n) <= 1/alpha {
		return BASmallN(alpha, n)
	}
	exp := math.Ceil(1/(2*alpha)) - 1
	return math.E * (1 / alpha) * math.Pow(1-alpha, exp)
}

// BASmallN returns Lemma 5's bound for N ≤ 1/α, as a ratio against w(p)/N:
//
//	max_i w(p_i) ≤ w(p)·(1−α)^{⌊log2 N⌋}   ⇒   ratio ≤ N·(1−α)^{⌊log2 N⌋}.
func BASmallN(alpha float64, n int) float64 {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: BASmallN needs n ≥ 1")
	}
	return float64(n) * math.Pow(1-alpha, math.Floor(math.Log2(float64(n))))
}

// BAHF returns the performance guarantee of Algorithm BA-HF (Theorem 8):
//
//	max_i w(p_i) ≤ (w(p)/N) · e^{(1−α)/κ} · r_α.
func BAHF(alpha, kappa float64) float64 {
	mustAlpha(alpha)
	if !(kappa > 0) {
		panic("bounds: BAHF needs κ > 0")
	}
	return math.Exp((1-alpha)/kappa) * RHF(alpha)
}

// KappaFor returns the smallest κ the paper's closing remark prescribes to
// bring BA-HF within a (1+ε) factor of HF's guarantee: κ = 1/ln(1+ε).
func KappaFor(eps float64) float64 {
	if !(eps > 0) {
		panic("bounds: KappaFor needs ε > 0")
	}
	return 1 / math.Log(1+eps)
}

// HFThreshold returns the weight threshold w(p)·r_α/N that separates PHF's
// two phases: subproblems heavier than the threshold are certainly bisected
// by HF; subproblems at or below w(p)/N certainly are not.
func HFThreshold(total float64, alpha float64, n int) float64 {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: HFThreshold needs n ≥ 1")
	}
	return total * RHF(alpha) / float64(n)
}

// PHFPhase1Depth bounds the bisection-tree depth reached during PHF's first
// phase: a node at depth d weighs at most w(p)·(1−α)^d, and only nodes
// heavier than w(p)·r_α/N are bisected, so D ≤ log_{1/(1−α)}(N/r_α).
func PHFPhase1Depth(alpha float64, n int) int {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: PHFPhase1Depth needs n ≥ 1")
	}
	arg := float64(n) / RHF(alpha)
	if arg <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(arg) / math.Log(1/(1-alpha))))
}

// PHFPhase2Iterations bounds the number of iterations of PHF's second phase:
// each iteration shrinks the maximum weight by (1−α), the gap to close is a
// factor r_α, and (1−α)^{1/α} ≤ 1/e gives I ≤ ⌈(1/α)·ln r_α⌉ ≤
// ⌈(1/α)·ln(1/α)⌉ + O(1). We return the direct bound from the definition.
func PHFPhase2Iterations(alpha float64) int {
	mustAlpha(alpha)
	// Smallest I with r_α·(1−α)^I ≤ 1.
	r := RHF(alpha)
	if r <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(r) / math.Log(1/(1-alpha))))
}

// BADepth bounds the depth of BA's bisection tree: the processor count
// shrinks by at least a factor (1−α/2) along every root-to-leaf path, so the
// depth is at most log_{1/(1−α/2)} N (final text of Section 3.2).
func BADepth(alpha float64, n int) int {
	mustAlpha(alpha)
	if n < 1 {
		panic("bounds: BADepth needs n ≥ 1")
	}
	if n == 1 {
		return 0
	}
	return int(math.Ceil(math.Log(float64(n)) / math.Log(1/(1-alpha/2))))
}

// SubproblemFloor is the trivial lower bound: no partition into N parts can
// have maximum weight below w(p)/N, i.e. the ratio is always ≥ 1.
const SubproblemFloor = 1.0

// CollectiveCost is the model cost of one global communication step
// (broadcast, max-reduce, prefix computation, barrier) on n processors:
// ⌈log2 n⌉ time units, per the paper's PRAM-style assumption.
func CollectiveCost(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(n))))
}

func mustAlpha(alpha float64) {
	if err := ValidateAlpha(alpha); err != nil {
		panic(err)
	}
}
