package bounds

import (
	"math"
	"testing"
)

// The paper's stated numeric checkpoints for r_α (end of Section 2).
func TestRHFPaperCheckpoints(t *testing.T) {
	if got := RHF(1.0 / 3.0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("r_{1/3} = %v, want 2", got)
	}
	// "smaller than 3 for α > 1 − 1/⁴√2 ≈ 0.159"
	for _, a := range []float64{0.16, 0.2, 0.25, 0.3} {
		if got := RHF(a); got >= 3 {
			t.Fatalf("r_%v = %v, want < 3", a, got)
		}
	}
	// "smaller than 10 for α ≥ 0.04"
	for _, a := range []float64{0.04, 0.05, 0.1} {
		if got := RHF(a); got >= 10 {
			t.Fatalf("r_%v = %v, want < 10", a, got)
		}
	}
}

func TestRHFAtHalf(t *testing.T) {
	// Perfect bisectors: ⌈1/0.5⌉−2 = 0, r = 2. HF with exact halving can
	// indeed be a factor 2 off for odd N (e.g. N=3 → parts 1/2, 1/4, 1/4).
	if got := RHF(0.5); math.Abs(got-2) > 1e-12 {
		t.Fatalf("r_0.5 = %v, want 2", got)
	}
}

func TestRHFMonotoneGrowthAsAlphaShrinks(t *testing.T) {
	prev := RHF(0.5)
	for a := 0.45; a > 0.01; a -= 0.001 {
		cur := RHF(a)
		// The ceiling makes r_α piecewise; allow tiny local dips but the
		// trend from α=1/2 to α→0 must be strongly increasing overall.
		_ = cur
		prev = math.Max(prev, cur)
	}
	if prev <= RHF(0.5) {
		t.Fatal("r_α did not grow as α shrinks")
	}
	if RHF(0.01) < 30 {
		t.Fatalf("r_0.01 = %v suspiciously small", RHF(0.01))
	}
}

func TestBABoundRelations(t *testing.T) {
	for _, a := range []float64{0.05, 0.1, 0.2, 1.0 / 3.0, 0.5} {
		hf := RHF(a)
		ba := BA(a, 1<<20)
		if ba <= hf {
			t.Fatalf("α=%v: BA bound %v not worse than HF bound %v", a, ba, hf)
		}
	}
}

func TestBASmallN(t *testing.T) {
	// N = 1: ratio bound is exactly 1 (no bisection happens).
	if got := BASmallN(0.3, 1); got != 1 {
		t.Fatalf("BASmallN(0.3, 1) = %v", got)
	}
	// N = 2 with α: max child is (1−α)w, ratio 2(1−α).
	if got := BASmallN(0.3, 2); math.Abs(got-2*0.7) > 1e-12 {
		t.Fatalf("BASmallN(0.3, 2) = %v, want 1.4", got)
	}
	// BA dispatches to the small-N bound below 1/α.
	if got, want := BA(0.3, 3), BASmallN(0.3, 3); got != want {
		t.Fatalf("BA small-N dispatch: %v != %v", got, want)
	}
}

func TestBAHFKappaCheckpoint(t *testing.T) {
	// κ ≥ 1/ln(1+ε) must bring BA-HF within (1+ε) of HF's guarantee.
	for _, eps := range []float64{0.5, 0.1, 0.01} {
		kappa := KappaFor(eps)
		for _, a := range []float64{0.05, 0.2, 0.4} {
			if got, limit := BAHF(a, kappa), (1+eps)*RHF(a); got > limit+1e-9 {
				t.Fatalf("ε=%v α=%v: BA-HF bound %v exceeds (1+ε)·r = %v", eps, a, got, limit)
			}
		}
	}
}

func TestBAHFMonotoneInKappa(t *testing.T) {
	for _, a := range []float64{0.1, 0.3} {
		if !(BAHF(a, 1) > BAHF(a, 2) && BAHF(a, 2) > BAHF(a, 3)) {
			t.Fatalf("BA-HF bound not decreasing in κ at α=%v", a)
		}
		if BAHF(a, 1e6) > RHF(a)*1.001 {
			t.Fatalf("BA-HF bound does not approach r_α for huge κ at α=%v", a)
		}
	}
}

func TestHFThreshold(t *testing.T) {
	if got, want := HFThreshold(100, 1.0/3.0, 10), 100.0*2/10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
}

func TestPHFPhase1Depth(t *testing.T) {
	if got := PHFPhase1Depth(0.3, 1); got != 0 {
		t.Fatalf("depth for N=1 should be 0, got %d", got)
	}
	d1024 := PHFPhase1Depth(0.3, 1024)
	d32 := PHFPhase1Depth(0.3, 32)
	if d1024 <= d32 {
		t.Fatalf("depth bound not increasing with N: %d vs %d", d32, d1024)
	}
	// O(log N): doubling N adds at most a constant number of levels.
	if diff := PHFPhase1Depth(0.3, 1<<20) - PHFPhase1Depth(0.3, 1<<19); diff > 5 {
		t.Fatalf("phase-1 depth grows too fast: +%d per doubling", diff)
	}
}

func TestPHFPhase2Iterations(t *testing.T) {
	// Independent of N; increasing as α shrinks.
	i1 := PHFPhase2Iterations(0.4)
	i2 := PHFPhase2Iterations(0.1)
	i3 := PHFPhase2Iterations(0.02)
	if !(i1 <= i2 && i2 <= i3) {
		t.Fatalf("iterations not increasing as α shrinks: %d %d %d", i1, i2, i3)
	}
	// The paper's closed form: I ≤ (1/α)·ln(1/α) suffices.
	for _, a := range []float64{0.02, 0.1, 0.3, 0.5} {
		limit := int(math.Ceil(1/a*math.Log(1/a))) + 1
		if got := PHFPhase2Iterations(a); got > limit {
			t.Fatalf("α=%v: %d iterations exceeds paper bound %d", a, got, limit)
		}
	}
}

func TestBADepth(t *testing.T) {
	if BADepth(0.3, 1) != 0 {
		t.Fatal("depth for N=1 should be 0")
	}
	if BADepth(0.3, 1024) < 10 {
		t.Fatal("BA depth bound below log2 N is impossible")
	}
	if diff := BADepth(0.3, 1<<20) - BADepth(0.3, 1<<19); diff > 6 {
		t.Fatalf("BA depth bound grows too fast: +%d per doubling", diff)
	}
}

func TestCollectiveCost(t *testing.T) {
	cases := map[int]int64{1: 0, 2: 1, 3: 2, 4: 2, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CollectiveCost(n); got != want {
			t.Fatalf("CollectiveCost(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 0.51, math.NaN()} {
		if err := ValidateAlpha(a); err == nil {
			t.Fatalf("α=%v accepted", a)
		}
	}
	if err := ValidateAlpha(0.5); err != nil {
		t.Fatal("α=0.5 rejected")
	}
	for _, k := range []float64{0, -2, math.NaN()} {
		if err := ValidateKappa(k); err == nil {
			t.Fatalf("κ=%v accepted", k)
		}
	}
}

func TestPanicsOnProgrammerError(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("RHF(0)", func() { RHF(0) })
	mustPanic("BA(0.3, 0)", func() { BA(0.3, 0) })
	mustPanic("BAHF(0.3, 0)", func() { BAHF(0.3, 0) })
	mustPanic("KappaFor(0)", func() { KappaFor(0) })
	mustPanic("HFThreshold n=0", func() { HFThreshold(1, 0.3, 0) })
	mustPanic("PHFPhase1Depth n=0", func() { PHFPhase1Depth(0.3, 0) })
	mustPanic("BADepth n=0", func() { BADepth(0.3, 0) })
}
