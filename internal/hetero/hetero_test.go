package hetero

import (
	"math"
	"testing"
	"testing/quick"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/xrand"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(nil); err == nil {
		t.Fatal("empty machine accepted")
	}
	if _, err := NewMachine([]float64{1, 0, 2}); err == nil {
		t.Fatal("zero speed accepted")
	}
	if _, err := NewMachine([]float64{1, -1}); err == nil {
		t.Fatal("negative speed accepted")
	}
	if _, err := NewMachine([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite speed accepted")
	}
}

func TestMachineAccessors(t *testing.T) {
	m, err := NewMachine([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.TotalSpeed() != 6 || m.Speed(1) != 1 {
		t.Fatal("accessors wrong")
	}
	if m.capacity(0, 2) != 4 || m.capacity(1, 3) != 3 {
		t.Fatal("capacity prefix wrong")
	}
}

func TestSortedMachine(t *testing.T) {
	m, err := SortedMachine([]float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Speed(0) != 3 || m.Speed(1) != 2 || m.Speed(2) != 1 {
		t.Fatal("not sorted descending")
	}
}

func TestBestCutIsOptimal(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint64) bool {
		rng.Reseed(seed)
		n := 2 + rng.Intn(40)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = rng.InRange(0.5, 8)
		}
		m, err := NewMachine(speeds)
		if err != nil {
			return false
		}
		w2 := rng.InRange(0.1, 5)
		w1 := w2 + rng.InRange(0, 5)
		got := bestCut(w1, w2, m, 0, n)
		cost := func(cut int) float64 {
			return math.Max(w1/m.capacity(0, cut), w2/m.capacity(cut, n))
		}
		best := math.Inf(1)
		for cut := 1; cut < n; cut++ {
			if c := cost(cut); c < best {
				best = c
			}
		}
		return cost(got) <= best*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignSortedOptimal(t *testing.T) {
	// Brute force over all permutations for small instances: the sorted
	// matching must achieve the minimum possible max w_i/s_i.
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = rng.InRange(0.5, 4)
		}
		m, err := NewMachine(speeds)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]bisect.Problem, n)
		for i := range parts {
			parts[i] = bisect.MustSynthetic(rng.InRange(0.1, 3), 0.1, 0.5, rng.Uint64())
		}
		as := AssignSorted(parts, m)
		got := 0.0
		for _, a := range as {
			if a.Time > got {
				got = a.Time
			}
		}
		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				mk := 0.0
				for i, pi := range perm {
					if t := parts[i].Weight() / m.Speed(pi); t > mk {
						mk = t
					}
				}
				if mk < best {
					best = mk
				}
				return
			}
			for j := k; j < n; j++ {
				perm[k], perm[j] = perm[j], perm[k]
				rec(k + 1)
				perm[k], perm[j] = perm[j], perm[k]
			}
		}
		rec(0)
		if got > best*(1+1e-12) {
			t.Fatalf("trial %d: sorted matching %v worse than optimum %v", trial, got, best)
		}
	}
}

func TestBAContract(t *testing.T) {
	m, err := SortedMachine([]float64{8, 4, 4, 2, 2, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := bisect.MustSynthetic(1, 0.1, 0.5, 7)
	res, err := BA(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) > m.N() {
		t.Fatalf("%d assignments for %d processors", len(res.Assignments), m.N())
	}
	// Ranges must partition [0, N).
	covered := make([]bool, m.N())
	sum := 0.0
	for _, a := range res.Assignments {
		for i := a.Lo; i < a.Hi; i++ {
			if covered[i] {
				t.Fatalf("processor %d assigned twice", i)
			}
			covered[i] = true
		}
		sum += a.Problem.Weight()
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("processor %d unassigned", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if res.Ratio < 1-1e-9 {
		t.Fatalf("ratio %v below 1", res.Ratio)
	}
}

func TestBAAdaptsToSpeeds(t *testing.T) {
	// One fast and many slow processors: the fast one must end with a
	// share well above 1/N of the weight.
	speeds := []float64{16, 1, 1, 1, 1, 1, 1, 1}
	m, err := NewMachine(speeds)
	if err != nil {
		t.Fatal(err)
	}
	p := bisect.MustSynthetic(1, 0.2, 0.5, 9)
	res, err := BA(p, m)
	if err != nil {
		t.Fatal(err)
	}
	var fastShare float64
	for _, a := range res.Assignments {
		if a.Lo == 0 {
			fastShare = a.Problem.Weight() / float64(a.Hi-a.Lo)
			// The range containing processor 0 may span several procs;
			// what matters is the load landing on the fast range.
			fastShare = a.Problem.Weight()
		}
	}
	if fastShare < 2.0/8 {
		t.Fatalf("fast processor range got share %v, expected far above 1/8", fastShare)
	}
	// And on average the speed-aware split must clearly beat a
	// speed-blind one: homogeneous BA parts dealt to processors in index
	// order on the same machine.
	var heteroSum, blindSum float64
	for seed := uint64(0); seed < 50; seed++ {
		hres, err := BA(bisect.MustSynthetic(1, 0.2, 0.5, seed), m)
		if err != nil {
			t.Fatal(err)
		}
		heteroSum += hres.Makespan

		bres, err := core.BA(bisect.MustSynthetic(1, 0.2, 0.5, seed), m.N(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		blind := 0.0
		for i, pt := range bres.Parts {
			if tt := pt.Problem.Weight() / m.Speed(i%m.N()); tt > blind {
				blind = tt
			}
		}
		blindSum += blind
	}
	if heteroSum >= 0.7*blindSum {
		t.Fatalf("speed-aware splitting not clearly better: %v vs speed-blind %v",
			heteroSum/50, blindSum/50)
	}
}

func TestHFSortedAssignment(t *testing.T) {
	m, err := NewMachine([]float64{1, 5, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p := bisect.MustSynthetic(1, 0.1, 0.5, 11)
	res, err := HF(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	// Heaviest part must sit on the fastest processor (index 1).
	heaviest := res.Assignments[0]
	for _, a := range res.Assignments[1:] {
		if a.Problem.Weight() > heaviest.Problem.Weight() {
			heaviest = a
		}
	}
	if heaviest.Lo != 1 {
		t.Fatalf("heaviest part on processor %d, want 1 (the fastest)", heaviest.Lo)
	}
	if res.Bisections != 3 {
		t.Fatalf("bisections = %d", res.Bisections)
	}
}

func TestUniformSpeedsReduceToHomogeneous(t *testing.T) {
	// With all speeds equal, hetero-BA's ratio must match homogeneous
	// BA's on the same instance.
	speeds := make([]float64, 64)
	for i := range speeds {
		speeds[i] = 1
	}
	m, err := NewMachine(speeds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BA(bisect.MustSynthetic(1, 0.1, 0.5, 13), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 || res.Ratio > 20 {
		t.Fatalf("implausible uniform ratio %v", res.Ratio)
	}
	// Ideal = w/N, makespan = max part weight; ratio equals the
	// homogeneous quality measure.
	maxW := 0.0
	for _, a := range res.Assignments {
		if w := a.Problem.Weight(); w > maxW {
			maxW = w
		}
	}
	if math.Abs(res.Ratio-maxW*64) > 1e-9 {
		t.Fatalf("uniform ratio %v != N·max %v", res.Ratio, maxW*64)
	}
}

func TestErrors(t *testing.T) {
	m, _ := NewMachine([]float64{1, 2})
	if _, err := BA(nil, m); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := BA(bisect.MustSynthetic(1, 0.1, 0.5, 1), nil); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := HF(bisect.MustSynthetic(1, 0.1, 0.5, 1), nil); err == nil {
		t.Fatal("nil machine accepted")
	}
}
