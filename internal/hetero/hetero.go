// Package hetero extends the paper's framework to heterogeneous
// processors — an extension the paper's uniform-processor model invites:
// when processor i has speed s_i, the quantity to minimise is the parallel
// completion time max_i w_i/s_i, and the ideal value is w(p)/S with
// S = Σ s_i.
//
// Two algorithms are provided, mirroring the homogeneous pair:
//
//   - BA generalises directly: instead of splitting an integer processor
//     count proportionally to child weights, the processor *range* is split
//     at the capacity prefix best approximating the weight ratio.
//   - HF keeps its heaviest-first bisection until one part per processor
//     exists and then assigns parts to processors by sorted matching
//     (heaviest part to fastest processor), which is optimal among
//     assignments of N parts to N processors by the rearrangement
//     argument (see AssignSorted).
package hetero

import (
	"fmt"
	"math"
	"sort"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
)

// Machine is an ordered set of processors with positive speeds. The order
// is the range order used by BA's range-based management; callers who want
// BA to favour fast processors for heavy subtrees should sort speeds in
// descending order first (SortedMachine does).
type Machine struct {
	speeds []float64
	prefix []float64 // prefix[i] = sum of speeds[0:i]
}

// NewMachine validates speeds and builds the capacity prefix.
func NewMachine(speeds []float64) (*Machine, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("hetero: no processors")
	}
	m := &Machine{
		speeds: append([]float64(nil), speeds...),
		prefix: make([]float64, len(speeds)+1),
	}
	for i, s := range speeds {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("hetero: speed %v of processor %d must be positive and finite", s, i)
		}
		m.prefix[i+1] = m.prefix[i] + s
	}
	return m, nil
}

// SortedMachine builds a machine with speeds sorted in descending order, so
// the front of every BA range is its fastest processor.
func SortedMachine(speeds []float64) (*Machine, error) {
	s := append([]float64(nil), speeds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return NewMachine(s)
}

// N returns the processor count.
func (m *Machine) N() int { return len(m.speeds) }

// Speed returns processor i's speed.
func (m *Machine) Speed(i int) float64 { return m.speeds[i] }

// TotalSpeed returns S = Σ s_i.
func (m *Machine) TotalSpeed() float64 { return m.prefix[len(m.speeds)] }

// capacity returns the total speed of the range [lo, hi).
func (m *Machine) capacity(lo, hi int) float64 { return m.prefix[hi] - m.prefix[lo] }

// Assignment maps one subproblem to one processor range.
type Assignment struct {
	Problem bisect.Problem
	// Procs is the processor index range [Lo, Hi) serving the problem;
	// for HF results the range has width 1.
	Lo, Hi int
	// Time is the problem's completion time w / capacity(Lo, Hi).
	Time float64
}

// Result is a heterogeneous balancing outcome.
type Result struct {
	Algorithm   string
	Assignments []Assignment
	// Makespan is max over assignments of w/capacity.
	Makespan float64
	// Ideal is w(p)/S, the lower bound on any makespan.
	Ideal float64
	// Ratio is Makespan/Ideal, the heterogeneous analogue of the paper's
	// quality measure.
	Ratio      float64
	Bisections int
}

func finish(alg string, as []Assignment, total, totalSpeed float64, bisections int) *Result {
	mk := 0.0
	for i := range as {
		if as[i].Time > mk {
			mk = as[i].Time
		}
	}
	ideal := total / totalSpeed
	return &Result{
		Algorithm:   alg,
		Assignments: as,
		Makespan:    mk,
		Ideal:       ideal,
		Ratio:       mk / ideal,
		Bisections:  bisections,
	}
}

// BA runs the heterogeneous Best Approximation algorithm: bisect the
// problem, cut the processor range at the capacity prefix minimising
// max(w1/cap1, w2/cap2), recurse. Like homogeneous BA it needs no α and no
// global communication, and the range-based free-processor management
// carries over verbatim.
func BA(p bisect.Problem, m *Machine) (*Result, error) {
	if err := bisect.ValidateRoot(p); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("hetero: nil machine")
	}
	total := p.Weight()
	var out []Assignment
	bisections := 0
	var recurse func(q bisect.Problem, lo, hi int)
	recurse = func(q bisect.Problem, lo, hi int) {
		if hi-lo == 1 || !q.CanBisect() {
			out = append(out, Assignment{
				Problem: q, Lo: lo, Hi: hi,
				Time: q.Weight() / m.capacity(lo, hi),
			})
			return
		}
		c1, c2 := q.Bisect()
		bisections++
		if c1.Weight() < c2.Weight() {
			c1, c2 = c2, c1
		}
		cut := bestCut(c1.Weight(), c2.Weight(), m, lo, hi)
		recurse(c1, lo, cut)
		recurse(c2, cut, hi)
	}
	recurse(p, 0, m.N())
	return finish("hetero-BA", out, total, m.TotalSpeed(), bisections), nil
}

// bestCut returns the cut index in (lo, hi) minimising
// max(w1/cap(lo,cut), w2/cap(cut,hi)). The objective is unimodal in the
// cut (left term decreases, right term increases), so a binary search over
// the crossing point followed by a two-candidate comparison finds the
// optimum in O(log(hi−lo)).
func bestCut(w1, w2 float64, m *Machine, lo, hi int) int {
	// Find the smallest cut where w1/cap(lo,cut) ≤ w2/cap(cut,hi);
	// candidates are that cut and its predecessor.
	left, right := lo+1, hi-1
	for left < right {
		mid := (left + right) / 2
		if w1/m.capacity(lo, mid) <= w2/m.capacity(mid, hi) {
			right = mid
		} else {
			left = mid + 1
		}
	}
	best := left
	cost := func(cut int) float64 {
		return math.Max(w1/m.capacity(lo, cut), w2/m.capacity(cut, hi))
	}
	if prev := left - 1; prev > lo && cost(prev) < cost(best) {
		best = prev
	}
	return best
}

// HF runs the paper's HF to produce one part per processor and then
// assigns parts to processors with AssignSorted. It returns an error if
// the underlying HF fails.
func HF(p bisect.Problem, m *Machine) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("hetero: nil machine")
	}
	res, err := core.HF(p, m.N(), core.Options{})
	if err != nil {
		return nil, err
	}
	parts := make([]bisect.Problem, len(res.Parts))
	for i, pt := range res.Parts {
		parts[i] = pt.Problem
	}
	as := AssignSorted(parts, m)
	out := finish("hetero-HF", as, p.Weight(), m.TotalSpeed(), res.Bisections)
	return out, nil
}

// AssignSorted assigns parts to individual processors: the k-th heaviest
// part goes to the k-th fastest processor. Among all one-to-one
// assignments of len(parts) parts to the len(parts) fastest processors
// this minimises max w_i/s_i: in any optimal assignment, swapping two
// pairs that violate the sorted order can only lower (never raise) the
// maximum of the two quotients, so sorting is optimal (rearrangement
// argument). Extra processors idle, as in the paper's model.
func AssignSorted(parts []bisect.Problem, m *Machine) []Assignment {
	type idx struct {
		i int
		v float64
	}
	ps := make([]idx, len(parts))
	for i, p := range parts {
		ps[i] = idx{i, p.Weight()}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v > ps[b].v })
	procs := make([]idx, m.N())
	for i := 0; i < m.N(); i++ {
		procs[i] = idx{i, m.Speed(i)}
	}
	sort.Slice(procs, func(a, b int) bool { return procs[a].v > procs[b].v })

	out := make([]Assignment, len(parts))
	for k, part := range ps {
		proc := procs[k]
		out[part.i] = Assignment{
			Problem: parts[part.i],
			Lo:      proc.i, Hi: proc.i + 1,
			Time: parts[part.i].Weight() / proc.v,
		}
	}
	return out
}
