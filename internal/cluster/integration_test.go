package cluster_test

// The 3-node integration tests: cluster.Node wired to service.Server the
// way cmd/lbserve wires them, exercised over real HTTP. These are the
// acceptance tests of the cluster subsystem: a key is planned exactly
// once cluster-wide under concurrent misses on every node, and killing a
// node mid-traffic leaves every key servable by the survivors.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bisectlb/internal/cluster"
	"bisectlb/internal/service"
)

// clusterNode is one wired node: the HTTP serving tier plus its peer.
type clusterNode struct {
	srv  *service.Server
	node *cluster.Node
	url  string
}

func startClusterNodes(t *testing.T, k int) []*clusterNode {
	t.Helper()
	out := make([]*clusterNode, k)
	for i := range out {
		srv := service.New(service.Config{Workers: 2})
		node, err := cluster.Start(cluster.Config{
			Addr:         "127.0.0.1:0",
			Heartbeat:    25 * time.Millisecond,
			DeadAfter:    150 * time.Millisecond,
			PeerTimeout:  2 * time.Second,
			ReplInterval: 50 * time.Millisecond,
			Registry:     srv.Registry(),
			Fill:         srv.ClusterFill,
			Store:        srv.ClusterStore,
			Load:         srv.ClusterLoad,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		t.Cleanup(node.Close)
		srv.SetCluster(node)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		out[i] = &clusterNode{srv: srv, node: node, url: "http://" + addr.String()}
	}
	// Static full membership, as lbserve -peers would configure.
	for i := 1; i < k; i++ {
		if err := out[i].node.Join(out[0].node.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	// Wait until every ring sees all k members.
	deadline := time.Now().Add(3 * time.Second)
	for {
		converged := true
		for _, n := range out {
			if n.srv.Registry().Gauge("service.cluster.live").Value() != int64(k) {
				converged = false
			}
		}
		if converged {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatal("rings did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func balanceBody(seed uint64, n int) []byte {
	return []byte(fmt.Sprintf(
		`{"spec":{"family":"uniform","lo":0.3,"hi":0.5,"seed":%d},"n":%d,"algorithm":"BA"}`, seed, n))
}

func postBalance(url string, body []byte) (int, string, error) {
	resp, err := http.Post(url+"/v1/balance", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), nil
}

func plansComputedTotal(nodes []*clusterNode) int64 {
	var total int64
	for _, n := range nodes {
		total += n.srv.Registry().Counter("service.plans_computed").Value()
	}
	return total
}

// TestClusterExactlyOncePlanning is the tentpole acceptance test:
// concurrent misses for one key on ALL nodes run the planner exactly
// once cluster-wide — local singleflight on each node plus owner routing
// collapse 24 concurrent requests into one computePlan call.
func TestClusterExactlyOncePlanning(t *testing.T) {
	nodes := startClusterNodes(t, 3)
	body := balanceBody(42, 64)

	var wg sync.WaitGroup
	errs := make(chan error, 3*8)
	for _, n := range nodes {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				code, respBody, err := postBalance(url, body)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", code, respBody)
				}
			}(n.url)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if total := plansComputedTotal(nodes); total != 1 {
		t.Fatalf("cluster computed the plan %d times, want exactly 1", total)
	}
	// Every repeat request is now a cache hit somewhere: local on the
	// proxying nodes (the fetched plan was installed) and on the owner.
	for i, n := range nodes {
		code, respBody, err := postBalance(n.url, body)
		if err != nil || code != http.StatusOK {
			t.Fatalf("node %d repeat: code=%d err=%v", i, code, err)
		}
		var resp struct {
			Signature string `json:"signature"`
		}
		if err := json.Unmarshal([]byte(respBody), &resp); err != nil || resp.Signature == "" {
			t.Fatalf("node %d: bad response %q", i, respBody)
		}
	}
	if total := plansComputedTotal(nodes); total != 1 {
		t.Fatalf("repeat traffic recomputed: %d total executions", total)
	}
	// The proxy path actually ran: at least one node fetched remotely.
	var proxied int64
	for _, n := range nodes {
		proxied += n.srv.Registry().Counter("service.cluster.proxied").Value()
	}
	if proxied == 0 {
		t.Fatal("no request was proxied — the test did not exercise the peer path")
	}
}

// TestClusterDistinctKeysSpreadOwnership sanity-checks the sharding:
// many distinct keys driven through one node are computed across the
// cluster (remote fills happen), and each key exactly once.
func TestClusterDistinctKeysSpreadOwnership(t *testing.T) {
	nodes := startClusterNodes(t, 3)
	const keys = 24
	for i := 0; i < keys; i++ {
		code, respBody, err := postBalance(nodes[0].url, balanceBody(uint64(1000+i), 32))
		if err != nil || code != http.StatusOK {
			t.Fatalf("key %d: code=%d err=%v body=%s", i, code, err, respBody)
		}
	}
	if total := plansComputedTotal(nodes); total != keys {
		t.Fatalf("computed %d plans for %d distinct keys", total, keys)
	}
	remote := nodes[0].srv.Registry().Counter("service.cluster.proxied").Value()
	if remote == 0 {
		t.Fatal("24 distinct keys all landed on node 0 — ownership is not spreading")
	}
}

// TestClusterFailoverServesEveryKey kills one node and checks the
// survivors keep serving its key range (failover to local compute or a
// new owner), with the ring healed.
func TestClusterFailoverServesEveryKey(t *testing.T) {
	nodes := startClusterNodes(t, 3)
	victim := nodes[2]
	victim.node.Close()

	// Survivors notice the death and shrink the ring.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if nodes[0].srv.Registry().Gauge("service.cluster.live").Value() == 2 &&
			nodes[1].srv.Registry().Gauge("service.cluster.live").Value() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never excluded the dead peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every key is servable by both survivors, whichever range it was in.
	for i := 0; i < 24; i++ {
		for j, n := range nodes[:2] {
			code, respBody, err := postBalance(n.url, balanceBody(uint64(5000+i), 16))
			if err != nil || code != http.StatusOK {
				t.Fatalf("survivor %d key %d: code=%d err=%v body=%s", j, i, code, err, respBody)
			}
		}
	}

	// /healthz on a survivor reports the cluster view with the dead peer.
	resp, err := http.Get(nodes[0].url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var hz struct {
		Cluster struct {
			Self  string `json:"self"`
			Live  int    `json:"live"`
			Peers []struct {
				Addr  string `json:"addr"`
				Alive bool   `json:"alive"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatalf("healthz: %v (%s)", err, raw)
	}
	if hz.Cluster.Live != 2 || len(hz.Cluster.Peers) != 2 {
		t.Fatalf("healthz cluster view: %s", raw)
	}
	deadSeen := false
	for _, p := range hz.Cluster.Peers {
		if p.Addr == victim.node.Addr() && !p.Alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("dead peer not reported in healthz: %s", raw)
	}
	if !strings.Contains(string(raw), `"snapshot"`) {
		t.Fatalf("healthz missing snapshot status: %s", raw)
	}
}
