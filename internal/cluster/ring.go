package cluster

import (
	"sort"
	"strconv"
)

// ringSeed fixes the virtual-node hash so every peer, every process and
// every test derives the identical ring from the same member list.
const ringSeed = 0x9e3779b97f4a7c15

// DefaultVirtualNodes is the per-member virtual-node count. More vnodes
// smooth the key-range split between members at the cost of a larger
// sorted point array; 64 keeps the max/min owned-range ratio near 1.3
// for small clusters.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over member addresses.
// Lookups binary-search the sorted virtual-node points; membership
// changes build a new ring (they are rare — a join, a death, a revival)
// so readers never take a lock.
type Ring struct {
	points  []ringPoint
	members []string // sorted, for Members and stable iteration
	vnodes  int
}

type ringPoint struct {
	hash   uint64
	member string
}

// fnv1a64 is the same inline FNV-1a the service uses for spec keys;
// duplicated here (it is four lines) to keep cluster free of a service
// dependency.
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalises a point hash (splitmix64's mixer): FNV alone clusters
// the vnode points of one member because consecutive "#i" suffixes
// differ in few bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash places virtual node i of a member on the ring.
func pointHash(member string, i int) uint64 {
	return mix64(fnv1a64(member+"#"+strconv.Itoa(i)) ^ ringSeed)
}

// BuildRing constructs the ring for the given live members. vnodes < 1
// uses DefaultVirtualNodes. Duplicate members are collapsed. An empty
// member list yields a ring that owns nothing (Owner returns "", false).
func BuildRing(members []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: uniq,
		vnodes:  vnodes,
	}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit point collision is ~never, but break it
		// deterministically so every peer agrees on the ring.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the ring's live members, sorted.
func (r *Ring) Members() []string { return r.members }

// Size returns the live member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning hash: the member of the first virtual
// node at or clockwise-after the hash, wrapping at the top. ok is false
// on an empty ring.
func (r *Ring) Owner(hash uint64) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// Successors returns up to n distinct members starting at hash's owner
// and continuing clockwise — Successors(h, 2)[1] is the member that
// inherits h if its owner dies, i.e. the natural hot-key replication
// target.
func (r *Ring) Successors(hash uint64, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
