package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeBackend is a stub serving layer: a thread-safe key→plan map whose
// Fill "computes" deterministically and counts executions.
type fakeBackend struct {
	mu       sync.Mutex
	store    map[string][]byte
	computed int
}

func newFakeBackend() *fakeBackend { return &fakeBackend{store: make(map[string][]byte)} }

func (b *fakeBackend) fill(_ context.Context, key string, body []byte) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.store[key]; ok {
		return p, true, nil
	}
	b.computed++
	p := []byte("plan(" + key + "|" + string(body) + ")")
	b.store[key] = p
	return p, false, nil
}

func (b *fakeBackend) put(key string, plan []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store[key] = append([]byte(nil), plan...)
	return true
}

func (b *fakeBackend) get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.store[key]
	return p, ok
}

// testCluster boots k nodes with fake backends on loopback, wired with
// fast failure-detection timings.
func testCluster(t *testing.T, k int, tweak func(i int, cfg *Config)) ([]*Node, []*fakeBackend) {
	t.Helper()
	nodes := make([]*Node, k)
	backends := make([]*fakeBackend, k)
	addrs := make([]string, 0, k)
	for i := range nodes {
		b := newFakeBackend()
		cfg := Config{
			Addr:         "127.0.0.1:0",
			Heartbeat:    25 * time.Millisecond,
			DeadAfter:    150 * time.Millisecond,
			PeerTimeout:  2 * time.Second,
			ReplInterval: 50 * time.Millisecond,
			Fill:         b.fill,
			Store:        b.put,
			Load:         b.get,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		t.Cleanup(n.Close)
		nodes[i] = n
		backends[i] = b
		addrs = append(addrs, n.Addr())
	}
	// Static membership: tell everyone about everyone.
	for _, n := range nodes {
		n.adoptMembers(strings.Join(addrs, "\n"))
	}
	return nodes, backends
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterOwnershipConsensusAndFetch(t *testing.T) {
	nodes, backends := testCluster(t, 3, nil)
	// Every node derives the same owner for every key, and exactly one
	// node claims ownership.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		hash := fnv1a64(key)
		owner0, _ := nodes[0].Owner(hash)
		owners := 0
		for _, n := range nodes {
			o, self := n.Owner(hash)
			if o != owner0 {
				t.Fatalf("key %s: owner views diverge (%s vs %s)", key, o, owner0)
			}
			if self != (n.Addr() == owner0) {
				t.Fatalf("key %s: self flag inconsistent on %s", key, n.Addr())
			}
			if n.Owns(hash) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %s: %d nodes claim ownership", key, owners)
		}
	}

	// A fetch from a non-owner computes once on the owner; a second
	// fetch is a cluster-wide hit.
	key, body := "fetch-me", []byte(`{"n":4}`)
	hash := fnv1a64(key)
	var nonOwner, ownerIdx = -1, -1
	for i, n := range nodes {
		if n.Owns(hash) {
			ownerIdx = i
		} else if nonOwner < 0 {
			nonOwner = i
		}
	}
	plan, cached, err := nodes[nonOwner].Fetch(context.Background(), key, hash, body)
	if err != nil || cached {
		t.Fatalf("first fetch: cached=%v err=%v", cached, err)
	}
	if string(plan) == "" || backends[ownerIdx].computed != 1 {
		t.Fatalf("owner computed %d times, want 1", backends[ownerIdx].computed)
	}
	plan2, cached2, err := nodes[nonOwner].Fetch(context.Background(), key, hash, body)
	if err != nil || !cached2 || string(plan2) != string(plan) {
		t.Fatalf("second fetch: cached=%v err=%v plan match=%v", cached2, err, string(plan2) == string(plan))
	}
	if backends[ownerIdx].computed != 1 {
		t.Fatalf("owner recomputed: %d executions", backends[ownerIdx].computed)
	}
	// Fetching an owned key is a caller bug the node refuses loudly.
	if _, _, err := nodes[ownerIdx].Fetch(context.Background(), key, hash, body); err == nil {
		t.Fatal("owner-side Fetch must refuse")
	}
}

func TestClusterFailoverOnDeath(t *testing.T) {
	nodes, _ := testCluster(t, 3, nil)
	key := "doomed-key"
	hash := fnv1a64(key)
	owner, _ := nodes[0].Owner(hash)
	var victim *Node
	var survivors []*Node
	for _, n := range nodes {
		if n.Addr() == owner {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	victim.Close()
	// Survivors must converge on excluding the victim and agree on a new
	// owner among themselves.
	waitFor(t, 3*time.Second, "ring to exclude the dead peer", func() bool {
		for _, n := range survivors {
			r := n.ring.Load()
			if r.Size() != 2 {
				return false
			}
			for _, m := range r.Members() {
				if m == owner {
					return false
				}
			}
		}
		return true
	})
	newOwner, _ := survivors[0].Owner(hash)
	if newOwner == owner {
		t.Fatal("dead peer still owns its range")
	}
	o2, _ := survivors[1].Owner(hash)
	if o2 != newOwner {
		t.Fatalf("survivors disagree on the failover owner: %s vs %s", newOwner, o2)
	}
	// The key range is servable end to end: a survivor that doesn't own
	// the key fetches it from the new owner.
	for _, n := range survivors {
		if n.Owns(hash) {
			continue
		}
		if _, _, err := n.Fetch(context.Background(), key, hash, []byte("{}")); err != nil {
			t.Fatalf("fetch after failover: %v", err)
		}
	}
	if d := survivors[0].Metrics().Counter(mDeaths).Value(); d < 1 {
		t.Fatalf("death counter = %d, want ≥ 1", d)
	}
}

func TestClusterJoinAndGossip(t *testing.T) {
	nodes, _ := testCluster(t, 2, nil)
	late, err := Start(Config{
		Addr:      "127.0.0.1:0",
		Heartbeat: 25 * time.Millisecond,
		DeadAfter: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Close)
	if err := late.Join(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "all three rings to converge", func() bool {
		for _, n := range append(nodes, late) {
			if n.ring.Load().Size() != 3 {
				return false
			}
		}
		return true
	})
	// Post-join, ownership is consistent across old and new members.
	for i := 0; i < 50; i++ {
		hash := fnv1a64(fmt.Sprintf("post-join-%d", i))
		want, _ := late.Owner(hash)
		for _, n := range nodes {
			if got, _ := n.Owner(hash); got != want {
				t.Fatalf("post-join owner divergence: %s vs %s", got, want)
			}
		}
	}
}

func TestClusterHotKeyReplication(t *testing.T) {
	nodes, backends := testCluster(t, 3, func(_ int, cfg *Config) {
		cfg.HotKeys = 4
	})
	key := "hot-key"
	hash := fnv1a64(key)
	var owner *Node
	var ownerIdx int
	for i, n := range nodes {
		if n.Owns(hash) {
			owner, ownerIdx = n, i
		}
	}
	backends[ownerIdx].put(key, []byte("hot-plan"))
	for i := 0; i < 32; i++ {
		owner.Touch(key, hash)
	}
	// The ring successor must receive the replica.
	r := owner.ring.Load()
	succ := r.Successors(hash, 2)[1]
	var succBackend *fakeBackend
	for i, n := range nodes {
		if n.Addr() == succ {
			succBackend = backends[i]
		}
	}
	waitFor(t, 3*time.Second, "hot key to replicate to the successor", func() bool {
		p, ok := succBackend.get(key)
		return ok && string(p) == "hot-plan"
	})
	// The successor stores the replica before its ack reaches the owner,
	// so the counter can lag the visible replica — wait, don't assert
	// one-shot.
	waitFor(t, 3*time.Second, "replication push to be acked", func() bool {
		return owner.Metrics().Counter(mReplPushed).Value() >= 1
	})
}

func TestClusterSingleNodeOwnsEverything(t *testing.T) {
	n, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 32; i++ {
		if !n.Owns(fnv1a64(fmt.Sprintf("solo-%d", i))) {
			t.Fatal("single-node cluster must own every key")
		}
	}
	h := n.Healthz()
	if h["self"] == "" || h["live"].(int) != 1 {
		t.Fatalf("healthz = %v", h)
	}
}
