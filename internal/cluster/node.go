package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bisectlb/internal/dist"
	"bisectlb/internal/netcoll"
	"bisectlb/internal/obs"
)

// Config parameterises a cluster Node. Addr is required; everything else
// has serving-grade defaults.
type Config struct {
	// Addr is the peer-protocol listen address (port 0 picks a free one).
	Addr string
	// Advertise is the address peers use to reach this node; default is
	// the bound listen address (correct for loopback and tests; set it
	// when listening on a wildcard address).
	Advertise string
	// Peers is the static membership list (advertised addresses,
	// including or excluding self — self is always a member). Empty with
	// no Join target means a single-node cluster that owns every key.
	Peers []string
	// VNodes is the virtual-node count per member (default
	// DefaultVirtualNodes).
	VNodes int
	// Heartbeat is the peer beat interval (default 250ms); DeadAfter the
	// silence after which a peer leaves the ring (default 4×Heartbeat).
	// Classification uses the dist failure detector's rule.
	Heartbeat time.Duration
	DeadAfter time.Duration
	// PeerTimeout bounds one peer round trip (default 1s).
	PeerTimeout time.Duration
	// HotKeys is how many of this node's hottest owned keys are
	// replicated to ring successors each replication interval (default
	// 16; negative disables replication).
	HotKeys int
	// ReplInterval is the hot-key replication cadence (default 1s).
	ReplInterval time.Duration
	// Replicas is how many distinct successors receive each hot key
	// (default 1 — the peer that inherits the range on failover).
	Replicas int
	// Registry receives the service.cluster.* metrics (default fresh).
	Registry *obs.Registry

	// Fill produces the plan for a canonical key on the owner: called
	// when a peer proxies a miss here. body is the canonical JSON
	// balance request; cached reports whether the plan came from the
	// local cache (a cluster-wide hit).
	Fill func(ctx context.Context, key string, body []byte) (plan []byte, cached bool, err error)
	// Store installs a replicated plan into the local cache; it returns
	// false if the payload was rejected.
	Store func(key string, plan []byte) bool
	// Load reads a cache entry back for replication.
	Load func(key string) ([]byte, bool)
}

func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = DefaultVirtualNodes
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4 * c.Heartbeat
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = time.Second
	}
	if c.HotKeys == 0 {
		c.HotKeys = 16
	}
	if c.ReplInterval <= 0 {
		c.ReplInterval = time.Second
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// ErrNoOwner reports a fetch attempted with no live owner to ask.
var ErrNoOwner = errors.New("cluster: no live owner for key")

// maxHotTracked bounds the hot-key accounting map; beyond it, new keys
// are not tracked until decay frees slots (the hottest keys, by
// definition, are already in the map).
const maxHotTracked = 4096

type hotKey struct {
	hash  uint64
	count uint64
}

// Node is one cluster member: the peer server, the membership/liveness
// state, the ring, and the hot-key replicator. Create with Start, stop
// with Close. Node implements the service layer's PeerCluster interface.
type Node struct {
	cfg    Config
	self   string
	reg    *obs.Registry
	srv    *peerServer
	client *peerClient
	beats  *dist.BeatTable
	ring   atomic.Pointer[Ring]

	mu      sync.Mutex
	members map[string]bool // every known member incl. self and the dead
	hot     map[string]*hotKey

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Start boots a node: listener up, membership seeded from cfg.Peers,
// heartbeat/reaper/replication loops running. Call Join afterwards to
// enter an existing cluster through one seed peer instead of (or in
// addition to) a static list.
func Start(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		reg:     cfg.Registry,
		beats:   dist.NewBeatTable(dist.BeatRule{Heartbeat: cfg.Heartbeat, DeadAfter: cfg.DeadAfter}),
		members: make(map[string]bool),
		hot:     make(map[string]*hotKey),
		done:    make(chan struct{}),
	}
	srv, err := newPeerServer(cfg.Addr, n.handleFrame, n.reg)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	n.self = cfg.Advertise
	if n.self == "" {
		n.self = srv.addr()
	}
	n.client = newPeerClient(cfg.PeerTimeout, n.reg)
	n.members[n.self] = true
	now := time.Now()
	for _, p := range cfg.Peers {
		n.addMemberLocked(p, now)
	}
	n.rebuildRing()
	n.wg.Add(2)
	go n.heartbeatLoop()
	go n.replLoop()
	return n, nil
}

// Addr returns this node's advertised peer address.
func (n *Node) Addr() string { return n.self }

// Metrics returns the node's metric registry.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// addMemberLocked registers a member. Registration seeds the beat table
// (counts as liveness), so a configured peer that never comes up is
// declared dead DeadAfter later instead of lingering unknown. Caller
// holds n.mu or is the constructor.
func (n *Node) addMemberLocked(addr string, now time.Time) bool {
	if addr == "" || addr == n.self || n.members[addr] {
		return false
	}
	n.members[addr] = true
	n.beats.BeatAt(addr, now)
	return true
}

// Join contacts seed, adopts its membership view, and announces this
// node; the seed gossips the updated list to the rest of the cluster.
func (n *Node) Join(seed string) error {
	resp, err := n.client.roundTrip(seed, &netcoll.PeerFrame{Type: netcoll.PeerJoin, Key: n.self}, time.Time{})
	if err != nil {
		return fmt.Errorf("cluster: joining via %s: %w", seed, err)
	}
	if resp.Type != netcoll.PeerMembers {
		return fmt.Errorf("cluster: join response type %d from %s", resp.Type, seed)
	}
	n.adoptMembers(string(resp.Body))
	n.reg.Counter(mJoins).Inc()
	n.reg.Emit("cluster.join", fmt.Sprintf("%s joined via %s", n.self, seed))
	return nil
}

// adoptMembers merges a newline-joined member list and rebuilds the ring
// if anything changed.
func (n *Node) adoptMembers(list string) {
	now := time.Now()
	changed := false
	n.mu.Lock()
	for _, addr := range strings.Split(list, "\n") {
		if n.addMemberLocked(strings.TrimSpace(addr), now) {
			changed = true
		}
	}
	n.mu.Unlock()
	if changed {
		n.rebuildRing()
	}
}

// memberList renders the full membership (incl. self), sorted, for join
// responses and gossip.
func (n *Node) memberList() string {
	n.mu.Lock()
	out := make([]string, 0, len(n.members))
	for m := range n.members {
		out = append(out, m)
	}
	n.mu.Unlock()
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// liveMembers returns the members currently considered alive: self plus
// every peer the failure detector has not declared dead.
func (n *Node) liveMembers() []string {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	live := make([]string, 0, len(n.members))
	for m := range n.members {
		if m == n.self {
			live = append(live, m)
			continue
		}
		if silent, ok := n.beats.Silence(m, now); !ok || !n.beats.Rule().Dead(silent) {
			live = append(live, m)
		}
	}
	return live
}

// rebuildRing swaps in a ring over the current live set, updating the
// membership gauges. It is cheap enough (sort of members×vnodes points)
// to run on every reaper tick that observes a change.
func (n *Node) rebuildRing() {
	live := n.liveMembers()
	old := n.ring.Load()
	if old != nil && sameMembers(old.Members(), live) {
		return
	}
	if old != nil {
		n.countDeaths(old.Members(), live)
	}
	n.ring.Store(BuildRing(live, n.cfg.VNodes))
	n.mu.Lock()
	total := len(n.members)
	n.mu.Unlock()
	n.reg.Counter(mRebuilds).Inc()
	n.reg.Gauge(gMembers).Set(int64(total))
	n.reg.Gauge(gLive).Set(int64(len(live)))
	n.reg.Emit("cluster.ring", fmt.Sprintf("%s: ring over %d/%d live members", n.self, len(live), total))
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sorted := append([]string(nil), b...)
	sort.Strings(sorted)
	for i := range a {
		if a[i] != sorted[i] {
			return false
		}
	}
	return true
}

// heartbeatLoop beats every live-or-dead peer (a dead peer that answers
// again revives) and reaps the ring: deaths and revivals observed by the
// beat table rebuild the ring on the next tick.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			n.mu.Lock()
			peers := make([]string, 0, len(n.members))
			for m := range n.members {
				if m != n.self {
					peers = append(peers, m)
				}
			}
			n.mu.Unlock()
			var wg sync.WaitGroup
			for _, p := range peers {
				wg.Add(1)
				go func(addr string) {
					defer wg.Done()
					n.reg.Counter(mBeatsSent).Inc()
					// An answered beat is liveness evidence about the peer
					// (frame transport is synchronous, so a response proves
					// the process is serving).
					resp, err := n.client.roundTrip(addr,
						&netcoll.PeerFrame{Type: netcoll.PeerBeat, Key: n.self},
						time.Now().Add(n.cfg.Heartbeat))
					if err == nil && resp.Type == netcoll.PeerAck {
						n.noteAlive(addr)
					}
				}(p)
			}
			wg.Wait()
			n.rebuildRing()
		}
	}
}

// noteAlive records liveness evidence for a peer, counting a revival if
// the detector had already declared it dead.
func (n *Node) noteAlive(addr string) {
	now := time.Now()
	if silent, ok := n.beats.Silence(addr, now); ok && n.beats.Rule().Dead(silent) {
		n.reg.Counter(mRevivals).Inc()
		n.reg.Emit("cluster.revival", addr+" is answering again")
	}
	n.beats.BeatAt(addr, now)
}

// countDeaths attributes ring-rebuild shrinkage to the peers that left
// the live set, so the death counter names each failover instead of a
// bare gauge delta.
func (n *Node) countDeaths(before, after []string) {
	dead := make(map[string]bool, len(before))
	for _, m := range before {
		dead[m] = true
	}
	for _, m := range after {
		delete(dead, m)
	}
	for m := range dead {
		n.reg.Counter(mDeaths).Inc()
		n.reg.Emit("cluster.death", m+" declared dead; key range fails over")
	}
}

// Owns reports whether this node owns hash under the current ring. A
// ring with no live members (unreachable in practice — self is always
// live) defaults to owning, so the service keeps serving.
func (n *Node) Owns(hash uint64) bool {
	r := n.ring.Load()
	if r == nil {
		return true
	}
	owner, ok := r.Owner(hash)
	return !ok || owner == n.self
}

// Owner returns the owning peer address for hash and whether it is this
// node.
func (n *Node) Owner(hash uint64) (string, bool) {
	r := n.ring.Load()
	if r == nil {
		return n.self, true
	}
	owner, ok := r.Owner(hash)
	if !ok {
		return n.self, true
	}
	return owner, owner == n.self
}

// Fetch asks hash's owner for the plan of key, sending the canonical
// request body so the owner can compute on a miss. The bool reports
// whether the owner served from its cache (a cluster-wide hit). Callers
// fall back to local compute on error — that is the failover path.
func (n *Node) Fetch(ctx context.Context, key string, hash uint64, body []byte) ([]byte, bool, error) {
	owner, self := n.Owner(hash)
	if self {
		return nil, false, ErrNoOwner
	}
	deadline := time.Now().Add(n.cfg.PeerTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	n.reg.Counter(mFetchSent).Inc()
	resp, err := n.client.roundTrip(owner, &netcoll.PeerFrame{Type: netcoll.PeerFetch, Key: key, Body: body}, deadline)
	if err != nil {
		n.reg.Counter(mFetchErrors).Inc()
		return nil, false, fmt.Errorf("cluster: fetching %q from %s: %w", key, owner, err)
	}
	switch resp.Type {
	case netcoll.PeerPlan:
		n.reg.Counter(mFetchOK).Inc()
		if resp.Cached() {
			n.reg.Counter(mRemoteHits).Inc()
		} else {
			n.reg.Counter(mRemoteFills).Inc()
		}
		return resp.Body, resp.Cached(), nil
	case netcoll.PeerErr:
		n.reg.Counter(mFetchErrors).Inc()
		return nil, false, fmt.Errorf("cluster: owner %s: %s", owner, resp.Body)
	default:
		n.reg.Counter(mFetchErrors).Inc()
		return nil, false, fmt.Errorf("cluster: owner %s answered fetch with frame type %d", owner, resp.Type)
	}
}

// Touch records a hit on an owned key for hot-key replication.
func (n *Node) Touch(key string, hash uint64) {
	if n.cfg.HotKeys < 0 {
		return
	}
	n.mu.Lock()
	if h, ok := n.hot[key]; ok {
		h.count++
	} else if len(n.hot) < maxHotTracked {
		n.hot[key] = &hotKey{hash: hash, count: 1}
	}
	n.mu.Unlock()
}

// replLoop pushes the top-K hottest owned keys to their ring successors
// every interval, then decays the counters so the ranking tracks current
// traffic instead of all-time totals.
func (n *Node) replLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.ReplInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			n.replicateHotKeys()
		}
	}
}

type rankedKey struct {
	key   string
	hash  uint64
	count uint64
}

// hottest snapshots the top-K owned keys by hit count and decays the
// accounting map.
func (n *Node) hottest() []rankedKey {
	n.mu.Lock()
	ranked := make([]rankedKey, 0, len(n.hot))
	for k, h := range n.hot {
		ranked = append(ranked, rankedKey{key: k, hash: h.hash, count: h.count})
		h.count /= 2
		if h.count == 0 {
			delete(n.hot, k)
		}
	}
	n.mu.Unlock()
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].count != ranked[b].count {
			return ranked[a].count > ranked[b].count
		}
		return ranked[a].key < ranked[b].key
	})
	if len(ranked) > n.cfg.HotKeys {
		ranked = ranked[:n.cfg.HotKeys]
	}
	return ranked
}

func (n *Node) replicateHotKeys() {
	if n.cfg.HotKeys < 0 || n.cfg.Load == nil {
		return
	}
	r := n.ring.Load()
	if r == nil || r.Size() < 2 {
		return
	}
	for _, hk := range n.hottest() {
		// Ownership may have moved since the touch; only the current
		// owner replicates, and only to peers that would inherit the key.
		succ := r.Successors(hk.hash, n.cfg.Replicas+1)
		if len(succ) < 2 || succ[0] != n.self {
			continue
		}
		plan, ok := n.cfg.Load(hk.key)
		if !ok {
			continue
		}
		for _, target := range succ[1:] {
			resp, err := n.client.roundTrip(target,
				&netcoll.PeerFrame{Type: netcoll.PeerRepl, Key: hk.key, Body: plan}, time.Time{})
			if err == nil && resp.Type == netcoll.PeerAck {
				n.reg.Counter(mReplPushed).Inc()
			}
		}
	}
}

// handleFrame is the peer-server dispatch: one request frame in, one
// response frame out.
func (n *Node) handleFrame(f *netcoll.PeerFrame) *netcoll.PeerFrame {
	switch f.Type {
	case netcoll.PeerBeat:
		n.reg.Counter(mBeatsRecv).Inc()
		// A beat from an unknown address is membership evidence (the
		// sender joined through another peer and gossip is still in
		// flight); admit it.
		n.mu.Lock()
		added := n.addMemberLocked(f.Key, time.Now())
		n.mu.Unlock()
		if f.Key != "" && f.Key != n.self {
			n.noteAlive(f.Key)
		}
		if added {
			n.rebuildRing()
		}
		return &netcoll.PeerFrame{Type: netcoll.PeerAck}
	case netcoll.PeerFetch:
		return n.handleFetch(f)
	case netcoll.PeerJoin:
		n.mu.Lock()
		added := n.addMemberLocked(f.Key, time.Now())
		n.mu.Unlock()
		if added {
			n.rebuildRing()
			n.gossipMembers()
		}
		return &netcoll.PeerFrame{Type: netcoll.PeerMembers, Body: []byte(n.memberList())}
	case netcoll.PeerMembers:
		n.adoptMembers(string(f.Body))
		return &netcoll.PeerFrame{Type: netcoll.PeerAck}
	case netcoll.PeerRepl:
		if n.cfg.Store != nil && f.Key != "" && len(f.Body) > 0 && n.cfg.Store(f.Key, f.Body) {
			n.reg.Counter(mReplStored).Inc()
		}
		return &netcoll.PeerFrame{Type: netcoll.PeerAck}
	default:
		return &netcoll.PeerFrame{Type: netcoll.PeerErr, Body: []byte(fmt.Sprintf("unexpected frame type %d", f.Type))}
	}
}

// handleFetch serves an owner-side fill: cache or compute via the
// service callback, bounded by the peer timeout so a wedged fill cannot
// pin the peer connection forever.
func (n *Node) handleFetch(f *netcoll.PeerFrame) *netcoll.PeerFrame {
	n.reg.Counter(mFillRequests).Inc()
	if n.cfg.Fill == nil {
		n.reg.Counter(mFillErrors).Inc()
		return &netcoll.PeerFrame{Type: netcoll.PeerErr, Body: []byte("node has no fill handler")}
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerTimeout)
	defer cancel()
	plan, cached, err := n.cfg.Fill(ctx, f.Key, f.Body)
	if err != nil {
		n.reg.Counter(mFillErrors).Inc()
		return &netcoll.PeerFrame{Type: netcoll.PeerErr, Body: []byte(err.Error())}
	}
	resp := &netcoll.PeerFrame{Type: netcoll.PeerPlan, Body: plan}
	if cached {
		resp.Flags |= netcoll.PeerFlagCached
	}
	n.Touch(f.Key, fnv1a64(f.Key))
	return resp
}

// gossipMembers pushes the membership list to every known peer
// (fire-and-forget; a peer that misses it learns from beats instead).
func (n *Node) gossipMembers() {
	list := n.memberList()
	n.mu.Lock()
	peers := make([]string, 0, len(n.members))
	for m := range n.members {
		if m != n.self {
			peers = append(peers, m)
		}
	}
	n.mu.Unlock()
	for _, p := range peers {
		go func(addr string) {
			_, _ = n.client.roundTrip(addr, &netcoll.PeerFrame{Type: netcoll.PeerMembers, Body: []byte(list)}, time.Time{})
		}(p)
	}
}

// Healthz returns the cluster view for /healthz: self, ring size, and
// per-peer liveness.
func (n *Node) Healthz() map[string]any {
	now := time.Now()
	r := n.ring.Load()
	n.mu.Lock()
	peers := make([]map[string]any, 0, len(n.members))
	addrs := make([]string, 0, len(n.members))
	for m := range n.members {
		addrs = append(addrs, m)
	}
	n.mu.Unlock()
	sort.Strings(addrs)
	for _, m := range addrs {
		if m == n.self {
			continue
		}
		silent, tracked := n.beats.Silence(m, now)
		alive := tracked && !n.beats.Rule().Dead(silent)
		peers = append(peers, map[string]any{
			"addr":       m,
			"alive":      alive,
			"silence_ms": silent.Milliseconds(),
		})
	}
	live := 0
	if r != nil {
		live = r.Size()
	}
	return map[string]any{
		"self":  n.self,
		"live":  live,
		"peers": peers,
	}
}

// Close stops the loops, the peer server and the client pools.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
		n.srv.close()
		n.client.close()
	})
}
