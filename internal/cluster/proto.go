package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bisectlb/internal/netcoll"
	"bisectlb/internal/obs"
)

// Metric names recorded under the service.cluster.* namespace (the
// cluster is part of the serving surface; lbload and the X13 study read
// these back through /metricz like every other service.* counter).
const (
	mFetchSent   = "service.cluster.fetch_sent"
	mFetchOK     = "service.cluster.fetch_ok"
	mFetchErrors = "service.cluster.fetch_errors"
	mRemoteHits  = "service.cluster.remote_hits"  // owner answered from its cache
	mRemoteFills = "service.cluster.remote_fills" // owner computed on our behalf

	mFillRequests = "service.cluster.fill_requests" // owner side: fetches served
	mFillErrors   = "service.cluster.fill_errors"

	mBeatsSent = "service.cluster.beats_sent"
	mBeatsRecv = "service.cluster.beats_recv"
	mDeaths    = "service.cluster.peer_deaths"
	mRevivals  = "service.cluster.peer_revivals"
	mRebuilds  = "service.cluster.ring_rebuilds"
	mJoins     = "service.cluster.joins"

	mReplPushed = "service.cluster.repl_pushed"
	mReplStored = "service.cluster.repl_stored"

	mInvalidFrames = "service.cluster.invalid_frames"

	gMembers = "service.cluster.members" // known members, dead or alive
	gLive    = "service.cluster.live"    // members currently in the ring
)

// maxIdleConnsPerPeer bounds the per-peer idle connection pool. Each
// round trip holds a connection exclusively, so the pool size is also
// the per-peer fetch concurrency before new dials.
const maxIdleConnsPerPeer = 4

// peerHandler processes one decoded request frame and returns the
// response frame. It must never return nil.
type peerHandler func(f *netcoll.PeerFrame) *netcoll.PeerFrame

// peerServer accepts peer-protocol connections and answers each request
// frame with exactly one response frame.
type peerServer struct {
	ln      net.Listener
	handler peerHandler
	reg     *obs.Registry

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

func newPeerServer(addr string, handler peerHandler, reg *obs.Registry) (*peerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer listener: %w", err)
	}
	s := &peerServer{ln: ln, handler: handler, reg: reg, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *peerServer) addr() string { return s.ln.Addr().String() }

func (s *peerServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *peerServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	for {
		f, err := netcoll.ReadPeerFrame(br)
		if err != nil {
			// A malformed frame poisons the stream (binary framing cannot
			// resync); count it and drop the connection. EOF and
			// connection teardown are the normal exits.
			if errors.Is(err, netcoll.ErrPeerFrame) {
				s.reg.Counter(mInvalidFrames).Inc()
			}
			return
		}
		resp := s.handler(f)
		resp.Seq = f.Seq
		if err := netcoll.WritePeerFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *peerServer) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// peerClient maintains small per-peer connection pools and runs
// synchronous request/response round trips over them. A connection is
// held exclusively for the duration of one round trip, so responses
// never interleave; the frame seq is still checked as a cheap guard
// against a desynchronised stream.
type peerClient struct {
	timeout time.Duration
	reg     *obs.Registry

	mu     sync.Mutex
	idle   map[string][]net.Conn
	seq    uint64
	closed bool
}

func newPeerClient(timeout time.Duration, reg *obs.Registry) *peerClient {
	return &peerClient{timeout: timeout, reg: reg, idle: make(map[string][]net.Conn)}
}

func (c *peerClient) getConn(addr string) (net.Conn, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, net.ErrClosed
	}
	if pool := c.idle[addr]; len(pool) > 0 {
		conn := pool[len(pool)-1]
		c.idle[addr] = pool[:len(pool)-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, false, err
	}
	return conn, false, nil
}

func (c *peerClient) putConn(addr string, conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle[addr]) < maxIdleConnsPerPeer {
		c.idle[addr] = append(c.idle[addr], conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// roundTrip sends req to addr and returns the response frame, respecting
// deadline (zero means the client's default timeout from now). A failure
// on a pooled connection (the peer may have idled it out) is retried
// once on a fresh dial; failures on fresh connections are real.
func (c *peerClient) roundTrip(addr string, req *netcoll.PeerFrame, deadline time.Time) (*netcoll.PeerFrame, error) {
	if deadline.IsZero() {
		deadline = time.Now().Add(c.timeout)
	}
	c.mu.Lock()
	c.seq++
	req.Seq = c.seq
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, pooled, err := c.getConn(addr)
		if err != nil {
			return nil, err
		}
		resp, err := c.exchange(conn, req, deadline)
		if err == nil {
			c.putConn(addr, conn)
			return resp, nil
		}
		_ = conn.Close()
		lastErr = err
		if !pooled {
			break // a fresh connection failing is not a stale-pool artifact
		}
	}
	return nil, lastErr
}

func (c *peerClient) exchange(conn net.Conn, req *netcoll.PeerFrame, deadline time.Time) (*netcoll.PeerFrame, error) {
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := netcoll.WritePeerFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := netcoll.ReadPeerFrame(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if resp.Seq != req.Seq {
		return nil, fmt.Errorf("cluster: response seq %d for request %d", resp.Seq, req.Seq)
	}
	_ = conn.SetDeadline(time.Time{})
	return resp, nil
}

func (c *peerClient) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pool := range c.idle {
		for _, conn := range pool {
			_ = conn.Close()
		}
	}
	c.idle = make(map[string][]net.Conn)
}
