package cluster

import (
	"fmt"
	"testing"

	"bisectlb/internal/xrand"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	return out
}

func TestRingDeterministicAcrossPeers(t *testing.T) {
	// Every peer builds its ring independently from the member list; the
	// cluster only works if they all derive identical ownership. Build
	// twice from differently-ordered (and duplicated) lists.
	a := BuildRing([]string{"c:1", "a:1", "b:1"}, 32)
	b := BuildRing([]string{"b:1", "a:1", "c:1", "a:1", ""}, 32)
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d, %d, want 3", a.Size(), b.Size())
	}
	rng := xrand.New(11)
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		oa, _ := a.Owner(h)
		ob, _ := b.Owner(h)
		if oa != ob {
			t.Fatalf("hash %x: owners diverge %q vs %q", h, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := BuildRing(nil, 0)
	if _, ok := empty.Owner(42); ok {
		t.Fatal("empty ring must own nothing")
	}
	if s := empty.Successors(42, 2); s != nil {
		t.Fatalf("empty ring successors = %v", s)
	}
	one := BuildRing([]string{"a:1"}, 0)
	if o, ok := one.Owner(42); !ok || o != "a:1" {
		t.Fatalf("single-member ring owner = %q, %v", o, ok)
	}
}

// TestRingRemovalRemapsOnlyTheDeadRange is the consistent-hashing
// contract, exact half: when one member leaves, a key changes owner if
// and only if the leaver owned it. Nothing else may move.
func TestRingRemovalRemapsOnlyTheDeadRange(t *testing.T) {
	rng := xrand.New(1999)
	for _, n := range []int{2, 3, 5, 8} {
		members := ringMembers(n)
		full := BuildRing(members, 0)
		for _, dead := range []int{0, n / 2, n - 1} {
			var survivors []string
			for i, m := range members {
				if i != dead {
					survivors = append(survivors, m)
				}
			}
			shrunk := BuildRing(survivors, 0)
			moved, owned := 0, 0
			const keys = 20000
			for i := 0; i < keys; i++ {
				h := rng.Uint64()
				before, _ := full.Owner(h)
				after, _ := shrunk.Owner(h)
				if before == members[dead] {
					owned++
					if after == members[dead] {
						t.Fatalf("n=%d: dead member still owns key %x", n, h)
					}
				} else if before != after {
					t.Fatalf("n=%d: key %x moved %q→%q though %q died", n, h, before, after, members[dead])
				} else {
					continue
				}
				moved++
			}
			if moved != owned {
				t.Fatalf("n=%d: moved %d keys, dead member owned %d", n, moved, owned)
			}
		}
	}
}

// TestRingAdditionBounds is the probabilistic half of the contract:
// adding one member to an n-member ring moves only keys that move TO the
// new member (exact), and the moved fraction is ~K/(n+1) (bounded here
// by 2× the expectation, generous against vnode placement variance).
func TestRingAdditionBounds(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{2, 4, 7} {
		members := ringMembers(n)
		joiner := "10.0.1.99:9000"
		before := BuildRing(members, 0)
		after := BuildRing(append(append([]string{}, members...), joiner), 0)
		const keys = 30000
		moved := 0
		for i := 0; i < keys; i++ {
			h := rng.Uint64()
			ob, _ := before.Owner(h)
			oa, _ := after.Owner(h)
			if ob == oa {
				continue
			}
			if oa != joiner {
				t.Fatalf("n=%d: key %x moved %q→%q, but only the joiner may gain keys", n, h, ob, oa)
			}
			moved++
		}
		frac := float64(moved) / keys
		bound := 2.0 / float64(n+1)
		if frac > bound {
			t.Fatalf("n=%d: addition moved %.1f%% of keys, bound %.1f%% (~K/n contract)", n, 100*frac, 100*bound)
		}
		if moved == 0 {
			t.Fatalf("n=%d: joiner took over no keys at all", n)
		}
	}
}

func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r := BuildRing(ringMembers(5), 0)
	rng := xrand.New(3)
	for i := 0; i < 2000; i++ {
		h := rng.Uint64()
		succ := r.Successors(h, 3)
		if len(succ) != 3 {
			t.Fatalf("got %d successors, want 3", len(succ))
		}
		owner, _ := r.Owner(h)
		if succ[0] != owner {
			t.Fatalf("successors[0] = %q, owner = %q", succ[0], owner)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor %q in %v", s, succ)
			}
			seen[s] = true
		}
	}
	// Asking for more successors than members truncates.
	if got := len(r.Successors(42, 99)); got != 5 {
		t.Fatalf("capped successors = %d, want 5", got)
	}
}

// TestRingBalanceSpread: with vnodes, no member owns a grossly
// disproportionate key range (max/mean below 2 at the default vnode
// count — the smoothing vnodes exist to provide).
func TestRingBalanceSpread(t *testing.T) {
	members := ringMembers(6)
	r := BuildRing(members, 0)
	counts := map[string]int{}
	rng := xrand.New(23)
	const keys = 60000
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(rng.Uint64())
		counts[o]++
	}
	mean := float64(keys) / float64(len(members))
	for m, c := range counts {
		if ratio := float64(c) / mean; ratio > 2 || ratio < 0.4 {
			t.Fatalf("member %s owns %.2f× the mean key range", m, ratio)
		}
	}
}
