// Package cluster turns N lbserve processes into one logical service.
//
// A consistent-hash ring over canonical spec-key hashes assigns each key
// an owner peer; non-owners proxy misses to the owner over a compact
// request/response protocol framed by netcoll's peer framing, so the
// per-process singleflight composes into a cluster-wide single planner
// execution per key (groupcache's discipline, applied to partition
// plans). Liveness comes from peer-to-peer heartbeats classified by the
// same internal/dist failure-detector rule the distributed BA
// coordinator uses: a dead peer is excluded from the ring, its key range
// falls over to the survivors, and periodic hot-key replication to ring
// successors keeps a failover from stampeding the planner.
//
// The package is deliberately ignorant of the serving layer: plans move
// through it as opaque bytes, and the owner-side fill, cache store and
// cache read are callbacks — internal/service wires them without cluster
// importing it. The fill callback also carries incremental-replanning
// traffic: a drift-extended cache key (DESIGN.md §15) routes to its ring
// owner like any other key, and the owner runs the patch.
package cluster
