// Package workload is the registry of problem generators used by the
// experiment harness, the integration tests and the examples. Every
// generator is deterministic in its seed and produces a bisect.Problem
// root, together with the α the generated class guarantees (or a probed
// empirical estimate where no a-priori guarantee exists).
package workload

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/femtree"
	"bisectlb/internal/quadrature"
	"bisectlb/internal/searchtree"
)

// Factory describes one workload family.
type Factory struct {
	// Name identifies the family in reports.
	Name string
	// New generates the root problem for the given seed.
	New func(seed uint64) bisect.Problem
	// Alpha is the α to declare to α-aware algorithms (PHF, BA-HF). For
	// synthetic families it is the guaranteed interval bound; for tree
	// and frontier families it is a probed, conservative estimate.
	Alpha float64
	// Synthetic marks families whose α is an a-priori guarantee rather
	// than a probe.
	Synthetic bool
}

// Uniform returns the paper's stochastic model: α̂ ~ U[lo, hi] i.i.d.
// across bisections (Section 4).
func Uniform(lo, hi float64) Factory {
	return Factory{
		Name: fmt.Sprintf("uniform[%g,%g]", lo, hi),
		New: func(seed uint64) bisect.Problem {
			return bisect.MustSynthetic(1, lo, hi, seed)
		},
		Alpha:     lo,
		Synthetic: true,
	}
}

// Fixed returns the adversarial family that always splits (α, 1−α).
func Fixed(alpha float64) Factory {
	return Factory{
		Name: fmt.Sprintf("fixed[%g]", alpha),
		New: func(seed uint64) bisect.Problem {
			return bisect.MustFixed(1, alpha)
		},
		Alpha:     alpha,
		Synthetic: true,
	}
}

// List returns the pivot-partitioned list model with guard α.
func List(n int, alpha float64) Factory {
	return Factory{
		Name: fmt.Sprintf("list[%d,α=%g]", n, alpha),
		New: func(seed uint64) bisect.Problem {
			return bisect.MustList(n, alpha, seed)
		},
		Alpha:     alpha,
		Synthetic: true,
	}
}

// FEM returns the FE-tree family. Alpha is probed once on the seed-0
// instance; FE-trees carry no a-priori guarantee.
func FEM() Factory {
	probe := femtree.NewRegion(femtree.MustGenerate(femtree.DefaultGenConfig(0)))
	alpha := femtree.ProbeAlpha(probe, 256)
	if alpha <= 0 || alpha > 0.5 {
		alpha = 0.05
	}
	return Factory{
		Name: "fem-tree",
		New: func(seed uint64) bisect.Problem {
			return femtree.NewRegion(femtree.MustGenerate(femtree.DefaultGenConfig(seed)))
		},
		Alpha: alpha * 0.9, // conservative margin below the probe
	}
}

// Quadrature returns the adaptive-quadrature family with median splitting.
func Quadrature() Factory {
	return Factory{
		Name: "quadrature",
		New: func(seed uint64) bisect.Problem {
			return quadrature.MustRootBox(quadrature.DefaultIntegrand(seed), quadrature.SplitMedian, 1e-4)
		},
		// The weighted-median cut lands close to one half; 0.3 is a
		// comfortably conservative declaration verified by the tests.
		Alpha: 0.3,
	}
}

// SearchTree returns the branch-and-bound frontier family. Alpha is probed
// on the seed-0 instance.
func SearchTree() Factory {
	probe := searchtree.NewFrontier(searchtree.MustGenerate(searchtree.DefaultGenConfig(0)))
	alpha := searchtree.ProbeAlpha(probe, 256)
	if alpha <= 0 || alpha > 0.5 {
		alpha = 0.05
	}
	return Factory{
		Name: "search-frontier",
		New: func(seed uint64) bisect.Problem {
			return searchtree.NewFrontier(searchtree.MustGenerate(searchtree.DefaultGenConfig(seed)))
		},
		Alpha: alpha * 0.9,
	}
}

// All returns one representative of every family, for integration tests.
func All() []Factory {
	return []Factory{
		Uniform(0.1, 0.5),
		Uniform(0.01, 0.5),
		Fixed(0.25),
		List(5000, 0.2),
		FEM(),
		Quadrature(),
		SearchTree(),
	}
}
