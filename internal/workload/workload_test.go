package workload

import (
	"testing"

	"bisectlb/internal/bistree"
	"bisectlb/internal/core"
)

// TestAllFamiliesBalanceAcrossAlgorithms is the cross-substrate integration
// test: every workload family must flow through every algorithm and produce
// a structurally valid partition, and PHF must reproduce HF's partition on
// every family (Theorem 3 is substrate-independent).
func TestAllFamiliesBalanceAcrossAlgorithms(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if f.Alpha <= 0 || f.Alpha > 0.5 {
				t.Fatalf("family α = %v", f.Alpha)
			}
			for _, n := range []int{1, 2, 16, 64} {
				hf, err := core.HF(f.New(42), n, core.Options{})
				if err != nil {
					t.Fatalf("HF n=%d: %v", n, err)
				}
				if err := hf.CheckPartition(1e-9); err != nil {
					t.Fatalf("HF n=%d: %v", n, err)
				}
				ba, err := core.BA(f.New(42), n, core.Options{})
				if err != nil {
					t.Fatalf("BA n=%d: %v", n, err)
				}
				if err := ba.CheckPartition(1e-9); err != nil {
					t.Fatalf("BA n=%d: %v", n, err)
				}
				hyb, err := core.BAHF(f.New(42), n, f.Alpha, 1.0, core.Options{})
				if err != nil {
					t.Fatalf("BA-HF n=%d: %v", n, err)
				}
				if err := hyb.CheckPartition(1e-9); err != nil {
					t.Fatalf("BA-HF n=%d: %v", n, err)
				}
				phf, err := core.PHF(f.New(42), n, f.Alpha, core.Options{})
				if err != nil {
					t.Fatalf("PHF n=%d: %v", n, err)
				}
				if f.Name == "fixed[0.25]" {
					// The fixed class produces exactly tied weights, under
					// which HF's tie-break and PHF's rounds may resolve
					// differently (see core.PHF doc). Check the weaker,
					// tie-independent guarantees instead.
					if len(phf.Parts) != len(hf.Parts) || phf.Bisections != hf.Bisections {
						t.Fatalf("PHF structure differs from HF on %s with n=%d", f.Name, n)
					}
					if n > 1 && phf.Max > phf.Threshold+1e-12 {
						t.Fatalf("PHF max %v above threshold %v", phf.Max, phf.Threshold)
					}
				} else if !core.SamePartition(hf, &phf.Result) {
					t.Fatalf("PHF != HF on %s with n=%d", f.Name, n)
				}
			}
		})
	}
}

func TestFactoriesDeterministic(t *testing.T) {
	for _, f := range All() {
		a, b := f.New(7), f.New(7)
		if a.ID() != b.ID() || a.Weight() != b.Weight() {
			t.Fatalf("%s: same seed gave different roots", f.Name)
		}
	}
}

func TestSyntheticFlagsAndNames(t *testing.T) {
	if !Uniform(0.1, 0.5).Synthetic || !Fixed(0.3).Synthetic || !List(10, 0.2).Synthetic {
		t.Fatal("synthetic families not marked")
	}
	if FEM().Synthetic || Quadrature().Synthetic || SearchTree().Synthetic {
		t.Fatal("application families wrongly marked synthetic")
	}
	seen := map[string]bool{}
	for _, f := range All() {
		if f.Name == "" || seen[f.Name] {
			t.Fatalf("bad or duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestProbedAlphasHold(t *testing.T) {
	// The declared α of the probed families was measured on the seed-0
	// instance over a 256-part heaviest-first expansion with a 0.9 safety
	// margin; a 64-part HF expansion of the same instance performs a
	// subset of those bisections, so every split fraction must clear the
	// declared α.
	for _, f := range []Factory{FEM(), SearchTree()} {
		res, err := core.HF(f.New(0), 64, core.Options{RecordTree: true})
		if err != nil {
			t.Fatal(err)
		}
		res.Tree.Walk(func(n *bistree.Node) {
			if n.IsLeaf() {
				return
			}
			light := n.Children[0].Weight
			if c := n.Children[1].Weight; c < light {
				light = c
			}
			if frac := light / n.Weight; frac < f.Alpha {
				t.Fatalf("%s: split fraction %v below declared α=%v", f.Name, frac, f.Alpha)
			}
		})
	}
}
