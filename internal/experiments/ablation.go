package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// SplitRuleAblation quantifies the value of BA's best-approximation
// processor-split rule (paper, Figure 3 and Lemma 4) against the naive
// floor-only rounding it refines — the quality ablation DESIGN.md §7 calls
// out. Lower average ratios for the best-approximation rule demonstrate
// that choosing between ⌊β̂n⌋ and ⌈β̂n⌉ by the realised max(w1/n1, w2/n2)
// matters, not just asymptotically but at practical sizes.
type SplitRuleAblation struct {
	Lo, Hi float64
	Ns     []int
	Trials int
	Seed   uint64
}

// DefaultSplitRuleAblation covers N = 2^5 … 2^maxLog.
func DefaultSplitRuleAblation(trials, maxLog int, seed uint64) SplitRuleAblation {
	return SplitRuleAblation{
		Lo: 0.1, Hi: 0.5,
		Ns:     PowersOfTwo(5, maxLog),
		Trials: trials,
		Seed:   seed,
	}
}

// SplitRuleRow is one processor count's comparison.
type SplitRuleRow struct {
	N          int
	BestApprox stats.Summary
	NaiveFloor stats.Summary
	// Regression is avg(naive)/avg(best) − 1: how much quality the naive
	// rule gives up.
	Regression float64
}

// RunSplitRuleAblation executes the comparison on matched instances.
func RunSplitRuleAblation(cfg SplitRuleAblation) ([]SplitRuleRow, error) {
	if cfg.Trials < 1 || len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("experiments: empty ablation configuration")
	}
	var out []SplitRuleRow
	for _, n := range cfg.Ns {
		best := stats.NewSample(cfg.Trials)
		naive := stats.NewSample(cfg.Trials)
		seedGen := xrand.New(cfg.Seed + uint64(n))
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedGen.Uint64()
			a, err := core.BA(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, core.Options{})
			if err != nil {
				return nil, err
			}
			b, err := core.BANaiveSplit(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, core.Options{})
			if err != nil {
				return nil, err
			}
			best.Add(a.Ratio)
			naive.Add(b.Ratio)
		}
		out = append(out, SplitRuleRow{
			N:          n,
			BestApprox: best.Summarize(),
			NaiveFloor: naive.Summarize(),
			Regression: naive.Mean()/best.Mean() - 1,
		})
	}
	return out, nil
}

// RenderSplitRuleAblation writes the ablation as a table.
func RenderSplitRuleAblation(w io.Writer, cfg SplitRuleAblation, rows []SplitRuleRow) error {
	fmt.Fprintf(w, "Split-rule ablation: BA with best-approximation vs naive floor rounding\n")
	fmt.Fprintf(w, "(α̂ ~ U[%g, %g], %d trials)\n\n", cfg.Lo, cfg.Hi, cfg.Trials)
	fmt.Fprintf(w, "log N   best-approx avg   naive-floor avg   regression\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d   %15.3f   %15.3f   %9.1f%%\n",
			log2(r.N), r.BestApprox.Mean, r.NaiveFloor.Mean, 100*r.Regression)
	}
	return nil
}
