package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// RobustnessStudy extends the paper's evaluation to the setting its
// Section 2 only brushes past: the load balancer sees *estimated* weights
// ("it is assumed that the weight of a problem can be calculated (or
// approximated) easily") while the quality that matters is the maximum
// *true* load. Reference [10] of the paper (Kumar et al.) studies the
// fully-unknown-weight variant; here we sweep the estimation error from 0
// (the paper's setting) towards that regime and measure how gracefully
// each algorithm degrades.
type RobustnessStudy struct {
	Lo, Hi      float64
	Kappa       float64
	NoiseLevels []float64
	N           int
	Trials      int
	Seed        uint64
}

// DefaultRobustnessStudy sweeps relative estimation error 0 … 50%.
func DefaultRobustnessStudy(trials int, seed uint64) RobustnessStudy {
	return RobustnessStudy{
		Lo: 0.1, Hi: 0.5, Kappa: 1.0,
		NoiseLevels: []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5},
		N:           1024,
		Trials:      trials,
		Seed:        seed,
	}
}

// RobustnessRow aggregates true-load ratios at one noise level.
type RobustnessRow struct {
	Noise float64
	HF    stats.Summary
	BA    stats.Summary
	BAHF  stats.Summary
}

// trueRatio evaluates a partition on true loads: max true weight over the
// ideal true share.
func trueRatio(res *core.Result, trueTotal float64, n int) float64 {
	maxTrue := 0.0
	for _, pt := range res.Parts {
		w := pt.Problem.Weight()
		if noisy, ok := pt.Problem.(*bisect.Noisy); ok {
			w = noisy.TrueWeight()
		}
		if w > maxTrue {
			maxTrue = w
		}
	}
	return bisect.Ratio(maxTrue, trueTotal, n)
}

// RunRobustnessStudy executes the sweep with matched instances: the same
// underlying problem and the same noise stream are used for every
// algorithm at every level.
func RunRobustnessStudy(cfg RobustnessStudy) ([]RobustnessRow, error) {
	if cfg.Trials < 1 || cfg.N < 1 || len(cfg.NoiseLevels) == 0 {
		return nil, fmt.Errorf("experiments: empty robustness configuration")
	}
	var out []RobustnessRow
	for _, noise := range cfg.NoiseLevels {
		sHF := stats.NewSample(cfg.Trials)
		sBA := stats.NewSample(cfg.Trials)
		sHyb := stats.NewSample(cfg.Trials)
		seedGen := xrand.New(cfg.Seed)
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedGen.Uint64()
			mk := func() (bisect.Problem, error) {
				return bisect.WithNoise(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), noise, cfg.Seed)
			}
			p, err := mk()
			if err != nil {
				return nil, err
			}
			hf, err := core.HF(p, cfg.N, core.Options{})
			if err != nil {
				return nil, err
			}
			p, err = mk()
			if err != nil {
				return nil, err
			}
			ba, err := core.BA(p, cfg.N, core.Options{})
			if err != nil {
				return nil, err
			}
			p, err = mk()
			if err != nil {
				return nil, err
			}
			hyb, err := core.BAHF(p, cfg.N, cfg.Lo, cfg.Kappa, core.Options{})
			if err != nil {
				return nil, err
			}
			sHF.Add(trueRatio(hf, 1, cfg.N))
			sBA.Add(trueRatio(ba, 1, cfg.N))
			sHyb.Add(trueRatio(hyb, 1, cfg.N))
		}
		out = append(out, RobustnessRow{
			Noise: noise,
			HF:    sHF.Summarize(),
			BA:    sBA.Summarize(),
			BAHF:  sHyb.Summarize(),
		})
	}
	return out, nil
}

// RenderRobustnessStudy writes the sweep as a table.
func RenderRobustnessStudy(w io.Writer, cfg RobustnessStudy, rows []RobustnessRow) error {
	fmt.Fprintf(w, "Robustness study: true-load ratio under weight-estimation error\n")
	fmt.Fprintf(w, "(α̂ ~ U[%g, %g], N = %d, κ = %g, %d trials)\n\n",
		cfg.Lo, cfg.Hi, cfg.N, cfg.Kappa, cfg.Trials)
	fmt.Fprintf(w, "%8s   avg HF    avg BA-HF   avg BA\n", "noise")
	for _, r := range rows {
		fmt.Fprintf(w, "%7.0f%%   %7.3f   %9.3f   %7.3f\n",
			100*r.Noise, r.HF.Mean, r.BAHF.Mean, r.BA.Mean)
	}
	return nil
}
