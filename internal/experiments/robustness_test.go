package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRobustnessStudyDegradesGracefully(t *testing.T) {
	cfg := DefaultRobustnessStudy(30, 4)
	cfg.N = 256
	cfg.NoiseLevels = []float64{0, 0.2, 0.5}
	rows, err := RunRobustnessStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Noise can only hurt (on average): monotone non-decreasing true-load
	// ratios, with slack for sampling wiggle.
	for i := 1; i < len(rows); i++ {
		if rows[i].HF.Mean < rows[i-1].HF.Mean*0.98 {
			t.Fatalf("HF improved under noise: %v → %v", rows[i-1].HF.Mean, rows[i].HF.Mean)
		}
	}
	// At zero noise the true ratio equals the estimated ratio ordering:
	// HF best, BA worst.
	if !(rows[0].HF.Mean <= rows[0].BAHF.Mean && rows[0].BAHF.Mean <= rows[0].BA.Mean) {
		t.Fatalf("zero-noise ordering violated: %v / %v / %v",
			rows[0].HF.Mean, rows[0].BAHF.Mean, rows[0].BA.Mean)
	}
	// Even at 50% estimation error the balance must not collapse: HF's
	// true ratio stays within a small factor of its noiseless value.
	if rows[2].HF.Mean > 2.5*rows[0].HF.Mean {
		t.Fatalf("HF collapsed under 50%% noise: %v vs %v", rows[2].HF.Mean, rows[0].HF.Mean)
	}
	var b strings.Builder
	if err := RenderRobustnessStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Robustness study") {
		t.Fatal("render missing title")
	}
}

func TestRobustnessStudyValidation(t *testing.T) {
	if _, err := RunRobustnessStudy(RobustnessStudy{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSplitRuleAblationShowsRegression(t *testing.T) {
	cfg := DefaultSplitRuleAblation(60, 10, 6)
	rows, err := RunSplitRuleAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The naive rule must be no better on average at any size, and
	// strictly worse somewhere.
	worse := false
	for _, r := range rows {
		if r.NaiveFloor.Mean < r.BestApprox.Mean*0.995 {
			t.Fatalf("N=%d: naive rule beat best-approximation (%v vs %v)",
				r.N, r.NaiveFloor.Mean, r.BestApprox.Mean)
		}
		if r.Regression > 0.01 {
			worse = true
		}
	}
	if !worse {
		t.Fatal("ablation shows no measurable regression anywhere — suspicious")
	}
	var b strings.Builder
	if err := RenderSplitRuleAblation(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Split-rule ablation") {
		t.Fatal("render missing title")
	}
}

func TestSplitRuleAblationValidation(t *testing.T) {
	if _, err := RunSplitRuleAblation(SplitRuleAblation{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTopologyStudyShape(t *testing.T) {
	cfg := DefaultTopologyStudy(8, 512, 3)
	rows, err := RunTopologyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(topo, alg string) MachineRowLike {
		for _, r := range rows {
			if r.Topology == topo && r.Algorithm == alg {
				return MachineRowLike{r.Makespan.Mean, r.GlobalOps.Mean}
			}
		}
		t.Fatalf("missing %s/%s", topo, alg)
		return MachineRowLike{}
	}
	// BA never uses global operations on any topology.
	for _, topo := range []string{"complete", "hypercube", "fat-tree", "mesh2d", "ring"} {
		if get(topo, "BA").GlobalOps != 0 {
			t.Fatalf("BA charged global ops on %s", topo)
		}
	}
	// PHF's ring makespan dwarfs its complete-graph makespan; BA's ratio
	// of the same pair stays far smaller.
	phfBlowup := get("ring", "PHF").Makespan / get("complete", "PHF").Makespan
	baBlowup := get("ring", "BA").Makespan / get("complete", "BA").Makespan
	if phfBlowup <= baBlowup {
		t.Fatalf("PHF blowup %v not larger than BA blowup %v", phfBlowup, baBlowup)
	}
	var b strings.Builder
	if err := RenderTopologyStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Topology study") {
		t.Fatal("render missing title")
	}
}

// MachineRowLike is a tiny projection used by the topology assertions.
type MachineRowLike struct {
	Makespan  float64
	GlobalOps float64
}

func TestTopologyStudyValidation(t *testing.T) {
	if _, err := RunTopologyStudy(TopologyStudy{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestEndToEndStudyCrossover(t *testing.T) {
	cfg := DefaultEndToEndStudy(10, 5)
	cfg.N = 1024
	rows, err := RunEndToEndStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Granularities) {
		t.Fatalf("rows = %d", len(rows))
	}
	// At tiny granularity the fastest balancer (BA) must win; at huge
	// granularity the best balance (PHF = HF's partition, parallel
	// balancing time) must win; the sequential HF never wins at scale
	// because its Θ(N) balancing time dwarfs everything at small G and its
	// ratio ties PHF's at large G while paying more up front.
	if rows[0].Best != "BA" {
		t.Fatalf("G=%v winner %s, want BA", rows[0].Granularity, rows[0].Best)
	}
	last := rows[len(rows)-1]
	if last.Best != "PHF" {
		t.Fatalf("G=%v winner %s, want PHF", last.Granularity, last.Best)
	}
	for _, r := range rows {
		if r.Best == "HF(seq)" {
			t.Fatalf("sequential HF won at G=%v despite Θ(N) balancing", r.Granularity)
		}
	}
	var b strings.Builder
	if err := RenderEndToEndStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "winner") {
		t.Fatal("render missing winner column")
	}
}

func TestEndToEndStudyValidation(t *testing.T) {
	if _, err := RunEndToEndStudy(EndToEndStudy{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDynamicStudyRebalancingHelps(t *testing.T) {
	cfg := DefaultDynamicStudy(5, 11)
	cfg.N = 256
	cfg.Steps = 300
	cfg.Intervals = []int{0, 100, 20}
	rows, err := RunDynamicStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byInterval := map[int]DynamicRow{}
	for _, r := range rows {
		byInterval[r.Interval] = r
	}
	never := byInterval[0]
	often := byInterval[20]
	rare := byInterval[100]
	// More frequent rebalancing must lower the time-averaged imbalance,
	// monotonically across the sweep.
	if !(often.AvgImbalance.Mean < rare.AvgImbalance.Mean &&
		rare.AvgImbalance.Mean < never.AvgImbalance.Mean) {
		t.Fatalf("imbalance not monotone in rebalance frequency: never=%.3f rare=%.3f often=%.3f",
			never.AvgImbalance.Mean, rare.AvgImbalance.Mean, often.AvgImbalance.Mean)
	}
	// Without rebalancing the drift must hurt substantially over the
	// horizon (final far above the fresh-partition ratio ≈ 1.7).
	if never.FinalImbalance.Mean < 2.2 {
		t.Fatalf("drift too tame: final imbalance %.3f without rebalancing", never.FinalImbalance.Mean)
	}
	if never.Rebalances != 0 || often.Rebalances == 0 {
		t.Fatal("rebalance accounting wrong")
	}
	var b strings.Builder
	if err := RenderDynamicStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "never") {
		t.Fatal("render missing never row")
	}
}

func TestDynamicStudyValidation(t *testing.T) {
	if _, err := RunDynamicStudy(DynamicStudy{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultDynamicStudy(1, 1)
	bad.Intervals = []int{-3}
	if _, err := RunDynamicStudy(bad); err == nil {
		t.Fatal("negative interval accepted")
	}
	bad2 := DefaultDynamicStudy(1, 1)
	bad2.Sigma = math.NaN()
	if _, err := RunDynamicStudy(bad2); err == nil {
		t.Fatal("NaN σ accepted")
	}
}
