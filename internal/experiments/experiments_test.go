package experiments

import (
	"strings"
	"testing"
)

func smallTriple() TripleConfig {
	return TripleConfig{
		Lo: 0.1, Hi: 0.5, Kappa: 1.0,
		Trials: 40, Seed: 1,
		Ns: []int{32, 128, 512},
	}
}

func TestTripleConfigValidate(t *testing.T) {
	bad := []TripleConfig{
		{Lo: 0, Hi: 0.5, Kappa: 1, Trials: 1, Ns: []int{2}},
		{Lo: 0.3, Hi: 0.2, Kappa: 1, Trials: 1, Ns: []int{2}},
		{Lo: 0.1, Hi: 0.6, Kappa: 1, Trials: 1, Ns: []int{2}},
		{Lo: 0.1, Hi: 0.5, Kappa: 0, Trials: 1, Ns: []int{2}},
		{Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 0, Ns: []int{2}},
		{Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 1, Ns: nil},
		{Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 1, Ns: []int{0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := smallTriple().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveTrialsScaling(t *testing.T) {
	c := TripleConfig{Lo: 0.1, Hi: 0.5, Kappa: 1, Trials: 1000, Ns: []int{2}, ScaleTrials: true}
	if c.EffectiveTrials(1<<14) != 1000 {
		t.Fatal("scaling applied at or below 2^14")
	}
	if got := c.EffectiveTrials(1 << 15); got != 500 {
		t.Fatalf("2^15 trials = %d, want 500", got)
	}
	if got := c.EffectiveTrials(1 << 20); got < 20 {
		t.Fatalf("trial floor violated: %d", got)
	}
	c.ScaleTrials = false
	if c.EffectiveTrials(1<<20) != 1000 {
		t.Fatal("scaling applied while disabled")
	}
}

func TestPowersOfTwo(t *testing.T) {
	ns := PowersOfTwo(5, 8)
	want := []int{32, 64, 128, 256}
	if len(ns) != len(want) {
		t.Fatalf("got %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("got %v, want %v", ns, want)
		}
	}
}

func TestRunTripleProducesPaperOrdering(t *testing.T) {
	rows, err := RunTriple(smallTriple())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's headline finding: HF best, BA worst, BA-HF between.
		if !(r.HF.Stats.Mean <= r.BAHF.Stats.Mean && r.BAHF.Stats.Mean <= r.BA.Stats.Mean) {
			t.Fatalf("N=%d: ordering violated: HF %.3f BA-HF %.3f BA %.3f",
				r.N, r.HF.Stats.Mean, r.BAHF.Stats.Mean, r.BA.Stats.Mean)
		}
		// Observed ratios stay below the worst-case bounds.
		if r.HF.Stats.Max > r.HF.UB+1e-9 || r.BA.Stats.Max > r.BA.UB+1e-9 ||
			r.BAHF.Stats.Max > r.BAHF.UB+1e-9 {
			t.Fatalf("N=%d: observed ratio above worst-case bound", r.N)
		}
		// And the observed averages sit well below the bounds (the
		// paper's "substantially smaller than our worst-case bounds").
		if r.HF.Stats.Mean > 0.9*r.HF.UB {
			t.Fatalf("N=%d: HF average suspiciously close to bound", r.N)
		}
		if r.Trials != 40 {
			t.Fatalf("N=%d: trials = %d", r.N, r.Trials)
		}
	}
}

func TestRunTripleDeterministic(t *testing.T) {
	a, err := RunTriple(smallTriple())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTriple(smallTriple())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].HF.Stats.Mean != b[i].HF.Stats.Mean || a[i].BA.Stats.Mean != b[i].BA.Stats.Mean {
			t.Fatal("same seed gave different results")
		}
	}
}

func TestRenderTable1AndCSV(t *testing.T) {
	cfg := smallTriple()
	rows, err := RunTriple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tbl strings.Builder
	if err := RenderTable1(&tbl, cfg, rows); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Table 1", "log N", "BA ub", "HF ub"} {
		if !strings.Contains(tbl.String(), frag) {
			t.Fatalf("table missing %q:\n%s", frag, tbl.String())
		}
	}
	var csv strings.Builder
	if err := WriteTripleCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(rows) {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n,log2n,trials") {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
}

func TestFigure5RenderAndShape(t *testing.T) {
	cfg := Figure5Config(60, 11, 7)
	rows, err := RunTriple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderFigure5(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 5") {
		t.Fatal("figure title missing")
	}
	if v := CheckFigure5Shape(rows); len(v) != 0 {
		t.Fatalf("Figure 5 shape violations: %v", v)
	}
}

func TestTable1ConfigMatchesPaper(t *testing.T) {
	cfg := Table1Config(1000, 20, 0)
	if cfg.Lo != 0.01 || cfg.Hi != 0.5 || cfg.Kappa != 1.0 {
		t.Fatal("Table 1 parameters wrong")
	}
	if cfg.Ns[0] != 32 || cfg.Ns[len(cfg.Ns)-1] != 1<<20 {
		t.Fatal("Table 1 processor grid wrong")
	}
}

func TestKappaStudyShowsImprovement(t *testing.T) {
	cfg := DefaultKappaConfig(60, 10, 3)
	res, err := RunKappaStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Ns) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper: ≈10% improvement κ=1→2 and ≈5% more at κ=3. Accept the
	// qualitative shape: strictly positive improvements, the first larger
	// than the second.
	if !(res.Improvement[1] > 0 && res.Improvement[2] > 0) {
		t.Fatalf("improvements not positive: %v", res.Improvement)
	}
	if res.Improvement[1] < res.Improvement[2] {
		t.Fatalf("κ=1→2 improvement %.3f smaller than κ=2→3 %.3f",
			res.Improvement[1], res.Improvement[2])
	}
	var b strings.Builder
	if err := RenderKappaStudy(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "improvement κ=1 → κ=2") {
		t.Fatalf("render missing improvement line:\n%s", b.String())
	}
}

func TestKappaStudyValidation(t *testing.T) {
	if _, err := RunKappaStudy(KappaConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestVarianceStudyShape(t *testing.T) {
	cfg := DefaultVarianceStudy(60, 10, 5)
	rows, err := RunVarianceStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byInterval := map[[2]float64]VarianceRow{}
	for _, r := range rows {
		byInterval[r.Interval] = r
	}
	wide := byInterval[[2]float64{0.1, 0.5}]
	narrowSmall := byInterval[[2]float64{0.01, 0.02}]
	// Paper: variance very small except for [α, 2α] with very small α.
	if narrowSmall.HFVarGeo <= wide.HFVarGeo {
		t.Fatalf("narrow-small-α variance %.3g not larger than wide %.3g",
			narrowSmall.HFVarGeo, wide.HFVarGeo)
	}
	var b strings.Builder
	if err := RenderVarianceStudy(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Variance study") {
		t.Fatal("render missing title")
	}
}

func TestOddNStudySimilarity(t *testing.T) {
	cfg := DefaultOddNStudy(60, 9)
	cfg.OddNs = []int{37, 100, 523}
	rows, err := RunOddNStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]TripleRow{}
	for _, r := range rows {
		byN[r.N] = r
	}
	// "Very similar results": each odd N's HF average within 15% of its
	// bracketing powers' averages.
	for _, n := range cfg.OddNs {
		lower := 1
		for lower*2 <= n {
			lower *= 2
		}
		odd := byN[n].HF.Stats.Mean
		lo := byN[lower].HF.Stats.Mean
		hi := byN[lower*2].HF.Stats.Mean
		ref := (lo + hi) / 2
		if diff := odd - ref; diff > 0.15*ref || -diff > 0.15*ref {
			t.Fatalf("N=%d: HF avg %.3f far from bracketing avg %.3f", n, odd, ref)
		}
	}
	var b strings.Builder
	if err := RenderOddNStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("odd-N markers missing")
	}
}

func TestMachineStudyClaims(t *testing.T) {
	cfg := DefaultMachineStudy(10, 12, 2)
	rows, err := RunMachineStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(alg string, n int) MachineRow {
		for _, r := range rows {
			if r.Algorithm == alg && r.N == n {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", alg, n)
		return MachineRow{}
	}
	small, large := 32, 4096
	// HF is Θ(N): makespan scales with N.
	hfGrowth := get("HF", large).Makespan.Mean / get("HF", small).Makespan.Mean
	if hfGrowth < 64 {
		t.Fatalf("HF makespan growth %v too small for Θ(N)", hfGrowth)
	}
	// The parallel algorithms are O(log N): far smaller growth.
	for _, alg := range []string{"BA", "BA-HF", "PHF/oracle", "PHF/ba-prime"} {
		g := get(alg, large).Makespan.Mean / get(alg, small).Makespan.Mean
		if g > 6 {
			t.Fatalf("%s makespan growth %v too large for O(log N)", alg, g)
		}
	}
	// BA needs no global ops and no manager traffic.
	if get("BA", large).GlobalOps.Mean != 0 || get("BA", large).MgrMsgs.Mean != 0 {
		t.Fatal("BA charged global or manager traffic")
	}
	// Central management is slower than the BA′ bootstrap at scale.
	if get("PHF/central", large).Makespan.Mean <= get("PHF/ba-prime", large).Makespan.Mean {
		t.Fatal("central manager not slower than BA′ bootstrap")
	}
	var b strings.Builder
	if err := RenderMachineStudy(&b, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Machine-model study") {
		t.Fatal("render missing title")
	}
}
