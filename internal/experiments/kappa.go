package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// KappaConfig parameterises the κ-influence study of Section 4: "We
// observed that the improvement of the average ratio was approximately 10%
// when κ increased from 1.0 to 2.0 and another 5% when κ = 3.0" (for
// α̂ ~ U[0.1, 0.5]).
type KappaConfig struct {
	Lo, Hi float64
	Kappas []float64
	Ns     []int
	Trials int
	Seed   uint64
}

// DefaultKappaConfig mirrors the paper's study.
func DefaultKappaConfig(trials, maxLog int, seed uint64) KappaConfig {
	return KappaConfig{
		Lo: 0.1, Hi: 0.5,
		Kappas: []float64{1.0, 2.0, 3.0},
		Ns:     PowersOfTwo(5, maxLog),
		Trials: trials,
		Seed:   seed,
	}
}

// KappaRow is one processor count's BA-HF average ratio per κ.
type KappaRow struct {
	N    int
	Avg  []float64 // parallel to cfg.Kappas
	Vars []float64
}

// KappaResult carries the per-N rows plus the aggregate improvements.
type KappaResult struct {
	Cfg  KappaConfig
	Rows []KappaRow
	// OverallAvg[i] is the mean over all N of the average ratio at κ_i.
	OverallAvg []float64
	// Improvement[i] is the relative reduction of OverallAvg from κ_{i-1}
	// to κ_i (Improvement[0] = 0).
	Improvement []float64
}

// RunKappaStudy executes the study with matched instances per κ (identical
// bisection streams, only κ varies).
func RunKappaStudy(cfg KappaConfig) (*KappaResult, error) {
	if !(cfg.Lo > 0) || cfg.Hi < cfg.Lo || cfg.Hi > 0.5 {
		return nil, fmt.Errorf("experiments: invalid α̂ interval [%v, %v]", cfg.Lo, cfg.Hi)
	}
	if len(cfg.Kappas) == 0 || len(cfg.Ns) == 0 || cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: empty κ study configuration")
	}
	res := &KappaResult{Cfg: cfg}
	sums := make([]float64, len(cfg.Kappas))
	count := 0
	seedGen := xrand.New(cfg.Seed)
	for _, n := range cfg.Ns {
		samples := make([]*stats.Sample, len(cfg.Kappas))
		for i := range samples {
			samples[i] = stats.NewSample(cfg.Trials)
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedGen.Uint64()
			for i, kappa := range cfg.Kappas {
				r, err := core.BAHF(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, cfg.Lo, kappa, core.Options{})
				if err != nil {
					return nil, err
				}
				samples[i].Add(r.Ratio)
			}
		}
		row := KappaRow{N: n}
		for i := range cfg.Kappas {
			row.Avg = append(row.Avg, samples[i].Mean())
			row.Vars = append(row.Vars, samples[i].Variance())
			sums[i] += samples[i].Mean()
		}
		res.Rows = append(res.Rows, row)
		count++
	}
	res.OverallAvg = make([]float64, len(cfg.Kappas))
	res.Improvement = make([]float64, len(cfg.Kappas))
	for i := range cfg.Kappas {
		res.OverallAvg[i] = sums[i] / float64(count)
		if i > 0 {
			res.Improvement[i] = -stats.RelativeChange(res.OverallAvg[i-1], res.OverallAvg[i])
		}
	}
	return res, nil
}

// RenderKappaStudy writes the study in tabular form.
func RenderKappaStudy(w io.Writer, res *KappaResult) error {
	fmt.Fprintf(w, "κ-study: BA-HF average ratio for α̂ ~ U[%g, %g], %d trials\n\n",
		res.Cfg.Lo, res.Cfg.Hi, res.Cfg.Trials)
	fmt.Fprintf(w, "log N")
	for _, k := range res.Cfg.Kappas {
		fmt.Fprintf(w, "   κ=%-5.2f", k)
	}
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%5d", log2(row.N))
		for _, a := range row.Avg {
			fmt.Fprintf(w, "   %7.4f", a)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\noverall")
	for _, a := range res.OverallAvg {
		fmt.Fprintf(w, "  %7.4f", a)
	}
	fmt.Fprintln(w)
	for i := 1; i < len(res.Cfg.Kappas); i++ {
		fmt.Fprintf(w, "improvement κ=%g → κ=%g: %5.1f%%\n",
			res.Cfg.Kappas[i-1], res.Cfg.Kappas[i], 100*res.Improvement[i])
	}
	return nil
}
