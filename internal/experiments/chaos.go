package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/dist"
	"bisectlb/internal/xrand"
)

// ChaosStudy (X7) measures what the paper's model assumes away: the
// distributed BA runtime under an unreliable network and dying nodes.
// Algorithm BA's two structural properties — no global communication and
// deterministic re-execution of any subproblem from its seed — make it
// unusually recoverable: a lost hand-off is retried, a duplicated one is
// deduplicated by ID, and a dead node's leases are re-executed by a
// survivor producing byte-identical parts. The study sweeps drop rate and
// crash count and verifies the headline claim: whenever a run completes,
// its partition quality equals the fault-free run exactly.
type ChaosStudy struct {
	Lo, Hi    float64
	N         int
	Ks        []int
	DropRates []float64
	Crashes   []int
	Trials    int
	Seed      uint64
	Timeout   time.Duration
}

// DefaultChaosStudy sweeps drop rate 0 … 20% and 0 … 2 crashed nodes.
func DefaultChaosStudy(trials int, seed uint64) ChaosStudy {
	return ChaosStudy{
		Lo: 0.1, Hi: 0.5,
		N:         64,
		Ks:        []int{2, 4, 8},
		DropRates: []float64{0, 0.05, 0.10, 0.20},
		Crashes:   []int{0, 1, 2},
		Trials:    trials,
		Seed:      seed,
		Timeout:   20 * time.Second,
	}
}

// ChaosRow aggregates one (K, drop rate, crashes) cell.
type ChaosRow struct {
	K         int
	DropRate  float64
	Crashes   int
	Trials    int
	Completed int
	// RatioVsClean averages, over completed trials, the distributed ratio
	// divided by the fault-free in-process BA ratio on the same instance.
	// The recovery protocol re-executes work deterministically, so this
	// is exactly 1 whenever the run completes.
	RatioVsClean float64
	// AvgRetries and AvgReassigned count recovery work per trial.
	AvgRetries    float64
	AvgReassigned float64
	// AvgRecovery averages, over degraded completions, the time from the
	// first death declaration to run completion.
	AvgRecovery time.Duration
	// Metrics holds the cell's protocol-counter totals, summed over every
	// trial (completed or not); rendered as the metrics appendix.
	Metrics ChaosCellMetrics
}

// ChaosCellMetrics totals the fault-layer and recovery-protocol counters
// of one sweep cell. In the fault-free cell the injected columns (drops,
// dups, deaths, re-issues) are all zero — the appendix doubles as a
// sanity check that the fault layer only acts when asked.
type ChaosCellMetrics struct {
	Sends           int // send attempts that reached the wire
	Drops           int // attempts swallowed by the fault plan
	Dups            int // attempts delivered twice
	Retries         int // reliable-send retransmissions
	DedupHits       int // duplicate parts/claims discarded by ID dedup
	HeartbeatMisses int // overdue-beat detector checks
	Deaths          int // nodes declared dead
	LeaseReissues   int // leases re-issued to survivors
}

// chaosTiming is tightened relative to the runtime defaults so crash
// detection does not dominate the sweep's wall clock.
func chaosTiming() dist.Timing {
	return dist.Timing{
		Heartbeat:   15 * time.Millisecond,
		DeadAfter:   300 * time.Millisecond,
		LeaseExpiry: 700 * time.Millisecond,
		RetryBase:   40 * time.Millisecond,
		RetryMax:    250 * time.Millisecond,
	}
}

// RunChaosStudy executes the sweep with matched instances: the same trial
// roots are used in every cell, so the fault knobs are the only moving
// part.
func RunChaosStudy(cfg ChaosStudy) ([]ChaosRow, error) {
	if cfg.Trials < 1 || cfg.N < 1 || len(cfg.Ks) == 0 || len(cfg.DropRates) == 0 || len(cfg.Crashes) == 0 {
		return nil, fmt.Errorf("experiments: empty chaos configuration")
	}
	// Fault-free in-process baselines, one per trial instance.
	seedGen := xrand.New(cfg.Seed)
	roots := make([]uint64, cfg.Trials)
	clean := make([]float64, cfg.Trials)
	for t := 0; t < cfg.Trials; t++ {
		roots[t] = seedGen.Uint64()
		res, err := core.BA(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, roots[t]), cfg.N, core.Options{})
		if err != nil {
			return nil, err
		}
		clean[t] = res.Ratio
	}

	var out []ChaosRow
	combo := uint64(0)
	for _, k := range cfg.Ks {
		for _, drop := range cfg.DropRates {
			for _, crashes := range cfg.Crashes {
				combo++
				if crashes >= k {
					continue // at least one survivor is required
				}
				row := ChaosRow{K: k, DropRate: drop, Crashes: crashes, Trials: cfg.Trials}
				var ratioSum, retrySum, reassignSum float64
				var recovSum time.Duration
				degraded := 0
				for t := 0; t < cfg.Trials; t++ {
					rng := xrand.New(xrand.Mix(cfg.Seed, xrand.Mix(combo, uint64(t))))
					plan := &dist.FaultPlan{Seed: rng.Uint64(), DropRate: drop}
					if crashes > 0 {
						// The highest-id nodes die after a handful of sends:
						// late enough to have accepted work, early enough to
						// leave plenty unfinished.
						plan.Crash = make(map[int]int, crashes)
						for c := 0; c < crashes; c++ {
							plan.Crash[k-1-c] = 2 + rng.Intn(6)
						}
					}
					cl, err := dist.StartClusterWith(cfg.N, k, plan, chaosTiming())
					if err != nil {
						return nil, err
					}
					root, err := dist.Encode(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, roots[t]))
					if err != nil {
						cl.Close()
						return nil, err
					}
					res, err := cl.Coord.Run(root, cfg.N, cl.Addrs(), cfg.Timeout)
					st := cl.TotalStats()
					cl.Close()
					row.Metrics.Sends += st.Sends
					row.Metrics.Drops += st.Drops
					row.Metrics.Dups += st.Dups
					row.Metrics.Retries += st.Retries
					if res != nil {
						row.Metrics.DedupHits += res.Stats.DedupParts + res.Stats.DedupClaims
						row.Metrics.HeartbeatMisses += res.Stats.HeartbeatMisses
						row.Metrics.Deaths += res.Stats.Deaths
						row.Metrics.LeaseReissues += res.Stats.LeaseReissues
					}
					if err != nil && !errors.Is(err, dist.ErrDegraded) {
						continue // incomplete: counted against the completion rate
					}
					row.Completed++
					ratioSum += res.Ratio / clean[t]
					retrySum += float64(st.Retries)
					reassignSum += float64(res.Reassigned)
					if res.Degraded {
						degraded++
						recovSum += res.RecoveryLatency
					}
				}
				if row.Completed > 0 {
					row.RatioVsClean = ratioSum / float64(row.Completed)
					row.AvgRetries = retrySum / float64(row.Completed)
					row.AvgReassigned = reassignSum / float64(row.Completed)
				}
				if degraded > 0 {
					row.AvgRecovery = recovSum / time.Duration(degraded)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// RenderChaosStudy writes the sweep as a table.
func RenderChaosStudy(w io.Writer, cfg ChaosStudy, rows []ChaosRow) error {
	fmt.Fprintf(w, "Chaos study (X7): distributed BA under message loss and node crashes\n")
	fmt.Fprintf(w, "(α ~ U[%g, %g], N = %d, %d trials per cell; ratio is relative to the\n",
		cfg.Lo, cfg.Hi, cfg.N, cfg.Trials)
	fmt.Fprintf(w, "fault-free in-process BA on the same instance — 1.000 means the\n")
	fmt.Fprintf(w, "recovered partition is exactly the undisturbed one)\n\n")
	fmt.Fprintf(w, "%3s  %5s  %7s   %9s  %9s  %8s  %9s  %10s\n",
		"K", "drop", "crashes", "completed", "ratio/ff", "retries", "reassign", "recov (ms)")
	for _, r := range rows {
		recov := "-"
		if r.AvgRecovery > 0 {
			recov = fmt.Sprintf("%.0f", float64(r.AvgRecovery)/float64(time.Millisecond))
		}
		ratio := "-"
		if r.Completed > 0 {
			ratio = fmt.Sprintf("%.3f", r.RatioVsClean)
		}
		fmt.Fprintf(w, "%3d  %4.0f%%  %7d   %4d/%-4d  %9s  %8.1f  %9.1f  %10s\n",
			r.K, 100*r.DropRate, r.Crashes, r.Completed, r.Trials, ratio,
			r.AvgRetries, r.AvgReassigned, recov)
	}

	// Metrics appendix: raw protocol-counter totals per cell. The
	// fault-free cells (drop 0%, crashes 0) must show zero in every
	// injected column; faulted cells must show the recovery machinery at
	// work (retries under drops, re-issues and dedup hits under crashes).
	fmt.Fprintf(w, "\nMetrics appendix (protocol counters, summed over all trials in the cell)\n\n")
	fmt.Fprintf(w, "%3s  %5s  %7s  %8s  %7s  %6s  %8s  %7s  %8s  %7s  %9s\n",
		"K", "drop", "crashes", "sends", "drops", "dups", "retries", "dedup", "hb_miss", "deaths", "reissues")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(w, "%3d  %4.0f%%  %7d  %8d  %7d  %6d  %8d  %7d  %8d  %7d  %9d\n",
			r.K, 100*r.DropRate, r.Crashes, m.Sends, m.Drops, m.Dups,
			m.Retries, m.DedupHits, m.HeartbeatMisses, m.Deaths, m.LeaseReissues)
	}
	return nil
}
