package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/machine"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// MachineStudy parameterises the machine-model experiment backing the
// running-time and communication claims of Section 3: HF is Θ(N) while
// PHF, BA and BA-HF run in O(log N) for fixed α; BA needs no global
// communication and no free-processor management traffic; PHF's naive
// central management serialises while the BA′ bootstrap does not.
type MachineStudy struct {
	Lo, Hi float64
	Alpha  float64 // declared class parameter (usually Lo)
	Kappa  float64
	Ns     []int
	Trials int
	Seed   uint64
}

// DefaultMachineStudy covers N = 2^5 … 2^maxLog.
func DefaultMachineStudy(trials, maxLog int, seed uint64) MachineStudy {
	return MachineStudy{
		Lo: 0.1, Hi: 0.5, Alpha: 0.1, Kappa: 1.0,
		Ns:     PowersOfTwo(5, maxLog),
		Trials: trials,
		Seed:   seed,
	}
}

// MachineRow aggregates the simulated metrics for one algorithm at one N.
type MachineRow struct {
	Algorithm string
	N         int
	Makespan  stats.Summary
	Messages  stats.Summary
	MgrMsgs   stats.Summary
	GlobalOps stats.Summary
}

// RunMachineStudy simulates every algorithm variant at every N.
func RunMachineStudy(cfg MachineStudy) ([]MachineRow, error) {
	if cfg.Trials < 1 || len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("experiments: empty machine study configuration")
	}
	type variant struct {
		name string
		run  func(p bisect.Problem, n int) (*machine.Metrics, error)
	}
	variants := []variant{
		{"HF", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunHF(p, n)
		}},
		{"BA", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunBA(p, n)
		}},
		{"BA-HF", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunBAHF(p, n, cfg.Alpha, cfg.Kappa)
		}},
		{"PHF/oracle", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunPHF(p, n, cfg.Alpha, machine.Phase1Oracle)
		}},
		{"PHF/central", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunPHF(p, n, cfg.Alpha, machine.Phase1Central)
		}},
		{"PHF/ba-prime", func(p bisect.Problem, n int) (*machine.Metrics, error) {
			return machine.RunPHF(p, n, cfg.Alpha, machine.Phase1BAPrime)
		}},
	}
	var out []MachineRow
	for _, n := range cfg.Ns {
		for _, v := range variants {
			mk := stats.NewSample(cfg.Trials)
			ms := stats.NewSample(cfg.Trials)
			mg := stats.NewSample(cfg.Trials)
			gl := stats.NewSample(cfg.Trials)
			seedGen := xrand.New(cfg.Seed + uint64(n))
			for trial := 0; trial < cfg.Trials; trial++ {
				p := bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seedGen.Uint64())
				m, err := v.run(p, n)
				if err != nil {
					return nil, err
				}
				mk.Add(float64(m.Makespan))
				ms.Add(float64(m.Messages))
				mg.Add(float64(m.ManagerMessages))
				gl.Add(float64(m.GlobalOps))
			}
			out = append(out, MachineRow{
				Algorithm: v.name, N: n,
				Makespan:  mk.Summarize(),
				Messages:  ms.Summarize(),
				MgrMsgs:   mg.Summarize(),
				GlobalOps: gl.Summarize(),
			})
		}
	}
	return out, nil
}

// RenderMachineStudy writes the study as a table grouped by N.
func RenderMachineStudy(w io.Writer, cfg MachineStudy, rows []MachineRow) error {
	fmt.Fprintf(w, "Machine-model study: α̂ ~ U[%g, %g], declared α = %g, κ = %g, %d trials\n",
		cfg.Lo, cfg.Hi, cfg.Alpha, cfg.Kappa, cfg.Trials)
	fmt.Fprintf(w, "(model units: bisect=1, send=1, global op=⌈log2 N⌉)\n\n")
	fmt.Fprintf(w, "%8s  %-12s  %12s  %12s  %10s  %10s\n",
		"N", "algorithm", "avg makespan", "avg messages", "mgr msgs", "global ops")
	lastN := 0
	for _, r := range rows {
		if r.N != lastN && lastN != 0 {
			fmt.Fprintln(w)
		}
		lastN = r.N
		fmt.Fprintf(w, "%8d  %-12s  %12.1f  %12.1f  %10.1f  %10.1f\n",
			r.N, r.Algorithm, r.Makespan.Mean, r.Messages.Mean, r.MgrMsgs.Mean, r.GlobalOps.Mean)
	}
	return nil
}
