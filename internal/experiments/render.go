package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"
)

// log2 returns ⌊log2 n⌋ as an int label; exact for the powers of two the
// paper uses.
func log2(n int) int {
	return int(math.Round(math.Log2(float64(n))))
}

// RenderTable1 writes the rows in the layout of the paper's Table 1:
// worst-case upper bounds (ub) and observed minimum, average and maximum
// ratios for BA, BA-HF and HF at each processor count.
func RenderTable1(w io.Writer, cfg TripleConfig, rows []TripleRow) error {
	fmt.Fprintf(w, "Table 1: worst-case upper bounds (ub) and observed min/avg/max ratios\n")
	fmt.Fprintf(w, "for α̂ ~ U[%g, %g], κ = %g (%d trials", cfg.Lo, cfg.Hi, cfg.Kappa, cfg.Trials)
	if cfg.ScaleTrials {
		fmt.Fprintf(w, ", scaled down above 2^14")
	}
	fmt.Fprintf(w, ")\n\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "\tlog N\t|\tBA ub\tmin\tavg\tmax\t|\tBA-HF ub\tmin\tavg\tmax\t|\tHF ub\tmin\tavg\tmax\t\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%d\t|\t%.2f\t%.3f\t%.3f\t%.3f\t|\t%.2f\t%.3f\t%.3f\t%.3f\t|\t%.2f\t%.3f\t%.3f\t%.3f\t\n",
			log2(r.N),
			r.BA.UB, r.BA.Stats.Min, r.BA.Stats.Mean, r.BA.Stats.Max,
			r.BAHF.UB, r.BAHF.Stats.Min, r.BAHF.Stats.Mean, r.BAHF.Stats.Max,
			r.HF.UB, r.HF.Stats.Min, r.HF.Stats.Mean, r.HF.Stats.Max)
	}
	return tw.Flush()
}

// WriteTripleCSV emits the rows as CSV for downstream plotting.
func WriteTripleCSV(w io.Writer, rows []TripleRow) error {
	if _, err := fmt.Fprintln(w, "n,log2n,trials,"+
		"ba_ub,ba_min,ba_avg,ba_max,ba_var,"+
		"bahf_ub,bahf_min,bahf_avg,bahf_max,bahf_var,"+
		"hf_ub,hf_min,hf_avg,hf_max,hf_var"); err != nil {
		return err
	}
	for _, r := range rows {
		fields := []string{
			strconv.Itoa(r.N), strconv.Itoa(log2(r.N)), strconv.Itoa(r.Trials),
			ftoa(r.BA.UB), ftoa(r.BA.Stats.Min), ftoa(r.BA.Stats.Mean), ftoa(r.BA.Stats.Max), ftoa(r.BA.Stats.Variance),
			ftoa(r.BAHF.UB), ftoa(r.BAHF.Stats.Min), ftoa(r.BAHF.Stats.Mean), ftoa(r.BAHF.Stats.Max), ftoa(r.BAHF.Stats.Variance),
			ftoa(r.HF.UB), ftoa(r.HF.Stats.Min), ftoa(r.HF.Stats.Mean), ftoa(r.HF.Stats.Max), ftoa(r.HF.Stats.Variance),
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func ftoa(v float64) string {
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}
