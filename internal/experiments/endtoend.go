package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/machine"
	"bisectlb/internal/obs"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// EndToEndStudy operationalises the paper's concluding trade-off: "one must
// take into account … the relative importance of fast running-time of the
// load balancing algorithm and of the quality of the achieved load
// balance." Total time to solution is
//
//	end-to-end = balancing makespan + (processing makespan)
//	           = balancing makespan + ratio · G / N,
//
// where G is the problem's total processing time expressed in model units
// (the granularity: how much actual work one unit of balancing time is
// worth). Small G favours the fastest balancer (BA); large G favours the
// best balance (HF's partition via PHF); the crossover locates the regime
// boundary.
type EndToEndStudy struct {
	Lo, Hi float64
	Alpha  float64
	Kappa  float64
	N      int
	// Granularities are the G values swept, in balancing time units.
	Granularities []float64
	Trials        int
	Seed          uint64
}

// DefaultEndToEndStudy sweeps five decades of granularity at N = 4096.
func DefaultEndToEndStudy(trials int, seed uint64) EndToEndStudy {
	return EndToEndStudy{
		Lo: 0.1, Hi: 0.5, Alpha: 0.1, Kappa: 1.0, N: 4096,
		Granularities: []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7},
		Trials:        trials,
		Seed:          seed,
	}
}

// EndToEndRow is one granularity's average end-to-end times.
type EndToEndRow struct {
	Granularity float64
	// Times maps algorithm name → average end-to-end time.
	Algorithms []string
	Times      []float64
	// Best is the winning algorithm at this granularity.
	Best string
}

// RunEndToEndStudy executes the sweep. Balancing makespans and partition
// ratios come from the simulated machine (HF sequential, BA, BA-HF, PHF
// with BA′ bootstrap); processing time is ratio·G/N since the slowest
// processor carries `ratio` times the ideal share.
func RunEndToEndStudy(cfg EndToEndStudy) ([]EndToEndRow, error) {
	if cfg.Trials < 1 || cfg.N < 1 || len(cfg.Granularities) == 0 {
		return nil, fmt.Errorf("experiments: empty end-to-end configuration")
	}
	type sample struct {
		makespan *stats.Sample
		ratio    *stats.Sample
	}
	algs := []string{"HF(seq)", "BA", "BA-HF", "PHF"}
	samples := make([]sample, len(algs))
	for i := range samples {
		samples[i] = sample{stats.NewSample(cfg.Trials), stats.NewSample(cfg.Trials)}
	}
	seedGen := xrand.New(cfg.Seed)
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := seedGen.Uint64()
		mk := func() bisect.Problem { return bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed) }
		runs := []func() (*machine.Metrics, error){
			func() (*machine.Metrics, error) { return machine.RunHF(mk(), cfg.N) },
			func() (*machine.Metrics, error) { return machine.RunBA(mk(), cfg.N) },
			func() (*machine.Metrics, error) { return machine.RunBAHF(mk(), cfg.N, cfg.Alpha, cfg.Kappa) },
			func() (*machine.Metrics, error) { return machine.RunPHF(mk(), cfg.N, cfg.Alpha, machine.Phase1BAPrime) },
		}
		for i, run := range runs {
			m, err := run()
			if err != nil {
				return nil, err
			}
			samples[i].makespan.Add(float64(m.Makespan))
			samples[i].ratio.Add(m.Ratio)
		}
	}
	var out []EndToEndRow
	for _, g := range cfg.Granularities {
		row := EndToEndRow{Granularity: g, Algorithms: algs}
		bestIdx := 0
		for i := range algs {
			t := samples[i].makespan.Mean() + samples[i].ratio.Mean()*g/float64(cfg.N)
			row.Times = append(row.Times, t)
			if t < row.Times[bestIdx] {
				bestIdx = i
			}
		}
		row.Best = algs[bestIdx]
		out = append(out, row)
	}
	return out, nil
}

// RunExecutorProbe runs one representative instance of the study's
// distribution through the real goroutine-parallel executors (ParallelBA
// and ParallelPHF) with a metrics registry attached. The model-time table
// above predicts cost; the probe measures what the executors actually do
// on this machine — bisection counts, goroutine spawns, and the wall time
// of PHF's two phases — for the metrics appendix.
func RunExecutorProbe(cfg EndToEndStudy) (*obs.Registry, error) {
	reg := obs.NewRegistry()
	opt := core.ParallelOptions{Metrics: reg}
	seed := xrand.New(cfg.Seed).Uint64()
	if _, err := core.ParallelBA(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), cfg.N, opt); err != nil {
		return nil, err
	}
	if _, err := core.ParallelPHF(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), cfg.N, cfg.Alpha, opt); err != nil {
		return nil, err
	}
	return reg, nil
}

// RenderExecutorAppendix writes the probe registry as a metrics appendix.
func RenderExecutorAppendix(w io.Writer, cfg EndToEndStudy, reg *obs.Registry) error {
	fmt.Fprintf(w, "\nMetrics appendix: parallel executors on one representative instance (N = %d)\n\n", cfg.N)
	return reg.WriteText(w)
}

// RenderEndToEndStudy writes the sweep as a table with the winner column.
func RenderEndToEndStudy(w io.Writer, cfg EndToEndStudy, rows []EndToEndRow) error {
	fmt.Fprintf(w, "End-to-end study: balancing time + ratio·G/N at N = %d (α̂ ~ U[%g, %g], %d trials)\n\n",
		cfg.N, cfg.Lo, cfg.Hi, cfg.Trials)
	if len(rows) == 0 {
		return fmt.Errorf("experiments: no rows")
	}
	fmt.Fprintf(w, "%12s", "G")
	for _, a := range rows[0].Algorithms {
		fmt.Fprintf(w, "  %12s", a)
	}
	fmt.Fprintf(w, "  %10s\n", "winner")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.0f", r.Granularity)
		for _, t := range r.Times {
			fmt.Fprintf(w, "  %12.1f", t)
		}
		fmt.Fprintf(w, "  %10s\n", r.Best)
	}
	return nil
}
