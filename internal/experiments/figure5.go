package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/textplot"
)

// Figure5Config returns the configuration of the paper's Figure 5:
// α̂ ~ U[0.1, 0.5], κ = 1.0, N = 2^5 … 2^20, 1000 trials.
func Figure5Config(trials, maxLog int, seed uint64) TripleConfig {
	return TripleConfig{
		Lo: 0.1, Hi: 0.5, Kappa: 1.0,
		Trials: trials, Seed: seed,
		Ns:          PowersOfTwo(5, maxLog),
		ScaleTrials: true,
	}
}

// Table1Config returns the configuration of the paper's Table 1:
// α̂ ~ U[0.01, 0.5], κ = 1.0.
func Table1Config(trials, maxLog int, seed uint64) TripleConfig {
	return TripleConfig{
		Lo: 0.01, Hi: 0.5, Kappa: 1.0,
		Trials: trials, Seed: seed,
		Ns:          PowersOfTwo(5, maxLog),
		ScaleTrials: true,
	}
}

// RenderFigure5 plots the average ratio of the three algorithms against
// log2 N, the paper's Figure 5 ("Comparison of the average ratio for
// α̂ ~ U[0.1, 0.5], κ = 1.0").
func RenderFigure5(w io.Writer, cfg TripleConfig, rows []TripleRow) error {
	xs := make([]string, len(rows))
	ba := make([]float64, len(rows))
	bahf := make([]float64, len(rows))
	hf := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = fmt.Sprintf("%d", log2(r.N))
		ba[i] = r.BA.Stats.Mean
		bahf[i] = r.BAHF.Stats.Mean
		hf[i] = r.HF.Stats.Mean
	}
	title := fmt.Sprintf("Figure 5: average ratio vs log N for α̂ ~ U[%g, %g], κ = %g",
		cfg.Lo, cfg.Hi, cfg.Kappa)
	err := textplot.Plot(w, title, xs, []textplot.Series{
		{Name: "BA", Ys: ba, Marker: 'B'},
		{Name: "BA-HF", Ys: bahf, Marker: 'H'},
		{Name: "HF", Ys: hf, Marker: '*'},
	}, 72, 16)
	if err != nil {
		return err
	}
	// Numeric companion so the series can be read off exactly.
	fmt.Fprintf(w, "\nlog N   avg BA   avg BA-HF   avg HF\n")
	for i := range rows {
		fmt.Fprintf(w, "%5s   %6.3f   %9.3f   %6.3f\n", xs[i], ba[i], bahf[i], hf[i])
	}
	return nil
}

// CheckFigure5Shape verifies the qualitative findings the paper reports for
// Figure 5 and returns a list of violations (empty = the reproduction shows
// the paper's shape):
//
//  1. "In all experiments, Algorithm HF performed best and Algorithm BA-HF
//     outperformed Algorithm BA" — avg(HF) < avg(BA-HF) < avg(BA) per N.
//  2. "Usually, the observed ratios differed by no more than a factor of 3
//     for fixed N" — avg(BA)/avg(HF) ≤ 3.
//  3. "The average ratio obtained from Algorithm HF was observed to be
//     almost constant for the whole range" — spread of avg(HF) across N is
//     small (≤ 15% of its mean).
func CheckFigure5Shape(rows []TripleRow) []string {
	var violations []string
	var hfSum, hfMin, hfMax float64
	for i, r := range rows {
		hf, hyb, ba := r.HF.Stats.Mean, r.BAHF.Stats.Mean, r.BA.Stats.Mean
		if r.N >= 32 {
			if !(hf <= hyb && hyb <= ba) {
				violations = append(violations,
					fmt.Sprintf("N=%d: ordering HF ≤ BA-HF ≤ BA violated (%.3f / %.3f / %.3f)",
						r.N, hf, hyb, ba))
			}
			if ba > 3*hf {
				violations = append(violations,
					fmt.Sprintf("N=%d: BA/HF spread %.2f exceeds factor 3", r.N, ba/hf))
			}
		}
		hfSum += hf
		if i == 0 || hf < hfMin {
			hfMin = hf
		}
		if i == 0 || hf > hfMax {
			hfMax = hf
		}
	}
	mean := hfSum / float64(len(rows))
	if len(rows) > 1 && (hfMax-hfMin) > 0.15*mean {
		violations = append(violations,
			fmt.Sprintf("HF average ratio not near-constant: min %.3f max %.3f", hfMin, hfMax))
	}
	return violations
}
