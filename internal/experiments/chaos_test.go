package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestChaosStudySmall runs a shrunken X7 sweep end to end — one trial,
// two node counts, drop-free and lossy cells, one crash cell — and
// checks the study's own headline claim on its output: whenever a trial
// completes, the recovered ratio equals the fault-free ratio exactly
// (RatioVsClean == 1), because recovery re-executes deterministically.
func TestChaosStudySmall(t *testing.T) {
	cfg := ChaosStudy{
		Lo: 0.1, Hi: 0.5,
		N:         16,
		Ks:        []int{2},
		DropRates: []float64{0, 0.10},
		Crashes:   []int{0, 1},
		Trials:    1,
		Seed:      20260805,
		Timeout:   15 * time.Second,
	}
	rows, err := RunChaosStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	completedAny := false
	for _, r := range rows {
		if r.Completed > 0 {
			completedAny = true
			if math.Abs(r.RatioVsClean-1) > 1e-9 {
				t.Errorf("K=%d drop=%g crashes=%d: completed ratio %v != fault-free",
					r.K, r.DropRate, r.Crashes, r.RatioVsClean)
			}
		}
		if r.DropRate == 0 && r.Crashes == 0 {
			if r.Completed != r.Trials {
				t.Errorf("fault-free cell completed %d/%d", r.Completed, r.Trials)
			}
			if m := r.Metrics; m.Drops != 0 || m.Dups != 0 || m.Deaths != 0 || m.LeaseReissues != 0 {
				t.Errorf("fault-free cell shows injected faults: %+v", m)
			}
		}
		if r.Crashes > 0 && r.Completed > 0 && r.Metrics.Deaths == 0 {
			t.Errorf("crash cell recorded no deaths: %+v", r.Metrics)
		}
	}
	if !completedAny {
		t.Fatal("no cell completed a single trial")
	}

	var buf bytes.Buffer
	if err := RenderChaosStudy(&buf, cfg, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Chaos study (X7)", "drop", "crashes", "ratio/ff"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestChaosStudyRejectsEmptyConfig covers the validation path.
func TestChaosStudyRejectsEmptyConfig(t *testing.T) {
	if _, err := RunChaosStudy(ChaosStudy{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// TestDefaultChaosStudy pins the published sweep shape: the defaults are
// what `lbsim -exp chaos` runs, so a drive-by change here silently
// changes results/chaos.txt.
func TestDefaultChaosStudy(t *testing.T) {
	cfg := DefaultChaosStudy(600, 1999)
	if cfg.Trials != 600 || cfg.Seed != 1999 {
		t.Fatalf("trials/seed not threaded: %+v", cfg)
	}
	if len(cfg.Ks) == 0 || len(cfg.DropRates) == 0 || len(cfg.Crashes) == 0 {
		t.Fatalf("degenerate default sweep: %+v", cfg)
	}
	if cfg.DropRates[0] != 0 || cfg.Crashes[0] != 0 {
		t.Fatalf("default sweep lost its fault-free baseline cell: %+v", cfg)
	}
	tm := chaosTiming()
	if tm.Heartbeat <= 0 || tm.DeadAfter <= tm.Heartbeat || tm.LeaseExpiry <= tm.DeadAfter {
		t.Fatalf("chaos timing ordering broken: %+v", tm)
	}
}

// TestExecutorProbe runs the parallel executors with a registry attached
// and renders the metrics appendix.
func TestExecutorProbe(t *testing.T) {
	cfg := DefaultEndToEndStudy(1, 7)
	cfg.N = 64
	reg, err := RunExecutorProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderExecutorAppendix(&buf, cfg, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Metrics appendix") {
		t.Fatalf("appendix header missing:\n%s", buf.String())
	}
	// The probe must have recorded real executor activity.
	if !strings.Contains(buf.String(), "core.") {
		t.Fatalf("appendix carries no executor metrics:\n%s", buf.String())
	}
}

// TestFtoa covers the CSV float rendering, NaN included.
func TestFtoa(t *testing.T) {
	if got := ftoa(math.NaN()); got != "nan" {
		t.Fatalf("ftoa(NaN) = %q", got)
	}
	if got := ftoa(1.5); got != "1.5" {
		t.Fatalf("ftoa(1.5) = %q", got)
	}
}

// TestBahfUBFloorsAtHF pins the κ/α cutoff logic: for large κ the run is
// pure HF and the reported bound must be HF's, not the looser Thm 8 form.
func TestBahfUBFloorsAtHF(t *testing.T) {
	small := bahfUB(0.3, 0.5)
	if small <= 1 {
		t.Fatalf("bahfUB(0.3, 0.5) = %v", small)
	}
	// As κ → ∞ the e^{(1−α)/κ} factor → 1, so the bound approaches r_α
	// from above and must never dip below it.
	big := bahfUB(0.3, 1e9)
	hfOnly := bahfUB(0.3, math.Inf(1))
	if big < hfOnly-1e-12 {
		t.Fatalf("bahfUB not floored at HF's bound: %v < %v", big, hfOnly)
	}
}
