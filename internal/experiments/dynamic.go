package experiments

import (
	"fmt"
	"io"
	"math"

	"bisectlb/internal/bisect"
	"bisectlb/internal/core"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// DynamicStudy models the paper's opening scenario — "dynamic load
// balancing for irregular problems" — one step further: after an initial
// HF distribution, the per-processor loads drift (a geometric random walk,
// standing in for work discovered or pruned at run time), and the system
// rebalances every R steps by running the load balancer afresh on the
// current total. The study sweeps R and reports the time-averaged
// imbalance against the rebalancing overhead, exposing the classic
// rebalance-frequency trade-off.
type DynamicStudy struct {
	Lo, Hi float64
	N      int
	// Steps is the simulated horizon; Sigma the per-step log-normal drift
	// of each processor's load.
	Steps int
	Sigma float64
	// Intervals are the rebalance periods R swept (0 = never rebalance).
	Intervals []int
	Trials    int
	Seed      uint64
}

// DefaultDynamicStudy drifts 1024 processors over 600 steps.
func DefaultDynamicStudy(trials int, seed uint64) DynamicStudy {
	return DynamicStudy{
		Lo: 0.1, Hi: 0.5, N: 1024,
		Steps: 600, Sigma: 0.05,
		Intervals: []int{0, 300, 100, 30, 10},
		Trials:    trials,
		Seed:      seed,
	}
}

// DynamicRow is one rebalance interval's outcome.
type DynamicRow struct {
	Interval int
	// AvgImbalance is the time-averaged max/mean load ratio.
	AvgImbalance stats.Summary
	// FinalImbalance is the ratio at the end of the horizon.
	FinalImbalance stats.Summary
	// Rebalances is the number of rebalance episodes performed.
	Rebalances int
}

// freshRatios runs HF on a fresh instance and returns the resulting
// normalised part weights (mean 1).
func freshRatios(lo, hi float64, n int, seed uint64) ([]float64, error) {
	res, err := core.HF(bisect.MustSynthetic(1, lo, hi, seed), n, core.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res.Parts))
	for i, pt := range res.Parts {
		out[i] = pt.Problem.Weight() * float64(n)
	}
	return out, nil
}

func imbalance(w []float64) float64 {
	maxW, sum := 0.0, 0.0
	for _, x := range w {
		sum += x
		if x > maxW {
			maxW = x
		}
	}
	if sum == 0 {
		return math.NaN()
	}
	return maxW / (sum / float64(len(w)))
}

// RunDynamicStudy executes the sweep.
func RunDynamicStudy(cfg DynamicStudy) ([]DynamicRow, error) {
	if cfg.Trials < 1 || cfg.N < 1 || cfg.Steps < 1 || len(cfg.Intervals) == 0 {
		return nil, fmt.Errorf("experiments: empty dynamic study configuration")
	}
	if !(cfg.Sigma >= 0) {
		return nil, fmt.Errorf("experiments: invalid drift σ %v", cfg.Sigma)
	}
	var out []DynamicRow
	for _, interval := range cfg.Intervals {
		if interval < 0 {
			return nil, fmt.Errorf("experiments: negative rebalance interval %d", interval)
		}
		avg := stats.NewSample(cfg.Trials)
		fin := stats.NewSample(cfg.Trials)
		rebalances := 0
		seedGen := xrand.New(cfg.Seed + uint64(interval)*7919)
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := xrand.New(seedGen.Uint64())
			w, err := freshRatios(cfg.Lo, cfg.Hi, cfg.N, rng.Uint64())
			if err != nil {
				return nil, err
			}
			sum := 0.0
			count := 0
			trialRebalances := 0
			for t := 1; t <= cfg.Steps; t++ {
				for i := range w {
					w[i] *= math.Exp(cfg.Sigma * rng.NormFloat64())
				}
				if interval > 0 && t%interval == 0 && t < cfg.Steps {
					// Rebalance the drifted total with a fresh HF run.
					w, err = freshRatios(cfg.Lo, cfg.Hi, cfg.N, rng.Uint64())
					if err != nil {
						return nil, err
					}
					trialRebalances++
				}
				sum += imbalance(w)
				count++
			}
			avg.Add(sum / float64(count))
			fin.Add(imbalance(w))
			rebalances = trialRebalances
		}
		out = append(out, DynamicRow{
			Interval:       interval,
			AvgImbalance:   avg.Summarize(),
			FinalImbalance: fin.Summarize(),
			Rebalances:     rebalances,
		})
	}
	return out, nil
}

// RenderDynamicStudy writes the sweep as a table.
func RenderDynamicStudy(w io.Writer, cfg DynamicStudy, rows []DynamicRow) error {
	fmt.Fprintf(w, "Dynamic-drift study: N = %d, σ = %g per step, horizon %d steps (%d trials)\n",
		cfg.N, cfg.Sigma, cfg.Steps, cfg.Trials)
	fmt.Fprintf(w, "(loads follow a geometric random walk; HF rebalances every R steps)\n\n")
	fmt.Fprintf(w, "%10s  %12s  %14s  %11s\n", "R", "avg max/mean", "final max/mean", "rebalances")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Interval)
		if r.Interval == 0 {
			label = "never"
		}
		fmt.Fprintf(w, "%10s  %12.3f  %14.3f  %11d\n",
			label, r.AvgImbalance.Mean, r.FinalImbalance.Mean, r.Rebalances)
	}
	return nil
}
