package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestRealStudyCoverage(t *testing.T) {
	cfg := RealConfig{Seed: 7, Ns: []int{4, 8}}
	rows, err := RunRealStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := map[string]map[string]bool{}
	for _, r := range rows {
		if fams[r.Family] == nil {
			fams[r.Family] = map[string]bool{}
		}
		fams[r.Family][r.Instance] = true
		if r.Parts < 1 || r.Parts > r.N {
			t.Errorf("%s/%s N=%d: %d parts", r.Instance, r.Algorithm, r.N, r.Parts)
		}
		if r.Ratio < 1 {
			t.Errorf("%s/%s N=%d: ratio %v < 1", r.Instance, r.Algorithm, r.N, r.Ratio)
		}
		if r.Parts > 1 && !(r.AlphaMin > 0 && r.AlphaMin <= 0.5) {
			t.Errorf("%s/%s N=%d: realized α̂ %v out of range", r.Instance, r.Algorithm, r.N, r.AlphaMin)
		}
		if r.Bound > 0 && r.Ratio > r.Bound*(1+1e-9) {
			t.Errorf("%s/%s N=%d: ratio %v over bound %v", r.Instance, r.Algorithm, r.N, r.Ratio, r.Bound)
		}
	}
	for _, fam := range []string{"graph", "spatial"} {
		if len(fams[fam]) < 3 {
			t.Errorf("study covers %d %s instances, want ≥3", len(fams[fam]), fam)
		}
	}
}

func TestRealStudyDeterministic(t *testing.T) {
	cfg := RealConfig{Seed: 42, Ns: []int{4}}
	a, err := RunRealStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRealStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different rows")
	}
}

func TestRealStudyRejectsBadConfig(t *testing.T) {
	if _, err := RunRealStudy(RealConfig{Seed: 1}); err == nil {
		t.Fatal("empty Ns accepted")
	}
	if _, err := RunRealStudy(RealConfig{Seed: 1, Ns: []int{0}}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestRenderRealStudy(t *testing.T) {
	cfg := RealConfig{Seed: 5, Ns: []int{4}}
	rows, err := RunRealStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderRealStudy(&sb, cfg, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "X15: real-instance bisectors") {
		t.Fatalf("title drifted: %q", strings.SplitN(out, "\n", 2)[0])
	}
	for _, want := range []string{"grid16x16", "ridge24x48", "r_α̂"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
