package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"bisectlb/internal/bench"
	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
	"bisectlb/internal/graph"
	"bisectlb/internal/spatial"
)

// X15 — real-instance study. The synthetic studies draw α̂ from a
// distribution; here the bisector is a real algorithm (the multilevel
// hypergraph bisector of internal/graph, the cut-line bisector of
// internal/spatial) and α̂ is whatever it achieves on the instance. Each
// run records every performed bisection through a bisect.AlphaRecorder
// and compares the achieved ratio against the measured worst-case bound
// r_α̂ evaluated at the realized α̂ — RHFProvableN for HF, BASmallN for
// BA (DESIGN.md §16, EXPERIMENTS.md X15).

// RealConfig parameterises the X15 real-instance study.
type RealConfig struct {
	// Seed derives the instance roster and every bisection RNG stream.
	Seed uint64
	// Ns are the processor counts each instance is planned for.
	Ns []int
}

// DefaultRealStudy is the tracked-results configuration.
func DefaultRealStudy(seed uint64) RealConfig {
	return RealConfig{Seed: seed, Ns: []int{4, 8, 16, 32}}
}

// realInstance is one roster entry: a named root-problem builder. build
// is called once per (algorithm, N) run with a fresh recorder so the
// realized α̂ belongs to exactly that run.
type realInstance struct {
	family string
	name   string
	build  func(seed uint64, rec *bisect.AlphaRecorder) (bisect.Problem, error)
}

// realRoster is the fixed instance set: three graph/hypergraph
// instances and three spatial load matrices, spanning the generator
// families the verify sweep draws from.
func realRoster() []realInstance {
	gp := func(build func() (*graph.Hypergraph, error)) func(uint64, *bisect.AlphaRecorder) (bisect.Problem, error) {
		return func(seed uint64, rec *bisect.AlphaRecorder) (bisect.Problem, error) {
			h, err := build()
			if err != nil {
				return nil, err
			}
			return graph.New(h, graph.Config{Seed: seed, Recorder: rec})
		}
	}
	sp := func(build func() (*spatial.Matrix, error)) func(uint64, *bisect.AlphaRecorder) (bisect.Problem, error) {
		return func(seed uint64, rec *bisect.AlphaRecorder) (bisect.Problem, error) {
			m, err := build()
			if err != nil {
				return nil, err
			}
			return spatial.New(m, spatial.Config{Seed: seed, Recorder: rec})
		}
	}
	return []realInstance{
		{"graph", "grid16x16", gp(func() (*graph.Hypergraph, error) { return graph.GridGraph(16, 16, 1, 7) })},
		{"graph", "grid12x12w", gp(func() (*graph.Hypergraph, error) { return graph.GridGraph(12, 12, 4, 11) })},
		{"graph", "ring256", gp(func() (*graph.Hypergraph, error) { return graph.RingGraph(256, 64, 3, 13) })},
		{"graph", "hyper192", gp(func() (*graph.Hypergraph, error) { return graph.RandomHypergraph(192, 144, 5, 3, 17) })},
		{"spatial", "uniform32x32", sp(func() (*spatial.Matrix, error) { return spatial.UniformMatrix(32, 32, 12, 19) })},
		{"spatial", "blobs40x40", sp(func() (*spatial.Matrix, error) { return spatial.BlobMatrix(40, 40, 4, 3000, 23) })},
		{"spatial", "ridge24x48", sp(func() (*spatial.Matrix, error) { return spatial.RidgeMatrix(24, 48, 250, 29) })},
	}
}

// realBound is the measured-α̂ worst-case bound for one algorithm, or 0
// when no such bound applies (ahat unset, or the run bottomed out on
// indivisible parts before reaching N parts — the bound argument needs
// every processor busy).
func realBound(alg string, ahat float64, parts, n int) float64 {
	if !(ahat > 0) || parts != n {
		return 0
	}
	switch alg {
	case "HF":
		return bounds.RHFProvableN(ahat, n)
	case "BA":
		// bounds.BA dispatches between Lemma 5 (n ≤ 1/α̂) and Theorem 7;
		// realized α̂ sits near 0.5 on real instances, so Theorem 7 is
		// the common case here.
		return bounds.BA(ahat, n)
	}
	return 0
}

// RunRealStudy runs HF and BA over every roster instance at every
// configured N and returns the rows destined for the BENCH_core.json
// {real} section. It fails loudly if any achieved ratio exceeds its
// measured bound — the study doubles as an acceptance check.
func RunRealStudy(cfg RealConfig) ([]bench.RealMeasurement, error) {
	if len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("real study: no processor counts configured")
	}
	var rows []bench.RealMeasurement
	for _, inst := range realRoster() {
		for _, alg := range []string{"HF", "BA"} {
			for _, n := range cfg.Ns {
				if n < 1 {
					return nil, fmt.Errorf("real study: invalid N=%d", n)
				}
				rec := &bisect.AlphaRecorder{}
				p, err := inst.build(cfg.Seed|1, rec)
				if err != nil {
					return nil, fmt.Errorf("real study %s: %w", inst.name, err)
				}
				var res *core.Result
				switch alg {
				case "HF":
					res, err = core.HF(p, n, core.Options{})
				case "BA":
					res, err = core.BA(p, n, core.Options{})
				}
				if err != nil {
					return nil, fmt.Errorf("real study %s/%s N=%d: %w", inst.name, alg, n, err)
				}
				row := bench.RealMeasurement{
					Family:    inst.family,
					Instance:  inst.name,
					Algorithm: alg,
					N:         n,
					Parts:     len(res.Parts),
					AlphaMin:  rec.Min(),
					AlphaMean: rec.Mean(),
					Ratio:     res.Ratio,
					Bound:     realBound(alg, rec.Min(), len(res.Parts), n),
				}
				if row.Bound > 0 && row.Ratio > row.Bound*(1+1e-9) {
					return nil, fmt.Errorf("real study %s/%s N=%d: ratio %.6f exceeds measured bound r_α̂ = %.6f (α̂=%.4f)",
						inst.name, alg, n, row.Ratio, row.Bound, row.AlphaMin)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// RenderRealStudy writes the X15 table: per (instance, algorithm, N)
// the realized α̂ (worst and mean over performed bisections), the
// achieved ratio and the measured bound it stays under. A dash in the
// bound column marks runs the measured bound does not cover (idle
// processors on indivisible parts).
func RenderRealStudy(w io.Writer, cfg RealConfig, rows []bench.RealMeasurement) error {
	fmt.Fprintf(w, "X15: real-instance bisectors — measured ratio vs the r_α̂ bound (seed %d)\n", cfg.Seed)
	fmt.Fprintf(w, "α̂ is realized per run: min/mean over the bisections actually performed.\n\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "\tfamily\tinstance\talg\tN\tparts\tα̂ min\tα̂ mean\tratio\tr_α̂\theadroom\t\n")
	prev := ""
	for _, r := range rows {
		if prev != "" && r.Instance != prev {
			fmt.Fprintf(tw, "\t\t\t\t\t\t\t\t\t\t\t\n")
		}
		prev = r.Instance
		bound, head := "-", "-"
		if r.Bound > 0 {
			bound = fmt.Sprintf("%.3f", r.Bound)
			head = fmt.Sprintf("%.1f%%", 100*(r.Bound-r.Ratio)/r.Bound)
		}
		fmt.Fprintf(tw, "\t%s\t%s\t%s\t%d\t%d\t%.4f\t%.4f\t%.3f\t%s\t%s\t\n",
			r.Family, r.Instance, r.Algorithm, r.N, r.Parts, r.AlphaMin, r.AlphaMean, r.Ratio, bound, head)
	}
	return tw.Flush()
}
