package experiments

import (
	"fmt"
	"io"

	"bisectlb/internal/bisect"
	"bisectlb/internal/machine"
	"bisectlb/internal/stats"
	"bisectlb/internal/topology"
	"bisectlb/internal/xrand"
)

// TopologyStudy quantifies the conclusion's machine-architecture caveat:
// the same algorithms are re-run with point-to-point distances and
// collective costs of concrete interconnection networks instead of the
// idealised unit-cost/⌈log2 N⌉ model. Expected shape: BA barely notices the
// topology (local sends, no collectives), while PHF's makespan inflates
// with the collective cost — mildly on hypercubes and fat-trees, severely
// on meshes and rings.
type TopologyStudy struct {
	Lo, Hi float64
	Alpha  float64
	N      int
	Trials int
	Seed   uint64
}

// DefaultTopologyStudy uses the paper's α̂ ~ U[0.1, 0.5] model.
func DefaultTopologyStudy(trials, n int, seed uint64) TopologyStudy {
	return TopologyStudy{Lo: 0.1, Hi: 0.5, Alpha: 0.1, N: n, Trials: trials, Seed: seed}
}

// TopologyRow aggregates one (topology, algorithm) cell.
type TopologyRow struct {
	Topology  string
	Algorithm string
	Makespan  stats.Summary
	Messages  stats.Summary
	GlobalOps stats.Summary
}

// RunTopologyStudy executes the sweep.
func RunTopologyStudy(cfg TopologyStudy) ([]TopologyRow, error) {
	if cfg.Trials < 1 || cfg.N < 1 {
		return nil, fmt.Errorf("experiments: empty topology study configuration")
	}
	var out []TopologyRow
	for _, topo := range topology.All(cfg.N) {
		type variant struct {
			name string
			run  func(p bisect.Problem) (*machine.Metrics, error)
		}
		topo := topo
		variants := []variant{
			{"BA", func(p bisect.Problem) (*machine.Metrics, error) {
				return machine.RunBAOnTopology(p, topo)
			}},
			{"PHF", func(p bisect.Problem) (*machine.Metrics, error) {
				return machine.RunPHFOnTopology(p, topo, cfg.Alpha)
			}},
		}
		for _, v := range variants {
			mk := stats.NewSample(cfg.Trials)
			ms := stats.NewSample(cfg.Trials)
			gl := stats.NewSample(cfg.Trials)
			seedGen := xrand.New(cfg.Seed)
			for trial := 0; trial < cfg.Trials; trial++ {
				p := bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seedGen.Uint64())
				m, err := v.run(p)
				if err != nil {
					return nil, err
				}
				mk.Add(float64(m.Makespan))
				ms.Add(float64(m.Messages))
				gl.Add(float64(m.GlobalOps))
			}
			out = append(out, TopologyRow{
				Topology:  topo.Name(),
				Algorithm: v.name,
				Makespan:  mk.Summarize(),
				Messages:  ms.Summarize(),
				GlobalOps: gl.Summarize(),
			})
		}
	}
	return out, nil
}

// RenderTopologyStudy writes the sweep grouped by topology.
func RenderTopologyStudy(w io.Writer, cfg TopologyStudy, rows []TopologyRow) error {
	fmt.Fprintf(w, "Topology study: N = %d, α̂ ~ U[%g, %g], declared α = %g, %d trials\n",
		cfg.N, cfg.Lo, cfg.Hi, cfg.Alpha, cfg.Trials)
	fmt.Fprintf(w, "(send cost = hop distance; collectives cost the topology's reduction time)\n\n")
	fmt.Fprintf(w, "%-10s  %-5s  %13s  %13s  %11s\n",
		"topology", "alg", "avg makespan", "avg messages", "global ops")
	last := ""
	for _, r := range rows {
		if r.Topology != last && last != "" {
			fmt.Fprintln(w)
		}
		last = r.Topology
		fmt.Fprintf(w, "%-10s  %-5s  %13.1f  %13.1f  %11.1f\n",
			r.Topology, r.Algorithm, r.Makespan.Mean, r.Messages.Mean, r.GlobalOps.Mean)
	}
	return nil
}
