package experiments

import (
	"fmt"
	"io"
)

// VarianceStudy reproduces the variance observations of Section 4: "the
// sample variance was very small in all cases except if an interval [α, 2α]
// with very small α was chosen" and "especially for Algorithm HF the
// observed ratios were sharply concentrated around the sample mean for
// larger values of N".
type VarianceStudy struct {
	// Intervals are the [lo, hi] ranges compared; the paper contrasts
	// wide ranges with narrow [α, 2α] ranges at small α.
	Intervals [][2]float64
	Trials    int
	Ns        []int
	Seed      uint64
}

// DefaultVarianceStudy mirrors the paper's contrast set.
func DefaultVarianceStudy(trials, maxLog int, seed uint64) VarianceStudy {
	return VarianceStudy{
		Intervals: [][2]float64{
			{0.1, 0.5},   // wide: tiny variance expected
			{0.01, 0.5},  // Table 1's interval
			{0.05, 0.1},  // narrow [α, 2α], moderate α
			{0.01, 0.02}, // narrow [α, 2α], very small α: variance appears
		},
		Trials: trials,
		Ns:     PowersOfTwo(5, maxLog),
		Seed:   seed,
	}
}

// VarianceRow holds one interval's per-N variances for HF.
type VarianceRow struct {
	Interval  [2]float64
	Rows      []TripleRow
	HFVarBig  float64 // HF variance at the largest N
	HFVarGeo  float64 // geometric-ish mean of HF variance across N
	BAVarGeo  float64
	HybVarGeo float64
}

// RunVarianceStudy executes the study.
func RunVarianceStudy(cfg VarianceStudy) ([]VarianceRow, error) {
	var out []VarianceRow
	for i, iv := range cfg.Intervals {
		tc := TripleConfig{
			Lo: iv[0], Hi: iv[1], Kappa: 1.0,
			Trials: cfg.Trials, Seed: cfg.Seed + uint64(i),
			Ns: cfg.Ns, ScaleTrials: true,
		}
		rows, err := RunTriple(tc)
		if err != nil {
			return nil, err
		}
		row := VarianceRow{Interval: iv, Rows: rows}
		var hfSum, baSum, hybSum float64
		for _, r := range rows {
			hfSum += r.HF.Stats.Variance
			baSum += r.BA.Stats.Variance
			hybSum += r.BAHF.Stats.Variance
		}
		row.HFVarGeo = hfSum / float64(len(rows))
		row.BAVarGeo = baSum / float64(len(rows))
		row.HybVarGeo = hybSum / float64(len(rows))
		row.HFVarBig = rows[len(rows)-1].HF.Stats.Variance
		out = append(out, row)
	}
	return out, nil
}

// RenderVarianceStudy writes per-interval variance summaries.
func RenderVarianceStudy(w io.Writer, rows []VarianceRow) error {
	fmt.Fprintf(w, "Variance study: sample variance of the observed ratio\n\n")
	for _, row := range rows {
		fmt.Fprintf(w, "α̂ ~ U[%g, %g]:\n", row.Interval[0], row.Interval[1])
		fmt.Fprintf(w, "  log N   var BA      var BA-HF   var HF\n")
		for _, r := range row.Rows {
			fmt.Fprintf(w, "  %5d   %-9.3g   %-9.3g   %-9.3g\n",
				log2(r.N), r.BA.Stats.Variance, r.BAHF.Stats.Variance, r.HF.Stats.Variance)
		}
		fmt.Fprintf(w, "  mean variance: BA %.3g, BA-HF %.3g, HF %.3g; HF at largest N: %.3g\n\n",
			row.BAVarGeo, row.HybVarGeo, row.HFVarGeo, row.HFVarBig)
	}
	return nil
}

// OddNStudy reproduces the aside "experiments with values of N that were
// not powers of 2 gave very similar results": it compares each odd N
// against its neighbouring powers of two.
type OddNStudy struct {
	Lo, Hi float64
	Kappa  float64
	OddNs  []int
	Trials int
	Seed   uint64
}

// DefaultOddNStudy uses primes and round decimal counts between 2^5 and 2^14.
func DefaultOddNStudy(trials int, seed uint64) OddNStudy {
	return OddNStudy{
		Lo: 0.1, Hi: 0.5, Kappa: 1.0,
		OddNs:  []int{37, 100, 523, 1000, 4999, 10007},
		Trials: trials,
		Seed:   seed,
	}
}

// RunOddNStudy runs the comparison: for each odd N it also evaluates the
// bracketing powers of two, all with matched trial counts.
func RunOddNStudy(cfg OddNStudy) ([]TripleRow, error) {
	var ns []int
	seen := map[int]bool{}
	addUnique := func(n int) {
		if !seen[n] {
			seen[n] = true
			ns = append(ns, n)
		}
	}
	for _, n := range cfg.OddNs {
		lower := 1
		for lower*2 <= n {
			lower *= 2
		}
		addUnique(lower)
		addUnique(n)
		if lower != n {
			addUnique(lower * 2)
		}
	}
	tc := TripleConfig{
		Lo: cfg.Lo, Hi: cfg.Hi, Kappa: cfg.Kappa,
		Trials: cfg.Trials, Seed: cfg.Seed, Ns: ns, ScaleTrials: true,
	}
	return RunTriple(tc)
}

// RenderOddNStudy prints the odd-N rows next to their bracketing powers.
func RenderOddNStudy(w io.Writer, cfg OddNStudy, rows []TripleRow) error {
	fmt.Fprintf(w, "Odd-N study: average ratios for non-power-of-two N, α̂ ~ U[%g, %g]\n\n",
		cfg.Lo, cfg.Hi)
	fmt.Fprintf(w, "%8s   avg BA    avg BA-HF   avg HF\n", "N")
	for _, r := range rows {
		marker := " "
		if r.N&(r.N-1) != 0 {
			marker = "*" // not a power of two
		}
		fmt.Fprintf(w, "%7d%s   %7.3f   %9.3f   %7.3f\n",
			r.N, marker, r.BA.Stats.Mean, r.BAHF.Stats.Mean, r.HF.Stats.Mean)
	}
	fmt.Fprintf(w, "(* = not a power of two)\n")
	return nil
}
