// Package experiments regenerates the paper's evaluation section: Table 1,
// Figure 5 and the textual studies of Section 4 (κ influence, variance
// behaviour, non-power-of-two processor counts), plus the machine-model
// study backing the running-time and communication claims of Section 3.
// See DESIGN.md §6 for the exhibit-to-module index and EXPERIMENTS.md for
// recorded paper-vs-measured outcomes.
package experiments

import (
	"fmt"

	"bisectlb/internal/bisect"
	"bisectlb/internal/bounds"
	"bisectlb/internal/core"
	"bisectlb/internal/stats"
	"bisectlb/internal/xrand"
)

// TripleConfig parameterises the BA / BA-HF / HF comparison that underlies
// Table 1 and Figure 5: α̂ ~ U[Lo, Hi] i.i.d. per bisection, κ the BA-HF
// threshold parameter, Trials repetitions per processor count.
type TripleConfig struct {
	Lo, Hi float64
	Kappa  float64
	Trials int
	Seed   uint64
	Ns     []int
	// ScaleTrials reduces the trial count proportionally for processor
	// counts above 2^14 so that full sweeps to 2^20 stay tractable; the
	// effective count never drops below 20. The paper used a flat 1000
	// trials; pass ScaleTrials=false and Trials=1000 to match exactly.
	ScaleTrials bool
}

// Validate checks the configuration.
func (c TripleConfig) Validate() error {
	if !(c.Lo > 0) || c.Hi < c.Lo || c.Hi > 0.5 {
		return fmt.Errorf("experiments: invalid α̂ interval [%v, %v]", c.Lo, c.Hi)
	}
	if err := bounds.ValidateKappa(c.Kappa); err != nil {
		return err
	}
	if c.Trials < 1 {
		return fmt.Errorf("experiments: trials %d must be ≥ 1", c.Trials)
	}
	if len(c.Ns) == 0 {
		return fmt.Errorf("experiments: no processor counts")
	}
	for _, n := range c.Ns {
		if n < 1 {
			return fmt.Errorf("experiments: invalid processor count %d", n)
		}
	}
	return nil
}

// EffectiveTrials returns the trial count used for n processors.
func (c TripleConfig) EffectiveTrials(n int) int {
	if !c.ScaleTrials || n <= 1<<14 {
		return c.Trials
	}
	t := c.Trials * (1 << 14) / n
	if t < 20 {
		t = 20
	}
	if t > c.Trials {
		t = c.Trials
	}
	return t
}

// PowersOfTwo returns 2^loMin … 2^loMax, the paper's processor grid
// ("N = 2^k, k ∈ {5, 6, …, 20}").
func PowersOfTwo(loMin, loMax int) []int {
	var out []int
	for k := loMin; k <= loMax; k++ {
		out = append(out, 1<<k)
	}
	return out
}

// AlgResult aggregates one algorithm's observed ratios at one N.
type AlgResult struct {
	// UB is the worst-case upper bound on the ratio for the class
	// (α = Lo) per the reconstructed theorems.
	UB float64
	// Stats summarises the observed ratios over the trials.
	Stats stats.Summary
}

// TripleRow is one processor count's results for the three algorithms.
type TripleRow struct {
	N      int
	Trials int
	BA     AlgResult
	BAHF   AlgResult
	HF     AlgResult
}

// RunTriple performs the core simulation experiment: for every processor
// count, EffectiveTrials independent instances are generated and each is
// partitioned by BA, BA-HF and HF on the *same* bisection stream (the
// three algorithms see identical α̂ draws for identical nodes, as in the
// paper's matched-trial design). Observed ratios are aggregated and paired
// with the worst-case bounds.
func RunTriple(cfg TripleConfig) ([]TripleRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows := make([]TripleRow, 0, len(cfg.Ns))
	seedGen := xrand.New(cfg.Seed)
	for _, n := range cfg.Ns {
		trials := cfg.EffectiveTrials(n)
		sBA := stats.NewSample(trials)
		sBAHF := stats.NewSample(trials)
		sHF := stats.NewSample(trials)
		for trial := 0; trial < trials; trial++ {
			seed := seedGen.Uint64()
			ba, err := core.BA(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, core.Options{})
			if err != nil {
				return nil, err
			}
			hyb, err := core.BAHF(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, cfg.Lo, cfg.Kappa, core.Options{})
			if err != nil {
				return nil, err
			}
			hf, err := core.HF(bisect.MustSynthetic(1, cfg.Lo, cfg.Hi, seed), n, core.Options{})
			if err != nil {
				return nil, err
			}
			sBA.Add(ba.Ratio)
			sBAHF.Add(hyb.Ratio)
			sHF.Add(hf.Ratio)
		}
		rows = append(rows, TripleRow{
			N:      n,
			Trials: trials,
			BA:     AlgResult{UB: bounds.BA(cfg.Lo, n), Stats: sBA.Summarize()},
			BAHF:   AlgResult{UB: bahfUB(cfg.Lo, cfg.Kappa), Stats: sBAHF.Summarize()},
			HF:     AlgResult{UB: bounds.RHF(cfg.Lo), Stats: sHF.Summarize()},
		})
	}
	return rows, nil
}

// bahfUB is BA-HF's worst-case bound; below the κ/α+1 cutoff the run is
// pure HF, so HF's bound also applies and the tighter maximum is reported.
func bahfUB(alpha, kappa float64) float64 {
	ub := bounds.BAHF(alpha, kappa)
	if r := bounds.RHF(alpha); r > ub {
		ub = r
	}
	return ub
}
