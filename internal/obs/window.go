package obs

import "sync"

// Window answers quantile questions about the recent past of a
// cumulative Histogram: "what was the p99 over the last W seconds",
// not "since process start". It exists for control loops — the
// serving layer's SLO admission controller steers on a windowed p99,
// and a histogram that never forgets would let one slow minute at
// boot pin the controller in shed mode forever.
//
// The window is built from bucket deltas, not a second observation
// path: the owner calls Tick on a fixed cadence, each tick stores a
// snapshot of the cumulative histogram, and Quantile subtracts the
// oldest retained snapshot from the live state. Buckets are
// monotonically non-decreasing in a cumulative histogram, so the
// difference is exactly the distribution of the observations that
// arrived inside the window. The observed hot path pays nothing.
//
// Tick and the accessors are safe for concurrent use; the histogram
// itself may be observed concurrently throughout.
type Window struct {
	h *Histogram

	mu     sync.Mutex
	snaps  []HistogramSnapshot // ring of per-tick cumulative snapshots
	next   int                 // slot the next Tick writes (= oldest once filled)
	filled bool                // ring has wrapped at least once
}

// NewWindow tracks h over the last epochs ticks (minimum 1). The
// window's wall-clock width is epochs × the caller's tick cadence.
func NewWindow(h *Histogram, epochs int) *Window {
	if epochs < 1 {
		epochs = 1
	}
	return &Window{h: h, snaps: make([]HistogramSnapshot, epochs)}
}

// Tick rotates the window: the current cumulative state becomes the
// newest epoch boundary and the oldest retained boundary falls out.
func (w *Window) Tick() {
	sn := w.h.Snapshot()
	w.mu.Lock()
	w.snaps[w.next] = sn
	w.next++
	if w.next == len(w.snaps) {
		w.next = 0
		w.filled = true
	}
	w.mu.Unlock()
}

// oldest returns the snapshot taken epochs ticks ago — the zero
// snapshot until the ring has filled, so early windows cover
// everything since start rather than reporting emptiness.
func (w *Window) oldest() HistogramSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.filled {
		return HistogramSnapshot{}
	}
	return w.snaps[w.next]
}

// Delta returns the in-window distribution: live state minus the
// oldest retained snapshot. Max cannot be windowed from bucket deltas
// and is reported as the bucket upper bound of the largest nonempty
// in-window class.
func (w *Window) Delta() HistogramSnapshot {
	cur := w.h.Snapshot()
	old := w.oldest()
	d := HistogramSnapshot{
		Count:   cur.Count - old.Count,
		Sum:     cur.Sum - old.Sum,
		Buckets: deltaBuckets(cur.Buckets, old.Buckets),
	}
	if d.Count > 0 {
		d.Mean = float64(d.Sum) / float64(d.Count)
	}
	if n := len(d.Buckets); n > 0 {
		d.Max = d.Buckets[n-1].Le
	}
	d.P50 = QuantileFromBuckets(d.Buckets, d.Count, 0.50)
	d.P90 = QuantileFromBuckets(d.Buckets, d.Count, 0.90)
	d.P99 = QuantileFromBuckets(d.Buckets, d.Count, 0.99)
	return d
}

// Count returns the number of observations inside the window.
func (w *Window) Count() int64 {
	return w.h.Count() - w.oldest().Count
}

// Quantile returns the q-quantile upper bound of the in-window
// distribution (0 when the window is empty), with the same
// factor-of-two fidelity as Histogram.Quantile.
func (w *Window) Quantile(q float64) int64 {
	cur := w.h.Snapshot()
	old := w.oldest()
	buckets := deltaBuckets(cur.Buckets, old.Buckets)
	return QuantileFromBuckets(buckets, cur.Count-old.Count, q)
}

// deltaBuckets subtracts an older cumulative bucket list from a newer
// one. Every bound present in old is present in cur with a count at
// least as large, so the walk only ever drops empty classes.
func deltaBuckets(cur, old []BucketCount) []BucketCount {
	out := make([]BucketCount, 0, len(cur))
	j := 0
	for _, b := range cur {
		n := b.N
		for j < len(old) && old[j].Le < b.Le {
			j++
		}
		if j < len(old) && old[j].Le == b.Le {
			n -= old[j].N
			j++
		}
		if n > 0 {
			out = append(out, BucketCount{Le: b.Le, N: n})
		}
	}
	return out
}
