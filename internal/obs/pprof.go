package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. The binaries expose it on a SEPARATE listener
// behind an opt-in -pprof flag rather than registering it on the serving
// mux: profiling endpoints leak implementation detail and cost real CPU
// (a 30-second profile holds a sampling signal handler), so they stay off
// the request path and off by default. Typical use:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//
// The default http.DefaultServeMux registration of net/http/pprof is
// deliberately avoided — importing that package registers handlers on
// the default mux as a side effect, which would silently expose them on
// any server built from it.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves PprofMux on addr in a background goroutine when addr
// is non-empty, returning the bound address (host:port with port 0
// resolved) or an error. An empty addr is a no-op returning "".
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: PprofMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
