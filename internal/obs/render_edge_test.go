package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStartPprofServesIndex checks the opt-in profiling listener: it
// binds, serves the pprof index, and does NOT leak handlers onto the
// default mux (the reason PprofMux exists at all).
func TestStartPprofServesIndex(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	if _, pat := http.DefaultServeMux.Handler(req); strings.HasPrefix(pat, "/debug/pprof") {
		t.Fatalf("pprof handlers leaked onto the default mux (pattern %q)", pat)
	}
}

// TestStartPprofEmptyAddr pins the no-op contract binaries rely on when
// -pprof is unset, and the error path for an unbindable address.
func TestStartPprofEmptyAddr(t *testing.T) {
	addr, err := StartPprof("")
	if err != nil || addr != "" {
		t.Fatalf("StartPprof(\"\") = %q, %v", addr, err)
	}
	if _, err := StartPprof("256.0.0.1:99999"); err == nil {
		t.Fatal("invalid address accepted")
	}
}

// TestFmtDur covers every magnitude branch of the duration renderer.
func TestFmtDur(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{1500000000, "1.5s"},
		{2500000, "2.5ms"},
		{3500, "3.5µs"},
		{420, "420ns"},
		{0, "0s"},
	}
	for _, tc := range cases {
		if got := fmtDur(tc.ns); got != tc.want {
			t.Errorf("fmtDur(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

// TestBucketUpperEdges pins the bucket-bound function at its edges: the
// zero bucket, normal powers of two, and the saturated top bucket.
func TestBucketUpperEdges(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(-1) != 0 {
		t.Fatal("bucket 0 upper bound not 0")
	}
	if BucketUpper(10) != 1024 {
		t.Fatalf("BucketUpper(10) = %d", BucketUpper(10))
	}
	top := BucketUpper(63)
	if top <= 0 || BucketUpper(64) != top {
		t.Fatalf("top bucket not saturated: %d vs %d", top, BucketUpper(64))
	}
}

// TestQuantizeUp pins the threshold quantization: mid-bucket values round
// up to the next bound, exact bounds are fixed points (2^k is the first
// value of bucket k+1, so bucketFor alone would overshoot by a bucket),
// and non-positive values collapse to the zero bucket.
func TestQuantizeUp(t *testing.T) {
	cases := []struct{ v, want int64 }{
		{0, 0},
		{-5, 0},
		{1, 1},
		{3, 4},
		{1024, 1024},
		{1025, 2048},
		{1 << 29, 1 << 29},
		{1<<29 + 1, 1 << 30},
	}
	for _, c := range cases {
		if got := QuantizeUp(c.v); got != c.want {
			t.Errorf("QuantizeUp(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestQuantileFromBucketsEdges covers the empty, clamped, and overshoot
// paths of the bucket-list quantile.
func TestQuantileFromBucketsEdges(t *testing.T) {
	if QuantileFromBuckets(nil, 0, 0.5) != 0 {
		t.Fatal("empty buckets did not yield 0")
	}
	b := []BucketCount{{Le: 8, N: 3}, {Le: 16, N: 1}}
	if got := QuantileFromBuckets(b, 4, 0.5); got != 8 {
		t.Fatalf("p50 = %d, want 8", got)
	}
	if got := QuantileFromBuckets(b, 4, -1); got != 8 {
		t.Fatalf("clamped q<0 = %d, want 8", got)
	}
	// A count larger than the buckets account for overshoots the list;
	// the last bound is the fallback.
	if got := QuantileFromBuckets(b, 100, 2); got != 16 {
		t.Fatalf("overshoot = %d, want 16", got)
	}
}

// TestWriteTextRendersEverySection feeds one of each metric kind through
// the text renderer.
func TestWriteTextRendersEverySection(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.count").Add(3)
	r.Gauge("test.gauge").Set(-2)
	r.Histogram("test.lat_ns").Observe(int64(2 * time.Millisecond))
	sn := r.Snapshot()
	sn.DroppedEvents = 5

	var buf bytes.Buffer
	if err := sn.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test.count", "test.gauge", "test.lat_ns", "p50=", "events.dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestMergeIntoZeroSnapshot covers Merge's lazy map initialisation and
// the no-bucket quantile fallback.
func TestMergeIntoZeroSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(100)
	src := r.Snapshot()
	src.DroppedEvents = 1

	var dst Snapshot
	dst.Merge(src)
	if dst.Counters["c"] != 1 || dst.Gauges["g"] != 2 || dst.Histograms["h"].Count != 1 || dst.DroppedEvents != 1 {
		t.Fatalf("zero-value merge lost data: %+v", dst)
	}

	// Merging bucketless snapshots (hand-built, as from truncated JSON):
	// the larger-count side's quantiles must win.
	small := Snapshot{Histograms: map[string]HistogramSnapshot{"h": {Count: 1, Sum: 100, Max: 100, P50: 128, P99: 128}}}
	big := Snapshot{Histograms: map[string]HistogramSnapshot{"h": {Count: 10, Sum: 5000, Max: 900, P50: 512, P99: 1024}}}
	small.Merge(big)
	h := small.Histograms["h"]
	if h.Count != 11 || h.P50 != 512 {
		t.Fatalf("bucketless merge did not keep the larger side's quantiles: %+v", h)
	}
}

// TestSetRingCapacityShrinksAndGrows covers the resize paths: shrinking
// keeps the newest events and counts evictions as drops, growing
// preserves order, and the nil/invalid cases are no-ops.
func TestSetRingCapacityShrinksAndGrows(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 6; i++ {
		r.Emit("e", string(rune('a'+i)))
	}
	r.SetRingCapacity(3)
	sn := r.Snapshot()
	if len(sn.Events) != 3 || sn.Events[0].Detail != "d" || sn.Events[2].Detail != "f" {
		t.Fatalf("shrink kept wrong events: %+v", sn.Events)
	}
	if sn.DroppedEvents != 3 {
		t.Fatalf("shrink evictions not counted as drops: %d", sn.DroppedEvents)
	}
	r.SetRingCapacity(8)
	r.Emit("e", "g")
	sn = r.Snapshot()
	if len(sn.Events) != 4 || sn.Events[3].Detail != "g" {
		t.Fatalf("grow lost events: %+v", sn.Events)
	}
	var nilReg *Registry
	nilReg.SetRingCapacity(4)
	nilReg.Emit("e", "x")
	r.SetRingCapacity(0)
	if got := r.Snapshot(); len(got.Events) != 4 {
		t.Fatalf("SetRingCapacity(0) was not a no-op: %+v", got.Events)
	}
}

// TestHistogramQuantileClamps covers Quantile's q clamping and the
// empty-histogram path.
func TestHistogramQuantileClamps(t *testing.T) {
	h := NewRegistry().Histogram("h")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	h.Observe(100)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}
