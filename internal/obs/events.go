package obs

import "time"

// DefaultRingCapacity bounds a registry's event ring: once full, the
// oldest events are overwritten and counted as dropped.
const DefaultRingCapacity = 256

// Event is one timestamped trace record.
type Event struct {
	At     time.Time `json:"at"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// ring is a fixed-capacity overwrite-oldest event buffer. Guarded by
// the owning registry's mutex.
type ring struct {
	cap     int
	buf     []Event
	next    int // insertion index once buf is at capacity
	dropped int64
}

func (r *ring) add(e Event) {
	if r.cap <= 0 {
		r.cap = DefaultRingCapacity
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % r.cap
	r.dropped++
}

// ordered returns the buffered events oldest-first.
func (r *ring) ordered() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Emit appends one event to the registry's ring. Nil-safe no-op.
func (r *Registry) Emit(name, detail string) {
	if r == nil {
		return
	}
	e := Event{At: time.Now(), Name: name, Detail: detail}
	r.mu.Lock()
	r.ring.add(e)
	r.mu.Unlock()
}

// SetRingCapacity resizes the event ring (existing events are kept up
// to the new capacity, oldest dropped first). Nil-safe no-op.
func (r *Registry) SetRingCapacity(n int) {
	if r == nil || n < 1 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.ring.ordered()
	if len(old) > n {
		r.ring.dropped += int64(len(old) - n)
		old = old[len(old)-n:]
	}
	r.ring = ring{cap: n, buf: old, dropped: r.ring.dropped}
	if len(old) == n {
		r.ring.next = 0
	}
}

// Span measures one operation from StartSpan to End.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan opens a span. Ending it records the latency into the
// histogram named after the span and emits a trace event. Nil-safe.
func (r *Registry) StartSpan(name string) Span {
	return Span{r: r, name: name, start: time.Now()}
}

// End closes the span and returns its duration.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := s.r.Histogram(s.name).ObserveSince(s.start)
	s.r.Emit(s.name, d.String())
	return d
}
