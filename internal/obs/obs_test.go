package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},         // [1, 2)
		{2, 2}, {3, 2}, // [2, 4)
		{4, 3}, {7, 3}, // [4, 8)
		{1023, 10}, {1024, 11},
		{1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket bounds are consistent with bucketFor: every positive value
	// is strictly below its bucket's upper bound and at least the
	// previous bucket's.
	for _, v := range []int64{1, 2, 3, 17, 1000, 1 << 30} {
		b := bucketFor(v)
		if v >= BucketUpper(b) {
			t.Errorf("value %d not below its bucket bound %d", v, BucketUpper(b))
		}
		if b > 1 && v < BucketUpper(b-1) {
			t.Errorf("value %d below previous bucket bound %d", v, BucketUpper(b-1))
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v", m)
	}
	// The p50 of 1…1000 is ~500; the log-bucket answer must be the
	// bucket bound just above it (512), and within 2× of the truth.
	if q := h.Quantile(0.5); q != 512 {
		t.Fatalf("p50 = %d, want 512", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 = %d, want ≥ 1000", q)
	}
	if q := h.Quantile(0.0); q == 0 {
		t.Fatal("q=0 on a non-empty histogram returned 0")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run under -race this is the package's data-race proof.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").Add(1)
				r.Histogram("lat").Observe(int64(i + 1))
				if i%100 == 0 {
					r.Emit("tick", "")
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(7)
	r.Emit("e", "detail")
	r.StartSpan("span").End()
	if sn := r.Snapshot(); len(sn.Counters) != 0 || len(sn.Events) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", sn)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	r.SetRingCapacity(4)
	for i := 0; i < 10; i++ {
		r.Emit("e", string(rune('a'+i)))
	}
	sn := r.Snapshot()
	if len(sn.Events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(sn.Events))
	}
	if sn.DroppedEvents != 6 {
		t.Fatalf("dropped = %d, want 6", sn.DroppedEvents)
	}
	// Oldest-first ordering of the survivors g, h, i, j.
	for i, want := range []string{"g", "h", "i", "j"} {
		if sn.Events[i].Detail != want {
			t.Fatalf("event %d = %q, want %q", i, sn.Events[i].Detail, want)
		}
	}
}

func TestSpanRecordsHistogramAndEvent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("op")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	sn := r.Snapshot()
	h, ok := sn.Histograms["op"]
	if !ok || h.Count != 1 {
		t.Fatalf("span histogram missing: %+v", sn.Histograms)
	}
	if len(sn.Events) != 1 || sn.Events[0].Name != "op" {
		t.Fatalf("span event missing: %+v", sn.Events)
	}
}

func TestRenderers(t *testing.T) {
	r := NewRegistry()
	r.Counter("dist.sends").Add(42)
	r.Gauge("dist.inflight").Set(3)
	r.Histogram("dist.ack_rtt_ns").Observe(1_500_000)

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dist.sends", "42", "dist.inflight", "dist.ack_rtt_ns", "n=1"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var sn Snapshot
	if err := json.Unmarshal(js.Bytes(), &sn); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if sn.Counters["dist.sends"] != 42 {
		t.Fatalf("JSON counters = %+v", sn.Counters)
	}
	if sn.Histograms["dist.ack_rtt_ns"].Count != 1 {
		t.Fatalf("JSON histograms = %+v", sn.Histograms)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(2)
	b.Counter("c").Add(3)
	b.Counter("only_b").Inc()
	a.Histogram("h").Observe(10)
	b.Histogram("h").Observe(30)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Counters["c"] != 5 || sa.Counters["only_b"] != 1 {
		t.Fatalf("merged counters = %+v", sa.Counters)
	}
	h := sa.Histograms["h"]
	if h.Count != 2 || h.Sum != 40 || h.Max != 30 {
		t.Fatalf("merged histogram = %+v", h)
	}
}
