package obs

import (
	"testing"
)

// TestMergeQuantilesExact merges two histograms with disjoint bucket
// ranges and checks the merged quantiles equal those of one histogram
// that observed every value — the contract that per-bucket counts in
// HistogramSnapshot buy over the old larger-count-side heuristic.
func TestMergeQuantilesExact(t *testing.T) {
	lowReg, highReg, allReg := NewRegistry(), NewRegistry(), NewRegistry()
	// 90 small observations on one node, 10 large ones on another: the
	// true p99 lives entirely on the small-count side, which the old
	// heuristic would have discarded.
	for i := 0; i < 90; i++ {
		lowReg.Histogram("lat").Observe(100) // bucket le=128
		allReg.Histogram("lat").Observe(100)
	}
	for i := 0; i < 10; i++ {
		highReg.Histogram("lat").Observe(1 << 20) // bucket le=2^21
		allReg.Histogram("lat").Observe(1 << 20)
	}

	merged := lowReg.Snapshot()
	merged.Merge(highReg.Snapshot())
	got := merged.Histograms["lat"]
	want := allReg.Snapshot().Histograms["lat"]

	if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
		t.Fatalf("merged totals = (%d,%d,%d), want (%d,%d,%d)",
			got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
	}
	if got.P50 != want.P50 || got.P90 != want.P90 || got.P99 != want.P99 {
		t.Fatalf("merged quantiles p50/p90/p99 = %d/%d/%d, want %d/%d/%d",
			got.P50, got.P90, got.P99, want.P50, want.P90, want.P99)
	}
	// The regression the fix targets: p99 must come from the large-value
	// side even though it holds the smaller count.
	if got.P99 < 1<<20 {
		t.Fatalf("merged p99 = %d ignores the 10 large observations", got.P99)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets = %v, want %v", got.Buckets, want.Buckets)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestMergeOverlappingBuckets checks counts sum where bucket bounds
// coincide on both sides.
func TestMergeOverlappingBuckets(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	for i := 0; i < 5; i++ {
		a.Histogram("h").Observe(100)
		b.Histogram("h").Observe(100)
	}
	b.Histogram("h").Observe(5000)
	sn := a.Snapshot()
	sn.Merge(b.Snapshot())
	h := sn.Histograms["h"]
	if h.Count != 11 {
		t.Fatalf("count = %d, want 11", h.Count)
	}
	var total int64
	for _, bc := range h.Buckets {
		total += bc.N
	}
	if total != 11 {
		t.Fatalf("bucket counts sum to %d, want 11", total)
	}
}

// TestMergeFallbackWithoutBuckets keeps the larger-count side's quantiles
// when a snapshot (e.g. external JSON) carries no bucket list.
func TestMergeFallbackWithoutBuckets(t *testing.T) {
	s := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 10, Sum: 100, Max: 16, P50: 8, P90: 16, P99: 16},
	}}
	s.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 2, Sum: 10, Max: 8, P50: 4, P90: 8, P99: 8},
	}})
	h := s.Histograms["h"]
	if h.Count != 12 || h.P99 != 16 {
		t.Fatalf("fallback merge = %+v, want count 12 and larger-side p99 16", h)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	buckets := []BucketCount{{Le: 2, N: 1}, {Le: 8, N: 2}, {Le: 32, N: 1}}
	if got := QuantileFromBuckets(buckets, 4, 0.5); got != 8 {
		t.Fatalf("p50 = %d, want 8", got)
	}
	if got := QuantileFromBuckets(buckets, 4, 1.0); got != 32 {
		t.Fatalf("p100 = %d, want 32", got)
	}
	if got := QuantileFromBuckets(nil, 0, 0.5); got != 0 {
		t.Fatalf("empty = %d, want 0", got)
	}
}
