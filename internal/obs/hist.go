package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v ≤ 0). With
// nanosecond latencies this spans sub-nanosecond to ~584 years.
const histBuckets = 65

// Histogram is a log-bucketed histogram of int64 observations —
// typically latencies in nanoseconds. Buckets are powers of two, so
// Observe is a bit-length computation plus one atomic add; quantiles
// are approximate (bucket upper bound), which is the right fidelity
// for "where did the time go" questions.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// QuantizeUp rounds v up to the nearest bucket bound (the identity when
// v already is one). Thresholds compared against reported quantiles must
// live on a bucket bound: a raw threshold between bounds is unreachable
// from below (every quantile in its bucket reports the bound above it),
// which turns "p99 > threshold" into a tautology for that whole bucket.
// A bound quantizes to itself — bucketFor alone would push it a full
// bucket up, since 2^k is the first value of bucket k+1, and thresholds
// already on a bound are exactly enforceable as they are.
func QuantizeUp(v int64) int64 {
	if v <= 0 {
		return 0
	}
	if v&(v-1) == 0 {
		return v
	}
	return BucketUpper(bucketFor(v))
}

// BucketUpper returns the exclusive upper bound of bucket i, i.e. the
// largest value class the bucket represents.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // avoid overflow; effectively +inf
	}
	return int64(1) << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) time.Duration {
	d := time.Since(start)
	h.Observe(int64(d))
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper edge of the first bucket whose cumulative count reaches q·n.
// The answer is within a factor of two of the true quantile, by
// construction of the power-of-two buckets.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the renderable state of a histogram. Buckets
// holds only the nonzero buckets as (upper bound, count) pairs.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50"`
	P90     int64         `json:"p90"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one nonzero histogram bucket.
type BucketCount struct {
	Le int64 `json:"le"` // exclusive upper bound of the bucket
	N  int64 `json:"n"`
}

// QuantileFromBuckets computes the q-quantile upper bound from an
// ascending (upper bound, count) bucket list totalling count observations,
// with the same semantics as Histogram.Quantile. It is what Snapshot.Merge
// uses to keep merged quantiles exact, and what consumers of rendered
// JSON (e.g. the lbload report) use to re-derive quantiles.
func QuantileFromBuckets(buckets []BucketCount, count int64, q float64) int64 {
	if count <= 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range buckets {
		cum += b.N
		if cum >= target {
			return b.Le
		}
	}
	return buckets[len(buckets)-1].Le
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	sn := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			sn.Buckets = append(sn.Buckets, BucketCount{Le: BucketUpper(i), N: n})
		}
	}
	return sn
}
