package obs

import (
	"sync"
	"testing"
)

// TestWindowForgetsOldObservations is the reason Window exists: a burst
// of slow observations must stop influencing the windowed p99 once
// enough ticks have passed, even though the cumulative histogram
// remembers it forever.
func TestWindowForgetsOldObservations(t *testing.T) {
	h := &Histogram{}
	w := NewWindow(h, 3)

	for i := 0; i < 100; i++ {
		h.Observe(1 << 30) // ~1.07s in nanoseconds: very slow
	}
	if q := w.Quantile(0.99); q < 1<<30 {
		t.Fatalf("pre-tick windowed p99 = %d, want ≥ %d", q, 1<<30)
	}

	// Rotate the slow burst out of the window while observing only
	// fast values.
	for tick := 0; tick < 4; tick++ {
		w.Tick()
		for i := 0; i < 100; i++ {
			h.Observe(1 << 10)
		}
	}
	if q, want := w.Quantile(0.99), BucketUpper(bucketFor(1<<10)); q != want {
		t.Fatalf("windowed p99 after rotation = %d, want %d (slow burst must have aged out)", q, want)
	}
	if q := h.Quantile(0.99); q < 1<<30 {
		t.Fatalf("cumulative p99 = %d, want ≥ %d (histogram itself must still remember)", q, 1<<30)
	}
}

// TestWindowUnfilledCoversSinceStart checks the window reports
// everything since start until the ring has wrapped, instead of
// pretending the early process had no traffic.
func TestWindowUnfilledCoversSinceStart(t *testing.T) {
	h := &Histogram{}
	w := NewWindow(h, 8)
	for i := 0; i < 50; i++ {
		h.Observe(1 << 20)
	}
	w.Tick()
	if got := w.Count(); got != 50 {
		t.Fatalf("unfilled window count = %d, want 50", got)
	}
	if q, want := w.Quantile(0.99), BucketUpper(bucketFor(1<<20)); q != want {
		t.Fatalf("unfilled window p99 = %d, want %d", q, want)
	}
}

// TestWindowDelta checks the delta snapshot's count/sum/mean/quantiles
// describe exactly the in-window observations.
func TestWindowDelta(t *testing.T) {
	h := &Histogram{}
	w := NewWindow(h, 2)
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	w.Tick()
	w.Tick() // ring filled; the pre-tick observations age out next tick
	w.Tick()
	for i := 0; i < 4; i++ {
		h.Observe(1000)
	}
	d := w.Delta()
	if d.Count != 4 || d.Sum != 4000 {
		t.Fatalf("delta count/sum = %d/%d, want 4/4000", d.Count, d.Sum)
	}
	if d.Mean != 1000 {
		t.Fatalf("delta mean = %g, want 1000", d.Mean)
	}
	if d.P50 != BucketUpper(bucketFor(1000)) {
		t.Fatalf("delta p50 = %d, want bucket upper bound of 1000", d.P50)
	}
	if len(d.Buckets) != 1 {
		t.Fatalf("delta buckets = %v, want the single 1000-class bucket", d.Buckets)
	}
}

// TestWindowEmpty checks the zero cases don't divide or panic.
func TestWindowEmpty(t *testing.T) {
	h := &Histogram{}
	w := NewWindow(h, 4)
	if q := w.Quantile(0.99); q != 0 {
		t.Fatalf("empty window p99 = %d, want 0", q)
	}
	w.Tick()
	if c := w.Count(); c != 0 {
		t.Fatalf("empty window count = %d, want 0", c)
	}
	if d := w.Delta(); d.Count != 0 || len(d.Buckets) != 0 {
		t.Fatalf("empty delta = %+v, want zero", d)
	}
}

// TestWindowConcurrent exercises Tick and Quantile against concurrent
// observers under the race detector.
func TestWindowConcurrent(t *testing.T) {
	h := &Histogram{}
	w := NewWindow(h, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(1 << 12)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		w.Tick()
		w.Quantile(0.99)
		w.Count()
	}
	close(stop)
	wg.Wait()
}
