// Package obs is the runtime observability substrate: dependency-free
// metrics (atomic counters, gauges, log-bucketed histograms) and a
// bounded in-memory event ring, grouped under named registries with
// text and JSON renderers.
//
// The package exists because the fault-tolerant runtime (internal/dist,
// internal/netcoll) and the parallel executors (internal/core) do real
// recovery work — retries, backoffs, lease re-issues, retransmits —
// that is invisible in their final results. Every such event increments
// a named metric here, so experiments can print a measurement appendix
// and tests can assert on protocol behaviour instead of only outcomes.
//
// All metric operations are safe for concurrent use and allocation-free
// on the hot path. Every accessor on *Registry is nil-safe: a nil
// registry hands out shared discard instruments, so instrumented code
// never needs to guard `if reg != nil`.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a namespace of named instruments plus one event ring.
// Instruments are created on first use and live for the registry's
// lifetime; looking one up twice returns the same instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     ring
}

// NewRegistry returns an empty registry whose event ring keeps the most
// recent DefaultRingCapacity events.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ring:     ring{cap: DefaultRingCapacity},
	}
}

// Shared discard instruments handed out by nil registries. Writes to
// them are harmless (and cheap); they are never rendered.
var (
	discardCounter   Counter
	discardGauge     Gauge
	discardHistogram Histogram
)

// Counter returns the named counter, creating it if needed. Safe on a
// nil registry (returns a shared discard counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &discardHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// names returns the sorted instrument names of one kind; used by the
// renderers for stable output.
func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
