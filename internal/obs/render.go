package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding or diffing across a run.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events        []Event                      `json:"events,omitempty"`
	DroppedEvents int64                        `json:"dropped_events,omitempty"`
}

// Snapshot captures every instrument and the event ring. Nil-safe
// (returns the zero snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sn := Snapshot{
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
		Events:        r.ring.ordered(),
		DroppedEvents: r.ring.dropped,
	}
	for name, c := range r.counters {
		sn.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		sn.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		sn.Histograms[name] = h.Snapshot()
	}
	return sn
}

// Merge adds another snapshot's counters and gauges into this one and
// merges histograms bucket-by-bucket, so the merged quantiles are exactly
// what one histogram holding all observations would report. Snapshots that
// lost their bucket lists (e.g. hand-built or truncated JSON) fall back to
// keeping the larger-count side's quantiles. Used to aggregate per-node
// snapshots into a cluster view.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	for k, v := range o.Gauges {
		s.Gauges[k] += v
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, h := range o.Histograms {
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = h
			continue
		}
		s.Histograms[k] = mergeHistograms(cur, h)
	}
	s.DroppedEvents += o.DroppedEvents
}

// mergeHistograms combines two histogram snapshots. When both sides carry
// their bucket counts (true for every snapshot this package produces), the
// buckets are summed by upper bound and the quantiles recomputed from the
// merged distribution.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	merged := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Max:   a.Max,
	}
	if b.Max > merged.Max {
		merged.Max = b.Max
	}
	if merged.Count > 0 {
		merged.Mean = float64(merged.Sum) / float64(merged.Count)
	}
	hasBuckets := (a.Count == 0 || len(a.Buckets) > 0) && (b.Count == 0 || len(b.Buckets) > 0)
	if !hasBuckets {
		keepQ := a
		if b.Count > a.Count {
			keepQ = b
		}
		merged.P50, merged.P90, merged.P99 = keepQ.P50, keepQ.P90, keepQ.P99
		return merged
	}
	merged.Buckets = mergeBuckets(a.Buckets, b.Buckets)
	merged.P50 = QuantileFromBuckets(merged.Buckets, merged.Count, 0.50)
	merged.P90 = QuantileFromBuckets(merged.Buckets, merged.Count, 0.90)
	merged.P99 = QuantileFromBuckets(merged.Buckets, merged.Count, 0.99)
	return merged
}

// mergeBuckets sums two ascending (upper bound, count) lists by bound.
func mergeBuckets(a, b []BucketCount) []BucketCount {
	out := make([]BucketCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Le < b[j].Le):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Le < a[i].Le:
			out = append(out, b[j])
			j++
		default:
			out = append(out, BucketCount{Le: a[i].Le, N: a[i].N + b[j].N})
			i, j = i+1, j+1
		}
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders the snapshot as an aligned, sorted text block —
// the format of the experiment metrics appendices.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText renders a snapshot as text: counters and gauges one per
// line, histograms with count/mean/p50/p99/max (durations humanised).
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-46s %12d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-46s %12d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%-46s n=%-7d mean=%-10s p50=%-10s p99=%-10s max=%s\n",
			name, h.Count,
			fmtDur(int64(h.Mean)), fmtDur(h.P50), fmtDur(h.P99), fmtDur(h.Max)); err != nil {
			return err
		}
	}
	if s.DroppedEvents > 0 {
		if _, err := fmt.Fprintf(w, "%-46s %12d\n", "events.dropped", s.DroppedEvents); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a nanosecond quantity as a rounded duration. All the
// repo's histograms record nanoseconds, so the text renderer may assume
// the unit.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	}
	return d.String()
}
